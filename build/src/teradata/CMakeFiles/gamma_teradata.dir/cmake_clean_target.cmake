file(REMOVE_RECURSE
  "libgamma_teradata.a"
)
