# Empty compiler generated dependencies file for gamma_teradata.
# This may be replaced when dependencies are built.
