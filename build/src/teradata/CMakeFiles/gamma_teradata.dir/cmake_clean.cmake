file(REMOVE_RECURSE
  "CMakeFiles/gamma_teradata.dir/machine.cc.o"
  "CMakeFiles/gamma_teradata.dir/machine.cc.o.d"
  "CMakeFiles/gamma_teradata.dir/machine_updates.cc.o"
  "CMakeFiles/gamma_teradata.dir/machine_updates.cc.o.d"
  "libgamma_teradata.a"
  "libgamma_teradata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gamma_teradata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
