# Empty dependencies file for gamma_quel.
# This may be replaced when dependencies are built.
