file(REMOVE_RECURSE
  "CMakeFiles/gamma_quel.dir/quel.cc.o"
  "CMakeFiles/gamma_quel.dir/quel.cc.o.d"
  "libgamma_quel.a"
  "libgamma_quel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gamma_quel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
