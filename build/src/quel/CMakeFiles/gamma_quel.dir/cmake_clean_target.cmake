file(REMOVE_RECURSE
  "libgamma_quel.a"
)
