# Empty compiler generated dependencies file for gamma_quel.
# This may be replaced when dependencies are built.
