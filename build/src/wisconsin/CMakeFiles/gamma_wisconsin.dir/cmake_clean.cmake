file(REMOVE_RECURSE
  "CMakeFiles/gamma_wisconsin.dir/wisconsin.cc.o"
  "CMakeFiles/gamma_wisconsin.dir/wisconsin.cc.o.d"
  "libgamma_wisconsin.a"
  "libgamma_wisconsin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gamma_wisconsin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
