file(REMOVE_RECURSE
  "libgamma_wisconsin.a"
)
