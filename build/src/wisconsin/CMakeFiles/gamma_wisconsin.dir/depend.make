# Empty dependencies file for gamma_wisconsin.
# This may be replaced when dependencies are built.
