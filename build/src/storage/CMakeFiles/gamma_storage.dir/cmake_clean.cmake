file(REMOVE_RECURSE
  "CMakeFiles/gamma_storage.dir/btree.cc.o"
  "CMakeFiles/gamma_storage.dir/btree.cc.o.d"
  "CMakeFiles/gamma_storage.dir/buffer_pool.cc.o"
  "CMakeFiles/gamma_storage.dir/buffer_pool.cc.o.d"
  "CMakeFiles/gamma_storage.dir/deferred_update.cc.o"
  "CMakeFiles/gamma_storage.dir/deferred_update.cc.o.d"
  "CMakeFiles/gamma_storage.dir/disk.cc.o"
  "CMakeFiles/gamma_storage.dir/disk.cc.o.d"
  "CMakeFiles/gamma_storage.dir/heap_file.cc.o"
  "CMakeFiles/gamma_storage.dir/heap_file.cc.o.d"
  "CMakeFiles/gamma_storage.dir/lock_manager.cc.o"
  "CMakeFiles/gamma_storage.dir/lock_manager.cc.o.d"
  "CMakeFiles/gamma_storage.dir/page.cc.o"
  "CMakeFiles/gamma_storage.dir/page.cc.o.d"
  "CMakeFiles/gamma_storage.dir/storage_manager.cc.o"
  "CMakeFiles/gamma_storage.dir/storage_manager.cc.o.d"
  "libgamma_storage.a"
  "libgamma_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gamma_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
