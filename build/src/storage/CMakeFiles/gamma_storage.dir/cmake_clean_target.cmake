file(REMOVE_RECURSE
  "libgamma_storage.a"
)
