# Empty dependencies file for gamma_storage.
# This may be replaced when dependencies are built.
