# Empty dependencies file for gamma_machine.
# This may be replaced when dependencies are built.
