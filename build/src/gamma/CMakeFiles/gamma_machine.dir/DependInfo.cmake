
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gamma/machine.cc" "src/gamma/CMakeFiles/gamma_machine.dir/machine.cc.o" "gcc" "src/gamma/CMakeFiles/gamma_machine.dir/machine.cc.o.d"
  "/root/repo/src/gamma/machine_aggregate.cc" "src/gamma/CMakeFiles/gamma_machine.dir/machine_aggregate.cc.o" "gcc" "src/gamma/CMakeFiles/gamma_machine.dir/machine_aggregate.cc.o.d"
  "/root/repo/src/gamma/machine_updates.cc" "src/gamma/CMakeFiles/gamma_machine.dir/machine_updates.cc.o" "gcc" "src/gamma/CMakeFiles/gamma_machine.dir/machine_updates.cc.o.d"
  "/root/repo/src/gamma/recovery_log.cc" "src/gamma/CMakeFiles/gamma_machine.dir/recovery_log.cc.o" "gcc" "src/gamma/CMakeFiles/gamma_machine.dir/recovery_log.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exec/CMakeFiles/gamma_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/gamma_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/gamma_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gamma_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gamma_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
