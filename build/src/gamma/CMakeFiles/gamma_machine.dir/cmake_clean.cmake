file(REMOVE_RECURSE
  "CMakeFiles/gamma_machine.dir/machine.cc.o"
  "CMakeFiles/gamma_machine.dir/machine.cc.o.d"
  "CMakeFiles/gamma_machine.dir/machine_aggregate.cc.o"
  "CMakeFiles/gamma_machine.dir/machine_aggregate.cc.o.d"
  "CMakeFiles/gamma_machine.dir/machine_updates.cc.o"
  "CMakeFiles/gamma_machine.dir/machine_updates.cc.o.d"
  "CMakeFiles/gamma_machine.dir/recovery_log.cc.o"
  "CMakeFiles/gamma_machine.dir/recovery_log.cc.o.d"
  "libgamma_machine.a"
  "libgamma_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gamma_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
