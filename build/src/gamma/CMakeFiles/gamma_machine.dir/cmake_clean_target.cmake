file(REMOVE_RECURSE
  "libgamma_machine.a"
)
