# Empty dependencies file for gamma_common.
# This may be replaced when dependencies are built.
