file(REMOVE_RECURSE
  "CMakeFiles/gamma_catalog.dir/catalog.cc.o"
  "CMakeFiles/gamma_catalog.dir/catalog.cc.o.d"
  "CMakeFiles/gamma_catalog.dir/partition.cc.o"
  "CMakeFiles/gamma_catalog.dir/partition.cc.o.d"
  "CMakeFiles/gamma_catalog.dir/schema.cc.o"
  "CMakeFiles/gamma_catalog.dir/schema.cc.o.d"
  "libgamma_catalog.a"
  "libgamma_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gamma_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
