# Empty compiler generated dependencies file for gamma_catalog.
# This may be replaced when dependencies are built.
