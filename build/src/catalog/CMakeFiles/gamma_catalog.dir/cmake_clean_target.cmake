file(REMOVE_RECURSE
  "libgamma_catalog.a"
)
