
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cost_tracker.cc" "src/sim/CMakeFiles/gamma_sim.dir/cost_tracker.cc.o" "gcc" "src/sim/CMakeFiles/gamma_sim.dir/cost_tracker.cc.o.d"
  "/root/repo/src/sim/hardware.cc" "src/sim/CMakeFiles/gamma_sim.dir/hardware.cc.o" "gcc" "src/sim/CMakeFiles/gamma_sim.dir/hardware.cc.o.d"
  "/root/repo/src/sim/multiuser.cc" "src/sim/CMakeFiles/gamma_sim.dir/multiuser.cc.o" "gcc" "src/sim/CMakeFiles/gamma_sim.dir/multiuser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gamma_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
