file(REMOVE_RECURSE
  "CMakeFiles/gamma_sim.dir/cost_tracker.cc.o"
  "CMakeFiles/gamma_sim.dir/cost_tracker.cc.o.d"
  "CMakeFiles/gamma_sim.dir/hardware.cc.o"
  "CMakeFiles/gamma_sim.dir/hardware.cc.o.d"
  "CMakeFiles/gamma_sim.dir/multiuser.cc.o"
  "CMakeFiles/gamma_sim.dir/multiuser.cc.o.d"
  "libgamma_sim.a"
  "libgamma_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gamma_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
