file(REMOVE_RECURSE
  "libgamma_sim.a"
)
