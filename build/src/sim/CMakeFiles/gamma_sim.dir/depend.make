# Empty dependencies file for gamma_sim.
# This may be replaced when dependencies are built.
