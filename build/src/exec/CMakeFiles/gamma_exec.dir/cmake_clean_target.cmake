file(REMOVE_RECURSE
  "libgamma_exec.a"
)
