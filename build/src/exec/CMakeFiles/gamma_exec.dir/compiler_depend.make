# Empty compiler generated dependencies file for gamma_exec.
# This may be replaced when dependencies are built.
