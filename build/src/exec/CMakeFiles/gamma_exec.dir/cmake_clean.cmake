file(REMOVE_RECURSE
  "CMakeFiles/gamma_exec.dir/aggregate.cc.o"
  "CMakeFiles/gamma_exec.dir/aggregate.cc.o.d"
  "CMakeFiles/gamma_exec.dir/bit_vector_filter.cc.o"
  "CMakeFiles/gamma_exec.dir/bit_vector_filter.cc.o.d"
  "CMakeFiles/gamma_exec.dir/hash_join.cc.o"
  "CMakeFiles/gamma_exec.dir/hash_join.cc.o.d"
  "CMakeFiles/gamma_exec.dir/hash_table.cc.o"
  "CMakeFiles/gamma_exec.dir/hash_table.cc.o.d"
  "CMakeFiles/gamma_exec.dir/hybrid_join.cc.o"
  "CMakeFiles/gamma_exec.dir/hybrid_join.cc.o.d"
  "CMakeFiles/gamma_exec.dir/merge_join.cc.o"
  "CMakeFiles/gamma_exec.dir/merge_join.cc.o.d"
  "CMakeFiles/gamma_exec.dir/predicate.cc.o"
  "CMakeFiles/gamma_exec.dir/predicate.cc.o.d"
  "CMakeFiles/gamma_exec.dir/select.cc.o"
  "CMakeFiles/gamma_exec.dir/select.cc.o.d"
  "CMakeFiles/gamma_exec.dir/sort.cc.o"
  "CMakeFiles/gamma_exec.dir/sort.cc.o.d"
  "CMakeFiles/gamma_exec.dir/split_table.cc.o"
  "CMakeFiles/gamma_exec.dir/split_table.cc.o.d"
  "CMakeFiles/gamma_exec.dir/store.cc.o"
  "CMakeFiles/gamma_exec.dir/store.cc.o.d"
  "libgamma_exec.a"
  "libgamma_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gamma_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
