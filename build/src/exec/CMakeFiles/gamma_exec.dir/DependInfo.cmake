
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/aggregate.cc" "src/exec/CMakeFiles/gamma_exec.dir/aggregate.cc.o" "gcc" "src/exec/CMakeFiles/gamma_exec.dir/aggregate.cc.o.d"
  "/root/repo/src/exec/bit_vector_filter.cc" "src/exec/CMakeFiles/gamma_exec.dir/bit_vector_filter.cc.o" "gcc" "src/exec/CMakeFiles/gamma_exec.dir/bit_vector_filter.cc.o.d"
  "/root/repo/src/exec/hash_join.cc" "src/exec/CMakeFiles/gamma_exec.dir/hash_join.cc.o" "gcc" "src/exec/CMakeFiles/gamma_exec.dir/hash_join.cc.o.d"
  "/root/repo/src/exec/hash_table.cc" "src/exec/CMakeFiles/gamma_exec.dir/hash_table.cc.o" "gcc" "src/exec/CMakeFiles/gamma_exec.dir/hash_table.cc.o.d"
  "/root/repo/src/exec/hybrid_join.cc" "src/exec/CMakeFiles/gamma_exec.dir/hybrid_join.cc.o" "gcc" "src/exec/CMakeFiles/gamma_exec.dir/hybrid_join.cc.o.d"
  "/root/repo/src/exec/merge_join.cc" "src/exec/CMakeFiles/gamma_exec.dir/merge_join.cc.o" "gcc" "src/exec/CMakeFiles/gamma_exec.dir/merge_join.cc.o.d"
  "/root/repo/src/exec/predicate.cc" "src/exec/CMakeFiles/gamma_exec.dir/predicate.cc.o" "gcc" "src/exec/CMakeFiles/gamma_exec.dir/predicate.cc.o.d"
  "/root/repo/src/exec/select.cc" "src/exec/CMakeFiles/gamma_exec.dir/select.cc.o" "gcc" "src/exec/CMakeFiles/gamma_exec.dir/select.cc.o.d"
  "/root/repo/src/exec/sort.cc" "src/exec/CMakeFiles/gamma_exec.dir/sort.cc.o" "gcc" "src/exec/CMakeFiles/gamma_exec.dir/sort.cc.o.d"
  "/root/repo/src/exec/split_table.cc" "src/exec/CMakeFiles/gamma_exec.dir/split_table.cc.o" "gcc" "src/exec/CMakeFiles/gamma_exec.dir/split_table.cc.o.d"
  "/root/repo/src/exec/store.cc" "src/exec/CMakeFiles/gamma_exec.dir/store.cc.o" "gcc" "src/exec/CMakeFiles/gamma_exec.dir/store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gamma_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gamma_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/gamma_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/gamma_catalog.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
