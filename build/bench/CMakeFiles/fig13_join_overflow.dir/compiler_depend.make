# Empty compiler generated dependencies file for fig13_join_overflow.
# This may be replaced when dependencies are built.
