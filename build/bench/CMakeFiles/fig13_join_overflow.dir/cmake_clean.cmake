file(REMOVE_RECURSE
  "CMakeFiles/fig13_join_overflow.dir/fig13_join_overflow.cc.o"
  "CMakeFiles/fig13_join_overflow.dir/fig13_join_overflow.cc.o.d"
  "fig13_join_overflow"
  "fig13_join_overflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_join_overflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
