# Empty compiler generated dependencies file for fig07_08_indexed_selection_pagesize.
# This may be replaced when dependencies are built.
