file(REMOVE_RECURSE
  "CMakeFiles/fig07_08_indexed_selection_pagesize.dir/fig07_08_indexed_selection_pagesize.cc.o"
  "CMakeFiles/fig07_08_indexed_selection_pagesize.dir/fig07_08_indexed_selection_pagesize.cc.o.d"
  "fig07_08_indexed_selection_pagesize"
  "fig07_08_indexed_selection_pagesize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_08_indexed_selection_pagesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
