# Empty dependencies file for table1_selection.
# This may be replaced when dependencies are built.
