file(REMOVE_RECURSE
  "CMakeFiles/table1_selection.dir/table1_selection.cc.o"
  "CMakeFiles/table1_selection.dir/table1_selection.cc.o.d"
  "table1_selection"
  "table1_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
