# Empty compiler generated dependencies file for fig05_06_selection_pagesize.
# This may be replaced when dependencies are built.
