file(REMOVE_RECURSE
  "CMakeFiles/fig05_06_selection_pagesize.dir/fig05_06_selection_pagesize.cc.o"
  "CMakeFiles/fig05_06_selection_pagesize.dir/fig05_06_selection_pagesize.cc.o.d"
  "fig05_06_selection_pagesize"
  "fig05_06_selection_pagesize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_06_selection_pagesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
