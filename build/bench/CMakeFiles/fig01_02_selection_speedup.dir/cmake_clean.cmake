file(REMOVE_RECURSE
  "CMakeFiles/fig01_02_selection_speedup.dir/fig01_02_selection_speedup.cc.o"
  "CMakeFiles/fig01_02_selection_speedup.dir/fig01_02_selection_speedup.cc.o.d"
  "fig01_02_selection_speedup"
  "fig01_02_selection_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_02_selection_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
