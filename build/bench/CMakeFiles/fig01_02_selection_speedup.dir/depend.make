# Empty dependencies file for fig01_02_selection_speedup.
# This may be replaced when dependencies are built.
