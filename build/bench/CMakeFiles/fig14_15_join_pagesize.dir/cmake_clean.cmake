file(REMOVE_RECURSE
  "CMakeFiles/fig14_15_join_pagesize.dir/fig14_15_join_pagesize.cc.o"
  "CMakeFiles/fig14_15_join_pagesize.dir/fig14_15_join_pagesize.cc.o.d"
  "fig14_15_join_pagesize"
  "fig14_15_join_pagesize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_15_join_pagesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
