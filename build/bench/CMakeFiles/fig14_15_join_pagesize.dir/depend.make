# Empty dependencies file for fig14_15_join_pagesize.
# This may be replaced when dependencies are built.
