file(REMOVE_RECURSE
  "CMakeFiles/table2_join.dir/table2_join.cc.o"
  "CMakeFiles/table2_join.dir/table2_join.cc.o.d"
  "table2_join"
  "table2_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
