# Empty dependencies file for table2_join.
# This may be replaced when dependencies are built.
