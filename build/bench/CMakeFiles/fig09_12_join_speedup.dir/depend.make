# Empty dependencies file for fig09_12_join_speedup.
# This may be replaced when dependencies are built.
