file(REMOVE_RECURSE
  "CMakeFiles/fig09_12_join_speedup.dir/fig09_12_join_speedup.cc.o"
  "CMakeFiles/fig09_12_join_speedup.dir/fig09_12_join_speedup.cc.o.d"
  "fig09_12_join_speedup"
  "fig09_12_join_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_12_join_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
