file(REMOVE_RECURSE
  "CMakeFiles/ablation_bitvector.dir/ablation_bitvector.cc.o"
  "CMakeFiles/ablation_bitvector.dir/ablation_bitvector.cc.o.d"
  "ablation_bitvector"
  "ablation_bitvector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bitvector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
