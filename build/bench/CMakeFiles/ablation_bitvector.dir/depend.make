# Empty dependencies file for ablation_bitvector.
# This may be replaced when dependencies are built.
