# Empty dependencies file for extension_aggregates.
# This may be replaced when dependencies are built.
