file(REMOVE_RECURSE
  "CMakeFiles/extension_aggregates.dir/extension_aggregates.cc.o"
  "CMakeFiles/extension_aggregates.dir/extension_aggregates.cc.o.d"
  "extension_aggregates"
  "extension_aggregates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_aggregates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
