file(REMOVE_RECURSE
  "CMakeFiles/ablation_hybrid_join.dir/ablation_hybrid_join.cc.o"
  "CMakeFiles/ablation_hybrid_join.dir/ablation_hybrid_join.cc.o.d"
  "ablation_hybrid_join"
  "ablation_hybrid_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hybrid_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
