# Empty dependencies file for ablation_hybrid_join.
# This may be replaced when dependencies are built.
