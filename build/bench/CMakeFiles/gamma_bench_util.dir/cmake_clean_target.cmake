file(REMOVE_RECURSE
  "libgamma_bench_util.a"
)
