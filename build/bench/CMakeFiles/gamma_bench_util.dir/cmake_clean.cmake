file(REMOVE_RECURSE
  "CMakeFiles/gamma_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/gamma_bench_util.dir/bench_util.cc.o.d"
  "libgamma_bench_util.a"
  "libgamma_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gamma_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
