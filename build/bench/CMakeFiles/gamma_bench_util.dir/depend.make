# Empty dependencies file for gamma_bench_util.
# This may be replaced when dependencies are built.
