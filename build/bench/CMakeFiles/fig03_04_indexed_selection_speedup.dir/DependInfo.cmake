
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig03_04_indexed_selection_speedup.cc" "bench/CMakeFiles/fig03_04_indexed_selection_speedup.dir/fig03_04_indexed_selection_speedup.cc.o" "gcc" "bench/CMakeFiles/fig03_04_indexed_selection_speedup.dir/fig03_04_indexed_selection_speedup.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/gamma_bench_util.dir/DependInfo.cmake"
  "/root/repo/build/src/gamma/CMakeFiles/gamma_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/teradata/CMakeFiles/gamma_teradata.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/gamma_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/gamma_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gamma_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/wisconsin/CMakeFiles/gamma_wisconsin.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/gamma_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gamma_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
