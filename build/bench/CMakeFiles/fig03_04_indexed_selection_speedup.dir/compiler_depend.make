# Empty compiler generated dependencies file for fig03_04_indexed_selection_speedup.
# This may be replaced when dependencies are built.
