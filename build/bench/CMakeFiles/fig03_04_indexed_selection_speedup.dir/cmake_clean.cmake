file(REMOVE_RECURSE
  "CMakeFiles/fig03_04_indexed_selection_speedup.dir/fig03_04_indexed_selection_speedup.cc.o"
  "CMakeFiles/fig03_04_indexed_selection_speedup.dir/fig03_04_indexed_selection_speedup.cc.o.d"
  "fig03_04_indexed_selection_speedup"
  "fig03_04_indexed_selection_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_04_indexed_selection_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
