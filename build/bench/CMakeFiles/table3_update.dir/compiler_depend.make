# Empty compiler generated dependencies file for table3_update.
# This may be replaced when dependencies are built.
