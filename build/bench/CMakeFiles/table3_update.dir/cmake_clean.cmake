file(REMOVE_RECURSE
  "CMakeFiles/table3_update.dir/table3_update.cc.o"
  "CMakeFiles/table3_update.dir/table3_update.cc.o.d"
  "table3_update"
  "table3_update.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
