# Empty compiler generated dependencies file for extension_multiuser.
# This may be replaced when dependencies are built.
