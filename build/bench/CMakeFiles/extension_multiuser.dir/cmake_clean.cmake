file(REMOVE_RECURSE
  "CMakeFiles/extension_multiuser.dir/extension_multiuser.cc.o"
  "CMakeFiles/extension_multiuser.dir/extension_multiuser.cc.o.d"
  "extension_multiuser"
  "extension_multiuser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_multiuser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
