file(REMOVE_RECURSE
  "CMakeFiles/extension_recovery_server.dir/extension_recovery_server.cc.o"
  "CMakeFiles/extension_recovery_server.dir/extension_recovery_server.cc.o.d"
  "extension_recovery_server"
  "extension_recovery_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_recovery_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
