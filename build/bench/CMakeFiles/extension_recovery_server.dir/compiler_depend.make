# Empty compiler generated dependencies file for extension_recovery_server.
# This may be replaced when dependencies are built.
