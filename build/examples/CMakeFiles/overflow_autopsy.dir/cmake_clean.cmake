file(REMOVE_RECURSE
  "CMakeFiles/overflow_autopsy.dir/overflow_autopsy.cpp.o"
  "CMakeFiles/overflow_autopsy.dir/overflow_autopsy.cpp.o.d"
  "overflow_autopsy"
  "overflow_autopsy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overflow_autopsy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
