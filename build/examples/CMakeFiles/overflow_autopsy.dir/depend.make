# Empty dependencies file for overflow_autopsy.
# This may be replaced when dependencies are built.
