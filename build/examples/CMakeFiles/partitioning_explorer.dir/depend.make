# Empty dependencies file for partitioning_explorer.
# This may be replaced when dependencies are built.
