file(REMOVE_RECURSE
  "CMakeFiles/quel_session.dir/quel_session.cpp.o"
  "CMakeFiles/quel_session.dir/quel_session.cpp.o.d"
  "quel_session"
  "quel_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quel_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
