# Empty compiler generated dependencies file for quel_session.
# This may be replaced when dependencies are built.
