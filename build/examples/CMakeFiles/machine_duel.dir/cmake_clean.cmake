file(REMOVE_RECURSE
  "CMakeFiles/machine_duel.dir/machine_duel.cpp.o"
  "CMakeFiles/machine_duel.dir/machine_duel.cpp.o.d"
  "machine_duel"
  "machine_duel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/machine_duel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
