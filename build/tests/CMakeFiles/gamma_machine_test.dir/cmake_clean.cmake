file(REMOVE_RECURSE
  "CMakeFiles/gamma_machine_test.dir/gamma_machine_test.cc.o"
  "CMakeFiles/gamma_machine_test.dir/gamma_machine_test.cc.o.d"
  "gamma_machine_test"
  "gamma_machine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gamma_machine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
