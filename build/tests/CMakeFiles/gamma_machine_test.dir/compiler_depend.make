# Empty compiler generated dependencies file for gamma_machine_test.
# This may be replaced when dependencies are built.
