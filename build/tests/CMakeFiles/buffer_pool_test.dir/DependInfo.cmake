
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/buffer_pool_test.cc" "tests/CMakeFiles/buffer_pool_test.dir/buffer_pool_test.cc.o" "gcc" "tests/CMakeFiles/buffer_pool_test.dir/buffer_pool_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/quel/CMakeFiles/gamma_quel.dir/DependInfo.cmake"
  "/root/repo/build/src/gamma/CMakeFiles/gamma_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/teradata/CMakeFiles/gamma_teradata.dir/DependInfo.cmake"
  "/root/repo/build/src/wisconsin/CMakeFiles/gamma_wisconsin.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/gamma_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/gamma_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/gamma_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gamma_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gamma_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
