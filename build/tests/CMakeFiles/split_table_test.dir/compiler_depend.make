# Empty compiler generated dependencies file for split_table_test.
# This may be replaced when dependencies are built.
