file(REMOVE_RECURSE
  "CMakeFiles/split_table_test.dir/split_table_test.cc.o"
  "CMakeFiles/split_table_test.dir/split_table_test.cc.o.d"
  "split_table_test"
  "split_table_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/split_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
