# Empty compiler generated dependencies file for quel_test.
# This may be replaced when dependencies are built.
