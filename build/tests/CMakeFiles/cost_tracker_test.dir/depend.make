# Empty dependencies file for cost_tracker_test.
# This may be replaced when dependencies are built.
