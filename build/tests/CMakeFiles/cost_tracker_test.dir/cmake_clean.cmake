file(REMOVE_RECURSE
  "CMakeFiles/cost_tracker_test.dir/cost_tracker_test.cc.o"
  "CMakeFiles/cost_tracker_test.dir/cost_tracker_test.cc.o.d"
  "cost_tracker_test"
  "cost_tracker_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cost_tracker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
