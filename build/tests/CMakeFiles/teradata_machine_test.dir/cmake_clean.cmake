file(REMOVE_RECURSE
  "CMakeFiles/teradata_machine_test.dir/teradata_machine_test.cc.o"
  "CMakeFiles/teradata_machine_test.dir/teradata_machine_test.cc.o.d"
  "teradata_machine_test"
  "teradata_machine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/teradata_machine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
