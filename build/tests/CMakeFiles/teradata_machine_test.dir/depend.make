# Empty dependencies file for teradata_machine_test.
# This may be replaced when dependencies are built.
