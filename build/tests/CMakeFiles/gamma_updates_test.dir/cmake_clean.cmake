file(REMOVE_RECURSE
  "CMakeFiles/gamma_updates_test.dir/gamma_updates_test.cc.o"
  "CMakeFiles/gamma_updates_test.dir/gamma_updates_test.cc.o.d"
  "gamma_updates_test"
  "gamma_updates_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gamma_updates_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
