# Empty dependencies file for gamma_updates_test.
# This may be replaced when dependencies are built.
