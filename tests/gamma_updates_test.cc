// Integration tests for Gamma's update queries (Table 3 semantics):
// appends, deletes and the three modify variants, with index maintenance
// through deferred-update files.

#include <gtest/gtest.h>

#include "gamma/machine.h"
#include "test_util.h"
#include "wisconsin/wisconsin.h"

namespace gammadb::gamma {
namespace {

using catalog::PartitionSpec;
using catalog::TupleView;
using exec::Predicate;
namespace wis = gammadb::wisconsin;

class GammaUpdatesTest : public ::testing::Test {
 protected:
  GammaUpdatesTest() : machine_(Config()) {
    tuples_ = wis::GenerateWisconsin(1000, 3);
    EXPECT_TRUE(machine_
                    .CreateRelation("R", wis::WisconsinSchema(),
                                    PartitionSpec::Hashed(wis::kUnique1))
                    .ok());
    EXPECT_TRUE(machine_.LoadTuples("R", tuples_).ok());
    EXPECT_TRUE(machine_.BuildIndex("R", wis::kUnique1, true).ok());
    EXPECT_TRUE(machine_.BuildIndex("R", wis::kUnique2, false).ok());
  }

  static GammaConfig Config() {
    GammaConfig config;
    config.num_disk_nodes = 4;
    config.num_diskless_nodes = 0;
    return config;
  }

  std::vector<uint8_t> MakeTuple(int32_t u1, int32_t u2) {
    catalog::TupleBuilder builder(&wis::WisconsinSchema());
    builder.SetInt(wis::kUnique1, u1).SetInt(wis::kUnique2, u2);
    builder.SetChar(wis::kStringU1, "new");
    return {builder.bytes().begin(), builder.bytes().end()};
  }

  /// Returns the unique2 value of the tuple with the given unique1, or -1.
  int32_t Unique2Of(int32_t u1) {
    const auto tuples = machine_.ReadRelation("R");
    for (const auto& tuple : *tuples) {
      const TupleView view(&wis::WisconsinSchema(), tuple);
      if (view.GetInt(wis::kUnique1) == u1) {
        return view.GetInt(wis::kUnique2);
      }
    }
    return -1;
  }

  GammaMachine machine_;
  std::vector<std::vector<uint8_t>> tuples_;
};

TEST_F(GammaUpdatesTest, AppendAddsTuple) {
  AppendQuery query;
  query.relation = "R";
  query.tuple = MakeTuple(5000, 5000);
  const auto result = machine_.RunAppend(query);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*machine_.CountTuples("R"), 1001u);
  EXPECT_EQ(Unique2Of(5000), 5000);

  // The new tuple is findable through the maintained indices.
  SelectQuery select;
  select.relation = "R";
  select.predicate = Predicate::Eq(wis::kUnique2, 5000);
  select.access = AccessPath::kNonClusteredIndex;
  select.store_result = false;
  const auto found = machine_.RunSelect(select);
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found->result_tuples, 1u);
}

TEST_F(GammaUpdatesTest, AppendWithIndexCostsMore) {
  GammaMachine bare(Config());
  ASSERT_TRUE(bare.CreateRelation("R", wis::WisconsinSchema(),
                                  PartitionSpec::Hashed(wis::kUnique1))
                  .ok());
  ASSERT_TRUE(bare.LoadTuples("R", tuples_).ok());

  AppendQuery query;
  query.relation = "R";
  query.tuple = MakeTuple(6000, 6000);
  const auto no_index = bare.RunAppend(query);
  const auto with_index = machine_.RunAppend(query);
  ASSERT_TRUE(no_index.ok());
  ASSERT_TRUE(with_index.ok());
  // Table 3 rows 1-2: maintaining the indices (via the deferred-update
  // file) costs measurably more than a bare append.
  EXPECT_GT(with_index->seconds(), no_index->seconds() + 0.05);
}

TEST_F(GammaUpdatesTest, DeleteRemovesTupleAndIndexEntries) {
  DeleteQuery query;
  query.relation = "R";
  query.key_attr = wis::kUnique1;
  query.key = 123;
  const auto result = machine_.RunDelete(query);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->result_tuples, 1u);
  EXPECT_EQ(*machine_.CountTuples("R"), 999u);
  EXPECT_EQ(Unique2Of(123), -1);

  // Index no longer finds it.
  SelectQuery select;
  select.relation = "R";
  select.predicate = Predicate::Eq(wis::kUnique1, 123);
  select.store_result = false;
  const auto found = machine_.RunSelect(select);
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found->result_tuples, 0u);

  // Deleting again is a no-op.
  const auto again = machine_.RunDelete(query);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->result_tuples, 0u);
}

TEST_F(GammaUpdatesTest, ModifyNonIndexedAttributeInPlace) {
  ModifyQuery query;
  query.relation = "R";
  query.locate_attr = wis::kUnique1;
  query.locate_key = 42;
  query.target_attr = wis::kTen;
  query.new_value = 77;
  const auto result = machine_.RunModify(query);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->result_tuples, 1u);
  const auto all = machine_.ReadRelation("R");
  for (const auto& tuple : *all) {
    const TupleView view(&wis::WisconsinSchema(), tuple);
    if (view.GetInt(wis::kUnique1) == 42) {
      EXPECT_EQ(view.GetInt(wis::kTen), 77);
    }
  }
  EXPECT_EQ(*machine_.CountTuples("R"), 1000u);
}

TEST_F(GammaUpdatesTest, ModifyKeyAttributeRelocates) {
  const int32_t old_u2 = Unique2Of(10);
  ModifyQuery query;
  query.relation = "R";
  query.locate_attr = wis::kUnique1;
  query.locate_key = 10;
  query.target_attr = wis::kUnique1;
  query.new_value = 8888;
  const auto result = machine_.RunModify(query);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->result_tuples, 1u);
  EXPECT_EQ(Unique2Of(10), -1);
  EXPECT_EQ(Unique2Of(8888), old_u2);
  EXPECT_EQ(*machine_.CountTuples("R"), 1000u);

  // Both the clustered index (at the new home) and the secondary index
  // still locate the relocated tuple.
  SelectQuery by_key;
  by_key.relation = "R";
  by_key.predicate = Predicate::Eq(wis::kUnique1, 8888);
  by_key.store_result = false;
  EXPECT_EQ(machine_.RunSelect(by_key)->result_tuples, 1u);
  SelectQuery by_u2;
  by_u2.relation = "R";
  by_u2.predicate = Predicate::Eq(wis::kUnique2, old_u2);
  by_u2.access = AccessPath::kNonClusteredIndex;
  by_u2.store_result = false;
  EXPECT_EQ(machine_.RunSelect(by_u2)->result_tuples, 1u);
}

TEST_F(GammaUpdatesTest, ModifyIndexedAttributeUpdatesIndex) {
  ModifyQuery query;
  query.relation = "R";
  query.locate_attr = wis::kUnique2;
  query.locate_key = 500;
  query.target_attr = wis::kUnique2;
  query.new_value = 7777;
  const auto result = machine_.RunModify(query);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->result_tuples, 1u);

  SelectQuery old_value;
  old_value.relation = "R";
  old_value.predicate = Predicate::Eq(wis::kUnique2, 500);
  old_value.access = AccessPath::kNonClusteredIndex;
  old_value.store_result = false;
  EXPECT_EQ(machine_.RunSelect(old_value)->result_tuples, 0u);
  SelectQuery new_value = old_value;
  new_value.predicate = Predicate::Eq(wis::kUnique2, 7777);
  EXPECT_EQ(machine_.RunSelect(new_value)->result_tuples, 1u);
}

TEST_F(GammaUpdatesTest, UpdateTimesAreSubSecond) {
  // Table 3: every Gamma single-tuple update lands well under two seconds
  // regardless of relation size; sanity-check the model's magnitudes.
  AppendQuery append{.relation = "R", .tuple = MakeTuple(9999, 9999)};
  const auto a = machine_.RunAppend(append);
  EXPECT_LT(a->seconds(), 2.0);
  EXPECT_GT(a->seconds(), 0.01);

  DeleteQuery del{.relation = "R", .key_attr = wis::kUnique1, .key = 9999};
  const auto d = machine_.RunDelete(del);
  EXPECT_LT(d->seconds(), 2.0);
}

}  // namespace
}  // namespace gammadb::gamma
