// Unit tests for the join-site algorithms: the Simple hash-partitioned join
// with overflow escalation, and the Hybrid hash join.

#include <set>

#include <gtest/gtest.h>

#include "exec/aggregate.h"
#include "exec/hash_join.h"
#include "exec/hybrid_join.h"
#include "storage/storage_manager.h"
#include "test_util.h"

namespace gammadb::exec {
namespace {

using gammadb::testing::MiniSchema;
using gammadb::testing::MiniTuple;

uint64_t TupleCost() {
  return MiniSchema().tuple_size() + JoinHashTable::kPerEntryOverhead;
}

class HashJoinSiteTest : public ::testing::Test {
 protected:
  HashJoinSiteTest() : sm_(4096, 256 * 1024) {}
  storage::StorageManager sm_;
};

TEST_F(HashJoinSiteTest, NoOverflowJoinsCompletely) {
  HashJoinSite site(0, &sm_, &MiniSchema(), &MiniSchema(), 0, 0,
                    TupleCost() * 1000);
  site.BeginRound(1);
  for (int32_t i = 0; i < 100; ++i) site.AddBuildTuple(MiniTuple(i, i));
  uint64_t matches = 0;
  for (int32_t i = 0; i < 200; ++i) {
    site.AddProbeTuple(MiniTuple(i, -i),
                       [&](std::span<const uint8_t>) { ++matches; });
  }
  EXPECT_EQ(matches, 100u);
  EXPECT_FALSE(site.HasOverflow());
  EXPECT_EQ(site.stats().escalations, 0u);
}

TEST_F(HashJoinSiteTest, OverflowSpoolsConsistently) {
  // Capacity for ~50 tuples, 200 build tuples: must overflow.
  HashJoinSite site(0, &sm_, &MiniSchema(), &MiniSchema(), 0, 0,
                    TupleCost() * 50);
  site.BeginRound(1);
  for (int32_t i = 0; i < 200; ++i) site.AddBuildTuple(MiniTuple(i, i));
  EXPECT_GT(site.stats().escalations, 0u);
  EXPECT_GT(site.stats().build_spooled, 0u);
  EXPECT_TRUE(site.HasOverflow());

  uint64_t matches = 0;
  for (int32_t i = 0; i < 200; ++i) {
    site.AddProbeTuple(MiniTuple(i, -i),
                       [&](std::span<const uint8_t>) { ++matches; });
  }
  // Key invariant: online matches + spooled pairs account for every key.
  // A probe tuple either matched now or was spooled for the next round
  // alongside its build partner.
  EXPECT_EQ(matches + site.probe_spool().num_tuples(), 200u);
  EXPECT_EQ(site.build_spool().num_tuples() + site.table().size(), 200u);

  // Round 2 on the spooled pair resolves the rest (single site, so feed
  // the spools straight back).
  std::vector<std::vector<uint8_t>> build_spilled, probe_spilled;
  site.prev_build_spool();  // (not yet retired)
  site.build_spool().Scan([&](storage::Rid, std::span<const uint8_t> t) {
    build_spilled.emplace_back(t.begin(), t.end());
    return true;
  });
  site.probe_spool().Scan([&](storage::Rid, std::span<const uint8_t> t) {
    probe_spilled.emplace_back(t.begin(), t.end());
    return true;
  });
  int round = 2;
  while (!build_spilled.empty() || !probe_spilled.empty()) {
    ASSERT_LT(round, 32);
    site.BeginRound(static_cast<uint64_t>(round));
    for (const auto& t : build_spilled) site.AddBuildTuple(t);
    for (const auto& t : probe_spilled) {
      site.AddProbeTuple(t, [&](std::span<const uint8_t>) { ++matches; });
    }
    build_spilled.clear();
    probe_spilled.clear();
    site.build_spool().Scan([&](storage::Rid, std::span<const uint8_t> t) {
      build_spilled.emplace_back(t.begin(), t.end());
      return true;
    });
    site.probe_spool().Scan([&](storage::Rid, std::span<const uint8_t> t) {
      probe_spilled.emplace_back(t.begin(), t.end());
      return true;
    });
    ++round;
  }
  EXPECT_EQ(matches, 200u);
}

TEST_F(HashJoinSiteTest, EmitsConcatenatedTuple) {
  HashJoinSite site(0, &sm_, &MiniSchema(), &MiniSchema(), 0, 0,
                    TupleCost() * 10);
  site.BeginRound(1);
  site.AddBuildTuple(MiniTuple(7, 100));
  std::vector<uint8_t> joined;
  site.AddProbeTuple(MiniTuple(7, 200), [&](std::span<const uint8_t> t) {
    joined.assign(t.begin(), t.end());
  });
  ASSERT_EQ(joined.size(), 2 * MiniSchema().tuple_size());
  const catalog::Schema schema =
      catalog::Schema::Concat(MiniSchema(), MiniSchema());
  const catalog::TupleView view(&schema, joined);
  EXPECT_EQ(view.GetInt(0), 7);
  EXPECT_EQ(view.GetInt(1), 100);  // build side first
  EXPECT_EQ(view.GetInt(4), 200);  // then probe side
}

TEST_F(HashJoinSiteTest, SkewSafetyValveForcesInserts) {
  // All build tuples share one key: no residency split can help; the site
  // must fall back to over-committing rather than loop forever.
  HashJoinSite site(0, &sm_, &MiniSchema(), &MiniSchema(), 0, 0,
                    TupleCost() * 10);
  site.BeginRound(1);
  for (int32_t i = 0; i < 100; ++i) site.AddBuildTuple(MiniTuple(42, i));
  // Every tuple is either resident (possibly via forced over-commit) or
  // spooled; none vanished.
  EXPECT_EQ(site.table().size() + site.build_spool().num_tuples(), 100u);
  uint64_t matches = 0;
  site.AddProbeTuple(MiniTuple(42, 0),
                     [&](std::span<const uint8_t>) { ++matches; });
  if (site.stats().probe_spooled == 0) {
    // Key 42 stayed resident: everything must be in the table (forced), and
    // the probe saw all 100 partners.
    EXPECT_EQ(matches, 100u);
    EXPECT_GT(site.stats().forced_inserts, 0u);
  } else {
    // Key 42 went non-resident: build partners are all in the spool.
    EXPECT_EQ(matches, 0u);
    EXPECT_EQ(site.build_spool().num_tuples(), 100u);
  }
}

TEST(HybridJoinTest, NoSpillWhenEstimateFits) {
  storage::StorageManager sm(4096, 256 * 1024);
  HybridHashJoinSite site(0, &sm, &MiniSchema(), &MiniSchema(), 0, 0,
                          /*capacity=*/TupleCost() * 1000,
                          /*expected=*/TupleCost() * 100, /*seed=*/5);
  EXPECT_EQ(site.stats().num_buckets, 1u);
  for (int32_t i = 0; i < 100; ++i) site.AddBuildTuple(MiniTuple(i, i));
  uint64_t matches = 0;
  for (int32_t i = 0; i < 100; ++i) {
    site.AddProbeTuple(MiniTuple(i, -i),
                       [&](std::span<const uint8_t>) { ++matches; });
  }
  site.FinishSpooledBuckets([&](std::span<const uint8_t>) { ++matches; });
  EXPECT_EQ(matches, 100u);
  EXPECT_EQ(site.stats().build_spooled, 0u);
}

TEST(HybridJoinTest, SpooledBucketsJoinOnce) {
  storage::StorageManager sm(4096, 1 << 20);
  const uint64_t capacity = TupleCost() * 60;
  HybridHashJoinSite site(0, &sm, &MiniSchema(), &MiniSchema(), 0, 0,
                          capacity,
                          /*expected=*/TupleCost() * 200, /*seed=*/5);
  EXPECT_GE(site.stats().num_buckets, 4u);
  for (int32_t i = 0; i < 200; ++i) site.AddBuildTuple(MiniTuple(i, i));
  uint64_t matches = 0;
  for (int32_t i = 0; i < 200; ++i) {
    site.AddProbeTuple(MiniTuple(i, -i),
                       [&](std::span<const uint8_t>) { ++matches; });
  }
  EXPECT_LT(matches, 200u);  // only bucket 0 matched online
  site.FinishSpooledBuckets([&](std::span<const uint8_t>) { ++matches; });
  EXPECT_EQ(matches, 200u);
  // Hybrid writes each spooled tuple exactly once.
  EXPECT_LE(site.stats().build_spooled, 200u);
}

TEST(HybridJoinTest, UnderestimateStillCorrect) {
  storage::StorageManager sm(4096, 1 << 20);
  // The "optimizer" claims 10 tuples; 300 arrive. Bucket 0 spills.
  HybridHashJoinSite site(0, &sm, &MiniSchema(), &MiniSchema(), 0, 0,
                          /*capacity=*/TupleCost() * 50,
                          /*expected=*/TupleCost() * 10, /*seed=*/5);
  for (int32_t i = 0; i < 300; ++i) site.AddBuildTuple(MiniTuple(i, i));
  uint64_t matches = 0;
  for (int32_t i = 0; i < 300; ++i) {
    site.AddProbeTuple(MiniTuple(i, -i),
                       [&](std::span<const uint8_t>) { ++matches; });
  }
  site.FinishSpooledBuckets([&](std::span<const uint8_t>) { ++matches; });
  EXPECT_EQ(matches, 300u);
}

TEST(AggregateTest, ScalarFunctions) {
  storage::StorageManager sm(4096, 64 * 1024);
  GroupedAggregator agg(-1, /*value_attr=*/1, AggFunc::kAvg, &MiniSchema(),
                        &sm.charge());
  for (int32_t v : {10, 20, 30, 40}) agg.Consume(MiniTuple(0, v));
  ASSERT_EQ(agg.num_groups(), 1u);
  const AggState& state = agg.groups().at(0);
  EXPECT_EQ(state.count, 4u);
  EXPECT_EQ(state.sum, 100);
  EXPECT_EQ(state.min, 10);
  EXPECT_EQ(state.max, 40);
  EXPECT_DOUBLE_EQ(state.Final(AggFunc::kAvg), 25.0);
  EXPECT_DOUBLE_EQ(state.Final(AggFunc::kCount), 4.0);
  EXPECT_DOUBLE_EQ(state.Final(AggFunc::kSum), 100.0);
  EXPECT_DOUBLE_EQ(state.Final(AggFunc::kMin), 10.0);
  EXPECT_DOUBLE_EQ(state.Final(AggFunc::kMax), 40.0);
}

TEST(AggregateTest, GroupedAndMerged) {
  storage::StorageManager sm(4096, 64 * 1024);
  GroupedAggregator left(0, 1, AggFunc::kSum, &MiniSchema(), &sm.charge());
  GroupedAggregator right(0, 1, AggFunc::kSum, &MiniSchema(), &sm.charge());
  for (int32_t i = 0; i < 100; ++i) {
    (i % 2 == 0 ? left : right).Consume(MiniTuple(i % 5, i));
  }
  left.MergePartials(right);
  EXPECT_EQ(left.num_groups(), 5u);
  int64_t total = 0;
  for (const auto& [group, state] : left.groups()) total += state.sum;
  EXPECT_EQ(total, 99 * 100 / 2);
}

TEST(AggregateTest, EmitResultsShape) {
  storage::StorageManager sm(4096, 64 * 1024);
  GroupedAggregator agg(0, 1, AggFunc::kMax, &MiniSchema(), &sm.charge());
  agg.Consume(MiniTuple(1, 10));
  agg.Consume(MiniTuple(1, 30));
  agg.Consume(MiniTuple(2, 20));
  std::vector<std::pair<int32_t, int32_t>> rows;
  const catalog::Schema schema = GroupedAggregator::ResultSchema();
  agg.EmitResults([&](std::span<const uint8_t> t) {
    const catalog::TupleView view(&schema, t);
    rows.emplace_back(view.GetInt(0), view.GetInt(1));
  });
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], std::make_pair(1, 30));
  EXPECT_EQ(rows[1], std::make_pair(2, 20));
}

}  // namespace
}  // namespace gammadb::exec
