// Tests for skew-aware split-table routing: the SplitTableBuilder's LPT
// bucket assignment and heavy-hitter pinning, the frequency-sketch skew
// predictor and its planner threshold, and the machine-level properties —
// identical answers under every routing policy, bit-identical runs across
// host-pool widths, failover mid-join, and bucket-map aggregate merges.

#include <algorithm>
#include <cstring>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "exec/skew.h"
#include "gamma/machine.h"
#include "opt/statistics.h"
#include "sim/host_pool.h"
#include "test_util.h"
#include "wisconsin/wisconsin.h"

namespace gammadb {
namespace {

namespace wis = gammadb::wisconsin;
using exec::SkewAssignment;
using exec::SplitTableBuilder;

std::vector<std::vector<uint8_t>> Sorted(
    std::vector<std::vector<uint8_t>> tuples) {
  std::sort(tuples.begin(), tuples.end());
  return tuples;
}

template <typename Fn>
auto WithThreads(int threads, Fn&& body) {
  auto& pool = sim::HostPool::Instance();
  const int prev = pool.num_threads();
  pool.set_num_threads(threads);
  auto result = body();
  pool.set_num_threads(prev);
  return result;
}

// --- SplitTableBuilder ---

TEST(SplitTableBuilderTest, MapCoversAllBucketsWithinRange) {
  SplitTableBuilder builder(exec::ChooseBucketCount(3), 0x1234);
  for (int32_t key = 0; key < 50; ++key) builder.AddSampleKey(key, 0);
  const SkewAssignment out = builder.Build({0, 1, 2});
  ASSERT_EQ(out.bucket_map.size(), builder.num_buckets());
  for (const int32_t dest : out.bucket_map) {
    EXPECT_GE(dest, 0);
    EXPECT_LT(dest, 3);
  }
  uint64_t assigned = 0;
  for (const uint64_t w : out.dest_weight) assigned += w;
  EXPECT_EQ(assigned, out.total_weight);
  EXPECT_EQ(out.total_weight, 50u);
}

TEST(SplitTableBuilderTest, HeavyHitterPinnedToProducingNode) {
  SplitTableBuilder builder(256, 0x99);
  // Key 7 carries well over half a fair share, mostly produced at node 2
  // (which is a destination): its bucket must stay there.
  for (int i = 0; i < 90; ++i) builder.AddSampleKey(7, 2);
  for (int i = 0; i < 10; ++i) builder.AddSampleKey(7, 1);
  for (int32_t key = 100; key < 200; ++key) builder.AddSampleKey(key, 1);
  const SkewAssignment out = builder.Build({1, 2, 3, 4});
  ASSERT_EQ(out.heavy.size(), 1u);
  EXPECT_EQ(out.heavy[0].key, 7);
  EXPECT_EQ(out.heavy[0].home_node, 2);
  EXPECT_TRUE(out.heavy[0].pinned);
  EXPECT_EQ(out.heavy[0].dest_index, 1);  // dest_nodes[1] == node 2
  EXPECT_EQ(out.bucket_map[out.heavy[0].bucket], 1);
}

TEST(SplitTableBuilderTest, HeavyHitterWithForeignHomeIsNotPinned) {
  SplitTableBuilder builder(256, 0x99);
  for (int i = 0; i < 90; ++i) builder.AddSampleKey(7, 0);  // not a dest
  for (int32_t key = 100; key < 200; ++key) builder.AddSampleKey(key, 1);
  const SkewAssignment out = builder.Build({1, 2, 3, 4});
  ASSERT_EQ(out.heavy.size(), 1u);
  EXPECT_FALSE(out.heavy[0].pinned);
  // Still assigned somewhere by LPT, and the map agrees.
  ASSERT_GE(out.heavy[0].dest_index, 0);
  EXPECT_EQ(out.bucket_map[out.heavy[0].bucket], out.heavy[0].dest_index);
}

TEST(SplitTableBuilderTest, LptBalancesSeparableWeights) {
  // Four equally heavy keys over four destinations: a perfect split exists
  // (each key in its own bucket at 256 buckets), and LPT must find it.
  SplitTableBuilder builder(256, 0x42);
  for (int32_t key : {11, 22, 33, 44}) {
    for (int i = 0; i < 100; ++i) builder.AddSampleKey(key, 0);
  }
  const SkewAssignment out = builder.Build({4, 5, 6, 7});
  for (const uint64_t w : out.dest_weight) EXPECT_EQ(w, 100u);
  EXPECT_LT(out.predicted_imbalance, 1.1);
  // Plain hashing four keys onto four sites collides somewhere or not —
  // either way it cannot beat the explicit assignment.
  EXPECT_GE(out.hash_imbalance, 1.0);
}

TEST(SplitTableBuilderTest, SkewedSampleReadsAsHashImbalanced) {
  // One key with a 40% share: hash routing would land it whole on one of
  // the four sites (imbalance >= 1 + 0.4 * 3 over the sample), while the
  // bucket map isolates it.
  SplitTableBuilder builder(512, 0x7);
  for (int i = 0; i < 400; ++i) builder.AddSampleKey(1000, 3);
  for (int32_t key = 0; key < 600; ++key) builder.AddSampleKey(key, 1);
  const SkewAssignment out = builder.Build({8, 9, 10, 11});
  EXPECT_GT(out.hash_imbalance, 1.5);
  const uint64_t max_w =
      *std::max_element(out.dest_weight.begin(), out.dest_weight.end());
  // The heavy destination holds the heavy bucket and little else.
  EXPECT_LT(static_cast<double>(max_w), 0.45 * 1000.0);
}

TEST(SplitTableBuilderTest, BuildIsDeterministic) {
  auto make = [] {
    SplitTableBuilder builder(exec::ChooseBucketCount(4), 0xABC);
    for (int32_t key = 0; key < 300; ++key) {
      builder.AddSampleKey(key % 37, key % 5);
    }
    return builder.Build({0, 1, 2, 3});
  };
  const SkewAssignment a = make();
  const SkewAssignment b = make();
  EXPECT_EQ(a.bucket_map, b.bucket_map);
  EXPECT_EQ(a.dest_weight, b.dest_weight);
  EXPECT_EQ(a.hash_imbalance, b.hash_imbalance);
}

TEST(SplitTableBuilderTest, EmptySampleSpreadsBucketsEvenly) {
  SplitTableBuilder builder(256, 0x1);
  const SkewAssignment out = builder.Build({0, 1, 2});
  std::vector<int> per_dest(3, 0);
  for (const int32_t dest : out.bucket_map) {
    ASSERT_GE(dest, 0);
    ASSERT_LT(dest, 3);
    ++per_dest[static_cast<size_t>(dest)];
  }
  const auto [lo, hi] = std::minmax_element(per_dest.begin(), per_dest.end());
  EXPECT_LE(*hi - *lo, 1);
}

// --- Frequency sketch and the planner threshold ---

TEST(SkewPredictorTest, UniformAttributeStaysBelowThreshold) {
  opt::AttrStats attr;
  for (int32_t v = 0; v < 4000; ++v) attr.freq.Insert(v);
  attr.has_values = true;
  EXPECT_LT(opt::PredictHashImbalance(attr, 8),
            opt::kSkewImbalanceThreshold);
}

TEST(SkewPredictorTest, HeavyValueCrossesThreshold) {
  opt::AttrStats attr;
  // 25% of the inserts are one value: predicted imbalance approaches
  // 1 + 0.25 * 7 = 2.75 over 8 sites, far past the 1.25 threshold.
  for (int32_t i = 0; i < 8000; ++i) {
    attr.freq.Insert(i % 4 == 0 ? 77 : i);
  }
  attr.has_values = true;
  EXPECT_GT(opt::PredictHashImbalance(attr, 8),
            opt::kSkewImbalanceThreshold);
}

// --- Machine-level properties ---

gamma::GammaConfig SkewConfig() {
  gamma::GammaConfig config;
  config.num_disk_nodes = 4;
  config.num_diskless_nodes = 4;
  config.join_memory_total = 16 << 20;
  return config;
}

/// S: 3000 tuples with unique2 drawn Zipf(theta) over [0, 100); R: 400
/// tuples with unique2 folded uniformly onto the same domain, so the join
/// emits exactly 4 matches per S tuple.
std::unique_ptr<gamma::GammaMachine> MakeSkewLoaded(
    const gamma::GammaConfig& config, double theta) {
  auto machine = std::make_unique<gamma::GammaMachine>(config);
  const auto& schema = wis::WisconsinSchema();
  const auto spec = catalog::PartitionSpec::Hashed(wis::kUnique1);
  GAMMA_CHECK(machine->CreateRelation("S", schema, spec).ok());
  GAMMA_CHECK(machine
                  ->LoadTuples("S", wis::GenerateWisconsinZipf(
                                        3000, 21,
                                        wis::ZipfColumn{wis::kUnique2, theta,
                                                        100}))
                  .ok());
  GAMMA_CHECK(machine->CreateRelation("R", schema, spec).ok());
  // 4 R tuples per join value (unique2 of a 400-tuple Wisconsin relation
  // ranges over [0, 400): fold onto the 100-value domain).
  auto r = wis::GenerateWisconsin(400, 9);
  const uint32_t off = schema.offset(wis::kUnique2);
  for (uint32_t i = 0; i < r.size(); ++i) {
    const int32_t folded =
        catalog::TupleView(&schema, r[i]).GetInt(wis::kUnique2) % 100;
    std::memcpy(r[i].data() + off, &folded, sizeof(folded));
  }
  GAMMA_CHECK(machine->LoadTuples("R", r).ok());
  return machine;
}

gamma::JoinQuery SkewJoin(gamma::SplitRouting routing) {
  gamma::JoinQuery join;
  join.outer = "S";
  join.inner = "R";
  join.outer_attr = wis::kUnique2;
  join.inner_attr = wis::kUnique2;
  join.mode = gamma::JoinMode::kRemote;
  join.algorithm = gamma::JoinAlgorithm::kHybridHash;
  join.routing = routing;
  return join;
}

bool RanSkewSample(const exec::QueryResult& result) {
  for (const auto& phase : result.metrics.phases) {
    if (phase.name == "skew_sample") return true;
  }
  return false;
}

TEST(SkewJoinTest, AnswersIdenticalAcrossRoutingModes) {
  std::vector<std::vector<uint8_t>> reference;
  for (const auto routing :
       {gamma::SplitRouting::kHash, gamma::SplitRouting::kBucketMap,
        gamma::SplitRouting::kAuto}) {
    auto machine = MakeSkewLoaded(SkewConfig(), 1.0);
    const auto result = machine->RunJoin(SkewJoin(routing));
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->result_tuples, 3000u * 4u);
    EXPECT_EQ(RanSkewSample(*result),
              routing != gamma::SplitRouting::kHash);  // theta=1 is skewed
    auto stored = Sorted(*machine->ReadRelation(result->result_relation));
    if (reference.empty()) {
      reference = std::move(stored);
    } else {
      EXPECT_EQ(stored, reference);
    }
  }
}

TEST(SkewJoinTest, AutoRoutingStaysOnHashForUniformKeys) {
  auto machine = MakeSkewLoaded(SkewConfig(), 0.0);
  const auto result =
      machine->RunJoin(SkewJoin(gamma::SplitRouting::kAuto));
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(RanSkewSample(*result));
}

TEST(SkewJoinTest, BucketMapRunIsBitIdenticalAcrossHostThreads) {
  auto run = [] {
    auto machine = MakeSkewLoaded(SkewConfig(), 1.0);
    const auto result =
        machine->RunJoin(SkewJoin(gamma::SplitRouting::kBucketMap));
    GAMMA_CHECK(result.ok());
    return std::make_pair(
        result->seconds(),
        Sorted(*machine->ReadRelation(result->result_relation)));
  };
  const auto seq = WithThreads(1, run);
  const auto par = WithThreads(4, run);
  EXPECT_EQ(seq.first, par.first);  // bitwise simulated seconds
  EXPECT_EQ(seq.second, par.second);
}

TEST(SkewJoinTest, NodeDeathMidJoinFailsOverWithBucketMap) {
  auto config = SkewConfig();
  config.num_diskless_nodes = 0;
  config.chained_declustering = true;
  auto clean = MakeSkewLoaded(config, 1.0);
  auto dying = MakeSkewLoaded(config, 1.0);
  auto join = SkewJoin(gamma::SplitRouting::kBucketMap);
  join.mode = gamma::JoinMode::kLocal;

  const auto expected = clean->RunJoin(join);
  ASSERT_TRUE(expected.ok());

  dying->KillNodeAfterOps(1, 10);
  const auto survived = dying->RunJoin(join);
  ASSERT_TRUE(survived.ok()) << survived.status().ToString();
  EXPECT_FALSE(dying->NodeAlive(1));
  EXPECT_EQ(survived->failover_retries, 1u);
  EXPECT_EQ(survived->result_tuples, expected->result_tuples);
  EXPECT_EQ(Sorted(*dying->ReadRelation(survived->result_relation)),
            Sorted(*clean->ReadRelation(expected->result_relation)));
}

TEST(SkewJoinTest, SkewedAggregateMergeMatchesBruteForce) {
  // Zipf group keys push the aggregate's merge redistribution over the
  // threshold; the exact-weight bucket map must not change any group count.
  auto machine = std::make_unique<gamma::GammaMachine>(SkewConfig());
  const auto& schema = wis::WisconsinSchema();
  const auto tuples = wis::GenerateWisconsinZipf(
      4000, 33, wis::ZipfColumn{wis::kUnique2, 1.0, 50});
  GAMMA_CHECK(machine
                  ->CreateRelation("S", schema,
                                   catalog::PartitionSpec::Hashed(
                                       wis::kUnique1))
                  .ok());
  GAMMA_CHECK(machine->LoadTuples("S", tuples).ok());

  std::map<int32_t, int64_t> truth;
  for (const auto& tuple : tuples) {
    ++truth[catalog::TupleView(&schema, tuple).GetInt(wis::kUnique2)];
  }

  gamma::AggregateQuery agg;
  agg.relation = "S";
  agg.group_attr = wis::kUnique2;
  agg.value_attr = wis::kUnique1;
  agg.func = exec::AggFunc::kCount;
  const auto result = machine->RunAggregate(agg);
  ASSERT_TRUE(result.ok());
  const catalog::Schema result_schema = exec::GroupedAggregator::ResultSchema();
  ASSERT_EQ(result->returned.size(), truth.size());
  for (const auto& row : result->returned) {
    const catalog::TupleView view(&result_schema, row);
    EXPECT_EQ(view.GetInt(1), truth.at(view.GetInt(0)))
        << "group " << view.GetInt(0);
  }
}

}  // namespace
}  // namespace gammadb
