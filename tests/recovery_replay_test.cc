// Crash-replay property tests for the replayable recovery log: a machine
// that loses a node at a commit point, then crashes wholesale, must come
// back — via Recover() and ReintegrateNode() — byte-identical to a
// fault-free machine that ran only the committed statements. The whole
// scenario must also be deterministic in the host-thread width.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "exec/predicate.h"
#include "gamma/machine.h"
#include "gamma/wal.h"
#include "sim/host_pool.h"
#include "test_util.h"
#include "wisconsin/wisconsin.h"

namespace gammadb {
namespace {

namespace wis = gammadb::wisconsin;
using exec::Predicate;

/// Runs `body` with the host pool set to `threads`, restoring the previous
/// width afterwards.
template <typename Fn>
auto WithThreads(int threads, Fn&& body) {
  auto& pool = sim::HostPool::Instance();
  const int prev = pool.num_threads();
  pool.set_num_threads(threads);
  auto result = body();
  pool.set_num_threads(prev);
  return result;
}

gamma::GammaConfig LoggedConfig() {
  gamma::GammaConfig config;
  config.num_disk_nodes = 4;
  config.num_diskless_nodes = 0;
  config.chained_declustering = true;
  config.enable_logging = true;
  config.checkpoint_every_commits = 8;
  return config;
}

/// A machine loaded with the `keep` Wisconsin tuples whose unique1 < 600
/// out of a 650-tuple generation; the remaining 50 serve as fresh appends.
struct Loaded {
  std::unique_ptr<gamma::GammaMachine> machine;
  std::vector<std::vector<uint8_t>> extras;
};

Loaded MakeLoaded(gamma::GammaConfig config) {
  Loaded out;
  out.machine = std::make_unique<gamma::GammaMachine>(config);
  GAMMA_CHECK(out.machine
                  ->CreateRelation("A", wis::WisconsinSchema(),
                                   catalog::PartitionSpec::Hashed(
                                       wis::kUnique1))
                  .ok());
  const auto all = wis::GenerateWisconsin(650, 7);
  std::vector<std::vector<uint8_t>> keep;
  const catalog::Schema& schema = wis::WisconsinSchema();
  for (const auto& tuple : all) {
    const int32_t unique1 =
        catalog::TupleView(&schema, tuple).GetInt(wis::kUnique1);
    if (unique1 < 600) {
      keep.push_back(tuple);
    } else {
      out.extras.push_back(tuple);
    }
  }
  GAMMA_CHECK(out.machine->LoadTuples("A", keep).ok());
  GAMMA_CHECK(out.machine->BuildIndex("A", wis::kUnique2, false).ok());
  return out;
}

std::vector<std::vector<uint8_t>> Read(gamma::GammaMachine& machine) {
  auto tuples = machine.ReadRelation("A");
  GAMMA_CHECK(tuples.ok());
  return std::move(*tuples);
}

/// One randomized workload statement, issued identically to the victim and
/// (when the victim committed it) to the fault-free oracle.
struct Statement {
  enum Kind { kAppend, kDelete, kModifyInPlace, kRelocate } kind;
  std::vector<uint8_t> tuple;  // kAppend
  int32_t key = 0;             // the unique1 to locate
  int32_t new_value = 0;       // kModifyInPlace / kRelocate
};

std::vector<Statement> MakeWorkload(const std::vector<std::vector<uint8_t>>&
                                        extras,
                                    uint64_t seed) {
  Rng rng(seed);
  std::vector<Statement> workload;
  size_t next_extra = 0;
  for (int i = 0; i < 60; ++i) {
    Statement stmt;
    switch (rng.Uniform(4)) {
      case 0:
        if (next_extra < extras.size()) {
          stmt.kind = Statement::kAppend;
          stmt.tuple = extras[next_extra++];
          break;
        }
        [[fallthrough]];
      case 1:
        stmt.kind = Statement::kDelete;
        stmt.key = static_cast<int32_t>(rng.Uniform(650));
        break;
      case 2:
        stmt.kind = Statement::kModifyInPlace;
        stmt.key = static_cast<int32_t>(rng.Uniform(650));
        stmt.new_value = static_cast<int32_t>(5000 + i);
        break;
      default:
        stmt.kind = Statement::kRelocate;
        stmt.key = static_cast<int32_t>(rng.Uniform(650));
        // A fresh partitioning key forces the delete-here/insert-there path.
        stmt.new_value = static_cast<int32_t>(100000 + i);
        break;
    }
    workload.push_back(std::move(stmt));
  }
  return workload;
}

Result<gamma::QueryResult> Issue(gamma::GammaMachine& machine,
                                 const Statement& stmt) {
  switch (stmt.kind) {
    case Statement::kAppend: {
      gamma::AppendQuery query;
      query.relation = "A";
      query.tuple = stmt.tuple;
      return machine.RunAppend(query);
    }
    case Statement::kDelete: {
      gamma::DeleteQuery query;
      query.relation = "A";
      query.key_attr = wis::kUnique1;
      query.key = stmt.key;
      return machine.RunDelete(query);
    }
    case Statement::kModifyInPlace: {
      gamma::ModifyQuery query;
      query.relation = "A";
      query.locate_attr = wis::kUnique1;
      query.locate_key = stmt.key;
      query.target_attr = wis::kUnique2;
      query.new_value = stmt.new_value;
      return machine.RunModify(query);
    }
    case Statement::kRelocate: {
      gamma::ModifyQuery query;
      query.relation = "A";
      query.locate_attr = wis::kUnique1;
      query.locate_key = stmt.key;
      query.target_attr = wis::kUnique1;
      query.new_value = stmt.new_value;
      return machine.RunModify(query);
    }
  }
  GAMMA_CHECK(false);
  return Status::InvalidArgument("unreachable");
}

/// The full property scenario at one host-pool width: random workload, node
/// death at a commit point, whole-machine crash, Recover(), reintegration.
/// Returns the surviving relation contents for cross-width comparison.
std::vector<std::vector<uint8_t>> CrashReplayScenario() {
  Loaded victim = MakeLoaded(LoggedConfig());
  Loaded oracle = MakeLoaded(LoggedConfig());

  // Node 1 dies at its 6th commit point: after that statement forced its
  // log records and pages, before its commit record sealed.
  victim.machine->KillNodeAtCommit(1, 6);

  const auto workload = MakeWorkload(victim.extras, 42);
  int committed = 0;
  int refused = 0;
  for (const Statement& stmt : workload) {
    const auto result = Issue(*victim.machine, stmt);
    if (result.ok()) {
      ++committed;
      const auto expected = Issue(*oracle.machine, stmt);
      GAMMA_CHECK(expected.ok());
      EXPECT_EQ(result->result_tuples, expected->result_tuples);
    } else {
      EXPECT_TRUE(result.status().IsUnavailable())
          << result.status().ToString();
      ++refused;
    }
  }
  EXPECT_FALSE(victim.machine->NodeAlive(1));
  EXPECT_GT(committed, 0);
  EXPECT_GT(refused, 0);  // the commit-point death surfaced as Unavailable

  // Before any restart: the crashed statement's effects must already be
  // invisible (its alive-node records were reversed at abort), so reads
  // that fail over around the corpse agree with the oracle.
  EXPECT_EQ(Read(*victim.machine), Read(*oracle.machine));

  // Whole-machine crash: volatile state gone, queries refused.
  victim.machine->Crash();
  EXPECT_TRUE(victim.machine->crashed());
  {
    gamma::SelectQuery query;
    query.relation = "A";
    query.store_result = false;
    const auto refused_query = victim.machine->RunSelect(query);
    GAMMA_CHECK(!refused_query.ok());
    EXPECT_TRUE(refused_query.status().IsUnavailable());
  }

  const auto recovery = victim.machine->Recover();
  GAMMA_CHECK(recovery.ok());
  EXPECT_FALSE(victim.machine->crashed());
  EXPECT_GT(recovery->log_records_scanned, 0u);
  EXPECT_GT(recovery->winners, 0u);
  EXPECT_EQ(Read(*victim.machine), Read(*oracle.machine));

  const auto rebuild = victim.machine->ReintegrateNode(1);
  GAMMA_CHECK(rebuild.ok());
  EXPECT_TRUE(victim.machine->NodeAlive(1));
  EXPECT_GT(rebuild->fragments_rebuilt, 0u);
  EXPECT_GT(rebuild->tuples_copied, 0u);
  EXPECT_EQ(Read(*victim.machine), Read(*oracle.machine));

  // A second restart replays to the identical state (idempotent redo/undo).
  victim.machine->Crash();
  GAMMA_CHECK(victim.machine->Recover().ok());
  EXPECT_EQ(Read(*victim.machine), Read(*oracle.machine));

  // The machine is fully back: new statements land on both, including on
  // the reintegrated node, and the maintained index agrees.
  {
    gamma::ModifyQuery query;
    query.relation = "A";
    query.locate_attr = wis::kUnique1;
    query.locate_key = 100000;  // a relocated tuple, if statement 0 ran
    query.target_attr = wis::kUnique2;
    query.new_value = 424242;
    const auto a = victim.machine->RunModify(query);
    const auto b = oracle.machine->RunModify(query);
    GAMMA_CHECK(a.ok());
    GAMMA_CHECK(b.ok());
    EXPECT_EQ(a->result_tuples, b->result_tuples);
  }
  {
    gamma::SelectQuery query;
    query.relation = "A";
    query.predicate = Predicate::Range(wis::kUnique2, 0, 400);
    query.store_result = false;
    const auto a = victim.machine->RunSelect(query);
    const auto b = oracle.machine->RunSelect(query);
    GAMMA_CHECK(a.ok() && b.ok());
    EXPECT_EQ(a->result_tuples, b->result_tuples);
  }
  EXPECT_EQ(Read(*victim.machine), Read(*oracle.machine));
  return Read(*victim.machine);
}

TEST(CrashReplayTest, RandomWorkloadRecoversByteIdenticalAtAnyWidth) {
  const auto one = WithThreads(1, CrashReplayScenario);
  const auto four = WithThreads(4, CrashReplayScenario);
  EXPECT_EQ(one, four);
  EXPECT_FALSE(one.empty());
}

TEST(CrashReplayTest, ExplicitTxnLoserIsUndoneOnRecover) {
  Loaded machine = MakeLoaded(LoggedConfig());
  Loaded oracle = MakeLoaded(LoggedConfig());

  // Committed transaction: survives the crash on both sides.
  const uint64_t winner = machine.machine->BeginTxn();
  {
    gamma::AppendQuery append;
    append.relation = "A";
    append.tuple = machine.extras[0];
    ASSERT_TRUE(machine.machine->RunAppend(append, winner).ok());
    ASSERT_TRUE(oracle.machine->RunAppend(append).ok());
    gamma::DeleteQuery del;
    del.relation = "A";
    del.key_attr = wis::kUnique1;
    del.key = 17;
    ASSERT_TRUE(machine.machine->RunDelete(del, winner).ok());
    ASSERT_TRUE(oracle.machine->RunDelete(del).ok());
  }
  machine.machine->CommitTxn(winner);

  // Loser: statements complete, the transaction never commits, the machine
  // dies. Recover() must erase every trace.
  const uint64_t loser = machine.machine->BeginTxn();
  {
    gamma::AppendQuery append;
    append.relation = "A";
    append.tuple = machine.extras[1];
    ASSERT_TRUE(machine.machine->RunAppend(append, loser).ok());
    gamma::ModifyQuery modify;
    modify.relation = "A";
    modify.locate_attr = wis::kUnique1;
    modify.locate_key = 23;
    modify.target_attr = wis::kUnique2;
    modify.new_value = 777777;
    ASSERT_TRUE(machine.machine->RunModify(modify, loser).ok());
  }

  machine.machine->Crash();
  const auto recovery = machine.machine->Recover();
  ASSERT_TRUE(recovery.ok()) << recovery.status().ToString();
  EXPECT_EQ(recovery->losers, 1u);
  EXPECT_GE(recovery->records_undone, 2u);
  EXPECT_EQ(Read(*machine.machine), Read(*oracle.machine));
  EXPECT_EQ(*machine.machine->CountTuples("A"), 600u);  // +1 append, -1 del

  // Fresh statements work after recovery.
  gamma::AppendQuery append;
  append.relation = "A";
  append.tuple = machine.extras[2];
  ASSERT_TRUE(machine.machine->RunAppend(append).ok());
  ASSERT_TRUE(oracle.machine->RunAppend(append).ok());
  EXPECT_EQ(Read(*machine.machine), Read(*oracle.machine));
}

TEST(CrashReplayTest, RecoverRequiresLoggingAndIsSafeWhenHealthy) {
  gamma::GammaConfig config = LoggedConfig();
  config.enable_logging = false;
  gamma::GammaMachine unlogged(config);
  EXPECT_TRUE(unlogged.Recover().status().IsFailedPrecondition());
  EXPECT_TRUE(unlogged.Checkpoint().status().IsFailedPrecondition());

  // On a healthy logged machine Recover() is a pure verification pass.
  Loaded healthy = MakeLoaded(LoggedConfig());
  const auto before = Read(*healthy.machine);
  const auto report = healthy.machine->Recover();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->records_redone, 0u);
  EXPECT_EQ(report->records_undone, 0u);
  EXPECT_EQ(Read(*healthy.machine), before);
}

TEST(CheckpointTest, FuzzyCheckpointsTruncateTheRetainedLog) {
  Loaded machine = MakeLoaded(LoggedConfig());  // checkpoint every 8 commits
  for (size_t i = 0; i < machine.extras.size(); ++i) {
    gamma::AppendQuery append;
    append.relation = "A";
    append.tuple = machine.extras[i];
    ASSERT_TRUE(machine.machine->RunAppend(append).ok());
  }
  gamma::WalStore* wal = machine.machine->wal();
  ASSERT_NE(wal, nullptr);
  EXPECT_GT(wal->checkpoint_lsn(), 0u);
  // 50 commits at cadence 8: every fully-mirrored committed record below
  // the last checkpoint was dropped, so the retained log is a small tail.
  EXPECT_LT(wal->records().size(), 30u);
  EXPECT_LT(wal->retained_bytes(), wal->total_bytes());

  // An explicit checkpoint seals and returns a fresh begin LSN.
  const auto lsn = machine.machine->Checkpoint();
  ASSERT_TRUE(lsn.ok());
  EXPECT_GT(*lsn, 0u);

  // Replay after truncation still lands on the exact committed state.
  Loaded oracle = MakeLoaded(LoggedConfig());
  for (size_t i = 0; i < oracle.extras.size(); ++i) {
    gamma::AppendQuery append;
    append.relation = "A";
    append.tuple = oracle.extras[i];
    ASSERT_TRUE(oracle.machine->RunAppend(append).ok());
  }
  machine.machine->Crash();
  const auto recovery = machine.machine->Recover();
  ASSERT_TRUE(recovery.ok()) << recovery.status().ToString();
  EXPECT_EQ(recovery->log_records_scanned, wal->records().size());
  EXPECT_EQ(Read(*machine.machine), Read(*oracle.machine));
  EXPECT_EQ(*machine.machine->CountTuples("A"), 650u);
}

TEST(ReintegrationTest, CrashAtCommitStatementStaysInvisible) {
  Loaded victim = MakeLoaded(LoggedConfig());
  Loaded oracle = MakeLoaded(LoggedConfig());

  // Node 2 dies at its very first commit point: the first statement whose
  // commit site lands there forces its records and pages, then dies before
  // acknowledging.
  victim.machine->KillNodeAtCommit(2, 1);
  bool crashed_statement = false;
  for (const auto& tuple : victim.extras) {
    gamma::AppendQuery append;
    append.relation = "A";
    append.tuple = tuple;
    const auto result = victim.machine->RunAppend(append);
    if (!result.ok()) {
      EXPECT_TRUE(result.status().IsUnavailable());
      crashed_statement = true;
      break;
    }
    ASSERT_TRUE(oracle.machine->RunAppend(append).ok());
  }
  ASSERT_TRUE(crashed_statement);
  EXPECT_FALSE(victim.machine->NodeAlive(2));

  // The dying statement's tuple reached node 2's disk but must never be
  // seen: failover reads route around the corpse, and reintegration undoes
  // the stranded copy before rebuilding.
  EXPECT_EQ(Read(*victim.machine), Read(*oracle.machine));
  const auto rebuild = victim.machine->ReintegrateNode(2);
  ASSERT_TRUE(rebuild.ok()) << rebuild.status().ToString();
  EXPECT_TRUE(victim.machine->NodeAlive(2));
  EXPECT_GE(rebuild->records_undone, 1u);
  EXPECT_GT(rebuild->fragments_rebuilt, 0u);
  EXPECT_EQ(Read(*victim.machine), Read(*oracle.machine));

  // The revived node serves writes again (appends land on both machines,
  // duplicates and all, so the relations keep matching exactly).
  for (const auto& tuple : victim.extras) {
    gamma::AppendQuery append;
    append.relation = "A";
    append.tuple = tuple;
    ASSERT_TRUE(victim.machine->RunAppend(append).ok());
    ASSERT_TRUE(oracle.machine->RunAppend(append).ok());
  }
  EXPECT_EQ(Read(*victim.machine), Read(*oracle.machine));
}

}  // namespace
}  // namespace gammadb
