// Tests for the multiuser throughput model (extension of §6.2.1).

#include <gtest/gtest.h>

#include "sim/multiuser.h"

namespace gammadb::sim {
namespace {

QueryMetrics MakeMetrics(int num_nodes,
                         const std::vector<NodeUsage>& usage,
                         uint64_t ring_bytes = 0, double sched = 0) {
  QueryMetrics metrics;
  metrics.scheduling_sec = sched;
  PhaseMetrics phase;
  phase.per_node = usage;
  phase.per_node.resize(static_cast<size_t>(num_nodes));
  phase.ring_bytes = ring_bytes;
  metrics.phases.push_back(std::move(phase));
  return metrics;
}

NodeUsage Usage(double disk, double cpu, double net) {
  NodeUsage usage;
  usage.disk_sec = disk;
  usage.cpu_sec = cpu;
  usage.net_sec = net;
  return usage;
}

TEST(MultiuserTest, BottleneckIsBusiestResource) {
  const MachineParams hw = MachineParams::GammaDefaults();
  std::vector<MixItem> mix;
  mix.push_back({MakeMetrics(3, {Usage(2.0, 1.0, 0.1),
                                 Usage(0.5, 4.0, 0.1)}),
                 1.0});
  const auto report = AnalyzeMix(mix, 3, /*scheduler_node=*/2, hw);
  EXPECT_EQ(report.bottleneck_node, 1);
  EXPECT_EQ(report.bottleneck_resource, Resource::kCpu);
  EXPECT_DOUBLE_EQ(report.bottleneck_busy_sec, 4.0);
  EXPECT_DOUBLE_EQ(report.max_mixes_per_sec, 0.25);
}

TEST(MultiuserTest, WeightsScaleDemand) {
  const MachineParams hw = MachineParams::GammaDefaults();
  std::vector<MixItem> mix;
  mix.push_back({MakeMetrics(2, {Usage(1.0, 0.0, 0.0)}), 3.0});
  mix.push_back({MakeMetrics(2, {Usage(0.0, 2.0, 0.0)}), 1.0});
  const auto report = AnalyzeMix(mix, 2, 1, hw);
  // Disk demand 3s vs CPU demand 2s at node 0.
  EXPECT_EQ(report.bottleneck_resource, Resource::kDisk);
  EXPECT_DOUBLE_EQ(report.bottleneck_busy_sec, 3.0);
}

TEST(MultiuserTest, SchedulerCanBeTheBottleneck) {
  const MachineParams hw = MachineParams::GammaDefaults();
  std::vector<MixItem> mix;
  mix.push_back({MakeMetrics(2, {Usage(0.1, 0.1, 0.1)}, 0, /*sched=*/5.0),
                 1.0});
  const auto report = AnalyzeMix(mix, 2, /*scheduler_node=*/1, hw);
  EXPECT_EQ(report.bottleneck_node, 1);
  EXPECT_EQ(report.bottleneck_resource, Resource::kCpu);
  EXPECT_DOUBLE_EQ(report.bottleneck_busy_sec, 5.0);
}

TEST(MultiuserTest, RingCanBeTheBottleneck) {
  MachineParams hw = MachineParams::GammaDefaults();
  hw.net.ring_bytes_per_sec = 100.0;
  std::vector<MixItem> mix;
  mix.push_back({MakeMetrics(2, {Usage(0.1, 0.1, 0.1)}, /*ring_bytes=*/1000),
                 1.0});
  const auto report = AnalyzeMix(mix, 2, 1, hw);
  EXPECT_TRUE(report.ring_limited);
  EXPECT_DOUBLE_EQ(report.bottleneck_busy_sec, 10.0);
  EXPECT_DOUBLE_EQ(report.max_mixes_per_sec, 0.1);
}

TEST(MultiuserTest, EmptyMixHasNoThroughputBound) {
  const MachineParams hw = MachineParams::GammaDefaults();
  const auto report = AnalyzeMix({}, 2, 0, hw);
  EXPECT_DOUBLE_EQ(report.max_mixes_per_sec, 0.0);
}

}  // namespace
}  // namespace gammadb::sim
