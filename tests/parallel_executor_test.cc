// Determinism tests for the host-parallel node executor: the same queries
// run with 1 host thread (the sequential reference schedule) and with
// several host threads must produce byte-identical answers, bit-identical
// simulated times, and field-identical metrics — including recovery-log and
// fault-injection statistics under an injected fault schedule.

#include <functional>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "gamma/machine.h"
#include "sim/host_pool.h"
#include "sim/workload.h"
#include "test_util.h"
#include "wisconsin/wisconsin.h"

namespace gammadb {
namespace {

namespace wis = gammadb::wisconsin;
using exec::Predicate;
using exec::QueryResult;

constexpr int kManyThreads = 4;

gamma::GammaConfig ParallelConfig() {
  gamma::GammaConfig config;
  config.num_disk_nodes = 4;
  config.num_diskless_nodes = 4;
  config.join_memory_total = 4 << 20;
  config.chained_declustering = true;
  return config;
}

/// Runs `body` with the host pool set to `threads`, restoring the previous
/// width afterwards.
template <typename Fn>
auto WithThreads(int threads, Fn&& body) {
  auto& pool = sim::HostPool::Instance();
  const int prev = pool.num_threads();
  pool.set_num_threads(threads);
  auto result = body();
  pool.set_num_threads(prev);
  return result;
}

/// Exact (bitwise for doubles) equality over every metrics field the cost
/// model reports. The parallel executor merges per-task shards in canonical
/// node order, so even floating-point sums must match the 1-thread run.
void ExpectMetricsEq(const sim::QueryMetrics& a, const sim::QueryMetrics& b) {
  EXPECT_EQ(a.scheduling_sec, b.scheduling_sec);
  EXPECT_EQ(a.scheduling_msgs, b.scheduling_msgs);
  EXPECT_EQ(a.overflow_rounds, b.overflow_rounds);
  EXPECT_EQ(a.log_records, b.log_records);
  EXPECT_EQ(a.log_forced_flushes, b.log_forced_flushes);
  EXPECT_EQ(a.locks_acquired, b.locks_acquired);
  EXPECT_EQ(a.lock_waits, b.lock_waits);
  EXPECT_EQ(a.lock_wait_sec, b.lock_wait_sec);
  EXPECT_EQ(a.deadlocks, b.deadlocks);
  EXPECT_EQ(a.lock_aborts, b.lock_aborts);
  EXPECT_EQ(a.failover_retries, b.failover_retries);
  EXPECT_EQ(a.failover_backoff_sec, b.failover_backoff_sec);
  ASSERT_EQ(a.phases.size(), b.phases.size());
  for (size_t p = 0; p < a.phases.size(); ++p) {
    const sim::PhaseMetrics& pa = a.phases[p];
    const sim::PhaseMetrics& pb = b.phases[p];
    EXPECT_EQ(pa.name, pb.name);
    EXPECT_EQ(pa.kind, pb.kind);
    EXPECT_EQ(pa.elapsed_sec, pb.elapsed_sec) << pa.name;
    EXPECT_EQ(pa.ring_bytes, pb.ring_bytes) << pa.name;
    EXPECT_EQ(pa.ring_limited, pb.ring_limited) << pa.name;
    EXPECT_EQ(pa.bottleneck_node, pb.bottleneck_node) << pa.name;
    EXPECT_EQ(pa.bottleneck_resource, pb.bottleneck_resource) << pa.name;
    ASSERT_EQ(pa.per_node.size(), pb.per_node.size());
    for (size_t i = 0; i < pa.per_node.size(); ++i) {
      const sim::NodeUsage& ua = pa.per_node[i];
      const sim::NodeUsage& ub = pb.per_node[i];
      EXPECT_EQ(ua.disk_sec, ub.disk_sec) << pa.name << " node " << i;
      EXPECT_EQ(ua.cpu_sec, ub.cpu_sec) << pa.name << " node " << i;
      EXPECT_EQ(ua.net_sec, ub.net_sec) << pa.name << " node " << i;
      EXPECT_EQ(ua.serial_sec, ub.serial_sec) << pa.name << " node " << i;
      EXPECT_EQ(ua.seq_page_ios, ub.seq_page_ios);
      EXPECT_EQ(ua.rand_page_ios, ub.rand_page_ios);
      EXPECT_EQ(ua.pages_read, ub.pages_read);
      EXPECT_EQ(ua.pages_written, ub.pages_written);
      EXPECT_EQ(ua.buffer_hits, ub.buffer_hits);
      EXPECT_EQ(ua.packets_sent, ub.packets_sent);
      EXPECT_EQ(ua.packets_short_circuited, ub.packets_short_circuited);
      EXPECT_EQ(ua.packets_retransmitted, ub.packets_retransmitted);
      EXPECT_EQ(ua.bytes_sent, ub.bytes_sent);
      EXPECT_EQ(ua.bytes_short_circuited, ub.bytes_short_circuited);
      EXPECT_EQ(ua.control_msgs, ub.control_msgs);
    }
  }
}

struct RunOutput {
  QueryResult result;
  std::vector<std::vector<uint8_t>> stored;  // result relation, if any
  sim::FaultInjector::Stats fault_stats;
};

/// Builds a fresh machine, loads the benchmark relations, and runs `query`,
/// all under one host-pool width — end-to-end, so load and index fan-out are
/// covered by the determinism check too.
RunOutput RunEndToEnd(
    const gamma::GammaConfig& config,
    const std::function<Result<QueryResult>(gamma::GammaMachine&)>& query) {
  gamma::GammaMachine machine(config);
  GAMMA_CHECK(machine
                  .CreateRelation("A", wis::WisconsinSchema(),
                                  catalog::PartitionSpec::Hashed(
                                      wis::kUnique1))
                  .ok());
  GAMMA_CHECK(
      machine.LoadTuples("A", wis::GenerateWisconsin(2000, 7)).ok());
  GAMMA_CHECK(machine
                  .CreateRelation("B", wis::WisconsinSchema(),
                                  catalog::PartitionSpec::Hashed(
                                      wis::kUnique1))
                  .ok());
  GAMMA_CHECK(
      machine.LoadTuples("B", wis::GenerateWisconsin(1000, 8)).ok());

  auto result = query(machine);
  GAMMA_CHECK_MSG(result.ok(), result.status().ToString().c_str());
  RunOutput out{*std::move(result), {}, machine.faults().stats()};
  if (!out.result.result_relation.empty()) {
    out.stored = *machine.ReadRelation(out.result.result_relation);
  }
  return out;
}

void ExpectRunsIdentical(
    const gamma::GammaConfig& config,
    const std::function<Result<QueryResult>(gamma::GammaMachine&)>& query) {
  const RunOutput one =
      WithThreads(1, [&] { return RunEndToEnd(config, query); });
  const RunOutput many =
      WithThreads(kManyThreads, [&] { return RunEndToEnd(config, query); });

  // Byte-identical answers, in order — not just as multisets.
  EXPECT_EQ(one.result.returned, many.result.returned);
  EXPECT_EQ(one.stored, many.stored);
  EXPECT_EQ(one.result.result_tuples, many.result.result_tuples);
  EXPECT_EQ(one.result.failover_retries, many.result.failover_retries);
  // Bit-identical simulated time and field-identical accounting.
  EXPECT_EQ(one.result.seconds(), many.result.seconds());
  ExpectMetricsEq(one.result.metrics, many.result.metrics);
  // Identical injected-fault draws.
  EXPECT_EQ(one.fault_stats.transient_read_faults,
            many.fault_stats.transient_read_faults);
  EXPECT_EQ(one.fault_stats.transient_write_faults,
            many.fault_stats.transient_write_faults);
  EXPECT_EQ(one.fault_stats.corrupted_reads, many.fault_stats.corrupted_reads);
  EXPECT_EQ(one.fault_stats.packets_dropped, many.fault_stats.packets_dropped);
}

// Table 1's shape: a 10% range selection returned to the host, and the
// same selection stored declustered across all nodes.
TEST(ParallelExecutorTest, SelectionIdenticalAcrossThreadCounts) {
  for (const bool store : {false, true}) {
    ExpectRunsIdentical(ParallelConfig(), [store](gamma::GammaMachine& m) {
      gamma::SelectQuery query;
      query.relation = "A";
      query.predicate = Predicate::Range(wis::kUnique2, 100, 299);
      query.store_result = store;
      return m.RunSelect(query);
    });
  }
}

// Table 2's shape: joinABprime on the partitioning attribute plus the
// non-partitioning variant that repartitions both inputs.
TEST(ParallelExecutorTest, JoinIdenticalAcrossThreadCounts) {
  for (const int attr : {wis::kUnique1, wis::kUnique2}) {
    ExpectRunsIdentical(ParallelConfig(), [attr](gamma::GammaMachine& m) {
      gamma::JoinQuery join;
      join.outer = "A";
      join.inner = "B";
      join.outer_attr = attr;
      join.inner_attr = attr;
      join.mode = gamma::JoinMode::kAllnodes;
      return m.RunJoin(join);
    });
  }
}

TEST(ParallelExecutorTest, AggregateIdenticalAcrossThreadCounts) {
  ExpectRunsIdentical(ParallelConfig(), [](gamma::GammaMachine& m) {
    gamma::AggregateQuery query;
    query.relation = "A";
    query.group_attr = wis::kTen;
    query.value_attr = wis::kUnique1;
    query.func = exec::AggFunc::kSum;
    return m.RunAggregate(query);
  });
}

// Injected transient faults, dropped packets, and recovery logging: the
// deterministic fault schedule and the per-query log statistics must not
// depend on the host-pool width.
TEST(ParallelExecutorTest, FaultScheduleAndLogStatsIdentical) {
  gamma::GammaConfig config = ParallelConfig();
  config.enable_logging = true;
  config.fault.transient_read_prob = 0.02;
  config.fault.drop_packet_prob = 0.05;

  ExpectRunsIdentical(config, [](gamma::GammaMachine& m) {
    gamma::SelectQuery query;
    query.relation = "A";
    query.predicate = Predicate::Range(wis::kUnique1, 0, 999);
    query.store_result = true;
    return m.RunSelect(query);
  });
  ExpectRunsIdentical(config, [](gamma::GammaMachine& m) {
    gamma::JoinQuery join;
    join.outer = "A";
    join.inner = "B";
    join.outer_attr = wis::kUnique1;
    join.inner_attr = wis::kUnique1;
    join.mode = gamma::JoinMode::kLocal;
    return m.RunJoin(join);
  });
}

// A node death mid-join: the abort point, the failover retry, and the
// backup-served answer all replay identically at any thread count.
TEST(ParallelExecutorTest, FailoverIdenticalAcrossThreadCounts) {
  ExpectRunsIdentical(ParallelConfig(), [](gamma::GammaMachine& m) {
    m.KillNodeAfterOps(1, 10);
    gamma::JoinQuery join;
    join.outer = "A";
    join.inner = "B";
    join.outer_attr = wis::kUnique1;
    join.inner_attr = wis::kUnique1;
    join.mode = gamma::JoinMode::kLocal;
    return m.RunJoin(join);
  });
}

// The discrete-event concurrent workload: reads replayed from profiles,
// update transactions executed for real at commit, deadlocks and retries
// included. The whole report — simulated clock, commit order, per-class
// percentiles — and the mutated relation must not depend on the host-pool
// width.
struct MixOutput {
  sim::WorkloadReport report;
  std::vector<std::vector<uint8_t>> final_a;
};

MixOutput RunConcurrentMix() {
  gamma::GammaMachine machine(ParallelConfig());
  GAMMA_CHECK(machine
                  .CreateRelation("A", wis::WisconsinSchema(),
                                  catalog::PartitionSpec::Hashed(
                                      wis::kUnique1))
                  .ok());
  GAMMA_CHECK(machine.LoadTuples("A", wis::GenerateWisconsin(2000, 7)).ok());
  GAMMA_CHECK(machine
                  .CreateRelation("B", wis::WisconsinSchema(),
                                  catalog::PartitionSpec::Hashed(
                                      wis::kUnique1))
                  .ok());
  GAMMA_CHECK(machine.LoadTuples("B", wis::GenerateWisconsin(1000, 8)).ok());

  gamma::SelectQuery select;
  select.relation = "A";
  select.predicate = Predicate::Range(wis::kUnique1, 0, 199);
  const auto select_profile = sim::ProfileStatement(machine, select);
  GAMMA_CHECK(select_profile.ok());
  gamma::JoinQuery join;
  join.outer = "A";
  join.inner = "B";
  join.outer_attr = wis::kUnique2;
  join.inner_attr = wis::kUnique2;
  join.mode = gamma::JoinMode::kRemote;
  const auto join_profile = sim::ProfileStatement(machine, join);
  GAMMA_CHECK(join_profile.ok());

  sim::TxnSpec select_spec;
  select_spec.label = "select";
  select_spec.statements = {select};
  select_spec.profiles = {*select_profile};
  sim::TxnSpec join_spec;
  join_spec.label = "join";
  join_spec.statements = {join};
  join_spec.profiles = {*join_profile};

  auto modify = [](const std::string& rel, int32_t from, int32_t to) {
    gamma::ModifyQuery q;
    q.relation = rel;
    q.locate_attr = wis::kUnique2;  // non-partitioning: X on every fragment
    q.locate_key = from;
    q.target_attr = wis::kUnique2;
    q.new_value = to;
    return q;
  };
  sim::TxnSpec upd_ab;
  upd_ab.label = "upd_ab";
  upd_ab.statements = {modify("A", 10, 2010), modify("B", 10, 2010)};
  upd_ab.execute_real = true;
  sim::TxnSpec upd_ba;
  upd_ba.label = "upd_ba";
  upd_ba.statements = {modify("B", 20, 2020), modify("A", 20, 2020)};
  upd_ba.execute_real = true;

  sim::WorkloadOptions options;
  options.seed = 7;
  sim::WorkloadDriver driver(&machine, options);
  sim::ClientSpec reader;
  reader.script = {select_spec, join_spec};
  reader.loops = 2;
  driver.AddClient(reader);
  sim::ClientSpec reader2;
  reader2.script = {join_spec, select_spec};
  reader2.loops = 2;
  driver.AddClient(reader2);
  sim::ClientSpec writer_ab;
  writer_ab.script = {upd_ab};
  writer_ab.loops = 3;
  driver.AddClient(writer_ab);
  sim::ClientSpec writer_ba;
  writer_ba.script = {upd_ba};
  writer_ba.loops = 3;
  driver.AddClient(writer_ba);

  MixOutput out;
  out.report = driver.Run();
  out.final_a = *machine.ReadRelation("A");
  return out;
}

TEST(ParallelExecutorTest, ConcurrentMixIdenticalAcrossThreadCounts) {
  const MixOutput one = WithThreads(1, [] { return RunConcurrentMix(); });
  const MixOutput many =
      WithThreads(kManyThreads, [] { return RunConcurrentMix(); });

  EXPECT_EQ(one.report.end_sec, many.report.end_sec);
  EXPECT_EQ(one.report.committed, many.report.committed);
  EXPECT_EQ(one.report.deadlocks, many.report.deadlocks);
  EXPECT_EQ(one.report.aborted_retries, many.report.aborted_retries);
  EXPECT_EQ(one.report.lock_acquisitions, many.report.lock_acquisitions);
  EXPECT_EQ(one.report.lock_waits, many.report.lock_waits);
  EXPECT_EQ(one.report.lock_wait_sec, many.report.lock_wait_sec);
  EXPECT_EQ(one.report.bottleneck, many.report.bottleneck);
  EXPECT_EQ(one.report.bottleneck_utilization,
            many.report.bottleneck_utilization);
  ASSERT_EQ(one.report.classes.size(), many.report.classes.size());
  for (size_t i = 0; i < one.report.classes.size(); ++i) {
    const sim::ClassReport& ca = one.report.classes[i];
    const sim::ClassReport& cb = many.report.classes[i];
    EXPECT_EQ(ca.label, cb.label);
    EXPECT_EQ(ca.committed, cb.committed);
    EXPECT_EQ(ca.measured, cb.measured);
    EXPECT_EQ(ca.throughput_per_sec, cb.throughput_per_sec);
    EXPECT_EQ(ca.mean_response_sec, cb.mean_response_sec);
    EXPECT_EQ(ca.p50_response_sec, cb.p50_response_sec);
    EXPECT_EQ(ca.p95_response_sec, cb.p95_response_sec);
  }
  ASSERT_EQ(one.report.commit_log.size(), many.report.commit_log.size());
  for (size_t i = 0; i < one.report.commit_log.size(); ++i) {
    EXPECT_EQ(one.report.commit_log[i].client,
              many.report.commit_log[i].client);
    EXPECT_EQ(one.report.commit_log[i].script_pos,
              many.report.commit_log[i].script_pos);
    EXPECT_EQ(one.report.commit_log[i].label, many.report.commit_log[i].label);
  }
  // All four transaction classes ran to completion.
  EXPECT_EQ(one.report.committed, 2u * 2 + 2u * 2 + 3 + 3);
  EXPECT_EQ(one.final_a, many.final_a);
}

}  // namespace
}  // namespace gammadb
