// Determinism tests for the host-parallel node executor: the same queries
// run with 1 host thread (the sequential reference schedule) and with
// several host threads must produce byte-identical answers, bit-identical
// simulated times, and field-identical metrics — including recovery-log and
// fault-injection statistics under an injected fault schedule.

#include <functional>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "gamma/machine.h"
#include "sim/host_pool.h"
#include "test_util.h"
#include "wisconsin/wisconsin.h"

namespace gammadb {
namespace {

namespace wis = gammadb::wisconsin;
using exec::Predicate;
using exec::QueryResult;

constexpr int kManyThreads = 4;

gamma::GammaConfig ParallelConfig() {
  gamma::GammaConfig config;
  config.num_disk_nodes = 4;
  config.num_diskless_nodes = 4;
  config.join_memory_total = 4 << 20;
  config.chained_declustering = true;
  return config;
}

/// Runs `body` with the host pool set to `threads`, restoring the previous
/// width afterwards.
template <typename Fn>
auto WithThreads(int threads, Fn&& body) {
  auto& pool = sim::HostPool::Instance();
  const int prev = pool.num_threads();
  pool.set_num_threads(threads);
  auto result = body();
  pool.set_num_threads(prev);
  return result;
}

/// Exact (bitwise for doubles) equality over every metrics field the cost
/// model reports. The parallel executor merges per-task shards in canonical
/// node order, so even floating-point sums must match the 1-thread run.
void ExpectMetricsEq(const sim::QueryMetrics& a, const sim::QueryMetrics& b) {
  EXPECT_EQ(a.scheduling_sec, b.scheduling_sec);
  EXPECT_EQ(a.scheduling_msgs, b.scheduling_msgs);
  EXPECT_EQ(a.overflow_rounds, b.overflow_rounds);
  EXPECT_EQ(a.log_records, b.log_records);
  EXPECT_EQ(a.log_forced_flushes, b.log_forced_flushes);
  ASSERT_EQ(a.phases.size(), b.phases.size());
  for (size_t p = 0; p < a.phases.size(); ++p) {
    const sim::PhaseMetrics& pa = a.phases[p];
    const sim::PhaseMetrics& pb = b.phases[p];
    EXPECT_EQ(pa.name, pb.name);
    EXPECT_EQ(pa.kind, pb.kind);
    EXPECT_EQ(pa.elapsed_sec, pb.elapsed_sec) << pa.name;
    EXPECT_EQ(pa.ring_bytes, pb.ring_bytes) << pa.name;
    EXPECT_EQ(pa.ring_limited, pb.ring_limited) << pa.name;
    EXPECT_EQ(pa.bottleneck_node, pb.bottleneck_node) << pa.name;
    EXPECT_EQ(pa.bottleneck_resource, pb.bottleneck_resource) << pa.name;
    ASSERT_EQ(pa.per_node.size(), pb.per_node.size());
    for (size_t i = 0; i < pa.per_node.size(); ++i) {
      const sim::NodeUsage& ua = pa.per_node[i];
      const sim::NodeUsage& ub = pb.per_node[i];
      EXPECT_EQ(ua.disk_sec, ub.disk_sec) << pa.name << " node " << i;
      EXPECT_EQ(ua.cpu_sec, ub.cpu_sec) << pa.name << " node " << i;
      EXPECT_EQ(ua.net_sec, ub.net_sec) << pa.name << " node " << i;
      EXPECT_EQ(ua.serial_sec, ub.serial_sec) << pa.name << " node " << i;
      EXPECT_EQ(ua.seq_page_ios, ub.seq_page_ios);
      EXPECT_EQ(ua.rand_page_ios, ub.rand_page_ios);
      EXPECT_EQ(ua.pages_read, ub.pages_read);
      EXPECT_EQ(ua.pages_written, ub.pages_written);
      EXPECT_EQ(ua.buffer_hits, ub.buffer_hits);
      EXPECT_EQ(ua.packets_sent, ub.packets_sent);
      EXPECT_EQ(ua.packets_short_circuited, ub.packets_short_circuited);
      EXPECT_EQ(ua.packets_retransmitted, ub.packets_retransmitted);
      EXPECT_EQ(ua.bytes_sent, ub.bytes_sent);
      EXPECT_EQ(ua.bytes_short_circuited, ub.bytes_short_circuited);
      EXPECT_EQ(ua.control_msgs, ub.control_msgs);
    }
  }
}

struct RunOutput {
  QueryResult result;
  std::vector<std::vector<uint8_t>> stored;  // result relation, if any
  sim::FaultInjector::Stats fault_stats;
};

/// Builds a fresh machine, loads the benchmark relations, and runs `query`,
/// all under one host-pool width — end-to-end, so load and index fan-out are
/// covered by the determinism check too.
RunOutput RunEndToEnd(
    const gamma::GammaConfig& config,
    const std::function<Result<QueryResult>(gamma::GammaMachine&)>& query) {
  gamma::GammaMachine machine(config);
  GAMMA_CHECK(machine
                  .CreateRelation("A", wis::WisconsinSchema(),
                                  catalog::PartitionSpec::Hashed(
                                      wis::kUnique1))
                  .ok());
  GAMMA_CHECK(
      machine.LoadTuples("A", wis::GenerateWisconsin(2000, 7)).ok());
  GAMMA_CHECK(machine
                  .CreateRelation("B", wis::WisconsinSchema(),
                                  catalog::PartitionSpec::Hashed(
                                      wis::kUnique1))
                  .ok());
  GAMMA_CHECK(
      machine.LoadTuples("B", wis::GenerateWisconsin(1000, 8)).ok());

  auto result = query(machine);
  GAMMA_CHECK_MSG(result.ok(), result.status().ToString().c_str());
  RunOutput out{*std::move(result), {}, machine.faults().stats()};
  if (!out.result.result_relation.empty()) {
    out.stored = *machine.ReadRelation(out.result.result_relation);
  }
  return out;
}

void ExpectRunsIdentical(
    const gamma::GammaConfig& config,
    const std::function<Result<QueryResult>(gamma::GammaMachine&)>& query) {
  const RunOutput one =
      WithThreads(1, [&] { return RunEndToEnd(config, query); });
  const RunOutput many =
      WithThreads(kManyThreads, [&] { return RunEndToEnd(config, query); });

  // Byte-identical answers, in order — not just as multisets.
  EXPECT_EQ(one.result.returned, many.result.returned);
  EXPECT_EQ(one.stored, many.stored);
  EXPECT_EQ(one.result.result_tuples, many.result.result_tuples);
  EXPECT_EQ(one.result.failover_retries, many.result.failover_retries);
  // Bit-identical simulated time and field-identical accounting.
  EXPECT_EQ(one.result.seconds(), many.result.seconds());
  ExpectMetricsEq(one.result.metrics, many.result.metrics);
  // Identical injected-fault draws.
  EXPECT_EQ(one.fault_stats.transient_read_faults,
            many.fault_stats.transient_read_faults);
  EXPECT_EQ(one.fault_stats.transient_write_faults,
            many.fault_stats.transient_write_faults);
  EXPECT_EQ(one.fault_stats.corrupted_reads, many.fault_stats.corrupted_reads);
  EXPECT_EQ(one.fault_stats.packets_dropped, many.fault_stats.packets_dropped);
}

// Table 1's shape: a 10% range selection returned to the host, and the
// same selection stored declustered across all nodes.
TEST(ParallelExecutorTest, SelectionIdenticalAcrossThreadCounts) {
  for (const bool store : {false, true}) {
    ExpectRunsIdentical(ParallelConfig(), [store](gamma::GammaMachine& m) {
      gamma::SelectQuery query;
      query.relation = "A";
      query.predicate = Predicate::Range(wis::kUnique2, 100, 299);
      query.store_result = store;
      return m.RunSelect(query);
    });
  }
}

// Table 2's shape: joinABprime on the partitioning attribute plus the
// non-partitioning variant that repartitions both inputs.
TEST(ParallelExecutorTest, JoinIdenticalAcrossThreadCounts) {
  for (const int attr : {wis::kUnique1, wis::kUnique2}) {
    ExpectRunsIdentical(ParallelConfig(), [attr](gamma::GammaMachine& m) {
      gamma::JoinQuery join;
      join.outer = "A";
      join.inner = "B";
      join.outer_attr = attr;
      join.inner_attr = attr;
      join.mode = gamma::JoinMode::kAllnodes;
      return m.RunJoin(join);
    });
  }
}

TEST(ParallelExecutorTest, AggregateIdenticalAcrossThreadCounts) {
  ExpectRunsIdentical(ParallelConfig(), [](gamma::GammaMachine& m) {
    gamma::AggregateQuery query;
    query.relation = "A";
    query.group_attr = wis::kTen;
    query.value_attr = wis::kUnique1;
    query.func = exec::AggFunc::kSum;
    return m.RunAggregate(query);
  });
}

// Injected transient faults, dropped packets, and recovery logging: the
// deterministic fault schedule and the per-query log statistics must not
// depend on the host-pool width.
TEST(ParallelExecutorTest, FaultScheduleAndLogStatsIdentical) {
  gamma::GammaConfig config = ParallelConfig();
  config.enable_logging = true;
  config.fault.transient_read_prob = 0.02;
  config.fault.drop_packet_prob = 0.05;

  ExpectRunsIdentical(config, [](gamma::GammaMachine& m) {
    gamma::SelectQuery query;
    query.relation = "A";
    query.predicate = Predicate::Range(wis::kUnique1, 0, 999);
    query.store_result = true;
    return m.RunSelect(query);
  });
  ExpectRunsIdentical(config, [](gamma::GammaMachine& m) {
    gamma::JoinQuery join;
    join.outer = "A";
    join.inner = "B";
    join.outer_attr = wis::kUnique1;
    join.inner_attr = wis::kUnique1;
    join.mode = gamma::JoinMode::kLocal;
    return m.RunJoin(join);
  });
}

// A node death mid-join: the abort point, the failover retry, and the
// backup-served answer all replay identically at any thread count.
TEST(ParallelExecutorTest, FailoverIdenticalAcrossThreadCounts) {
  ExpectRunsIdentical(ParallelConfig(), [](gamma::GammaMachine& m) {
    m.KillNodeAfterOps(1, 10);
    gamma::JoinQuery join;
    join.outer = "A";
    join.inner = "B";
    join.outer_attr = wis::kUnique1;
    join.inner_attr = wis::kUnique1;
    join.mode = gamma::JoinMode::kLocal;
    return m.RunJoin(join);
  });
}

}  // namespace
}  // namespace gammadb
