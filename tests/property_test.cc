// Property-based tests (parameterized gtest): query answers must be
// invariant to every performance-affecting configuration knob, and the
// cost-model outputs must obey basic sanity laws (conservation,
// monotonicity).

#include <set>
#include <tuple>

#include <gtest/gtest.h>

#include "exec/predicate.h"
#include "gamma/machine.h"
#include "test_util.h"
#include "wisconsin/wisconsin.h"

namespace gammadb::gamma {
namespace {

namespace wis = gammadb::wisconsin;
using exec::Predicate;
using gammadb::testing::ValuesOf;

constexpr uint32_t kN = 3000;
constexpr uint64_t kSeed = 0x5EED;

GammaMachine MakeMachine(int disk_nodes, uint32_t page_size,
                         uint64_t join_memory) {
  GammaConfig config;
  config.num_disk_nodes = disk_nodes;
  config.num_diskless_nodes = disk_nodes;
  config.page_size = page_size;
  config.join_memory_total = join_memory;
  return GammaMachine(config);
}

void LoadStandard(GammaMachine& machine, bool with_indices) {
  const auto tuples = wis::GenerateWisconsin(kN, kSeed);
  GAMMA_CHECK(machine
                  .CreateRelation("A", wis::WisconsinSchema(),
                                  catalog::PartitionSpec::Hashed(
                                      wis::kUnique1))
                  .ok());
  GAMMA_CHECK(machine.LoadTuples("A", tuples).ok());
  if (with_indices) {
    GAMMA_CHECK(machine.BuildIndex("A", wis::kUnique1, true).ok());
    GAMMA_CHECK(machine.BuildIndex("A", wis::kUnique2, false).ok());
  }
  const auto bprime = wis::GenerateWisconsin(kN / 10, kSeed + 1);
  GAMMA_CHECK(machine
                  .CreateRelation("Bprime", wis::WisconsinSchema(),
                                  catalog::PartitionSpec::Hashed(
                                      wis::kUnique1))
                  .ok());
  GAMMA_CHECK(machine.LoadTuples("Bprime", bprime).ok());
}

// ---------------------------------------------------------------------------
// Answer invariance: (disk nodes, page size) must never change any answer.
// ---------------------------------------------------------------------------

class ConfigInvariance
    : public ::testing::TestWithParam<std::tuple<int, uint32_t>> {};

TEST_P(ConfigInvariance, SelectionAnswersInvariant) {
  const auto [disk_nodes, page_size] = GetParam();
  GammaMachine machine = MakeMachine(disk_nodes, page_size, 4 << 20);
  LoadStandard(machine, /*with_indices=*/true);

  const auto tuples = wis::GenerateWisconsin(kN, kSeed);
  for (const auto& [attr, access] :
       std::vector<std::pair<int, AccessPath>>{
           {wis::kUnique1, AccessPath::kFileScan},
           {wis::kUnique1, AccessPath::kClusteredIndex},
           {wis::kUnique2, AccessPath::kNonClusteredIndex}}) {
    SelectQuery query;
    query.relation = "A";
    query.predicate = Predicate::Range(attr, 100, 399);
    query.access = access;
    query.store_result = false;
    const auto result = machine.RunSelect(query);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(ValuesOf(result->returned, wis::WisconsinSchema(), attr),
              gammadb::testing::ReferenceSelect(tuples,
                                                wis::WisconsinSchema(), attr,
                                                100, 399, attr))
        << "nodes=" << disk_nodes << " page=" << page_size
        << " access=" << static_cast<int>(access);
  }
}

TEST_P(ConfigInvariance, JoinAnswersInvariant) {
  const auto [disk_nodes, page_size] = GetParam();
  GammaMachine machine = MakeMachine(disk_nodes, page_size, 4 << 20);
  LoadStandard(machine, /*with_indices=*/false);
  for (const JoinMode mode :
       {JoinMode::kLocal, JoinMode::kRemote, JoinMode::kAllnodes}) {
    JoinQuery query;
    query.outer = "A";
    query.inner = "Bprime";
    query.outer_attr = wis::kUnique2;
    query.inner_attr = wis::kUnique2;
    query.mode = mode;
    const auto result = machine.RunJoin(query);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->result_tuples, kN / 10);
  }
}

INSTANTIATE_TEST_SUITE_P(
    NodeAndPageSweep, ConfigInvariance,
    ::testing::Combine(::testing::Values(1, 3, 8),
                       ::testing::Values(2048u, 8192u, 32768u)));

// ---------------------------------------------------------------------------
// Overflow invariance: the join answer must not depend on hash-table memory,
// the overflow algorithm, or bit filters.
// ---------------------------------------------------------------------------

class MemoryInvariance : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MemoryInvariance, JoinAnswerIndependentOfMemory) {
  GammaMachine machine = MakeMachine(4, 4096, GetParam());
  LoadStandard(machine, /*with_indices=*/false);
  for (const bool hybrid : {false, true}) {
    for (const bool filter : {false, true}) {
      JoinQuery query;
      query.outer = "A";
      query.inner = "Bprime";
      query.outer_attr = wis::kUnique2;
      query.inner_attr = wis::kUnique2;
      query.algorithm = hybrid ? gamma::JoinAlgorithm::kHybridHash
                               : gamma::JoinAlgorithm::kSimpleHash;
      query.use_bit_filter = filter;
      query.expected_build_tuples = kN / 10;
      const auto result = machine.RunJoin(query);
      ASSERT_TRUE(result.ok());
      EXPECT_EQ(result->result_tuples, kN / 10)
          << "memory=" << GetParam() << " hybrid=" << hybrid
          << " filter=" << filter;
      // The stored result must physically exist in full.
      EXPECT_EQ(*machine.CountTuples(result->result_relation), kN / 10);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(MemorySweep, MemoryInvariance,
                         ::testing::Values(16 * 1024, 64 * 1024, 256 * 1024,
                                           8 << 20));

// ---------------------------------------------------------------------------
// Cost-model laws.
// ---------------------------------------------------------------------------

TEST(CostLaws, SpeedupMonotoneInProcessors) {
  double previous = 1e30;
  for (const int procs : {1, 2, 4, 8}) {
    GammaMachine machine = MakeMachine(procs, 4096, 4 << 20);
    LoadStandard(machine, /*with_indices=*/false);
    SelectQuery query;
    query.relation = "A";
    query.predicate = Predicate::Range(wis::kUnique1, 0, kN / 10 - 1);
    query.access = AccessPath::kFileScan;
    const double seconds = machine.RunSelect(query)->seconds();
    EXPECT_LT(seconds, previous) << procs << " processors";
    previous = seconds;
  }
}

TEST(CostLaws, ScanTimeMonotoneInPageSize) {
  double previous = 1e30;
  for (const uint32_t page_size : {2048u, 4096u, 8192u, 16384u, 32768u}) {
    GammaMachine machine = MakeMachine(4, page_size, 4 << 20);
    LoadStandard(machine, /*with_indices=*/false);
    SelectQuery query;
    query.relation = "A";
    query.predicate = Predicate::Range(wis::kUnique1, kN + 1, kN + 2);  // 0%
    query.access = AccessPath::kFileScan;
    const double seconds = machine.RunSelect(query)->seconds();
    EXPECT_LE(seconds, previous * 1.001) << page_size;
    previous = seconds;
  }
}

TEST(CostLaws, OverflowRoundsMonotoneInMemory) {
  uint32_t previous_rounds = 1000;
  for (const uint64_t memory :
       {24ull * 1024, 64ull * 1024, 256ull * 1024, 8ull << 20}) {
    GammaMachine machine = MakeMachine(4, 4096, memory);
    LoadStandard(machine, /*with_indices=*/false);
    JoinQuery query;
    query.outer = "A";
    query.inner = "Bprime";
    query.outer_attr = wis::kUnique2;
    query.inner_attr = wis::kUnique2;
    const auto result = machine.RunJoin(query);
    ASSERT_TRUE(result.ok());
    EXPECT_LE(result->metrics.overflow_rounds, previous_rounds);
    previous_rounds = result->metrics.overflow_rounds;
  }
  EXPECT_EQ(previous_rounds, 0u);  // ample memory: no overflow
}

TEST(CostLaws, MetricsSanity) {
  GammaMachine machine = MakeMachine(4, 4096, 64 * 1024);
  LoadStandard(machine, /*with_indices=*/false);
  JoinQuery query;
  query.outer = "A";
  query.inner = "Bprime";
  query.outer_attr = wis::kUnique2;
  query.inner_attr = wis::kUnique2;
  const auto result = machine.RunJoin(query);
  ASSERT_TRUE(result.ok());
  const auto& metrics = result->metrics;
  EXPECT_GE(metrics.scheduling_sec, 0.0);
  double phase_sum = 0;
  for (const auto& phase : metrics.phases) {
    EXPECT_GE(phase.elapsed_sec, 0.0);
    for (const auto& node : phase.per_node) {
      EXPECT_GE(node.disk_sec, 0.0);
      EXPECT_GE(node.cpu_sec, 0.0);
      EXPECT_GE(node.net_sec, 0.0);
      // No node can beat the phase clock.
      EXPECT_LE(node.ElapsedSec(phase.kind), phase.elapsed_sec + 1e-9);
    }
    phase_sum += phase.elapsed_sec;
  }
  EXPECT_NEAR(metrics.TotalSec(), metrics.scheduling_sec + phase_sum, 1e-9);
  const double sc = metrics.ShortCircuitFraction();
  EXPECT_GE(sc, 0.0);
  EXPECT_LE(sc, 1.0);
}

TEST(CostLaws, ShortCircuitFractionFallsWithProcessors) {
  // §5.2.1: with n processors, 1/n of round-robin result traffic stays
  // local; the fraction must fall as n grows.
  double previous = 1.1;
  for (const int procs : {1, 2, 4, 8}) {
    GammaMachine machine = MakeMachine(procs, 4096, 4 << 20);
    LoadStandard(machine, /*with_indices=*/false);
    SelectQuery query;
    query.relation = "A";
    query.predicate = Predicate::Range(wis::kUnique1, 0, kN / 10 - 1);
    query.access = AccessPath::kFileScan;
    const auto result = machine.RunSelect(query);
    ASSERT_TRUE(result.ok());
    const double sc = result->metrics.ShortCircuitFraction();
    EXPECT_LT(sc, previous) << procs;
    EXPECT_NEAR(sc, 1.0 / procs, 0.15) << procs;
    previous = sc;
  }
}

}  // namespace
}  // namespace gammadb::gamma
