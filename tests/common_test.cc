// Unit tests for the common layer: Status/Result, the deterministic RNG,
// and the salted hash.

#include <set>

#include <gtest/gtest.h>

#include "common/hash.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"

namespace gammadb {
namespace {

TEST(StatusTest, OkByDefault) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status status = Status::NotFound("relation foo");
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(status.IsNotFound());
  EXPECT_EQ(status.ToString(), "NotFound: relation foo");
}

TEST(StatusTest, CodePredicates) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_FALSE(Status::Corruption("x").IsNotFound());
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> result = Status::NotFound("gone");
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsNotFound());
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> result(std::string("hello"));
  const std::string moved = std::move(result).value();
  EXPECT_EQ(moved, "hello");
}

Result<int> Doubler(Result<int> in) {
  GAMMA_ASSIGN_OR_RETURN(int v, in);
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Doubler(21), 42);
  EXPECT_TRUE(Doubler(Status::NotFound("x")).status().IsNotFound());
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next64(), b.Next64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differences = 0;
  for (int i = 0; i < 16; ++i) {
    if (a.Next64() != b.Next64()) ++differences;
  }
  EXPECT_GT(differences, 12);
}

TEST(RngTest, UniformWithinBound) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, PermutationIsAPermutation) {
  Rng rng(123);
  const auto perm = rng.Permutation(1000);
  std::set<uint32_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 1000u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 999u);
}

TEST(HashTest, SaltsAreIndependent) {
  // The overflow machinery depends on residency hashes being independent of
  // the routing hash: same keys, different salts, different bit patterns.
  int agree = 0;
  for (int32_t key = 0; key < 1000; ++key) {
    const bool bit_a = HashInt32(key, 1) & 1;
    const bool bit_b = HashInt32(key, 2) & 1;
    if (bit_a == bit_b) ++agree;
  }
  EXPECT_GT(agree, 350);
  EXPECT_LT(agree, 650);
}

TEST(HashTest, ReasonablyUniformBuckets) {
  constexpr int kBuckets = 8;
  int counts[kBuckets] = {0};
  for (int32_t key = 0; key < 8000; ++key) {
    counts[HashInt32(key, 42) % kBuckets] += 1;
  }
  for (int bucket = 0; bucket < kBuckets; ++bucket) {
    EXPECT_GT(counts[bucket], 800);
    EXPECT_LT(counts[bucket], 1200);
  }
}

}  // namespace
}  // namespace gammadb
