// Elastic-growth property tests: AddNode must never change answers,
// migration must rebalance every declustering strategy while preserving
// content, a crash at any point inside a migration statement must recover
// to exactly the old or the new placement, and the whole scenario must be
// byte-identical at any host-thread width.

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "catalog/partition.h"
#include "elastic/migrator.h"
#include "exec/predicate.h"
#include "gamma/machine.h"
#include "sim/host_pool.h"
#include "test_util.h"

namespace gammadb {
namespace {

using exec::Predicate;
using gammadb::testing::MiniRelation;
using gammadb::testing::MiniSchema;

/// Runs `body` with the host pool set to `threads`, restoring the previous
/// width afterwards.
template <typename Fn>
auto WithThreads(int threads, Fn&& body) {
  auto& pool = sim::HostPool::Instance();
  const int prev = pool.num_threads();
  pool.set_num_threads(threads);
  auto result = body();
  pool.set_num_threads(prev);
  return result;
}

gamma::GammaConfig ElasticConfig(int disk_nodes, bool backups) {
  gamma::GammaConfig config;
  config.num_disk_nodes = disk_nodes;
  config.num_diskless_nodes = 0;
  config.enable_logging = true;  // migrations are WAL-logged statements
  config.chained_declustering = backups;
  return config;
}

std::vector<std::vector<uint8_t>> SortedContent(gamma::GammaMachine& machine,
                                                const std::string& name) {
  auto tuples = machine.ReadRelation(name);
  GAMMA_CHECK(tuples.ok());
  std::sort(tuples->begin(), tuples->end());
  return std::move(*tuples);
}

std::vector<uint64_t> PerNodeCounts(gamma::GammaMachine& machine,
                                    const std::string& name) {
  auto meta = machine.catalog().Get(name);
  GAMMA_CHECK(meta.ok());
  std::vector<uint64_t> counts;
  for (size_t i = 0; i < (*meta)->per_node_file.size(); ++i) {
    const uint32_t fid = (*meta)->per_node_file[i];
    counts.push_back(fid == catalog::kNoFile
                         ? 0
                         : machine.node(static_cast<int>(i))
                               .file(fid)
                               .num_tuples());
  }
  return counts;
}

/// Host-bound exact-match select on `attr == key`; returns the matching
/// tuples sorted.
std::vector<std::vector<uint8_t>> ExactMatch(gamma::GammaMachine& machine,
                                             const std::string& name,
                                             int attr, int32_t key) {
  gamma::SelectQuery query;
  query.relation = name;
  query.predicate = Predicate::Eq(attr, key);
  query.store_result = false;
  auto result = machine.RunSelect(query);
  GAMMA_CHECK(result.ok());
  std::sort(result->returned.begin(), result->returned.end());
  return result->returned;
}

struct SpecCase {
  const char* label;
  catalog::PartitionSpec spec;
};

std::vector<SpecCase> AllSpecs() {
  return {
      {"hashed", catalog::PartitionSpec::Hashed(0)},
      {"range", catalog::PartitionSpec::RangeUser(0, {300})},
      {"round_robin", catalog::PartitionSpec::RoundRobin()},
  };
}

TEST(ElasticGrowth, AddNodePreservesPlacementAndAnswers) {
  for (const auto& [label, spec] : AllSpecs()) {
    SCOPED_TRACE(label);
    gamma::GammaMachine machine(ElasticConfig(2, /*backups=*/true));
    ASSERT_TRUE(machine.CreateRelation("M", MiniSchema(), spec).ok());
    const auto tuples = MiniRelation(500, 11);
    ASSERT_TRUE(machine.LoadTuples("M", tuples).ok());
    const auto before = SortedContent(machine, "M");

    auto grown = machine.AddNode();
    ASSERT_TRUE(grown.ok()) << grown.status().message();
    EXPECT_EQ(grown->node, 2);
    EXPECT_EQ(machine.config().num_disk_nodes, 3);

    // Placement untouched: same content, and the new node holds nothing.
    EXPECT_EQ(SortedContent(machine, "M"), before);
    EXPECT_EQ(PerNodeCounts(machine, "M").back(), 0u);

    auto meta = machine.catalog().Get("M");
    ASSERT_TRUE(meta.ok());
    if (spec.strategy == catalog::PartitionStrategy::kHashed) {
      // Converted to virtual buckets, placement-preservingly.
      EXPECT_EQ((*meta)->partitioning.bucket_map.size(), 32u);  // 16 * old n
      EXPECT_EQ(grown->relations_converted, 1u);
    }
    if (spec.strategy == catalog::PartitionStrategy::kRangeUser) {
      // Range placement pinned against the width change.
      EXPECT_EQ((*meta)->partitioning.range_nodes.size(), 2u);
    }

    // Exact-match localization still finds every key (round-robin cannot
    // localize, so the machine scans — still correct).
    for (const int32_t key : {0, 123, 299, 300, 499}) {
      const auto hits = ExactMatch(machine, "M", 0, key);
      ASSERT_EQ(hits.size(), 1u) << "key " << key;
      EXPECT_EQ(catalog::TupleView(&MiniSchema(), hits[0]).GetInt(0), key);
    }
  }
}

TEST(ElasticMigration, RebalancesEveryStrategy) {
  for (const auto& [label, spec] : AllSpecs()) {
    SCOPED_TRACE(label);
    gamma::GammaMachine machine(ElasticConfig(2, /*backups=*/true));
    ASSERT_TRUE(machine.CreateRelation("M", MiniSchema(), spec).ok());
    const auto tuples = MiniRelation(600, 13);
    ASSERT_TRUE(machine.LoadTuples("M", tuples).ok());
    ASSERT_TRUE(machine.BuildIndex("M", 0, /*clustered=*/true).ok());
    ASSERT_TRUE(machine.BuildIndex("M", 1, /*clustered=*/false).ok());
    const auto before = SortedContent(machine, "M");

    ASSERT_TRUE(machine.AddNode().ok());
    ASSERT_TRUE(machine.AddNode().ok());

    elastic::ElasticMigrator migrator(&machine);
    auto report = migrator.MigrateAll();
    ASSERT_TRUE(report.ok()) << report.status().message();
    EXPECT_EQ(report->node_count, 4);
    EXPECT_EQ(report->relations_migrated, 1u);
    EXPECT_GT(report->tuples_moved, 0u);
    EXPECT_GT(report->bytes_shipped, 0u);
    EXPECT_GT(report->migration_sec, 0.0);

    // Content is untouched; every node now serves tuples.
    EXPECT_EQ(SortedContent(machine, "M"), before);
    const auto counts = PerNodeCounts(machine, "M");
    ASSERT_EQ(counts.size(), 4u);
    for (const uint64_t count : counts) EXPECT_GT(count, 0u);
    if (spec.strategy == catalog::PartitionStrategy::kRoundRobin) {
      // Round-robin rebalances to the exact largest-remainder fair share.
      for (const uint64_t count : counts) EXPECT_EQ(count, 150u);
    }

    // Rebuilt clustered index still answers range queries correctly.
    gamma::SelectQuery query;
    query.relation = "M";
    query.predicate = Predicate::Range(0, 100, 300);
    query.access = gamma::AccessPath::kClusteredIndex;
    query.store_result = false;
    auto result = machine.RunSelect(query);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(
        gammadb::testing::ValuesOf(result->returned, MiniSchema(), 0),
        gammadb::testing::ReferenceSelect(tuples, MiniSchema(), 0, 100, 300,
                                          0));

    // Exact-match localization works under the new placement.
    for (const int32_t key : {0, 150, 310, 599}) {
      const auto hits = ExactMatch(machine, "M", 0, key);
      ASSERT_EQ(hits.size(), 1u) << "key " << key;
    }

    // A second migration at the same width is a no-op.
    elastic::ElasticMigrator again(&machine);
    auto noop = again.MigrateRelation("M");
    ASSERT_TRUE(noop.ok());
    EXPECT_EQ(noop->tuples_moved, 0u);
    EXPECT_EQ(noop->relations_migrated, 0u);
  }
}

TEST(ElasticMigration, GrownMachineMatchesStaticMachine) {
  const auto tuples = MiniRelation(600, 17);
  const auto answers = [&](gamma::GammaMachine& machine) {
    std::vector<std::vector<std::vector<uint8_t>>> out;
    out.push_back(SortedContent(machine, "M"));
    for (const int32_t key : {5, 250, 555}) {
      out.push_back(ExactMatch(machine, "M", 0, key));
    }
    gamma::SelectQuery query;
    query.relation = "M";
    query.predicate = Predicate::Range(1, 200, 900);
    query.store_result = false;
    auto result = machine.RunSelect(query);
    GAMMA_CHECK(result.ok());
    std::sort(result->returned.begin(), result->returned.end());
    out.push_back(result->returned);
    return out;
  };

  gamma::GammaMachine grown(ElasticConfig(2, /*backups=*/true));
  ASSERT_TRUE(grown
                  .CreateRelation("M", MiniSchema(),
                                  catalog::PartitionSpec::Hashed(0))
                  .ok());
  ASSERT_TRUE(grown.LoadTuples("M", tuples).ok());
  ASSERT_TRUE(grown.AddNode().ok());
  ASSERT_TRUE(grown.AddNode().ok());
  elastic::ElasticMigrator migrator(&grown);
  ASSERT_TRUE(migrator.MigrateAll().ok());

  gamma::GammaMachine fixed(ElasticConfig(4, /*backups=*/true));
  ASSERT_TRUE(fixed
                  .CreateRelation("M", MiniSchema(),
                                  catalog::PartitionSpec::Hashed(0))
                  .ok());
  ASSERT_TRUE(fixed.LoadTuples("M", tuples).ok());

  // Placements differ (bucket map vs plain hash) but every answer set is
  // byte-identical.
  EXPECT_EQ(answers(grown), answers(fixed));
}

/// Shared scaffold for the crash tests: a loaded hashed relation, one added
/// node, and a migration that crashes per `options`. Returns the recovered
/// machine.
std::unique_ptr<gamma::GammaMachine> CrashedMigration(
    const elastic::MigrationOptions& options, uint64_t* tuples_moved) {
  auto machine =
      std::make_unique<gamma::GammaMachine>(ElasticConfig(2, true));
  GAMMA_CHECK(machine
                  ->CreateRelation("M", MiniSchema(),
                                   catalog::PartitionSpec::Hashed(0))
                  .ok());
  GAMMA_CHECK(machine->LoadTuples("M", MiniRelation(500, 19)).ok());
  GAMMA_CHECK(machine->AddNode().ok());

  elastic::ElasticMigrator migrator(machine.get(), options);
  auto report = migrator.MigrateRelation("M");
  GAMMA_CHECK(!report.ok());  // the statement died with the machine
  GAMMA_CHECK(machine->crashed());

  auto recovered = machine->Recover();
  GAMMA_CHECK(recovered.ok());
  GAMMA_CHECK(recovered->losers + recovered->winners == 1);
  if (tuples_moved != nullptr) {
    *tuples_moved = recovered->records_undone + recovered->records_redone;
  }
  return machine;
}

TEST(ElasticMigration, CrashAfterMovesRollsBack) {
  const auto tuples = MiniRelation(500, 19);
  std::vector<std::vector<uint8_t>> expected(tuples);
  std::sort(expected.begin(), expected.end());

  elastic::MigrationOptions options;
  options.crash_after_moves = 5;
  uint64_t reversed = 0;
  auto machine = CrashedMigration(options, &reversed);
  EXPECT_EQ(reversed, 5u);  // the five forced deletes, physically undone

  // The loser rolled back: content intact, nothing on the new node.
  EXPECT_EQ(SortedContent(*machine, "M"), expected);
  EXPECT_EQ(PerNodeCounts(*machine, "M").back(), 0u);
  for (const int32_t key : {0, 250, 499}) {
    EXPECT_EQ(ExactMatch(*machine, "M", 0, key).size(), 1u);
  }

  // The machine stays usable: a clean migration now succeeds.
  elastic::ElasticMigrator migrator(machine.get());
  auto report = migrator.MigrateRelation("M");
  ASSERT_TRUE(report.ok()) << report.status().message();
  EXPECT_GT(report->tuples_moved, 0u);
  EXPECT_EQ(SortedContent(*machine, "M"), expected);
  EXPECT_GT(PerNodeCounts(*machine, "M").back(), 0u);
}

TEST(ElasticMigration, CrashBeforeFlipRollsBack) {
  const auto tuples = MiniRelation(500, 19);
  std::vector<std::vector<uint8_t>> expected(tuples);
  std::sort(expected.begin(), expected.end());

  elastic::MigrationOptions options;
  options.crash_before_flip = true;
  uint64_t reversed = 0;
  auto machine = CrashedMigration(options, &reversed);
  EXPECT_GT(reversed, 0u);  // every move (delete + insert) physically undone

  // Every move and the placement flip were undone.
  EXPECT_EQ(SortedContent(*machine, "M"), expected);
  EXPECT_EQ(PerNodeCounts(*machine, "M").back(), 0u);
  auto meta = machine->catalog().Get("M");
  ASSERT_TRUE(meta.ok());
  for (const int32_t owner : (*meta)->partitioning.bucket_map) {
    EXPECT_LT(owner, 2);  // old placement: no bucket routed to node 2
  }
  for (const int32_t key : {0, 250, 499}) {
    EXPECT_EQ(ExactMatch(*machine, "M", 0, key).size(), 1u);
  }
}

TEST(ElasticMigration, CrashAfterCommitCompletesFlip) {
  const auto tuples = MiniRelation(500, 19);
  std::vector<std::vector<uint8_t>> expected(tuples);
  std::sort(expected.begin(), expected.end());

  elastic::MigrationOptions options;
  options.crash_after_commit = true;
  uint64_t reversed = 0;
  auto machine = CrashedMigration(options, &reversed);
  EXPECT_EQ(reversed, 1u);  // redo applied the logged placement flip

  // The winner completed: content intact, moves kept, flip applied.
  EXPECT_EQ(SortedContent(*machine, "M"), expected);
  EXPECT_GT(PerNodeCounts(*machine, "M").back(), 0u);
  auto meta = machine->catalog().Get("M");
  ASSERT_TRUE(meta.ok());
  bool any_on_new = false;
  for (const int32_t owner : (*meta)->partitioning.bucket_map) {
    any_on_new |= owner == 2;
  }
  EXPECT_TRUE(any_on_new);
  // Exact-match localization under the flipped spec proves catalog routing
  // and physical placement agree.
  for (const int32_t key : {0, 250, 499}) {
    EXPECT_EQ(ExactMatch(*machine, "M", 0, key).size(), 1u);
  }
}

TEST(ElasticMigration, DeterministicAcrossHostThreads) {
  struct Outcome {
    std::vector<std::vector<uint8_t>> content;
    std::vector<double> seconds;
    double migration_sec;
    bool operator==(const Outcome&) const = default;
  };
  const auto scenario = [] {
    Outcome out;
    gamma::GammaMachine machine(ElasticConfig(2, /*backups=*/true));
    GAMMA_CHECK(machine
                    .CreateRelation("M", MiniSchema(),
                                    catalog::PartitionSpec::Hashed(0))
                    .ok());
    GAMMA_CHECK(machine.LoadTuples("M", MiniRelation(600, 23)).ok());

    gamma::SelectQuery query;
    query.relation = "M";
    query.predicate = Predicate::Range(1, 100, 700);
    query.store_result = false;
    auto before = machine.RunSelect(query);
    GAMMA_CHECK(before.ok());
    out.seconds.push_back(before->seconds());

    GAMMA_CHECK(machine.AddNode().ok());
    GAMMA_CHECK(machine.AddNode().ok());
    elastic::ElasticMigrator migrator(&machine);
    auto report = migrator.MigrateAll();
    GAMMA_CHECK(report.ok());
    out.migration_sec = report->migration_sec;

    auto after = machine.RunSelect(query);
    GAMMA_CHECK(after.ok());
    out.seconds.push_back(after->seconds());
    out.content = SortedContent(machine, "M");
    return out;
  };

  const Outcome narrow = WithThreads(1, scenario);
  const Outcome wide = WithThreads(4, scenario);
  EXPECT_EQ(narrow, wide);  // bit-exact simulated seconds and bytes
}

TEST(ElasticMigration, ProfileRingFlushCoversMigration) {
  gamma::GammaConfig config = ElasticConfig(2, /*backups=*/false);
  config.trace.enabled = true;
  gamma::GammaMachine machine(config);
  ASSERT_TRUE(machine
                  .CreateRelation("M", MiniSchema(),
                                  catalog::PartitionSpec::Hashed(0))
                  .ok());
  ASSERT_TRUE(machine.LoadTuples("M", MiniRelation(300, 29)).ok());

  gamma::SelectQuery query;
  query.relation = "M";
  query.predicate = Predicate::Range(0, 0, 99);
  query.store_result = false;
  ASSERT_TRUE(machine.RunSelect(query).ok());
  ASSERT_TRUE(machine.RunSelect(query).ok());
  EXPECT_EQ(machine.profile_ring().size(), 2u);

  // Migration statements are traced like any other statement.
  ASSERT_TRUE(machine.AddNode().ok());
  elastic::ElasticMigrator migrator(&machine);
  ASSERT_TRUE(migrator.MigrateAll().ok());
  const size_t buffered = machine.profile_ring().size();
  EXPECT_GT(buffered, 2u);

  const std::string path = ::testing::TempDir() + "/elastic_ring.json";
  ASSERT_TRUE(machine.FlushProfileRing(path).ok());
  EXPECT_TRUE(machine.profile_ring().empty());  // flush drains the ring

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  EXPECT_NE(json.find("\"statements\":" + std::to_string(buffered)),
            std::string::npos);
  EXPECT_NE(json.find("process_name"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gammadb
