// Calibration tests: the simulated machines must land in a band around the
// paper's published numbers (within a factor of two for absolute values)
// and must reproduce every ordering/shape claim made in the paper's prose.
// These are the guardrails that keep future changes from silently
// de-calibrating the model.

#include <gtest/gtest.h>

#include "exec/predicate.h"
#include "gamma/machine.h"
#include "teradata/machine.h"
#include "wisconsin/wisconsin.h"

namespace gammadb {
namespace {

namespace wis = gammadb::wisconsin;
using exec::Predicate;

constexpr uint64_t kSeed = 0xA11CE;

/// |measured| must be within a factor-2 band of |paper|.
#define EXPECT_IN_BAND(measured, paper)                      \
  do {                                                       \
    EXPECT_GT(measured, (paper) / 2.0) << "paper " << paper; \
    EXPECT_LT(measured, (paper)*2.0) << "paper " << paper;   \
  } while (0)

class GammaCalibration : public ::testing::Test {
 protected:
  static gamma::GammaMachine* machine() {
    static gamma::GammaMachine* m = [] {
      auto* machine = new gamma::GammaMachine(gamma::GammaConfig{});
      const auto tuples = wis::GenerateWisconsin(10000, kSeed);
      GAMMA_CHECK(machine
                      ->CreateRelation("heap", wis::WisconsinSchema(),
                                       catalog::PartitionSpec::Hashed(
                                           wis::kUnique1))
                      .ok());
      GAMMA_CHECK(machine->LoadTuples("heap", tuples).ok());
      GAMMA_CHECK(machine
                      ->CreateRelation("idx", wis::WisconsinSchema(),
                                       catalog::PartitionSpec::Hashed(
                                           wis::kUnique1))
                      .ok());
      GAMMA_CHECK(machine->LoadTuples("idx", tuples).ok());
      GAMMA_CHECK(machine->BuildIndex("idx", wis::kUnique1, true).ok());
      GAMMA_CHECK(machine->BuildIndex("idx", wis::kUnique2, false).ok());
      return machine;
    }();
    return m;
  }

  double Select(const std::string& relation, int attr, int32_t lo,
                int32_t hi, gamma::AccessPath access) {
    gamma::SelectQuery query;
    query.relation = relation;
    query.predicate = Predicate::Range(attr, lo, hi);
    query.access = access;
    const auto result = machine()->RunSelect(query);
    GAMMA_CHECK(result.ok());
    return result->seconds();
  }
};

TEST_F(GammaCalibration, Table1SelectionBands10k) {
  // Paper Table 1, Gamma column, 10,000 tuples.
  EXPECT_IN_BAND(Select("heap", wis::kUnique1, 0, 99,
                        gamma::AccessPath::kFileScan),
                 1.63);
  EXPECT_IN_BAND(Select("heap", wis::kUnique1, 0, 999,
                        gamma::AccessPath::kFileScan),
                 2.11);
  EXPECT_IN_BAND(Select("idx", wis::kUnique2, 0, 99,
                        gamma::AccessPath::kNonClusteredIndex),
                 1.03);
  EXPECT_IN_BAND(Select("idx", wis::kUnique1, 0, 99,
                        gamma::AccessPath::kClusteredIndex),
                 0.59);
  EXPECT_IN_BAND(Select("idx", wis::kUnique1, 0, 999,
                        gamma::AccessPath::kClusteredIndex),
                 1.26);

  gamma::SelectQuery single;
  single.relation = "idx";
  single.predicate = Predicate::Eq(wis::kUnique1, 5000);
  EXPECT_IN_BAND(machine()->RunSelect(single)->seconds(), 0.15);
}

TEST_F(GammaCalibration, OrderingClaimsHold) {
  // Clustered beats non-clustered beats scan at 1% (§5.1).
  const double scan = Select("heap", wis::kUnique1, 100, 199,
                             gamma::AccessPath::kFileScan);
  const double nc = Select("idx", wis::kUnique2, 100, 199,
                           gamma::AccessPath::kNonClusteredIndex);
  const double clustered = Select("idx", wis::kUnique1, 100, 199,
                                  gamma::AccessPath::kClusteredIndex);
  EXPECT_LT(clustered, nc);
  EXPECT_LT(nc, scan);
}

TEST(GammaCalibrationHeavy, ClusteredIndexCostTracksResultSize) {
  // §5.1: the 10% selection from 10k and the 1% from 100k both retrieve and
  // store 1,000 tuples through a clustered index and cost about the same
  // (1.26 vs 1.25 seconds in Table 1).
  auto run = [](uint32_t n, int32_t hi) {
    gamma::GammaMachine machine{gamma::GammaConfig{}};
    const auto tuples = wis::GenerateWisconsin(n, kSeed);
    GAMMA_CHECK(machine
                    .CreateRelation("r", wis::WisconsinSchema(),
                                    catalog::PartitionSpec::Hashed(
                                        wis::kUnique1))
                    .ok());
    GAMMA_CHECK(machine.LoadTuples("r", tuples).ok());
    GAMMA_CHECK(machine.BuildIndex("r", wis::kUnique1, true).ok());
    gamma::SelectQuery query;
    query.relation = "r";
    query.predicate = Predicate::Range(wis::kUnique1, 0, hi);
    query.access = gamma::AccessPath::kClusteredIndex;
    const auto result = machine.RunSelect(query);
    GAMMA_CHECK(result.ok());
    GAMMA_CHECK(result->result_tuples == 1000);
    return result->seconds();
  };
  const double ten_pct_of_10k = run(10000, 999);
  const double one_pct_of_100k = run(100000, 999);
  EXPECT_NEAR(ten_pct_of_10k / one_pct_of_100k, 1.0, 0.35);
}

TEST(GammaCalibrationHeavy, LinearScalingWithRelationSize) {
  // Table 1: execution time scales linearly with relation size.
  auto run = [](uint32_t n) {
    gamma::GammaMachine machine{gamma::GammaConfig{}};
    GAMMA_CHECK(machine
                    .CreateRelation("r", wis::WisconsinSchema(),
                                    catalog::PartitionSpec::Hashed(
                                        wis::kUnique1))
                    .ok());
    GAMMA_CHECK(
        machine.LoadTuples("r", wis::GenerateWisconsin(n, kSeed)).ok());
    gamma::SelectQuery query;
    query.relation = "r";
    query.predicate = Predicate::Range(wis::kUnique1, 0,
                                       static_cast<int32_t>(n / 100) - 1);
    query.access = gamma::AccessPath::kFileScan;
    return machine.RunSelect(query)->seconds();
  };
  const double at_10k = run(10000);
  const double at_100k = run(100000);
  // Fixed scheduling costs make the ratio slightly below 10.
  EXPECT_GT(at_100k / at_10k, 5.0);
  EXPECT_LT(at_100k / at_10k, 11.0);
}

TEST(GammaCalibrationHeavy, PageSizeSweetSpotAt8K) {
  // §8: going from 4 KB to 8 KB helps; beyond 8 KB there is little gain.
  auto run = [](uint32_t page_size) {
    gamma::GammaConfig config;
    config.page_size = page_size;
    gamma::GammaMachine machine(config);
    GAMMA_CHECK(machine
                    .CreateRelation("r", wis::WisconsinSchema(),
                                    catalog::PartitionSpec::Hashed(
                                        wis::kUnique1))
                    .ok());
    GAMMA_CHECK(
        machine.LoadTuples("r", wis::GenerateWisconsin(100000, kSeed)).ok());
    gamma::SelectQuery query;
    query.relation = "r";
    query.predicate = Predicate::Range(wis::kUnique1, 0, 999);
    query.access = gamma::AccessPath::kFileScan;
    return machine.RunSelect(query)->seconds();
  };
  const double at_4k = run(4096);
  const double at_8k = run(8192);
  const double at_32k = run(32768);
  EXPECT_LT(at_8k, at_4k * 0.95);          // 4 -> 8 KB is a real gain
  EXPECT_GT(at_32k, at_8k * 0.85);         // beyond 8 KB: little effect
}

TEST(TeradataCalibration, Table1Bands10k) {
  teradata::TeradataMachine machine{teradata::TeradataConfig{}};
  const auto tuples = wis::GenerateWisconsin(10000, kSeed);
  GAMMA_CHECK(
      machine.CreateRelation("a", wis::WisconsinSchema(), wis::kUnique1)
          .ok());
  GAMMA_CHECK(machine.LoadTuples("a", tuples).ok());
  GAMMA_CHECK(machine.BuildSecondaryIndex("a", wis::kUnique2).ok());

  teradata::TdSelectQuery query;
  query.relation = "a";
  query.predicate = Predicate::Range(wis::kUnique1, 0, 99);
  EXPECT_IN_BAND(machine.RunSelect(query)->seconds(), 6.86);
  query.predicate = Predicate::Range(wis::kUnique1, 0, 999);
  EXPECT_IN_BAND(machine.RunSelect(query)->seconds(), 15.97);
  // §5.1: the indexed 1% selection is NOT significantly faster than the
  // scan (the whole index is scanned and data fetches are random).
  query.predicate = Predicate::Range(wis::kUnique2, 0, 99);
  EXPECT_IN_BAND(machine.RunSelect(query)->seconds(), 7.81);
  // Single-tuple select: ~1.08 s at every size.
  query.predicate = Predicate::Eq(wis::kUnique1, 500);
  query.store_result = true;
  EXPECT_IN_BAND(machine.RunSelect(query)->seconds(), 1.08);
}

TEST(JoinCalibration, CrossMachineShapeClaims) {
  // §6.1 on 100k tuples: Teradata does joinABprime faster than joinAselB,
  // Gamma the opposite; and both Gamma times are several times faster.
  constexpr uint32_t kN = 100000;
  const auto a = wis::GenerateWisconsin(kN, kSeed);
  const auto bprime = wis::GenerateWisconsin(kN / 10, 0xB123);

  gamma::GammaConfig config;
  config.join_memory_total = 4800 * 1024;
  gamma::GammaMachine gamma_machine(config);
  teradata::TeradataMachine td_machine{teradata::TeradataConfig{}};
  for (const char* name : {"A", "B"}) {
    GAMMA_CHECK(gamma_machine
                    .CreateRelation(name, wis::WisconsinSchema(),
                                    catalog::PartitionSpec::Hashed(
                                        wis::kUnique1))
                    .ok());
    GAMMA_CHECK(gamma_machine.LoadTuples(name, a).ok());
    GAMMA_CHECK(
        td_machine.CreateRelation(name, wis::WisconsinSchema(), wis::kUnique1)
            .ok());
    GAMMA_CHECK(td_machine.LoadTuples(name, a).ok());
  }
  GAMMA_CHECK(gamma_machine
                  .CreateRelation("Bprime", wis::WisconsinSchema(),
                                  catalog::PartitionSpec::Hashed(
                                      wis::kUnique1))
                  .ok());
  GAMMA_CHECK(gamma_machine.LoadTuples("Bprime", bprime).ok());
  GAMMA_CHECK(td_machine
                  .CreateRelation("Bprime", wis::WisconsinSchema(),
                                  wis::kUnique1)
                  .ok());
  GAMMA_CHECK(td_machine.LoadTuples("Bprime", bprime).ok());

  // Gamma joinABprime vs joinAselB (selection propagation applies).
  gamma::JoinQuery g_abprime;
  g_abprime.outer = "A";
  g_abprime.inner = "Bprime";
  g_abprime.outer_attr = wis::kUnique2;
  g_abprime.inner_attr = wis::kUnique2;
  const double g_ab = gamma_machine.RunJoin(g_abprime)->seconds();

  gamma::JoinQuery g_aselb = g_abprime;
  g_aselb.inner = "B";
  g_aselb.outer_pred = Predicate::Range(wis::kUnique2, 0, kN / 10 - 1);
  g_aselb.inner_pred = Predicate::Range(wis::kUnique2, 0, kN / 10 - 1);
  const double g_asb = gamma_machine.RunJoin(g_aselb)->seconds();

  teradata::TdJoinQuery t_abprime;
  t_abprime.outer = "A";
  t_abprime.inner = "Bprime";
  t_abprime.outer_attr = wis::kUnique2;
  t_abprime.inner_attr = wis::kUnique2;
  const double t_ab = td_machine.RunJoin(t_abprime)->seconds();

  teradata::TdJoinQuery t_aselb = t_abprime;
  t_aselb.inner = "B";
  t_aselb.inner_pred = Predicate::Range(wis::kUnique2, 0, kN / 10 - 1);
  const double t_asb = td_machine.RunJoin(t_aselb)->seconds();

  EXPECT_LT(t_ab, t_asb);   // Teradata: ABprime always faster
  EXPECT_GT(g_ab, g_asb);   // Gamma: the opposite (§6.1)
  EXPECT_GT(t_ab / g_ab, 3.0);  // Gamma several times faster overall
  EXPECT_IN_BAND(g_ab, 47.6);
  EXPECT_IN_BAND(t_ab, 321.8);

  // Key-attribute join: Teradata improves substantially (§6.1).
  teradata::TdJoinQuery t_key = t_abprime;
  t_key.outer_attr = wis::kUnique1;
  t_key.inner_attr = wis::kUnique1;
  const double t_key_sec = td_machine.RunJoin(t_key)->seconds();
  EXPECT_LT(t_key_sec, t_ab * 0.75);
}

TEST(Table3Calibration, GammaUpdateBands) {
  gamma::GammaMachine machine{gamma::GammaConfig{}};
  const auto tuples = wis::GenerateWisconsin(10000, kSeed);
  GAMMA_CHECK(machine
                  .CreateRelation("r", wis::WisconsinSchema(),
                                  catalog::PartitionSpec::Hashed(
                                      wis::kUnique1))
                  .ok());
  GAMMA_CHECK(machine.LoadTuples("r", tuples).ok());
  GAMMA_CHECK(machine.BuildIndex("r", wis::kUnique1, true).ok());
  GAMMA_CHECK(machine.BuildIndex("r", wis::kUnique2, false).ok());

  catalog::TupleBuilder builder(&wis::WisconsinSchema());
  builder.SetInt(wis::kUnique1, 20000).SetInt(wis::kUnique2, 20000);
  gamma::AppendQuery append{
      "r", {builder.bytes().begin(), builder.bytes().end()}};
  EXPECT_IN_BAND(machine.RunAppend(append)->seconds(), 0.60);

  gamma::DeleteQuery del{"r", wis::kUnique1, 123};
  EXPECT_IN_BAND(machine.RunDelete(del)->seconds(), 0.44);

  // Modify of the key attribute (relocation) is the costliest update. Known
  // deviation (EXPERIMENTS.md): the model sits ~2.5x below the paper's
  // 1.01 s for this row — the real machine's cross-site commit protocol had
  // costs we do not itemize — but the row must stay the most expensive one.
  gamma::ModifyQuery relocate{"r", wis::kUnique1, 42, wis::kUnique1, 30000};
  const double relocate_sec = machine.RunModify(relocate)->seconds();
  EXPECT_GT(relocate_sec, 0.3);
  EXPECT_LT(relocate_sec, 1.01 * 2);
  gamma::ModifyQuery in_place{"r", wis::kUnique1, 43, wis::kTen, 5};
  EXPECT_LT(machine.RunModify(in_place)->seconds(), relocate_sec);
}

}  // namespace
}  // namespace gammadb
