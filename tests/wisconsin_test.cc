// Tests for the Wisconsin benchmark generator (§4 of the paper / [BITT83]).

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "wisconsin/wisconsin.h"

namespace gammadb::wisconsin {
namespace {

using catalog::TupleView;

TEST(WisconsinTest, TupleSizeIs208Bytes) {
  const auto tuples = GenerateWisconsin(10, 1);
  ASSERT_EQ(tuples.size(), 10u);
  EXPECT_EQ(tuples[0].size(), 208u);
}

TEST(WisconsinTest, UniqueAttributesArePermutations) {
  const auto tuples = GenerateWisconsin(5000, 1);
  std::set<int32_t> u1, u2;
  for (const auto& tuple : tuples) {
    const TupleView view(&WisconsinSchema(), tuple);
    u1.insert(view.GetInt(kUnique1));
    u2.insert(view.GetInt(kUnique2));
  }
  EXPECT_EQ(u1.size(), 5000u);
  EXPECT_EQ(*u1.begin(), 0);
  EXPECT_EQ(*u1.rbegin(), 4999);
  EXPECT_EQ(u2.size(), 5000u);
}

TEST(WisconsinTest, Unique1Unique2Uncorrelated) {
  // §4: "no correlation between the values of unique1 and unique2 within a
  // single tuple". Pearson correlation should be near zero.
  const auto tuples = GenerateWisconsin(5000, 1);
  double sum1 = 0, sum2 = 0, sum12 = 0, sq1 = 0, sq2 = 0;
  for (const auto& tuple : tuples) {
    const TupleView view(&WisconsinSchema(), tuple);
    const double a = view.GetInt(kUnique1);
    const double b = view.GetInt(kUnique2);
    sum1 += a;
    sum2 += b;
    sum12 += a * b;
    sq1 += a * a;
    sq2 += b * b;
  }
  const double n = 5000;
  const double cov = sum12 / n - (sum1 / n) * (sum2 / n);
  const double var1 = sq1 / n - (sum1 / n) * (sum1 / n);
  const double var2 = sq2 / n - (sum2 / n) * (sum2 / n);
  const double corr = cov / std::sqrt(var1 * var2);
  EXPECT_LT(std::abs(corr), 0.05);
}

TEST(WisconsinTest, DerivedAttributesConsistent) {
  const auto tuples = GenerateWisconsin(1000, 2);
  for (const auto& tuple : tuples) {
    const TupleView view(&WisconsinSchema(), tuple);
    const int32_t u1 = view.GetInt(kUnique1);
    EXPECT_EQ(view.GetInt(kTwo), u1 % 2);
    EXPECT_EQ(view.GetInt(kFour), u1 % 4);
    EXPECT_EQ(view.GetInt(kTen), u1 % 10);
    EXPECT_EQ(view.GetInt(kTwenty), u1 % 20);
    EXPECT_EQ(view.GetInt(kOnePercent), u1 % 100);
    EXPECT_EQ(view.GetInt(kUnique3), u1);
    EXPECT_EQ(view.GetInt(kEvenOnePercent), (u1 % 100) * 2);
    EXPECT_EQ(view.GetInt(kOddOnePercent), (u1 % 100) * 2 + 1);
  }
}

TEST(WisconsinTest, RangePredicateSelectivityIsExact) {
  // A range [0, n*s) on unique1 selects exactly n*s tuples — the property
  // every selectivity-controlled experiment in the paper relies on.
  const auto tuples = GenerateWisconsin(10000, 3);
  int count = 0;
  for (const auto& tuple : tuples) {
    const TupleView view(&WisconsinSchema(), tuple);
    if (view.GetInt(kUnique1) < 100) ++count;
  }
  EXPECT_EQ(count, 100);
}

TEST(WisconsinTest, SameSeedSameRelationCopies) {
  // The paper's A and B are two copies of the same relation.
  const auto a = GenerateWisconsin(500, 9);
  const auto b = GenerateWisconsin(500, 9);
  EXPECT_EQ(a, b);
  const auto c = GenerateWisconsin(500, 10);
  EXPECT_NE(a, c);
}

TEST(WisconsinTest, SmallerRelationValuesAreSubset) {
  // Bprime's unique values 0..n/10-1 are a subset of A's 0..n-1, so every
  // Bprime tuple joins exactly one A tuple (the joinABprime cardinality).
  const auto bprime = GenerateWisconsin(100, 11);
  std::set<int32_t> u2;
  for (const auto& tuple : bprime) {
    u2.insert(TupleView(&WisconsinSchema(), tuple).GetInt(kUnique2));
  }
  EXPECT_EQ(*u2.rbegin(), 99);
}

TEST(WisconsinTest, StringsHaveExpectedShape) {
  const auto tuples = GenerateWisconsin(10, 4);
  const TupleView view(&WisconsinSchema(), tuples[0]);
  EXPECT_EQ(view.GetChar(kStringU1).size(), 52u);
  EXPECT_EQ(view.GetChar(kStringU1)[7], 'x');  // 7 significant chars + fill
  EXPECT_EQ(view.GetChar(kString4).substr(4, 4), "    ");
  // string4 cycles with period 4.
  const TupleView view4(&WisconsinSchema(), tuples[4]);
  EXPECT_EQ(view.GetChar(kString4).substr(0, 4),
            view4.GetChar(kString4).substr(0, 4));
}

TEST(WisconsinTest, ZipfColumnIsDeterministicAndInDomain) {
  const ZipfColumn column{kUnique2, 1.0, 100};
  const auto a = GenerateWisconsinZipf(2000, 5, column);
  const auto b = GenerateWisconsinZipf(2000, 5, column);
  EXPECT_EQ(a, b);
  for (const auto& tuple : a) {
    const int32_t v = TupleView(&WisconsinSchema(), tuple).GetInt(kUnique2);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 100);
  }
  // Only the named column differs from the plain relation.
  const auto plain = GenerateWisconsin(2000, 5);
  for (size_t i = 0; i < a.size(); ++i) {
    const TupleView za(&WisconsinSchema(), a[i]);
    const TupleView pl(&WisconsinSchema(), plain[i]);
    ASSERT_EQ(za.GetInt(kUnique1), pl.GetInt(kUnique1));
    ASSERT_EQ(za.GetInt(kTen), pl.GetInt(kTen));
  }
}

TEST(WisconsinTest, ZipfThetaControlsHeadShare) {
  auto top_share = [](double theta) {
    const auto tuples =
        GenerateWisconsinZipf(20000, 5, ZipfColumn{kUnique2, theta, 100});
    std::map<int32_t, int> counts;
    for (const auto& tuple : tuples) {
      ++counts[TupleView(&WisconsinSchema(), tuple).GetInt(kUnique2)];
    }
    int top = 0;
    for (const auto& [value, count] : counts) top = std::max(top, count);
    return static_cast<double>(top) / 20000.0;
  };
  // theta=0: ~1% per value. theta=1: the head carries ~1/H(100) ≈ 19%.
  EXPECT_LT(top_share(0.0), 0.03);
  EXPECT_GT(top_share(1.0), 0.12);
}

TEST(WisconsinTest, TuplesPerPageHelper) {
  EXPECT_EQ(TuplesPerPage(4096), (4096u - 8) / 212);
  EXPECT_GT(TuplesPerPage(32768), 7 * TuplesPerPage(4096));
}

}  // namespace
}  // namespace gammadb::wisconsin
