// Integration tests for the Gamma machine: every query type checked for
// correct answers against reference oracles, plus the cost-model behaviours
// the paper's analysis depends on.

#include <set>

#include <gtest/gtest.h>

#include "gamma/machine.h"
#include "test_util.h"
#include "wisconsin/wisconsin.h"

namespace gammadb::gamma {
namespace {

using catalog::PartitionSpec;
using exec::Predicate;
using gammadb::testing::MiniSchema;
using gammadb::testing::ReferenceJoinCount;
using gammadb::testing::ValuesOf;
namespace wis = gammadb::wisconsin;

GammaConfig SmallConfig() {
  GammaConfig config;
  config.num_disk_nodes = 4;
  config.num_diskless_nodes = 4;
  config.join_memory_total = 4 << 20;
  return config;
}

class GammaMachineTest : public ::testing::Test {
 protected:
  GammaMachineTest() : machine_(SmallConfig()) {
    tuples_ = wis::GenerateWisconsin(2000, 7);
    EXPECT_TRUE(machine_
                    .CreateRelation("A", wis::WisconsinSchema(),
                                    PartitionSpec::Hashed(wis::kUnique1))
                    .ok());
    EXPECT_TRUE(machine_.LoadTuples("A", tuples_).ok());
  }

  GammaMachine machine_;
  std::vector<std::vector<uint8_t>> tuples_;
};

TEST_F(GammaMachineTest, LoadDistributesAllTuples) {
  EXPECT_EQ(*machine_.CountTuples("A"), 2000u);
  // Hash declustering is roughly balanced.
  for (int node = 0; node < 4; ++node) {
    const auto& meta = **machine_.catalog().Get("A");
    const uint64_t frag =
        machine_.node(node)
            .file(meta.per_node_file[static_cast<size_t>(node)])
            .num_tuples();
    EXPECT_GT(frag, 350u);
    EXPECT_LT(frag, 650u);
  }
}

TEST_F(GammaMachineTest, FileScanSelectionCorrect) {
  SelectQuery query;
  query.relation = "A";
  query.predicate = Predicate::Range(wis::kUnique2, 100, 299);
  query.access = AccessPath::kFileScan;
  const auto result = machine_.RunSelect(query);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->result_tuples, 200u);
  EXPECT_GT(result->seconds(), 0.0);

  const auto stored = *machine_.ReadRelation(result->result_relation);
  EXPECT_EQ(ValuesOf(stored, wis::WisconsinSchema(), wis::kUnique2),
            gammadb::testing::ReferenceSelect(tuples_, wis::WisconsinSchema(),
                                              wis::kUnique2, 100, 299,
                                              wis::kUnique2));
}

TEST_F(GammaMachineTest, SelectionResultDeclusteredRoundRobin) {
  SelectQuery query;
  query.relation = "A";
  query.predicate = Predicate::Range(wis::kUnique1, 0, 399);
  const auto result = machine_.RunSelect(query);
  ASSERT_TRUE(result.ok());
  const auto& meta = **machine_.catalog().Get(result->result_relation);
  for (int node = 0; node < 4; ++node) {
    const uint64_t frag =
        machine_.node(node)
            .file(meta.per_node_file[static_cast<size_t>(node)])
            .num_tuples();
    EXPECT_NEAR(static_cast<double>(frag), 100.0, 35.0);
  }
}

TEST_F(GammaMachineTest, IndexedSelectionsAgreeWithScan) {
  ASSERT_TRUE(machine_.BuildIndex("A", wis::kUnique1, /*clustered=*/true).ok());
  ASSERT_TRUE(
      machine_.BuildIndex("A", wis::kUnique2, /*clustered=*/false).ok());

  for (const AccessPath path :
       {AccessPath::kFileScan, AccessPath::kClusteredIndex}) {
    SelectQuery query;
    query.relation = "A";
    query.predicate = Predicate::Range(wis::kUnique1, 500, 519);
    query.access = path;
    query.store_result = false;
    const auto result = machine_.RunSelect(query);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->result_tuples, 20u) << static_cast<int>(path);
    EXPECT_EQ(ValuesOf(result->returned, wis::WisconsinSchema(),
                       wis::kUnique1),
              gammadb::testing::ReferenceSelect(
                  tuples_, wis::WisconsinSchema(), wis::kUnique1, 500, 519,
                  wis::kUnique1));
  }

  SelectQuery nc;
  nc.relation = "A";
  nc.predicate = Predicate::Range(wis::kUnique2, 500, 519);
  nc.access = AccessPath::kNonClusteredIndex;
  nc.store_result = false;
  const auto result = machine_.RunSelect(nc);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->result_tuples, 20u);
}

TEST_F(GammaMachineTest, AutoAccessPathMatchesPaperOptimizer) {
  ASSERT_TRUE(machine_.BuildIndex("A", wis::kUnique1, true).ok());
  ASSERT_TRUE(machine_.BuildIndex("A", wis::kUnique2, false).ok());

  // 1% selection on the non-clustered attribute: index is used (few random
  // fetches beat the scan), so far fewer pages are read than a full scan.
  SelectQuery one_pct;
  one_pct.relation = "A";
  one_pct.predicate = Predicate::Range(wis::kUnique2, 0, 19);
  one_pct.store_result = false;
  const auto one = machine_.RunSelect(one_pct);
  ASSERT_TRUE(one.ok());

  SelectQuery ten_pct = one_pct;
  ten_pct.predicate = Predicate::Range(wis::kUnique2, 0, 199);
  const auto ten = machine_.RunSelect(ten_pct);
  ASSERT_TRUE(ten.ok());

  // The 10% query fell back to a scan and reads every data page; the 1%
  // query via the index reads ~20 data pages plus index pages.
  EXPECT_LT(one->metrics.Totals().pages_read,
            ten->metrics.Totals().pages_read / 3);
  EXPECT_EQ(one->result_tuples, 20u);
  EXPECT_EQ(ten->result_tuples, 200u);
}

TEST_F(GammaMachineTest, SingleTupleSelectGoesToOneNode) {
  ASSERT_TRUE(machine_.BuildIndex("A", wis::kUnique1, true).ok());
  SelectQuery query;
  query.relation = "A";
  query.predicate = Predicate::Eq(wis::kUnique1, 777);
  const auto result = machine_.RunSelect(query);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->result_tuples, 1u);
  // Exactly one select + one store operator were scheduled (8 msgs).
  EXPECT_EQ(result->metrics.scheduling_msgs, 8u);
  // Cheap: a couple of descent I/Os, not a scan.
  EXPECT_LT(result->metrics.Totals().pages_read, 10u);
}

TEST_F(GammaMachineTest, JoinAllModesCorrect) {
  const auto bprime = wis::GenerateWisconsin(200, 8);
  ASSERT_TRUE(machine_
                  .CreateRelation("Bprime", wis::WisconsinSchema(),
                                  PartitionSpec::Hashed(wis::kUnique1))
                  .ok());
  ASSERT_TRUE(machine_.LoadTuples("Bprime", bprime).ok());
  const uint64_t expected = ReferenceJoinCount(
      bprime, wis::WisconsinSchema(), wis::kUnique2, tuples_,
      wis::WisconsinSchema(), wis::kUnique2);
  ASSERT_EQ(expected, 200u);  // Bprime unique2 values are a subset of A's

  for (const JoinMode mode :
       {JoinMode::kLocal, JoinMode::kRemote, JoinMode::kAllnodes}) {
    JoinQuery query;
    query.outer = "A";
    query.inner = "Bprime";
    query.outer_attr = wis::kUnique2;
    query.inner_attr = wis::kUnique2;
    query.mode = mode;
    const auto result = machine_.RunJoin(query);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->result_tuples, expected) << static_cast<int>(mode);
    EXPECT_EQ(result->metrics.overflow_rounds, 0u);
    // Result relation holds concatenated inner++outer tuples.
    const auto stored = *machine_.ReadRelation(result->result_relation);
    ASSERT_EQ(stored.size(), expected);
    EXPECT_EQ(stored[0].size(), 2 * wis::WisconsinSchema().tuple_size());
  }
}

TEST_F(GammaMachineTest, JoinWithSelectionsPushedDown) {
  const auto b = wis::GenerateWisconsin(2000, 7);  // copy of A
  ASSERT_TRUE(machine_
                  .CreateRelation("B", wis::WisconsinSchema(),
                                  PartitionSpec::Hashed(wis::kUnique1))
                  .ok());
  ASSERT_TRUE(machine_.LoadTuples("B", b).ok());

  // joinAselB shape: restrict both to 10% on unique2, join on unique2.
  JoinQuery query;
  query.outer = "A";
  query.inner = "B";
  query.outer_attr = wis::kUnique2;
  query.inner_attr = wis::kUnique2;
  query.outer_pred = Predicate::Range(wis::kUnique2, 0, 199);
  query.inner_pred = Predicate::Range(wis::kUnique2, 0, 199);
  const auto result = machine_.RunJoin(query);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->result_tuples, 200u);  // copies match 1:1
}

TEST_F(GammaMachineTest, JoinOverflowStillCorrect) {
  GammaConfig config = SmallConfig();
  config.join_memory_total = 64 * 1024;  // starves the hash tables
  GammaMachine machine(config);
  ASSERT_TRUE(machine
                  .CreateRelation("A", wis::WisconsinSchema(),
                                  PartitionSpec::Hashed(wis::kUnique1))
                  .ok());
  ASSERT_TRUE(machine.LoadTuples("A", tuples_).ok());
  const auto bprime = wis::GenerateWisconsin(1000, 8);
  ASSERT_TRUE(machine
                  .CreateRelation("Bprime", wis::WisconsinSchema(),
                                  PartitionSpec::Hashed(wis::kUnique1))
                  .ok());
  ASSERT_TRUE(machine.LoadTuples("Bprime", bprime).ok());

  JoinQuery query;
  query.outer = "A";
  query.inner = "Bprime";
  query.outer_attr = wis::kUnique2;
  query.inner_attr = wis::kUnique2;
  const auto result = machine.RunJoin(query);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->metrics.overflow_rounds, 0u);
  EXPECT_EQ(result->result_tuples, 1000u);

  // With ample memory the same join runs with no overflow and faster.
  config.join_memory_total = 16 << 20;
  GammaMachine roomy(config);
  ASSERT_TRUE(roomy
                  .CreateRelation("A", wis::WisconsinSchema(),
                                  PartitionSpec::Hashed(wis::kUnique1))
                  .ok());
  ASSERT_TRUE(roomy.LoadTuples("A", tuples_).ok());
  ASSERT_TRUE(roomy
                  .CreateRelation("Bprime", wis::WisconsinSchema(),
                                  PartitionSpec::Hashed(wis::kUnique1))
                  .ok());
  ASSERT_TRUE(roomy.LoadTuples("Bprime", bprime).ok());
  const auto fast = roomy.RunJoin(query);
  ASSERT_TRUE(fast.ok());
  EXPECT_EQ(fast->metrics.overflow_rounds, 0u);
  EXPECT_EQ(fast->result_tuples, 1000u);
  EXPECT_LT(fast->seconds(), result->seconds());
}

TEST_F(GammaMachineTest, DuplicateSkewJoinConvergesViaForcedRound) {
  // Regression: joining on an attribute with only a handful of distinct
  // values while the hash tables are starved used to ping-pong forever —
  // no residency split can shrink a single key group that exceeds the
  // table. The orchestrator must detect the stalled round and force one.
  GammaConfig config = SmallConfig();
  config.join_memory_total = 16 * 1024;  // far below any 'ten' key group
  GammaMachine machine(config);
  ASSERT_TRUE(machine
                  .CreateRelation("A", wis::WisconsinSchema(),
                                  PartitionSpec::Hashed(wis::kUnique1))
                  .ok());
  ASSERT_TRUE(machine.LoadTuples("A", tuples_).ok());
  const auto small = wis::GenerateWisconsin(400, 8);
  ASSERT_TRUE(machine
                  .CreateRelation("S", wis::WisconsinSchema(),
                                  PartitionSpec::Hashed(wis::kUnique1))
                  .ok());
  ASSERT_TRUE(machine.LoadTuples("S", small).ok());

  JoinQuery query;
  query.outer = "A";
  query.inner = "S";
  query.outer_attr = wis::kTen;  // 10 distinct values
  query.inner_attr = wis::kTen;
  const auto result = machine.RunJoin(query);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->result_tuples,
            ReferenceJoinCount(small, wis::WisconsinSchema(), wis::kTen,
                               tuples_, wis::WisconsinSchema(), wis::kTen));
  EXPECT_GT(result->metrics.overflow_rounds, 0u);
}

TEST_F(GammaMachineTest, HybridJoinMatchesSimple) {
  const auto bprime = wis::GenerateWisconsin(500, 8);
  ASSERT_TRUE(machine_
                  .CreateRelation("Bprime", wis::WisconsinSchema(),
                                  PartitionSpec::Hashed(wis::kUnique1))
                  .ok());
  ASSERT_TRUE(machine_.LoadTuples("Bprime", bprime).ok());
  JoinQuery query;
  query.outer = "A";
  query.inner = "Bprime";
  query.outer_attr = wis::kUnique2;
  query.inner_attr = wis::kUnique2;
  query.algorithm = gamma::JoinAlgorithm::kHybridHash;
  const auto result = machine_.RunJoin(query);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->result_tuples, 500u);
}

TEST_F(GammaMachineTest, BitFilterPreservesAnswerAndCutsTraffic) {
  const auto bprime = wis::GenerateWisconsin(100, 8);
  ASSERT_TRUE(machine_
                  .CreateRelation("Bprime", wis::WisconsinSchema(),
                                  PartitionSpec::Hashed(wis::kUnique1))
                  .ok());
  ASSERT_TRUE(machine_.LoadTuples("Bprime", bprime).ok());
  JoinQuery query;
  query.outer = "A";
  query.inner = "Bprime";
  query.outer_attr = wis::kUnique2;
  query.inner_attr = wis::kUnique2;
  const auto plain = machine_.RunJoin(query);
  ASSERT_TRUE(plain.ok());
  query.use_bit_filter = true;
  const auto filtered = machine_.RunJoin(query);
  ASSERT_TRUE(filtered.ok());
  EXPECT_EQ(filtered->result_tuples, plain->result_tuples);
  const auto plain_bytes = plain->metrics.Totals().bytes_sent;
  const auto filtered_bytes = filtered->metrics.Totals().bytes_sent;
  EXPECT_LT(filtered_bytes, plain_bytes / 2);
}

TEST_F(GammaMachineTest, ScalarAndGroupedAggregates) {
  AggregateQuery scalar;
  scalar.relation = "A";
  scalar.value_attr = wis::kUnique1;
  scalar.func = exec::AggFunc::kMax;
  const auto max_result = machine_.RunAggregate(scalar);
  ASSERT_TRUE(max_result.ok());
  ASSERT_EQ(max_result->returned.size(), 1u);
  const catalog::Schema schema = exec::GroupedAggregator::ResultSchema();
  EXPECT_EQ(catalog::TupleView(&schema, max_result->returned[0]).GetInt(1),
            1999);

  AggregateQuery grouped;
  grouped.relation = "A";
  grouped.group_attr = wis::kTen;
  grouped.value_attr = wis::kUnique1;
  grouped.func = exec::AggFunc::kCount;
  const auto count_result = machine_.RunAggregate(grouped);
  ASSERT_TRUE(count_result.ok());
  EXPECT_EQ(count_result->returned.size(), 10u);
  int64_t total = 0;
  for (const auto& row : count_result->returned) {
    total += catalog::TupleView(&schema, row).GetInt(1);
  }
  EXPECT_EQ(total, 2000);
}

TEST_F(GammaMachineTest, AggregateWithPredicate) {
  AggregateQuery query;
  query.relation = "A";
  query.value_attr = wis::kUnique1;
  query.func = exec::AggFunc::kCount;
  query.predicate = Predicate::Range(wis::kUnique1, 0, 99);
  const auto result = machine_.RunAggregate(query);
  ASSERT_TRUE(result.ok());
  const catalog::Schema schema = exec::GroupedAggregator::ResultSchema();
  EXPECT_EQ(catalog::TupleView(&schema, result->returned[0]).GetInt(1), 100);
}

}  // namespace
}  // namespace gammadb::gamma
