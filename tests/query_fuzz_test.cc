// Randomized query fuzzing: hundreds of generated selections and joins on
// random configurations, every answer checked against the in-memory oracle.
// Deterministic seeds keep failures reproducible.

#include <memory>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "exec/predicate.h"
#include "gamma/machine.h"
#include "test_util.h"
#include "wisconsin/wisconsin.h"

namespace gammadb::gamma {
namespace {

namespace wis = gammadb::wisconsin;
using exec::Predicate;
using gammadb::testing::ReferenceSelect;
using gammadb::testing::ValuesOf;

class QueryFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(QueryFuzz, RandomSelectionsMatchOracle) {
  const uint64_t seed = GetParam();
  Rng rng(seed);
  GammaConfig config;
  config.num_disk_nodes = 1 + static_cast<int>(rng.Uniform(8));
  config.num_diskless_nodes = static_cast<int>(rng.Uniform(8));
  config.page_size = 1u << (11 + rng.Uniform(5));  // 2K..32K
  GammaMachine machine(config);

  const uint32_t n = 500 + static_cast<uint32_t>(rng.Uniform(2500));
  const auto tuples = wis::GenerateWisconsin(n, seed * 3 + 1);
  ASSERT_TRUE(machine
                  .CreateRelation("R", wis::WisconsinSchema(),
                                  catalog::PartitionSpec::Hashed(
                                      wis::kUnique1))
                  .ok());
  ASSERT_TRUE(machine.LoadTuples("R", tuples).ok());
  const bool with_indices = rng.Uniform(2) == 0;
  if (with_indices) {
    ASSERT_TRUE(machine.BuildIndex("R", wis::kUnique1, true).ok());
    ASSERT_TRUE(machine.BuildIndex("R", wis::kUnique2, false).ok());
  }

  const int attrs[] = {wis::kUnique1, wis::kUnique2, wis::kTen,
                       wis::kOnePercent};
  for (int trial = 0; trial < 12; ++trial) {
    const int attr = attrs[rng.Uniform(4)];
    // Ranges sometimes in-domain, sometimes straddling or outside it.
    const int32_t lo = static_cast<int32_t>(rng.UniformRange(-50, n));
    const int32_t hi =
        lo + static_cast<int32_t>(rng.Uniform(n / 2 + 10));
    SelectQuery query;
    query.relation = "R";
    query.predicate = rng.Uniform(4) == 0 ? Predicate::Eq(attr, lo)
                                          : Predicate::Range(attr, lo, hi);
    query.store_result = false;
    const auto result = machine.RunSelect(query);
    ASSERT_TRUE(result.ok());
    const int32_t real_hi = query.predicate.is_eq() ? lo : hi;
    EXPECT_EQ(ValuesOf(result->returned, wis::WisconsinSchema(), attr),
              ReferenceSelect(tuples, wis::WisconsinSchema(), attr, lo,
                              real_hi, attr))
        << "seed=" << seed << " trial=" << trial << " attr=" << attr
        << " [" << lo << "," << real_hi << "]";
  }
}

TEST_P(QueryFuzz, RandomJoinsMatchOracle) {
  const uint64_t seed = GetParam();
  Rng rng(seed ^ 0x1234);
  GammaConfig config;
  config.num_disk_nodes = 1 + static_cast<int>(rng.Uniform(6));
  config.num_diskless_nodes = 1 + static_cast<int>(rng.Uniform(6));
  // Sometimes starve the hash tables to exercise overflow rounds.
  config.join_memory_total = rng.Uniform(2) == 0 ? (32 << 10) : (8 << 20);
  GammaMachine machine(config);

  const uint32_t n_outer = 400 + static_cast<uint32_t>(rng.Uniform(1600));
  const uint32_t n_inner = 100 + static_cast<uint32_t>(rng.Uniform(800));
  const auto outer = wis::GenerateWisconsin(n_outer, seed * 5 + 2);
  const auto inner = wis::GenerateWisconsin(n_inner, seed * 5 + 3);
  ASSERT_TRUE(machine
                  .CreateRelation("O", wis::WisconsinSchema(),
                                  catalog::PartitionSpec::Hashed(
                                      wis::kUnique1))
                  .ok());
  ASSERT_TRUE(machine.LoadTuples("O", outer).ok());
  ASSERT_TRUE(machine
                  .CreateRelation("I", wis::WisconsinSchema(),
                                  catalog::PartitionSpec::Hashed(
                                      wis::kUnique1))
                  .ok());
  ASSERT_TRUE(machine.LoadTuples("I", inner).ok());

  const int join_attrs[] = {wis::kUnique1, wis::kUnique2, wis::kTen};
  const JoinMode modes[] = {JoinMode::kLocal, JoinMode::kRemote,
                            JoinMode::kAllnodes};
  for (int trial = 0; trial < 4; ++trial) {
    const int attr = join_attrs[rng.Uniform(3)];
    JoinQuery query;
    query.outer = "O";
    query.inner = "I";
    query.outer_attr = attr;
    query.inner_attr = attr;
    query.mode = modes[rng.Uniform(3)];
    const gamma::JoinAlgorithm algorithms[] = {
        gamma::JoinAlgorithm::kSimpleHash, gamma::JoinAlgorithm::kHybridHash,
        gamma::JoinAlgorithm::kSortMerge};
    query.algorithm = algorithms[rng.Uniform(3)];
    query.use_bit_filter = rng.Uniform(2) == 0;
    const auto result = machine.RunJoin(query);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->result_tuples,
              gammadb::testing::ReferenceJoinCount(
                  inner, wis::WisconsinSchema(), attr, outer,
                  wis::WisconsinSchema(), attr))
        << "seed=" << seed << " trial=" << trial << " attr=" << attr
        << " algorithm=" << static_cast<int>(query.algorithm);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueryFuzz,
                         ::testing::Range<uint64_t>(1, 11));

}  // namespace
}  // namespace gammadb::gamma
