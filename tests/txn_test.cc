// Multi-user transaction subsystem tests: the multi-granularity lock
// manager's compatibility/upgrade/FIFO rules, the TxnManager's deadlock
// detection and youngest-victim policy, the machine's external-transaction
// API (fail-fast conflicts, commit visibility), and the workload scheduler's
// 2PL serializability — a deadlock-inducing concurrent update mix must
// produce exactly the database state of its commit-order serial schedule,
// byte for byte, at any host-pool width.

#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "catalog/partition.h"
#include "gamma/machine.h"
#include "sim/host_pool.h"
#include "sim/workload.h"
#include "test_util.h"
#include "txn/lock_manager.h"
#include "txn/txn_manager.h"

namespace gammadb {
namespace {

using txn::LockId;
using txn::LockManager;
using txn::LockMode;
using txn::TxnManager;

constexpr LockMode kAllModes[] = {LockMode::kIS, LockMode::kIX, LockMode::kS,
                                  LockMode::kSIX, LockMode::kX};

TEST(LockModeTest, CompatibilityMatrix) {
  // Gray's multi-granularity table, row = held, column = requested.
  const std::map<LockMode, std::vector<LockMode>> compatible = {
      {LockMode::kIS,
       {LockMode::kIS, LockMode::kIX, LockMode::kS, LockMode::kSIX}},
      {LockMode::kIX, {LockMode::kIS, LockMode::kIX}},
      {LockMode::kS, {LockMode::kIS, LockMode::kS}},
      {LockMode::kSIX, {LockMode::kIS}},
      {LockMode::kX, {}},
  };
  for (const LockMode held : kAllModes) {
    for (const LockMode req : kAllModes) {
      const auto& row = compatible.at(held);
      const bool expect =
          std::find(row.begin(), row.end(), req) != row.end();
      EXPECT_EQ(Compatible(held, req), expect)
          << ModeName(held) << " vs " << ModeName(req);
      // The relation is symmetric.
      EXPECT_EQ(Compatible(held, req), Compatible(req, held));
    }
  }
}

TEST(LockModeTest, SupremumLattice) {
  for (const LockMode m : kAllModes) {
    EXPECT_EQ(Supremum(m, m), m);
    EXPECT_EQ(Supremum(m, LockMode::kX), LockMode::kX);
    // Commutative, and the result is at least as strong as both inputs:
    // anything incompatible with an input stays incompatible with the sup.
    for (const LockMode n : kAllModes) {
      EXPECT_EQ(Supremum(m, n), Supremum(n, m));
      for (const LockMode other : kAllModes) {
        if (!Compatible(m, other)) {
          EXPECT_FALSE(Compatible(Supremum(m, n), other));
        }
      }
    }
  }
  EXPECT_EQ(Supremum(LockMode::kS, LockMode::kIX), LockMode::kSIX);
  EXPECT_EQ(Supremum(LockMode::kIS, LockMode::kIX), LockMode::kIX);
  EXPECT_EQ(Supremum(LockMode::kIS, LockMode::kS), LockMode::kS);
  EXPECT_EQ(Supremum(LockMode::kSIX, LockMode::kIX), LockMode::kSIX);
  EXPECT_EQ(Supremum(LockMode::kSIX, LockMode::kS), LockMode::kSIX);
}

TEST(LockManagerTest, FifoWaitAndPromotion) {
  LockManager lm;
  const LockId id = LockId::Relation(1);
  EXPECT_EQ(lm.Acquire(1, id, LockMode::kS), LockManager::Outcome::kGranted);
  EXPECT_EQ(lm.Acquire(2, id, LockMode::kX), LockManager::Outcome::kWait);
  // FIFO: a compatible S must still queue behind the waiting X.
  EXPECT_EQ(lm.Acquire(3, id, LockMode::kS), LockManager::Outcome::kWait);
  EXPECT_EQ(lm.Blockers(2), (std::vector<uint64_t>{1}));
  // txn 3's S is compatible with the granted group; it is stuck purely
  // behind the queued X.
  EXPECT_EQ(lm.Blockers(3), (std::vector<uint64_t>{2}));

  std::vector<LockManager::Grant> grants;
  lm.Release(1, &grants);
  ASSERT_EQ(grants.size(), 1u);
  EXPECT_EQ(grants[0].txn, 2u);
  EXPECT_TRUE(lm.HoldsAtLeast(2, id, LockMode::kX));
  EXPECT_TRUE(lm.IsWaiting(3));

  grants.clear();
  lm.Release(2, &grants);
  ASSERT_EQ(grants.size(), 1u);
  EXPECT_EQ(grants[0].txn, 3u);
  EXPECT_TRUE(lm.HoldsAtLeast(3, id, LockMode::kS));
}

TEST(LockManagerTest, ReacquisitionAndInPlaceUpgrade) {
  LockManager lm;
  const LockId id = LockId::Fragment(0, 2);
  EXPECT_EQ(lm.Acquire(7, id, LockMode::kS), LockManager::Outcome::kGranted);
  // Re-acquiring at or below the held mode changes nothing.
  EXPECT_EQ(lm.Acquire(7, id, LockMode::kIS), LockManager::Outcome::kGranted);
  EXPECT_EQ(lm.held_count(7), 1u);
  // Sole holder: the S -> X upgrade happens in place.
  EXPECT_EQ(lm.Acquire(7, id, LockMode::kX), LockManager::Outcome::kGranted);
  EXPECT_TRUE(lm.HoldsAtLeast(7, id, LockMode::kX));
  EXPECT_EQ(lm.held_count(7), 1u);
  // S + IX = SIX through the upgrade path too.
  const LockId rel = LockId::Relation(3);
  EXPECT_EQ(lm.Acquire(8, rel, LockMode::kS), LockManager::Outcome::kGranted);
  EXPECT_EQ(lm.Acquire(8, rel, LockMode::kIX), LockManager::Outcome::kGranted);
  EXPECT_TRUE(lm.HoldsAtLeast(8, rel, LockMode::kSIX));
}

TEST(LockManagerTest, UpgradeJumpsQueueFront) {
  LockManager lm;
  const LockId id = LockId::Relation(9);
  EXPECT_EQ(lm.Acquire(1, id, LockMode::kS), LockManager::Outcome::kGranted);
  EXPECT_EQ(lm.Acquire(2, id, LockMode::kS), LockManager::Outcome::kGranted);
  // txn 3's fresh X request queues first; txn 1's upgrade still goes ahead
  // of it (otherwise upgrades would deadlock against fresh waiters).
  EXPECT_EQ(lm.Acquire(3, id, LockMode::kX), LockManager::Outcome::kWait);
  EXPECT_EQ(lm.Acquire(1, id, LockMode::kX), LockManager::Outcome::kWait);
  EXPECT_EQ(lm.upgrades(), 1u);

  std::vector<LockManager::Grant> grants;
  lm.Release(2, &grants);
  ASSERT_EQ(grants.size(), 1u);
  EXPECT_EQ(grants[0].txn, 1u);
  EXPECT_TRUE(lm.HoldsAtLeast(1, id, LockMode::kX));
  EXPECT_TRUE(lm.IsWaiting(3));

  grants.clear();
  lm.Release(1, &grants);
  ASSERT_EQ(grants.size(), 1u);
  EXPECT_EQ(grants[0].txn, 3u);
}

TEST(TxnManagerTest, DeadlockAbortsYoungestRequester) {
  TxnManager tm(4, 0);
  const uint64_t t1 = tm.Begin();
  const uint64_t t2 = tm.Begin();
  const LockId f1 = LockId::Fragment(0, 1);
  const LockId f2 = LockId::Fragment(0, 2);
  using Outcome = TxnManager::AcquireResult::Outcome;

  EXPECT_EQ(tm.Acquire(t1, f1, LockMode::kX).outcome, Outcome::kGranted);
  EXPECT_EQ(tm.Acquire(t2, f2, LockMode::kX).outcome, Outcome::kGranted);
  EXPECT_EQ(tm.Acquire(t1, f2, LockMode::kX).outcome, Outcome::kBlocked);
  EXPECT_TRUE(tm.IsWaiting(t1));

  // t2's request closes the cycle; t2 is the youngest member and also the
  // requester, so it aborts itself and its release unblocks t1.
  const TxnManager::AcquireResult res = tm.Acquire(t2, f1, LockMode::kX);
  EXPECT_EQ(res.outcome, Outcome::kAbortedSelf);
  EXPECT_EQ(res.aborted_victims, (std::vector<uint64_t>{t2}));
  ASSERT_EQ(res.grants.size(), 1u);
  EXPECT_EQ(res.grants[0].txn, t1);
  EXPECT_FALSE(tm.IsActive(t2));
  EXPECT_FALSE(tm.IsWaiting(t1));
  EXPECT_TRUE(tm.table(2).HoldsAtLeast(t1, f2, LockMode::kX));
  EXPECT_EQ(tm.totals().deadlocks, 1u);
  EXPECT_EQ(tm.totals().aborts, 1u);
  tm.Commit(t1);
}

TEST(TxnManagerTest, DeadlockVictimIsOtherWaiter) {
  TxnManager tm(4, 0);
  const uint64_t t1 = tm.Begin();  // older: survives
  const uint64_t t2 = tm.Begin();
  const LockId f1 = LockId::Fragment(0, 1);
  const LockId f2 = LockId::Fragment(0, 2);
  using Outcome = TxnManager::AcquireResult::Outcome;

  EXPECT_EQ(tm.Acquire(t2, f1, LockMode::kX).outcome, Outcome::kGranted);
  EXPECT_EQ(tm.Acquire(t1, f2, LockMode::kX).outcome, Outcome::kGranted);
  EXPECT_EQ(tm.Acquire(t2, f2, LockMode::kX).outcome, Outcome::kBlocked);

  // The older t1 closes the cycle: the younger, waiting t2 is sacrificed and
  // its released f1 goes straight to t1 — granted, not blocked.
  const TxnManager::AcquireResult res = tm.Acquire(t1, f1, LockMode::kX);
  EXPECT_EQ(res.outcome, Outcome::kGranted);
  EXPECT_EQ(res.aborted_victims, (std::vector<uint64_t>{t2}));
  // The requester's own grant is the return value, never a wakeup.
  EXPECT_TRUE(res.grants.empty());
  EXPECT_FALSE(tm.IsActive(t2));
  EXPECT_TRUE(tm.table(1).HoldsAtLeast(t1, f1, LockMode::kX));
  tm.Commit(t1);
}

TEST(TxnManagerTest, IntentionLocksRouteToTables) {
  TxnManager tm(5, 4);
  EXPECT_EQ(tm.TableFor(LockId::Relation(3)), 4);
  EXPECT_EQ(tm.TableFor(LockId::Fragment(3, 2)), 2);
  EXPECT_EQ(tm.TableFor(LockId::Page(3, 1, 77)), 1);
  // The registry hands out stable small ids.
  const uint32_t a = tm.RelationId("A");
  EXPECT_EQ(tm.RelationId("B"), a + 1);
  EXPECT_EQ(tm.RelationId("A"), a);

  // IS on the relation admits concurrent IX; S on the relation does not.
  const uint64_t r1 = tm.Begin();
  const uint64_t r2 = tm.Begin();
  using Outcome = TxnManager::AcquireResult::Outcome;
  EXPECT_EQ(tm.Acquire(r1, LockId::Relation(a), LockMode::kIS).outcome,
            Outcome::kGranted);
  EXPECT_EQ(tm.Acquire(r2, LockId::Relation(a), LockMode::kIX).outcome,
            Outcome::kGranted);
  const uint64_t r3 = tm.Begin();
  EXPECT_EQ(tm.Acquire(r3, LockId::Relation(a), LockMode::kS).outcome,
            Outcome::kBlocked);
  tm.Abort(r3);
  tm.Commit(r1);
  tm.Commit(r2);
}

gamma::GammaConfig SmallConfig() {
  gamma::GammaConfig config;
  config.num_disk_nodes = 4;
  config.num_diskless_nodes = 0;
  return config;
}

void LoadMini(gamma::GammaMachine& machine, const std::string& name,
              uint32_t n, uint64_t seed) {
  GAMMA_CHECK(machine
                  .CreateRelation(name, testing::MiniSchema(),
                                  catalog::PartitionSpec::Hashed(0))
                  .ok());
  GAMMA_CHECK(machine.LoadTuples(name, testing::MiniRelation(n, seed)).ok());
}

TEST(MachineTxnTest, ExternalTxnCommitAndLockMetrics) {
  gamma::GammaMachine machine(SmallConfig());
  LoadMini(machine, "R", 32, 11);

  const uint64_t t = machine.BeginTxn();
  gamma::AppendQuery append;
  append.relation = "R";
  append.tuple = testing::MiniTuple(100, 7);
  const auto appended = machine.RunAppend(append, t);
  ASSERT_TRUE(appended.ok()) << appended.status().ToString();
  // IX relation, IX fragment, X page — surfaced through QueryResult.
  EXPECT_GE(appended->metrics.locks_acquired, 3u);
  EXPECT_EQ(appended->metrics.lock_waits, 0u);
  EXPECT_EQ(appended->metrics.deadlocks, 0u);
  EXPECT_TRUE(machine.txns().IsActive(t));

  // Strict 2PL on real data: the write is in place, the locks outlive the
  // statement until CommitTxn.
  EXPECT_EQ((*machine.ReadRelation("R")).size(), 33u);
  machine.CommitTxn(t);
  EXPECT_FALSE(machine.txns().IsActive(t));

  gamma::DeleteQuery del;
  del.relation = "R";
  del.key_attr = 0;
  del.key = 100;
  const auto deleted = machine.RunDelete(del);  // auto-commit
  ASSERT_TRUE(deleted.ok());
  EXPECT_EQ(deleted->result_tuples, 1u);
  EXPECT_EQ((*machine.ReadRelation("R")).size(), 32u);
}

TEST(MachineTxnTest, FailFastConflictAbortsSecondTxn) {
  gamma::GammaMachine machine(SmallConfig());
  LoadMini(machine, "R", 32, 13);

  // Two keys on the same fragment: their tuples share page-level locks.
  auto meta = machine.catalog().Get("R");
  ASSERT_TRUE(meta.ok());
  catalog::Partitioner partitioner(&(*meta)->partitioning, &(*meta)->schema,
                                   machine.config().num_disk_nodes);
  int32_t key_a = -1, key_b = -1;
  for (int32_t k = 0; k < 32 && key_b < 0; ++k) {
    if (key_a < 0) {
      key_a = k;
    } else if (partitioner.NodeForKey(k) == partitioner.NodeForKey(key_a)) {
      key_b = k;
    }
  }
  ASSERT_GE(key_b, 0);

  gamma::DeleteQuery del_a;
  del_a.relation = "R";
  del_a.key_attr = 0;
  del_a.key = key_a;
  const uint64_t t1 = machine.BeginTxn();
  ASSERT_TRUE(machine.RunDelete(del_a, t1).ok());

  // The real-execution path does not queue: a conflicting request fails the
  // statement and aborts its transaction (blocking belongs to the simulated
  // workload scheduler).
  gamma::DeleteQuery del_b = del_a;
  del_b.key = key_b;
  const uint64_t t2 = machine.BeginTxn();
  const auto blocked = machine.RunDelete(del_b, t2);
  EXPECT_FALSE(blocked.ok());
  EXPECT_FALSE(machine.txns().IsActive(t2));
  EXPECT_TRUE(machine.txns().IsActive(t1));

  // t2 failed before touching the page: after t1 commits, key_b is intact
  // and deletable.
  machine.CommitTxn(t1);
  const auto retry = machine.RunDelete(del_b);
  ASSERT_TRUE(retry.ok());
  EXPECT_EQ(retry->result_tuples, 1u);
  EXPECT_EQ((*machine.ReadRelation("R")).size(), 30u);
}

TEST(MachineTxnTest, UpdateUnderUnknownTxnFails) {
  gamma::GammaMachine machine(SmallConfig());
  LoadMini(machine, "R", 8, 17);
  gamma::AppendQuery append;
  append.relation = "R";
  append.tuple = testing::MiniTuple(50, 1);
  EXPECT_FALSE(machine.RunAppend(append, /*txn=*/999).ok());
  EXPECT_EQ((*machine.ReadRelation("R")).size(), 8u);
}

// ---------------------------------------------------------------------------
// Workload-level 2PL serializability.

gamma::ModifyQuery ModifyVal(const std::string& rel, int32_t from,
                             int32_t to) {
  gamma::ModifyQuery q;
  q.relation = rel;
  q.locate_attr = 1;  // val: non-partitioning, so the footprint is X on
  q.locate_key = from;  // every fragment — exactly what makes opposite-order
  q.target_attr = 1;    // scripts deadlock.
  q.new_value = to;
  return q;
}

struct MixRun {
  sim::WorkloadReport report;
  std::vector<std::vector<uint8_t>> r;
  std::vector<std::vector<uint8_t>> s;
};

/// Two clients running two-statement update transactions that touch R and S
/// in opposite orders — the canonical deadlock — for `loops` passes each.
/// Returns the concurrent run's report and final relation contents.
MixRun RunDeadlockMix(int host_threads) {
  auto& pool = sim::HostPool::Instance();
  const int prev = pool.num_threads();
  pool.set_num_threads(host_threads);

  gamma::GammaMachine machine(SmallConfig());
  LoadMini(machine, "R", 16, 1);
  LoadMini(machine, "S", 16, 2);

  sim::TxnSpec ab;
  ab.label = "ab";
  ab.statements = {ModifyVal("R", 2, 100), ModifyVal("S", 2, 100)};
  ab.execute_real = true;
  sim::TxnSpec ba;
  ba.label = "ba";
  ba.statements = {ModifyVal("S", 100, 200), ModifyVal("R", 100, 200)};
  ba.execute_real = true;

  sim::WorkloadOptions options;
  options.seed = 42;
  sim::WorkloadDriver driver(&machine, options);
  sim::ClientSpec ca;
  ca.script = {ab};
  ca.loops = 2;
  driver.AddClient(ca);
  sim::ClientSpec cb;
  cb.script = {ba};
  cb.loops = 2;
  driver.AddClient(cb);

  MixRun out;
  out.report = driver.Run();
  out.r = *machine.ReadRelation("R");
  out.s = *machine.ReadRelation("S");
  pool.set_num_threads(prev);
  return out;
}

TEST(WorkloadTxnTest, DeadlockMixCommitsSerializably) {
  const MixRun run = RunDeadlockMix(1);
  // Opposite-order X footprints must have deadlocked at least once, the
  // victim retried, and everyone eventually committed.
  EXPECT_GE(run.report.deadlocks, 1u);
  EXPECT_GE(run.report.aborted_retries, 1u);
  EXPECT_EQ(run.report.committed, 4u);
  ASSERT_EQ(run.report.commit_log.size(), 4u);
  EXPECT_GT(run.report.lock_wait_sec, 0.0);

  // Replay the commit log serially on a fresh machine: strict 2PL with
  // execute-at-commit means the concurrent run's final state is exactly the
  // serial schedule's, byte for byte.
  gamma::GammaMachine serial(SmallConfig());
  LoadMini(serial, "R", 16, 1);
  LoadMini(serial, "S", 16, 2);
  const std::map<std::string, std::vector<gamma::ModifyQuery>> scripts = {
      {"ab", {ModifyVal("R", 2, 100), ModifyVal("S", 2, 100)}},
      {"ba", {ModifyVal("S", 100, 200), ModifyVal("R", 100, 200)}},
  };
  for (const sim::CommitRecord& rec : run.report.commit_log) {
    for (const gamma::ModifyQuery& q : scripts.at(rec.label)) {
      ASSERT_TRUE(serial.RunModify(q).ok());
    }
  }
  EXPECT_EQ(run.r, *serial.ReadRelation("R"));
  EXPECT_EQ(run.s, *serial.ReadRelation("S"));
}

TEST(WorkloadTxnTest, DeadlockMixIdenticalAcrossThreadCounts) {
  const MixRun one = RunDeadlockMix(1);
  const MixRun four = RunDeadlockMix(4);
  // The event schedule never sees the host-pool width: bit-identical
  // simulated times, identical conflict history, identical bytes.
  EXPECT_EQ(one.report.end_sec, four.report.end_sec);
  EXPECT_EQ(one.report.committed, four.report.committed);
  EXPECT_EQ(one.report.deadlocks, four.report.deadlocks);
  EXPECT_EQ(one.report.aborted_retries, four.report.aborted_retries);
  EXPECT_EQ(one.report.lock_acquisitions, four.report.lock_acquisitions);
  EXPECT_EQ(one.report.lock_waits, four.report.lock_waits);
  EXPECT_EQ(one.report.lock_wait_sec, four.report.lock_wait_sec);
  ASSERT_EQ(one.report.commit_log.size(), four.report.commit_log.size());
  for (size_t i = 0; i < one.report.commit_log.size(); ++i) {
    EXPECT_EQ(one.report.commit_log[i].client,
              four.report.commit_log[i].client);
    EXPECT_EQ(one.report.commit_log[i].label,
              four.report.commit_log[i].label);
  }
  EXPECT_EQ(one.r, four.r);
  EXPECT_EQ(one.s, four.s);
}

}  // namespace
}  // namespace gammadb
