// Tests for the optimizer's catalog statistics: bulk-load collection,
// incremental maintenance by append / delete / modify, rebuild after a
// failover, and result-relation cardinality from stored query results.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "gamma/machine.h"
#include "opt/statistics.h"
#include "test_util.h"
#include "wisconsin/wisconsin.h"

namespace gammadb {
namespace {

namespace wis = gammadb::wisconsin;
using exec::Predicate;
using opt::RelationStats;

gamma::GammaConfig SmallConfig() {
  gamma::GammaConfig config;
  config.num_disk_nodes = 4;
  config.num_diskless_nodes = 4;
  return config;
}

class OptimizerStatsTest : public ::testing::Test {
 protected:
  OptimizerStatsTest() : machine_(SmallConfig()) {
    EXPECT_TRUE(machine_
                    .CreateRelation("A", wis::WisconsinSchema(),
                                    catalog::PartitionSpec::Hashed(
                                        wis::kUnique1))
                    .ok());
    EXPECT_TRUE(machine_.LoadTuples("A", wis::GenerateWisconsin(kN, 7)).ok());
  }

  const RelationStats& StatsOf(const std::string& rel) {
    const RelationStats* stats = machine_.stats().Find(rel);
    EXPECT_NE(stats, nullptr);
    return *stats;
  }

  static constexpr uint32_t kN = 2000;
  gamma::GammaMachine machine_;
};

TEST_F(OptimizerStatsTest, BulkLoadCollectsExactCardinalityAndBounds) {
  const RelationStats& stats = StatsOf("A");
  EXPECT_EQ(stats.cardinality, static_cast<double>(kN));
  EXPECT_TRUE(stats.hash_partitioned);
  EXPECT_EQ(stats.partition_attr, wis::kUnique1);

  // unique1/unique2 are permutations of 0..n-1: exact min/max.
  for (const int attr : {wis::kUnique1, wis::kUnique2}) {
    const opt::AttrStats* a = stats.Attr(attr);
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(a->min, 0);
    EXPECT_EQ(a->max, static_cast<int32_t>(kN) - 1);
    // Linear counting over a well-sized bitmap: within 10% of the truth.
    EXPECT_NEAR(a->DistinctEstimate(stats.cardinality), kN, kN * 0.10);
  }
}

TEST_F(OptimizerStatsTest, DistinctEstimateSeesLowCardinalityAttrs) {
  // "ten" has 10 distinct values regardless of relation size.
  const opt::AttrStats* ten = StatsOf("A").Attr(wis::kTen);
  ASSERT_NE(ten, nullptr);
  EXPECT_EQ(ten->min, 0);
  EXPECT_EQ(ten->max, 9);
  const double distinct = ten->DistinctEstimate(kN);
  EXPECT_GE(distinct, 8.0);
  EXPECT_LE(distinct, 13.0);
}

TEST_F(OptimizerStatsTest, IndexBuildIsVisibleToStatistics) {
  ASSERT_TRUE(machine_.BuildIndex("A", wis::kUnique1, true).ok());
  ASSERT_TRUE(machine_.BuildIndex("A", wis::kUnique2, false).ok());
  const RelationStats& stats = StatsOf("A");
  EXPECT_NE(stats.FindIndex(wis::kUnique1, true), nullptr);
  EXPECT_NE(stats.FindIndex(wis::kUnique2, false), nullptr);
  EXPECT_EQ(stats.FindIndex(wis::kUnique2, true), nullptr);
}

TEST_F(OptimizerStatsTest, AppendMaintainsCardinalityAndBounds) {
  catalog::TupleBuilder builder(&machine_.catalog().Get("A").value()->schema);
  builder.SetInt(wis::kUnique1, static_cast<int32_t>(kN) + 500);
  builder.SetInt(wis::kUnique2, -3);
  gamma::AppendQuery append;
  append.relation = "A";
  append.tuple.assign(builder.bytes().begin(), builder.bytes().end());
  ASSERT_TRUE(machine_.RunAppend(append).ok());

  const RelationStats& stats = StatsOf("A");
  EXPECT_EQ(stats.cardinality, static_cast<double>(kN) + 1);
  EXPECT_EQ(stats.Attr(wis::kUnique1)->max, static_cast<int32_t>(kN) + 500);
  EXPECT_EQ(stats.Attr(wis::kUnique2)->min, -3);
}

TEST_F(OptimizerStatsTest, DeleteDropsCardinality) {
  gamma::DeleteQuery del;
  del.relation = "A";
  del.key_attr = wis::kUnique1;
  del.key = 42;
  ASSERT_TRUE(machine_.RunDelete(del).ok());
  EXPECT_EQ(StatsOf("A").cardinality, static_cast<double>(kN) - 1);
}

TEST_F(OptimizerStatsTest, ModifyWidensTheTargetAttribute) {
  gamma::ModifyQuery modify;
  modify.relation = "A";
  modify.locate_attr = wis::kUnique1;
  modify.locate_key = 7;
  modify.target_attr = wis::kUnique2;
  modify.new_value = 1 << 20;
  ASSERT_TRUE(machine_.RunModify(modify).ok());
  EXPECT_EQ(StatsOf("A").Attr(wis::kUnique2)->max, 1 << 20);
  // Cardinality unchanged by an in-place modify.
  EXPECT_EQ(StatsOf("A").cardinality, static_cast<double>(kN));
}

TEST_F(OptimizerStatsTest, RecomputeTightensBoundsAfterDeletes) {
  // Delete the maximum-key tuples; incremental stats keep the loose max.
  for (int32_t key = static_cast<int32_t>(kN) - 1;
       key >= static_cast<int32_t>(kN) - 10; --key) {
    gamma::DeleteQuery del;
    del.relation = "A";
    del.key_attr = wis::kUnique1;
    del.key = key;
    ASSERT_TRUE(machine_.RunDelete(del).ok());
  }
  EXPECT_EQ(StatsOf("A").Attr(wis::kUnique1)->max,
            static_cast<int32_t>(kN) - 1);

  ASSERT_TRUE(machine_.RecomputeStatistics("A").ok());
  const RelationStats& stats = StatsOf("A");
  EXPECT_EQ(stats.cardinality, static_cast<double>(kN) - 10);
  EXPECT_EQ(stats.Attr(wis::kUnique1)->max, static_cast<int32_t>(kN) - 11);
  // Structural facts survive the rebuild.
  EXPECT_TRUE(stats.hash_partitioned);
  EXPECT_EQ(stats.partition_attr, wis::kUnique1);
}

TEST_F(OptimizerStatsTest, StoredResultsGetExactCardinality) {
  gamma::SelectQuery query;
  query.relation = "A";
  query.predicate = Predicate::Range(wis::kUnique1, 0, 99);
  query.result_name = "R";
  const auto result = machine_.RunSelect(query);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(StatsOf("R").cardinality, 100.0);
}

TEST(OptimizerStatsFailoverTest, RecomputeAfterFailoverMatchesSurvivors) {
  gamma::GammaConfig config;
  config.num_disk_nodes = 4;
  config.num_diskless_nodes = 0;
  config.chained_declustering = true;
  auto machine = std::make_unique<gamma::GammaMachine>(config);
  ASSERT_TRUE(machine
                  ->CreateRelation("A", wis::WisconsinSchema(),
                                   catalog::PartitionSpec::Hashed(
                                       wis::kUnique1))
                  .ok());
  ASSERT_TRUE(machine->LoadTuples("A", wis::GenerateWisconsin(1000, 3)).ok());

  // A node dies; reads fail over to the chained backup, so the relation's
  // contents are unchanged — a statistics rebuild over the serving copies
  // must reproduce the load-time numbers.
  machine->KillNode(1);
  ASSERT_TRUE(machine->RecomputeStatistics("A").ok());
  const opt::RelationStats* stats = machine->stats().Find("A");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->cardinality, 1000.0);
  EXPECT_EQ(stats->Attr(wis::kUnique1)->min, 0);
  EXPECT_EQ(stats->Attr(wis::kUnique1)->max, 999);
}

}  // namespace
}  // namespace gammadb
