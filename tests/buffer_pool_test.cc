// Unit tests for the simulated disk and the LRU buffer pool, including the
// cost accounting they produce.

#include <cstring>

#include <gtest/gtest.h>

#include "sim/cost_tracker.h"
#include "storage/buffer_pool.h"
#include "storage/disk.h"

namespace gammadb::storage {
namespace {

class BufferPoolTest : public ::testing::Test {
 protected:
  BufferPoolTest()
      : tracker_(sim::MachineParams::GammaDefaults(), 2),
        disk_(4096),
        pool_(&disk_, &charge_, 16 * 4096) {
    charge_.tracker = &tracker_;
    charge_.node = 0;
    tracker_.BeginPhase("test", sim::PhaseKind::kPipelined);
  }

  sim::CostTracker tracker_;
  ChargeContext charge_;
  SimulatedDisk disk_;
  BufferPool pool_;
};

TEST_F(BufferPoolTest, NewPageIsZeroed) {
  uint8_t* frame = nullptr;
  const uint32_t page_no = pool_.NewPage(&frame).value();
  ASSERT_NE(frame, nullptr);
  for (int i = 0; i < 4096; ++i) EXPECT_EQ(frame[i], 0);
  pool_.Unpin(page_no);
}

TEST_F(BufferPoolTest, WriteBackAndReload) {
  uint8_t* frame = nullptr;
  const uint32_t page_no = pool_.NewPage(&frame).value();
  std::memset(frame, 0x5A, 4096);
  pool_.MarkDirty(page_no, AccessIntent::kSequential);
  pool_.Unpin(page_no);
  pool_.FlushAll();
  pool_.Invalidate();

  frame = pool_.Pin(page_no, AccessIntent::kRandom).value();
  EXPECT_EQ(frame[0], 0x5A);
  EXPECT_EQ(frame[4095], 0x5A);
  pool_.Unpin(page_no);
}

TEST_F(BufferPoolTest, HitAvoidsDiskCharge) {
  uint8_t* frame = nullptr;
  const uint32_t page_no = pool_.NewPage(&frame).value();
  pool_.Unpin(page_no);
  pool_.FlushAll();
  pool_.Invalidate();

  pool_.Pin(page_no, AccessIntent::kRandom).value();
  pool_.Unpin(page_no);
  const uint64_t reads_after_miss = tracker_.current(0).pages_read;
  pool_.Pin(page_no, AccessIntent::kRandom).value();
  pool_.Unpin(page_no);
  EXPECT_EQ(tracker_.current(0).pages_read, reads_after_miss);
  EXPECT_GE(tracker_.current(0).buffer_hits, 1u);
}

TEST_F(BufferPoolTest, EvictsLeastRecentlyUsed) {
  // Fill past capacity; the earliest unpinned page must be evicted.
  std::vector<uint32_t> pages;
  for (int i = 0; i < 20; ++i) {
    uint8_t* frame = nullptr;
    const uint32_t page_no = pool_.NewPage(&frame).value();
    frame[0] = static_cast<uint8_t>(i);
    pool_.MarkDirty(page_no, AccessIntent::kSequential);
    pool_.Unpin(page_no);
    pages.push_back(page_no);
  }
  EXPECT_GT(pool_.evictions(), 0u);
  EXPECT_LE(pool_.frames_in_use(), pool_.capacity_frames());
  // Evicted dirty pages were written back; reloading sees the data.
  uint8_t* frame = pool_.Pin(pages[0], AccessIntent::kRandom).value();
  EXPECT_EQ(frame[0], 0);
  pool_.Unpin(frame != nullptr ? pages[0] : pages[0]);
}

TEST_F(BufferPoolTest, SequentialVersusRandomCharging) {
  uint8_t* frame = nullptr;
  const uint32_t a = pool_.NewPage(&frame).value();
  pool_.Unpin(a);
  const uint32_t b = pool_.NewPage(&frame).value();
  pool_.Unpin(b);
  pool_.FlushAll();
  pool_.Invalidate();

  const double disk_before_seq = tracker_.current(0).disk_sec;
  pool_.Pin(a, AccessIntent::kSequential).value();
  pool_.Unpin(a);
  const double seq_cost = tracker_.current(0).disk_sec - disk_before_seq;
  pool_.Pin(b, AccessIntent::kRandom).value();
  pool_.Unpin(b);
  const double random_cost =
      tracker_.current(0).disk_sec - disk_before_seq - seq_cost;
  // A random access (positioning ~13 ms) costs more than a sequential one
  // (missed-rotation overhead ~12 ms).
  EXPECT_GT(random_cost, seq_cost);
}

TEST_F(BufferPoolTest, CapacityInBytesScalesWithPageSize) {
  SimulatedDisk small_disk(2048);
  BufferPool small_pool(&small_disk, &charge_, 16 * 4096);
  EXPECT_EQ(small_pool.capacity_frames(), 2 * pool_.capacity_frames());
}

TEST(DiskTest, ReadWriteRoundTrip) {
  SimulatedDisk disk(1024);
  const uint32_t page_no = disk.Allocate().value();
  std::vector<uint8_t> out(1024, 0xCC);
  disk.Write(page_no, out.data());
  std::vector<uint8_t> in(1024, 0);
  disk.Read(page_no, in.data());
  EXPECT_EQ(in, out);
  EXPECT_EQ(disk.num_pages(), 1u);
}

TEST(DiskParamsTest, AccessTimesMatchPaperFacts) {
  // Paper §5.2.2: a 32 KB transfer takes ~13 ms, close to one random seek.
  sim::DiskParams disk;
  const double transfer_32k = 32768.0 / disk.transfer_bytes_per_sec;
  EXPECT_NEAR(transfer_32k, 0.013, 0.002);
  EXPECT_NEAR(disk.positioning_sec, transfer_32k, 0.002);
}

}  // namespace
}  // namespace gammadb::storage
