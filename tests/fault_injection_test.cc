// Tests for the fault-injection subsystem: checksums catch bit rot,
// transient I/O faults are retried at simulated cost, chained-declustered
// backups carry queries across a node death (with byte-identical answers),
// and losing both copies of a fragment yields a clean descriptive Status
// with the machine still usable.

#include <algorithm>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "gamma/machine.h"
#include "sim/fault_injector.h"
#include "storage/buffer_pool.h"
#include "storage/disk.h"
#include "test_util.h"
#include "wisconsin/wisconsin.h"

namespace gammadb {
namespace {

namespace wis = gammadb::wisconsin;
using exec::Predicate;
using storage::AccessIntent;
using storage::BufferPool;
using storage::ChargeContext;
using storage::SimulatedDisk;

std::vector<std::vector<uint8_t>> Sorted(
    std::vector<std::vector<uint8_t>> tuples) {
  std::sort(tuples.begin(), tuples.end());
  return tuples;
}

// --- Storage layer ---

TEST(ChecksumTest, BitRotSurfacesAsCorruption) {
  SimulatedDisk disk(256);
  ChargeContext charge;  // null tracker: uncharged
  BufferPool pool(&disk, &charge, 8 * 256);

  uint8_t* frame = nullptr;
  const uint32_t good = pool.NewPage(&frame).value();
  frame[0] = 42;
  pool.MarkDirty(good);
  pool.Unpin(good);
  const uint32_t bad = pool.NewPage(&frame).value();
  frame[0] = 43;
  pool.MarkDirty(bad);
  pool.Unpin(bad);
  ASSERT_TRUE(pool.FlushAll().ok());
  ASSERT_TRUE(pool.Invalidate().ok());

  disk.CorruptStoredPage(bad);
  EXPECT_NE(disk.StoredChecksum(bad),
            SimulatedDisk::ComputeChecksum(nullptr, 0));
  const auto pinned = pool.Pin(bad, AccessIntent::kRandom);
  ASSERT_FALSE(pinned.ok());
  EXPECT_TRUE(pinned.status().IsCorruption());

  // The failed pin installed nothing; other pages remain readable.
  const auto ok_pin = pool.Pin(good, AccessIntent::kRandom);
  ASSERT_TRUE(ok_pin.ok());
  EXPECT_EQ((*ok_pin)[0], 42);
  pool.Unpin(good);
}

TEST(TransientFaultTest, RetriesSucceedAndChargeSimulatedTime) {
  const uint32_t kPageSize = 256;
  const int kPages = 50;

  // Run the identical read workload against a clean disk and a flaky one.
  auto run = [&](sim::FaultInjector* faults) {
    sim::CostTracker tracker(sim::MachineParams::GammaDefaults(), 2);
    ChargeContext charge{&tracker, 0};
    SimulatedDisk disk(kPageSize, faults, /*node=*/0);
    BufferPool pool(&disk, &charge, 8 * kPageSize);
    tracker.BeginPhase("load", sim::PhaseKind::kSequential);
    std::vector<uint32_t> pages;
    for (int i = 0; i < kPages; ++i) {
      uint8_t* frame = nullptr;
      pages.push_back(pool.NewPage(&frame).value());
      frame[0] = static_cast<uint8_t>(i);
      pool.MarkDirty(pages.back());
      pool.Unpin(pages.back());
    }
    GAMMA_CHECK(pool.FlushAll().ok());
    GAMMA_CHECK(pool.Invalidate().ok());
    for (int i = 0; i < kPages; ++i) {
      const auto frame = pool.Pin(pages[static_cast<size_t>(i)],
                                  AccessIntent::kRandom);
      GAMMA_CHECK(frame.ok());  // transients always recover within budget
      GAMMA_CHECK((**frame) == static_cast<uint8_t>(i));
      pool.Unpin(pages[static_cast<size_t>(i)]);
    }
    tracker.EndPhase();
    struct Out {
      uint64_t retries;
      double disk_sec;
      double serial_sec;
    };
    const auto totals = tracker.Finish().Totals();
    return Out{pool.io_retries(), totals.disk_sec, totals.serial_sec};
  };

  const auto clean = run(nullptr);
  sim::FaultConfig config;
  config.transient_read_prob = 0.10;
  config.transient_write_prob = 0.05;
  sim::FaultInjector faults(config, 1);
  const auto flaky = run(&faults);

  EXPECT_EQ(clean.retries, 0u);
  EXPECT_GT(flaky.retries, 0u);
  EXPECT_GT(faults.stats().transient_read_faults, 0u);
  // Every retry re-ran the disk access and stalled for the backoff, so the
  // flaky run is strictly slower in simulated time.
  EXPECT_GT(flaky.disk_sec, clean.disk_sec);
  EXPECT_GE(flaky.serial_sec,
            clean.serial_sec +
                static_cast<double>(flaky.retries) *
                    BufferPool::kRetryBackoffSec);
}

// --- Machine layer ---

gamma::GammaConfig FaultableConfig() {
  gamma::GammaConfig config;
  config.num_disk_nodes = 4;
  config.num_diskless_nodes = 0;
  config.chained_declustering = true;
  return config;
}

std::unique_ptr<gamma::GammaMachine> MakeLoaded(gamma::GammaConfig config,
                                                uint32_t a_tuples,
                                                uint32_t b_tuples) {
  auto machine = std::make_unique<gamma::GammaMachine>(config);
  GAMMA_CHECK(machine
                  ->CreateRelation("A", wis::WisconsinSchema(),
                                   catalog::PartitionSpec::Hashed(
                                       wis::kUnique1))
                  .ok());
  GAMMA_CHECK(
      machine->LoadTuples("A", wis::GenerateWisconsin(a_tuples, 7)).ok());
  if (b_tuples > 0) {
    GAMMA_CHECK(machine
                    ->CreateRelation("B", wis::WisconsinSchema(),
                                     catalog::PartitionSpec::Hashed(
                                         wis::kUnique1))
                    .ok());
    GAMMA_CHECK(
        machine->LoadTuples("B", wis::GenerateWisconsin(b_tuples, 8)).ok());
  }
  return machine;
}

TEST(FaultMachineTest, TransientFaultsDegradeTimeNotAnswers) {
  auto clean = MakeLoaded(FaultableConfig(), 2000, 0);
  auto config = FaultableConfig();
  config.fault.transient_read_prob = 0.02;
  auto flaky = MakeLoaded(config, 2000, 0);

  gamma::SelectQuery query;
  query.relation = "A";
  query.predicate = Predicate::Range(wis::kUnique1, 0, 199);
  query.store_result = false;
  const auto clean_result = clean->RunSelect(query);
  const auto flaky_result = flaky->RunSelect(query);
  ASSERT_TRUE(clean_result.ok());
  ASSERT_TRUE(flaky_result.ok());
  EXPECT_EQ(flaky_result->result_tuples, 200u);
  EXPECT_EQ(Sorted(flaky_result->returned), Sorted(clean_result->returned));
  EXPECT_GT(flaky->faults().stats().transient_read_faults, 0u);
  EXPECT_GT(flaky_result->seconds(), clean_result->seconds());
  EXPECT_EQ(flaky_result->failover_retries, 0u);  // retried below the pool
}

TEST(FaultMachineTest, CorruptionIsSurfacedNotRetried) {
  auto config = FaultableConfig();
  config.fault.corrupt_read_prob = 0.9;
  auto machine = MakeLoaded(config, 500, 0);
  gamma::SelectQuery query;
  query.relation = "A";
  const auto result = machine->RunSelect(query);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCorruption());
}

TEST(FaultMachineTest, DroppedPacketsChargeRetransmission) {
  auto clean = MakeLoaded(FaultableConfig(), 1000, 500);
  auto config = FaultableConfig();
  config.fault.drop_packet_prob = 0.2;
  auto lossy = MakeLoaded(config, 1000, 500);

  gamma::JoinQuery join;
  join.outer = "A";
  join.inner = "B";
  join.outer_attr = wis::kUnique1;
  join.inner_attr = wis::kUnique1;
  join.mode = gamma::JoinMode::kLocal;
  const auto clean_result = clean->RunJoin(join);
  const auto lossy_result = lossy->RunJoin(join);
  ASSERT_TRUE(clean_result.ok());
  ASSERT_TRUE(lossy_result.ok());
  EXPECT_EQ(lossy_result->result_tuples, clean_result->result_tuples);
  EXPECT_EQ(Sorted(*lossy->ReadRelation(lossy_result->result_relation)),
            Sorted(*clean->ReadRelation(clean_result->result_relation)));
  EXPECT_GT(lossy->faults().stats().packets_dropped, 0u);
  EXPECT_GT(lossy_result->metrics.Totals().packets_retransmitted, 0u);
  EXPECT_GT(lossy_result->seconds(), clean_result->seconds());
}

TEST(FailoverTest, NodeDeathMidJoinFailsOverWithExactAnswer) {
  auto clean = MakeLoaded(FaultableConfig(), 2000, 1000);
  auto dying = MakeLoaded(FaultableConfig(), 2000, 1000);

  gamma::JoinQuery join;
  join.outer = "A";
  join.inner = "B";
  join.outer_attr = wis::kUnique1;
  join.inner_attr = wis::kUnique1;
  join.mode = gamma::JoinMode::kLocal;
  const auto expected = clean->RunJoin(join);
  ASSERT_TRUE(expected.ok());

  // Node 1 dies a few disk operations into the join: the first attempt is
  // aborted mid-flight and the retry reads node 1's fragments from their
  // chained backup on node 2.
  dying->KillNodeAfterOps(1, 10);
  const auto survived = dying->RunJoin(join);
  ASSERT_TRUE(survived.ok()) << survived.status().ToString();
  EXPECT_FALSE(dying->NodeAlive(1));
  EXPECT_EQ(survived->failover_retries, 1u);
  EXPECT_EQ(survived->result_tuples, expected->result_tuples);
  EXPECT_EQ(Sorted(*dying->ReadRelation(survived->result_relation)),
            Sorted(*clean->ReadRelation(expected->result_relation)));

  // Reads of the base relation keep working off the backup too.
  EXPECT_EQ(*dying->CountTuples("A"), 2000u);
  EXPECT_EQ(Sorted(*dying->ReadRelation("A")),
            Sorted(*clean->ReadRelation("A")));
}

TEST(FailoverTest, SelectFailsOverAfterImmediateDeath) {
  auto machine = MakeLoaded(FaultableConfig(), 1000, 0);
  machine->KillNode(2);
  gamma::SelectQuery query;
  query.relation = "A";
  query.predicate = Predicate::Range(wis::kUnique1, 0, 99);
  query.store_result = false;
  const auto result = machine->RunSelect(query);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Dead before the query started: the fragment routing already avoids the
  // corpse, so no mid-flight abort was needed.
  EXPECT_EQ(result->failover_retries, 0u);
  EXPECT_EQ(result->result_tuples, 100u);
}

TEST(FailoverTest, TwoAdjacentDeadNodesIsCleanlyUnavailable) {
  auto machine = MakeLoaded(FaultableConfig(), 1000, 0);
  machine->KillNode(1);
  machine->KillNode(2);  // fragment 1's primary AND its backup host

  gamma::SelectQuery query;
  query.relation = "A";
  const auto result = machine->RunSelect(query);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsUnavailable());
  EXPECT_NE(result.status().message().find("fragment"), std::string::npos);
  EXPECT_TRUE(machine->CountTuples("A").status().IsUnavailable());

  // The machine survives the refusal: repairing one of the pair restores
  // full service with complete answers.
  machine->ReviveNode(2);
  const auto recovered = machine->RunSelect(query);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->result_tuples, 1000u);
  EXPECT_EQ(*machine->CountTuples("A"), 1000u);
}

// --- Atomicity of failed loads and appends ---

TEST(AtomicityTest, FailedLoadLeavesNoPartialTuples) {
  auto config = FaultableConfig();
  config.num_disk_nodes = 2;
  auto machine = std::make_unique<gamma::GammaMachine>(config);
  ASSERT_TRUE(machine
                  ->CreateRelation("A", wis::WisconsinSchema(),
                                   catalog::PartitionSpec::Hashed(
                                       wis::kUnique1))
                  .ok());
  // Node 1 dies a few disk operations into the load; every tuple already
  // appended anywhere must be rolled back.
  machine->KillNodeAfterOps(1, 3);
  const Status failed =
      machine->LoadTuples("A", wis::GenerateWisconsin(200, 7));
  ASSERT_FALSE(failed.ok());
  EXPECT_TRUE(failed.IsUnavailable());

  machine->ReviveNode(1);
  EXPECT_EQ(*machine->CountTuples("A"), 0u);
  EXPECT_TRUE(machine->ReadRelation("A")->empty());
  // And the load can simply be re-run.
  ASSERT_TRUE(
      machine->LoadTuples("A", wis::GenerateWisconsin(200, 7)).ok());
  EXPECT_EQ(*machine->CountTuples("A"), 200u);
}

TEST(AtomicityTest, FailedAppendLeavesNoPartialTuples) {
  auto config = FaultableConfig();
  config.num_disk_nodes = 2;
  auto machine = std::make_unique<gamma::GammaMachine>(config);
  ASSERT_TRUE(machine
                  ->CreateRelation("A", wis::WisconsinSchema(),
                                   catalog::PartitionSpec::RoundRobin())
                  .ok());
  ASSERT_TRUE(
      machine->LoadTuples("A", wis::GenerateWisconsin(100, 7)).ok());

  // Round-robin: tuple 100 goes to node 0, which dies on its next disk
  // operation — after RunAppend's upfront liveness check passes.
  machine->KillNodeAfterOps(0, 0);
  catalog::TupleBuilder builder(&wis::WisconsinSchema());
  builder.SetInt(wis::kUnique1, 5000).SetInt(wis::kUnique2, 5000);
  gamma::AppendQuery append{"A",
                            {builder.bytes().begin(), builder.bytes().end()}};
  const auto failed = machine->RunAppend(append);
  ASSERT_FALSE(failed.ok());
  EXPECT_TRUE(failed.status().IsUnavailable());
  // Fragment 0 is served from its backup on node 1: nothing leaked in.
  EXPECT_EQ(*machine->CountTuples("A"), 100u);

  machine->ReviveNode(0);
  EXPECT_EQ(*machine->CountTuples("A"), 100u);
  const auto retried = machine->RunAppend(append);
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();
  EXPECT_EQ(*machine->CountTuples("A"), 101u);
}

}  // namespace
}  // namespace gammadb
