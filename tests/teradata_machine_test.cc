// Integration tests for the Teradata DBC/1012 baseline: correctness of its
// query paths plus the design behaviours the paper's analysis identifies
// (full index scans for range predicates, never-short-circuited result
// redistribution, costly recovery on inserts).

#include <gtest/gtest.h>

#include "teradata/machine.h"
#include "test_util.h"
#include "wisconsin/wisconsin.h"

namespace gammadb::teradata {
namespace {

using exec::Predicate;
using gammadb::testing::ReferenceJoinCount;
using gammadb::testing::ValuesOf;
namespace wis = gammadb::wisconsin;

TeradataConfig SmallConfig() {
  TeradataConfig config;
  config.num_amps = 5;
  return config;
}

class TeradataMachineTest : public ::testing::Test {
 protected:
  TeradataMachineTest() : machine_(SmallConfig()) {
    tuples_ = wis::GenerateWisconsin(2000, 7);
    EXPECT_TRUE(machine_
                    .CreateRelation("A", wis::WisconsinSchema(),
                                    wis::kUnique1)
                    .ok());
    EXPECT_TRUE(machine_.LoadTuples("A", tuples_).ok());
  }

  TeradataMachine machine_;
  std::vector<std::vector<uint8_t>> tuples_;
};

TEST_F(TeradataMachineTest, LoadsAllTuplesHashDeclustered) {
  EXPECT_EQ(*machine_.CountTuples("A"), 2000u);
}

TEST_F(TeradataMachineTest, RangeSelectionByScanCorrect) {
  TdSelectQuery query;
  query.relation = "A";
  query.predicate = Predicate::Range(wis::kUnique2, 100, 299);
  const auto result = machine_.RunSelect(query);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->result_tuples, 200u);
  const auto stored = *machine_.ReadRelation(result->result_relation);
  EXPECT_EQ(ValuesOf(stored, wis::WisconsinSchema(), wis::kUnique2),
            gammadb::testing::ReferenceSelect(tuples_, wis::WisconsinSchema(),
                                              wis::kUnique2, 100, 299,
                                              wis::kUnique2));
}

TEST_F(TeradataMachineTest, ExactMatchOnPrimaryKeyIsOneAccess) {
  TdSelectQuery query;
  query.relation = "A";
  query.predicate = Predicate::Eq(wis::kUnique1, 1234);
  query.store_result = false;
  const auto result = machine_.RunSelect(query);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->result_tuples, 1u);
  // Single hash access: one page read, no scan.
  EXPECT_LE(result->metrics.Totals().pages_read, 2u);
  // Fast path: well under the multi-AMP step overhead.
  EXPECT_LT(result->seconds(), SmallConfig().step_overhead_sec * 2);
}

TEST_F(TeradataMachineTest, DenseIndexScansWholeIndex) {
  ASSERT_TRUE(machine_.BuildSecondaryIndex("A", wis::kUnique2).ok());
  TdSelectQuery query;
  query.relation = "A";
  query.predicate = Predicate::Range(wis::kUnique2, 0, 19);  // 1%
  query.store_result = false;
  const auto with_index = machine_.RunSelect(query);
  ASSERT_TRUE(with_index.ok());
  EXPECT_EQ(with_index->result_tuples, 20u);

  query.allow_index = false;
  const auto without_index = machine_.RunSelect(query);
  ASSERT_TRUE(without_index.ok());
  EXPECT_EQ(without_index->result_tuples, 20u);

  // The §5.1 observation: because the whole (unordered) index is scanned,
  // the indexed plan is NOT much faster than the file scan — the same
  // number of comparisons happens either way.
  EXPECT_GT(with_index->seconds(), without_index->seconds() * 0.5);
  EXPECT_LT(with_index->seconds(), without_index->seconds() * 1.5);
}

TEST_F(TeradataMachineTest, ResultStoreNeverShortCircuits) {
  TdSelectQuery query;
  query.relation = "A";
  query.predicate = Predicate::Range(wis::kUnique1, 0, 199);
  const auto result = machine_.RunSelect(query);
  ASSERT_TRUE(result.ok());
  // §4: result tuples keep the same primary key, so they would stay on
  // their own AMP — yet every packet pays the network path.
  EXPECT_EQ(result->metrics.Totals().packets_short_circuited, 0u);
  EXPECT_GT(result->metrics.Totals().packets_sent, 0u);
}

TEST_F(TeradataMachineTest, InsertRecoveryCostDominatesSelectionWithStore) {
  TdSelectQuery stored;
  stored.relation = "A";
  stored.predicate = Predicate::Range(wis::kUnique1, 0, 199);  // 10%
  const auto with_store = machine_.RunSelect(stored);
  TdSelectQuery returned = stored;
  returned.store_result = false;
  const auto to_host = machine_.RunSelect(returned);
  ASSERT_TRUE(with_store.ok());
  ASSERT_TRUE(to_host.ok());
  // §4 / [DEWI87]: storing results through the logging insert path costs
  // several times more than returning them.
  EXPECT_GT(with_store->seconds(), to_host->seconds() * 2);
}

TEST_F(TeradataMachineTest, SortMergeJoinCorrect) {
  const auto bprime = wis::GenerateWisconsin(200, 8);
  ASSERT_TRUE(machine_
                  .CreateRelation("Bprime", wis::WisconsinSchema(),
                                  wis::kUnique1)
                  .ok());
  ASSERT_TRUE(machine_.LoadTuples("Bprime", bprime).ok());

  TdJoinQuery query;
  query.outer = "A";
  query.inner = "Bprime";
  query.outer_attr = wis::kUnique2;
  query.inner_attr = wis::kUnique2;
  const auto result = machine_.RunJoin(query);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->result_tuples,
            ReferenceJoinCount(bprime, wis::WisconsinSchema(), wis::kUnique2,
                               tuples_, wis::WisconsinSchema(),
                               wis::kUnique2));
}

TEST_F(TeradataMachineTest, KeyAttributeJoinSkipsRedistribution) {
  const auto bprime = wis::GenerateWisconsin(200, 8);
  ASSERT_TRUE(machine_
                  .CreateRelation("Bprime", wis::WisconsinSchema(),
                                  wis::kUnique1)
                  .ok());
  ASSERT_TRUE(machine_.LoadTuples("Bprime", bprime).ok());

  TdJoinQuery non_key;
  non_key.outer = "A";
  non_key.inner = "Bprime";
  non_key.outer_attr = wis::kUnique2;
  non_key.inner_attr = wis::kUnique2;
  non_key.store_result = false;
  const auto slow = machine_.RunJoin(non_key);

  TdJoinQuery on_key = non_key;
  on_key.outer_attr = wis::kUnique1;
  on_key.inner_attr = wis::kUnique1;
  const auto fast = machine_.RunJoin(on_key);
  ASSERT_TRUE(slow.ok());
  ASSERT_TRUE(fast.ok());
  EXPECT_EQ(fast->result_tuples, 200u);
  // §6.1: joining on the key means tuples already live at their join AMP;
  // the redistribution traffic short-circuits and the join runs faster.
  EXPECT_GT(slow->metrics.Totals().bytes_sent,
            fast->metrics.Totals().bytes_sent * 4);
  EXPECT_LT(fast->seconds(), slow->seconds());
}

TEST_F(TeradataMachineTest, AppendDeleteModifyRoundTrip) {
  ASSERT_TRUE(machine_.BuildSecondaryIndex("A", wis::kUnique2).ok());

  catalog::TupleBuilder builder(&wis::WisconsinSchema());
  builder.SetInt(wis::kUnique1, 9999).SetInt(wis::kUnique2, 9999);
  TdAppendQuery append;
  append.relation = "A";
  append.tuple.assign(builder.bytes().begin(), builder.bytes().end());
  ASSERT_TRUE(machine_.RunAppend(append).ok());
  EXPECT_EQ(*machine_.CountTuples("A"), 2001u);

  TdModifyQuery modify;
  modify.relation = "A";
  modify.locate_attr = wis::kUnique1;
  modify.locate_key = 9999;
  modify.target_attr = wis::kUnique2;
  modify.new_value = 8888;
  const auto modified = machine_.RunModify(modify);
  ASSERT_TRUE(modified.ok());
  EXPECT_EQ(modified->result_tuples, 1u);

  // Locate through the secondary index at its new value.
  TdSelectQuery select;
  select.relation = "A";
  select.predicate = Predicate::Eq(wis::kUnique2, 8888);
  select.store_result = false;
  EXPECT_EQ(machine_.RunSelect(select)->result_tuples, 1u);

  TdDeleteQuery del;
  del.relation = "A";
  del.key_attr = wis::kUnique1;
  del.key = 9999;
  const auto deleted = machine_.RunDelete(del);
  ASSERT_TRUE(deleted.ok());
  EXPECT_EQ(deleted->result_tuples, 1u);
  EXPECT_EQ(*machine_.CountTuples("A"), 2000u);
}

TEST_F(TeradataMachineTest, ModifyPrimaryKeyRelocates) {
  TdModifyQuery modify;
  modify.relation = "A";
  modify.locate_attr = wis::kUnique1;
  modify.locate_key = 55;
  modify.target_attr = wis::kUnique1;
  modify.new_value = 70001;
  const auto result = machine_.RunModify(modify);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->result_tuples, 1u);
  EXPECT_EQ(*machine_.CountTuples("A"), 2000u);

  TdSelectQuery select;
  select.relation = "A";
  select.predicate = Predicate::Eq(wis::kUnique1, 70001);
  select.store_result = false;
  EXPECT_EQ(machine_.RunSelect(select)->result_tuples, 1u);
  select.predicate = Predicate::Eq(wis::kUnique1, 55);
  EXPECT_EQ(machine_.RunSelect(select)->result_tuples, 0u);
}

}  // namespace
}  // namespace gammadb::teradata
