// Tests for the recovery server extension (§8 future work): log-record
// accounting, the cost it adds, and that answers never change.

#include <memory>

#include <gtest/gtest.h>

#include "gamma/machine.h"
#include "gamma/recovery_log.h"
#include "test_util.h"
#include "wisconsin/wisconsin.h"

namespace gammadb::gamma {
namespace {

namespace wis = gammadb::wisconsin;
using exec::Predicate;

TEST(RecoveryLogUnit, PacketAndPageAccounting) {
  sim::CostTracker tracker(sim::MachineParams::GammaDefaults(), 4);
  tracker.BeginPhase("p", sim::PhaseKind::kPipelined);
  RecoveryLog log(&tracker, /*recovery_node=*/3, /*page_size=*/4096);
  // 100 records of 208-byte images = 24 KB of log: expect ~11 packets and
  // ~6 log pages (5 full + 1 forced tail).
  for (int i = 0; i < 100; ++i) log.Append(0, 208);
  log.Commit(0);
  tracker.EndPhase();
  const auto metrics = tracker.Finish();
  EXPECT_EQ(log.stats().records, 100u);
  EXPECT_EQ(log.stats().bytes, 100u * (208 + RecoveryLog::kRecordHeaderBytes));
  EXPECT_GE(log.stats().log_pages_written, 5u);
  const auto totals = metrics.Totals();
  EXPECT_GE(totals.packets_sent, 11u);
  EXPECT_EQ(totals.pages_written, log.stats().log_pages_written);
  // All log pages were written at the recovery node, sequentially.
  EXPECT_EQ(totals.seq_page_ios, log.stats().log_pages_written);
  EXPECT_GT(metrics.phases[0].per_node[3].disk_sec, 0.0);
}

TEST(RecoveryLogUnit, NullTrackerIsUncharged) {
  RecoveryLog log(nullptr, 0, 4096);
  for (int i = 0; i < 10; ++i) log.Append(0, 100);
  log.Commit(0);
  EXPECT_EQ(log.stats().records, 10u);
}

class RecoveryLogMachine : public ::testing::Test {
 protected:
  static std::unique_ptr<GammaMachine> MakeMachine(bool logging) {
    GammaConfig config;
    config.num_disk_nodes = 4;
    config.num_diskless_nodes = 4;
    config.enable_logging = logging;
    auto machine = std::make_unique<GammaMachine>(config);
    const auto tuples = wis::GenerateWisconsin(2000, 9);
    GAMMA_CHECK(machine
                    ->CreateRelation("A", wis::WisconsinSchema(),
                                     catalog::PartitionSpec::Hashed(
                                         wis::kUnique1))
                    .ok());
    GAMMA_CHECK(machine->LoadTuples("A", tuples).ok());
    GAMMA_CHECK(machine->BuildIndex("A", wis::kUnique1, true).ok());
    return machine;
  }
};

TEST_F(RecoveryLogMachine, SelectionWithStoreCostsMoreAndAnswersMatch) {
  auto plain_ptr = MakeMachine(false);
  auto logged_ptr = MakeMachine(true);
  GammaMachine& plain = *plain_ptr;
  GammaMachine& logged = *logged_ptr;
  SelectQuery query;
  query.relation = "A";
  query.predicate = Predicate::Range(wis::kUnique1, 0, 199);  // 10%
  const auto without = plain.RunSelect(query);
  const auto with = logged.RunSelect(query);
  ASSERT_TRUE(without.ok());
  ASSERT_TRUE(with.ok());
  EXPECT_EQ(without->result_tuples, 200u);
  EXPECT_EQ(with->result_tuples, 200u);
  EXPECT_GT(with->seconds(), without->seconds());
}

TEST_F(RecoveryLogMachine, HostBoundSelectionUnaffected) {
  auto plain_ptr = MakeMachine(false);
  auto logged_ptr = MakeMachine(true);
  GammaMachine& plain = *plain_ptr;
  GammaMachine& logged = *logged_ptr;
  SelectQuery query;
  query.relation = "A";
  query.predicate = Predicate::Range(wis::kUnique1, 0, 199);
  query.store_result = false;  // nothing stored -> nothing logged
  const auto without = plain.RunSelect(query);
  const auto with = logged.RunSelect(query);
  EXPECT_NEAR(with->seconds(), without->seconds(), 1e-9);
}

TEST_F(RecoveryLogMachine, UpdatesPayLoggingOverhead) {
  auto plain_ptr = MakeMachine(false);
  auto logged_ptr = MakeMachine(true);
  GammaMachine& plain = *plain_ptr;
  GammaMachine& logged = *logged_ptr;
  catalog::TupleBuilder builder(&wis::WisconsinSchema());
  builder.SetInt(wis::kUnique1, 5000).SetInt(wis::kUnique2, 5000);
  AppendQuery append{"A", {builder.bytes().begin(), builder.bytes().end()}};
  const double without = plain.RunAppend(append)->seconds();
  const double with = logged.RunAppend(append)->seconds();
  EXPECT_GT(with, without + 0.01);  // log force + ack round trip
  EXPECT_EQ(*plain.CountTuples("A"), 2001u);
  EXPECT_EQ(*logged.CountTuples("A"), 2001u);

  ModifyQuery modify{"A", wis::kUnique1, 77, wis::kTen, 3};
  EXPECT_GT(logged.RunModify(modify)->seconds(),
            plain.RunModify(modify)->seconds());
}

TEST_F(RecoveryLogMachine, LogAccountingLandsInQueryMetrics) {
  auto plain_ptr = MakeMachine(false);
  auto logged_ptr = MakeMachine(true);
  catalog::TupleBuilder builder(&wis::WisconsinSchema());
  builder.SetInt(wis::kUnique1, 6000).SetInt(wis::kUnique2, 6000);
  AppendQuery append{"A", {builder.bytes().begin(), builder.bytes().end()}};

  const auto logged = logged_ptr->RunAppend(append);
  ASSERT_TRUE(logged.ok());
  EXPECT_EQ(logged->metrics.log_records, 1u);
  EXPECT_GE(logged->metrics.log_forced_flushes, 1u);  // commit forces the tail

  const auto plain = plain_ptr->RunAppend(append);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->metrics.log_records, 0u);
  EXPECT_EQ(plain->metrics.log_forced_flushes, 0u);

  // A stored selection logs one record per stored tuple.
  SelectQuery query;
  query.relation = "A";
  query.predicate = Predicate::Range(wis::kUnique1, 0, 99);
  const auto select = logged_ptr->RunSelect(query);
  ASSERT_TRUE(select.ok());
  EXPECT_EQ(select->metrics.log_records, select->result_tuples);
  EXPECT_GE(select->metrics.log_forced_flushes, 1u);
}

}  // namespace
}  // namespace gammadb::gamma
