#ifndef GAMMA_TESTS_TEST_UTIL_H_
#define GAMMA_TESTS_TEST_UTIL_H_

// Shared helpers for the test suite: a tiny schema, deterministic tuple
// builders, and reference (oracle) implementations of the paper's queries.

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "catalog/schema.h"
#include "common/rng.h"
#include "wisconsin/wisconsin.h"

namespace gammadb::testing {

/// Small three-attribute schema for focused unit tests: (id, val, payload).
inline const catalog::Schema& MiniSchema() {
  static const catalog::Schema* schema = new catalog::Schema({
      {"id", catalog::AttrType::kInt32, 4},
      {"val", catalog::AttrType::kInt32, 4},
      {"payload", catalog::AttrType::kChar, 16},
  });
  return *schema;
}

inline std::vector<uint8_t> MiniTuple(int32_t id, int32_t val) {
  catalog::TupleBuilder builder(&MiniSchema());
  builder.SetInt(0, id).SetInt(1, val).SetChar(2, "payload");
  return {builder.bytes().begin(), builder.bytes().end()};
}

/// n mini tuples with id = 0..n-1 in random order and val = id * 2.
inline std::vector<std::vector<uint8_t>> MiniRelation(uint32_t n,
                                                      uint64_t seed) {
  Rng rng(seed);
  std::vector<uint32_t> ids = rng.Permutation(n);
  std::vector<std::vector<uint8_t>> tuples;
  tuples.reserve(n);
  for (uint32_t id : ids) {
    tuples.push_back(MiniTuple(static_cast<int32_t>(id),
                               static_cast<int32_t>(id) * 2));
  }
  return tuples;
}

/// Oracle: tuples of `input` whose `attr` lies in [lo, hi], as a multiset of
/// attribute values (order-independent comparison).
inline std::multiset<int32_t> ReferenceSelect(
    const std::vector<std::vector<uint8_t>>& input,
    const catalog::Schema& schema, int attr, int32_t lo, int32_t hi,
    int result_attr) {
  std::multiset<int32_t> out;
  for (const auto& tuple : input) {
    const catalog::TupleView view(&schema, tuple);
    const int32_t key = view.GetInt(static_cast<size_t>(attr));
    if (key >= lo && key <= hi) {
      out.insert(view.GetInt(static_cast<size_t>(result_attr)));
    }
  }
  return out;
}

/// Oracle: equijoin match count of `left.attr_l == right.attr_r`.
inline uint64_t ReferenceJoinCount(
    const std::vector<std::vector<uint8_t>>& left,
    const catalog::Schema& left_schema, int attr_l,
    const std::vector<std::vector<uint8_t>>& right,
    const catalog::Schema& right_schema, int attr_r) {
  std::map<int32_t, uint64_t> left_counts;
  for (const auto& tuple : left) {
    left_counts[catalog::TupleView(&left_schema, tuple)
                    .GetInt(static_cast<size_t>(attr_l))] += 1;
  }
  uint64_t matches = 0;
  for (const auto& tuple : right) {
    const auto it = left_counts.find(
        catalog::TupleView(&right_schema, tuple)
            .GetInt(static_cast<size_t>(attr_r)));
    if (it != left_counts.end()) matches += it->second;
  }
  return matches;
}

/// Multiset of one attribute's values over a tuple set.
inline std::multiset<int32_t> ValuesOf(
    const std::vector<std::vector<uint8_t>>& tuples,
    const catalog::Schema& schema, int attr) {
  std::multiset<int32_t> out;
  for (const auto& tuple : tuples) {
    out.insert(catalog::TupleView(&schema, tuple)
                   .GetInt(static_cast<size_t>(attr)));
  }
  return out;
}

}  // namespace gammadb::testing

#endif  // GAMMA_TESTS_TEST_UTIL_H_
