// Unit and property tests for the B+-tree: bulk load, incremental inserts
// with splits, deletes, duplicates, range scans, and page-size effects.

#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "storage/btree.h"
#include "storage/storage_manager.h"

namespace gammadb::storage {
namespace {

Rid MakeRid(uint32_t i) {
  return Rid{i / 100, static_cast<uint16_t>(i % 100)};
}

class BTreeTest : public ::testing::Test {
 protected:
  BTreeTest() : sm_(4096, 256 * 1024) { index_id_ = sm_.CreateIndex(); }
  BTree& tree() { return sm_.index(index_id_); }

  StorageManager sm_;
  IndexId index_id_;
};

TEST_F(BTreeTest, EmptyTreeScansNothing) {
  tree().BulkLoad({});
  int seen = 0;
  tree().ScanFrom(INT32_MIN, [&](const BTree::Entry&) {
    ++seen;
    return true;
  });
  EXPECT_EQ(seen, 0);
}

TEST_F(BTreeTest, BulkLoadAndLookup) {
  std::vector<BTree::Entry> entries;
  for (int32_t key = 0; key < 10000; ++key) {
    entries.push_back({key, MakeRid(static_cast<uint32_t>(key))});
  }
  tree().BulkLoad(entries);
  EXPECT_EQ(tree().num_entries(), 10000u);
  EXPECT_GE(tree().height(), 2u);

  const auto rids = tree().RangeLookup(500, 509).value();
  ASSERT_EQ(rids.size(), 10u);
  EXPECT_EQ(rids[0], MakeRid(500));
  EXPECT_EQ(rids[9], MakeRid(509));
}

TEST_F(BTreeTest, RangeLookupBoundaries) {
  std::vector<BTree::Entry> entries;
  for (int32_t key = 0; key < 100; ++key) entries.push_back({key * 2, MakeRid(static_cast<uint32_t>(key))});
  tree().BulkLoad(entries);
  EXPECT_EQ(tree().RangeLookup(-10, -1).value().size(), 0u);
  EXPECT_EQ(tree().RangeLookup(200, 300).value().size(), 0u);
  EXPECT_EQ(tree().RangeLookup(0, 198).value().size(), 100u);
  EXPECT_EQ(tree().RangeLookup(1, 1).value().size(), 0u);  // odd keys absent
  EXPECT_EQ(tree().RangeLookup(2, 2).value().size(), 1u);
}

TEST_F(BTreeTest, IncrementalInsertWithSplits) {
  // Enough inserts to force several leaf and internal splits.
  Rng rng(11);
  const auto perm = rng.Permutation(20000);
  for (uint32_t i : perm) {
    tree().Insert(static_cast<int32_t>(i), MakeRid(i));
  }
  EXPECT_EQ(tree().num_entries(), 20000u);
  EXPECT_GE(tree().height(), 2u);

  // Full scan returns all keys in order.
  int32_t expected = 0;
  tree().ScanFrom(INT32_MIN, [&](const BTree::Entry& entry) {
    EXPECT_EQ(entry.key, expected);
    EXPECT_EQ(entry.rid, MakeRid(static_cast<uint32_t>(expected)));
    ++expected;
    return true;
  });
  EXPECT_EQ(expected, 20000);
}

TEST_F(BTreeTest, DuplicateKeysAllFound) {
  for (uint32_t i = 0; i < 3000; ++i) {
    tree().Insert(static_cast<int32_t>(i % 10), MakeRid(i));
  }
  const auto rids = tree().RangeLookup(3, 3).value();
  EXPECT_EQ(rids.size(), 300u);
  std::set<Rid> unique(rids.begin(), rids.end());
  EXPECT_EQ(unique.size(), 300u);
}

TEST_F(BTreeTest, DeleteExactEntry) {
  for (uint32_t i = 0; i < 1000; ++i) {
    tree().Insert(static_cast<int32_t>(i), MakeRid(i));
  }
  EXPECT_TRUE(tree().Delete(500, MakeRid(500)).value());
  EXPECT_FALSE(tree().Delete(500, MakeRid(500)).value());  // already gone
  EXPECT_FALSE(tree().Delete(500, MakeRid(501)).value());  // wrong rid
  EXPECT_EQ(tree().num_entries(), 999u);
  EXPECT_EQ(tree().RangeLookup(500, 500).value().size(), 0u);
  EXPECT_EQ(tree().RangeLookup(499, 501).value().size(), 2u);
}

TEST_F(BTreeTest, DeleteAmongDuplicates) {
  for (uint32_t i = 0; i < 100; ++i) tree().Insert(7, MakeRid(i));
  EXPECT_TRUE(tree().Delete(7, MakeRid(42)).value());
  const auto rids = tree().RangeLookup(7, 7).value();
  EXPECT_EQ(rids.size(), 99u);
  for (const Rid& rid : rids) EXPECT_FALSE(rid == MakeRid(42));
}

TEST_F(BTreeTest, ScanFromMidRangeWithEarlyStop) {
  for (uint32_t i = 0; i < 5000; ++i) {
    tree().Insert(static_cast<int32_t>(i), MakeRid(i));
  }
  std::vector<int32_t> keys;
  tree().ScanFrom(4990, [&](const BTree::Entry& entry) {
    keys.push_back(entry.key);
    return keys.size() < 5;
  });
  ASSERT_EQ(keys.size(), 5u);
  EXPECT_EQ(keys.front(), 4990);
  EXPECT_EQ(keys.back(), 4994);
}

TEST_F(BTreeTest, MixedBulkLoadThenInserts) {
  std::vector<BTree::Entry> entries;
  for (int32_t key = 0; key < 1000; ++key) {
    entries.push_back({key * 2, MakeRid(static_cast<uint32_t>(key))});
  }
  tree().BulkLoad(entries);
  for (int32_t key = 0; key < 1000; ++key) {
    tree().Insert(key * 2 + 1, MakeRid(static_cast<uint32_t>(key + 10000)));
  }
  EXPECT_EQ(tree().num_entries(), 2000u);
  int32_t expected = 0;
  tree().ScanFrom(INT32_MIN, [&](const BTree::Entry& entry) {
    EXPECT_EQ(entry.key, expected++);
    return true;
  });
  EXPECT_EQ(expected, 2000);
}

// Fanout must shrink as entries grow relative to page size: the mechanism
// behind the paper's page-size-vs-index-height trade (Figs 7-8).
TEST(BTreeFanoutTest, FanoutScalesWithPageSize) {
  StorageManager sm2k(2048, 256 * 1024);
  StorageManager sm32k(32768, 1024 * 1024);
  BTree& small = sm2k.index(sm2k.CreateIndex());
  BTree& large = sm32k.index(sm32k.CreateIndex());
  EXPECT_GT(large.leaf_capacity(), small.leaf_capacity() * 10);

  std::vector<BTree::Entry> entries;
  for (int32_t key = 0; key < 50000; ++key) {
    entries.push_back({key, MakeRid(static_cast<uint32_t>(key))});
  }
  small.BulkLoad(entries);
  large.BulkLoad(entries);
  EXPECT_GT(small.num_pages(), large.num_pages() * 8);
  EXPECT_GE(small.height(), large.height());
}

// Property: random workload against a std::multimap oracle, across page
// sizes (duplicates, interleaved inserts and deletes, range scans).
class BTreePropertyTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(BTreePropertyTest, MatchesMultimapOracle) {
  const uint32_t page_size = GetParam();
  StorageManager sm(page_size, 1024 * 1024);
  BTree& tree = sm.index(sm.CreateIndex());

  Rng rng(page_size * 31);
  std::multimap<int32_t, Rid> oracle;
  uint32_t next_rid = 0;
  for (int step = 0; step < 8000; ++step) {
    if (oracle.empty() || rng.Uniform(10) < 7) {
      const int32_t key = static_cast<int32_t>(rng.Uniform(500));
      const Rid rid = MakeRid(next_rid++);
      tree.Insert(key, rid);
      oracle.emplace(key, rid);
    } else {
      auto it = oracle.begin();
      std::advance(it, static_cast<long>(rng.Uniform(oracle.size())));
      EXPECT_TRUE(tree.Delete(it->first, it->second).value());
      oracle.erase(it);
    }
  }
  EXPECT_EQ(tree.num_entries(), oracle.size());

  // Random range lookups agree with the oracle as multisets of rids.
  for (int trial = 0; trial < 50; ++trial) {
    const int32_t lo = static_cast<int32_t>(rng.Uniform(500));
    const int32_t hi = lo + static_cast<int32_t>(rng.Uniform(100));
    auto rids = tree.RangeLookup(lo, hi).value();
    std::multiset<uint64_t> got;
    for (const Rid& rid : rids) {
      got.insert((static_cast<uint64_t>(rid.page_index) << 16) | rid.slot);
    }
    std::multiset<uint64_t> expected;
    for (auto it = oracle.lower_bound(lo);
         it != oracle.end() && it->first <= hi; ++it) {
      expected.insert((static_cast<uint64_t>(it->second.page_index) << 16) |
                      it->second.slot);
    }
    EXPECT_EQ(got, expected) << "range [" << lo << "," << hi << "]";
  }
}

INSTANTIATE_TEST_SUITE_P(AllPageSizes, BTreePropertyTest,
                         ::testing::Values(512u, 2048u, 4096u, 32768u));

}  // namespace
}  // namespace gammadb::storage
