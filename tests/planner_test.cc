// Tests for cost-based plan selection: the selectivity crossover between
// a non-clustered index and a file scan, clustered-index preference,
// single-site execution for exact matches on the partitioning attribute,
// join-site choice at 8 nodes, and the chosen plan staying within 10% of
// the best forced alternative when measured.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exec/predicate.h"
#include "gamma/machine.h"
#include "opt/planner.h"
#include "test_util.h"
#include "wisconsin/wisconsin.h"

namespace gammadb {
namespace {

namespace wis = gammadb::wisconsin;
using exec::Predicate;

constexpr uint32_t kN = 10000;

gamma::GammaConfig EightNodeConfig() {
  gamma::GammaConfig config;
  config.num_disk_nodes = 4;
  config.num_diskless_nodes = 4;
  config.join_memory_total = 4ull << 20;
  return config;
}

class PlannerTest : public ::testing::Test {
 protected:
  PlannerTest() : machine_(EightNodeConfig()) {
    GAMMA_CHECK(machine_
                    .CreateRelation("A", wis::WisconsinSchema(),
                                    catalog::PartitionSpec::Hashed(
                                        wis::kUnique1))
                    .ok());
    GAMMA_CHECK(machine_.LoadTuples("A", wis::GenerateWisconsin(kN, 11)).ok());
    GAMMA_CHECK(machine_.BuildIndex("A", wis::kUnique1, true).ok());
    GAMMA_CHECK(machine_.BuildIndex("A", wis::kUnique2, false).ok());
    // Heap-only copy and a 10% relation for joins.
    GAMMA_CHECK(machine_
                    .CreateRelation("Aheap", wis::WisconsinSchema(),
                                    catalog::PartitionSpec::Hashed(
                                        wis::kUnique1))
                    .ok());
    GAMMA_CHECK(
        machine_.LoadTuples("Aheap", wis::GenerateWisconsin(kN, 11)).ok());
    GAMMA_CHECK(machine_
                    .CreateRelation("Bprime", wis::WisconsinSchema(),
                                    catalog::PartitionSpec::Hashed(
                                        wis::kUnique1))
                    .ok());
    GAMMA_CHECK(machine_
                    .LoadTuples("Bprime", wis::GenerateWisconsin(kN / 10, 13))
                    .ok());
  }

  gamma::SelectQuery Select(const std::string& rel, Predicate pred) {
    gamma::SelectQuery query;
    query.relation = rel;
    query.predicate = std::move(pred);
    return query;
  }

  gamma::GammaMachine machine_;
};

TEST_F(PlannerTest, NonClusteredIndexWinsAtOnePercent) {
  const opt::Planner planner(machine_);
  const auto plan = planner.PlanSelect(
      Select("A", Predicate::Range(wis::kUnique2, 0, kN / 100 - 1)));
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->query.access, gamma::AccessPath::kNonClusteredIndex);
  EXPECT_NEAR(plan->estimate.output_tuples, kN / 100.0, kN / 1000.0);
}

TEST_F(PlannerTest, FileScanWinsAtTenPercent) {
  // §5.1's crossover: at 10% selectivity a non-clustered index touches so
  // many pages that the sequential scan is cheaper.
  const opt::Planner planner(machine_);
  const auto plan = planner.PlanSelect(
      Select("A", Predicate::Range(wis::kUnique2, 0, kN / 10 - 1)));
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->query.access, gamma::AccessPath::kFileScan);
}

TEST_F(PlannerTest, ClusteredIndexWinsOnPartitioningAttribute) {
  const opt::Planner planner(machine_);
  const auto plan = planner.PlanSelect(
      Select("A", Predicate::Range(wis::kUnique1, 0, kN / 10 - 1)));
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->query.access, gamma::AccessPath::kClusteredIndex);
}

TEST_F(PlannerTest, ExactMatchOnPartitioningAttributeIsSingleSite) {
  const opt::Planner planner(machine_);
  const auto plan =
      planner.PlanSelect(Select("A", Predicate::Eq(wis::kUnique1, 77)));
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->estimate.participating_sites, 1);
  EXPECT_NEAR(plan->estimate.output_tuples, 1.0, 0.5);
}

TEST_F(PlannerTest, ForcedPathWithoutAnIndexIsRejected) {
  const opt::Planner planner(machine_);
  gamma::SelectQuery forced =
      Select("Aheap", Predicate::Range(wis::kUnique1, 0, 99));
  forced.access = gamma::AccessPath::kClusteredIndex;
  EXPECT_TRUE(planner.PlanSelect(forced).status().IsInvalidArgument());
}

TEST_F(PlannerTest, ChosenSelectWithinTenPercentOfBestForced) {
  const opt::Planner planner(machine_);
  const gamma::SelectQuery base =
      Select("A", Predicate::Range(wis::kUnique2, 0, kN / 100 - 1));
  const auto chosen_plan = planner.PlanSelect(base);
  ASSERT_TRUE(chosen_plan.ok());
  const auto chosen = machine_.RunSelect(chosen_plan->query);
  ASSERT_TRUE(chosen.ok());

  double best = chosen->seconds();
  for (const gamma::AccessPath path :
       {gamma::AccessPath::kFileScan, gamma::AccessPath::kClusteredIndex,
        gamma::AccessPath::kNonClusteredIndex}) {
    gamma::SelectQuery forced = base;
    forced.access = path;
    const auto forced_plan = planner.PlanSelect(forced);
    if (!forced_plan.ok()) continue;  // path not applicable
    const auto result = machine_.RunSelect(forced_plan->query);
    ASSERT_TRUE(result.ok());
    best = std::min(best, result->seconds());
  }
  EXPECT_LE(chosen->seconds(), 1.10 * best);
}

TEST_F(PlannerTest, JoinOnPartitioningAttributeStaysLocal) {
  const opt::Planner planner(machine_);
  gamma::JoinQuery query;
  query.outer = "Aheap";
  query.inner = "Bprime";
  query.outer_attr = wis::kUnique1;
  query.inner_attr = wis::kUnique1;
  const auto plan = planner.PlanJoin(query);
  ASSERT_TRUE(plan.ok());
  // Both inputs hashed on the join attribute: every tuple short-circuits at
  // the disk nodes, so Local beats shipping to the diskless half.
  EXPECT_EQ(plan->query.mode, gamma::JoinMode::kLocal);
  EXPECT_GT(plan->query.expected_build_tuples, 0u);
}

TEST_F(PlannerTest, JoinOnNonPartitioningAttributeGoesRemote) {
  const opt::Planner planner(machine_);
  gamma::JoinQuery query;
  query.outer = "Aheap";
  query.inner = "Bprime";
  query.outer_attr = wis::kUnique2;
  query.inner_attr = wis::kUnique2;
  const auto plan = planner.PlanJoin(query);
  ASSERT_TRUE(plan.ok());
  // No short-circuiting is possible; the diskless half runs the join while
  // the disk nodes scan (Figures 10/12 ordering).
  EXPECT_EQ(plan->query.mode, gamma::JoinMode::kRemote);
}

TEST_F(PlannerTest, ChosenJoinWithinTenPercentOfBestForced) {
  const opt::Planner planner(machine_);
  gamma::JoinQuery base;
  base.outer = "Aheap";
  base.inner = "Bprime";
  base.outer_attr = wis::kUnique2;
  base.inner_attr = wis::kUnique2;
  const auto chosen_plan = planner.PlanJoin(base);
  ASSERT_TRUE(chosen_plan.ok());
  const auto chosen = machine_.RunJoin(chosen_plan->query);
  ASSERT_TRUE(chosen.ok());
  EXPECT_EQ(chosen->result_tuples, kN / 10);

  double best = chosen->seconds();
  for (const gamma::JoinMode mode :
       {gamma::JoinMode::kLocal, gamma::JoinMode::kRemote,
        gamma::JoinMode::kAllnodes}) {
    for (const gamma::JoinAlgorithm algorithm :
         {gamma::JoinAlgorithm::kSimpleHash, gamma::JoinAlgorithm::kHybridHash,
          gamma::JoinAlgorithm::kSortMerge}) {
      gamma::JoinQuery forced = base;
      forced.mode = mode;
      forced.algorithm = algorithm;
      forced.expected_build_tuples = chosen_plan->query.expected_build_tuples;
      const auto result = machine_.RunJoin(forced);
      ASSERT_TRUE(result.ok());
      EXPECT_EQ(result->result_tuples, kN / 10);
      best = std::min(best, result->seconds());
    }
  }
  EXPECT_LE(chosen->seconds(), 1.10 * best);
}

TEST_F(PlannerTest, SkewedJoinPlansBucketMapAndExplainsIt) {
  // Join attribute Zipf(theta=1) over 100 values: the frequency sketches
  // predict hash imbalance past the threshold, so the plan pins bucket-map
  // routing, charges the sampling cost into the estimate, and says so.
  GAMMA_CHECK(machine_
                  .CreateRelation("Z", wis::WisconsinSchema(),
                                  catalog::PartitionSpec::Hashed(
                                      wis::kUnique1))
                  .ok());
  GAMMA_CHECK(machine_
                  .LoadTuples("Z", wis::GenerateWisconsinZipf(
                                       kN, 11,
                                       wis::ZipfColumn{wis::kUnique2, 1.0,
                                                       100}))
                  .ok());
  const opt::Planner planner(machine_);
  gamma::JoinQuery join;
  join.outer = "Z";
  join.inner = "Bprime";
  join.outer_attr = wis::kUnique2;
  join.inner_attr = wis::kUnique2;
  const auto plan = planner.PlanJoin(join);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->query.routing, gamma::SplitRouting::kBucketMap);
  bool saw_routing = false, saw_sampling = false;
  for (const std::string& line : plan->plan.details) {
    saw_routing |= line.find("routing: bucket-map") != std::string::npos;
    saw_sampling |= line.find("est sampling cost") != std::string::npos;
  }
  EXPECT_TRUE(saw_routing);
  EXPECT_TRUE(saw_sampling);
}

TEST_F(PlannerTest, UniformJoinPlansHashRouting) {
  const opt::Planner planner(machine_);
  gamma::JoinQuery join;
  join.outer = "Aheap";
  join.inner = "Bprime";
  join.outer_attr = wis::kUnique2;  // unique: perfectly uniform
  join.inner_attr = wis::kUnique2;
  const auto plan = planner.PlanJoin(join);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->query.routing, gamma::SplitRouting::kHash);
  bool saw_routing = false, saw_sampling = false;
  for (const std::string& line : plan->plan.details) {
    saw_routing |= line.find("routing: hash") != std::string::npos;
    saw_sampling |= line.find("est sampling cost") != std::string::npos;
  }
  EXPECT_TRUE(saw_routing);
  EXPECT_FALSE(saw_sampling);
}

TEST_F(PlannerTest, EstimateTracksMeasurement) {
  const opt::Planner planner(machine_);
  const auto plan = planner.PlanSelect(
      Select("Aheap", Predicate::Range(wis::kUnique1, 0, kN / 10 - 1)));
  ASSERT_TRUE(plan.ok());
  const auto result = machine_.RunSelect(plan->query);
  ASSERT_TRUE(result.ok());
  // The model replays the simulator's charging rules; it should land well
  // inside the 10% decision tolerance on a plain file scan.
  EXPECT_NEAR(plan->estimate.seconds, result->seconds(),
              0.10 * result->seconds());
}

}  // namespace
}  // namespace gammadb
