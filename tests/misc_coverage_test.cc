// Remaining-corner tests: storage-manager lifecycle, builder reuse, split
// routing conservation across every routing kind, sorter duplicate keys,
// and buffer-pool edge behaviour.

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "catalog/schema.h"
#include "common/rng.h"
#include "exec/sort.h"
#include "exec/split_table.h"
#include "storage/storage_manager.h"
#include "test_util.h"

namespace gammadb {
namespace {

using gammadb::testing::MiniSchema;
using gammadb::testing::MiniTuple;

TEST(StorageManagerTest, FileAndIndexLifecycle) {
  storage::StorageManager sm(4096, 64 * 1024);
  const storage::FileId file_a = sm.CreateFile();
  const storage::FileId file_b = sm.CreateFile();
  EXPECT_NE(file_a, file_b);
  EXPECT_TRUE(sm.HasFile(file_a));
  sm.file(file_a).Append(MiniTuple(1, 2));
  sm.DropFile(file_a);
  EXPECT_FALSE(sm.HasFile(file_a));
  EXPECT_TRUE(sm.HasFile(file_b));

  const storage::IndexId index = sm.CreateIndex();
  sm.index(index).Insert(1, storage::Rid{0, 0});
  EXPECT_EQ(sm.index(index).num_entries(), 1u);
  sm.DropIndex(index);
}

TEST(StorageManagerTest, TrackerBindingIsOptional) {
  storage::StorageManager sm(4096, 64 * 1024);
  // Everything works uncharged with no tracker bound.
  const storage::FileId file = sm.CreateFile();
  for (int i = 0; i < 100; ++i) sm.file(file).Append(MiniTuple(i, i));
  EXPECT_EQ(sm.file(file).num_tuples(), 100u);
  EXPECT_EQ(sm.charge().tracker, nullptr);

  sim::CostTracker tracker(sim::MachineParams::GammaDefaults(), 1);
  sm.BindTracker(&tracker, 0);
  tracker.BeginPhase("p", sim::PhaseKind::kPipelined);
  sm.pool().Invalidate();
  sm.file(file).Scan([](storage::Rid, std::span<const uint8_t>) {
    return true;
  });
  tracker.EndPhase();
  sm.BindTracker(nullptr, -1);
  EXPECT_GT(tracker.Finish().Totals().pages_read, 0u);
}

TEST(TupleBuilderTest, ResetClearsAllFields) {
  catalog::TupleBuilder builder(&MiniSchema());
  builder.SetInt(0, 42).SetInt(1, 43).SetChar(2, "abc");
  builder.Reset();
  const catalog::TupleView view(&MiniSchema(), builder.bytes());
  EXPECT_EQ(view.GetInt(0), 0);
  EXPECT_EQ(view.GetInt(1), 0);
  EXPECT_EQ(view.GetChar(2)[0], '\0');
}

// Routing conservation: every sent tuple arrives at exactly one
// destination, for every routing kind and destination count.
class RoutingConservation
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RoutingConservation, EveryTupleDeliveredOnce) {
  const auto [kind_index, num_dests] = GetParam();
  exec::RouteSpec spec;
  switch (kind_index) {
    case 0:
      spec = exec::RouteSpec::HashAttr(0, 77);
      break;
    case 1:
      spec = exec::RouteSpec::RoundRobin();
      break;
    case 2: {
      std::vector<int32_t> bounds;
      for (int i = 1; i < num_dests; ++i) {
        bounds.push_back(static_cast<int32_t>(i * 1000 / num_dests));
      }
      spec = exec::RouteSpec::RangeAttr(0, std::move(bounds));
      break;
    }
    case 3:
      spec = exec::RouteSpec::Single(num_dests - 1);
      break;
    default:
      FAIL();
  }

  std::multiset<int32_t> received;
  std::vector<exec::SplitTable::Destination> dests;
  for (int i = 0; i < num_dests; ++i) {
    dests.push_back(exec::SplitTable::Destination{
        i, [&received](std::span<const uint8_t> t) {
          received.insert(catalog::TupleView(&MiniSchema(), t).GetInt(0));
        }});
  }
  exec::SplitTable split(0, &MiniSchema(), spec, std::move(dests), nullptr);

  std::multiset<int32_t> sent;
  Rng rng(static_cast<uint64_t>(kind_index * 100 + num_dests));
  for (int i = 0; i < 1000; ++i) {
    const int32_t id = static_cast<int32_t>(rng.Uniform(1000));
    sent.insert(id);
    split.Send(MiniTuple(id, 0));
  }
  split.Close();
  EXPECT_EQ(received, sent);
  EXPECT_EQ(split.sent(), 1000u);
}

INSTANTIATE_TEST_SUITE_P(KindsAndFanouts, RoutingConservation,
                         ::testing::Combine(::testing::Values(0, 1, 2, 3),
                                            ::testing::Values(1, 3, 8)));

TEST(SorterEdgeTest, DuplicateKeysSurviveMultiRunMerge) {
  storage::StorageManager sm(4096, 1 << 20);
  const storage::FileId input = sm.CreateFile();
  Rng rng(5);
  std::map<int32_t, int> expected_counts;
  for (int i = 0; i < 3000; ++i) {
    const int32_t key = static_cast<int32_t>(rng.Uniform(20));  // heavy dups
    expected_counts[key] += 1;
    sm.file(input).Append(MiniTuple(key, i));
  }
  const storage::FileId sorted = exec::ExternalSort(
      sm, input, MiniSchema(), 0, /*memory=*/200 * MiniSchema().tuple_size());
  std::map<int32_t, int> counts;
  int32_t previous = INT32_MIN;
  sm.file(sorted).Scan([&](storage::Rid, std::span<const uint8_t> t) {
    const int32_t key = catalog::TupleView(&MiniSchema(), t).GetInt(0);
    EXPECT_GE(key, previous);
    previous = key;
    counts[key] += 1;
    return true;
  });
  EXPECT_EQ(counts, expected_counts);
}

TEST(BufferPoolEdgeTest, InvalidateKeepsPinnedFrames) {
  storage::StorageManager sm(4096, 64 * 1024);
  storage::BufferPool& pool = sm.pool();
  uint8_t* frame = nullptr;
  const uint32_t pinned = pool.NewPage(&frame).value();
  frame[0] = 0x77;
  pool.MarkDirty(pinned, storage::AccessIntent::kSequential);
  uint8_t* other_frame = nullptr;
  const uint32_t unpinned = pool.NewPage(&other_frame).value();
  pool.Unpin(unpinned);

  pool.Invalidate();
  // The pinned frame must survive with its contents; the unpinned one may go.
  EXPECT_EQ(frame[0], 0x77);
  pool.Unpin(pinned);
  EXPECT_GE(pool.frames_in_use(), 1u);
}

TEST(ScheduledCostsTest, AllnodesSchedulingCostMatchesPaperArithmetic) {
  // §6.2.3: 64 extra messages at ~7 ms each is about half a second.
  sim::CostTracker tracker(sim::MachineParams::GammaDefaults(), 16);
  tracker.ChargeScheduling(2, 16);  // build+join on 16 Allnodes processors
  const auto all = tracker.Finish();
  sim::CostTracker tracker_local(sim::MachineParams::GammaDefaults(), 16);
  tracker_local.ChargeScheduling(2, 8);  // Local: 8 processors
  const auto local = tracker_local.Finish();
  EXPECT_EQ(all.scheduling_msgs - local.scheduling_msgs, 64u);
  EXPECT_NEAR(all.scheduling_sec - local.scheduling_sec, 64 * 0.007, 1e-9);
}

}  // namespace
}  // namespace gammadb
