// Unit tests for schema/tuple handling, partitioning, the catalog, the lock
// manager and deferred-update files.

#include <set>

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "catalog/partition.h"
#include "catalog/schema.h"
#include "storage/deferred_update.h"
#include "storage/lock_manager.h"
#include "storage/storage_manager.h"
#include "test_util.h"
#include "wisconsin/wisconsin.h"

namespace gammadb {
namespace {

using catalog::AttrType;
using catalog::PartitionSpec;
using catalog::Partitioner;
using catalog::Schema;
using catalog::TupleBuilder;
using catalog::TupleView;

TEST(SchemaTest, OffsetsAndSize) {
  const Schema& schema = wisconsin::WisconsinSchema();
  EXPECT_EQ(schema.num_attrs(), 16u);
  EXPECT_EQ(schema.tuple_size(), 208u);  // 13*4 + 3*52 (§4)
  EXPECT_EQ(schema.offset(0), 0u);
  EXPECT_EQ(schema.offset(13), 52u);   // first string after 13 ints
  EXPECT_EQ(schema.offset(15), 156u);
}

TEST(SchemaTest, IndexOfByName) {
  const Schema& schema = wisconsin::WisconsinSchema();
  EXPECT_EQ(*schema.IndexOf("unique2"), 1u);
  EXPECT_FALSE(schema.IndexOf("nonexistent").has_value());
}

TEST(SchemaTest, BuilderViewRoundTrip) {
  const Schema& schema = gammadb::testing::MiniSchema();
  TupleBuilder builder(&schema);
  builder.SetInt(0, -17).SetInt(1, 99).SetChar(2, "abc");
  const TupleView view(&schema, builder.bytes());
  EXPECT_EQ(view.GetInt(0), -17);
  EXPECT_EQ(view.GetInt(1), 99);
  EXPECT_EQ(view.GetChar(2).substr(0, 3), "abc");
  EXPECT_EQ(view.GetChar(2)[3], ' ');  // space padded
  EXPECT_EQ(view.GetChar(2).size(), 16u);
}

TEST(SchemaTest, ConcatPrefixesCollidingNames) {
  const Schema joined = Schema::Concat(gammadb::testing::MiniSchema(),
                                       gammadb::testing::MiniSchema());
  EXPECT_EQ(joined.num_attrs(), 6u);
  EXPECT_EQ(joined.tuple_size(),
            2 * gammadb::testing::MiniSchema().tuple_size());
  EXPECT_EQ(*joined.IndexOf("id"), 0u);
  EXPECT_EQ(*joined.IndexOf("r_id"), 3u);
}

TEST(SchemaTest, ConcatTuplesBytes) {
  const auto left = gammadb::testing::MiniTuple(1, 2);
  const auto right = gammadb::testing::MiniTuple(3, 4);
  const auto joined = catalog::ConcatTuples(left, right);
  const Schema schema = Schema::Concat(gammadb::testing::MiniSchema(),
                                       gammadb::testing::MiniSchema());
  const TupleView view(&schema, joined);
  EXPECT_EQ(view.GetInt(0), 1);
  EXPECT_EQ(view.GetInt(3), 3);
  EXPECT_EQ(view.GetInt(4), 4);
}

TEST(PartitionTest, RoundRobinCycles) {
  const PartitionSpec spec = PartitionSpec::RoundRobin();
  Partitioner partitioner(&spec, &gammadb::testing::MiniSchema(), 4);
  const auto tuple = gammadb::testing::MiniTuple(0, 0);
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(partitioner.NodeFor(tuple), i % 4);
  }
  EXPECT_EQ(partitioner.NodeForKey(7), -1);  // not localizable
}

TEST(PartitionTest, HashedIsDeterministicAndBalanced) {
  const PartitionSpec spec = PartitionSpec::Hashed(0);
  Partitioner partitioner(&spec, &gammadb::testing::MiniSchema(), 8);
  int counts[8] = {0};
  for (int32_t id = 0; id < 8000; ++id) {
    const int node = partitioner.NodeFor(gammadb::testing::MiniTuple(id, 0));
    EXPECT_EQ(node, partitioner.NodeForKey(id));
    counts[node] += 1;
  }
  for (int node = 0; node < 8; ++node) {
    EXPECT_GT(counts[node], 800);
    EXPECT_LT(counts[node], 1200);
  }
}

TEST(PartitionTest, RangeUserBoundaries) {
  const PartitionSpec spec = PartitionSpec::RangeUser(0, {100, 200, 300});
  Partitioner partitioner(&spec, &gammadb::testing::MiniSchema(), 4);
  EXPECT_EQ(partitioner.NodeForKey(-5), 0);
  EXPECT_EQ(partitioner.NodeForKey(99), 0);
  EXPECT_EQ(partitioner.NodeForKey(100), 1);
  EXPECT_EQ(partitioner.NodeForKey(250), 2);
  EXPECT_EQ(partitioner.NodeForKey(300), 3);
  EXPECT_EQ(partitioner.NodeForKey(99999), 3);
}

TEST(PartitionTest, RangeUniformCoversDomainEvenly) {
  const PartitionSpec spec = PartitionSpec::RangeUniform(0, 0, 9999, 4);
  Partitioner partitioner(&spec, &gammadb::testing::MiniSchema(), 4);
  int counts[4] = {0};
  for (int32_t key = 0; key < 10000; ++key) {
    counts[partitioner.NodeForKey(key)] += 1;
  }
  for (int node = 0; node < 4; ++node) EXPECT_EQ(counts[node], 2500);
}

TEST(CatalogTest, RegisterGetDrop) {
  catalog::Catalog cat;
  catalog::RelationMeta meta;
  meta.name = "r";
  meta.schema = gammadb::testing::MiniSchema();
  ASSERT_TRUE(cat.Register(std::move(meta)).ok());
  EXPECT_TRUE(cat.Contains("r"));
  catalog::RelationMeta duplicate;
  duplicate.name = "r";
  EXPECT_FALSE(cat.Register(std::move(duplicate)).ok());
  ASSERT_TRUE(cat.Get("r").ok());
  EXPECT_TRUE(cat.Get("missing").status().IsNotFound());
  EXPECT_TRUE(cat.Drop("r").ok());
  EXPECT_FALSE(cat.Contains("r"));
  EXPECT_TRUE(cat.Drop("r").IsNotFound());
}

TEST(CatalogTest, FindIndexPrefersClustered) {
  catalog::RelationMeta meta;
  meta.indices.push_back({.attr = 1, .clustered = false, .per_node_index = {}});
  meta.indices.push_back({.attr = 1, .clustered = true, .per_node_index = {}});
  meta.indices.push_back({.attr = 2, .clustered = false, .per_node_index = {}});
  EXPECT_TRUE(meta.FindIndex(1)->clustered);
  EXPECT_FALSE(meta.FindIndex(2)->clustered);
  EXPECT_EQ(meta.FindIndex(9), nullptr);
  EXPECT_EQ(meta.FindClusteredIndex()->attr, 1);
}

TEST(LockManagerTest, SharedLocksCoexistExclusiveConflicts) {
  storage::StorageManager sm(4096, 64 * 1024);
  storage::LockManager& locks = sm.locks();
  const auto name = storage::LockName::File(1);
  EXPECT_TRUE(locks.Acquire(1, name, storage::LockMode::kShared).ok());
  EXPECT_TRUE(locks.Acquire(2, name, storage::LockMode::kShared).ok());
  EXPECT_FALSE(locks.Acquire(3, name, storage::LockMode::kExclusive).ok());
  locks.ReleaseAll(1);
  locks.ReleaseAll(2);
  EXPECT_TRUE(locks.Acquire(3, name, storage::LockMode::kExclusive).ok());
  EXPECT_FALSE(locks.Acquire(1, name, storage::LockMode::kShared).ok());
  locks.ReleaseAll(3);
}

TEST(LockManagerTest, UpgradeOnlyForSoleHolder) {
  storage::StorageManager sm(4096, 64 * 1024);
  storage::LockManager& locks = sm.locks();
  const auto name = storage::LockName::Page(1, 5);
  EXPECT_TRUE(locks.Acquire(1, name, storage::LockMode::kShared).ok());
  EXPECT_TRUE(locks.Acquire(1, name, storage::LockMode::kExclusive).ok());
  locks.ReleaseAll(1);

  EXPECT_TRUE(locks.Acquire(1, name, storage::LockMode::kShared).ok());
  EXPECT_TRUE(locks.Acquire(2, name, storage::LockMode::kShared).ok());
  EXPECT_FALSE(locks.Acquire(1, name, storage::LockMode::kExclusive).ok());
  locks.ReleaseAll(1);
  locks.ReleaseAll(2);
}

TEST(LockManagerTest, DistinctResourcesIndependent) {
  storage::StorageManager sm(4096, 64 * 1024);
  storage::LockManager& locks = sm.locks();
  EXPECT_TRUE(locks.Acquire(1, storage::LockName::Record(1, 2, 3),
                            storage::LockMode::kExclusive)
                  .ok());
  EXPECT_TRUE(locks.Acquire(2, storage::LockName::Record(1, 2, 4),
                            storage::LockMode::kExclusive)
                  .ok());
  EXPECT_EQ(locks.held_count(1), 1u);
  locks.ReleaseAll(1);
  EXPECT_EQ(locks.held_count(1), 0u);
}

TEST(DeferredUpdateTest, CommitAppliesQueuedChanges) {
  storage::StorageManager sm(4096, 256 * 1024);
  storage::BTree& tree = sm.index(sm.CreateIndex());
  storage::DeferredUpdateFile deferred(&sm.charge(), 4096);
  deferred.LogInsert(&tree, 10, storage::Rid{1, 1});
  deferred.LogInsert(&tree, 20, storage::Rid{1, 2});
  deferred.LogDelete(&tree, 10, storage::Rid{1, 1});
  EXPECT_EQ(deferred.pending(), 3u);
  EXPECT_EQ(tree.num_entries(), 0u);  // nothing applied yet (Halloween-safe)
  deferred.Commit();
  EXPECT_EQ(deferred.pending(), 0u);
  EXPECT_EQ(tree.num_entries(), 1u);
  EXPECT_EQ(tree.RangeLookup(20, 20).value().size(), 1u);
}

TEST(DeferredUpdateTest, AbortDropsQueuedChanges) {
  storage::StorageManager sm(4096, 256 * 1024);
  storage::BTree& tree = sm.index(sm.CreateIndex());
  storage::DeferredUpdateFile deferred(&sm.charge(), 4096);
  deferred.LogInsert(&tree, 10, storage::Rid{1, 1});
  deferred.Abort();
  deferred.Commit();
  EXPECT_EQ(tree.num_entries(), 0u);
}

}  // namespace
}  // namespace gammadb
