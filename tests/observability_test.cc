// Tests for the observability subsystem: the metrics registry, profile /
// span derivation from synthetic metrics, Chrome trace export, the flight
// recorder (event journal), the QUEL `explain profile` / `explain journal`
// surfaces, and the contract properties the subsystem promises —
// byte-identical traces, utilization and journals at any host-pool width
// (including under a mid-query failover), and zero effect on simulated
// seconds from any recording.

#include <cstdlib>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "gamma/machine.h"
#include "obs/chrome_trace.h"
#include "obs/journal.h"
#include "obs/metrics_registry.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "quel/quel.h"
#include "sim/host_pool.h"
#include "wisconsin/wisconsin.h"

namespace gammadb {
namespace {

namespace wis = gammadb::wisconsin;
using exec::Predicate;
using exec::QueryResult;

constexpr int kManyThreads = 4;

template <typename Fn>
auto WithThreads(int threads, Fn&& body) {
  auto& pool = sim::HostPool::Instance();
  const int prev = pool.num_threads();
  pool.set_num_threads(threads);
  auto result = body();
  pool.set_num_threads(prev);
  return result;
}

// --- MetricsRegistry ---

TEST(MetricsRegistryTest, CountersAccumulateAndReset) {
  auto& registry = obs::MetricsRegistry::Instance();
  obs::Counter& c = registry.counter("test.counter_a");
  c.Reset();
  c.Inc();
  c.Inc(41);
  EXPECT_EQ(c.value(), 42u);
  EXPECT_EQ(registry.CounterValue("test.counter_a"), 42u);
  EXPECT_EQ(registry.CounterValue("test.never_touched"), 0u);
  // Same name -> same interned object.
  EXPECT_EQ(&registry.counter("test.counter_a"), &c);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(MetricsRegistryTest, HistogramBucketsAndQuantiles) {
  auto& registry = obs::MetricsRegistry::Instance();
  obs::Histogram& h = registry.histogram("test.hist", {1.0, 10.0, 100.0});
  h.Reset();
  EXPECT_EQ(h.Quantile(0.5), 0);  // empty
  h.Observe(0.5);   // bucket 0 (<= 1)
  h.Observe(5.0);   // bucket 1 (<= 10)
  h.Observe(50.0);  // bucket 2 (<= 100)
  h.Observe(500.0); // overflow
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 555.5);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.bucket(3), 1u);  // overflow bucket
  EXPECT_EQ(h.Quantile(0.25), 1.0);
  EXPECT_EQ(h.Quantile(0.5), 10.0);
  // Overflow observations report the largest bound.
  EXPECT_EQ(h.Quantile(1.0), 100.0);
}

TEST(MetricsRegistryTest, SnapshotIsSortedAndRenders) {
  auto& registry = obs::MetricsRegistry::Instance();
  registry.counter("test.zz").Inc(7);
  registry.counter("test.aa").Inc(3);
  const auto samples = registry.Snapshot();
  ASSERT_GE(samples.size(), 2u);
  for (size_t i = 1; i < samples.size(); ++i) {
    EXPECT_LT(samples[i - 1].name, samples[i].name);
  }
  const std::string text = registry.RenderText();
  EXPECT_NE(text.find("test.aa"), std::string::npos);
  EXPECT_NE(text.find("test.zz"), std::string::npos);
}

// --- Profile derivation from synthetic metrics ---

/// Two-node pipelined phase + a sequential phase, with hand-picked numbers
/// so every derived quantity is checkable in closed form.
sim::QueryMetrics SyntheticMetrics() {
  sim::QueryMetrics metrics;
  metrics.scheduling_sec = 1.0;

  sim::PhaseMetrics scan;
  scan.name = "scan";
  scan.kind = sim::PhaseKind::kPipelined;
  scan.elapsed_sec = 2.0;
  scan.ring_bytes = 1000;  // 1 s at 1000 B/s: fits inside the 2 s phase
  scan.bottleneck_node = 0;
  scan.bottleneck_resource = sim::Resource::kDisk;
  scan.per_node.resize(3);
  scan.per_node[0].disk_sec = 2.0;   // the bottleneck
  scan.per_node[0].cpu_sec = 1.0;
  scan.per_node[0].pages_read = 10;
  scan.per_node[1].disk_sec = 1.0;
  scan.per_node[1].cpu_sec = 0.5;
  scan.per_node[1].serial_sec = 0.25;
  scan.per_node[1].pages_read = 5;
  // per_node[2] idle: must not appear in spans or active-node counts.

  sim::PhaseMetrics fetch;
  fetch.name = "fetch";
  fetch.kind = sim::PhaseKind::kSequential;
  fetch.elapsed_sec = 1.0;
  fetch.bottleneck_node = 1;
  fetch.bottleneck_resource = sim::Resource::kCpu;
  fetch.per_node.resize(3);
  fetch.per_node[1].cpu_sec = 0.6;
  fetch.per_node[1].disk_sec = 0.4;
  fetch.per_node[1].buffer_hits = 2;

  metrics.phases = {scan, fetch};
  return metrics;
}

TEST(ProfileTest, UtilizationClosedForm) {
  const sim::QueryMetrics metrics = SyntheticMetrics();
  // TotalSec = 1 (sched) + 2 + 1 = 4; nodes 0 and 1 active -> 2.
  const obs::Utilization util =
      obs::ComputeUtilization(metrics, /*ring_bytes_per_sec=*/1000);
  EXPECT_EQ(util.active_nodes, 2);
  // disk = 2 + 1 + 0.4 = 3.4 over (4 * 2).
  EXPECT_DOUBLE_EQ(util.disk_busy_frac, 3.4 / 8.0);
  // cpu = 1 + 0.5 + 0.6 = 2.1 over 8.
  EXPECT_DOUBLE_EQ(util.cpu_busy_frac, 2.1 / 8.0);
  EXPECT_DOUBLE_EQ(util.net_busy_frac, 0.0);
  // ring: 1000 bytes / 1000 B/s = 1 s over the 4 s query.
  EXPECT_DOUBLE_EQ(util.ring_busy_frac, 0.25);
  // Votes: scan (2 s) -> disk, fetch (1 s) -> cpu.
  EXPECT_EQ(util.critical_resource, "disk");
}

TEST(ProfileTest, RingLimitedPhaseWinsTheVerdict) {
  sim::QueryMetrics metrics = SyntheticMetrics();
  metrics.phases[0].ring_limited = true;
  const obs::Utilization util = obs::ComputeUtilization(metrics, 1000);
  EXPECT_EQ(util.critical_resource, "ring");
}

TEST(ProfileTest, SpanPlacementFollowsChargingRules) {
  const sim::QueryMetrics metrics = SyntheticMetrics();
  const auto spans = obs::BuildSpans("select", metrics, 1000);

  // Root.
  ASSERT_FALSE(spans.empty());
  EXPECT_EQ(spans[0].name, "query:select");
  EXPECT_EQ(spans[0].parent, -1);
  EXPECT_DOUBLE_EQ(spans[0].begin_sec, 0.0);
  EXPECT_DOUBLE_EQ(spans[0].dur_sec, 4.0);

  // Scheduling occupies [0, 1).
  EXPECT_EQ(spans[1].name, "scheduling");
  EXPECT_DOUBLE_EQ(spans[1].dur_sec, 1.0);

  // Every span nests inside its parent's interval, and the idle node never
  // appears.
  for (const obs::Span& span : spans) {
    EXPECT_NE(span.node, 2) << span.name;
    if (span.parent < 0) continue;
    const obs::Span& parent = spans[static_cast<size_t>(span.parent)];
    EXPECT_GE(span.begin_sec, parent.begin_sec - 1e-12) << span.name;
    EXPECT_LE(span.begin_sec + span.dur_sec,
              parent.begin_sec + parent.dur_sec + 1e-12)
        << span.name << " escapes " << parent.name;
  }

  // Pipelined phase: node 1's serial stall leads, devices share one origin.
  double serial_begin = -1, disk_begin = -1, cpu_begin = -1;
  for (const obs::Span& span : spans) {
    if (span.node != 1 || span.phase != 0) continue;
    if (span.device == obs::Device::kSerial) serial_begin = span.begin_sec;
    if (span.device == obs::Device::kDisk) disk_begin = span.begin_sec;
    if (span.device == obs::Device::kCpu) cpu_begin = span.begin_sec;
  }
  ASSERT_GE(serial_begin, 0.0);
  EXPECT_DOUBLE_EQ(serial_begin, 1.0);           // phase start
  EXPECT_DOUBLE_EQ(disk_begin, 1.25);            // after the 0.25 s stall
  EXPECT_DOUBLE_EQ(cpu_begin, disk_begin);       // overlapping from origin

  // Sequential phase: node 1's serial/disk/cpu/net run end to end.
  double seq_disk_begin = -1, seq_cpu_begin = -1;
  for (const obs::Span& span : spans) {
    if (span.node != 1 || span.phase != 1) continue;
    if (span.device == obs::Device::kDisk) seq_disk_begin = span.begin_sec;
    if (span.device == obs::Device::kCpu) seq_cpu_begin = span.begin_sec;
  }
  EXPECT_DOUBLE_EQ(seq_disk_begin, 3.0);  // phase starts at 1 + 2
  EXPECT_DOUBLE_EQ(seq_cpu_begin, 3.4);   // after the 0.4 s disk interval

  // One ring span, for the phase with traffic.
  int ring_spans = 0;
  for (const obs::Span& span : spans) {
    if (span.device == obs::Device::kRing) ++ring_spans;
  }
  EXPECT_EQ(ring_spans, 1);
}

TEST(ProfileTest, BuildProfileAggregatesPhases) {
  const sim::QueryMetrics metrics = SyntheticMetrics();
  const obs::Profile profile =
      obs::BuildProfile("gamma", "select", metrics, 1000);
  EXPECT_EQ(profile.machine, "gamma");
  EXPECT_EQ(profile.label, "select");
  EXPECT_DOUBLE_EQ(profile.total_sec, 4.0);
  ASSERT_EQ(profile.phases.size(), 2u);
  EXPECT_EQ(profile.phases[0].name, "scan");
  EXPECT_EQ(profile.phases[0].active_nodes, 2);
  EXPECT_DOUBLE_EQ(profile.phases[0].begin_sec, 1.0);
  EXPECT_DOUBLE_EQ(profile.phases[0].totals.disk_sec, 3.0);
  EXPECT_EQ(profile.phases[1].active_nodes, 1);
  EXPECT_DOUBLE_EQ(profile.phases[1].begin_sec, 3.0);
  EXPECT_DOUBLE_EQ(profile.totals.disk_sec, 3.4);
  EXPECT_FALSE(profile.spans.empty());

  const std::string rendered = obs::RenderProfile(profile);
  EXPECT_NE(rendered.find("profile gamma select"), std::string::npos);
  EXPECT_NE(rendered.find("critical resource: disk"), std::string::npos);
  EXPECT_NE(rendered.find("scan"), std::string::npos);
  EXPECT_NE(rendered.find("fetch"), std::string::npos);
}

TEST(ProfileTest, ChromeTraceJsonIsWellFormed) {
  const obs::Profile profile =
      obs::BuildProfile("gamma", "select", SyntheticMetrics(), 1000);
  const std::string json = obs::ChromeTraceJson(profile);
  EXPECT_EQ(json.find("{\"traceEvents\":["), 0u);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);  // track names
  EXPECT_NE(json.find("query:select"), std::string::npos);
  EXPECT_NE(json.find("\"critical_resource\":\"disk\""), std::string::npos);
  // Balanced braces/brackets (cheap structural validity check).
  int braces = 0, brackets = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (c == '"' && (i == 0 || json[i - 1] != '\\')) in_string = !in_string;
    if (in_string) continue;
    braces += (c == '{') - (c == '}');
    brackets += (c == '[') - (c == ']');
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

// --- End-to-end properties on a real machine ---

gamma::GammaConfig SmallConfig() {
  gamma::GammaConfig config;
  config.num_disk_nodes = 4;
  config.num_diskless_nodes = 4;
  config.join_memory_total = 4 << 20;
  config.chained_declustering = true;
  return config;
}

struct TracedRun {
  QueryResult result;
  std::string chrome_json;
  std::string rendered;
};

/// Fresh machine + loaded relations + one traced query, under the current
/// host-pool width.
TracedRun RunTraced(
    const gamma::GammaConfig& config,
    const std::function<Result<QueryResult>(gamma::GammaMachine&)>& query) {
  gamma::GammaMachine machine(config);
  GAMMA_CHECK(machine
                  .CreateRelation("A", wis::WisconsinSchema(),
                                  catalog::PartitionSpec::Hashed(
                                      wis::kUnique1))
                  .ok());
  GAMMA_CHECK(machine.LoadTuples("A", wis::GenerateWisconsin(2000, 7)).ok());
  GAMMA_CHECK(machine
                  .CreateRelation("B", wis::WisconsinSchema(),
                                  catalog::PartitionSpec::Hashed(
                                      wis::kUnique1))
                  .ok());
  GAMMA_CHECK(machine.LoadTuples("B", wis::GenerateWisconsin(1000, 8)).ok());
  auto result = query(machine);
  GAMMA_CHECK_MSG(result.ok(), result.status().ToString().c_str());
  TracedRun run{*std::move(result), {}, {}};
  GAMMA_CHECK(run.result.profile != nullptr);
  run.chrome_json = obs::ChromeTraceJson(*run.result.profile);
  run.rendered = obs::RenderProfile(*run.result.profile);
  return run;
}

void ExpectTraceIdenticalAcrossThreads(
    const gamma::GammaConfig& config,
    const std::function<Result<QueryResult>(gamma::GammaMachine&)>& query) {
  const TracedRun one = WithThreads(1, [&] { return RunTraced(config, query); });
  const TracedRun many =
      WithThreads(kManyThreads, [&] { return RunTraced(config, query); });

  // Byte-identical Chrome export and rendered breakdown.
  EXPECT_EQ(one.chrome_json, many.chrome_json);
  EXPECT_EQ(one.rendered, many.rendered);

  // Bit-identical utilization scalars.
  const obs::Utilization& ua = one.result.profile->util;
  const obs::Utilization& ub = many.result.profile->util;
  EXPECT_EQ(ua.disk_busy_frac, ub.disk_busy_frac);
  EXPECT_EQ(ua.cpu_busy_frac, ub.cpu_busy_frac);
  EXPECT_EQ(ua.net_busy_frac, ub.net_busy_frac);
  EXPECT_EQ(ua.ring_busy_frac, ub.ring_busy_frac);
  EXPECT_EQ(ua.critical_resource, ub.critical_resource);
  EXPECT_EQ(ua.active_nodes, ub.active_nodes);

  // Identical span streams, field by field.
  const auto& sa = one.result.profile->spans;
  const auto& sb = many.result.profile->spans;
  ASSERT_EQ(sa.size(), sb.size());
  for (size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i].name, sb[i].name) << i;
    EXPECT_EQ(sa[i].node, sb[i].node) << i;
    EXPECT_EQ(sa[i].phase, sb[i].phase) << i;
    EXPECT_EQ(sa[i].device, sb[i].device) << i;
    EXPECT_EQ(sa[i].begin_sec, sb[i].begin_sec) << i;
    EXPECT_EQ(sa[i].dur_sec, sb[i].dur_sec) << i;
    EXPECT_EQ(sa[i].parent, sb[i].parent) << i;
  }
}

TEST(ObservabilityPropertyTest, SelectTraceIdenticalAcrossThreadCounts) {
  gamma::GammaConfig config = SmallConfig();
  config.trace.enabled = true;
  ExpectTraceIdenticalAcrossThreads(config, [](gamma::GammaMachine& m) {
    gamma::SelectQuery query;
    query.relation = "A";
    query.predicate = Predicate::Range(wis::kUnique2, 100, 299);
    query.store_result = true;
    return m.RunSelect(query);
  });
}

TEST(ObservabilityPropertyTest, JoinTraceIdenticalAcrossThreadCounts) {
  gamma::GammaConfig config = SmallConfig();
  config.trace.enabled = true;
  ExpectTraceIdenticalAcrossThreads(config, [](gamma::GammaMachine& m) {
    gamma::JoinQuery join;
    join.outer = "A";
    join.inner = "B";
    join.outer_attr = wis::kUnique2;
    join.inner_attr = wis::kUnique2;
    join.mode = gamma::JoinMode::kAllnodes;
    return m.RunJoin(join);
  });
}

// A node dies mid-query (after 10 disk ops) and chained declustering
// retries against the survivors: the failover path's trace must still be
// independent of the host-pool width.
TEST(ObservabilityPropertyTest, FailoverTraceIdenticalAcrossThreadCounts) {
  gamma::GammaConfig config = SmallConfig();
  config.trace.enabled = true;
  config.fault.drop_packet_prob = 0.02;
  ExpectTraceIdenticalAcrossThreads(config, [](gamma::GammaMachine& m) {
    m.KillNodeAfterOps(1, 10);
    gamma::SelectQuery query;
    query.relation = "A";
    query.predicate = Predicate::Range(wis::kUnique1, 0, 999);
    query.store_result = true;
    return m.RunSelect(query);
  });
}

// Tracing off vs on: identical simulated seconds and metrics (derivation is
// strictly post-accounting), and the profile only exists when asked for.
TEST(ObservabilityPropertyTest, TracingChargesZeroSimulatedTime) {
  auto run = [](bool traced) {
    gamma::GammaConfig config = SmallConfig();
    config.trace.enabled = traced;
    gamma::GammaMachine machine(config);
    GAMMA_CHECK(machine
                    .CreateRelation("A", wis::WisconsinSchema(),
                                    catalog::PartitionSpec::Hashed(
                                        wis::kUnique1))
                    .ok());
    GAMMA_CHECK(
        machine.LoadTuples("A", wis::GenerateWisconsin(2000, 7)).ok());
    gamma::SelectQuery query;
    query.relation = "A";
    query.predicate = Predicate::Range(wis::kUnique2, 100, 299);
    auto result = machine.RunSelect(query);
    GAMMA_CHECK(result.ok());
    return *std::move(result);
  };
  const QueryResult off = run(false);
  const QueryResult on = run(true);
  EXPECT_EQ(off.profile, nullptr);
  ASSERT_NE(on.profile, nullptr);
  EXPECT_EQ(off.seconds(), on.seconds());
  EXPECT_EQ(off.metrics.scheduling_sec, on.metrics.scheduling_sec);
  ASSERT_EQ(off.metrics.phases.size(), on.metrics.phases.size());
  for (size_t p = 0; p < off.metrics.phases.size(); ++p) {
    EXPECT_EQ(off.metrics.phases[p].elapsed_sec,
              on.metrics.phases[p].elapsed_sec);
  }
  // The profile agrees with the accounting it derived from.
  EXPECT_DOUBLE_EQ(on.profile->total_sec, on.seconds());
}

TEST(ObservabilityPropertyTest, StatementsFeedTheRegistry) {
  auto& registry = obs::MetricsRegistry::Instance();
  const uint64_t before = registry.CounterValue("query.count");
  gamma::GammaConfig config = SmallConfig();
  gamma::GammaMachine machine(config);
  GAMMA_CHECK(machine
                  .CreateRelation("A", wis::WisconsinSchema(),
                                  catalog::PartitionSpec::Hashed(
                                      wis::kUnique1))
                  .ok());
  GAMMA_CHECK(machine.LoadTuples("A", wis::GenerateWisconsin(500, 7)).ok());
  gamma::SelectQuery query;
  query.relation = "A";
  query.predicate = Predicate::Range(wis::kUnique1, 0, 99);
  ASSERT_TRUE(machine.RunSelect(query).ok());
  EXPECT_EQ(registry.CounterValue("query.count"), before + 1);
  EXPECT_GT(registry.CounterValue("query.pages_read"), 0u);
}

// --- QUEL surface ---

TEST(QuelProfileTest, ExplainProfileAttachesBreakdown) {
  gamma::GammaMachine machine(SmallConfig());
  GAMMA_CHECK(machine
                  .CreateRelation("A", wis::WisconsinSchema(),
                                  catalog::PartitionSpec::Hashed(
                                      wis::kUnique1))
                  .ok());
  GAMMA_CHECK(machine.LoadTuples("A", wis::GenerateWisconsin(1000, 9)).ok());
  quel::Session session(&machine);
  ASSERT_TRUE(session.Execute("range of t is A").ok());

  const auto plain = session.Execute(
      "explain retrieve (t.all) where t.unique1 >= 0 and t.unique1 <= 99");
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->profile, nullptr);
  EXPECT_EQ(plain->explain.find("profile gamma"), std::string::npos);

  const auto profiled = session.Execute(
      "explain profile retrieve (t.all) where t.unique1 >= 0 and "
      "t.unique1 <= 99");
  ASSERT_TRUE(profiled.ok());
  ASSERT_NE(profiled->profile, nullptr);
  EXPECT_NE(profiled->explain.find("profile gamma select"),
            std::string::npos);
  EXPECT_NE(profiled->explain.find("critical resource:"), std::string::npos);
  // Same query, same answer regardless of profiling. (Simulated seconds
  // differ between the two statements because the first warms the buffer
  // pool — that is cross-statement state, not a profiling charge; the
  // zero-overhead property is asserted on fresh machines above.)
  EXPECT_EQ(plain->result_tuples, profiled->result_tuples);

  EXPECT_TRUE(session.Execute("explain profile range of t is A")
                  .status()
                  .IsInvalidArgument());
}

// --- Metrics registry: log buckets, snapshot, concurrency ---

TEST(MetricsRegistryTest, LogBucketsAreSharedFixedEdges) {
  const std::vector<double> bounds = obs::LogBuckets(1e-4, 1e4, 4);
  ASSERT_GE(bounds.size(), 33u);
  EXPECT_EQ(bounds.front(), 1e-4);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
  EXPECT_GE(bounds.back(), 1e4 * (1 - 1e-9));
  // Pure function of the index: a second call is bit-identical.
  EXPECT_EQ(bounds, obs::LogBuckets(1e-4, 1e4, 4));
  EXPECT_NEAR(bounds[4], 1e-3, 1e-15);
}

TEST(MetricsRegistryTest, HistogramSnapshotReportsTailQuantiles) {
  auto& registry = obs::MetricsRegistry::Instance();
  obs::Histogram& h =
      registry.histogram("test.snapshot_hist", obs::LogBuckets(0.001, 10, 1));
  h.Reset();
  for (int i = 0; i < 98; ++i) h.Observe(0.0005);  // bucket 0 (<= 0.001)
  h.Observe(0.5);  // <= 1
  h.Observe(5.0);  // <= 10
  const auto samples = registry.HistogramSnapshot();
  const obs::MetricsRegistry::HistogramSample* found = nullptr;
  for (const auto& s : samples) {
    if (s.name == "test.snapshot_hist") found = &s;
  }
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->count, 100u);
  EXPECT_EQ(found->p50, 0.001);
  EXPECT_EQ(found->p95, 0.001);
  EXPECT_EQ(found->p99, 1.0);
}

// TSan coverage: concurrent Observe on one histogram must be data-race free
// (atomic buckets, CAS sum) and lose no observations.
TEST(MetricsRegistryTest, ConcurrentHistogramObserveIsSafe) {
  auto& registry = obs::MetricsRegistry::Instance();
  obs::Histogram& h =
      registry.histogram("test.concurrent_hist", obs::LogBuckets(0.01, 10, 2));
  h.Reset();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Observe(0.01 * static_cast<double>(1 + (t + i) % 7));
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(h.count(), static_cast<uint64_t>(kThreads * kPerThread));
  uint64_t bucket_total = 0;
  for (size_t i = 0; i <= h.bounds().size(); ++i) bucket_total += h.bucket(i);
  EXPECT_EQ(bucket_total, h.count());
}

// --- Flight recorder: the Journal itself ---

TEST(JournalTest, RingBoundEvictsOldestAndKeepsSeq) {
  obs::Journal journal(2, 4);
  EXPECT_TRUE(journal.enabled());
  for (int i = 0; i < 6; ++i) {
    journal.Emit(0, obs::JournalEventKind::kLockWait, i);
  }
  journal.Emit(1, obs::JournalEventKind::kCheckpoint);
  // Ring 0 retains the newest 4 of 6, oldest first, seq preserved.
  const auto& ring0 = journal.ring(0);
  ASSERT_EQ(ring0.size(), 4u);
  for (size_t i = 0; i < ring0.size(); ++i) {
    EXPECT_EQ(ring0[i].seq, i + 2);
    EXPECT_EQ(ring0[i].a, static_cast<int64_t>(i + 2));
  }
  EXPECT_EQ(journal.events_emitted(), 7u);  // evicted events still count
  EXPECT_EQ(journal.Merged().size(), 5u);
}

TEST(JournalTest, ZeroCapacityDisablesRecording) {
  obs::Journal journal(3, 0);
  EXPECT_FALSE(journal.enabled());
  journal.Emit(0, obs::JournalEventKind::kCrash);
  EXPECT_EQ(journal.events_emitted(), 0u);
  EXPECT_TRUE(journal.Merged().empty());
}

TEST(JournalTest, MergedOrderIsTimeThenRingThenSeq) {
  obs::Journal journal(3, 16);
  journal.Emit(2, obs::JournalEventKind::kStatementBegin, 1);  // t=0 ring 2
  journal.Emit(0, obs::JournalEventKind::kFaultPacketDrop);    // t=0 ring 0
  journal.Advance(1.5);
  journal.Emit(1, obs::JournalEventKind::kWalForce);            // t=1.5
  journal.EmitAt(0, 0.75, obs::JournalEventKind::kPhase, 1);    // backdated
  const auto merged = journal.Merged();
  ASSERT_EQ(merged.size(), 4u);
  EXPECT_EQ(merged[0].ring, 0);  // t=0: ring 0 before ring 2
  EXPECT_EQ(merged[1].ring, 2);
  EXPECT_EQ(merged[2].event->kind, obs::JournalEventKind::kPhase);  // t=0.75
  EXPECT_EQ(merged[3].event->kind, obs::JournalEventKind::kWalForce);

  const std::string text = journal.RenderText();
  EXPECT_NE(text.find("journal: 4 events recorded"), std::string::npos);
  EXPECT_NE(text.find("wal_force"), std::string::npos);
  // The tail rendering keeps only the newest events.
  const std::string tail = journal.RenderText(1);
  EXPECT_EQ(tail.find("fault_packet_drop"), std::string::npos);
  EXPECT_NE(tail.find("wal_force"), std::string::npos);
}

TEST(JournalTest, GrowInsertsEmptyRingAtDiskBoundary) {
  obs::Journal journal(4, 8);  // 2 disk + scheduler + host, say
  journal.Emit(2, obs::JournalEventKind::kLockWait, 7);
  journal.Grow(2);  // new disk node at index 2; old ring 2 shifts to 3
  EXPECT_EQ(journal.num_rings(), 5);
  EXPECT_TRUE(journal.ring(2).empty());
  ASSERT_EQ(journal.ring(3).size(), 1u);
  EXPECT_EQ(journal.ring(3)[0].a, 7);
}

// --- Flight recorder: end-to-end machine properties ---

size_t CountOccurrences(const std::string& haystack,
                        const std::string& needle) {
  size_t count = 0;
  for (size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

/// Fresh machine under the current pool width: loaded relation, one
/// mid-query node death with failover, then the journal's canonical JSON.
std::string JournalJsonUnderFaults(const gamma::GammaConfig& config) {
  gamma::GammaMachine machine(config);
  GAMMA_CHECK(machine
                  .CreateRelation("A", wis::WisconsinSchema(),
                                  catalog::PartitionSpec::Hashed(
                                      wis::kUnique1))
                  .ok());
  GAMMA_CHECK(machine.LoadTuples("A", wis::GenerateWisconsin(2000, 7)).ok());
  machine.KillNodeAfterOps(1, 10);
  gamma::SelectQuery query;
  query.relation = "A";
  query.predicate = Predicate::Range(wis::kUnique1, 0, 999);
  query.store_result = true;
  GAMMA_CHECK(machine.RunSelect(query).ok());
  return machine.journal().EventsJson();
}

// The headline determinism contract: the merged journal is byte-identical
// at any GAMMA_HOST_THREADS, even with packet-drop faults and a mid-query
// failover in play.
TEST(JournalPropertyTest, JournalIdenticalAcrossThreadCounts) {
  gamma::GammaConfig config = SmallConfig();
  config.chained_declustering = true;
  config.fault.drop_packet_prob = 0.02;
  const std::string one =
      WithThreads(1, [&] { return JournalJsonUnderFaults(config); });
  const std::string many =
      WithThreads(kManyThreads, [&] { return JournalJsonUnderFaults(config); });
  EXPECT_EQ(one, many);
  // The run actually journaled the interesting events.
  EXPECT_NE(one.find("fault_node_death"), std::string::npos);
  EXPECT_NE(one.find("statement_begin"), std::string::npos);
  EXPECT_NE(one.find("statement_end"), std::string::npos);
}

// Recording costs host memory only: disabling the journal entirely must not
// change any simulated second.
TEST(JournalPropertyTest, JournalChargesZeroSimulatedTime) {
  auto run = [](const char* ring_env) {
    ::setenv("GAMMA_JOURNAL_RING", ring_env, 1);
    gamma::GammaMachine machine(SmallConfig());
    ::unsetenv("GAMMA_JOURNAL_RING");
    GAMMA_CHECK(machine
                    .CreateRelation("A", wis::WisconsinSchema(),
                                    catalog::PartitionSpec::Hashed(
                                        wis::kUnique1))
                    .ok());
    GAMMA_CHECK(
        machine.LoadTuples("A", wis::GenerateWisconsin(2000, 7)).ok());
    gamma::SelectQuery query;
    query.relation = "A";
    query.predicate = Predicate::Range(wis::kUnique2, 100, 299);
    auto result = machine.RunSelect(query);
    GAMMA_CHECK(result.ok());
    return std::make_pair(result->seconds(),
                          machine.journal().events_emitted());
  };
  const auto off = run("0");
  const auto on = run("4096");
  EXPECT_EQ(off.second, 0u);
  EXPECT_GT(on.second, 0u);
  EXPECT_EQ(off.first, on.first);
}

// Crash -> post-mortem dump -> Recover attaches it; the dump's event counts
// agree with the registry's counters for the same window.
TEST(JournalPropertyTest, CrashDumpRoundTripMatchesRegistry) {
  ::setenv("GAMMA_JOURNAL_RING", "100000", 1);  // nothing may evict
  gamma::GammaConfig config = SmallConfig();
  config.fault.drop_packet_prob = 0.05;
  config.enable_logging = true;  // Recover() replays the WAL
  gamma::GammaMachine machine(config);
  ::unsetenv("GAMMA_JOURNAL_RING");
  auto& registry = obs::MetricsRegistry::Instance();
  const uint64_t drops_before =
      registry.CounterValue("fault.packets_dropped");
  GAMMA_CHECK(machine
                  .CreateRelation("A", wis::WisconsinSchema(),
                                  catalog::PartitionSpec::Hashed(
                                      wis::kUnique1))
                  .ok());
  GAMMA_CHECK(machine.LoadTuples("A", wis::GenerateWisconsin(2000, 7)).ok());
  gamma::SelectQuery query;
  query.relation = "A";
  query.predicate = Predicate::Range(wis::kUnique1, 0, 499);
  query.store_result = true;
  ASSERT_TRUE(machine.RunSelect(query).ok());
  const uint64_t drops =
      registry.CounterValue("fault.packets_dropped") - drops_before;

  machine.Crash();
  const auto report = machine.Recover();
  ASSERT_TRUE(report.ok());
  const std::string& dump = report->post_mortem_json;
  ASSERT_FALSE(dump.empty());
  EXPECT_NE(dump.find("\"reason\": \"crash\""), std::string::npos);
  EXPECT_EQ(CountOccurrences(dump, "\"kind\": \"crash\""), 1u);
  EXPECT_EQ(CountOccurrences(dump, "\"kind\": \"statement_begin\""), 1u);
  EXPECT_EQ(CountOccurrences(dump, "\"kind\": \"fault_packet_drop\""),
            static_cast<size_t>(drops));
  // The metrics snapshot rode along.
  EXPECT_NE(dump.find("fault.packets_dropped"), std::string::npos);
  // A second Recover() has no dump to attach.
  EXPECT_EQ(machine.journal().events_emitted(),
            CountOccurrences(machine.journal().EventsJson(), "\"kind\""));

  // DumpJournal exports the same canonical stream to a file.
  const std::string path = ::testing::TempDir() + "/journal_dump_test.json";
  ASSERT_TRUE(machine.DumpJournal(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string contents;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    contents.append(buf, n);
  }
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(CountOccurrences(contents, "\"kind\""),
            machine.journal().events_emitted());
  EXPECT_NE(contents.find("\"kind\": \"recover_end\""), std::string::npos);
}

// --- QUEL surface: explain journal ---

TEST(QuelProfileTest, ExplainJournalAppendsTail) {
  gamma::GammaMachine machine(SmallConfig());
  GAMMA_CHECK(machine
                  .CreateRelation("A", wis::WisconsinSchema(),
                                  catalog::PartitionSpec::Hashed(
                                      wis::kUnique1))
                  .ok());
  GAMMA_CHECK(machine.LoadTuples("A", wis::GenerateWisconsin(1000, 9)).ok());
  quel::Session session(&machine);
  ASSERT_TRUE(session.Execute("range of t is A").ok());

  const auto result = session.Execute(
      "explain journal retrieve (t.all) where t.unique1 >= 0 and "
      "t.unique1 <= 99");
  ASSERT_TRUE(result.ok());
  EXPECT_NE(result->explain.find("journal:"), std::string::npos);
  EXPECT_NE(result->explain.find("statement_end"), std::string::npos);
  EXPECT_NE(result->explain.find("select"), std::string::npos);

  EXPECT_TRUE(session.Execute("explain journal range of t is A")
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace gammadb
