// Failure-injection tests: every public API must turn bad input into a
// descriptive Status, never a crash or a silent wrong answer, and must leave
// the machine usable afterwards.

#include <gtest/gtest.h>

#include "gamma/machine.h"
#include "storage/disk.h"
#include "teradata/machine.h"
#include "test_util.h"
#include "wisconsin/wisconsin.h"

namespace gammadb {
namespace {

namespace wis = gammadb::wisconsin;
using exec::Predicate;

class GammaErrorTest : public ::testing::Test {
 protected:
  GammaErrorTest() : machine_(Config()) {
    GAMMA_CHECK(machine_
                    .CreateRelation("A", wis::WisconsinSchema(),
                                    catalog::PartitionSpec::Hashed(
                                        wis::kUnique1))
                    .ok());
    GAMMA_CHECK(
        machine_.LoadTuples("A", wis::GenerateWisconsin(500, 1)).ok());
  }
  static gamma::GammaConfig Config() {
    gamma::GammaConfig config;
    config.num_disk_nodes = 2;
    config.num_diskless_nodes = 0;  // Remote joins impossible
    return config;
  }
  gamma::GammaMachine machine_;
};

TEST_F(GammaErrorTest, UnknownRelationEverywhere) {
  gamma::SelectQuery select;
  select.relation = "nope";
  EXPECT_TRUE(machine_.RunSelect(select).status().IsNotFound());

  gamma::JoinQuery join;
  join.outer = "A";
  join.inner = "nope";
  join.outer_attr = 0;
  join.inner_attr = 0;
  join.mode = gamma::JoinMode::kLocal;
  EXPECT_TRUE(machine_.RunJoin(join).status().IsNotFound());

  gamma::AggregateQuery agg;
  agg.relation = "nope";
  agg.value_attr = 0;
  EXPECT_TRUE(machine_.RunAggregate(agg).status().IsNotFound());

  EXPECT_TRUE(machine_.ReadRelation("nope").status().IsNotFound());
  EXPECT_TRUE(machine_.CountTuples("nope").status().IsNotFound());
}

TEST_F(GammaErrorTest, DuplicateRelationRejected) {
  EXPECT_FALSE(machine_
                   .CreateRelation("A", wis::WisconsinSchema(),
                                   catalog::PartitionSpec::RoundRobin())
                   .ok());
}

TEST_F(GammaErrorTest, SchemaMismatchOnLoadAndAppend) {
  const std::vector<std::vector<uint8_t>> bad = {{1, 2, 3}};
  EXPECT_TRUE(machine_.LoadTuples("A", bad).IsInvalidArgument());
  gamma::AppendQuery append{"A", {1, 2, 3}};
  EXPECT_TRUE(machine_.RunAppend(append).status().IsInvalidArgument());
  EXPECT_EQ(*machine_.CountTuples("A"), 500u);  // nothing leaked in
}

TEST_F(GammaErrorTest, AttributeRangeChecks) {
  gamma::JoinQuery join;
  join.outer = "A";
  join.inner = "A";
  join.outer_attr = 99;
  join.inner_attr = 0;
  join.mode = gamma::JoinMode::kLocal;
  EXPECT_TRUE(machine_.RunJoin(join).status().IsInvalidArgument());

  gamma::AggregateQuery agg;
  agg.relation = "A";
  agg.value_attr = 99;
  EXPECT_TRUE(machine_.RunAggregate(agg).status().IsInvalidArgument());
  agg.value_attr = 0;
  agg.group_attr = 99;
  EXPECT_TRUE(machine_.RunAggregate(agg).status().IsInvalidArgument());

  gamma::DeleteQuery del{"A", -1, 0};
  EXPECT_TRUE(machine_.RunDelete(del).status().IsInvalidArgument());

  gamma::ModifyQuery modify{"A", 0, 1, 99, 0};
  EXPECT_TRUE(machine_.RunModify(modify).status().IsInvalidArgument());
  // Modifying a string attribute is not supported.
  gamma::ModifyQuery strings{"A", wis::kUnique1, 1, wis::kStringU1, 0};
  EXPECT_TRUE(machine_.RunModify(strings).status().IsInvalidArgument());
}

TEST_F(GammaErrorTest, RemoteJoinWithoutDisklessNodes) {
  gamma::JoinQuery join;
  join.outer = "A";
  join.inner = "A";
  join.outer_attr = wis::kUnique2;
  join.inner_attr = wis::kUnique2;
  join.mode = gamma::JoinMode::kRemote;
  EXPECT_TRUE(machine_.RunJoin(join).status().IsInvalidArgument());
  // Local mode still works afterwards.
  join.mode = gamma::JoinMode::kLocal;
  const auto result = machine_.RunJoin(join);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->result_tuples, 500u);  // self-join on a unique attr
}

TEST_F(GammaErrorTest, BuildIndexValidation) {
  EXPECT_TRUE(machine_.BuildIndex("nope", 0, true).IsNotFound());
  EXPECT_TRUE(machine_.BuildIndex("A", 99, true).IsInvalidArgument());
  ASSERT_TRUE(machine_.BuildIndex("A", wis::kUnique2, false).ok());
  // Clustered after non-clustered would invalidate rids: rejected.
  EXPECT_FALSE(machine_.BuildIndex("A", wis::kUnique1, true).ok());
}

TEST_F(GammaErrorTest, DeleteAndModifyMissingKeyAreNoOps) {
  gamma::DeleteQuery del{"A", wis::kUnique1, 99999};
  const auto deleted = machine_.RunDelete(del);
  ASSERT_TRUE(deleted.ok());
  EXPECT_EQ(deleted->result_tuples, 0u);
  gamma::ModifyQuery modify{"A", wis::kUnique1, 99999, wis::kTen, 1};
  const auto modified = machine_.RunModify(modify);
  ASSERT_TRUE(modified.ok());
  EXPECT_EQ(modified->result_tuples, 0u);
  EXPECT_EQ(*machine_.CountTuples("A"), 500u);
}

TEST(TeradataErrorTest, ValidationMirrorsGamma) {
  teradata::TeradataMachine machine{teradata::TeradataConfig{}};
  EXPECT_TRUE(machine
                  .CreateRelation("A", wis::WisconsinSchema(),
                                  /*primary_key_attr=*/99)
                  .IsInvalidArgument());
  ASSERT_TRUE(
      machine.CreateRelation("A", wis::WisconsinSchema(), wis::kUnique1)
          .ok());
  EXPECT_FALSE(
      machine.CreateRelation("A", wis::WisconsinSchema(), wis::kUnique1)
          .ok());
  ASSERT_TRUE(
      machine.LoadTuples("A", wis::GenerateWisconsin(500, 1)).ok());

  EXPECT_TRUE(machine.LoadTuples("A", {{1, 2}}).IsInvalidArgument());
  EXPECT_TRUE(machine.BuildSecondaryIndex("A", 99).IsInvalidArgument());
  EXPECT_TRUE(machine.BuildSecondaryIndex("nope", 0).IsNotFound());

  teradata::TdSelectQuery select;
  select.relation = "nope";
  EXPECT_TRUE(machine.RunSelect(select).status().IsNotFound());

  teradata::TdJoinQuery join;
  join.outer = "A";
  join.inner = "A";
  join.outer_attr = 99;
  join.inner_attr = 0;
  EXPECT_TRUE(machine.RunJoin(join).status().IsInvalidArgument());

  teradata::TdAppendQuery append{"A", {1}};
  EXPECT_TRUE(machine.RunAppend(append).status().IsInvalidArgument());
  teradata::TdDeleteQuery del{"A", -1, 0};
  EXPECT_TRUE(machine.RunDelete(del).status().IsInvalidArgument());
  teradata::TdModifyQuery modify{"A", 0, 1, 99, 0};
  EXPECT_TRUE(machine.RunModify(modify).status().IsInvalidArgument());

  // Machine still fully functional after the barrage.
  select.relation = "A";
  select.predicate = Predicate::Range(wis::kUnique1, 0, 49);
  select.store_result = false;
  const auto result = machine.RunSelect(select);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->result_tuples, 50u);
}

TEST(DiskBoundsTest, OutOfRangeAccessIsDescriptive) {
  storage::SimulatedDisk disk(64);
  std::vector<uint8_t> buf(64, 0);
  const uint32_t page = disk.Allocate().value();
  ASSERT_TRUE(disk.Read(page, buf.data()).ok());

  const Status read = disk.Read(page + 1, buf.data());
  EXPECT_TRUE(read.IsOutOfRange());
  EXPECT_NE(read.message().find("read"), std::string::npos);
  const Status write = disk.Write(page + 1, buf.data());
  EXPECT_TRUE(write.IsOutOfRange());
  EXPECT_NE(write.message().find("write"), std::string::npos);
  EXPECT_TRUE(disk.Read(0xFFFFFFFF, buf.data()).IsOutOfRange());

  // The failures left the disk usable.
  EXPECT_TRUE(disk.Write(page, buf.data()).ok());
}

TEST(DiskBoundsTest, AllocateStopsAtCapacity) {
  storage::SimulatedDisk disk(64);  // smallest pages: capacity is page count
  for (uint32_t i = 0; i < storage::SimulatedDisk::kMaxPages; ++i) {
    ASSERT_TRUE(disk.Allocate().ok());
  }
  const auto overflow = disk.Allocate();
  ASSERT_FALSE(overflow.ok());
  EXPECT_TRUE(overflow.status().IsResourceExhausted());
  EXPECT_EQ(disk.num_pages(), storage::SimulatedDisk::kMaxPages);
}

TEST(TeradataErrorTest, DeleteMissingKeyIsNoOp) {
  teradata::TeradataMachine machine{teradata::TeradataConfig{}};
  ASSERT_TRUE(
      machine.CreateRelation("A", wis::WisconsinSchema(), wis::kUnique1)
          .ok());
  ASSERT_TRUE(machine.LoadTuples("A", wis::GenerateWisconsin(100, 1)).ok());
  teradata::TdDeleteQuery del{"A", wis::kUnique1, 424242};
  const auto result = machine.RunDelete(del);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->result_tuples, 0u);
  EXPECT_EQ(*machine.CountTuples("A"), 100u);
}

}  // namespace
}  // namespace gammadb
