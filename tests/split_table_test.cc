// Unit tests for split tables, packet accounting, bit-vector filters and
// the join hash table.

#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "exec/bit_vector_filter.h"
#include "exec/hash_table.h"
#include "exec/split_table.h"
#include "test_util.h"

namespace gammadb::exec {
namespace {

using gammadb::testing::MiniSchema;
using gammadb::testing::MiniTuple;

class SplitTableTest : public ::testing::Test {
 protected:
  SplitTableTest() : tracker_(sim::MachineParams::GammaDefaults(), 4) {
    tracker_.BeginPhase("p", sim::PhaseKind::kPipelined);
  }
  std::vector<SplitTable::Destination> Dests(int n) {
    received_.assign(static_cast<size_t>(n), {});
    std::vector<SplitTable::Destination> dests;
    for (int i = 0; i < n; ++i) {
      dests.push_back(SplitTable::Destination{
          i, [this, i](std::span<const uint8_t> t) {
            received_[static_cast<size_t>(i)].emplace_back(t.begin(),
                                                           t.end());
          }});
    }
    return dests;
  }
  sim::QueryMetrics Finish() {
    tracker_.EndPhase();
    return tracker_.Finish();
  }

  sim::CostTracker tracker_;
  std::vector<std::vector<std::vector<uint8_t>>> received_;
};

TEST_F(SplitTableTest, HashRoutingIsDeterministicByKey) {
  SplitTable split(0, &MiniSchema(), RouteSpec::HashAttr(0, 42), Dests(4),
                   &tracker_);
  for (int rep = 0; rep < 3; ++rep) {
    for (int32_t id = 0; id < 100; ++id) split.Send(MiniTuple(id, 0));
  }
  split.Close();
  // Every copy of the same key landed at the same destination.
  std::map<int32_t, int> homes;
  uint64_t total = 0;
  for (int d = 0; d < 4; ++d) {
    for (const auto& tuple : received_[static_cast<size_t>(d)]) {
      const catalog::TupleView view(&MiniSchema(), tuple);
      const int32_t id = view.GetInt(0);
      auto [it, inserted] = homes.emplace(id, d);
      if (!inserted) {
        EXPECT_EQ(it->second, d);
      }
      ++total;
    }
  }
  EXPECT_EQ(total, 300u);
  EXPECT_EQ(homes.size(), 100u);
}

TEST_F(SplitTableTest, RoundRobinBalancesExactly) {
  SplitTable split(0, &MiniSchema(), RouteSpec::RoundRobin(), Dests(4),
                   &tracker_);
  for (int32_t i = 0; i < 100; ++i) split.Send(MiniTuple(i, 0));
  split.Close();
  EXPECT_EQ(received_[0].size(), 25u);
  EXPECT_EQ(received_[3].size(), 25u);
}

TEST_F(SplitTableTest, RangeRouting) {
  SplitTable split(0, &MiniSchema(), RouteSpec::RangeAttr(0, {10, 20, 30}),
                   Dests(4), &tracker_);
  split.Send(MiniTuple(5, 0));
  split.Send(MiniTuple(10, 0));
  split.Send(MiniTuple(25, 0));
  split.Send(MiniTuple(1000, 0));
  split.Close();
  EXPECT_EQ(received_[0].size(), 1u);
  EXPECT_EQ(received_[1].size(), 1u);
  EXPECT_EQ(received_[2].size(), 1u);
  EXPECT_EQ(received_[3].size(), 1u);
}

TEST_F(SplitTableTest, RangeRoutingEmptyBoundaries) {
  // No boundaries = one range; everything lands on destination 0 instead
  // of tripping over an empty upper_bound.
  SplitTable split(0, &MiniSchema(), RouteSpec::RangeAttr(0, {}), Dests(4),
                   &tracker_);
  for (int32_t i = -5; i < 5; ++i) split.Send(MiniTuple(i, 0));
  split.Close();
  EXPECT_EQ(received_[0].size(), 10u);
  EXPECT_EQ(received_[1].size(), 0u);
  EXPECT_EQ(received_[3].size(), 0u);
}

TEST_F(SplitTableTest, RangeRoutingCollapsesDuplicateBoundaries) {
  // {10, 10, 20} describes the same three ranges as {10, 20}: a key equal
  // to the duplicated boundary must go one destination forward (not two),
  // and keys past it must not shift a destination too far.
  SplitTable split(0, &MiniSchema(), RouteSpec::RangeAttr(0, {10, 10, 20}),
                   Dests(3), &tracker_);
  split.Send(MiniTuple(5, 0));    // first range (< 10)
  split.Send(MiniTuple(10, 0));   // second range [10, 20)
  split.Send(MiniTuple(99, 0));   // last range (>= 20)
  split.Close();
  EXPECT_EQ(received_[0].size(), 1u);
  EXPECT_EQ(received_[1].size(), 1u);
  EXPECT_EQ(received_[2].size(), 1u);
}

TEST_F(SplitTableTest, BucketMapRoutingHonorsMap) {
  // 8 virtual buckets folded onto 2 of 3 destinations: destination 1 is
  // named by no bucket and must stay empty, and every copy of a key lands
  // where its bucket points.
  const std::vector<int32_t> map = {0, 2, 0, 2, 0, 2, 0, 2};
  SplitTable split(0, &MiniSchema(), RouteSpec::BucketMap(0, 0x5A17, map),
                   Dests(3), &tracker_);
  for (int rep = 0; rep < 2; ++rep) {
    for (int32_t id = 0; id < 64; ++id) split.Send(MiniTuple(id, 0));
  }
  split.Close();
  EXPECT_EQ(received_[1].size(), 0u);
  EXPECT_EQ(received_[0].size() + received_[2].size(), 128u);
  std::map<int32_t, size_t> homes;
  for (const size_t d : {size_t{0}, size_t{2}}) {
    for (const auto& tuple : received_[d]) {
      const catalog::TupleView view(&MiniSchema(), tuple);
      auto [it, inserted] = homes.emplace(view.GetInt(0), d);
      if (!inserted) EXPECT_EQ(it->second, d);
    }
  }
  EXPECT_EQ(homes.size(), 64u);
}

TEST_F(SplitTableTest, BucketMapSingleEntryDegeneratesToSingle) {
  SplitTable split(0, &MiniSchema(), RouteSpec::BucketMap(0, 7, {1}),
                   Dests(2), &tracker_);
  for (int32_t id = 0; id < 10; ++id) split.Send(MiniTuple(id, 0));
  split.Close();
  EXPECT_EQ(received_[1].size(), 10u);
}

TEST_F(SplitTableTest, PacketAccountingMatchesBytes) {
  // 24-byte tuples into a 2048-byte payload: 100 tuples to one remote
  // destination = 2400 bytes = 1 full packet + 1 partial at Close.
  SplitTable split(0, &MiniSchema(), RouteSpec::Single(1), Dests(2),
                   &tracker_);
  for (int32_t i = 0; i < 100; ++i) split.Send(MiniTuple(i, 0));
  split.Close();
  const auto metrics = Finish();
  const auto total = metrics.Totals();
  EXPECT_EQ(total.packets_sent, 2u);
  EXPECT_EQ(total.bytes_sent, 100u * MiniSchema().tuple_size());
  EXPECT_EQ(total.control_msgs, 2u);  // one EOS per destination
}

TEST_F(SplitTableTest, SameNodePacketsShortCircuit) {
  SplitTable split(0, &MiniSchema(), RouteSpec::Single(0), Dests(2),
                   &tracker_);
  for (int32_t i = 0; i < 200; ++i) split.Send(MiniTuple(i, 0));
  split.Close();
  const auto metrics = Finish();
  EXPECT_NEAR(metrics.ShortCircuitFraction(), 1.0, 1e-9);
  EXPECT_EQ(metrics.Totals().packets_sent, 0u);
}

TEST_F(SplitTableTest, ShortCircuitFractionIsOneOverN) {
  // §5.2.1: with n consumers aligned with n producers, 1/n of a producer's
  // round-robin traffic stays local.
  SplitTable split(2, &MiniSchema(), RouteSpec::RoundRobin(), Dests(4),
                   &tracker_);
  for (int32_t i = 0; i < 4000; ++i) split.Send(MiniTuple(i, 0));
  split.Close();
  const auto metrics = Finish();
  const auto total = metrics.Totals();
  const double fraction =
      static_cast<double>(total.bytes_short_circuited) /
      static_cast<double>(total.bytes_short_circuited + total.bytes_sent);
  EXPECT_NEAR(fraction, 0.25, 0.01);
}

TEST_F(SplitTableTest, BitFilterDropsNonMatching) {
  BitVectorFilter filter(1 << 16, 77);
  for (int32_t key = 0; key < 50; ++key) filter.Insert(key);
  SplitTable split(0, &MiniSchema(), RouteSpec::HashAttr(0, 42), Dests(2),
                   &tracker_, &filter, /*filter_attr=*/0);
  for (int32_t id = 0; id < 1000; ++id) split.Send(MiniTuple(id, 0));
  split.Close();
  // All 50 building keys pass; nearly all of the rest are dropped.
  EXPECT_GE(split.sent(), 50u);
  EXPECT_LT(split.sent(), 100u);
  EXPECT_EQ(split.sent() + split.filtered(), 1000u);
}

TEST(BitVectorFilterTest, NoFalseNegatives) {
  BitVectorFilter filter(4096, 3);
  for (int32_t key = 0; key < 300; ++key) filter.Insert(key * 7);
  for (int32_t key = 0; key < 300; ++key) {
    EXPECT_TRUE(filter.MayContain(key * 7));
  }
  EXPECT_GT(filter.FillFactor(), 0.0);
  EXPECT_LT(filter.FillFactor(), 0.2);
}

TEST(JoinHashTableTest, InsertProbeRoundTrip) {
  JoinHashTable table(1 << 20);
  const auto t1 = MiniTuple(1, 10);
  const auto t2 = MiniTuple(1, 20);
  EXPECT_TRUE(table.Insert(1, t1));
  EXPECT_TRUE(table.Insert(1, t2));
  EXPECT_TRUE(table.Insert(2, MiniTuple(2, 30)));
  int matches = 0;
  table.Probe(1, [&](std::span<const uint8_t>) { ++matches; });
  EXPECT_EQ(matches, 2);
  table.Probe(99, [&](std::span<const uint8_t>) { ++matches; });
  EXPECT_EQ(matches, 2);
}

TEST(JoinHashTableTest, CapacityEnforced) {
  const uint64_t tuple_cost =
      MiniSchema().tuple_size() + JoinHashTable::kPerEntryOverhead;
  JoinHashTable table(tuple_cost * 10);
  int inserted = 0;
  for (int32_t i = 0; i < 100; ++i) {
    if (table.Insert(i, MiniTuple(i, 0))) ++inserted;
  }
  EXPECT_EQ(inserted, 10);
  EXPECT_EQ(table.size(), 10u);
  table.InsertUnchecked(999, MiniTuple(999, 0));
  EXPECT_EQ(table.size(), 11u);
  EXPECT_GT(table.bytes_used(), table.capacity_bytes());
}

TEST(JoinHashTableTest, ExtractIfRemovesMatching) {
  JoinHashTable table(1 << 20);
  for (int32_t i = 0; i < 100; ++i) table.Insert(i, MiniTuple(i, 0));
  std::set<int32_t> extracted;
  const uint64_t removed = table.ExtractIf(
      [](int32_t key) { return key % 2 == 0; },
      [&](int32_t key, std::span<const uint8_t>) { extracted.insert(key); });
  EXPECT_EQ(removed, 50u);
  EXPECT_EQ(table.size(), 50u);
  EXPECT_TRUE(extracted.contains(42));
  int matches = 0;
  table.Probe(42, [&](std::span<const uint8_t>) { ++matches; });
  EXPECT_EQ(matches, 0);
  table.Probe(43, [&](std::span<const uint8_t>) { ++matches; });
  EXPECT_EQ(matches, 1);
}

TEST(JoinHashTableTest, ClearResetsAccounting) {
  JoinHashTable table(1 << 20);
  for (int32_t i = 0; i < 10; ++i) table.Insert(i, MiniTuple(i, 0));
  table.Clear();
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.bytes_used(), 0u);
}

}  // namespace
}  // namespace gammadb::exec
