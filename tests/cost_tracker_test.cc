// Unit tests for the hardware model and cost tracker: phase timing rules,
// packet short-circuiting, ring limits, and scheduling costs.

#include <gtest/gtest.h>

#include "sim/cost_tracker.h"
#include "sim/hardware.h"

namespace gammadb::sim {
namespace {

MachineParams Gamma() { return MachineParams::GammaDefaults(); }

TEST(HardwareTest, GammaDefaultsMatchPaper) {
  const MachineParams hw = Gamma();
  EXPECT_DOUBLE_EQ(hw.cpu.mips, 0.6);
  EXPECT_NEAR(hw.net.nic_bytes_per_sec, 500000.0, 1.0);   // 4 Mbit/s Unibus
  EXPECT_NEAR(hw.net.ring_bytes_per_sec, 1e7, 1.0);       // 80 Mbit/s ring
  EXPECT_EQ(hw.net.packet_payload_bytes, 2048u);
  EXPECT_NEAR(hw.net.control_msg_sec, 0.007, 1e-9);
  EXPECT_EQ(hw.net.sched_msgs_per_operator_per_node, 4u);
}

TEST(HardwareTest, TeradataSlowerPaths) {
  const MachineParams td = MachineParams::TeradataDefaults();
  // Interpreted predicate evaluation: far longer per-tuple path than
  // Gamma's compiled predicates.
  EXPECT_GT(td.cost.instr_per_attr_compare,
            Gamma().cost.instr_per_attr_compare * 5);
  EXPECT_GT(td.cost.instr_per_tuple_store,
            Gamma().cost.instr_per_tuple_store * 5);
  EXPECT_GT(td.disk.positioning_sec, Gamma().disk.positioning_sec);
}

TEST(CostTrackerTest, PipelinedPhaseTakesBottleneckResource) {
  CostTracker tracker(Gamma(), 2);
  tracker.BeginPhase("p", PhaseKind::kPipelined);
  tracker.ChargeCpu(0, 0.6e6);      // 1 s of CPU
  tracker.ChargeSerialSec(0, 0.1);  // plus 0.1 s serial
  tracker.EndPhase();
  const QueryMetrics metrics = tracker.Finish();
  ASSERT_EQ(metrics.phases.size(), 1u);
  EXPECT_NEAR(metrics.phases[0].elapsed_sec, 1.1, 1e-9);
  EXPECT_EQ(metrics.phases[0].bottleneck_node, 0);
  EXPECT_EQ(metrics.phases[0].bottleneck_resource, Resource::kCpu);
}

TEST(CostTrackerTest, SequentialPhaseSumsResources) {
  CostTracker tracker(Gamma(), 1);
  tracker.BeginPhase("p", PhaseKind::kSequential);
  tracker.ChargeCpu(0, 0.6e6);                      // 1 s CPU
  tracker.ChargeDiskRead(0, 4096, /*sequential=*/false);  // ~18 ms
  tracker.EndPhase();
  const QueryMetrics metrics = tracker.Finish();
  EXPECT_GT(metrics.phases[0].elapsed_sec, 1.01);
}

TEST(CostTrackerTest, SlowestNodeSetsPhaseTime) {
  CostTracker tracker(Gamma(), 4);
  tracker.BeginPhase("p", PhaseKind::kPipelined);
  for (int node = 0; node < 4; ++node) {
    tracker.ChargeCpu(node, (node + 1) * 0.6e6);
  }
  tracker.EndPhase();
  const QueryMetrics metrics = tracker.Finish();
  EXPECT_NEAR(metrics.phases[0].elapsed_sec, 4.0, 1e-9);
  EXPECT_EQ(metrics.phases[0].bottleneck_node, 3);
}

TEST(CostTrackerTest, ShortCircuitSkipsNicAndRing) {
  CostTracker tracker(Gamma(), 2);
  tracker.BeginPhase("p", PhaseKind::kPipelined);
  tracker.ChargeDataPacket(0, 0, 2048);
  tracker.EndPhase();
  QueryMetrics metrics = tracker.Finish();
  const NodeUsage total = metrics.Totals();
  EXPECT_EQ(total.packets_short_circuited, 1u);
  EXPECT_EQ(total.packets_sent, 0u);
  EXPECT_EQ(metrics.phases[0].ring_bytes, 0u);
  EXPECT_DOUBLE_EQ(total.net_sec, 0.0);
  EXPECT_NEAR(metrics.ShortCircuitFraction(), 1.0, 1e-9);
}

TEST(CostTrackerTest, RemotePacketChargesBothNicsAndRing) {
  CostTracker tracker(Gamma(), 2);
  tracker.BeginPhase("p", PhaseKind::kPipelined);
  tracker.ChargeDataPacket(0, 1, 2048);
  tracker.EndPhase();
  QueryMetrics metrics = tracker.Finish();
  ASSERT_EQ(metrics.phases[0].per_node.size(), 2u);
  const double nic_sec = 2048.0 / Gamma().net.nic_bytes_per_sec;
  EXPECT_NEAR(metrics.phases[0].per_node[0].net_sec, nic_sec, 1e-9);
  EXPECT_NEAR(metrics.phases[0].per_node[1].net_sec, nic_sec, 1e-9);
  EXPECT_EQ(metrics.phases[0].ring_bytes, 2048u);
}

TEST(CostTrackerTest, ForcedNetworkPacketOnSameNode) {
  // Teradata's result redistribution never short-circuits (§4).
  CostTracker tracker(MachineParams::TeradataDefaults(), 2);
  tracker.BeginPhase("p", PhaseKind::kPipelined);
  tracker.ChargeDataPacket(0, 0, 2048, /*force_network=*/true);
  tracker.EndPhase();
  QueryMetrics metrics = tracker.Finish();
  const NodeUsage total = metrics.Totals();
  EXPECT_EQ(total.packets_short_circuited, 0u);
  EXPECT_EQ(total.packets_sent, 1u);
  EXPECT_GT(total.net_sec, 0.0);
  EXPECT_EQ(metrics.phases[0].ring_bytes, 2048u);
}

TEST(CostTrackerTest, RingCanBeTheBottleneck) {
  // Many node pairs each send little: per-node NIC time is small but the
  // shared ring must carry the sum.
  MachineParams hw = Gamma();
  hw.net.ring_bytes_per_sec = 1000.0;  // pathologically slow ring
  CostTracker tracker(hw, 8);
  tracker.BeginPhase("p", PhaseKind::kPipelined);
  for (int src = 0; src < 4; ++src) {
    tracker.ChargeDataPacket(src, src + 4, 2048);
  }
  tracker.EndPhase();
  QueryMetrics metrics = tracker.Finish();
  EXPECT_TRUE(metrics.phases[0].ring_limited);
  EXPECT_NEAR(metrics.phases[0].elapsed_sec, 4 * 2048 / 1000.0, 1e-9);
}

TEST(CostTrackerTest, SchedulingSerializedAtScheduler) {
  // §6.2.3: 4 messages per operator per node at 7 ms each; 2 operators on
  // 8 nodes = 64 messages ~ 0.45 s.
  CostTracker tracker(Gamma(), 8);
  tracker.ChargeScheduling(2, 8);
  const QueryMetrics metrics = tracker.Finish();
  EXPECT_EQ(metrics.scheduling_msgs, 64u);
  EXPECT_NEAR(metrics.scheduling_sec, 64 * 0.007, 1e-9);
}

TEST(CostTrackerTest, TotalSumsSchedulingAndPhases) {
  CostTracker tracker(Gamma(), 1);
  tracker.ChargeScheduling(1, 1);
  tracker.BeginPhase("a", PhaseKind::kPipelined);
  tracker.ChargeCpu(0, 0.6e6);
  tracker.EndPhase();
  tracker.BeginPhase("b", PhaseKind::kPipelined);
  tracker.ChargeCpu(0, 1.2e6);
  tracker.EndPhase();
  const QueryMetrics metrics = tracker.Finish();
  EXPECT_NEAR(metrics.TotalSec(), 4 * 0.007 + 1.0 + 2.0, 1e-9);
}

TEST(CostTrackerTest, BlockingControlMessageAddsSerialLatency) {
  CostTracker tracker(Gamma(), 2);
  tracker.BeginPhase("p", PhaseKind::kSequential);
  tracker.ChargeControlMessage(0, 1, /*blocking=*/true);
  tracker.EndPhase();
  const QueryMetrics metrics = tracker.Finish();
  EXPECT_GE(metrics.phases[0].elapsed_sec, 0.007);
}

TEST(CostTrackerTest, DiskChargesCountPages) {
  CostTracker tracker(Gamma(), 1);
  tracker.BeginPhase("p", PhaseKind::kPipelined);
  tracker.ChargeDiskRead(0, 4096, true);
  tracker.ChargeDiskRead(0, 4096, false);
  tracker.ChargeDiskWrite(0, 4096, true);
  tracker.EndPhase();
  const NodeUsage total = tracker.Finish().Totals();
  EXPECT_EQ(total.pages_read, 2u);
  EXPECT_EQ(total.pages_written, 1u);
  EXPECT_EQ(total.seq_page_ios, 2u);
  EXPECT_EQ(total.rand_page_ios, 1u);
}

}  // namespace
}  // namespace gammadb::sim
