// Unit and property tests for the slotted page.

#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "storage/page.h"

namespace gammadb::storage {
namespace {

std::vector<uint8_t> Record(uint8_t fill, size_t size) {
  return std::vector<uint8_t>(size, fill);
}

class PageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    buffer_.resize(4096);
    SlottedPage::Initialize(buffer_.data(), 4096);
  }
  SlottedPage Page() { return SlottedPage(buffer_.data(), 4096); }
  std::vector<uint8_t> buffer_;
};

TEST_F(PageTest, FreshPageIsEmpty) {
  auto page = Page();
  EXPECT_EQ(page.slot_count(), 0);
  EXPECT_EQ(page.live_count(), 0);
  EXPECT_GT(page.FreeSpace(), 4000u);
}

TEST_F(PageTest, InsertAndGetRoundTrip) {
  auto page = Page();
  const auto record = Record(0xAB, 100);
  const auto slot = page.Insert(record);
  ASSERT_TRUE(slot.has_value());
  const auto got = page.Get(*slot);
  ASSERT_EQ(got.size(), 100u);
  EXPECT_EQ(got[0], 0xAB);
  EXPECT_EQ(page.live_count(), 1);
}

TEST_F(PageTest, RejectsEmptyRecord) {
  auto page = Page();
  EXPECT_FALSE(page.Insert({}).has_value());
}

TEST_F(PageTest, FillsUntilFull) {
  auto page = Page();
  int inserted = 0;
  while (page.Insert(Record(1, 100)).has_value()) ++inserted;
  // 4096 bytes / (100 + 4-byte slot) ~ 39 records.
  EXPECT_GE(inserted, 35);
  EXPECT_LE(inserted, 40);
  EXPECT_LT(page.FreeSpace(), 104u);
}

TEST_F(PageTest, DeleteTombstonesSlot) {
  auto page = Page();
  const auto slot0 = *page.Insert(Record(1, 50));
  const auto slot1 = *page.Insert(Record(2, 50));
  EXPECT_TRUE(page.Delete(slot0));
  EXPECT_FALSE(page.IsLive(slot0));
  EXPECT_TRUE(page.Get(slot0).empty());
  // Neighbouring slot unaffected, slot ids stable.
  ASSERT_EQ(page.Get(slot1).size(), 50u);
  EXPECT_EQ(page.Get(slot1)[0], 2);
  EXPECT_FALSE(page.Delete(slot0));  // double delete fails
}

TEST_F(PageTest, DeleteMakesSpaceReusableViaCompaction) {
  auto page = Page();
  std::vector<uint16_t> slots;
  while (true) {
    auto slot = page.Insert(Record(3, 100));
    if (!slot.has_value()) break;
    slots.push_back(*slot);
  }
  // Free every other record, then insert records that only fit after
  // compaction reclaims the dead bytes.
  for (size_t i = 0; i < slots.size(); i += 2) page.Delete(slots[i]);
  int reinserted = 0;
  while (page.Insert(Record(4, 90)).has_value()) ++reinserted;
  EXPECT_GE(reinserted, static_cast<int>(slots.size() / 2) - 2);
}

TEST_F(PageTest, UpdateInPlaceSameSize) {
  auto page = Page();
  const auto slot = *page.Insert(Record(5, 64));
  EXPECT_TRUE(page.Update(slot, Record(6, 64)));
  EXPECT_EQ(page.Get(slot)[0], 6);
  EXPECT_EQ(page.live_count(), 1);
}

TEST_F(PageTest, UpdateGrowRelocatesWithinPage) {
  auto page = Page();
  const auto slot = *page.Insert(Record(7, 64));
  page.Insert(Record(8, 64));
  EXPECT_TRUE(page.Update(slot, Record(9, 200)));
  ASSERT_EQ(page.Get(slot).size(), 200u);
  EXPECT_EQ(page.Get(slot)[0], 9);
}

TEST_F(PageTest, UpdateFailsWhenTooLarge) {
  auto page = Page();
  const auto slot = *page.Insert(Record(1, 64));
  EXPECT_FALSE(page.Update(slot, Record(2, 8000)));
  // Old record is preserved on failure.
  ASSERT_EQ(page.Get(slot).size(), 64u);
  EXPECT_EQ(page.Get(slot)[0], 1);
}

TEST(PageSizesTest, MinAndMaxPageSizes) {
  for (uint32_t page_size : {64u, 2048u, 4096u, 32768u}) {
    std::vector<uint8_t> buffer(page_size);
    SlottedPage::Initialize(buffer.data(), page_size);
    SlottedPage page(buffer.data(), page_size);
    EXPECT_TRUE(page.Insert(Record(1, 16)).has_value()) << page_size;
  }
}

// Property test: random insert/delete/update workloads stay consistent with
// a std::map oracle, across page sizes.
class PagePropertyTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(PagePropertyTest, MatchesOracleUnderRandomWorkload) {
  const uint32_t page_size = GetParam();
  std::vector<uint8_t> buffer(page_size);
  SlottedPage::Initialize(buffer.data(), page_size);
  SlottedPage page(buffer.data(), page_size);

  Rng rng(page_size);
  std::map<uint16_t, std::vector<uint8_t>> oracle;
  for (int step = 0; step < 2000; ++step) {
    const uint64_t action = rng.Uniform(10);
    if (action < 5) {  // insert
      const size_t size = 1 + rng.Uniform(page_size / 8);
      const auto record = Record(static_cast<uint8_t>(rng.Uniform(256)), size);
      const auto slot = page.Insert(record);
      if (slot.has_value()) oracle[*slot] = record;
    } else if (action < 8 && !oracle.empty()) {  // delete
      auto it = oracle.begin();
      std::advance(it, static_cast<long>(rng.Uniform(oracle.size())));
      EXPECT_TRUE(page.Delete(it->first));
      oracle.erase(it);
    } else if (!oracle.empty()) {  // update
      auto it = oracle.begin();
      std::advance(it, static_cast<long>(rng.Uniform(oracle.size())));
      const size_t size = 1 + rng.Uniform(page_size / 8);
      const auto record = Record(static_cast<uint8_t>(rng.Uniform(256)), size);
      if (page.Update(it->first, record)) it->second = record;
    }
  }
  EXPECT_EQ(page.live_count(), oracle.size());
  for (const auto& [slot, record] : oracle) {
    const auto got = page.Get(slot);
    ASSERT_EQ(got.size(), record.size());
    EXPECT_TRUE(std::equal(got.begin(), got.end(), record.begin()));
  }
}

INSTANTIATE_TEST_SUITE_P(AllPageSizes, PagePropertyTest,
                         ::testing::Values(512u, 2048u, 4096u, 8192u,
                                           16384u, 32768u));

}  // namespace
}  // namespace gammadb::storage
