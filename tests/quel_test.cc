// Tests for the QUEL front end: parsing, planning onto machine queries,
// session range variables, and error reporting.

#include <gtest/gtest.h>

#include "gamma/machine.h"
#include "quel/quel.h"
#include "test_util.h"
#include "wisconsin/wisconsin.h"

namespace gammadb::quel {
namespace {

namespace wis = gammadb::wisconsin;

class QuelTest : public ::testing::Test {
 protected:
  QuelTest() : machine_(Config()), session_(&machine_) {
    const auto tuples = wis::GenerateWisconsin(2000, 21);
    GAMMA_CHECK(machine_
                    .CreateRelation("A", wis::WisconsinSchema(),
                                    catalog::PartitionSpec::Hashed(
                                        wis::kUnique1))
                    .ok());
    GAMMA_CHECK(machine_.LoadTuples("A", tuples).ok());
    GAMMA_CHECK(machine_
                    .CreateRelation("Bprime", wis::WisconsinSchema(),
                                    catalog::PartitionSpec::Hashed(
                                        wis::kUnique1))
                    .ok());
    GAMMA_CHECK(
        machine_.LoadTuples("Bprime", wis::GenerateWisconsin(200, 22)).ok());
  }

  static gamma::GammaConfig Config() {
    gamma::GammaConfig config;
    config.num_disk_nodes = 4;
    config.num_diskless_nodes = 4;
    return config;
  }

  gamma::GammaMachine machine_;
  Session session_;
};

TEST_F(QuelTest, RangeDeclaration) {
  ASSERT_TRUE(session_.Execute("range of t is A").ok());
  EXPECT_EQ(*session_.RangeOf("t"), "A");
  EXPECT_TRUE(session_.RangeOf("x").status().IsNotFound());
  EXPECT_TRUE(
      session_.Execute("range of u is NoSuch").status().IsNotFound());
}

TEST_F(QuelTest, RetrieveRangeSelection) {
  ASSERT_TRUE(session_.Execute("range of t is A").ok());
  const auto result = session_.Execute(
      "retrieve (t.all) where t.unique1 >= 100 and t.unique1 <= 199");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->result_tuples, 100u);
  EXPECT_EQ(result->returned.size(), 100u);  // host-bound without 'into'
}

TEST_F(QuelTest, RetrieveIntoStoresResult) {
  ASSERT_TRUE(session_.Execute("range of t is A").ok());
  const auto result =
      session_.Execute("retrieve into tenpct (t.all) where t.unique1 < 200");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->result_tuples, 200u);
  EXPECT_EQ(result->result_relation, "tenpct");
  EXPECT_EQ(*machine_.CountTuples("tenpct"), 200u);
}

TEST_F(QuelTest, ExactMatchSelection) {
  ASSERT_TRUE(session_.Execute("range of t is A").ok());
  const auto result =
      session_.Execute("retrieve (t.all) where t.unique2 = 55");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->result_tuples, 1u);
}

TEST_F(QuelTest, ContradictoryClausesMatchNothing) {
  ASSERT_TRUE(session_.Execute("range of t is A").ok());
  const auto result = session_.Execute(
      "retrieve (t.all) where t.unique1 > 100 and t.unique1 < 50");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->result_tuples, 0u);
}

TEST_F(QuelTest, JoinWithSelections) {
  ASSERT_TRUE(session_.Execute("range of a is A").ok());
  ASSERT_TRUE(session_.Execute("range of b is Bprime").ok());
  const auto result = session_.Execute(
      "retrieve (a.all, b.all) where a.unique2 = b.unique2");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->result_tuples, 200u);

  const auto restricted = session_.Execute(
      "retrieve (a.all, b.all) where a.unique2 = b.unique2 "
      "and b.unique2 < 100");
  ASSERT_TRUE(restricted.ok());
  EXPECT_EQ(restricted->result_tuples, 100u);
}

TEST_F(QuelTest, Aggregates) {
  ASSERT_TRUE(session_.Execute("range of t is A").ok());
  const auto max_result = session_.Execute("retrieve (max(t.unique1))");
  ASSERT_TRUE(max_result.ok());
  const catalog::Schema schema = exec::GroupedAggregator::ResultSchema();
  ASSERT_EQ(max_result->returned.size(), 1u);
  EXPECT_EQ(catalog::TupleView(&schema, max_result->returned[0]).GetInt(1),
            1999);

  const auto grouped =
      session_.Execute("retrieve (count(t.unique1) by t.ten)");
  ASSERT_TRUE(grouped.ok());
  EXPECT_EQ(grouped->returned.size(), 10u);

  const auto filtered = session_.Execute(
      "retrieve (count(t.unique1)) where t.unique1 < 500");
  ASSERT_TRUE(filtered.ok());
  EXPECT_EQ(catalog::TupleView(&schema, filtered->returned[0]).GetInt(1),
            500);
}

TEST_F(QuelTest, AppendDeleteReplace) {
  ASSERT_TRUE(session_.Execute("range of t is A").ok());
  const auto appended =
      session_.Execute("append to A (unique1 = 9999, unique2 = 9999)");
  ASSERT_TRUE(appended.ok());
  EXPECT_EQ(*machine_.CountTuples("A"), 2001u);

  const auto replaced =
      session_.Execute("replace t (ten = 7) where t.unique1 = 9999");
  ASSERT_TRUE(replaced.ok());
  EXPECT_EQ(replaced->result_tuples, 1u);

  const auto deleted =
      session_.Execute("delete t where t.unique1 = 9999");
  ASSERT_TRUE(deleted.ok());
  EXPECT_EQ(deleted->result_tuples, 1u);
  EXPECT_EQ(*machine_.CountTuples("A"), 2000u);
}

TEST_F(QuelTest, ErrorsAreStatusesNotCrashes) {
  EXPECT_FALSE(session_.Execute("garbage statement").ok());
  EXPECT_FALSE(session_.Execute("retrieve t.all").ok());     // missing parens
  EXPECT_FALSE(session_.Execute("retrieve (x.all)").ok());   // unbound var
  ASSERT_TRUE(session_.Execute("range of t is A").ok());
  EXPECT_FALSE(
      session_.Execute("retrieve (t.all) where t.nosuch = 1").ok());
  EXPECT_FALSE(session_.Execute("delete t where t.unique1 < 100").ok());
  EXPECT_FALSE(session_.Execute("retrieve (t.unique1)").ok());  // projection
  EXPECT_FALSE(session_.Execute("retrieve (t.all) where t.unique1 @ 3").ok());
}

TEST_F(QuelTest, CompoundPredicateAcrossAttributes) {
  ASSERT_TRUE(session_.Execute("range of t is A").ok());
  const auto result = session_.Execute(
      "retrieve (t.all) where t.unique1 < 1000 and t.ten = 3");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->result_tuples, 100u);  // ten == unique1 mod 10

  const auto three_way = session_.Execute(
      "retrieve (t.all) where t.unique1 >= 100 and t.unique1 < 300 "
      "and t.ten = 3 and t.unique2 >= 0");
  ASSERT_TRUE(three_way.ok());
  EXPECT_EQ(three_way->result_tuples, 20u);
}

TEST_F(QuelTest, ExplainRetrieveSelect) {
  ASSERT_TRUE(session_.Execute("range of t is A").ok());
  const auto result = session_.Execute(
      "explain retrieve (t.all) where t.unique1 < 200");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->result_tuples, 200u);  // explain still executes
  EXPECT_NE(result->explain.find("select"), std::string::npos);
  EXPECT_NE(result->explain.find("estimated:"), std::string::npos);
  EXPECT_NE(result->explain.find("actual:"), std::string::npos);

  // Without the prefix the rendered plan stays empty.
  const auto plain =
      session_.Execute("retrieve (t.all) where t.unique1 < 200");
  ASSERT_TRUE(plain.ok());
  EXPECT_TRUE(plain->explain.empty());
}

TEST_F(QuelTest, ExplainRetrieveJoinAndAggregate) {
  ASSERT_TRUE(session_.Execute("range of a is A").ok());
  ASSERT_TRUE(session_.Execute("range of b is Bprime").ok());
  const auto join = session_.Execute(
      "explain retrieve (a.all, b.all) where a.unique2 = b.unique2");
  ASSERT_TRUE(join.ok());
  EXPECT_NE(join->explain.find("join"), std::string::npos);
  EXPECT_NE(join->explain.find("actual:"), std::string::npos);

  const auto agg =
      session_.Execute("explain retrieve (count(a.unique1) by a.ten)");
  ASSERT_TRUE(agg.ok());
  EXPECT_NE(agg->explain.find("aggregate"), std::string::npos);
}

TEST_F(QuelTest, ExplainRejectsNonRetrieveStatements) {
  ASSERT_TRUE(session_.Execute("range of t is A").ok());
  EXPECT_TRUE(session_.Execute("explain delete t where t.unique1 = 1")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(session_.Execute("explain range of u is A")
                  .status()
                  .IsInvalidArgument());
}

TEST_F(QuelTest, CaseInsensitiveKeywordsAndRelationLookup) {
  ASSERT_TRUE(session_.Execute("RANGE OF T IS a").ok());
  const auto result =
      session_.Execute("RETRIEVE (T.ALL) WHERE T.UNIQUE1 < 10");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->result_tuples, 10u);
}

}  // namespace
}  // namespace gammadb::quel
