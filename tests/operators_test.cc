// Unit tests for selection operators (scan, clustered / non-clustered index
// select), predicates, the store consumer, external sort and merge join.

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "exec/merge_join.h"
#include "exec/predicate.h"
#include "exec/select.h"
#include "exec/sort.h"
#include "exec/store.h"
#include "storage/storage_manager.h"
#include "test_util.h"

namespace gammadb::exec {
namespace {

using gammadb::testing::MiniSchema;
using gammadb::testing::MiniTuple;

TEST(PredicateTest, Forms) {
  const auto tuple = MiniTuple(5, 10);
  EXPECT_TRUE(Predicate::True().Eval(tuple, MiniSchema()));
  EXPECT_TRUE(Predicate::Eq(0, 5).Eval(tuple, MiniSchema()));
  EXPECT_FALSE(Predicate::Eq(0, 6).Eval(tuple, MiniSchema()));
  EXPECT_TRUE(Predicate::Range(1, 10, 20).Eval(tuple, MiniSchema()));
  EXPECT_FALSE(Predicate::Range(1, 11, 20).Eval(tuple, MiniSchema()));
  EXPECT_EQ(Predicate::True().compare_count(), 0);
  EXPECT_EQ(Predicate::Eq(0, 1).compare_count(), 1);
  EXPECT_EQ(Predicate::Range(0, 1, 2).compare_count(), 2);
}

class SelectTest : public ::testing::Test {
 protected:
  SelectTest() : sm_(4096, 64 * 1024) {
    file_id_ = sm_.CreateFile();
    // Load in key order so a clustered index is legitimate.
    for (int32_t id = 0; id < 2000; ++id) {
      rids_.push_back(sm_.file(file_id_).Append(MiniTuple(id, id * 2)).value());
    }
    clustered_id_ = sm_.CreateIndex();
    std::vector<storage::BTree::Entry> entries;
    for (int32_t id = 0; id < 2000; ++id) {
      entries.push_back({id, rids_[static_cast<size_t>(id)]});
    }
    sm_.index(clustered_id_).BulkLoad(entries);

    // Non-clustered index on val (== id*2): same rids keyed differently.
    nc_id_ = sm_.CreateIndex();
    std::vector<storage::BTree::Entry> nc_entries;
    for (int32_t id = 0; id < 2000; ++id) {
      nc_entries.push_back({id * 2, rids_[static_cast<size_t>(id)]});
    }
    sm_.index(nc_id_).BulkLoad(nc_entries);
  }

  std::multiset<int32_t> Collect(const ScanStats& stats,
                                 std::vector<std::vector<uint8_t>>* out) {
    (void)stats;
    std::multiset<int32_t> ids;
    for (const auto& tuple : *out) {
      ids.insert(catalog::TupleView(&MiniSchema(), tuple).GetInt(0));
    }
    return ids;
  }

  storage::StorageManager sm_;
  storage::FileId file_id_;
  storage::IndexId clustered_id_;
  storage::IndexId nc_id_;
  std::vector<storage::Rid> rids_;
};

TEST_F(SelectTest, FileScanMatchesPredicate) {
  std::vector<std::vector<uint8_t>> out;
  const auto stats = SelectScan(
      sm_.file(file_id_), MiniSchema(), Predicate::Range(0, 100, 119),
      sm_.charge(),
      [&](std::span<const uint8_t> t) { out.emplace_back(t.begin(), t.end()); }).value();
  EXPECT_EQ(stats.examined, 2000u);
  EXPECT_EQ(stats.emitted, 20u);
  EXPECT_EQ(out.size(), 20u);
}

TEST_F(SelectTest, ClusteredIndexSelectReadsOnlyRange) {
  std::vector<std::vector<uint8_t>> out;
  const auto stats = ClusteredIndexSelect(
      sm_.file(file_id_), sm_.index(clustered_id_), /*key_attr=*/0,
      MiniSchema(), Predicate::Range(0, 100, 119), sm_.charge(),
      [&](std::span<const uint8_t> t) { out.emplace_back(t.begin(), t.end()); }).value();
  EXPECT_EQ(stats.emitted, 20u);
  // Only the page range holding keys 100..119 is examined, far fewer than
  // a full scan.
  EXPECT_LT(stats.examined, 400u);
  const auto ids = Collect(stats, &out);
  EXPECT_EQ(*ids.begin(), 100);
  EXPECT_EQ(*ids.rbegin(), 119);
}

TEST_F(SelectTest, ClusteredIndexEmptyRange) {
  std::vector<std::vector<uint8_t>> out;
  const auto stats = ClusteredIndexSelect(
      sm_.file(file_id_), sm_.index(clustered_id_), /*key_attr=*/0,
      MiniSchema(), Predicate::Range(0, 5000, 6000), sm_.charge(),
      [&](std::span<const uint8_t> t) { out.emplace_back(t.begin(), t.end()); }).value();
  EXPECT_EQ(stats.examined, 0u);
  EXPECT_EQ(stats.emitted, 0u);
}

TEST_F(SelectTest, NonClusteredIndexSelect) {
  std::vector<std::vector<uint8_t>> out;
  const auto stats = NonClusteredIndexSelect(
      sm_.file(file_id_), sm_.index(nc_id_), /*key_attr=*/1,
      MiniSchema(), Predicate::Range(1, 200, 238),  // val in [200,238] -> ids 100..119
      sm_.charge(),
      [&](std::span<const uint8_t> t) { out.emplace_back(t.begin(), t.end()); }).value();
  EXPECT_EQ(stats.emitted, 20u);
  EXPECT_EQ(stats.examined, 20u);  // exactly the qualifying tuples fetched
  const auto ids = Collect(stats, &out);
  EXPECT_EQ(*ids.begin(), 100);
  EXPECT_EQ(*ids.rbegin(), 119);
}

TEST_F(SelectTest, ExactMatchThroughIndex) {
  std::vector<std::vector<uint8_t>> out;
  ClusteredIndexSelect(
      sm_.file(file_id_), sm_.index(clustered_id_), /*key_attr=*/0,
      MiniSchema(), Predicate::Eq(0, 777), sm_.charge(),
      [&](std::span<const uint8_t> t) { out.emplace_back(t.begin(), t.end()); });
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(catalog::TupleView(&MiniSchema(), out[0]).GetInt(1), 1554);
}

TEST(StoreTest, AppendsAndCounts) {
  storage::StorageManager sm(4096, 64 * 1024);
  const storage::FileId file_id = sm.CreateFile();
  StoreConsumer store(&sm.file(file_id), &sm.charge());
  for (int32_t i = 0; i < 50; ++i) store.Consume(MiniTuple(i, i));
  EXPECT_EQ(store.stored(), 50u);
  EXPECT_EQ(sm.file(file_id).num_tuples(), 50u);
}

TEST(SortTest, PredictRunCount) {
  EXPECT_EQ(PredictRunCount(0, 100, 1000), 0u);
  EXPECT_EQ(PredictRunCount(10, 100, 1000), 1u);
  EXPECT_EQ(PredictRunCount(11, 100, 1000), 2u);
  EXPECT_EQ(PredictRunCount(100, 100, 1000), 10u);
}

TEST(SortTest, SortsAcrossRuns) {
  storage::StorageManager sm(4096, 256 * 1024);
  const storage::FileId input_id = sm.CreateFile();
  const auto tuples = gammadb::testing::MiniRelation(5000, 3);
  for (const auto& tuple : tuples) sm.file(input_id).Append(tuple);

  // Tiny sort memory forces multiple runs and a real merge.
  const uint64_t memory = 500 * MiniSchema().tuple_size();
  ASSERT_GT(PredictRunCount(5000, MiniSchema().tuple_size(), memory), 5u);
  const storage::FileId sorted_id =
      ExternalSort(sm, input_id, MiniSchema(), /*attr=*/0, memory);

  int32_t expected = 0;
  sm.file(sorted_id).Scan([&](storage::Rid, std::span<const uint8_t> t) {
    EXPECT_EQ(catalog::TupleView(&MiniSchema(), t).GetInt(0), expected++);
    return true;
  });
  EXPECT_EQ(expected, 5000);
  // Input untouched.
  EXPECT_EQ(sm.file(input_id).num_tuples(), 5000u);
}

TEST(SortTest, EmptyInput) {
  storage::StorageManager sm(4096, 64 * 1024);
  const storage::FileId input_id = sm.CreateFile();
  const storage::FileId sorted_id =
      ExternalSort(sm, input_id, MiniSchema(), 0, 1 << 20);
  EXPECT_EQ(sm.file(sorted_id).num_tuples(), 0u);
}

TEST(MergeJoinTest, JoinsSortedInputsWithDuplicates) {
  storage::StorageManager sm(4096, 256 * 1024);
  const storage::FileId left_id = sm.CreateFile();
  const storage::FileId right_id = sm.CreateFile();
  // left keys: 0,1,1,2,3 ; right keys: 1,1,2,4
  for (int32_t k : {0, 1, 1, 2, 3}) sm.file(left_id).Append(MiniTuple(k, k));
  for (int32_t k : {1, 1, 2, 4}) sm.file(right_id).Append(MiniTuple(k, -k));

  std::vector<std::vector<uint8_t>> out;
  const auto stats = SortMergeJoin(
      sm.file(left_id), MiniSchema(), 0, sm.file(right_id), MiniSchema(), 0,
      sm.charge(),
      [&](std::span<const uint8_t> t) { out.emplace_back(t.begin(), t.end()); });
  // key 1: 2x2 = 4 matches; key 2: 1. Total 5.
  EXPECT_EQ(stats.output, 5u);
  ASSERT_EQ(out.size(), 5u);
  const catalog::Schema joined =
      catalog::Schema::Concat(MiniSchema(), MiniSchema());
  for (const auto& tuple : out) {
    const catalog::TupleView view(&joined, tuple);
    EXPECT_EQ(view.GetInt(0), view.GetInt(3));  // equijoin keys agree
  }
}

TEST(MergeJoinTest, LargeRandomAgainstOracle) {
  storage::StorageManager sm(4096, 1 << 20);
  const storage::FileId left_id = sm.CreateFile();
  const storage::FileId right_id = sm.CreateFile();
  Rng rng(9);
  std::vector<std::vector<uint8_t>> left, right;
  for (int i = 0; i < 2000; ++i) {
    left.push_back(MiniTuple(static_cast<int32_t>(rng.Uniform(500)), i));
    right.push_back(MiniTuple(static_cast<int32_t>(rng.Uniform(500)), -i));
  }
  auto by_key = [](const std::vector<uint8_t>& a,
                   const std::vector<uint8_t>& b) {
    return catalog::TupleView(&MiniSchema(), a).GetInt(0) <
           catalog::TupleView(&MiniSchema(), b).GetInt(0);
  };
  std::sort(left.begin(), left.end(), by_key);
  std::sort(right.begin(), right.end(), by_key);
  for (const auto& t : left) sm.file(left_id).Append(t);
  for (const auto& t : right) sm.file(right_id).Append(t);

  uint64_t matches = 0;
  const auto stats = SortMergeJoin(
      sm.file(left_id), MiniSchema(), 0, sm.file(right_id), MiniSchema(), 0,
      sm.charge(), [&](std::span<const uint8_t>) { ++matches; });
  EXPECT_EQ(stats.output, matches);
  EXPECT_EQ(matches, gammadb::testing::ReferenceJoinCount(
                         left, MiniSchema(), 0, right, MiniSchema(), 0));
}

}  // namespace
}  // namespace gammadb::exec
