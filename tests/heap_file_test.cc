// Unit tests for the WiSS-style heap file.

#include <gtest/gtest.h>

#include "storage/heap_file.h"
#include "storage/storage_manager.h"
#include "test_util.h"

namespace gammadb::storage {
namespace {

class HeapFileTest : public ::testing::Test {
 protected:
  HeapFileTest() : sm_(4096, 64 * 1024) { file_id_ = sm_.CreateFile(); }

  HeapFile& file() { return sm_.file(file_id_); }

  StorageManager sm_;
  FileId file_id_;
};

TEST_F(HeapFileTest, AppendScanRoundTrip) {
  const auto tuples = gammadb::testing::MiniRelation(100, 1);
  for (const auto& tuple : tuples) file().Append(tuple);
  EXPECT_EQ(file().num_tuples(), 100u);

  std::vector<std::vector<uint8_t>> scanned;
  file().Scan([&](Rid, std::span<const uint8_t> record) {
    scanned.emplace_back(record.begin(), record.end());
    return true;
  });
  ASSERT_EQ(scanned.size(), 100u);
  // Heap file preserves append order.
  for (size_t i = 0; i < 100; ++i) EXPECT_EQ(scanned[i], tuples[i]);
}

TEST_F(HeapFileTest, TuplesPerPageMatchesPaperArithmetic) {
  // §5.1: 17 Wisconsin tuples per 4 KB page, 589 pages for 10,000 tuples.
  const auto tuples = wisconsin::GenerateWisconsin(10000, 42);
  for (const auto& tuple : tuples) file().Append(tuple);
  EXPECT_EQ((4096u - 8) / (208 + 4), 19u);  // raw arithmetic bound
  const uint32_t per_page =
      static_cast<uint32_t>(10000 / file().num_pages());
  EXPECT_GE(per_page, 17u);
  EXPECT_LE(per_page, 19u);
  EXPECT_NEAR(static_cast<double>(file().num_pages()), 589.0, 70.0);
}

TEST_F(HeapFileTest, FetchByRid) {
  const auto t0 = gammadb::testing::MiniTuple(7, 14);
  const auto t1 = gammadb::testing::MiniTuple(8, 16);
  const Rid rid0 = file().Append(t0).value();
  const Rid rid1 = file().Append(t1).value();
  EXPECT_EQ(*file().Fetch(rid0), t0);
  EXPECT_EQ(*file().Fetch(rid1), t1);
}

TEST_F(HeapFileTest, FetchMissingRidFails) {
  EXPECT_TRUE(file().Fetch(Rid{5, 0}).status().IsNotFound());
  file().Append(gammadb::testing::MiniTuple(1, 2));
  EXPECT_TRUE(file().Fetch(Rid{0, 9}).status().IsNotFound());
}

TEST_F(HeapFileTest, DeleteRemovesFromScan) {
  const Rid rid0 = file().Append(gammadb::testing::MiniTuple(1, 2)).value();
  file().Append(gammadb::testing::MiniTuple(3, 6));
  ASSERT_TRUE(file().Delete(rid0).ok());
  EXPECT_EQ(file().num_tuples(), 1u);
  int seen = 0;
  file().Scan([&](Rid, std::span<const uint8_t> record) {
    const catalog::TupleView view(&gammadb::testing::MiniSchema(), record);
    EXPECT_EQ(view.GetInt(0), 3);
    ++seen;
    return true;
  });
  EXPECT_EQ(seen, 1);
  EXPECT_TRUE(file().Delete(rid0).IsNotFound());
}

TEST_F(HeapFileTest, UpdateInPlace) {
  const Rid rid = file().Append(gammadb::testing::MiniTuple(1, 2)).value();
  ASSERT_TRUE(file().Update(rid, gammadb::testing::MiniTuple(1, 99)).ok());
  const auto fetched = file().Fetch(rid);
  ASSERT_TRUE(fetched.ok());
  const catalog::TupleView view(&gammadb::testing::MiniSchema(), *fetched);
  EXPECT_EQ(view.GetInt(1), 99);
}

TEST_F(HeapFileTest, ScanEarlyStop) {
  for (int i = 0; i < 50; ++i) {
    file().Append(gammadb::testing::MiniTuple(i, i));
  }
  int seen = 0;
  file().Scan([&](Rid, std::span<const uint8_t>) {
    return ++seen < 10;
  });
  EXPECT_EQ(seen, 10);
}

TEST_F(HeapFileTest, ScanPagesSubrange) {
  for (int i = 0; i < 2000; ++i) {
    file().Append(gammadb::testing::MiniTuple(i, i));
  }
  ASSERT_GT(file().num_pages(), 3u);
  uint64_t subrange = 0;
  file().ScanPages(1, 2, [&](Rid rid, std::span<const uint8_t>) {
    EXPECT_GE(rid.page_index, 1u);
    EXPECT_LE(rid.page_index, 2u);
    ++subrange;
    return true;
  });
  EXPECT_GT(subrange, 0u);
  EXPECT_LT(subrange, 2000u);
}

TEST_F(HeapFileTest, ClearForgetsEverything) {
  for (int i = 0; i < 100; ++i) {
    file().Append(gammadb::testing::MiniTuple(i, i));
  }
  file().Clear();
  EXPECT_EQ(file().num_tuples(), 0u);
  EXPECT_EQ(file().num_pages(), 0u);
  // Reusable after Clear.
  file().Append(gammadb::testing::MiniTuple(1, 1));
  EXPECT_EQ(file().num_tuples(), 1u);
}

}  // namespace
}  // namespace gammadb::storage
