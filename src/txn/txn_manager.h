#ifndef GAMMA_TXN_TXN_MANAGER_H_
#define GAMMA_TXN_TXN_MANAGER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/journal.h"
#include "txn/lock_manager.h"

namespace gammadb::txn {

/// Per-transaction concurrency-control counters (surfaced into
/// QueryResult::metrics next to the recovery-log stats).
struct TxnStats {
  uint64_t locks_acquired = 0;
  uint64_t lock_waits = 0;
  double lock_wait_sec = 0;
  uint64_t deadlocks = 0;
  uint64_t aborts = 0;
};

/// \brief Machine-wide transaction coordinator: strict multi-granularity 2PL
/// with local deadlock detection.
///
/// One lock table per disk node holds that node's fragment and page locks
/// (the paper's per-node lock managers); relation-level locks live in the
/// scheduler's table. Every call happens on the query coordinator thread —
/// node tasks never touch this class — so the iteration order of the
/// ordered containers is the only order there is, and results are
/// deterministic for any host-pool width.
///
/// Blocked requests enqueue; each new wait runs a DFS over the waits-for
/// graph (edges from LockManager::Blockers across all tables) and aborts
/// the *youngest* transaction (largest id) of any cycle found, releasing
/// its locks and promoting waiters. The caller (the workload scheduler or
/// GammaMachine) learns about aborted victims and promoted grants from the
/// returned lists and resumes or retries accordingly.
class TxnManager {
 public:
  /// `num_tables` lock tables (indexed like tracker nodes); relation locks
  /// are kept in table `relation_table`.
  TxnManager(int num_tables, int relation_table);

  TxnManager(const TxnManager&) = delete;
  TxnManager& operator=(const TxnManager&) = delete;

  /// Elastic growth: widens to `num_tables` lock tables and moves the
  /// relation-lock table to `relation_table` (tracker-node ids shift when a
  /// disk node is added). Requires a quiescent manager — no active or
  /// waiting transactions, so every table is empty and nothing needs to be
  /// rehomed.
  void Grow(int num_tables, int relation_table);

  /// Wires the machine's flight recorder in: lock waits, deadlock victims
  /// and aborts are journaled on `ring` (the scheduler's). Safe because
  /// every TxnManager call is coordinator-serial (class comment). Null
  /// detaches.
  void AttachJournal(obs::Journal* journal, int ring) {
    journal_ = journal;
    journal_ring_ = ring;
  }

  /// Starts a transaction; ids are monotonic, so the largest id in a cycle
  /// is the youngest transaction (the victim policy).
  uint64_t Begin();

  bool IsActive(uint64_t txn) const {
    return active_.find(txn) != active_.end();
  }

  /// True when no transaction is active or waiting (the precondition Grow
  /// enforces; elastic growth checks it first to fail gracefully).
  bool quiescent() const { return active_.empty() && waiting_table_.empty(); }

  struct AcquireResult {
    enum class Outcome {
      kGranted,
      /// Enqueued behind a conflicting holder; the grant arrives later via
      /// some release's `grants` list.
      kBlocked,
      /// The requester itself was chosen as deadlock victim and aborted.
      kAbortedSelf,
    };
    Outcome outcome = Outcome::kGranted;
    /// Other transactions aborted to break deadlock cycles (their locks are
    /// already released; the owner must retry them).
    std::vector<uint64_t> aborted_victims;
    /// Waiting requests granted by a victim's release (never the requester).
    std::vector<LockManager::Grant> grants;
  };

  /// Requests `mode` on `id` for `txn` under strict 2PL. The lock table is
  /// chosen from the id (fragment/page -> the fragment's node table,
  /// relation -> the scheduler table).
  AcquireResult Acquire(uint64_t txn, LockId id, LockMode mode);

  /// Commit / abort: releases every lock `txn` holds in every table and
  /// returns the requests that became grantable.
  std::vector<LockManager::Grant> Commit(uint64_t txn);
  std::vector<LockManager::Grant> Abort(uint64_t txn);

  /// Machine crash: every lock table and in-flight transaction vanishes
  /// with the volatile state. The id counter and lifetime totals survive
  /// (they model the recovery server's knowledge, not node memory).
  void CrashReset();

  /// Table index holding `id` (also where the lock CPU cost belongs).
  int TableFor(LockId id) const;

  /// Stable small id for a relation name (registry: first use assigns).
  uint32_t RelationId(const std::string& name);

  /// Counters for one transaction (zeros after commit/abort — snapshot
  /// before releasing). `AddWaitSec` is fed by the simulated-time scheduler,
  /// which alone knows how long a blocked request actually waited.
  TxnStats StatsFor(uint64_t txn) const;
  void AddWaitSec(uint64_t txn, double sec);

  /// Machine-lifetime totals across all transactions.
  const TxnStats& totals() const { return totals_; }

  const LockManager& table(int i) const {
    return *tables_.at(static_cast<size_t>(i));
  }
  bool IsWaiting(uint64_t txn) const {
    return waiting_table_.find(txn) != waiting_table_.end();
  }

 private:
  /// Transactions in a waits-for cycle through `txn` (empty if none).
  std::vector<uint64_t> FindCycleFrom(uint64_t txn) const;
  /// Aborts `victim` in place: cancels its wait, releases its locks
  /// everywhere, collects resulting grants.
  void AbortInternal(uint64_t victim, std::vector<LockManager::Grant>* grants);
  void NoteGrants(const std::vector<LockManager::Grant>& grants);

  std::vector<std::unique_ptr<LockManager>> tables_;
  int relation_table_;
  uint64_t next_txn_ = 1;
  std::map<uint64_t, TxnStats> active_;
  /// txn -> table index of its single waiting request.
  std::map<uint64_t, int> waiting_table_;
  std::map<std::string, uint32_t> relation_ids_;
  TxnStats totals_;
  /// Flight recorder (null until the machine attaches it).
  obs::Journal* journal_ = nullptr;
  int journal_ring_ = 0;
};

}  // namespace gammadb::txn

#endif  // GAMMA_TXN_TXN_MANAGER_H_
