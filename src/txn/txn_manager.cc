#include "txn/txn_manager.h"

#include <algorithm>
#include <functional>

#include "common/macros.h"
#include "obs/metrics_registry.h"

namespace gammadb::txn {

TxnManager::TxnManager(int num_tables, int relation_table)
    : relation_table_(relation_table) {
  GAMMA_CHECK(num_tables > 0);
  GAMMA_CHECK(relation_table >= 0 && relation_table < num_tables);
  tables_.reserve(static_cast<size_t>(num_tables));
  for (int i = 0; i < num_tables; ++i) {
    tables_.push_back(std::make_unique<LockManager>());
  }
}

void TxnManager::Grow(int num_tables, int relation_table) {
  GAMMA_CHECK(num_tables >= static_cast<int>(tables_.size()));
  GAMMA_CHECK(relation_table >= 0 && relation_table < num_tables);
  GAMMA_CHECK_MSG(active_.empty() && waiting_table_.empty(),
                  "TxnManager::Grow with transactions in flight");
  while (static_cast<int>(tables_.size()) < num_tables) {
    tables_.push_back(std::make_unique<LockManager>());
  }
  relation_table_ = relation_table;
}

uint64_t TxnManager::Begin() {
  const uint64_t txn = next_txn_++;
  active_.emplace(txn, TxnStats{});
  return txn;
}

int TxnManager::TableFor(LockId id) const {
  if (id.level == LockId::Level::kRelation) return relation_table_;
  GAMMA_CHECK(id.fragment < tables_.size());
  return static_cast<int>(id.fragment);
}

uint32_t TxnManager::RelationId(const std::string& name) {
  auto it = relation_ids_.find(name);
  if (it != relation_ids_.end()) return it->second;
  const uint32_t id = static_cast<uint32_t>(relation_ids_.size());
  relation_ids_.emplace(name, id);
  return id;
}

std::vector<uint64_t> TxnManager::FindCycleFrom(uint64_t txn) const {
  // DFS over waits-for edges starting at `txn`; only waiting transactions
  // have outgoing edges. All containers are ordered, so the first cycle
  // found is deterministic.
  std::vector<uint64_t> path;
  std::map<uint64_t, bool> visited;  // true = fully explored
  std::vector<uint64_t> cycle;
  const std::function<bool(uint64_t)> dfs = [&](uint64_t node) -> bool {
    auto wt = waiting_table_.find(node);
    if (wt == waiting_table_.end()) return false;  // running txn: sink
    visited[node] = false;
    path.push_back(node);
    for (const uint64_t blocker :
         tables_[static_cast<size_t>(wt->second)]->Blockers(node)) {
      if (blocker == txn) {
        cycle = path;  // every node on the path waits, transitively, on txn
        return true;
      }
      auto seen = visited.find(blocker);
      if (seen != visited.end()) continue;  // on path or explored: skip
      if (dfs(blocker)) return true;
    }
    path.pop_back();
    visited[node] = true;
    return false;
  };
  dfs(txn);
  return cycle;
}

void TxnManager::NoteGrants(const std::vector<LockManager::Grant>& grants) {
  for (const LockManager::Grant& g : grants) waiting_table_.erase(g.txn);
}

void TxnManager::AbortInternal(uint64_t victim,
                               std::vector<LockManager::Grant>* grants) {
  const size_t before = grants->size();
  for (auto& table : tables_) table->Release(victim, grants);
  waiting_table_.erase(victim);
  auto it = active_.find(victim);
  GAMMA_CHECK(it != active_.end());
  it->second.aborts += 1;
  totals_.aborts += 1;
  static obs::Counter& aborts =
      obs::MetricsRegistry::Instance().counter("txn.aborts");
  aborts.Inc();
  if (journal_ != nullptr) {
    journal_->Emit(journal_ring_, obs::JournalEventKind::kTxnAbort,
                   static_cast<int64_t>(victim));
  }
  active_.erase(it);
  NoteGrants({grants->begin() + static_cast<long>(before), grants->end()});
}

TxnManager::AcquireResult TxnManager::Acquire(uint64_t txn, LockId id,
                                              LockMode mode) {
  GAMMA_CHECK_MSG(IsActive(txn), "lock request from unknown transaction");
  GAMMA_CHECK_MSG(!IsWaiting(txn),
                  "transaction already waiting on another lock");
  AcquireResult res;
  const int table = TableFor(id);
  LockManager& lm = *tables_[static_cast<size_t>(table)];
  TxnStats& stats = active_.at(txn);
  stats.locks_acquired += 1;
  totals_.locks_acquired += 1;
  if (lm.Acquire(txn, id, mode) == LockManager::Outcome::kGranted) {
    res.outcome = AcquireResult::Outcome::kGranted;
    return res;
  }
  waiting_table_[txn] = table;
  stats.lock_waits += 1;
  totals_.lock_waits += 1;
  static obs::Counter& lock_waits =
      obs::MetricsRegistry::Instance().counter("txn.lock_waits");
  lock_waits.Inc();
  if (journal_ != nullptr) {
    journal_->Emit(journal_ring_, obs::JournalEventKind::kLockWait,
                   static_cast<int64_t>(txn), table);
  }

  // Each new wait edge can close at most cycles through the requester;
  // abort the youngest member until no cycle remains (or we are it).
  for (;;) {
    const std::vector<uint64_t> cycle = FindCycleFrom(txn);
    if (cycle.empty()) break;
    uint64_t victim = txn;
    for (const uint64_t member : cycle) victim = std::max(victim, member);
    totals_.deadlocks += 1;
    active_.at(victim).deadlocks += 1;
    static obs::Counter& deadlocks =
        obs::MetricsRegistry::Instance().counter("txn.deadlocks");
    deadlocks.Inc();
    if (journal_ != nullptr) {
      journal_->Emit(journal_ring_, obs::JournalEventKind::kDeadlockVictim,
                     static_cast<int64_t>(victim), static_cast<int64_t>(txn));
    }
    res.aborted_victims.push_back(victim);
    if (victim == txn) {
      AbortInternal(txn, &res.grants);
      res.outcome = AcquireResult::Outcome::kAbortedSelf;
      return res;
    }
    AbortInternal(victim, &res.grants);
    if (!IsWaiting(txn)) break;  // the victim's release granted our request
  }
  res.outcome = IsWaiting(txn) ? AcquireResult::Outcome::kBlocked
                               : AcquireResult::Outcome::kGranted;
  if (res.outcome == AcquireResult::Outcome::kGranted) {
    // Our own grant is an immediate return value, not a wakeup.
    res.grants.erase(std::remove_if(res.grants.begin(), res.grants.end(),
                                    [txn](const LockManager::Grant& g) {
                                      return g.txn == txn;
                                    }),
                     res.grants.end());
  }
  return res;
}

std::vector<LockManager::Grant> TxnManager::Commit(uint64_t txn) {
  GAMMA_CHECK_MSG(IsActive(txn), "commit of unknown transaction");
  GAMMA_CHECK_MSG(!IsWaiting(txn), "commit with a lock request in flight");
  std::vector<LockManager::Grant> grants;
  for (auto& table : tables_) table->Release(txn, &grants);
  active_.erase(txn);
  NoteGrants(grants);
  return grants;
}

void TxnManager::CrashReset() {
  for (auto& table : tables_) {
    table = std::make_unique<LockManager>();
  }
  active_.clear();
  waiting_table_.clear();
}

std::vector<LockManager::Grant> TxnManager::Abort(uint64_t txn) {
  std::vector<LockManager::Grant> grants;
  if (!IsActive(txn)) return grants;
  AbortInternal(txn, &grants);
  // AbortInternal counts deliberate aborts too; a caller-requested abort is
  // not a deadlock, so only `aborts` was bumped — which is what we want.
  return grants;
}

TxnStats TxnManager::StatsFor(uint64_t txn) const {
  auto it = active_.find(txn);
  return it == active_.end() ? TxnStats{} : it->second;
}

void TxnManager::AddWaitSec(uint64_t txn, double sec) {
  auto it = active_.find(txn);
  if (it != active_.end()) it->second.lock_wait_sec += sec;
  totals_.lock_wait_sec += sec;
  // Coordinator-serial (workload scheduler resolves waits in simulated-time
  // order), so the histogram's FP sum stays order-deterministic.
  static obs::Histogram& wait_seconds =
      obs::MetricsRegistry::Instance().histogram(
          "txn.lock_wait_seconds", obs::LogBuckets(1e-4, 1e4, 4));
  wait_seconds.Observe(sec);
}

}  // namespace gammadb::txn
