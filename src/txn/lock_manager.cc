#include "txn/lock_manager.h"

#include <algorithm>

#include "common/macros.h"

namespace gammadb::txn {

namespace {

constexpr int Idx(LockMode m) { return static_cast<int>(m); }

// Rows: held, columns: requested (IS, IX, S, SIX, X).
constexpr bool kCompatible[5][5] = {
    /* IS  */ {true, true, true, true, false},
    /* IX  */ {true, true, false, false, false},
    /* S   */ {true, false, true, false, false},
    /* SIX */ {true, false, false, false, false},
    /* X   */ {false, false, false, false, false},
};

}  // namespace

bool Compatible(LockMode held, LockMode requested) {
  return kCompatible[Idx(held)][Idx(requested)];
}

LockMode Supremum(LockMode a, LockMode b) {
  if (a == b) return a;
  if (a == LockMode::kX || b == LockMode::kX) return LockMode::kX;
  // The only incomparable pair below X is {S, IX}; their join is SIX.
  const auto covers = [](LockMode hi, LockMode lo) {
    if (hi == lo) return true;
    switch (hi) {
      case LockMode::kIS:
        return false;
      case LockMode::kIX:
      case LockMode::kS:
        return lo == LockMode::kIS;
      case LockMode::kSIX:
        return lo == LockMode::kIS || lo == LockMode::kIX ||
               lo == LockMode::kS;
      case LockMode::kX:
        return true;
    }
    return false;
  };
  if (covers(a, b)) return a;
  if (covers(b, a)) return b;
  return LockMode::kSIX;
}

const char* ModeName(LockMode mode) {
  switch (mode) {
    case LockMode::kIS:
      return "IS";
    case LockMode::kIX:
      return "IX";
    case LockMode::kS:
      return "S";
    case LockMode::kSIX:
      return "SIX";
    case LockMode::kX:
      return "X";
  }
  return "?";
}

std::string LockId::ToString() const {
  std::string out = "rel" + std::to_string(relation);
  if (level == Level::kRelation) return out;
  out += "/frag" + std::to_string(fragment);
  if (level == Level::kFragment) return out;
  out += "/page" + std::to_string(page);
  return out;
}

bool LockManager::CanGrant(const Entry& entry, uint64_t txn, LockMode mode) {
  for (const Req& g : entry.granted) {
    if (g.txn == txn) continue;
    if (!Compatible(g.mode, mode)) return false;
  }
  return true;
}

LockManager::Outcome LockManager::Acquire(uint64_t txn, LockId id,
                                          LockMode mode) {
  GAMMA_CHECK_MSG(wait_key_.find(txn) == wait_key_.end(),
                  "transaction already has a waiting lock request");
  ++acquisitions_;
  const uint64_t key = id.Encode();
  Entry& entry = table_[key];
  entry.id = id;

  auto held = std::find_if(entry.granted.begin(), entry.granted.end(),
                           [txn](const Req& g) { return g.txn == txn; });
  if (held != entry.granted.end()) {
    const LockMode target = Supremum(held->mode, mode);
    if (target == held->mode) return Outcome::kGranted;  // re-entrant
    if (CanGrant(entry, txn, target)) {
      held->mode = target;
      ++upgrades_;
      return Outcome::kGranted;
    }
    // Upgrade must wait for the other holders to drain; it jumps the queue
    // (it already holds the lock, so waiters behind can never be granted
    // ahead of it anyway).
    entry.waiting.push_front(Req{txn, target, /*upgrade=*/true});
    wait_key_[txn] = key;
    ++waits_;
    ++upgrades_;
    return Outcome::kWait;
  }

  if (entry.waiting.empty() && CanGrant(entry, txn, mode)) {
    entry.granted.push_back(Req{txn, mode, false});
    held_[txn].push_back(key);
    return Outcome::kGranted;
  }
  // Conflicting, or queued behind earlier waiters (strict FIFO keeps the
  // grant order deterministic and starvation-free).
  entry.waiting.push_back(Req{txn, mode, /*upgrade=*/false});
  wait_key_[txn] = key;
  ++waits_;
  return Outcome::kWait;
}

void LockManager::PromoteWaiters(Entry& entry, std::vector<Grant>* grants) {
  while (!entry.waiting.empty()) {
    const Req front = entry.waiting.front();
    if (!CanGrant(entry, front.txn, front.mode)) break;
    if (front.upgrade) {
      auto held = std::find_if(entry.granted.begin(), entry.granted.end(),
                               [&](const Req& g) { return g.txn == front.txn; });
      GAMMA_CHECK(held != entry.granted.end());
      held->mode = front.mode;
    } else {
      entry.granted.push_back(Req{front.txn, front.mode, false});
      held_[front.txn].push_back(entry.id.Encode());
    }
    wait_key_.erase(front.txn);
    entry.waiting.pop_front();
    if (grants != nullptr) grants->push_back(Grant{front.txn, entry.id});
  }
}

void LockManager::CancelWait(uint64_t txn, std::vector<Grant>* grants) {
  auto it = wait_key_.find(txn);
  if (it == wait_key_.end()) return;
  auto entry_it = table_.find(it->second);
  GAMMA_CHECK(entry_it != table_.end());
  Entry& entry = entry_it->second;
  entry.waiting.erase(
      std::remove_if(entry.waiting.begin(), entry.waiting.end(),
                     [txn](const Req& w) { return w.txn == txn; }),
      entry.waiting.end());
  wait_key_.erase(it);
  // Removing a blocked front request can unblock the queue behind it.
  PromoteWaiters(entry, grants);
  if (entry.granted.empty() && entry.waiting.empty()) table_.erase(entry_it);
}

void LockManager::Release(uint64_t txn, std::vector<Grant>* grants) {
  CancelWait(txn, grants);
  auto it = held_.find(txn);
  if (it == held_.end()) return;
  for (const uint64_t key : it->second) {
    auto entry_it = table_.find(key);
    if (entry_it == table_.end()) continue;
    Entry& entry = entry_it->second;
    entry.granted.erase(
        std::remove_if(entry.granted.begin(), entry.granted.end(),
                       [txn](const Req& g) { return g.txn == txn; }),
        entry.granted.end());
    PromoteWaiters(entry, grants);
    if (entry.granted.empty() && entry.waiting.empty()) {
      table_.erase(entry_it);
    }
  }
  held_.erase(it);
}

std::vector<uint64_t> LockManager::Blockers(uint64_t txn) const {
  std::vector<uint64_t> out;
  auto it = wait_key_.find(txn);
  if (it == wait_key_.end()) return out;
  auto entry_it = table_.find(it->second);
  GAMMA_CHECK(entry_it != table_.end());
  const Entry& entry = entry_it->second;
  LockMode requested = LockMode::kIS;
  for (const Req& w : entry.waiting) {
    if (w.txn == txn) {
      requested = w.mode;
      break;
    }
  }
  for (const Req& g : entry.granted) {
    if (g.txn != txn && !Compatible(g.mode, requested)) out.push_back(g.txn);
  }
  for (const Req& w : entry.waiting) {
    if (w.txn == txn) break;
    out.push_back(w.txn);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

bool LockManager::HoldsAtLeast(uint64_t txn, LockId id, LockMode mode) const {
  auto entry_it = table_.find(id.Encode());
  if (entry_it == table_.end()) return false;
  for (const Req& g : entry_it->second.granted) {
    if (g.txn == txn) return Supremum(g.mode, mode) == g.mode;
  }
  return false;
}

size_t LockManager::held_count(uint64_t txn) const {
  auto it = held_.find(txn);
  return it == held_.end() ? 0 : it->second.size();
}

}  // namespace gammadb::txn
