#ifndef GAMMA_TXN_LOCK_MANAGER_H_
#define GAMMA_TXN_LOCK_MANAGER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

namespace gammadb::txn {

/// Multi-granularity lock modes (Gray's hierarchy): intent-shared and
/// intent-exclusive announce finer locks below, SIX is the classic
/// "read everything, update some" combination.
enum class LockMode : uint8_t { kIS, kIX, kS, kSIX, kX };

/// Can a lock in `requested` be granted alongside a held lock in `held`?
bool Compatible(LockMode held, LockMode requested);

/// Least mode at least as strong as both (the upgrade target when a holder
/// of `a` requests `b`): sup(S, IX) = SIX, sup(anything, X) = X, ...
LockMode Supremum(LockMode a, LockMode b);

const char* ModeName(LockMode mode);

/// A lockable object in the relation -> fragment -> page hierarchy.
/// Relation ids are small integers handed out by the TxnManager registry.
struct LockId {
  enum class Level : uint8_t { kRelation, kFragment, kPage };
  Level level = Level::kRelation;
  uint32_t relation = 0;
  uint32_t fragment = 0;
  uint32_t page = 0;

  static LockId Relation(uint32_t relation) {
    return {Level::kRelation, relation, 0, 0};
  }
  static LockId Fragment(uint32_t relation, uint32_t fragment) {
    return {Level::kFragment, relation, fragment, 0};
  }
  static LockId Page(uint32_t relation, uint32_t fragment, uint32_t page) {
    return {Level::kPage, relation, fragment, page};
  }

  uint64_t Encode() const {
    return (static_cast<uint64_t>(level) << 60) |
           (static_cast<uint64_t>(relation) << 40) |
           (static_cast<uint64_t>(fragment) << 32) | page;
  }
  std::string ToString() const;
};

/// \brief One lock table of the multi-granularity 2PL layer.
///
/// Unlike storage::LockManager (the per-node WiSS-level table that fails
/// conflicting requests fast), this table queues them: each lock keeps a
/// granted group and a FIFO wait queue, upgrades jump to the front, and a
/// release promotes waiters strictly from the front (no starvation, and the
/// grant order is a pure function of the request order — deterministic).
/// Blocking policy lives above: the TxnManager runs deadlock detection over
/// the wait queues of every table.
class LockManager {
 public:
  enum class Outcome { kGranted, kWait };

  /// A request granted as a side effect of a release/cancel; the owner's
  /// scheduler resumes the waiting transaction.
  struct Grant {
    uint64_t txn;
    LockId id;
  };

  LockManager() = default;
  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  /// Requests `mode` on `id`. Re-acquisition at (or below) the held mode is
  /// granted immediately; a stronger request becomes an upgrade to
  /// Supremum(held, mode). A transaction may have at most one waiting
  /// request per table at a time.
  Outcome Acquire(uint64_t txn, LockId id, LockMode mode);

  /// Cancels `txn`'s waiting request (if any); queue removal can promote
  /// waiters behind it.
  void CancelWait(uint64_t txn, std::vector<Grant>* grants);

  /// Releases everything `txn` holds, promoting newly grantable waiters.
  void Release(uint64_t txn, std::vector<Grant>* grants);

  /// Transactions `txn`'s waiting request is stuck behind: incompatible
  /// members of the granted group plus everyone queued ahead of it (FIFO
  /// promotion stops at the first blocked waiter, so queue order is a real
  /// dependency). Sorted, deduplicated, never contains `txn`.
  std::vector<uint64_t> Blockers(uint64_t txn) const;

  bool HoldsAtLeast(uint64_t txn, LockId id, LockMode mode) const;
  bool IsWaiting(uint64_t txn) const {
    return wait_key_.find(txn) != wait_key_.end();
  }
  size_t held_count(uint64_t txn) const;
  uint64_t acquisitions() const { return acquisitions_; }
  uint64_t waits() const { return waits_; }
  uint64_t upgrades() const { return upgrades_; }

 private:
  struct Req {
    uint64_t txn;
    LockMode mode;
    bool upgrade;
  };
  struct Entry {
    LockId id;
    std::vector<Req> granted;
    std::deque<Req> waiting;
  };

  /// Is `mode` compatible with every granted request except `txn`'s own?
  static bool CanGrant(const Entry& entry, uint64_t txn, LockMode mode);
  void PromoteWaiters(Entry& entry, std::vector<Grant>* grants);

  /// Keyed by LockId::Encode(); ordered so iteration is deterministic.
  std::map<uint64_t, Entry> table_;
  /// txn -> encoded ids of locks it holds (grant order).
  std::map<uint64_t, std::vector<uint64_t>> held_;
  /// txn -> encoded id of its single waiting request.
  std::map<uint64_t, uint64_t> wait_key_;
  uint64_t acquisitions_ = 0;
  uint64_t waits_ = 0;
  uint64_t upgrades_ = 0;
};

}  // namespace gammadb::txn

#endif  // GAMMA_TXN_LOCK_MANAGER_H_
