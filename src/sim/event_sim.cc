#include "sim/event_sim.h"

#include <algorithm>
#include <utility>

#include "common/macros.h"

namespace gammadb::sim {

void EventQueue::At(double t, std::function<void()> fn) {
  events_.push(Event{std::max(t, now_), seq_++, std::move(fn)});
}

bool EventQueue::RunOne() {
  if (events_.empty()) return false;
  // priority_queue::top() is const; the handler is moved out via the pop.
  Event event = std::move(const_cast<Event&>(events_.top()));
  events_.pop();
  GAMMA_CHECK(event.t >= now_);
  now_ = event.t;
  event.fn();
  return true;
}

void EventQueue::RunUntilIdle() {
  while (RunOne()) {
  }
}

void ResourceServer::Demand(double service_sec, std::function<void()> done) {
  GAMMA_CHECK(service_sec >= 0);
  const double start = std::max(queue_->now(), free_at_);
  free_at_ = start + service_sec;
  busy_sec_ += service_sec;
  ++jobs_;
  queue_->At(free_at_, std::move(done));
}

}  // namespace gammadb::sim
