#include "sim/cost_tracker.h"

#include <algorithm>
#include <cstdio>

#include "common/macros.h"

namespace gammadb::sim {

double NodeUsage::ElapsedSec(PhaseKind kind) const {
  if (kind == PhaseKind::kPipelined) {
    return serial_sec + std::max({disk_sec, cpu_sec, net_sec});
  }
  return serial_sec + disk_sec + cpu_sec + net_sec;
}

Resource NodeUsage::Bottleneck() const {
  if (disk_sec >= cpu_sec && disk_sec >= net_sec) {
    return disk_sec > 0 ? Resource::kDisk : Resource::kNone;
  }
  if (cpu_sec >= net_sec) return Resource::kCpu;
  return Resource::kNet;
}

void NodeUsage::Add(const NodeUsage& other) {
  disk_sec += other.disk_sec;
  cpu_sec += other.cpu_sec;
  net_sec += other.net_sec;
  serial_sec += other.serial_sec;
  seq_page_ios += other.seq_page_ios;
  rand_page_ios += other.rand_page_ios;
  pages_read += other.pages_read;
  pages_written += other.pages_written;
  buffer_hits += other.buffer_hits;
  packets_sent += other.packets_sent;
  packets_short_circuited += other.packets_short_circuited;
  packets_retransmitted += other.packets_retransmitted;
  bytes_sent += other.bytes_sent;
  bytes_short_circuited += other.bytes_short_circuited;
  control_msgs += other.control_msgs;
  tuples_routed += other.tuples_routed;
  split_streams_in += other.split_streams_in;
}

NodeUsage PhaseMetrics::Totals() const {
  NodeUsage total;
  for (const NodeUsage& usage : per_node) total.Add(usage);
  return total;
}

double QueryMetrics::TotalSec() const {
  double total = scheduling_sec;
  for (const PhaseMetrics& phase : phases) total += phase.elapsed_sec;
  return total;
}

NodeUsage QueryMetrics::Totals() const {
  NodeUsage total;
  for (const PhaseMetrics& phase : phases) total.Add(phase.Totals());
  return total;
}

double QueryMetrics::ShortCircuitFraction() const {
  const NodeUsage total = Totals();
  const uint64_t all = total.packets_sent + total.packets_short_circuited;
  if (all == 0) return 0.0;
  return static_cast<double>(total.packets_short_circuited) /
         static_cast<double>(all);
}

std::string QueryMetrics::Summary() const {
  const NodeUsage total = Totals();
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%.3fs (sched %.3fs, %zu phases, %llu pages, %llu pkts, "
                "sc %.0f%%, %u overflow rounds)",
                TotalSec(), scheduling_sec, phases.size(),
                static_cast<unsigned long long>(total.pages_read +
                                                total.pages_written),
                static_cast<unsigned long long>(total.packets_sent +
                                                total.packets_short_circuited),
                100.0 * ShortCircuitFraction(), overflow_rounds);
  return buf;
}

CostTracker::CostTracker(const MachineParams& hw, int num_nodes) : hw_(hw) {
  GAMMA_CHECK(num_nodes > 0);
  nodes_.resize(static_cast<size_t>(num_nodes));
}

void CostTracker::BeginPhase(std::string name, PhaseKind kind) {
  GAMMA_CHECK_MSG(!in_phase_, "BeginPhase inside an open phase");
  phase_name_ = std::move(name);
  phase_kind_ = kind;
  phase_ring_bytes_ = 0;
  for (NodeUsage& node : nodes_) node = NodeUsage{};
  in_phase_ = true;
}

void CostTracker::EndPhase() {
  GAMMA_CHECK_MSG(in_phase_, "EndPhase without BeginPhase");
  PhaseMetrics phase;
  phase.name = phase_name_;
  phase.kind = phase_kind_;
  phase.ring_bytes = phase_ring_bytes_;
  phase.per_node = nodes_;

  double slowest = 0;
  for (int i = 0; i < num_nodes(); ++i) {
    const double elapsed = nodes_[static_cast<size_t>(i)].ElapsedSec(phase_kind_);
    if (elapsed > slowest) {
      slowest = elapsed;
      phase.bottleneck_node = i;
      phase.bottleneck_resource = nodes_[static_cast<size_t>(i)].Bottleneck();
    }
  }
  const double ring_sec =
      static_cast<double>(phase_ring_bytes_) / hw_.net.ring_bytes_per_sec;
  if (ring_sec > slowest) {
    phase.elapsed_sec = ring_sec;
    phase.ring_limited = true;
  } else {
    phase.elapsed_sec = slowest;
  }
  metrics_.phases.push_back(std::move(phase));
  in_phase_ = false;
}

void CostTracker::ChargeDiskRead(int node, uint64_t bytes, bool sequential) {
  NodeUsage& usage = nodes_.at(static_cast<size_t>(node));
  usage.disk_sec += hw_.disk.AccessSec(bytes, sequential);
  usage.cpu_sec += hw_.cpu.InstrSec(hw_.cost.instr_per_page_io);
  usage.pages_read += 1;
  (sequential ? usage.seq_page_ios : usage.rand_page_ios) += 1;
}

void CostTracker::ChargeDiskWrite(int node, uint64_t bytes, bool sequential) {
  NodeUsage& usage = nodes_.at(static_cast<size_t>(node));
  usage.disk_sec += hw_.disk.AccessSec(bytes, sequential);
  usage.cpu_sec += hw_.cpu.InstrSec(hw_.cost.instr_per_page_io);
  usage.pages_written += 1;
  (sequential ? usage.seq_page_ios : usage.rand_page_ios) += 1;
}

void CostTracker::ChargeBufferHit(int node) {
  NodeUsage& usage = nodes_.at(static_cast<size_t>(node));
  usage.cpu_sec += hw_.cpu.InstrSec(hw_.cost.instr_per_page_hit);
  usage.buffer_hits += 1;
}

void CostTracker::ChargeCpu(int node, double instructions) {
  nodes_.at(static_cast<size_t>(node)).cpu_sec +=
      hw_.cpu.InstrSec(instructions);
}

void CostTracker::ChargeSerialSec(int node, double sec) {
  nodes_.at(static_cast<size_t>(node)).serial_sec += sec;
}

void CostTracker::ChargeDataPacket(int src, int dst, uint64_t bytes,
                                   bool force_network) {
  NodeUsage& sender = nodes_.at(static_cast<size_t>(src));
  if (src == dst && !force_network) {
    // Short-circuited by the communications software (§2): never touches
    // the NIC or the ring — and can never be dropped.
    sender.cpu_sec +=
        hw_.cpu.InstrSec(hw_.cost.instr_per_packet_shortcircuit);
    sender.packets_short_circuited += 1;
    sender.bytes_short_circuited += bytes;
    return;
  }
  // A dropped packet is detected and re-sent by the link-level protocol:
  // same data arrives, the wire and protocol work is paid twice.
  const bool dropped = faults_ != nullptr && faults_->OnPacket(src);
  const double sends = dropped ? 2.0 : 1.0;
  if (dropped) sender.packets_retransmitted += 1;
  if (src == dst) {
    // force_network: out through the NIC and back in at the same node.
    const double nic_sec =
        2.0 * static_cast<double>(bytes) / hw_.net.nic_bytes_per_sec;
    sender.cpu_sec +=
        sends * 2.0 * hw_.cpu.InstrSec(hw_.cost.instr_per_packet_protocol);
    sender.net_sec += sends * nic_sec;
    sender.packets_sent += 1;
    sender.bytes_sent += bytes;
    phase_ring_bytes_ += static_cast<uint64_t>(sends) * bytes;
    return;
  }
  NodeUsage& receiver = nodes_.at(static_cast<size_t>(dst));
  const double nic_sec = static_cast<double>(bytes) / hw_.net.nic_bytes_per_sec;
  sender.cpu_sec +=
      sends * hw_.cpu.InstrSec(hw_.cost.instr_per_packet_protocol);
  sender.net_sec += sends * nic_sec;
  sender.packets_sent += 1;
  sender.bytes_sent += bytes;
  receiver.cpu_sec += hw_.cpu.InstrSec(hw_.cost.instr_per_packet_protocol);
  receiver.net_sec += sends * nic_sec;
  phase_ring_bytes_ += static_cast<uint64_t>(sends) * bytes;
}

void CostTracker::ChargeControlMessage(int src, int dst, bool blocking) {
  NodeUsage& sender = nodes_.at(static_cast<size_t>(src));
  sender.control_msgs += 1;
  if (src == dst) {
    sender.cpu_sec +=
        hw_.cpu.InstrSec(hw_.cost.instr_per_packet_shortcircuit);
    return;
  }
  // A small message's ~7 ms end-to-end latency is dominated by protocol CPU
  // at both ends; model it as half the latency of busy CPU on each side.
  sender.cpu_sec += hw_.net.control_msg_sec / 2;
  nodes_.at(static_cast<size_t>(dst)).cpu_sec += hw_.net.control_msg_sec / 2;
  if (blocking) sender.serial_sec += hw_.net.control_msg_sec;
}

void CostTracker::CountTupleRouted(int dst) {
  nodes_.at(static_cast<size_t>(dst)).tuples_routed += 1;
}

void CostTracker::CountRouteStream(int dst) {
  nodes_.at(static_cast<size_t>(dst)).split_streams_in += 1;
}

void CostTracker::ChargeScheduling(uint32_t num_operators,
                                   uint32_t nodes_per_operator) {
  const uint32_t msgs = num_operators * nodes_per_operator *
                        hw_.net.sched_msgs_per_operator_per_node;
  metrics_.scheduling_msgs += msgs;
  metrics_.scheduling_sec += msgs * hw_.net.control_msg_sec;
}

void CostTracker::MergeUsage(const CostTracker& shard) {
  GAMMA_CHECK_MSG(in_phase_, "MergeUsage outside a phase");
  GAMMA_CHECK(shard.nodes_.size() == nodes_.size());
  GAMMA_CHECK_MSG(shard.metrics_.phases.empty() && !shard.in_phase_,
                  "shard trackers never run phases of their own");
  for (size_t i = 0; i < nodes_.size(); ++i) {
    nodes_[i].Add(shard.nodes_[i]);
  }
  phase_ring_bytes_ += shard.phase_ring_bytes_;
}

QueryMetrics CostTracker::Finish() {
  GAMMA_CHECK_MSG(!in_phase_, "Finish inside an open phase");
  return std::move(metrics_);
}

}  // namespace gammadb::sim
