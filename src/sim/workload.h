#ifndef GAMMA_SIM_WORKLOAD_H_
#define GAMMA_SIM_WORKLOAD_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/result.h"
#include "gamma/machine.h"
#include "gamma/query.h"
#include "sim/cost_tracker.h"
#include "sim/event_sim.h"

namespace gammadb::sim {

/// One statement of a workload transaction.
using Statement =
    std::variant<gamma::SelectQuery, gamma::JoinQuery, gamma::AggregateQuery,
                 gamma::AppendQuery, gamma::DeleteQuery, gamma::ModifyQuery>;

/// \brief One transaction class of the workload.
///
/// `profiles` holds the single-user QueryMetrics of each statement (from
/// ProfileStatement); the driver replays those resource demands through the
/// discrete-event servers, so a transaction's simulated duration reflects
/// queueing against everything else in flight. Empty profiles mean
/// zero-demand statements (useful for pure lock-contention tests).
///
/// When `execute_real` is set, the statements (updates only) also run for
/// real — at commit time, in commit order, under the transaction's 2PL
/// locks — so concurrent update mixes produce exactly the database state of
/// some serial schedule, and that schedule is recorded in the commit log.
struct TxnSpec {
  std::string label;
  std::vector<Statement> statements;
  std::vector<QueryMetrics> profiles;
  bool execute_real = false;
};

/// A closed-loop client: runs its script in a loop with think time between
/// transactions.
struct ClientSpec {
  std::vector<TxnSpec> script;
  double think_sec = 0;
  double think_jitter_sec = 0;
  /// Full passes over the script; 0 = keep going until `duration_sec`.
  int loops = 0;
};

struct WorkloadOptions {
  /// New transactions are submitted while now < duration_sec (0 with
  /// loop-bounded clients: run to completion).
  double duration_sec = 0;
  /// Commits before this time are excluded from throughput / response-time
  /// measurement (ramp-up).
  double warmup_sec = 0;
  /// Restart delay after a deadlock abort.
  double abort_backoff_sec = 0.05;
  uint64_t seed = 0x5EED;
};

struct ClassReport {
  std::string label;
  uint64_t committed = 0;
  uint64_t measured = 0;
  double throughput_per_sec = 0;
  double mean_response_sec = 0;
  /// Response-time quantiles from the registry histogram
  /// `workload.response_sec.<label>` (log-scale bucket upper bounds, so two
  /// runs agree exactly whenever their response sets land in the same
  /// buckets).
  double p50_response_sec = 0;
  double p95_response_sec = 0;
  double p99_response_sec = 0;
};

/// One committed transaction, in commit order. Replaying the scripts'
/// statements serially in this order must reproduce the concurrent run's
/// final database state (2PL serializability).
struct CommitRecord {
  size_t client = 0;
  size_t script_pos = 0;
  std::string label;
};

struct WorkloadReport {
  /// Simulated time when the last event fired.
  double end_sec = 0;
  uint64_t committed = 0;
  /// Deadlock-victim restarts (each also counted once in `deadlocks`).
  uint64_t aborted_retries = 0;
  uint64_t deadlocks = 0;
  uint64_t lock_acquisitions = 0;
  uint64_t lock_waits = 0;
  double lock_wait_sec = 0;
  std::vector<ClassReport> classes;
  std::vector<CommitRecord> commit_log;
  /// Busiest simulated resource over the run ("node 3 disk", "ring", ...).
  std::string bottleneck;
  double bottleneck_utilization = 0;

  const ClassReport* Class(const std::string& label) const;
};

/// Runs `stmt` single-user against `machine` and returns its cost profile.
/// Stored result relations are dropped afterwards; update statements DO
/// mutate the database (profile updates against scratch data, or use
/// zero-demand specs).
Result<QueryMetrics> ProfileStatement(gamma::GammaMachine& machine,
                                      const Statement& stmt);

/// \brief Closed-loop multi-user workload scheduler over a GammaMachine.
///
/// N clients cycle think -> begin -> lock -> work -> commit in simulated
/// time. Lock footprints (multi-granularity, derived from each statement and
/// the relation's partitioning) are acquired through the machine's
/// TxnManager one at a time; a blocked client sleeps until a commit or a
/// deadlock abort grants its request, and a victim backs off and retries its
/// whole transaction. Statement resource profiles replay as demands at
/// per-node FIFO disk/CPU/NIC servers plus the shared ring — the same
/// demand placement as AnalyzeMix, so measured asymptotic throughput can be
/// validated against the utilization-law bound.
///
/// The run is single-threaded over the event queue; everything (including
/// the host-thread count used by real statement execution) is deterministic.
class WorkloadDriver {
 public:
  WorkloadDriver(gamma::GammaMachine* machine, WorkloadOptions options);
  ~WorkloadDriver();
  WorkloadDriver(const WorkloadDriver&) = delete;
  WorkloadDriver& operator=(const WorkloadDriver&) = delete;

  void AddClient(ClientSpec spec);

  /// Runs the workload to completion and reports. Call once.
  WorkloadReport Run();

 private:
  struct Client;
  struct NodeServers;

  const TxnSpec& SpecOf(const Client& c) const;
  void StartThink(size_t ci);
  void StartTxn(size_t ci);
  void RetryTxn(size_t ci);
  void AcquireNext(size_t ci);
  void HandleVictims(const std::vector<uint64_t>& victims);
  void HandleGrants(const std::vector<txn::LockManager::Grant>& grants);
  void BeginStatement(size_t ci);
  void RunPhases(size_t ci);
  void StartPhase(size_t ci, size_t phase_idx);
  void FinishStatement(size_t ci);
  void CommitClientTxn(size_t ci);

  struct ClassAccum {
    uint64_t committed = 0;
    std::vector<double> responses;
  };

  gamma::GammaMachine* machine_;
  WorkloadOptions options_;
  EventQueue queue_;
  std::vector<std::unique_ptr<NodeServers>> servers_;
  std::unique_ptr<ResourceServer> ring_;
  std::vector<std::unique_ptr<Client>> clients_;
  std::map<uint64_t, size_t> txn_client_;
  std::map<std::string, ClassAccum> class_accum_;
  double last_measured_commit_sec_ = 0;
  WorkloadReport report_;
  txn::TxnStats base_totals_;
  bool ran_ = false;
};

}  // namespace gammadb::sim

#endif  // GAMMA_SIM_WORKLOAD_H_
