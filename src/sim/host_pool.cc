#include "sim/host_pool.h"

#include <cstdlib>

#include "common/macros.h"

namespace gammadb::sim {

namespace {

/// True on a thread currently executing a pool task: a nested RunAll from
/// operator code must not wait on workers that are busy running *it*.
thread_local bool t_inside_pool_task = false;

}  // namespace

HostPool& HostPool::Instance() {
  static HostPool* pool = new HostPool();  // leaked: workers outlive main
  return *pool;
}

int HostPool::DefaultThreads() {
  if (const char* env = std::getenv("GAMMA_HOST_THREADS");
      env != nullptr && *env != '\0') {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed >= 1) return static_cast<int>(parsed);
  }
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

HostPool::HostPool() { set_num_threads(DefaultThreads()); }

HostPool::~HostPool() { StopWorkers(); }

void HostPool::set_num_threads(int n) {
  GAMMA_CHECK_MSG(n >= 1, "host pool needs at least one thread");
  if (n == num_threads_) return;
  StopWorkers();
  num_threads_ = n;
  StartWorkers(n - 1);  // the RunAll caller is the remaining thread
}

void HostPool::StartWorkers(int count) {
  shutdown_ = false;
  for (int i = 0; i < count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void HostPool::StopWorkers() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
}

void HostPool::WorkerLoop() {
  uint64_t seen_generation = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return shutdown_ || (tasks_ != nullptr && generation_ != seen_generation);
      });
      if (shutdown_) return;
      seen_generation = generation_;
    }
    DrainTasks();
  }
}

void HostPool::DrainTasks() {
  for (;;) {
    const std::vector<std::function<void()>>* batch;
    size_t index;
    {
      std::lock_guard<std::mutex> lock(mu_);
      batch = tasks_;
      if (batch == nullptr || next_task_ >= batch->size()) return;
      index = next_task_++;
    }
    t_inside_pool_task = true;
    (*batch)[index]();
    t_inside_pool_task = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++tasks_done_;
      if (tasks_done_ == batch->size()) done_cv_.notify_all();
    }
  }
}

void HostPool::RunAll(const std::vector<std::function<void()>>& tasks) {
  if (tasks.empty()) return;
  if (num_threads_ == 1 || tasks.size() == 1 || t_inside_pool_task) {
    // Sequential reference schedule: tasks run inline, in order.
    for (const auto& task : tasks) task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_ = &tasks;
    next_task_ = 0;
    tasks_done_ = 0;
    ++generation_;
  }
  work_cv_.notify_all();
  DrainTasks();  // the caller works too
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return tasks_done_ == tasks.size(); });
    tasks_ = nullptr;
  }
}

}  // namespace gammadb::sim
