#ifndef GAMMA_SIM_MULTIUSER_H_
#define GAMMA_SIM_MULTIUSER_H_

#include <vector>

#include "sim/cost_tracker.h"

namespace gammadb::sim {

/// \brief Operational-analysis throughput model for multiuser workloads.
///
/// The paper defers multiuser evaluation to future work but states the
/// expectation it would test: "offloading the join operators to remote
/// processors will allow the processors with disks to effectively support
/// more concurrent selection and store operators" (§6.2.1). This model
/// makes that testable: given the single-query resource profiles of a
/// workload mix, the asymptotic throughput of a closed multiuser system is
/// bounded by its busiest resource (the utilization law) — so moving join
/// CPU off the disk nodes raises the bound exactly when the disk nodes are
/// the bottleneck.
struct MixItem {
  /// Single-user metrics of one query of the mix.
  QueryMetrics metrics;
  /// Relative frequency within the mix.
  double weight = 1.0;
};

struct ThroughputReport {
  /// Upper bound on mix completions per second (all weights together).
  double max_mixes_per_sec = 0;
  /// The saturated resource.
  int bottleneck_node = -1;
  Resource bottleneck_resource = Resource::kNone;
  /// True when the shared interconnect, not a node, binds throughput.
  bool ring_limited = false;
  /// Busy seconds demanded per mix at the bottleneck.
  double bottleneck_busy_sec = 0;
  /// Per-node demand (seconds of each resource per mix iteration).
  std::vector<NodeUsage> per_node_demand;
};

/// Computes the throughput bound for a mix over `num_nodes` processors with
/// the given hardware. Scheduling time is treated as demand on the
/// scheduling processor (serialized there), so over-scheduling can itself
/// become the bottleneck.
ThroughputReport AnalyzeMix(const std::vector<MixItem>& mix, int num_nodes,
                            int scheduler_node, const MachineParams& hw);

}  // namespace gammadb::sim

#endif  // GAMMA_SIM_MULTIUSER_H_
