#ifndef GAMMA_SIM_HOST_POOL_H_
#define GAMMA_SIM_HOST_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gammadb::sim {

/// \brief Fixed pool of host worker threads that runs one batch of
/// independent tasks per call — the substrate the Gamma machine uses to run
/// its simulated nodes' per-phase work on real cores.
///
/// The pool is a process-wide singleton sized from GAMMA_HOST_THREADS
/// (default: hardware_concurrency). With 1 thread every batch runs inline on
/// the calling thread, in task order, with no worker handoff — the
/// sequential reference schedule. With N threads the same tasks run
/// concurrently; the caller is responsible for making tasks independent
/// (the machine layer gives each task exclusive ownership of one node's
/// storage and a private cost shard, merging shards in canonical order at
/// the barrier RunAll provides).
///
/// RunAll is a full barrier: it returns only after every task has finished.
/// The calling thread participates in the work, so a pool of size N uses
/// N-1 workers. Nested RunAll from inside a task degrades to inline
/// execution (no deadlock, same results).
class HostPool {
 public:
  static HostPool& Instance();

  HostPool(const HostPool&) = delete;
  HostPool& operator=(const HostPool&) = delete;

  /// Threads the pool schedules over (>= 1).
  int num_threads() const { return num_threads_; }

  /// Resizes the pool (test / bench hook; also how --threads is applied).
  /// Must not be called while a RunAll is in flight.
  void set_num_threads(int n);

  /// Runs every task to completion. Tasks may run in any order on any
  /// thread; the call itself is the barrier.
  void RunAll(const std::vector<std::function<void()>>& tasks);

  /// GAMMA_HOST_THREADS when set and valid, else hardware_concurrency.
  static int DefaultThreads();

 private:
  HostPool();
  ~HostPool();

  void StartWorkers(int count);
  void StopWorkers();
  void WorkerLoop();
  void DrainTasks();

  std::vector<std::thread> workers_;
  int num_threads_ = 1;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::vector<std::function<void()>>* tasks_ = nullptr;
  size_t next_task_ = 0;
  size_t tasks_done_ = 0;
  uint64_t generation_ = 0;
  bool shutdown_ = false;
};

}  // namespace gammadb::sim

#endif  // GAMMA_SIM_HOST_POOL_H_
