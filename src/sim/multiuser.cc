#include "sim/multiuser.h"

#include <algorithm>

#include "common/macros.h"

namespace gammadb::sim {

ThroughputReport AnalyzeMix(const std::vector<MixItem>& mix, int num_nodes,
                            int scheduler_node, const MachineParams& hw) {
  GAMMA_CHECK(num_nodes > 0);
  GAMMA_CHECK(scheduler_node >= 0 && scheduler_node < num_nodes);
  ThroughputReport report;
  report.per_node_demand.assign(static_cast<size_t>(num_nodes), NodeUsage{});
  double ring_bytes_per_mix = 0;
  double scheduler_sec_per_mix = 0;

  for (const MixItem& item : mix) {
    scheduler_sec_per_mix += item.weight * item.metrics.scheduling_sec;
    for (const PhaseMetrics& phase : item.metrics.phases) {
      ring_bytes_per_mix +=
          item.weight * static_cast<double>(phase.ring_bytes);
      for (size_t node = 0;
           node < phase.per_node.size() &&
           node < report.per_node_demand.size();
           ++node) {
        const NodeUsage& usage = phase.per_node[node];
        NodeUsage& demand = report.per_node_demand[node];
        demand.disk_sec += item.weight * usage.disk_sec;
        demand.cpu_sec += item.weight * usage.cpu_sec;
        demand.net_sec += item.weight * usage.net_sec;
      }
    }
  }
  report.per_node_demand[static_cast<size_t>(scheduler_node)].cpu_sec +=
      scheduler_sec_per_mix;

  // Utilization law: throughput <= 1 / busiest per-mix demand.
  double busiest = 0;
  for (int node = 0; node < num_nodes; ++node) {
    const NodeUsage& demand = report.per_node_demand[static_cast<size_t>(node)];
    for (const auto& [resource, seconds] :
         {std::pair{Resource::kDisk, demand.disk_sec},
          std::pair{Resource::kCpu, demand.cpu_sec},
          std::pair{Resource::kNet, demand.net_sec}}) {
      if (seconds > busiest) {
        busiest = seconds;
        report.bottleneck_node = node;
        report.bottleneck_resource = resource;
      }
    }
  }
  const double ring_sec = ring_bytes_per_mix / hw.net.ring_bytes_per_sec;
  if (ring_sec > busiest) {
    busiest = ring_sec;
    report.ring_limited = true;
    report.bottleneck_node = -1;
    report.bottleneck_resource = Resource::kNet;
  }
  report.bottleneck_busy_sec = busiest;
  report.max_mixes_per_sec = busiest > 0 ? 1.0 / busiest : 0.0;
  return report;
}

}  // namespace gammadb::sim
