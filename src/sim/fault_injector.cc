#include "sim/fault_injector.h"

#include "common/hash.h"
#include "common/macros.h"
#include "obs/metrics_registry.h"

namespace {

// Process-wide fault telemetry. Counters are commutative, so feeding them
// from node tasks on any host thread keeps totals deterministic.
gammadb::obs::Counter& NodeDeathCounter() {
  static gammadb::obs::Counter& c =
      gammadb::obs::MetricsRegistry::Instance().counter("fault.node_deaths");
  return c;
}

}  // namespace

namespace gammadb::sim {

namespace {

/// Disk stream seed for node i: hash the master seed with the node id so
/// nearby seeds do not produce correlated schedules. (Unchanged from the
/// sequential injector, so disk fault schedules are reproducible across
/// versions.)
uint64_t NodeSeed(uint64_t master, uint64_t node) {
  const uint64_t key[2] = {master, node};
  return HashBytes(key, sizeof(key), 0xFA017);
}

/// Packet stream seed for sender i: a third key word keeps every sender's
/// packet stream independent of all the disk streams.
uint64_t PacketSeed(uint64_t master, uint64_t node) {
  const uint64_t key[3] = {master, node, 0x9AC4E7};
  return HashBytes(key, sizeof(key), 0xFA017);
}

}  // namespace

FaultInjector::FaultInjector(const FaultConfig& config, int num_disk_nodes,
                             int num_packet_nodes)
    : config_(config) {
  GAMMA_CHECK(num_disk_nodes > 0);
  GAMMA_CHECK(config.transient_read_prob >= 0 &&
              config.transient_read_prob < 1);
  GAMMA_CHECK(config.transient_write_prob >= 0 &&
              config.transient_write_prob < 1);
  GAMMA_CHECK(config.corrupt_read_prob >= 0 && config.corrupt_read_prob < 1);
  GAMMA_CHECK(config.drop_packet_prob >= 0 && config.drop_packet_prob < 1);
  nodes_.reserve(static_cast<size_t>(num_disk_nodes));
  for (int i = 0; i < num_disk_nodes; ++i) {
    nodes_.emplace_back(NodeSeed(config.seed, static_cast<uint64_t>(i)));
  }
  const int packet_count =
      num_packet_nodes < 0 ? num_disk_nodes : num_packet_nodes;
  GAMMA_CHECK(packet_count >= num_disk_nodes);
  packet_nodes_.reserve(static_cast<size_t>(packet_count));
  for (int i = 0; i < packet_count; ++i) {
    packet_nodes_.emplace_back(
        PacketSeed(config.seed, static_cast<uint64_t>(i)));
  }
}

int FaultInjector::AddDiskNode() {
  const int node = static_cast<int>(nodes_.size());
  nodes_.emplace_back(NodeSeed(config_.seed, static_cast<uint64_t>(node)));
  packet_nodes_.insert(
      packet_nodes_.begin() + node,
      PacketState(PacketSeed(config_.seed, static_cast<uint64_t>(node))));
  return node;
}

FaultInjector::NodeState& FaultInjector::node(int i) {
  GAMMA_CHECK_MSG(i >= 0 && static_cast<size_t>(i) < nodes_.size(),
                  "fault injector: node out of range");
  return nodes_[static_cast<size_t>(i)];
}

void FaultInjector::KillNode(int i) {
  NodeState& state = node(i);
  if (!state.dead) {
    NodeDeathCounter().Inc();
    if (journal_ != nullptr) {
      journal_->Emit(i, obs::JournalEventKind::kFaultNodeDeath);
    }
  }
  state.dead = true;
}

void FaultInjector::KillNodeAfterOps(int i, uint64_t disk_ops) {
  NodeState& state = node(i);
  state.death_at_ops = state.ops + disk_ops;
}

void FaultInjector::KillNodeAtCommit(int i, uint64_t commits) {
  GAMMA_CHECK(commits > 0);
  NodeState& state = node(i);
  state.death_at_commit = state.commit_points + commits;
}

bool FaultInjector::OnCommitPoint(int i) {
  NodeState& state = node(i);
  if (state.dead) return true;
  ++state.commit_points;
  if (state.commit_points >= state.death_at_commit) {
    state.dead = true;
    NodeDeathCounter().Inc();
    if (journal_ != nullptr) {
      journal_->Emit(i, obs::JournalEventKind::kFaultNodeDeath,
                     static_cast<int64_t>(state.commit_points));
    }
    return true;
  }
  return false;
}

void FaultInjector::ReviveNode(int i) {
  NodeState& state = node(i);
  state.dead = false;
  state.death_at_ops = UINT64_MAX;
  state.death_at_commit = UINT64_MAX;
}

bool FaultInjector::IsDead(int i) const {
  return const_cast<FaultInjector*>(this)->node(i).dead;
}

int FaultInjector::num_live() const {
  int live = 0;
  for (const NodeState& state : nodes_) {
    if (!state.dead) ++live;
  }
  return live;
}

void FaultInjector::TickOps(NodeState& state, int i) {
  ++state.ops;
  if (state.ops >= state.death_at_ops && !state.dead) {
    state.dead = true;
    NodeDeathCounter().Inc();
    if (journal_ != nullptr) {
      journal_->Emit(i, obs::JournalEventKind::kFaultNodeDeath,
                     static_cast<int64_t>(state.ops));
    }
  }
}

DiskFault FaultInjector::OnRead(int i) {
  NodeState& state = node(i);
  TickOps(state, i);
  if (config_.transient_read_prob > 0 &&
      state.rng.NextDouble() < config_.transient_read_prob) {
    ++state.stats.transient_read_faults;
    static obs::Counter& transient_reads =
        obs::MetricsRegistry::Instance().counter("fault.transient_reads");
    transient_reads.Inc();
    if (journal_ != nullptr) {
      journal_->Emit(i, obs::JournalEventKind::kFaultTransientRead,
                     static_cast<int64_t>(state.ops));
    }
    return DiskFault::kTransient;
  }
  if (config_.corrupt_read_prob > 0 &&
      state.rng.NextDouble() < config_.corrupt_read_prob) {
    ++state.stats.corrupted_reads;
    static obs::Counter& corrupted =
        obs::MetricsRegistry::Instance().counter("fault.corrupted_reads");
    corrupted.Inc();
    if (journal_ != nullptr) {
      journal_->Emit(i, obs::JournalEventKind::kFaultCorruptRead,
                     static_cast<int64_t>(state.ops));
    }
    return DiskFault::kCorrupt;
  }
  return DiskFault::kNone;
}

DiskFault FaultInjector::OnWrite(int i) {
  NodeState& state = node(i);
  TickOps(state, i);
  if (config_.transient_write_prob > 0 &&
      state.rng.NextDouble() < config_.transient_write_prob) {
    ++state.stats.transient_write_faults;
    static obs::Counter& transient_writes =
        obs::MetricsRegistry::Instance().counter("fault.transient_writes");
    transient_writes.Inc();
    if (journal_ != nullptr) {
      journal_->Emit(i, obs::JournalEventKind::kFaultTransientWrite,
                     static_cast<int64_t>(state.ops));
    }
    return DiskFault::kTransient;
  }
  return DiskFault::kNone;
}

bool FaultInjector::OnPacket(int src_node) {
  if (config_.drop_packet_prob <= 0) return false;
  GAMMA_CHECK_MSG(
      src_node >= 0 && static_cast<size_t>(src_node) < packet_nodes_.size(),
      "fault injector: packet sender out of range");
  PacketState& state = packet_nodes_[static_cast<size_t>(src_node)];
  if (state.rng.NextDouble() < config_.drop_packet_prob) {
    ++state.dropped;
    static obs::Counter& dropped =
        obs::MetricsRegistry::Instance().counter("fault.packets_dropped");
    dropped.Inc();
    if (journal_ != nullptr) {
      journal_->Emit(src_node, obs::JournalEventKind::kFaultPacketDrop,
                     static_cast<int64_t>(state.dropped));
    }
    return true;
  }
  return false;
}

FaultInjector::Stats FaultInjector::stats() const {
  Stats total;
  for (const NodeState& state : nodes_) {
    total.transient_read_faults += state.stats.transient_read_faults;
    total.transient_write_faults += state.stats.transient_write_faults;
    total.corrupted_reads += state.stats.corrupted_reads;
  }
  for (const PacketState& state : packet_nodes_) {
    total.packets_dropped += state.dropped;
  }
  return total;
}

}  // namespace gammadb::sim
