#include "sim/fault_injector.h"

#include "common/hash.h"
#include "common/macros.h"

namespace gammadb::sim {

namespace {

/// Stream seed for node i: hash the master seed with the node id so nearby
/// seeds do not produce correlated schedules.
uint64_t NodeSeed(uint64_t master, uint64_t node) {
  const uint64_t key[2] = {master, node};
  return HashBytes(key, sizeof(key), 0xFA017);
}

}  // namespace

FaultInjector::FaultInjector(const FaultConfig& config, int num_disk_nodes)
    : config_(config), packet_rng_(NodeSeed(config.seed, 0xFFFF)) {
  GAMMA_CHECK(num_disk_nodes > 0);
  GAMMA_CHECK(config.transient_read_prob >= 0 &&
              config.transient_read_prob < 1);
  GAMMA_CHECK(config.transient_write_prob >= 0 &&
              config.transient_write_prob < 1);
  GAMMA_CHECK(config.corrupt_read_prob >= 0 && config.corrupt_read_prob < 1);
  GAMMA_CHECK(config.drop_packet_prob >= 0 && config.drop_packet_prob < 1);
  nodes_.reserve(static_cast<size_t>(num_disk_nodes));
  for (int i = 0; i < num_disk_nodes; ++i) {
    nodes_.emplace_back(NodeSeed(config.seed, static_cast<uint64_t>(i)));
  }
}

FaultInjector::NodeState& FaultInjector::node(int i) {
  GAMMA_CHECK_MSG(i >= 0 && static_cast<size_t>(i) < nodes_.size(),
                  "fault injector: node out of range");
  return nodes_[static_cast<size_t>(i)];
}

void FaultInjector::KillNode(int i) { node(i).dead = true; }

void FaultInjector::KillNodeAfterOps(int i, uint64_t disk_ops) {
  NodeState& state = node(i);
  state.death_at_ops = state.ops + disk_ops;
}

void FaultInjector::ReviveNode(int i) {
  NodeState& state = node(i);
  state.dead = false;
  state.death_at_ops = UINT64_MAX;
}

bool FaultInjector::IsDead(int i) const {
  return const_cast<FaultInjector*>(this)->node(i).dead;
}

int FaultInjector::num_live() const {
  int live = 0;
  for (const NodeState& state : nodes_) {
    if (!state.dead) ++live;
  }
  return live;
}

void FaultInjector::TickOps(NodeState& state) {
  ++state.ops;
  if (state.ops >= state.death_at_ops) state.dead = true;
}

DiskFault FaultInjector::OnRead(int i) {
  NodeState& state = node(i);
  TickOps(state);
  if (config_.transient_read_prob > 0 &&
      state.rng.NextDouble() < config_.transient_read_prob) {
    ++stats_.transient_read_faults;
    return DiskFault::kTransient;
  }
  if (config_.corrupt_read_prob > 0 &&
      state.rng.NextDouble() < config_.corrupt_read_prob) {
    ++stats_.corrupted_reads;
    return DiskFault::kCorrupt;
  }
  return DiskFault::kNone;
}

DiskFault FaultInjector::OnWrite(int i) {
  NodeState& state = node(i);
  TickOps(state);
  if (config_.transient_write_prob > 0 &&
      state.rng.NextDouble() < config_.transient_write_prob) {
    ++stats_.transient_write_faults;
    return DiskFault::kTransient;
  }
  return DiskFault::kNone;
}

bool FaultInjector::OnPacket(int /*src_node*/) {
  if (config_.drop_packet_prob <= 0) return false;
  if (packet_rng_.NextDouble() < config_.drop_packet_prob) {
    ++stats_.packets_dropped;
    return true;
  }
  return false;
}

}  // namespace gammadb::sim
