#include "sim/hardware.h"

namespace gammadb::sim {

MachineParams MachineParams::GammaDefaults() {
  MachineParams p;
  // Struct member defaults are already the Gamma values; keep this factory
  // explicit so call sites read as a configuration choice.
  return p;
}

MachineParams MachineParams::TeradataDefaults() {
  MachineParams p;
  // Hitachi 525 MB 8.8" drives: slower positioning, ~1.8 MB/s transfer.
  p.disk.transfer_bytes_per_sec = 1.8e6;
  p.disk.positioning_sec = 0.025;
  p.disk.sequential_overhead_sec = 0.004;
  // Intel 80286 AMP processor, nominally ~1 MIPS.
  p.cpu.mips = 1.0;
  // Y-net: 12 MB/s aggregate; the per-AMP interface is modelled at 1 MB/s.
  p.net.nic_bytes_per_sec = 1.0e6;
  p.net.ring_bytes_per_sec = 12.0e6;
  p.net.packet_payload_bytes = 2048;
  p.net.control_msg_sec = 0.005;
  p.net.sched_msgs_per_operator_per_node = 2;
  // Teradata's software path lengths are far longer than Gamma's: predicates
  // are interpreted rather than compiled into machine code, and every stored
  // tuple runs the full recovery path ([DEWI87]; fitted from Table 1's
  // Teradata column, ~4 ms of CPU per scanned tuple at 1 MIPS).
  p.cost.instr_per_tuple_scan = 1000;
  p.cost.instr_per_attr_compare = 1200;
  p.cost.instr_per_tuple_copy = 1000;
  p.cost.instr_per_tuple_hash = 300;
  p.cost.instr_per_tuple_store = 12000;
  p.cost.instr_per_packet_protocol = 4000;
  p.cost.instr_per_sort_compare = 600;
  p.cost.instr_per_page_io = 4000;
  return p;
}

}  // namespace gammadb::sim
