#ifndef GAMMA_SIM_EVENT_SIM_H_
#define GAMMA_SIM_EVENT_SIM_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace gammadb::sim {

/// \brief Deterministic discrete-event queue for the multi-user scheduler.
///
/// Events fire in (time, insertion order) — ties resolve by the order the
/// events were scheduled, so a run is a pure function of the schedule. The
/// event loop itself is single-threaded; any real query execution an event
/// triggers goes through the (already deterministic) host pool.
class EventQueue {
 public:
  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  double now() const { return now_; }

  /// Schedules `fn` at absolute simulated time `t` (clamped to now()).
  void At(double t, std::function<void()> fn);
  void After(double dt, std::function<void()> fn) { At(now_ + dt, std::move(fn)); }

  /// Pops and runs the next event. Returns false when the queue is empty.
  bool RunOne();
  /// Runs until no events remain.
  void RunUntilIdle();

  size_t pending() const { return events_.size(); }

 private:
  struct Event {
    double t;
    uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> events_;
  double now_ = 0;
  uint64_t seq_ = 0;
};

/// \brief FIFO single server for one simulated resource (a node's disk, CPU
/// or NIC, or the shared token ring).
///
/// Demands queue in arrival order: a job arriving at `now` starts at
/// max(now, previous completion) and completes `service_sec` later, when
/// `done` fires. Tracks busy seconds for utilization reporting.
class ResourceServer {
 public:
  explicit ResourceServer(EventQueue* queue) : queue_(queue) {}
  ResourceServer(const ResourceServer&) = delete;
  ResourceServer& operator=(const ResourceServer&) = delete;

  void Demand(double service_sec, std::function<void()> done);

  double busy_sec() const { return busy_sec_; }
  uint64_t jobs() const { return jobs_; }
  double Utilization(double elapsed_sec) const {
    return elapsed_sec > 0 ? busy_sec_ / elapsed_sec : 0;
  }

 private:
  EventQueue* queue_;
  double free_at_ = 0;
  double busy_sec_ = 0;
  uint64_t jobs_ = 0;
};

}  // namespace gammadb::sim

#endif  // GAMMA_SIM_EVENT_SIM_H_
