#ifndef GAMMA_SIM_HARDWARE_H_
#define GAMMA_SIM_HARDWARE_H_

#include <cstdint>

#include "common/units.h"

namespace gammadb::sim {

/// \brief Disk drive timing parameters.
///
/// Gamma defaults model the Fujitsu 333 MB 8" drives: the paper states a
/// 32 KB transfer takes 13 ms ("very close to the time required to perform a
/// random disk seek") and that the track size is 40 KB, giving a transfer
/// rate of ~2.46 MB/s and an average positioning (seek + rotational) time of
/// ~13 ms.
struct DiskParams {
  /// Sustained media transfer rate in bytes/second.
  double transfer_bytes_per_sec = 2.46e6;
  /// Average positioning time (seek + rotational latency) for a random
  /// access, in seconds.
  double positioning_sec = 0.013;
  /// Per-page overhead on a *sequential* access. WiSS issued synchronous
  /// page-at-a-time reads, so consecutive pages usually missed the next
  /// sector and waited most of a rotation (~16.7 ms at 3600 rpm); this is
  /// what makes a one-processor 100k-tuple scan take ~110 s (Figure 1) and
  /// the 2 KB-page system disk-bound (§5.2.2).
  double sequential_overhead_sec = 0.012;

  /// Seconds to read or write `bytes` with the given access pattern.
  double AccessSec(uint64_t bytes, bool sequential) const {
    const double transfer = static_cast<double>(bytes) / transfer_bytes_per_sec;
    return transfer + (sequential ? sequential_overhead_sec : positioning_sec);
  }
};

/// \brief Processor speed. The VAX 11/750 is a 0.6 MIPS machine (paper §5.2.2).
struct CpuParams {
  double mips = 0.6;

  double InstrSec(double instructions) const {
    return instructions / (mips * 1e6);
  }
};

/// \brief Interconnect parameters.
///
/// Gamma's 80 Mbit/s token ring is never the bottleneck (§5.2.1); the path
/// from memory to the network is limited by the 4 Mbit/s Unibus on each VAX.
/// Small control messages cost ~7 ms (§6.2.3), and data packets are 2 KB.
struct NetParams {
  double nic_bytes_per_sec = MbitPerSecToBytesPerSec(4.0);
  double ring_bytes_per_sec = MbitPerSecToBytesPerSec(80.0);
  uint32_t packet_payload_bytes = 2048;
  double control_msg_sec = 0.007;
  /// Control messages the scheduler exchanges per operator per participating
  /// node (§6.2.3: "Gamma requires four messages to schedule a query
  /// operator per node").
  uint32_t sched_msgs_per_operator_per_node = 4;
};

/// \brief Software path lengths, in machine instructions.
///
/// These are the calibration knobs: they are fitted so that the Table 1/2/3
/// configurations land near the paper's absolute numbers (see
/// tests/calibration_test.cc), and each is a plausible 1988 path length.
struct CostConstants {
  /// Buffer-pool + file-system CPU per page I/O (WiSS page fix path).
  double instr_per_page_io = 3000;
  /// Buffer-pool hit (page already resident).
  double instr_per_page_hit = 300;
  /// Locating + fetching one tuple during a scan (slot lookup, bookkeeping).
  double instr_per_tuple_scan = 250;
  /// One compiled-predicate attribute comparison.
  double instr_per_attr_compare = 100;
  /// Copying one tuple into an output (packet or page) buffer and running
  /// the per-tuple slice of the communications path.
  double instr_per_tuple_copy = 700;
  /// Hashing one attribute (split tables, join partitioning).
  double instr_per_tuple_hash = 100;
  /// Inserting one tuple into a join hash table.
  double instr_per_tuple_build = 300;
  /// Probing the hash table with one tuple (bucket walk + join test).
  double instr_per_tuple_probe = 300;
  /// Appending one tuple to a result file (page management amortized).
  double instr_per_tuple_store = 700;
  /// Datagram protocol cost per packet, charged at each end (sliding-window
  /// reliable datagrams on a 0.6 MIPS machine).
  double instr_per_packet_protocol = 3000;
  /// Short-circuited (same node) message delivery per packet.
  double instr_per_packet_shortcircuit = 500;
  /// Handing one tuple to a consumer on the same processor (shared-memory
  /// queue; no packet assembly or protocol). This asymmetry versus
  /// instr_per_tuple_copy is what makes Local joins on the partitioning
  /// attribute the fastest placement (§6.2.1).
  double instr_per_tuple_local_handoff = 150;
  /// CPU per B-tree level during a descent (binary search within a node).
  double instr_per_btree_level = 300;
  /// Acquiring/releasing one lock (concurrency-control path).
  double instr_per_lock = 200;
  /// One comparison during sorting (Teradata sort-merge path).
  double instr_per_sort_compare = 150;
  /// Updating one aggregate accumulator.
  double instr_per_tuple_agg = 150;
  /// Writing/applying one deferred-update record for index maintenance.
  double instr_per_deferred_update = 500;
};

/// \brief Complete hardware + software-path description of one machine.
struct MachineParams {
  DiskParams disk;
  CpuParams cpu;
  NetParams net;
  CostConstants cost;

  /// The Gamma configuration evaluated in the paper: 17 VAX 11/750s, 8 with
  /// Fujitsu disks, 80 Mbit/s token ring, 4 Mbit/s Unibus NIC.
  static MachineParams GammaDefaults();

  /// The Teradata DBC/1012 configuration: 20 AMPs (Intel 80286, ~1 MIPS)
  /// with two 525 MB Hitachi drives each, 12 MB/s Y-net. Software path
  /// lengths are far longer than Gamma's (interpreted predicates, per-tuple
  /// recovery logging); they are fitted from the Teradata columns of
  /// Tables 1-3 via [DEWI87]'s analysis.
  static MachineParams TeradataDefaults();
};

}  // namespace gammadb::sim

#endif  // GAMMA_SIM_HARDWARE_H_
