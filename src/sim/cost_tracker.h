#ifndef GAMMA_SIM_COST_TRACKER_H_
#define GAMMA_SIM_COST_TRACKER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sim/fault_injector.h"
#include "sim/hardware.h"

namespace gammadb::sim {

/// How the operators in a phase use resources.
enum class PhaseKind {
  /// Dataflow phase: scans, splits, network and downstream operators all run
  /// concurrently, so a node's elapsed time is its bottleneck resource
  /// (max of disk / CPU / NIC busy time).
  kPipelined,
  /// Request/response phase (single-tuple operations): nothing overlaps, so
  /// a node's elapsed time is the sum of its resource busy times.
  kSequential,
};

enum class Resource { kDisk, kCpu, kNet, kNone };

/// Resource busy time and event counters for one node within one phase.
struct NodeUsage {
  double disk_sec = 0;
  double cpu_sec = 0;
  double net_sec = 0;
  /// Latency that can never overlap with anything (e.g. waiting on a control
  /// message round trip).
  double serial_sec = 0;

  uint64_t seq_page_ios = 0;
  uint64_t rand_page_ios = 0;
  uint64_t pages_read = 0;
  uint64_t pages_written = 0;
  uint64_t buffer_hits = 0;
  uint64_t packets_sent = 0;
  uint64_t packets_short_circuited = 0;
  /// Packets the fault injector dropped; each was re-sent at full cost.
  uint64_t packets_retransmitted = 0;
  uint64_t bytes_sent = 0;
  uint64_t bytes_short_circuited = 0;
  uint64_t control_msgs = 0;
  /// Tuples delivered to this node by key-based split-table routing
  /// (hash / range / bucket-map). Round-robin and single-destination
  /// routes are excluded so the counter isolates redistribution balance
  /// rather than result placement.
  uint64_t tuples_routed = 0;
  /// Key-routed split streams that named this node as a destination
  /// (counted at stream close), marking it a redistribution target even
  /// when it received zero tuples.
  uint64_t split_streams_in = 0;

  double ElapsedSec(PhaseKind kind) const;
  Resource Bottleneck() const;
  void Add(const NodeUsage& other);
};

/// Resolved timing for one completed phase.
struct PhaseMetrics {
  std::string name;
  PhaseKind kind = PhaseKind::kPipelined;
  double elapsed_sec = 0;
  uint64_t ring_bytes = 0;
  /// True when the shared interconnect, not any node, set the elapsed time.
  bool ring_limited = false;
  int bottleneck_node = -1;
  Resource bottleneck_resource = Resource::kNone;
  std::vector<NodeUsage> per_node;

  NodeUsage Totals() const;
};

/// Complete simulated-time accounting for one query.
struct QueryMetrics {
  double scheduling_sec = 0;
  uint32_t scheduling_msgs = 0;
  uint32_t overflow_rounds = 0;
  /// Recovery-log records written on behalf of this query (0 when logging
  /// is off).
  uint64_t log_records = 0;
  /// Commit-time forced flushes of the recovery log for this query.
  uint64_t log_forced_flushes = 0;
  /// Concurrency-control counters for the transaction this query ran under
  /// (all zero when the machine executes single-user, pre-2PL paths).
  uint64_t locks_acquired = 0;
  uint64_t lock_waits = 0;
  double lock_wait_sec = 0;
  uint64_t deadlocks = 0;
  uint64_t lock_aborts = 0;
  /// Failover retries this statement consumed before succeeding (0 on the
  /// fault-free path).
  uint32_t failover_retries = 0;
  /// Simulated wall-clock spent backing off between failover retries
  /// (also folded into scheduling_sec).
  double failover_backoff_sec = 0;
  std::vector<PhaseMetrics> phases;

  double TotalSec() const;
  NodeUsage Totals() const;
  /// Fraction of data packets delivered without touching the network
  /// (paper §2 "short-circuited" messages). Returns 0 when no packets moved.
  double ShortCircuitFraction() const;
  /// One-line rendering for harness output.
  std::string Summary() const;
};

/// \brief Charges every simulated hardware event of one query and converts
/// the per-node, per-phase usage into elapsed time.
///
/// The conversion is the classic bottleneck model for pipelined dataflow:
/// within a phase each node's elapsed time is the busy time of its most
/// loaded resource, the phase takes as long as its slowest node (but at
/// least the time the shared ring needs for the phase's traffic), and the
/// query is the sum of its phases plus the serialized scheduler work.
class CostTracker {
 public:
  CostTracker(const MachineParams& hw, int num_nodes);

  CostTracker(const CostTracker&) = delete;
  CostTracker& operator=(const CostTracker&) = delete;

  const MachineParams& hw() const { return hw_; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }

  /// Attaches the machine's fault injector so data packets consult the drop
  /// schedule (dropped packets are charged a full retransmission). Null
  /// detaches.
  void AttachFaultInjector(FaultInjector* faults) { faults_ = faults; }

  void BeginPhase(std::string name, PhaseKind kind);
  void EndPhase();
  bool in_phase() const { return in_phase_; }

  /// Disk transfer of `bytes` at `node`; `sequential` selects positioning vs
  /// streaming overhead. Also charges the per-page-I/O CPU path.
  void ChargeDiskRead(int node, uint64_t bytes, bool sequential);
  void ChargeDiskWrite(int node, uint64_t bytes, bool sequential);
  /// Buffer-pool hit: CPU only.
  void ChargeBufferHit(int node);

  void ChargeCpu(int node, double instructions);
  void ChargeSerialSec(int node, double sec);

  /// One data packet of `bytes` from `src` to `dst`. Same-node packets are
  /// short-circuited by the communications software: no NIC or ring time,
  /// only a cheap CPU path. `force_network` disables the short-circuit —
  /// Teradata's low-level software does not recognize same-AMP delivery when
  /// storing result tuples (§4), so its packets always pay the full path.
  void ChargeDataPacket(int src, int dst, uint64_t bytes,
                        bool force_network = false);

  /// One small control message (end-of-stream, operator completion, ...).
  /// Costs protocol CPU at both ends; latency is only charged when the
  /// sender must wait for it (`blocking`).
  void ChargeControlMessage(int src, int dst, bool blocking);

  /// Count-only (no time charge): one tuple delivered to `dst` by a
  /// key-based split route. The delivery cost itself is charged through
  /// the packet / handoff path.
  void CountTupleRouted(int dst);
  /// Count-only: a key-based split stream closed with `dst` among its
  /// destinations.
  void CountRouteStream(int dst);

  /// Scheduler-serialized operator initiation: `num_operators` operators,
  /// each scheduled on `nodes_per_operator` nodes, at the per-node message
  /// count from NetParams. This is the §6.2.3 Allnodes overhead.
  void ChargeScheduling(uint32_t num_operators, uint32_t nodes_per_operator);

  /// Fixed serial work before any operator starts (host parse/compile/
  /// dispatch); accounted with the scheduling time.
  void ChargeHostSetup(double sec) { metrics_.scheduling_sec += sec; }

  void AddOverflowRound() { ++metrics_.overflow_rounds; }

  /// Adds another tracker's accumulated per-node usage (and pending ring
  /// bytes) into the current open phase. This is how the host-parallel
  /// executor folds the private shard each node task charged into back into
  /// the query's tracker: shards are merged in canonical node order at every
  /// phase barrier, so the result is independent of how the tasks were
  /// scheduled onto host threads. `shard` must have the same node count and
  /// must not have closed any phase of its own.
  void MergeUsage(const CostTracker& shard);

  /// Usage accumulated so far for `node` in the current phase (test hook).
  const NodeUsage& current(int node) const { return nodes_.at(node); }

  /// Closes accounting and returns the metrics. The tracker must not be in
  /// an open phase.
  QueryMetrics Finish();

 private:
  MachineParams hw_;
  FaultInjector* faults_ = nullptr;
  std::vector<NodeUsage> nodes_;
  uint64_t phase_ring_bytes_ = 0;
  std::string phase_name_;
  PhaseKind phase_kind_ = PhaseKind::kPipelined;
  bool in_phase_ = false;
  QueryMetrics metrics_;
};

}  // namespace gammadb::sim

#endif  // GAMMA_SIM_COST_TRACKER_H_
