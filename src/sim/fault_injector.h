#ifndef GAMMA_SIM_FAULT_INJECTOR_H_
#define GAMMA_SIM_FAULT_INJECTOR_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "obs/journal.h"

namespace gammadb::sim {

/// Probabilistic fault rates plus the master seed. All rates default to 0,
/// so a default-constructed config injects nothing (the fault-free machine).
struct FaultConfig {
  uint64_t seed = 0x5EED;
  /// Probability that one disk page read fails transiently (succeeds when
  /// the buffer pool retries it).
  double transient_read_prob = 0;
  /// Probability that one disk page write fails transiently.
  double transient_write_prob = 0;
  /// Probability that one disk page read silently rots a byte of the stored
  /// page (detected by the checksum verified at BufferPool::Pin).
  double corrupt_read_prob = 0;
  /// Probability that one network data packet is dropped and must be
  /// retransmitted (link-level recovery: costs time, never loses data).
  double drop_packet_prob = 0;
};

/// What the injector decided for one disk access.
enum class DiskFault {
  kNone,
  /// The access fails but an immediate retry may succeed.
  kTransient,
  /// The stored page was silently corrupted (reads only).
  kCorrupt,
};

/// \brief Deterministic, seeded fault schedule for one machine's disk nodes
/// and interconnect.
///
/// Each disk node owns an independent splitmix64 stream seeded from
/// (config.seed, node), so a node's fault schedule depends only on the
/// sequence of operations *on that node* — replays are bit-for-bit
/// reproducible regardless of how operations interleave across nodes.
/// Packet drops likewise draw from a per-sender stream seeded from
/// (config.seed, sender, stream tag), so the drop schedule a node sees
/// depends only on its own packet sequence — a requirement of the
/// host-parallel executor, where nodes send concurrently and a shared
/// stream's draw order would vary with thread scheduling. Per-node streams
/// and counters also make the draw paths thread-safe under the executor's
/// one-task-per-node discipline without any locking.
///
/// Storage charging points (SimulatedDisk) consult OnRead/OnWrite; the cost
/// tracker's packet path consults OnPacket.
///
/// Permanent disk-node death is either immediate (KillNode) or scheduled
/// after a node-local disk-operation count (KillNodeAfterOps), which is how
/// tests fail a node deterministically *mid-query*.
class FaultInjector {
 public:
  struct Stats {
    uint64_t transient_read_faults = 0;
    uint64_t transient_write_faults = 0;
    uint64_t corrupted_reads = 0;
    uint64_t packets_dropped = 0;
  };

  /// `num_packet_nodes` bounds the sender indices OnPacket accepts (the
  /// machine passes its tracker node count: query nodes + scheduler + host +
  /// recovery server all send packets). Defaults to the disk-node count.
  FaultInjector(const FaultConfig& config, int num_disk_nodes,
                int num_packet_nodes = -1);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  int num_disk_nodes() const { return static_cast<int>(nodes_.size()); }

  /// Elastic growth: registers one more disk node and returns its index
  /// (the old num_disk_nodes). The node's disk stream is seeded exactly as a
  /// fresh machine of the new width would seed it; a packet stream is
  /// spliced in at the same index, so every pre-existing sender keeps its
  /// own (mid-sequence) drop stream under its shifted tracker id.
  int AddDiskNode();

  /// Wires the machine's flight recorder in. Every draw journals on the
  /// faulting node's own ring (disk faults on the disk node, drops on the
  /// sender), which is exactly the stream the draw consumed from — so the
  /// single-writer-per-ring discipline holds even though draws happen on
  /// node tasks. Null detaches.
  void AttachJournal(obs::Journal* journal) { journal_ = journal; }

  // --- Liveness schedule ---

  /// Declares the node permanently dead, effective immediately.
  void KillNode(int node);

  /// Declares the node dead after `disk_ops` more read/write operations on
  /// it — the deterministic mid-query failure.
  void KillNodeAfterOps(int node, uint64_t disk_ops);

  /// Declares the node dead at its `commits` -th upcoming commit point —
  /// after the statement's log records are forced but before the commit
  /// record is acknowledged (the window recovery's undo pass exists for).
  /// 1 = die at the very next commit point touching this node.
  void KillNodeAtCommit(int node, uint64_t commits);

  /// Commit-point draw for `node`: counts one commit point against a
  /// scheduled KillNodeAtCommit and returns true when the node just died
  /// (caller must abandon the commit — the ack never arrives).
  bool OnCommitPoint(int node);

  /// Test hook: brings a dead node back (its simulated disk contents were
  /// never discarded, matching a repaired node rejoining with stale data —
  /// callers are responsible for not reading stale fragments).
  void ReviveNode(int node);

  bool IsDead(int node) const;
  int num_live() const;

  // --- Draws (each consumes from the node's deterministic stream) ---

  /// Decides the fate of one page read on `node`. Counts one disk op
  /// against the node's scheduled death. Dead nodes are the caller's
  /// responsibility (check IsDead first).
  DiskFault OnRead(int node);

  /// Decides the fate of one page write on `node`.
  DiskFault OnWrite(int node);

  /// True when one data packet sent by `node` should be charged a
  /// retransmission. Draws from `node`'s own packet stream.
  bool OnPacket(int node);

  /// Counters aggregated over the per-node streams.
  Stats stats() const;

 private:
  struct NodeState {
    Rng rng;
    bool dead = false;
    uint64_t ops = 0;
    /// Node dies when ops reaches this count. UINT64_MAX = never.
    uint64_t death_at_ops = UINT64_MAX;
    uint64_t commit_points = 0;
    /// Node dies when commit_points reaches this count. UINT64_MAX = never.
    uint64_t death_at_commit = UINT64_MAX;
    Stats stats;

    explicit NodeState(uint64_t seed) : rng(seed) {}
  };

  /// One sender's packet-drop stream (every tracker node can send).
  struct PacketState {
    Rng rng;
    uint64_t dropped = 0;

    explicit PacketState(uint64_t seed) : rng(seed) {}
  };

  NodeState& node(int i);
  /// Counts one disk op and applies a scheduled death when it comes due.
  void TickOps(NodeState& state, int i);

  FaultConfig config_;
  std::vector<NodeState> nodes_;
  std::vector<PacketState> packet_nodes_;
  /// Flight recorder (null until the machine attaches it).
  obs::Journal* journal_ = nullptr;
};

}  // namespace gammadb::sim

#endif  // GAMMA_SIM_FAULT_INJECTOR_H_
