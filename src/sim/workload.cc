#include "sim/workload.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>

#include "common/macros.h"
#include "common/rng.h"
#include "obs/metrics_registry.h"

namespace gammadb::sim {

namespace {

struct FootprintLock {
  txn::LockId id;
  txn::LockMode mode;
};

/// Appends X fragment locks for the home sites an update statement touches:
/// the key's hash site when the key is the partitioning attribute, otherwise
/// (or for round-robin, whose commit-time target depends on interleaving)
/// every fragment.
void AddUpdateFragments(const catalog::RelationMeta& meta, uint32_t rel,
                        int num_disk_nodes, int key_attr, int32_t key,
                        std::vector<FootprintLock>* out) {
  int home = -1;
  if (meta.partitioning.strategy != catalog::PartitionStrategy::kRoundRobin &&
      meta.partitioning.key_attr == key_attr) {
    catalog::Partitioner partitioner(&meta.partitioning, &meta.schema,
                                     num_disk_nodes);
    home = partitioner.NodeForKey(key);
  }
  if (home >= 0) {
    out->push_back({txn::LockId::Fragment(rel, static_cast<uint32_t>(home)),
                    txn::LockMode::kX});
  } else {
    for (int f = 0; f < num_disk_nodes; ++f) {
      out->push_back({txn::LockId::Fragment(rel, static_cast<uint32_t>(f)),
                      txn::LockMode::kX});
    }
  }
}

void AddReadFootprint(gamma::GammaMachine* machine, const std::string& name,
                      std::vector<FootprintLock>* out) {
  const uint32_t rel = machine->txns().RelationId(name);
  out->push_back({txn::LockId::Relation(rel), txn::LockMode::kIS});
  for (int f = 0; f < machine->config().num_disk_nodes; ++f) {
    out->push_back({txn::LockId::Fragment(rel, static_cast<uint32_t>(f)),
                    txn::LockMode::kS});
  }
}

/// The multi-granularity lock set a statement needs, in canonical order
/// (relation intention lock first, fragments ascending, duplicates merged by
/// supremum). Deadlocks arise only from transactions whose *statements*
/// touch relations in conflicting orders — exactly the §7-style concurrent
/// update interleavings the tests exercise.
std::vector<FootprintLock> FootprintOf(gamma::GammaMachine* machine,
                                       const Statement& stmt) {
  const int ndisk = machine->config().num_disk_nodes;
  std::vector<FootprintLock> out;
  std::visit(
      [&](const auto& q) {
        using T = std::decay_t<decltype(q)>;
        if constexpr (std::is_same_v<T, gamma::SelectQuery> ||
                      std::is_same_v<T, gamma::AggregateQuery>) {
          AddReadFootprint(machine, q.relation, &out);
        } else if constexpr (std::is_same_v<T, gamma::JoinQuery>) {
          AddReadFootprint(machine, q.outer, &out);
          AddReadFootprint(machine, q.inner, &out);
        } else if constexpr (std::is_same_v<T, gamma::AppendQuery>) {
          auto meta_or = machine->catalog().Get(q.relation);
          GAMMA_CHECK(meta_or.ok());
          const catalog::RelationMeta& meta = **meta_or;
          const uint32_t rel = machine->txns().RelationId(q.relation);
          out.push_back({txn::LockId::Relation(rel), txn::LockMode::kIX});
          if (meta.partitioning.strategy ==
              catalog::PartitionStrategy::kRoundRobin) {
            for (int f = 0; f < ndisk; ++f) {
              out.push_back(
                  {txn::LockId::Fragment(rel, static_cast<uint32_t>(f)),
                   txn::LockMode::kX});
            }
          } else {
            catalog::Partitioner partitioner(&meta.partitioning, &meta.schema,
                                             ndisk);
            const int home = partitioner.NodeFor(q.tuple);
            out.push_back(
                {txn::LockId::Fragment(rel, static_cast<uint32_t>(home)),
                 txn::LockMode::kX});
          }
        } else if constexpr (std::is_same_v<T, gamma::DeleteQuery>) {
          auto meta_or = machine->catalog().Get(q.relation);
          GAMMA_CHECK(meta_or.ok());
          const uint32_t rel = machine->txns().RelationId(q.relation);
          out.push_back({txn::LockId::Relation(rel), txn::LockMode::kIX});
          AddUpdateFragments(**meta_or, rel, ndisk, q.key_attr, q.key, &out);
        } else if constexpr (std::is_same_v<T, gamma::ModifyQuery>) {
          auto meta_or = machine->catalog().Get(q.relation);
          GAMMA_CHECK(meta_or.ok());
          const catalog::RelationMeta& meta = **meta_or;
          const uint32_t rel = machine->txns().RelationId(q.relation);
          out.push_back({txn::LockId::Relation(rel), txn::LockMode::kIX});
          AddUpdateFragments(meta, rel, ndisk, q.locate_attr, q.locate_key,
                             &out);
          if (meta.partitioning.strategy !=
                  catalog::PartitionStrategy::kRoundRobin &&
              meta.partitioning.key_attr == q.target_attr) {
            // Relocation: the new home fragment is written too.
            catalog::Partitioner partitioner(&meta.partitioning, &meta.schema,
                                             ndisk);
            const int new_home = partitioner.NodeForKey(q.new_value);
            if (new_home >= 0) {
              out.push_back(
                  {txn::LockId::Fragment(rel, static_cast<uint32_t>(new_home)),
                   txn::LockMode::kX});
            }
          }
        }
      },
      stmt);
  // Canonical order: by encoded id (relation locks sort before their
  // fragments); merge duplicates by supremum so each id is requested once.
  std::stable_sort(out.begin(), out.end(),
                   [](const FootprintLock& a, const FootprintLock& b) {
                     return a.id.Encode() < b.id.Encode();
                   });
  std::vector<FootprintLock> merged;
  for (const FootprintLock& fl : out) {
    if (!merged.empty() && merged.back().id.Encode() == fl.id.Encode()) {
      merged.back().mode = txn::Supremum(merged.back().mode, fl.mode);
    } else {
      merged.push_back(fl);
    }
  }
  return merged;
}

Result<gamma::QueryResult> RunStatement(gamma::GammaMachine& machine,
                                        const Statement& stmt, uint64_t txn) {
  return std::visit(
      [&](const auto& q) -> Result<gamma::QueryResult> {
        using T = std::decay_t<decltype(q)>;
        if constexpr (std::is_same_v<T, gamma::SelectQuery>) {
          GAMMA_CHECK_MSG(txn == 0, "reads run only as profiling statements");
          return machine.RunSelect(q);
        } else if constexpr (std::is_same_v<T, gamma::JoinQuery>) {
          GAMMA_CHECK_MSG(txn == 0, "reads run only as profiling statements");
          return machine.RunJoin(q);
        } else if constexpr (std::is_same_v<T, gamma::AggregateQuery>) {
          GAMMA_CHECK_MSG(txn == 0, "reads run only as profiling statements");
          return machine.RunAggregate(q);
        } else if constexpr (std::is_same_v<T, gamma::AppendQuery>) {
          return machine.RunAppend(q, txn);
        } else if constexpr (std::is_same_v<T, gamma::DeleteQuery>) {
          return machine.RunDelete(q, txn);
        } else {
          return machine.RunModify(q, txn);
        }
      },
      stmt);
}

}  // namespace

Result<QueryMetrics> ProfileStatement(gamma::GammaMachine& machine,
                                      const Statement& stmt) {
  GAMMA_ASSIGN_OR_RETURN(const gamma::QueryResult result,
                         RunStatement(machine, stmt, /*txn=*/0));
  if (!result.result_relation.empty()) {
    GAMMA_RETURN_NOT_OK(machine.DropRelation(result.result_relation));
  }
  return result.metrics;
}

const ClassReport* WorkloadReport::Class(const std::string& label) const {
  for (const ClassReport& c : classes) {
    if (c.label == label) return &c;
  }
  return nullptr;
}

/// Disk, CPU and NIC servers of one simulated node.
struct WorkloadDriver::NodeServers {
  explicit NodeServers(EventQueue* q) : disk(q), cpu(q), net(q) {}
  ResourceServer disk;
  ResourceServer cpu;
  ResourceServer net;
};

struct WorkloadDriver::Client {
  Client(ClientSpec s, size_t i, uint64_t seed)
      : spec(std::move(s)), index(i), rng(seed) {}

  ClientSpec spec;
  size_t index;
  Rng rng;

  size_t script_pos = 0;
  int loops_done = 0;
  bool done = false;

  /// Current transaction attempt (0 = none in flight).
  uint64_t txn = 0;
  size_t stmt_idx = 0;
  std::vector<FootprintLock> footprint;
  size_t lock_idx = 0;
  double submit_sec = 0;
  bool blocked = false;
  double wait_start_sec = -1;
};

WorkloadDriver::WorkloadDriver(gamma::GammaMachine* machine,
                               WorkloadOptions options)
    : machine_(machine), options_(options) {
  const int n = machine_->config().tracker_nodes();
  servers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    servers_.push_back(std::make_unique<NodeServers>(&queue_));
  }
  ring_ = std::make_unique<ResourceServer>(&queue_);
  base_totals_ = machine_->txns().totals();
}

WorkloadDriver::~WorkloadDriver() = default;

void WorkloadDriver::AddClient(ClientSpec spec) {
  GAMMA_CHECK(!ran_);
  GAMMA_CHECK(!spec.script.empty());
  const uint64_t seed = options_.seed ^ (0x9E3779B97F4A7C15ULL *
                                         (clients_.size() + 1));
  clients_.push_back(
      std::make_unique<Client>(std::move(spec), clients_.size(), seed));
}

const TxnSpec& WorkloadDriver::SpecOf(const Client& c) const {
  return c.spec.script[c.script_pos];
}

void WorkloadDriver::StartThink(size_t ci) {
  Client& c = *clients_[ci];
  if (c.done) return;
  double think = c.spec.think_sec;
  if (c.spec.think_jitter_sec > 0) {
    think += c.spec.think_jitter_sec * c.rng.NextDouble();
  }
  queue_.After(think, [this, ci] { StartTxn(ci); });
}

void WorkloadDriver::StartTxn(size_t ci) {
  Client& c = *clients_[ci];
  if (c.spec.loops > 0) {
    if (c.loops_done >= c.spec.loops) {
      c.done = true;
      return;
    }
  } else if (options_.duration_sec > 0 &&
             queue_.now() >= options_.duration_sec) {
    c.done = true;
    return;
  }
  c.submit_sec = queue_.now();
  RetryTxn(ci);
}

void WorkloadDriver::RetryTxn(size_t ci) {
  Client& c = *clients_[ci];
  c.txn = machine_->BeginTxn();
  txn_client_[c.txn] = ci;
  c.stmt_idx = 0;
  BeginStatement(ci);
}

void WorkloadDriver::BeginStatement(size_t ci) {
  Client& c = *clients_[ci];
  const TxnSpec& spec = SpecOf(c);
  if (c.stmt_idx >= spec.statements.size()) {
    CommitClientTxn(ci);
    return;
  }
  c.footprint = FootprintOf(machine_, spec.statements[c.stmt_idx]);
  c.lock_idx = 0;
  AcquireNext(ci);
}

void WorkloadDriver::AcquireNext(size_t ci) {
  Client& c = *clients_[ci];
  if (c.lock_idx >= c.footprint.size()) {
    RunPhases(ci);
    return;
  }
  const FootprintLock& fl = c.footprint[c.lock_idx];
  const int table = machine_->txns().TableFor(fl.id);
  const MachineParams& hw = machine_->config().hw;
  const uint64_t txn = c.txn;
  // The lock manager's CPU path runs at the node owning the lock table
  // before the request is decided.
  servers_[static_cast<size_t>(table)]->cpu.Demand(
      hw.cpu.InstrSec(hw.cost.instr_per_lock), [this, ci, txn] {
        Client& cc = *clients_[ci];
        if (cc.txn != txn) return;  // aborted while the demand was queued
        const FootprintLock& req = cc.footprint[cc.lock_idx];
        txn::TxnManager::AcquireResult res =
            machine_->txns().Acquire(cc.txn, req.id, req.mode);
        using Outcome = txn::TxnManager::AcquireResult::Outcome;
        switch (res.outcome) {
          case Outcome::kGranted:
            HandleVictims(res.aborted_victims);
            HandleGrants(res.grants);
            ++cc.lock_idx;
            AcquireNext(ci);
            break;
          case Outcome::kBlocked:
            cc.blocked = true;
            cc.wait_start_sec = queue_.now();
            HandleVictims(res.aborted_victims);
            HandleGrants(res.grants);
            break;
          case Outcome::kAbortedSelf:
            // Drop our own mapping first so HandleVictims skips us.
            txn_client_.erase(cc.txn);
            cc.txn = 0;
            ++report_.aborted_retries;
            HandleVictims(res.aborted_victims);
            HandleGrants(res.grants);
            queue_.After(options_.abort_backoff_sec,
                         [this, ci] { RetryTxn(ci); });
            break;
        }
      });
}

void WorkloadDriver::HandleVictims(const std::vector<uint64_t>& victims) {
  for (const uint64_t v : victims) {
    auto it = txn_client_.find(v);
    if (it == txn_client_.end()) continue;
    const size_t vi = it->second;
    txn_client_.erase(it);
    Client& vc = *clients_[vi];
    if (vc.txn != v) continue;
    // Victims are always blocked waiters (a running transaction has no
    // waits-for edges); credit the aborted wait before restarting.
    if (vc.blocked && vc.wait_start_sec >= 0) {
      machine_->txns().AddWaitSec(v, queue_.now() - vc.wait_start_sec);
    }
    vc.txn = 0;
    vc.blocked = false;
    vc.wait_start_sec = -1;
    ++report_.aborted_retries;
    queue_.After(options_.abort_backoff_sec, [this, vi] { RetryTxn(vi); });
  }
}

void WorkloadDriver::HandleGrants(
    const std::vector<txn::LockManager::Grant>& grants) {
  for (const txn::LockManager::Grant& g : grants) {
    auto it = txn_client_.find(g.txn);
    if (it == txn_client_.end()) continue;
    const size_t gi = it->second;
    Client& gc = *clients_[gi];
    if (gc.txn != g.txn || !gc.blocked) continue;
    machine_->txns().AddWaitSec(gc.txn, queue_.now() - gc.wait_start_sec);
    gc.blocked = false;
    gc.wait_start_sec = -1;
    ++gc.lock_idx;
    const uint64_t txn = gc.txn;
    queue_.After(0, [this, gi, txn] {
      if (clients_[gi]->txn == txn) AcquireNext(gi);
    });
  }
}

void WorkloadDriver::RunPhases(size_t ci) {
  Client& c = *clients_[ci];
  const TxnSpec& spec = SpecOf(c);
  if (c.stmt_idx >= spec.profiles.size()) {
    // Zero-demand statement: only its locks matter.
    FinishStatement(ci);
    return;
  }
  const QueryMetrics& prof = spec.profiles[c.stmt_idx];
  const uint64_t txn = c.txn;
  const double sched = prof.scheduling_sec;
  auto start = [this, ci, txn] {
    if (clients_[ci]->txn == txn) StartPhase(ci, 0);
  };
  if (sched > 0) {
    // Operator initiation serializes at the scheduling processor.
    const int sn = machine_->config().scheduler_node();
    servers_[static_cast<size_t>(sn)]->cpu.Demand(sched, start);
  } else {
    start();
  }
}

void WorkloadDriver::StartPhase(size_t ci, size_t phase_idx) {
  Client& c = *clients_[ci];
  const QueryMetrics& prof = SpecOf(c).profiles[c.stmt_idx];
  if (phase_idx >= prof.phases.size()) {
    FinishStatement(ci);
    return;
  }
  const PhaseMetrics& ph = prof.phases[phase_idx];
  const uint64_t txn = c.txn;
  // Sentinel-counted barrier: the phase advances once every per-node job and
  // the ring transfer complete.
  auto barrier = std::make_shared<int>(1);
  const std::function<void()> arrive = [this, ci, phase_idx, txn, barrier] {
    if (--*barrier == 0 && clients_[ci]->txn == txn) {
      StartPhase(ci, phase_idx + 1);
    }
  };
  for (size_t n = 0; n < ph.per_node.size() && n < servers_.size(); ++n) {
    const NodeUsage& u = ph.per_node[n];
    if (u.disk_sec <= 0 && u.cpu_sec <= 0 && u.net_sec <= 0 &&
        u.serial_sec <= 0) {
      continue;
    }
    ++*barrier;
    NodeServers* sv = servers_[n].get();
    const double serial = u.serial_sec;
    const std::function<void()> node_done = [this, serial, arrive] {
      // Non-overlappable latency extends the node's part of the phase.
      if (serial > 0) {
        queue_.After(serial, arrive);
      } else {
        arrive();
      }
    };
    if (ph.kind == PhaseKind::kPipelined) {
      // Dataflow phase: the node's disk, CPU and NIC work overlap.
      auto nb = std::make_shared<int>(1);
      const std::function<void()> sub = [nb, node_done] {
        if (--*nb == 0) node_done();
      };
      if (u.disk_sec > 0) { ++*nb; sv->disk.Demand(u.disk_sec, sub); }
      if (u.cpu_sec > 0) { ++*nb; sv->cpu.Demand(u.cpu_sec, sub); }
      if (u.net_sec > 0) { ++*nb; sv->net.Demand(u.net_sec, sub); }
      sub();
    } else {
      // Request/response phase: nothing overlaps.
      const NodeUsage uc = u;
      const std::function<void()> after_net = node_done;
      const std::function<void()> after_cpu = [sv, uc, after_net] {
        if (uc.net_sec > 0) {
          sv->net.Demand(uc.net_sec, after_net);
        } else {
          after_net();
        }
      };
      const std::function<void()> after_disk = [sv, uc, after_cpu] {
        if (uc.cpu_sec > 0) {
          sv->cpu.Demand(uc.cpu_sec, after_cpu);
        } else {
          after_cpu();
        }
      };
      if (uc.disk_sec > 0) {
        sv->disk.Demand(uc.disk_sec, after_disk);
      } else {
        after_disk();
      }
    }
  }
  if (ph.ring_bytes > 0) {
    ++*barrier;
    ring_->Demand(static_cast<double>(ph.ring_bytes) /
                      machine_->config().hw.net.ring_bytes_per_sec,
                  arrive);
  }
  arrive();
}

void WorkloadDriver::FinishStatement(size_t ci) {
  Client& c = *clients_[ci];
  ++c.stmt_idx;
  BeginStatement(ci);
}

void WorkloadDriver::CommitClientTxn(size_t ci) {
  Client& c = *clients_[ci];
  const TxnSpec& spec = SpecOf(c);
  if (spec.execute_real) {
    // Execute-at-commit: the statements run for real only now, under the
    // transaction's fully acquired 2PL footprint, so aborted attempts never
    // had side effects and the commit order IS the serial-equivalent order.
    for (const Statement& stmt : spec.statements) {
      Result<gamma::QueryResult> r = RunStatement(*machine_, stmt, c.txn);
      GAMMA_CHECK_MSG(r.ok(),
                      "statement failed under pre-acquired locks: " +
                          r.status().message());
    }
  }
  const std::vector<txn::LockManager::Grant> grants =
      machine_->CommitTxn(c.txn);
  txn_client_.erase(c.txn);
  c.txn = 0;
  report_.commit_log.push_back(CommitRecord{c.index, c.script_pos,
                                            spec.label});
  ++report_.committed;
  ClassAccum& acc = class_accum_[spec.label];
  ++acc.committed;
  if (c.submit_sec >= options_.warmup_sec) {
    acc.responses.push_back(queue_.now() - c.submit_sec);
    last_measured_commit_sec_ = queue_.now();
  }
  ++c.script_pos;
  if (c.script_pos >= c.spec.script.size()) {
    c.script_pos = 0;
    ++c.loops_done;
  }
  HandleGrants(grants);
  StartThink(ci);
}

WorkloadReport WorkloadDriver::Run() {
  GAMMA_CHECK(!ran_);
  ran_ = true;
  for (size_t i = 0; i < clients_.size(); ++i) StartThink(i);
  queue_.RunUntilIdle();

  report_.end_sec = queue_.now();
  const txn::TxnStats totals = machine_->txns().totals();
  report_.deadlocks = totals.deadlocks - base_totals_.deadlocks;
  report_.lock_acquisitions =
      totals.locks_acquired - base_totals_.locks_acquired;
  report_.lock_waits = totals.lock_waits - base_totals_.lock_waits;
  report_.lock_wait_sec = totals.lock_wait_sec - base_totals_.lock_wait_sec;

  const double window = last_measured_commit_sec_ - options_.warmup_sec;
  for (auto& [label, acc] : class_accum_) {
    ClassReport cr;
    cr.label = label;
    cr.committed = acc.committed;
    cr.measured = acc.responses.size();
    double sum = 0;
    for (const double r : acc.responses) sum += r;
    cr.mean_response_sec =
        acc.responses.empty() ? 0 : sum / static_cast<double>(acc.responses.size());
    // Quantiles come from the registry's log-scale latency histogram (the
    // same instrument the BENCH JSON schema v5 histograms block exports).
    // Reset per run — the registry outlives the driver — and fed in commit
    // order, which is deterministic, so the FP sum is too.
    obs::Histogram& hist = obs::MetricsRegistry::Instance().histogram(
        "workload.response_sec." + label, obs::LogBuckets(1e-4, 1e4, 4));
    hist.Reset();
    for (const double r : acc.responses) hist.Observe(r);
    cr.p50_response_sec = hist.Quantile(0.5);
    cr.p95_response_sec = hist.Quantile(0.95);
    cr.p99_response_sec = hist.Quantile(0.99);
    cr.throughput_per_sec =
        window > 0 ? static_cast<double>(cr.measured) / window : 0;
    report_.classes.push_back(std::move(cr));
  }

  // Busiest simulated resource over the whole run.
  const double elapsed = report_.end_sec;
  for (size_t n = 0; n < servers_.size(); ++n) {
    const NodeServers& sv = *servers_[n];
    for (const auto& [name, server] :
         {std::pair<const char*, const ResourceServer*>{"disk", &sv.disk},
          {"cpu", &sv.cpu},
          {"net", &sv.net}}) {
      const double util = server->Utilization(elapsed);
      if (util > report_.bottleneck_utilization) {
        report_.bottleneck_utilization = util;
        report_.bottleneck =
            "node " + std::to_string(n) + " " + name;
      }
    }
  }
  if (ring_->Utilization(elapsed) > report_.bottleneck_utilization) {
    report_.bottleneck_utilization = ring_->Utilization(elapsed);
    report_.bottleneck = "ring";
  }
  return report_;
}

}  // namespace gammadb::sim
