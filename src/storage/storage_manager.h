#ifndef GAMMA_STORAGE_STORAGE_MANAGER_H_
#define GAMMA_STORAGE_STORAGE_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "common/macros.h"
#include "storage/btree.h"
#include "storage/buffer_pool.h"
#include "storage/disk.h"
#include "storage/heap_file.h"
#include "storage/lock_manager.h"

namespace gammadb::storage {

using FileId = uint32_t;
using IndexId = uint32_t;

/// \brief All storage state of one processor-with-disk: the NOSE/WiSS role.
///
/// Owns the node's simulated disk, buffer pool, heap files, B-tree indices
/// and lock manager, plus the ChargeContext through which every component
/// reports simulated hardware usage. A machine binds the context to the
/// current query's CostTracker before running operators on the node.
class StorageManager {
 public:
  /// `faults`/`fault_node` optionally attach the machine's fault injector so
  /// this node's disk consults its schedule (null = fault-free node).
  StorageManager(uint32_t page_size, uint64_t buffer_bytes,
                 sim::FaultInjector* faults = nullptr, int fault_node = -1);

  StorageManager(const StorageManager&) = delete;
  StorageManager& operator=(const StorageManager&) = delete;

  uint32_t page_size() const { return disk_.page_size(); }

  /// Binds (or clears, with nullptr) the accounting sink for this node.
  void BindTracker(sim::CostTracker* tracker, int node);
  const ChargeContext& charge() const { return charge_; }

  /// Single-writer-per-node invariant of the host-parallel executor: a task
  /// claims the node's storage for the duration of one parallel step.
  /// Two live claims mean two tasks were scheduled onto one node — a
  /// scheduling bug, aborted loudly rather than raced through.
  void BeginExclusive() {
    GAMMA_CHECK_MSG(!exclusive_.exchange(true, std::memory_order_acquire),
                    "two host tasks claimed one node's storage");
  }
  void EndExclusive() { exclusive_.store(false, std::memory_order_release); }

  BufferPool& pool() { return pool_; }
  LockManager& locks() { return locks_; }
  SimulatedDisk& disk() { return disk_; }

  FileId CreateFile();
  HeapFile& file(FileId id);
  const HeapFile& file(FileId id) const;
  bool HasFile(FileId id) const { return files_.contains(id); }
  /// Drops the file (temporary-file lifecycle).
  void DropFile(FileId id);

  IndexId CreateIndex();
  BTree& index(IndexId id);
  const BTree& index(IndexId id) const;
  void DropIndex(IndexId id);

 private:
  ChargeContext charge_;
  SimulatedDisk disk_;
  BufferPool pool_;
  LockManager locks_;
  std::unordered_map<FileId, std::unique_ptr<HeapFile>> files_;
  std::unordered_map<IndexId, std::unique_ptr<BTree>> indices_;
  FileId next_file_id_ = 1;
  IndexId next_index_id_ = 1;
  std::atomic<bool> exclusive_{false};
};

}  // namespace gammadb::storage

#endif  // GAMMA_STORAGE_STORAGE_MANAGER_H_
