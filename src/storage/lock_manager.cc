#include "storage/lock_manager.h"

#include <algorithm>

#include "common/macros.h"

namespace gammadb::storage {

LockManager::LockManager(const ChargeContext* charge) : charge_(charge) {
  GAMMA_CHECK(charge != nullptr);
}

Status LockManager::Acquire(uint64_t txn_id, LockName name, LockMode mode) {
  ++acquisitions_;
  if (charge_->tracker != nullptr) {
    charge_->Cpu(charge_->tracker->hw().cost.instr_per_lock);
  }
  const uint64_t key = name.Encode();
  LockState& state = locks_[key];

  const bool already_shared =
      std::find(state.shared_holders.begin(), state.shared_holders.end(),
                txn_id) != state.shared_holders.end();
  const bool already_exclusive = state.exclusive &&
                                 state.exclusive_holder == txn_id;

  if (mode == LockMode::kShared) {
    if (already_shared || already_exclusive) return Status::OK();
    if (state.exclusive) {
      return Status::FailedPrecondition("lock conflict: held exclusively");
    }
    state.shared_holders.push_back(txn_id);
    held_[txn_id].push_back(key);
    return Status::OK();
  }

  // Exclusive request.
  if (already_exclusive) return Status::OK();
  if (state.exclusive) {
    return Status::FailedPrecondition("lock conflict: held exclusively");
  }
  if (!state.shared_holders.empty()) {
    // Upgrade is allowed only when this txn is the sole shared holder.
    if (state.shared_holders.size() == 1 && already_shared) {
      state.shared_holders.clear();
    } else {
      return Status::FailedPrecondition("lock conflict: shared holders");
    }
  } else if (already_shared) {
    state.shared_holders.clear();
  }
  state.exclusive = true;
  state.exclusive_holder = txn_id;
  if (!already_shared) held_[txn_id].push_back(key);
  return Status::OK();
}

void LockManager::ReleaseAll(uint64_t txn_id) {
  auto it = held_.find(txn_id);
  if (it == held_.end()) return;
  for (uint64_t key : it->second) {
    auto lock_it = locks_.find(key);
    if (lock_it == locks_.end()) continue;
    LockState& state = lock_it->second;
    if (state.exclusive && state.exclusive_holder == txn_id) {
      state.exclusive = false;
      state.exclusive_holder = 0;
    }
    auto holder = std::find(state.shared_holders.begin(),
                            state.shared_holders.end(), txn_id);
    if (holder != state.shared_holders.end()) {
      state.shared_holders.erase(holder);
    }
    if (!state.exclusive && state.shared_holders.empty()) {
      locks_.erase(lock_it);
    }
  }
  held_.erase(it);
}

size_t LockManager::held_count(uint64_t txn_id) const {
  auto it = held_.find(txn_id);
  return it == held_.end() ? 0 : it->second.size();
}

}  // namespace gammadb::storage
