#include "storage/disk.h"

#include <cstring>

#include "common/macros.h"

namespace gammadb::storage {

SimulatedDisk::SimulatedDisk(uint32_t page_size) : page_size_(page_size) {
  GAMMA_CHECK(page_size >= 64);
}

uint32_t SimulatedDisk::Allocate() {
  pages_.emplace_back(page_size_, uint8_t{0});
  return static_cast<uint32_t>(pages_.size() - 1);
}

void SimulatedDisk::Read(uint32_t page_no, uint8_t* out) const {
  GAMMA_CHECK(page_no < pages_.size());
  std::memcpy(out, pages_[page_no].data(), page_size_);
}

void SimulatedDisk::Write(uint32_t page_no, const uint8_t* data) {
  GAMMA_CHECK(page_no < pages_.size());
  std::memcpy(pages_[page_no].data(), data, page_size_);
}

}  // namespace gammadb::storage
