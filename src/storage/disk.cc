#include "storage/disk.h"

#include <cstring>
#include <string>

#include "common/hash.h"
#include "common/macros.h"

namespace gammadb::storage {

namespace {
constexpr uint64_t kChecksumSalt = 0xC4EC;
}  // namespace

SimulatedDisk::SimulatedDisk(uint32_t page_size, sim::FaultInjector* faults,
                             int node)
    : page_size_(page_size), faults_(faults), node_(node) {
  GAMMA_CHECK(page_size >= 64);
}

uint32_t SimulatedDisk::ComputeChecksum(const uint8_t* data, size_t len) {
  return static_cast<uint32_t>(HashBytes(data, len, kChecksumSalt));
}

Status SimulatedDisk::CheckBounds(uint32_t page_no, const char* op) const {
  if (page_no >= pages_.size()) {
    return Status::OutOfRange(std::string(op) + " of page " +
                              std::to_string(page_no) + " on node " +
                              std::to_string(node_) + ": disk has " +
                              std::to_string(pages_.size()) + " pages");
  }
  return Status::OK();
}

Status SimulatedDisk::ConsultFaults(uint32_t page_no, bool writing) {
  if (faults_ == nullptr) return Status::OK();
  if (faults_->IsDead(node_)) {
    return Status::Unavailable("disk node " + std::to_string(node_) +
                               " is dead");
  }
  const sim::DiskFault fault =
      writing ? faults_->OnWrite(node_) : faults_->OnRead(node_);
  if (faults_->IsDead(node_)) {
    // This very operation was the scheduled point of death.
    return Status::Unavailable("disk node " + std::to_string(node_) +
                               " died mid-operation");
  }
  switch (fault) {
    case sim::DiskFault::kNone:
      break;
    case sim::DiskFault::kTransient:
      return Status::IOError(std::string("transient ") +
                             (writing ? "write" : "read") +
                             " fault on node " + std::to_string(node_) +
                             ", page " + std::to_string(page_no));
    case sim::DiskFault::kCorrupt:
      CorruptStoredPage(page_no);
      break;
  }
  return Status::OK();
}

Result<uint32_t> SimulatedDisk::Allocate() {
  if (faults_ != nullptr && faults_->IsDead(node_)) {
    return Status::Unavailable("disk node " + std::to_string(node_) +
                               " is dead");
  }
  if (pages_.size() >= kMaxPages) {
    return Status::ResourceExhausted(
        "disk on node " + std::to_string(node_) + " is full (" +
        std::to_string(kMaxPages) + " pages)");
  }
  pages_.emplace_back(page_size_, uint8_t{0});
  checksums_.push_back(ComputeChecksum(pages_.back().data(), page_size_));
  return static_cast<uint32_t>(pages_.size() - 1);
}

Status SimulatedDisk::Read(uint32_t page_no, uint8_t* out) {
  GAMMA_RETURN_NOT_OK(CheckBounds(page_no, "read"));
  GAMMA_RETURN_NOT_OK(ConsultFaults(page_no, /*writing=*/false));
  std::memcpy(out, pages_[page_no].data(), page_size_);
  return Status::OK();
}

Status SimulatedDisk::Write(uint32_t page_no, const uint8_t* data) {
  GAMMA_RETURN_NOT_OK(CheckBounds(page_no, "write"));
  GAMMA_RETURN_NOT_OK(ConsultFaults(page_no, /*writing=*/true));
  std::memcpy(pages_[page_no].data(), data, page_size_);
  checksums_[page_no] = ComputeChecksum(data, page_size_);
  return Status::OK();
}

uint32_t SimulatedDisk::StoredChecksum(uint32_t page_no) const {
  GAMMA_CHECK(page_no < checksums_.size());
  return checksums_[page_no];
}

void SimulatedDisk::CorruptStoredPage(uint32_t page_no) {
  GAMMA_CHECK(page_no < pages_.size());
  pages_[page_no][page_no % page_size_] ^= 0xFF;
}

}  // namespace gammadb::storage
