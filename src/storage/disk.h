#ifndef GAMMA_STORAGE_DISK_H_
#define GAMMA_STORAGE_DISK_H_

#include <cstdint>
#include <vector>

#include "sim/cost_tracker.h"

namespace gammadb::storage {

/// Disk access pattern hint. Drives the cost model's positioning-vs-streaming
/// distinction; callers (file scans, B-tree descents) know which they are.
enum class AccessIntent { kSequential, kRandom };

/// Per-node accounting hook. A StorageManager owns one; every storage
/// component charges through it. When `tracker` is null (unit tests, data
/// loading outside a measured query) charging is a no-op.
struct ChargeContext {
  sim::CostTracker* tracker = nullptr;
  int node = -1;

  void DiskRead(uint64_t bytes, AccessIntent intent) const {
    if (tracker != nullptr) {
      tracker->ChargeDiskRead(node, bytes, intent == AccessIntent::kSequential);
    }
  }
  void DiskWrite(uint64_t bytes, AccessIntent intent) const {
    if (tracker != nullptr) {
      tracker->ChargeDiskWrite(node, bytes,
                               intent == AccessIntent::kSequential);
    }
  }
  void BufferHit() const {
    if (tracker != nullptr) tracker->ChargeBufferHit(node);
  }
  void Cpu(double instructions) const {
    if (tracker != nullptr) tracker->ChargeCpu(node, instructions);
  }
  /// Search CPU within one B-tree node during a descent.
  void BtreeNodeVisit() const {
    if (tracker != nullptr) {
      tracker->ChargeCpu(node, tracker->hw().cost.instr_per_btree_level);
    }
  }
};

/// \brief One simulated disk drive: a flat array of fixed-size pages.
///
/// Data lives in host memory; timing comes entirely from the cost model via
/// the ChargeContext at the buffer-pool layer (the disk itself is a dumb
/// store so tests can use it without accounting).
class SimulatedDisk {
 public:
  explicit SimulatedDisk(uint32_t page_size);

  SimulatedDisk(const SimulatedDisk&) = delete;
  SimulatedDisk& operator=(const SimulatedDisk&) = delete;

  uint32_t page_size() const { return page_size_; }
  uint32_t num_pages() const { return static_cast<uint32_t>(pages_.size()); }

  /// Allocates a zeroed page and returns its page number.
  uint32_t Allocate();

  /// Copies a page into `out` (must hold page_size bytes).
  void Read(uint32_t page_no, uint8_t* out) const;

  /// Copies `data` (page_size bytes) into the page.
  void Write(uint32_t page_no, const uint8_t* data);

 private:
  uint32_t page_size_;
  std::vector<std::vector<uint8_t>> pages_;
};

}  // namespace gammadb::storage

#endif  // GAMMA_STORAGE_DISK_H_
