#ifndef GAMMA_STORAGE_DISK_H_
#define GAMMA_STORAGE_DISK_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "sim/cost_tracker.h"
#include "sim/fault_injector.h"

namespace gammadb::storage {

/// Disk access pattern hint. Drives the cost model's positioning-vs-streaming
/// distinction; callers (file scans, B-tree descents) know which they are.
enum class AccessIntent { kSequential, kRandom };

/// Per-node accounting hook. A StorageManager owns one; every storage
/// component charges through it. When `tracker` is null (unit tests, data
/// loading outside a measured query) charging is a no-op.
struct ChargeContext {
  sim::CostTracker* tracker = nullptr;
  int node = -1;

  void DiskRead(uint64_t bytes, AccessIntent intent) const {
    if (tracker != nullptr) {
      tracker->ChargeDiskRead(node, bytes, intent == AccessIntent::kSequential);
    }
  }
  void DiskWrite(uint64_t bytes, AccessIntent intent) const {
    if (tracker != nullptr) {
      tracker->ChargeDiskWrite(node, bytes,
                               intent == AccessIntent::kSequential);
    }
  }
  void BufferHit() const {
    if (tracker != nullptr) tracker->ChargeBufferHit(node);
  }
  void Cpu(double instructions) const {
    if (tracker != nullptr) tracker->ChargeCpu(node, instructions);
  }
  /// Search CPU within one B-tree node during a descent.
  void BtreeNodeVisit() const {
    if (tracker != nullptr) {
      tracker->ChargeCpu(node, tracker->hw().cost.instr_per_btree_level);
    }
  }
  /// Stall time with no device activity (e.g. backoff before an I/O retry).
  void SerialSec(double seconds) const {
    if (tracker != nullptr) tracker->ChargeSerialSec(node, seconds);
  }
};

/// \brief One simulated disk drive: a flat array of fixed-size pages.
///
/// Data lives in host memory; timing comes entirely from the cost model via
/// the ChargeContext at the buffer-pool layer (the disk itself is a dumb
/// store so tests can use it without accounting).
///
/// Every stored page carries an out-of-band uint32 checksum, updated on
/// Write. The buffer pool recomputes it after each read and surfaces a
/// mismatch as Status::Corruption — keeping the detector out of the page
/// layout, the way a drive's sector ECC is invisible to the format on top.
///
/// When a FaultInjector is attached, each Read/Write first consults the
/// node's fault schedule: a dead node yields kUnavailable, a transient
/// fault kIOError (retryable), and a corruption fault silently rots one
/// byte of the *stored* page so the checksum no longer matches.
class SimulatedDisk {
 public:
  /// Hard cap on pages per drive; Allocate past it is ResourceExhausted
  /// (a full disk), not a crash.
  static constexpr uint32_t kMaxPages = 1u << 20;

  explicit SimulatedDisk(uint32_t page_size,
                         sim::FaultInjector* faults = nullptr, int node = -1);

  SimulatedDisk(const SimulatedDisk&) = delete;
  SimulatedDisk& operator=(const SimulatedDisk&) = delete;

  uint32_t page_size() const { return page_size_; }
  uint32_t num_pages() const { return static_cast<uint32_t>(pages_.size()); }
  int node() const { return node_; }

  /// Allocates a zeroed page and returns its page number.
  Result<uint32_t> Allocate();

  /// Copies a page into `out` (must hold page_size bytes). Non-const because
  /// an injected corruption fault mutates the stored page.
  Status Read(uint32_t page_no, uint8_t* out);

  /// Copies `data` (page_size bytes) into the page and refreshes its
  /// checksum.
  Status Write(uint32_t page_no, const uint8_t* data);

  /// The checksum recorded for the page by its last successful Write.
  uint32_t StoredChecksum(uint32_t page_no) const;

  static uint32_t ComputeChecksum(const uint8_t* data, size_t len);

  /// Test hook: flips one byte of the stored page without touching its
  /// checksum — the bit-rot a checksum exists to catch.
  void CorruptStoredPage(uint32_t page_no);

 private:
  /// Unavailable/IOError/OK verdict for one access; `writing` selects the
  /// fault stream and the corruption side effect only applies to reads.
  Status ConsultFaults(uint32_t page_no, bool writing);
  Status CheckBounds(uint32_t page_no, const char* op) const;

  uint32_t page_size_;
  std::vector<std::vector<uint8_t>> pages_;
  std::vector<uint32_t> checksums_;
  sim::FaultInjector* faults_;
  int node_;
};

}  // namespace gammadb::storage

#endif  // GAMMA_STORAGE_DISK_H_
