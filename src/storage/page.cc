#include "storage/page.h"

#include <cstring>
#include <vector>

#include "common/macros.h"

namespace gammadb::storage {

SlottedPage::SlottedPage(uint8_t* data, uint32_t page_size)
    : data_(data), page_size_(page_size) {
  GAMMA_DCHECK(page_size >= kMinPageSize);
  GAMMA_DCHECK(page_size <= 0xFFFF + 1u);
}

void SlottedPage::Initialize(uint8_t* data, uint32_t page_size) {
  // uint16 offsets cap pages at 32 KiB, which is also the paper's maximum.
  GAMMA_CHECK(page_size >= kMinPageSize && page_size <= 32768);
  std::memset(data, 0, page_size);
  auto* header = reinterpret_cast<Header*>(data);
  header->num_slots = 0;
  header->free_end = static_cast<uint16_t>(page_size);
  header->live_count = 0;
  header->dead_bytes = 0;
}

uint16_t SlottedPage::slot_count() const { return header()->num_slots; }
uint16_t SlottedPage::live_count() const { return header()->live_count; }

uint32_t SlottedPage::ContiguousFree() const {
  const uint32_t slot_area_end = kHeaderSize + header()->num_slots * kSlotSize;
  const uint32_t free_end = header()->free_end;
  GAMMA_DCHECK(free_end >= slot_area_end);
  return free_end - slot_area_end;
}

uint32_t SlottedPage::FreeSpace() const {
  const uint32_t usable = ContiguousFree() + header()->dead_bytes;
  return usable > kSlotSize ? usable - kSlotSize : 0;
}

void SlottedPage::Compact() {
  // Collect live records, then rewrite them from the end of the page.
  std::vector<std::vector<uint8_t>> bodies(header()->num_slots);
  for (uint16_t i = 0; i < header()->num_slots; ++i) {
    const Slot& slot = slots()[i];
    if (slot.offset == kDeadSlot) continue;
    bodies[i].assign(data_ + slot.offset, data_ + slot.offset + slot.length);
  }
  uint32_t cursor = page_size_;
  for (uint16_t i = 0; i < header()->num_slots; ++i) {
    Slot& slot = slots()[i];
    if (slot.offset == kDeadSlot) continue;
    cursor -= slot.length;
    std::memcpy(data_ + cursor, bodies[i].data(), slot.length);
    slot.offset = static_cast<uint16_t>(cursor);
  }
  header()->free_end = static_cast<uint16_t>(cursor);
  header()->dead_bytes = 0;
}

std::optional<uint16_t> SlottedPage::Insert(std::span<const uint8_t> record) {
  const uint32_t need = static_cast<uint32_t>(record.size());
  if (need == 0) return std::nullopt;
  if (need + kSlotSize > ContiguousFree()) {
    if (need + kSlotSize > ContiguousFree() + header()->dead_bytes) {
      return std::nullopt;
    }
    Compact();
    if (need + kSlotSize > ContiguousFree()) return std::nullopt;
  }
  const uint32_t free_end = header()->free_end;
  const uint32_t offset = free_end - need;
  std::memcpy(data_ + offset, record.data(), need);
  const uint16_t slot_id = header()->num_slots;
  header()->num_slots += 1;
  Slot& slot = slots()[slot_id];
  slot.offset = static_cast<uint16_t>(offset);
  slot.length = static_cast<uint16_t>(need);
  header()->free_end = static_cast<uint16_t>(offset);
  header()->live_count += 1;
  return slot_id;
}

std::span<const uint8_t> SlottedPage::Get(uint16_t slot_id) const {
  if (slot_id >= header()->num_slots) return {};
  const Slot& slot = slots()[slot_id];
  if (slot.offset == kDeadSlot) return {};
  return {data_ + slot.offset, slot.length};
}

bool SlottedPage::IsLive(uint16_t slot_id) const {
  return slot_id < header()->num_slots &&
         slots()[slot_id].offset != kDeadSlot;
}

bool SlottedPage::Delete(uint16_t slot_id) {
  if (!IsLive(slot_id)) return false;
  Slot& slot = slots()[slot_id];
  header()->dead_bytes += slot.length;
  slot.offset = kDeadSlot;
  slot.length = 0;
  header()->live_count -= 1;
  return true;
}

bool SlottedPage::Restore(uint16_t slot_id, std::span<const uint8_t> record) {
  if (slot_id >= header()->num_slots) return false;
  Slot& slot = slots()[slot_id];
  if (slot.offset != kDeadSlot) return false;
  const uint32_t need = static_cast<uint32_t>(record.size());
  if (need == 0) return false;
  if (need > ContiguousFree()) {
    if (need > ContiguousFree() + header()->dead_bytes) return false;
    Compact();
    if (need > ContiguousFree()) return false;
  }
  const uint32_t offset = header()->free_end - need;
  std::memcpy(data_ + offset, record.data(), need);
  slot.offset = static_cast<uint16_t>(offset);
  slot.length = static_cast<uint16_t>(need);
  header()->free_end = static_cast<uint16_t>(offset);
  header()->live_count += 1;
  return true;
}

bool SlottedPage::Update(uint16_t slot_id, std::span<const uint8_t> record) {
  if (!IsLive(slot_id)) return false;
  Slot& slot = slots()[slot_id];
  if (record.size() == slot.length) {
    std::memcpy(data_ + slot.offset, record.data(), record.size());
    return true;
  }
  // Relocate: free the old body, then place the new one.
  const uint16_t old_length = slot.length;
  header()->dead_bytes += old_length;
  slot.length = 0;
  const uint32_t need = static_cast<uint32_t>(record.size());
  if (need > ContiguousFree()) {
    if (need > ContiguousFree() + header()->dead_bytes) {
      // Roll back the deletion bookkeeping; the caller keeps the old record.
      header()->dead_bytes -= old_length;
      slot.length = old_length;
      return false;
    }
    slot.offset = kDeadSlot;  // exclude the old body from compaction
    header()->live_count -= 1;
    Compact();
    header()->live_count += 1;
  }
  const uint32_t free_end = header()->free_end;
  const uint32_t offset = free_end - need;
  std::memcpy(data_ + offset, record.data(), need);
  slot.offset = static_cast<uint16_t>(offset);
  slot.length = static_cast<uint16_t>(need);
  header()->free_end = static_cast<uint16_t>(offset);
  return true;
}

}  // namespace gammadb::storage
