#ifndef GAMMA_STORAGE_HEAP_FILE_H_
#define GAMMA_STORAGE_HEAP_FILE_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/result.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"

namespace gammadb::storage {

/// Record id: a page's index *within its file* plus the slot on that page.
/// Stable across in-place updates; invalidated by deletion.
struct Rid {
  uint32_t page_index = 0;
  uint16_t slot = 0;

  bool operator==(const Rid&) const = default;
  bool operator<(const Rid& other) const {
    return page_index != other.page_index ? page_index < other.page_index
                                          : slot < other.slot;
  }
};

/// \brief A WiSS-style structured sequential file of records.
///
/// Records are appended into slotted pages; the file remembers its disk
/// pages in order, so a scan is a sequential sweep. Loading in key order
/// yields the paper's "clustered" organization (index order == key order)
/// with no extra machinery.
class HeapFile {
 public:
  /// Callback for scans: (rid, record bytes). Return false to stop the scan.
  using ScanCallback = std::function<bool(Rid, std::span<const uint8_t>)>;

  HeapFile(BufferPool* pool, const ChargeContext* charge);

  HeapFile(const HeapFile&) = delete;
  HeapFile& operator=(const HeapFile&) = delete;
  HeapFile(HeapFile&&) = default;
  HeapFile& operator=(HeapFile&&) = default;

  uint32_t num_pages() const {
    return static_cast<uint32_t>(pages_.size());
  }
  uint64_t num_tuples() const { return num_tuples_; }

  /// Appends a record, growing the file as needed.
  Result<Rid> Append(std::span<const uint8_t> record);

  /// Full sequential scan.
  Status Scan(const ScanCallback& callback) const;

  /// Sequential scan of the page range [first_page, last_page].
  Status ScanPages(uint32_t first_page, uint32_t last_page,
                   const ScanCallback& callback) const;

  /// Random fetch of one record (copied out).
  Result<std::vector<uint8_t>> Fetch(
      Rid rid, AccessIntent intent = AccessIntent::kRandom) const;

  /// Tombstones the record.
  Status Delete(Rid rid);

  /// Revives a tombstoned record at its original rid (recovery undo of a
  /// deletion — keeps the file byte-identical to one that never deleted).
  Status Restore(Rid rid, std::span<const uint8_t> record);

  /// Replaces the record; must fit on its page (fixed-size records always
  /// do). The rid remains valid.
  Status Update(Rid rid, std::span<const uint8_t> record);

  /// Forgets all pages and tuples (temporary-file reuse). The simulated
  /// disk's space is unbounded, so old pages are simply abandoned.
  void Clear();

 private:
  BufferPool* pool_;
  const ChargeContext* charge_;
  std::vector<uint32_t> pages_;  // disk page numbers, in file order
  uint64_t num_tuples_ = 0;
};

}  // namespace gammadb::storage

#endif  // GAMMA_STORAGE_HEAP_FILE_H_
