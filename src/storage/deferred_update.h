#ifndef GAMMA_STORAGE_DEFERRED_UPDATE_H_
#define GAMMA_STORAGE_DEFERRED_UPDATE_H_

#include <cstdint>
#include <vector>

#include "storage/btree.h"

namespace gammadb::storage {

/// \brief Gamma's deferred-update file for index maintenance.
///
/// When an update statement modifies an attribute that an index is built on,
/// applying the index change immediately would let the statement re-find the
/// tuple it just moved (the Halloween problem, paper §7 footnote 5). Gamma
/// instead queues index changes in a deferred-update file and applies them
/// when the statement completes. The file corresponds only to the index
/// structure, not the data file, and doubles as Gamma's partial-recovery
/// record for the statement.
class DeferredUpdateFile {
 public:
  DeferredUpdateFile(const ChargeContext* charge, uint32_t page_size);

  DeferredUpdateFile(const DeferredUpdateFile&) = delete;
  DeferredUpdateFile& operator=(const DeferredUpdateFile&) = delete;

  void LogInsert(BTree* index, int32_t key, Rid rid);
  void LogDelete(BTree* index, int32_t key, Rid rid);

  size_t pending() const { return records_.size(); }

  /// Applies all queued index changes (statement commit). Charges one forced
  /// page write for the deferred file plus the per-record apply path. On
  /// error the remaining records stay queued (re-commit or Abort).
  Status Commit();

  /// Drops all queued changes (statement abort).
  void Abort() { records_.clear(); }

 private:
  struct Record {
    BTree* index;
    bool is_insert;
    int32_t key;
    Rid rid;
  };

  const ChargeContext* charge_;
  uint32_t page_size_;
  std::vector<Record> records_;
};

}  // namespace gammadb::storage

#endif  // GAMMA_STORAGE_DEFERRED_UPDATE_H_
