#include "storage/buffer_pool.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/macros.h"

namespace gammadb::storage {

BufferPool::BufferPool(SimulatedDisk* disk, const ChargeContext* charge,
                       uint64_t capacity_bytes)
    : disk_(disk), charge_(charge) {
  GAMMA_CHECK(disk != nullptr && charge != nullptr);
  const uint64_t frames = capacity_bytes / disk->page_size();
  // Keep at least a handful of frames so concurrent pins (B-tree descents
  // hold parent + child) always succeed.
  capacity_frames_ = static_cast<uint32_t>(std::max<uint64_t>(frames, 8));
}

BufferPool::~BufferPool() {
  // Intentionally no flush: accounting requires explicit FlushAll inside a
  // phase; destruction outside a query would charge to nothing anyway.
}

Status BufferPool::ReadWithRetry(uint32_t page_no, uint8_t* out,
                                 AccessIntent intent) {
  Status status;
  for (int attempt = 0; attempt <= kMaxIoRetries; ++attempt) {
    if (attempt > 0) {
      ++io_retries_;
      charge_->SerialSec(kRetryBackoffSec);
      // A retry re-seeks from scratch no matter how the first pass streamed.
      intent = AccessIntent::kRandom;
    }
    status = disk_->Read(page_no, out);
    if (status.ok() || status.IsIOError()) {
      // The platters spun either way; a transient failure costs the same
      // access time as a success.
      charge_->DiskRead(disk_->page_size(), intent);
    }
    if (!status.IsIOError()) return status;
  }
  return Status::Unavailable("node " + std::to_string(disk_->node()) +
                             ", page " + std::to_string(page_no) + ": " +
                             std::to_string(kMaxIoRetries) +
                             " read retries exhausted (" + status.message() +
                             ")");
}

Status BufferPool::WriteWithRetry(uint32_t page_no, const uint8_t* data,
                                  AccessIntent intent) {
  Status status;
  for (int attempt = 0; attempt <= kMaxIoRetries; ++attempt) {
    if (attempt > 0) {
      ++io_retries_;
      charge_->SerialSec(kRetryBackoffSec);
      intent = AccessIntent::kRandom;
    }
    status = disk_->Write(page_no, data);
    if (status.ok() || status.IsIOError()) {
      charge_->DiskWrite(disk_->page_size(), intent);
    }
    if (!status.IsIOError()) return status;
  }
  return Status::Unavailable("node " + std::to_string(disk_->node()) +
                             ", page " + std::to_string(page_no) + ": " +
                             std::to_string(kMaxIoRetries) +
                             " write retries exhausted (" + status.message() +
                             ")");
}

Status BufferPool::WriteBack(uint32_t page_no, Frame& frame) {
  GAMMA_RETURN_NOT_OK(
      WriteWithRetry(page_no, frame.data.data(), frame.write_intent));
  frame.dirty = false;
  return Status::OK();
}

Status BufferPool::MakeRoom() {
  if (frames_.size() < capacity_frames_) return Status::OK();
  GAMMA_CHECK_MSG(!lru_.empty(), "buffer pool: all frames pinned");
  const uint32_t victim_no = lru_.front();
  auto it = frames_.find(victim_no);
  GAMMA_DCHECK(it != frames_.end());
  if (it->second.dirty) GAMMA_RETURN_NOT_OK(WriteBack(victim_no, it->second));
  lru_.pop_front();
  frames_.erase(it);
  ++evictions_;
  return Status::OK();
}

Result<uint8_t*> BufferPool::Pin(uint32_t page_no, AccessIntent intent) {
  auto it = frames_.find(page_no);
  if (it != frames_.end()) {
    Frame& frame = it->second;
    if (frame.in_lru) {
      lru_.erase(frame.lru_pos);
      frame.in_lru = false;
    }
    frame.pin_count += 1;
    ++hits_;
    charge_->BufferHit();
    return frame.data.data();
  }
  GAMMA_RETURN_NOT_OK(MakeRoom());
  // Read into a scratch buffer first; a failed or corrupt read must not
  // leave a frame cached.
  std::vector<uint8_t> buf(disk_->page_size());
  GAMMA_RETURN_NOT_OK(ReadWithRetry(page_no, buf.data(), intent));
  if (SimulatedDisk::ComputeChecksum(buf.data(), buf.size()) !=
      disk_->StoredChecksum(page_no)) {
    return Status::Corruption("checksum mismatch on node " +
                              std::to_string(disk_->node()) + ", page " +
                              std::to_string(page_no));
  }
  Frame& frame = frames_[page_no];
  frame.data = std::move(buf);
  frame.pin_count = 1;
  ++misses_;
  return frame.data.data();
}

Result<uint32_t> BufferPool::NewPage(uint8_t** frame_out) {
  GAMMA_RETURN_NOT_OK(MakeRoom());
  uint32_t page_no = 0;
  GAMMA_ASSIGN_OR_RETURN(page_no, disk_->Allocate());
  Frame& frame = frames_[page_no];
  frame.data.assign(disk_->page_size(), 0);
  frame.pin_count = 1;
  frame.dirty = true;
  frame.write_intent = AccessIntent::kSequential;
  *frame_out = frame.data.data();
  return page_no;
}

void BufferPool::MarkDirty(uint32_t page_no, AccessIntent intent) {
  auto it = frames_.find(page_no);
  GAMMA_CHECK_MSG(it != frames_.end() && it->second.pin_count > 0,
                  "MarkDirty on unpinned page");
  it->second.dirty = true;
  it->second.write_intent = intent;
}

void BufferPool::Unpin(uint32_t page_no) {
  auto it = frames_.find(page_no);
  GAMMA_CHECK_MSG(it != frames_.end() && it->second.pin_count > 0,
                  "Unpin without pin");
  Frame& frame = it->second;
  frame.pin_count -= 1;
  if (frame.pin_count == 0) {
    frame.lru_pos = lru_.insert(lru_.end(), page_no);
    frame.in_lru = true;
  }
}

Status BufferPool::FlushAll() {
  for (auto& [page_no, frame] : frames_) {
    if (frame.dirty) GAMMA_RETURN_NOT_OK(WriteBack(page_no, frame));
  }
  return Status::OK();
}

Status BufferPool::Invalidate() {
  GAMMA_RETURN_NOT_OK(FlushAll());
  for (auto it = frames_.begin(); it != frames_.end();) {
    if (it->second.pin_count == 0) {
      if (it->second.in_lru) lru_.erase(it->second.lru_pos);
      it = frames_.erase(it);
    } else {
      ++it;
    }
  }
  return Status::OK();
}

void BufferPool::Discard() {
  for (auto it = frames_.begin(); it != frames_.end();) {
    if (it->second.pin_count == 0) {
      if (it->second.in_lru) lru_.erase(it->second.lru_pos);
      it = frames_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace gammadb::storage
