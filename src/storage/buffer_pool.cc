#include "storage/buffer_pool.h"

#include <algorithm>

#include "common/macros.h"

namespace gammadb::storage {

BufferPool::BufferPool(SimulatedDisk* disk, const ChargeContext* charge,
                       uint64_t capacity_bytes)
    : disk_(disk), charge_(charge) {
  GAMMA_CHECK(disk != nullptr && charge != nullptr);
  const uint64_t frames = capacity_bytes / disk->page_size();
  // Keep at least a handful of frames so concurrent pins (B-tree descents
  // hold parent + child) always succeed.
  capacity_frames_ = static_cast<uint32_t>(std::max<uint64_t>(frames, 8));
}

BufferPool::~BufferPool() {
  // Intentionally no flush: accounting requires explicit FlushAll inside a
  // phase; destruction outside a query would charge to nothing anyway.
}

void BufferPool::WriteBack(uint32_t page_no, Frame& frame) {
  disk_->Write(page_no, frame.data.data());
  charge_->DiskWrite(disk_->page_size(), frame.write_intent);
  frame.dirty = false;
}

void BufferPool::MakeRoom() {
  if (frames_.size() < capacity_frames_) return;
  GAMMA_CHECK_MSG(!lru_.empty(), "buffer pool: all frames pinned");
  const uint32_t victim_no = lru_.front();
  lru_.pop_front();
  auto it = frames_.find(victim_no);
  GAMMA_DCHECK(it != frames_.end());
  if (it->second.dirty) WriteBack(victim_no, it->second);
  frames_.erase(it);
  ++evictions_;
}

uint8_t* BufferPool::Pin(uint32_t page_no, AccessIntent intent) {
  auto it = frames_.find(page_no);
  if (it != frames_.end()) {
    Frame& frame = it->second;
    if (frame.in_lru) {
      lru_.erase(frame.lru_pos);
      frame.in_lru = false;
    }
    frame.pin_count += 1;
    ++hits_;
    charge_->BufferHit();
    return frame.data.data();
  }
  MakeRoom();
  Frame& frame = frames_[page_no];
  frame.data.resize(disk_->page_size());
  disk_->Read(page_no, frame.data.data());
  frame.pin_count = 1;
  ++misses_;
  charge_->DiskRead(disk_->page_size(), intent);
  return frame.data.data();
}

uint32_t BufferPool::NewPage(uint8_t** frame_out) {
  MakeRoom();
  const uint32_t page_no = disk_->Allocate();
  Frame& frame = frames_[page_no];
  frame.data.assign(disk_->page_size(), 0);
  frame.pin_count = 1;
  frame.dirty = true;
  frame.write_intent = AccessIntent::kSequential;
  *frame_out = frame.data.data();
  return page_no;
}

void BufferPool::MarkDirty(uint32_t page_no, AccessIntent intent) {
  auto it = frames_.find(page_no);
  GAMMA_CHECK_MSG(it != frames_.end() && it->second.pin_count > 0,
                  "MarkDirty on unpinned page");
  it->second.dirty = true;
  it->second.write_intent = intent;
}

void BufferPool::Unpin(uint32_t page_no) {
  auto it = frames_.find(page_no);
  GAMMA_CHECK_MSG(it != frames_.end() && it->second.pin_count > 0,
                  "Unpin without pin");
  Frame& frame = it->second;
  frame.pin_count -= 1;
  if (frame.pin_count == 0) {
    frame.lru_pos = lru_.insert(lru_.end(), page_no);
    frame.in_lru = true;
  }
}

void BufferPool::FlushAll() {
  for (auto& [page_no, frame] : frames_) {
    if (frame.dirty) WriteBack(page_no, frame);
  }
}

void BufferPool::Invalidate() {
  FlushAll();
  for (auto it = frames_.begin(); it != frames_.end();) {
    if (it->second.pin_count == 0) {
      if (it->second.in_lru) lru_.erase(it->second.lru_pos);
      it = frames_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace gammadb::storage
