#include "storage/btree.h"

#include <algorithm>
#include <cstring>

#include "common/macros.h"

namespace gammadb::storage {

BTree::BTree(BufferPool* pool, const ChargeContext* charge)
    : pool_(pool), charge_(charge) {
  GAMMA_CHECK(pool != nullptr && charge != nullptr);
  const uint32_t page_size = pool_->page_size();
  GAMMA_CHECK(page_size > kHeaderSize + sizeof(LeafEntry) * 2 + 8);
  leaf_capacity_ = (page_size - kHeaderSize) / sizeof(LeafEntry);
  // Internal layout: header, leftmost child pointer (4 bytes), entries.
  internal_capacity_ =
      (page_size - kHeaderSize - sizeof(uint32_t)) / sizeof(InternalEntry);
}

bool BTree::EntryLess(const LeafEntry& a, int32_t key, Rid rid) {
  if (a.key != key) return a.key < key;
  const Rid arid{a.page_index, a.slot};
  return arid < rid;
}

namespace {

// Leftmost child pointer of an internal node lives right after the header.
uint32_t* LeftmostChild(uint8_t* frame) {
  return reinterpret_cast<uint32_t*>(frame + sizeof(uint32_t) * 2);
}

}  // namespace

Result<uint32_t> BTree::NewNode(bool is_leaf, uint8_t** frame_out) {
  uint8_t* frame = nullptr;
  uint32_t page_no = 0;
  GAMMA_ASSIGN_OR_RETURN(page_no, pool_->NewPage(&frame));
  auto* header = Header(frame);
  header->count = 0;
  header->is_leaf = is_leaf ? 1 : 0;
  header->pad = 0;
  header->next_leaf = kNoPage;
  *frame_out = frame;
  ++num_pages_;
  return page_no;
}

// Internal entries area starts after header + leftmost child pointer.
static constexpr uint32_t kInternalEntriesOffset = 8 + 4;

Result<uint32_t> BTree::FindLeafForScan(int32_t key) const {
  GAMMA_CHECK(root_ != kNoPage);
  uint32_t page_no = root_;
  for (;;) {
    uint8_t* frame = nullptr;
    GAMMA_ASSIGN_OR_RETURN(frame, pool_->Pin(page_no, AccessIntent::kRandom));
    charge_->BtreeNodeVisit();
    const auto* header = Header(frame);
    if (header->is_leaf) {
      pool_->Unpin(page_no);
      return page_no;
    }
    const auto* entries =
        reinterpret_cast<const InternalEntry*>(frame + kInternalEntriesOffset);
    // Strict-less routing: the largest separator strictly below `key`, so a
    // run of duplicates split across children is entered at its start.
    uint32_t lo = 0, hi = header->count;
    while (lo < hi) {
      const uint32_t mid = (lo + hi) / 2;
      if (entries[mid].key < key) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    const uint32_t child =
        (lo == 0) ? *LeftmostChild(frame) : entries[lo - 1].child;
    pool_->Unpin(page_no);
    page_no = child;
  }
}

Result<uint32_t> BTree::FindLeafForInsert(int32_t key, Rid /*rid*/,
                                          std::vector<uint32_t>* path) const {
  GAMMA_CHECK(root_ != kNoPage);
  uint32_t page_no = root_;
  for (;;) {
    uint8_t* frame = nullptr;
    GAMMA_ASSIGN_OR_RETURN(frame, pool_->Pin(page_no, AccessIntent::kRandom));
    charge_->BtreeNodeVisit();
    const auto* header = Header(frame);
    if (header->is_leaf) {
      pool_->Unpin(page_no);
      return page_no;
    }
    const auto* entries =
        reinterpret_cast<const InternalEntry*>(frame + kInternalEntriesOffset);
    // Route right among equal separators (first separator > key).
    uint32_t lo = 0, hi = header->count;
    while (lo < hi) {
      const uint32_t mid = (lo + hi) / 2;
      if (entries[mid].key <= key) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    const uint32_t child =
        (lo == 0) ? *LeftmostChild(frame) : entries[lo - 1].child;
    path->push_back(page_no);
    pool_->Unpin(page_no);
    page_no = child;
  }
}

Status BTree::BulkLoad(std::span<const Entry> sorted_entries) {
  GAMMA_CHECK_MSG(root_ == kNoPage, "BulkLoad on a non-empty tree");
#ifndef NDEBUG
  for (size_t i = 1; i < sorted_entries.size(); ++i) {
    GAMMA_DCHECK(sorted_entries[i - 1].key <= sorted_entries[i].key);
  }
#endif
  if (sorted_entries.empty()) {
    uint8_t* frame = nullptr;
    GAMMA_ASSIGN_OR_RETURN(root_, NewNode(/*is_leaf=*/true, &frame));
    pool_->Unpin(root_);
    height_ = 1;
    return Status::OK();
  }

  // Level 0: pack leaves full, remembering each leaf's minimum key.
  std::vector<InternalEntry> level;
  uint32_t prev_leaf = kNoPage;
  size_t i = 0;
  while (i < sorted_entries.size()) {
    uint8_t* frame = nullptr;
    uint32_t page_no = 0;
    GAMMA_ASSIGN_OR_RETURN(page_no, NewNode(/*is_leaf=*/true, &frame));
    auto* header = Header(frame);
    auto* leaves = Leaves(frame);
    const size_t take =
        std::min<size_t>(leaf_capacity_, sorted_entries.size() - i);
    for (size_t j = 0; j < take; ++j) {
      const Entry& entry = sorted_entries[i + j];
      leaves[j] = LeafEntry{entry.key, entry.rid.page_index, entry.rid.slot, 0};
    }
    header->count = static_cast<uint16_t>(take);
    pool_->Unpin(page_no);
    if (prev_leaf != kNoPage) {
      uint8_t* prev = nullptr;
      GAMMA_ASSIGN_OR_RETURN(prev,
                             pool_->Pin(prev_leaf, AccessIntent::kSequential));
      Header(prev)->next_leaf = page_no;
      pool_->MarkDirty(prev_leaf, AccessIntent::kSequential);
      pool_->Unpin(prev_leaf);
    }
    prev_leaf = page_no;
    level.push_back(InternalEntry{sorted_entries[i].key, page_no});
    i += take;
  }
  height_ = 1;

  // Build internal levels until a single node remains.
  while (level.size() > 1) {
    std::vector<InternalEntry> next_level;
    size_t j = 0;
    while (j < level.size()) {
      uint8_t* frame = nullptr;
      uint32_t page_no = 0;
      GAMMA_ASSIGN_OR_RETURN(page_no, NewNode(/*is_leaf=*/false, &frame));
      auto* header = Header(frame);
      const size_t take =
          std::min<size_t>(internal_capacity_ + 1, level.size() - j);
      *LeftmostChild(frame) = level[j].child;
      auto* entries =
          reinterpret_cast<InternalEntry*>(frame + kInternalEntriesOffset);
      for (size_t k = 1; k < take; ++k) entries[k - 1] = level[j + k];
      header->count = static_cast<uint16_t>(take - 1);
      pool_->Unpin(page_no);
      next_level.push_back(InternalEntry{level[j].key, page_no});
      j += take;
    }
    level = std::move(next_level);
    ++height_;
  }
  root_ = level.front().child;
  num_entries_ = sorted_entries.size();
  return Status::OK();
}

Status BTree::Insert(int32_t key, Rid rid) {
  if (root_ == kNoPage) {
    uint8_t* frame = nullptr;
    GAMMA_ASSIGN_OR_RETURN(root_, NewNode(/*is_leaf=*/true, &frame));
    pool_->Unpin(root_);
    height_ = 1;
  }
  std::vector<uint32_t> path;
  uint32_t leaf_no = 0;
  GAMMA_ASSIGN_OR_RETURN(leaf_no, FindLeafForInsert(key, rid, &path));

  uint8_t* frame = nullptr;
  GAMMA_ASSIGN_OR_RETURN(frame, pool_->Pin(leaf_no, AccessIntent::kRandom));
  auto* header = Header(frame);
  auto* leaves = Leaves(frame);
  const uint16_t count = header->count;

  if (count < leaf_capacity_) {
    uint16_t pos = 0;
    while (pos < count && EntryLess(leaves[pos], key, rid)) ++pos;
    std::memmove(&leaves[pos + 1], &leaves[pos],
                 sizeof(LeafEntry) * (count - pos));
    leaves[pos] = LeafEntry{key, rid.page_index, rid.slot, 0};
    header->count = count + 1;
    pool_->MarkDirty(leaf_no, AccessIntent::kRandom);
    pool_->Unpin(leaf_no);
    ++num_entries_;
    return Status::OK();
  }

  // Leaf split: gather count+1 entries, divide in half.
  std::vector<LeafEntry> all(leaves, leaves + count);
  LeafEntry incoming{key, rid.page_index, rid.slot, 0};
  auto it = std::lower_bound(
      all.begin(), all.end(), incoming, [](const LeafEntry& a,
                                           const LeafEntry& b) {
        return EntryLess(a, b.key, Rid{b.page_index, b.slot});
      });
  all.insert(it, incoming);
  const size_t mid = all.size() / 2;

  uint8_t* right_frame = nullptr;
  const Result<uint32_t> right_or = NewNode(/*is_leaf=*/true, &right_frame);
  if (!right_or.ok()) {
    pool_->Unpin(leaf_no);
    return right_or.status();
  }
  const uint32_t right_no = *right_or;
  auto* right_header = Header(right_frame);
  auto* right_leaves = Leaves(right_frame);
  std::copy(all.begin() + static_cast<long>(mid), all.end(), right_leaves);
  right_header->count = static_cast<uint16_t>(all.size() - mid);
  right_header->next_leaf = header->next_leaf;
  pool_->MarkDirty(right_no, AccessIntent::kSequential);

  std::copy(all.begin(), all.begin() + static_cast<long>(mid), leaves);
  header->count = static_cast<uint16_t>(mid);
  header->next_leaf = right_no;
  pool_->MarkDirty(leaf_no, AccessIntent::kRandom);

  const int32_t sep_key = right_leaves[0].key;
  pool_->Unpin(right_no);
  pool_->Unpin(leaf_no);
  ++num_entries_;
  return InsertIntoParent(&path, sep_key, right_no);
}

Status BTree::InsertIntoParent(std::vector<uint32_t>* path, int32_t sep_key,
                               uint32_t new_child) {
  if (path->empty()) {
    // The split node was the root: grow the tree by one level.
    const uint32_t old_root = root_;
    uint8_t* frame = nullptr;
    uint32_t new_root = 0;
    GAMMA_ASSIGN_OR_RETURN(new_root, NewNode(/*is_leaf=*/false, &frame));
    auto* header = Header(frame);
    *LeftmostChild(frame) = old_root;
    auto* entries =
        reinterpret_cast<InternalEntry*>(frame + kInternalEntriesOffset);
    entries[0] = InternalEntry{sep_key, new_child};
    header->count = 1;
    pool_->MarkDirty(new_root, AccessIntent::kSequential);
    pool_->Unpin(new_root);
    root_ = new_root;
    ++height_;
    return Status::OK();
  }

  const uint32_t parent_no = path->back();
  path->pop_back();
  // The new child always sits immediately right of its split sibling, and
  // the sibling is where the descent went; locating the insertion point by
  // separator key handles duplicate separators correctly because the
  // descent routed right among equals.
  uint8_t* frame = nullptr;
  GAMMA_ASSIGN_OR_RETURN(frame, pool_->Pin(parent_no, AccessIntent::kRandom));
  auto* header = Header(frame);
  auto* entries =
      reinterpret_cast<InternalEntry*>(frame + kInternalEntriesOffset);
  const uint16_t count = header->count;

  uint16_t pos = 0;
  while (pos < count && entries[pos].key <= sep_key) ++pos;

  if (count < internal_capacity_) {
    std::memmove(&entries[pos + 1], &entries[pos],
                 sizeof(InternalEntry) * (count - pos));
    entries[pos] = InternalEntry{sep_key, new_child};
    header->count = count + 1;
    pool_->MarkDirty(parent_no, AccessIntent::kRandom);
    pool_->Unpin(parent_no);
    return Status::OK();
  }

  // Internal split: middle separator moves up.
  std::vector<InternalEntry> all(entries, entries + count);
  all.insert(all.begin() + pos, InternalEntry{sep_key, new_child});
  const size_t mid = all.size() / 2;
  const InternalEntry promoted = all[mid];

  uint8_t* right_frame = nullptr;
  const Result<uint32_t> right_or = NewNode(/*is_leaf=*/false, &right_frame);
  if (!right_or.ok()) {
    pool_->Unpin(parent_no);
    return right_or.status();
  }
  const uint32_t right_no = *right_or;
  auto* right_header = Header(right_frame);
  *LeftmostChild(right_frame) = promoted.child;
  auto* right_entries = reinterpret_cast<InternalEntry*>(right_frame +
                                                         kInternalEntriesOffset);
  std::copy(all.begin() + static_cast<long>(mid) + 1, all.end(),
            right_entries);
  right_header->count = static_cast<uint16_t>(all.size() - mid - 1);
  pool_->MarkDirty(right_no, AccessIntent::kSequential);
  pool_->Unpin(right_no);

  std::copy(all.begin(), all.begin() + static_cast<long>(mid), entries);
  header->count = static_cast<uint16_t>(mid);
  pool_->MarkDirty(parent_no, AccessIntent::kRandom);
  pool_->Unpin(parent_no);

  return InsertIntoParent(path, promoted.key, right_no);
}

Result<bool> BTree::Delete(int32_t key, Rid rid) {
  if (root_ == kNoPage) return false;
  uint32_t page_no = 0;
  GAMMA_ASSIGN_OR_RETURN(page_no, FindLeafForScan(key));
  while (page_no != kNoPage) {
    uint8_t* frame = nullptr;
    GAMMA_ASSIGN_OR_RETURN(frame, pool_->Pin(page_no, AccessIntent::kRandom));
    auto* header = Header(frame);
    auto* leaves = Leaves(frame);
    const uint16_t count = header->count;
    bool past_key = false;
    for (uint16_t i = 0; i < count; ++i) {
      if (leaves[i].key > key) {
        past_key = true;
        break;
      }
      if (leaves[i].key == key && leaves[i].page_index == rid.page_index &&
          leaves[i].slot == rid.slot) {
        std::memmove(&leaves[i], &leaves[i + 1],
                     sizeof(LeafEntry) * (count - i - 1));
        header->count = count - 1;
        pool_->MarkDirty(page_no, AccessIntent::kRandom);
        pool_->Unpin(page_no);
        --num_entries_;
        return true;
      }
    }
    const uint32_t next = header->next_leaf;
    pool_->Unpin(page_no);
    if (past_key) return false;
    page_no = next;
  }
  return false;
}

Status BTree::ScanFrom(int32_t key, const ScanCallback& callback) const {
  if (root_ == kNoPage) return Status::OK();
  uint32_t page_no = 0;
  GAMMA_ASSIGN_OR_RETURN(page_no, FindLeafForScan(key));
  bool first_leaf = true;
  while (page_no != kNoPage) {
    uint8_t* frame = nullptr;
    GAMMA_ASSIGN_OR_RETURN(
        frame,
        pool_->Pin(page_no, first_leaf ? AccessIntent::kRandom
                                       : AccessIntent::kSequential));
    const auto* header = Header(frame);
    const auto* leaves = Leaves(frame);
    for (uint16_t i = 0; i < header->count; ++i) {
      if (leaves[i].key < key) continue;
      Entry entry{leaves[i].key, Rid{leaves[i].page_index, leaves[i].slot}};
      if (!callback(entry)) {
        pool_->Unpin(page_no);
        return Status::OK();
      }
    }
    const uint32_t next = header->next_leaf;
    pool_->Unpin(page_no);
    page_no = next;
    first_leaf = false;
  }
  return Status::OK();
}

Result<std::vector<Rid>> BTree::RangeLookup(int32_t lo, int32_t hi) const {
  std::vector<Rid> rids;
  GAMMA_RETURN_NOT_OK(ScanFrom(lo, [&](const Entry& entry) {
    if (entry.key > hi) return false;
    rids.push_back(entry.rid);
    return true;
  }));
  return rids;
}

}  // namespace gammadb::storage
