#ifndef GAMMA_STORAGE_BTREE_H_
#define GAMMA_STORAGE_BTREE_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/heap_file.h"

namespace gammadb::storage {

/// \brief B+-tree index mapping a 4-byte integer key to record ids.
///
/// Serves both of Gamma's index kinds: over a key-sorted file it is the
/// paper's *clustered* index (leaf order == data order, so a range scan
/// touches only the matching data pages sequentially); over an arbitrarily
/// loaded file it is the *non-clustered* index (every qualifying tuple can
/// fault a random data page — the behaviour behind Figs 4, 7 and 8).
///
/// Duplicate keys are allowed (entries are ordered by (key, rid)). Node
/// fanout follows the page size, so the page-size experiments change index
/// height and leaf count naturally. Deletion is by tombstone-free removal
/// within a leaf without rebalancing (WiSS-era behaviour; documented
/// trade-off: the tree never shrinks).
class BTree {
 public:
  struct Entry {
    int32_t key;
    Rid rid;
  };

  /// Scan callback; return false to stop.
  using ScanCallback = std::function<bool(const Entry&)>;

  BTree(BufferPool* pool, const ChargeContext* charge);

  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;

  /// Builds the tree from entries sorted by (key, rid). Must be empty.
  Status BulkLoad(std::span<const Entry> sorted_entries);

  Status Insert(int32_t key, Rid rid);

  /// Removes the exact (key, rid) entry. Returns false if absent.
  Result<bool> Delete(int32_t key, Rid rid);

  /// Visits all entries with entry.key >= key in (key, rid) order.
  Status ScanFrom(int32_t key, const ScanCallback& callback) const;

  /// Collects the rids of all entries with lo <= key <= hi.
  Result<std::vector<Rid>> RangeLookup(int32_t lo, int32_t hi) const;

  uint32_t height() const { return height_; }
  uint64_t num_entries() const { return num_entries_; }
  uint32_t num_pages() const { return num_pages_; }
  bool empty() const { return num_entries_ == 0; }

  /// Maximum entries per leaf / per internal node at this page size.
  uint32_t leaf_capacity() const { return leaf_capacity_; }
  uint32_t internal_capacity() const { return internal_capacity_; }

 private:
  struct NodeHeader {
    uint16_t count;
    uint8_t is_leaf;
    uint8_t pad;
    uint32_t next_leaf;  // leaf chain; kNoPage when none or internal
  };
  struct LeafEntry {
    int32_t key;
    uint32_t page_index;
    uint16_t slot;
    uint16_t pad;
  };
  struct InternalEntry {
    int32_t key;      // smallest key in the child's subtree
    uint32_t child;   // page number
  };
  static constexpr uint32_t kNoPage = 0xFFFFFFFF;
  static constexpr uint32_t kHeaderSize = sizeof(NodeHeader);

  static NodeHeader* Header(uint8_t* frame) {
    return reinterpret_cast<NodeHeader*>(frame);
  }
  static const NodeHeader* Header(const uint8_t* frame) {
    return reinterpret_cast<const NodeHeader*>(frame);
  }
  static LeafEntry* Leaves(uint8_t* frame) {
    return reinterpret_cast<LeafEntry*>(frame + kHeaderSize);
  }
  static const LeafEntry* Leaves(const uint8_t* frame) {
    return reinterpret_cast<const LeafEntry*>(frame + kHeaderSize);
  }

  static bool EntryLess(const LeafEntry& a, int32_t key, Rid rid);

  Result<uint32_t> NewNode(bool is_leaf, uint8_t** frame_out);

  /// Descends to the leaf that may contain the first entry >= key
  /// (strict-less routing so duplicates split across leaves are not missed).
  Result<uint32_t> FindLeafForScan(int32_t key) const;

  /// Descends for insertion of (key, rid), recording the path of
  /// (page_no, child_slot_in_parent) pairs.
  Result<uint32_t> FindLeafForInsert(int32_t key, Rid rid,
                                     std::vector<uint32_t>* path) const;

  Status InsertIntoParent(std::vector<uint32_t>* path, int32_t sep_key,
                          uint32_t new_child);

  BufferPool* pool_;
  const ChargeContext* charge_;
  uint32_t leaf_capacity_;
  uint32_t internal_capacity_;
  uint32_t root_ = kNoPage;
  uint32_t height_ = 0;  // number of levels; 1 == root is a leaf
  uint64_t num_entries_ = 0;
  uint32_t num_pages_ = 0;
};

}  // namespace gammadb::storage

#endif  // GAMMA_STORAGE_BTREE_H_
