#ifndef GAMMA_STORAGE_PAGE_H_
#define GAMMA_STORAGE_PAGE_H_

#include <cstdint>
#include <optional>
#include <span>

namespace gammadb::storage {

/// \brief Slotted-page record layout over a raw page buffer.
///
/// Classic layout: a small header, a slot directory growing upward, and
/// record bodies growing downward from the end of the page. Deleting a
/// record tombstones its slot (slot ids stay stable so record ids remain
/// valid); the space is reclaimed by on-demand compaction when a later
/// insert needs it.
///
/// The class is a non-owning view: the bytes live in a buffer-pool frame.
class SlottedPage {
 public:
  /// Slot value marking a deleted record.
  static constexpr uint16_t kDeadSlot = 0xFFFF;

  /// Minimum meaningful page size (header + one slot + one byte).
  static constexpr uint32_t kMinPageSize = 64;

  SlottedPage(uint8_t* data, uint32_t page_size);

  /// Formats a fresh page in `data`.
  static void Initialize(uint8_t* data, uint32_t page_size);

  /// Number of slots ever allocated (including tombstones).
  uint16_t slot_count() const;
  /// Number of live records.
  uint16_t live_count() const;

  /// Bytes available for one more record of any size (accounts for the slot
  /// directory entry and for reclaimable fragmentation).
  uint32_t FreeSpace() const;

  /// Appends a record; returns its slot id, or nullopt if it cannot fit.
  std::optional<uint16_t> Insert(std::span<const uint8_t> record);

  /// Returns the record bytes, or an empty span for a dead/out-of-range slot.
  std::span<const uint8_t> Get(uint16_t slot) const;

  bool IsLive(uint16_t slot) const;

  /// Tombstones the slot. Returns false if it was not live.
  bool Delete(uint16_t slot);

  /// Revives a tombstoned slot with `record` (recovery undo of a deletion:
  /// the tuple returns to its original rid). Returns false if the slot is
  /// live/out of range or the record no longer fits.
  bool Restore(uint16_t slot, std::span<const uint8_t> record);

  /// Replaces the record in `slot`. Equal-size updates happen in place;
  /// different sizes relocate within the page. Returns false if the new
  /// record cannot fit.
  bool Update(uint16_t slot, std::span<const uint8_t> record);

  uint32_t page_size() const { return page_size_; }

 private:
  struct Header {
    uint16_t num_slots;
    uint16_t free_end;    // records occupy [free_end, page_size)
    uint16_t live_count;
    uint16_t dead_bytes;  // reclaimable record bytes from deleted slots
  };
  struct Slot {
    uint16_t offset;  // kDeadSlot when tombstoned
    uint16_t length;
  };

  static constexpr uint32_t kHeaderSize = sizeof(Header);
  static constexpr uint32_t kSlotSize = sizeof(Slot);

  Header* header() { return reinterpret_cast<Header*>(data_); }
  const Header* header() const { return reinterpret_cast<const Header*>(data_); }
  Slot* slots() { return reinterpret_cast<Slot*>(data_ + kHeaderSize); }
  const Slot* slots() const {
    return reinterpret_cast<const Slot*>(data_ + kHeaderSize);
  }

  /// Contiguous free bytes between the slot directory and the record area.
  uint32_t ContiguousFree() const;
  /// Moves live records to the end of the page, squeezing out dead bytes.
  void Compact();

  uint8_t* data_;
  uint32_t page_size_;
};

}  // namespace gammadb::storage

#endif  // GAMMA_STORAGE_PAGE_H_
