#include "storage/storage_manager.h"

#include "common/macros.h"

namespace gammadb::storage {

StorageManager::StorageManager(uint32_t page_size, uint64_t buffer_bytes,
                               sim::FaultInjector* faults, int fault_node)
    : disk_(page_size, faults, fault_node),
      pool_(&disk_, &charge_, buffer_bytes),
      locks_(&charge_) {}

void StorageManager::BindTracker(sim::CostTracker* tracker, int node) {
  charge_.tracker = tracker;
  charge_.node = node;
}

FileId StorageManager::CreateFile() {
  const FileId id = next_file_id_++;
  files_[id] = std::make_unique<HeapFile>(&pool_, &charge_);
  return id;
}

HeapFile& StorageManager::file(FileId id) {
  auto it = files_.find(id);
  GAMMA_CHECK_MSG(it != files_.end(), "unknown file id");
  return *it->second;
}

const HeapFile& StorageManager::file(FileId id) const {
  auto it = files_.find(id);
  GAMMA_CHECK_MSG(it != files_.end(), "unknown file id");
  return *it->second;
}

void StorageManager::DropFile(FileId id) {
  GAMMA_CHECK_MSG(files_.erase(id) == 1, "unknown file id");
}

IndexId StorageManager::CreateIndex() {
  const IndexId id = next_index_id_++;
  indices_[id] = std::make_unique<BTree>(&pool_, &charge_);
  return id;
}

BTree& StorageManager::index(IndexId id) {
  auto it = indices_.find(id);
  GAMMA_CHECK_MSG(it != indices_.end(), "unknown index id");
  return *it->second;
}

const BTree& StorageManager::index(IndexId id) const {
  auto it = indices_.find(id);
  GAMMA_CHECK_MSG(it != indices_.end(), "unknown index id");
  return *it->second;
}

void StorageManager::DropIndex(IndexId id) {
  GAMMA_CHECK_MSG(indices_.erase(id) == 1, "unknown index id");
}

}  // namespace gammadb::storage
