#include "storage/heap_file.h"

#include "common/macros.h"

namespace gammadb::storage {

HeapFile::HeapFile(BufferPool* pool, const ChargeContext* charge)
    : pool_(pool), charge_(charge) {
  GAMMA_CHECK(pool != nullptr && charge != nullptr);
}

Result<Rid> HeapFile::Append(std::span<const uint8_t> record) {
  GAMMA_CHECK_MSG(record.size() + 16 <= pool_->page_size(),
                  "record larger than a page");
  if (!pages_.empty()) {
    const uint32_t page_no = pages_.back();
    uint8_t* frame = nullptr;
    GAMMA_ASSIGN_OR_RETURN(frame,
                           pool_->Pin(page_no, AccessIntent::kSequential));
    SlottedPage page(frame, pool_->page_size());
    if (auto slot = page.Insert(record)) {
      pool_->MarkDirty(page_no, AccessIntent::kSequential);
      pool_->Unpin(page_no);
      ++num_tuples_;
      return Rid{static_cast<uint32_t>(pages_.size() - 1), *slot};
    }
    pool_->Unpin(page_no);
  }
  uint8_t* frame = nullptr;
  uint32_t page_no = 0;
  GAMMA_ASSIGN_OR_RETURN(page_no, pool_->NewPage(&frame));
  SlottedPage::Initialize(frame, pool_->page_size());
  SlottedPage page(frame, pool_->page_size());
  auto slot = page.Insert(record);
  GAMMA_CHECK_MSG(slot.has_value(), "record does not fit on an empty page");
  pool_->Unpin(page_no);
  pages_.push_back(page_no);
  ++num_tuples_;
  return Rid{static_cast<uint32_t>(pages_.size() - 1), *slot};
}

Status HeapFile::Scan(const ScanCallback& callback) const {
  if (pages_.empty()) return Status::OK();
  return ScanPages(0, num_pages() - 1, callback);
}

Status HeapFile::ScanPages(uint32_t first_page, uint32_t last_page,
                           const ScanCallback& callback) const {
  GAMMA_CHECK(first_page <= last_page && last_page < pages_.size());
  for (uint32_t i = first_page; i <= last_page; ++i) {
    const uint32_t page_no = pages_[i];
    uint8_t* frame = nullptr;
    GAMMA_ASSIGN_OR_RETURN(frame,
                           pool_->Pin(page_no, AccessIntent::kSequential));
    SlottedPage page(frame, pool_->page_size());
    bool keep_going = true;
    for (uint16_t slot = 0; keep_going && slot < page.slot_count(); ++slot) {
      auto record = page.Get(slot);
      if (record.empty()) continue;
      keep_going = callback(Rid{i, slot}, record);
    }
    pool_->Unpin(page_no);
    if (!keep_going) return Status::OK();
  }
  return Status::OK();
}

Result<std::vector<uint8_t>> HeapFile::Fetch(Rid rid,
                                             AccessIntent intent) const {
  if (rid.page_index >= pages_.size()) {
    return Status::NotFound("rid page out of range");
  }
  const uint32_t page_no = pages_[rid.page_index];
  uint8_t* frame = nullptr;
  GAMMA_ASSIGN_OR_RETURN(frame, pool_->Pin(page_no, intent));
  SlottedPage page(frame, pool_->page_size());
  auto record = page.Get(rid.slot);
  if (record.empty()) {
    pool_->Unpin(page_no);
    return Status::NotFound("rid slot not live");
  }
  std::vector<uint8_t> out(record.begin(), record.end());
  pool_->Unpin(page_no);
  return out;
}

Status HeapFile::Delete(Rid rid) {
  if (rid.page_index >= pages_.size()) {
    return Status::NotFound("rid page out of range");
  }
  const uint32_t page_no = pages_[rid.page_index];
  uint8_t* frame = nullptr;
  GAMMA_ASSIGN_OR_RETURN(frame, pool_->Pin(page_no, AccessIntent::kRandom));
  SlottedPage page(frame, pool_->page_size());
  const bool deleted = page.Delete(rid.slot);
  if (deleted) {
    pool_->MarkDirty(page_no, AccessIntent::kRandom);
    --num_tuples_;
  }
  pool_->Unpin(page_no);
  return deleted ? Status::OK() : Status::NotFound("rid slot not live");
}

Status HeapFile::Restore(Rid rid, std::span<const uint8_t> record) {
  if (rid.page_index >= pages_.size()) {
    return Status::NotFound("rid page out of range");
  }
  const uint32_t page_no = pages_[rid.page_index];
  uint8_t* frame = nullptr;
  GAMMA_ASSIGN_OR_RETURN(frame, pool_->Pin(page_no, AccessIntent::kRandom));
  SlottedPage page(frame, pool_->page_size());
  const bool restored = page.Restore(rid.slot, record);
  if (restored) {
    pool_->MarkDirty(page_no, AccessIntent::kRandom);
    ++num_tuples_;
  }
  pool_->Unpin(page_no);
  return restored ? Status::OK()
                  : Status::FailedPrecondition("slot not restorable");
}

Status HeapFile::Update(Rid rid, std::span<const uint8_t> record) {
  if (rid.page_index >= pages_.size()) {
    return Status::NotFound("rid page out of range");
  }
  const uint32_t page_no = pages_[rid.page_index];
  uint8_t* frame = nullptr;
  GAMMA_ASSIGN_OR_RETURN(frame, pool_->Pin(page_no, AccessIntent::kRandom));
  SlottedPage page(frame, pool_->page_size());
  const bool updated = page.Update(rid.slot, record);
  if (updated) pool_->MarkDirty(page_no, AccessIntent::kRandom);
  pool_->Unpin(page_no);
  return updated ? Status::OK()
                 : Status::ResourceExhausted("record does not fit on page");
}

void HeapFile::Clear() {
  pages_.clear();
  num_tuples_ = 0;
}

}  // namespace gammadb::storage
