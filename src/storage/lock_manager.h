#ifndef GAMMA_STORAGE_LOCK_MANAGER_H_
#define GAMMA_STORAGE_LOCK_MANAGER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/disk.h"

namespace gammadb::storage {

enum class LockMode { kShared, kExclusive };

/// Lockable resource: a file, a page of a file, or a record.
struct LockName {
  enum class Kind : uint8_t { kFile, kPage, kRecord };
  Kind kind;
  uint32_t file_id;
  uint32_t page_index;  // kPage / kRecord
  uint16_t slot;        // kRecord

  static LockName File(uint32_t file_id) {
    return {Kind::kFile, file_id, 0, 0};
  }
  static LockName Page(uint32_t file_id, uint32_t page_index) {
    return {Kind::kPage, file_id, page_index, 0};
  }
  static LockName Record(uint32_t file_id, uint32_t page_index,
                         uint16_t slot) {
    return {Kind::kRecord, file_id, page_index, slot};
  }

  uint64_t Encode() const {
    return (static_cast<uint64_t>(kind) << 62) |
           (static_cast<uint64_t>(file_id) << 40) |
           (static_cast<uint64_t>(page_index) << 12) | slot;
  }
};

/// \brief Per-node two-phase lock manager.
///
/// The paper's experiments are single-user, so no lock ever waits; what
/// matters for the reproduction is that the concurrency-control code path is
/// *executed and charged* on every query (Gamma ran with "full concurrency
/// control"). Conflicting requests from a different transaction fail fast
/// (test surface for the locking rules) rather than block.
class LockManager {
 public:
  explicit LockManager(const ChargeContext* charge);

  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  /// Acquires (or upgrades) a lock. Re-acquisition by the holder is free.
  Status Acquire(uint64_t txn_id, LockName name, LockMode mode);

  /// Releases everything `txn_id` holds (commit/abort).
  void ReleaseAll(uint64_t txn_id);

  /// Drops every lock held by anyone (machine crash: lock state is
  /// volatile).
  void Clear() {
    locks_.clear();
    held_.clear();
  }

  size_t held_count(uint64_t txn_id) const;
  uint64_t acquisitions() const { return acquisitions_; }

 private:
  struct LockState {
    std::vector<uint64_t> shared_holders;
    uint64_t exclusive_holder = 0;
    bool exclusive = false;
  };

  const ChargeContext* charge_;
  std::unordered_map<uint64_t, LockState> locks_;
  std::unordered_map<uint64_t, std::vector<uint64_t>> held_;  // txn -> names
  uint64_t acquisitions_ = 0;
};

}  // namespace gammadb::storage

#endif  // GAMMA_STORAGE_LOCK_MANAGER_H_
