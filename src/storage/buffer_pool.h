#ifndef GAMMA_STORAGE_BUFFER_POOL_H_
#define GAMMA_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "storage/disk.h"

namespace gammadb::storage {

/// \brief Per-node LRU buffer pool over one simulated disk.
///
/// Capacity is expressed in bytes, so halving the page size doubles the
/// frame count — exactly the trade the paper's page-size experiments make.
/// Misses charge a disk read with the caller's access intent; hits charge
/// only the buffer-manager CPU path; dirty evictions charge the write.
class BufferPool {
 public:
  BufferPool(SimulatedDisk* disk, const ChargeContext* charge,
             uint64_t capacity_bytes);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  ~BufferPool();

  uint32_t page_size() const { return disk_->page_size(); }
  uint32_t capacity_frames() const { return capacity_frames_; }

  /// Pins `page_no`, reading it from disk if absent. The pointer stays valid
  /// until the matching Unpin.
  uint8_t* Pin(uint32_t page_no, AccessIntent intent);

  /// Allocates a fresh disk page, pins it dirty (its eventual write-back is
  /// sequential: new pages are appended). Returns the page number.
  uint32_t NewPage(uint8_t** frame_out);

  /// Marks a pinned page dirty; `intent` classifies the eventual write-back
  /// (in-place updates of old pages are random, appends sequential).
  void MarkDirty(uint32_t page_no, AccessIntent intent = AccessIntent::kRandom);

  void Unpin(uint32_t page_no);

  /// Writes back every dirty frame (used at phase boundaries so write costs
  /// land in the phase that produced them).
  void FlushAll();

  /// Drops every unpinned frame (flushing dirty ones first). Test hook for
  /// forcing cold-cache behaviour.
  void Invalidate();

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t evictions() const { return evictions_; }
  uint32_t frames_in_use() const {
    return static_cast<uint32_t>(frames_.size());
  }

 private:
  struct Frame {
    std::vector<uint8_t> data;
    uint32_t pin_count = 0;
    bool dirty = false;
    AccessIntent write_intent = AccessIntent::kSequential;
    /// Position in lru_ when pin_count == 0.
    std::list<uint32_t>::iterator lru_pos;
    bool in_lru = false;
  };

  /// Evicts one unpinned frame if at capacity. Checked failure if every
  /// frame is pinned (operators pin O(1) pages at a time).
  void MakeRoom();
  void WriteBack(uint32_t page_no, Frame& frame);

  SimulatedDisk* disk_;
  const ChargeContext* charge_;
  uint32_t capacity_frames_;
  std::unordered_map<uint32_t, Frame> frames_;
  /// Unpinned frames, least-recently-used first.
  std::list<uint32_t> lru_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace gammadb::storage

#endif  // GAMMA_STORAGE_BUFFER_POOL_H_
