#ifndef GAMMA_STORAGE_BUFFER_POOL_H_
#define GAMMA_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/disk.h"

namespace gammadb::storage {

/// \brief Per-node LRU buffer pool over one simulated disk.
///
/// Capacity is expressed in bytes, so halving the page size doubles the
/// frame count — exactly the trade the paper's page-size experiments make.
/// Misses charge a disk read with the caller's access intent; hits charge
/// only the buffer-manager CPU path; dirty evictions charge the write.
///
/// The pool is the fault-recovery boundary for transient disk errors: a
/// kIOError from the disk is retried up to kMaxIoRetries times, each retry
/// charging a full (random) disk access plus a serial backoff stall, so
/// injected transients show up as degraded response time rather than query
/// failure. Retry exhaustion and dead-node errors surface as kUnavailable
/// for the machine layer to fail over; checksum mismatches surface as
/// kCorruption (bit rot is not retryable — the stored bytes are wrong).
class BufferPool {
 public:
  /// Transient-fault retry budget per logical disk access.
  static constexpr int kMaxIoRetries = 3;
  /// Stall before each retry (controller re-seek + settle on 1988 drives).
  static constexpr double kRetryBackoffSec = 0.005;

  BufferPool(SimulatedDisk* disk, const ChargeContext* charge,
             uint64_t capacity_bytes);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  ~BufferPool();

  uint32_t page_size() const { return disk_->page_size(); }
  uint32_t capacity_frames() const { return capacity_frames_; }

  /// Pins `page_no`, reading it from disk if absent and verifying its
  /// checksum. The pointer stays valid until the matching Unpin. On any
  /// error no frame is installed and nothing is pinned.
  Result<uint8_t*> Pin(uint32_t page_no, AccessIntent intent);

  /// Allocates a fresh disk page, pins it dirty (its eventual write-back is
  /// sequential: new pages are appended). Returns the page number.
  Result<uint32_t> NewPage(uint8_t** frame_out);

  /// Marks a pinned page dirty; `intent` classifies the eventual write-back
  /// (in-place updates of old pages are random, appends sequential).
  void MarkDirty(uint32_t page_no, AccessIntent intent = AccessIntent::kRandom);

  void Unpin(uint32_t page_no);

  /// Writes back every dirty frame (used at phase boundaries so write costs
  /// land in the phase that produced them). Stops at the first unrecoverable
  /// write error, leaving the remaining dirty frames dirty.
  Status FlushAll();

  /// Drops every unpinned frame (flushing dirty ones first). Test hook for
  /// forcing cold-cache behaviour.
  Status Invalidate();

  /// Drops every unpinned frame WITHOUT flushing, abandoning dirty data.
  /// Cleanup path for a failed query: its partial result pages must not be
  /// written to (or charged against) anything.
  void Discard();

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t evictions() const { return evictions_; }
  /// Transient-fault retries performed (reads and writes).
  uint64_t io_retries() const { return io_retries_; }
  uint32_t frames_in_use() const {
    return static_cast<uint32_t>(frames_.size());
  }

 private:
  struct Frame {
    std::vector<uint8_t> data;
    uint32_t pin_count = 0;
    bool dirty = false;
    AccessIntent write_intent = AccessIntent::kSequential;
    /// Position in lru_ when pin_count == 0.
    std::list<uint32_t>::iterator lru_pos;
    bool in_lru = false;
  };

  /// One logical read/write as the cost model sees it: every attempt the
  /// disk actually performed is charged; retries add backoff stalls.
  Status ReadWithRetry(uint32_t page_no, uint8_t* out, AccessIntent intent);
  Status WriteWithRetry(uint32_t page_no, const uint8_t* data,
                        AccessIntent intent);

  /// Evicts one unpinned frame if at capacity. Checked failure if every
  /// frame is pinned (operators pin O(1) pages at a time).
  Status MakeRoom();
  Status WriteBack(uint32_t page_no, Frame& frame);

  SimulatedDisk* disk_;
  const ChargeContext* charge_;
  uint32_t capacity_frames_;
  std::unordered_map<uint32_t, Frame> frames_;
  /// Unpinned frames, least-recently-used first.
  std::list<uint32_t> lru_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
  uint64_t io_retries_ = 0;
};

}  // namespace gammadb::storage

#endif  // GAMMA_STORAGE_BUFFER_POOL_H_
