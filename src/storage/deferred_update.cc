#include "storage/deferred_update.h"

#include "common/macros.h"

namespace gammadb::storage {

DeferredUpdateFile::DeferredUpdateFile(const ChargeContext* charge,
                                       uint32_t page_size)
    : charge_(charge), page_size_(page_size) {
  GAMMA_CHECK(charge != nullptr);
}

void DeferredUpdateFile::LogInsert(BTree* index, int32_t key, Rid rid) {
  GAMMA_DCHECK(index != nullptr);
  records_.push_back(Record{index, /*is_insert=*/true, key, rid});
}

void DeferredUpdateFile::LogDelete(BTree* index, int32_t key, Rid rid) {
  GAMMA_DCHECK(index != nullptr);
  records_.push_back(Record{index, /*is_insert=*/false, key, rid});
}

Status DeferredUpdateFile::Commit() {
  if (records_.empty()) return Status::OK();
  // The deferred-update file itself is forced to disk before the index
  // changes are applied (one page suffices for single-tuple statements),
  // and each applied change forces the modified index page back out — the
  // partial-recovery guarantee Gamma pays for in Table 3 rows 2-4.
  if (charge_->tracker != nullptr) {
    charge_->DiskWrite(page_size_, AccessIntent::kRandom);
    charge_->Cpu(records_.size() *
                 charge_->tracker->hw().cost.instr_per_deferred_update);
    for (size_t i = 0; i < records_.size(); ++i) {
      // Read back the deferred record and force the modified index page.
      charge_->DiskRead(page_size_, AccessIntent::kRandom);
      charge_->DiskWrite(page_size_, AccessIntent::kRandom);
    }
  }
  for (const Record& record : records_) {
    if (record.is_insert) {
      GAMMA_RETURN_NOT_OK(record.index->Insert(record.key, record.rid));
    } else {
      GAMMA_RETURN_NOT_OK(record.index->Delete(record.key, record.rid).status());
    }
  }
  records_.clear();
  return Status::OK();
}

}  // namespace gammadb::storage
