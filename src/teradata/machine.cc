#include "teradata/machine.h"

#include "teradata/index_entry.h"

#include <algorithm>
#include <cstring>
#include <memory>

#include "common/hash.h"
#include "common/macros.h"
#include "exec/merge_join.h"
#include "exec/select.h"
#include "exec/sort.h"
#include "exec/split_table.h"
#include "obs/profile.h"

namespace gammadb::teradata {

using catalog::RelationMeta;
using catalog::Schema;
using catalog::TupleView;
using exec::Predicate;
using exec::QueryResult;
using exec::SplitTable;
using storage::AccessIntent;
using storage::Rid;

namespace {

/// The optimizer uses a dense secondary index below this selectivity
/// (it chose the index at 1% and the scan at 10%, §5.1).
constexpr double kIndexThreshold = 0.05;

int32_t AttrOf(const Schema& schema, std::span<const uint8_t> tuple,
               int attr) {
  return TupleView(&schema, tuple).GetInt(static_cast<size_t>(attr));
}

/// One tuple of a hash-key-ordered fragment, tagged with its placement hash.
struct HashKeyed {
  uint64_t hash;
  int32_t key;
  std::vector<uint8_t> bytes;
};

/// Materializes a fragment in hash-key order (its physical order), applying
/// a selection. The scan costs are charged through SelectScan.
std::vector<HashKeyed> LoadHashOrdered(const storage::HeapFile& fragment,
                                       const Schema& schema, int attr,
                                       const Predicate& pred, uint64_t salt,
                                       const storage::ChargeContext& charge) {
  std::vector<HashKeyed> out;
  out.reserve(fragment.num_tuples());
  exec::SelectScan(fragment, schema, pred, charge,
                   [&](std::span<const uint8_t> t) {
                     const int32_t key = AttrOf(schema, t, attr);
                     out.push_back(HashKeyed{HashInt32(key, salt), key,
                                             {t.begin(), t.end()}});
                   });
  // The fragment is maintained in hash-key order; re-establish it here in
  // case single-tuple updates appended out of order (no cost charged: the
  // machine keeps the order as part of every insert).
  std::stable_sort(out.begin(), out.end(),
                   [](const HashKeyed& a, const HashKeyed& b) {
                     return a.hash < b.hash;
                   });
  return out;
}

/// Merge join over two hash-key-ordered inputs: advance on hash value, and
/// match key equality within equal-hash groups. Emits inner ++ outer.
uint64_t HashOrderMergeJoin(const std::vector<HashKeyed>& inner,
                            const std::vector<HashKeyed>& outer,
                            const storage::ChargeContext& charge,
                            const exec::TupleSink& emit) {
  uint64_t matches = 0;
  auto charge_compare = [&] {
    if (charge.tracker != nullptr) {
      charge.Cpu(charge.tracker->hw().cost.instr_per_sort_compare);
    }
  };
  size_t i = 0, j = 0;
  while (i < inner.size() && j < outer.size()) {
    charge_compare();
    if (inner[i].hash < outer[j].hash) {
      ++i;
    } else if (inner[i].hash > outer[j].hash) {
      ++j;
    } else {
      const uint64_t hash = inner[i].hash;
      size_t j_end = j;
      while (j_end < outer.size() && outer[j_end].hash == hash) ++j_end;
      while (i < inner.size() && inner[i].hash == hash) {
        for (size_t k = j; k < j_end; ++k) {
          charge_compare();
          if (inner[i].key != outer[k].key) continue;
          if (charge.tracker != nullptr) {
            charge.Cpu(charge.tracker->hw().cost.instr_per_tuple_copy);
          }
          emit(catalog::ConcatTuples(inner[i].bytes, outer[k].bytes));
          ++matches;
        }
        ++i;
      }
      j = j_end;
    }
  }
  return matches;
}

}  // namespace

TeradataMachine::TeradataMachine(TeradataConfig config) : config_(config) {
  GAMMA_CHECK(config_.num_amps > 0);
  for (int i = 0; i < config_.num_amps; ++i) {
    amps_.push_back(std::make_unique<storage::StorageManager>(
        config_.page_size, config_.buffer_pool_bytes));
  }
}

void TeradataMachine::BindAll(sim::CostTracker* tracker) {
  for (int i = 0; i < config_.num_amps; ++i) {
    amps_[static_cast<size_t>(i)]->BindTracker(tracker, i);
  }
}

void TeradataMachine::FlushAllPools() {
  for (auto& amp : amps_) amp->pool().FlushAll();
}

void TeradataMachine::ChargeSteps(sim::CostTracker* tracker, int steps,
                                  bool single_tuple) {
  // IFP work (parse, plan, per-step dispatch over the Y-net) is serialized
  // ahead of AMP execution; modelled as scheduler time.
  const double overhead = single_tuple
                              ? config_.single_step_overhead_sec
                              : steps * config_.step_overhead_sec;
  tracker->BeginPhase("ifp_dispatch", sim::PhaseKind::kSequential);
  tracker->ChargeSerialSec(config_.ifp_node(), overhead);
  tracker->ChargeControlMessage(config_.host_node(), config_.ifp_node(),
                                /*blocking=*/true);
  tracker->EndPhase();
}

int TeradataMachine::AmpForKey(int32_t key) const {
  return static_cast<int>(HashInt32(key, placement_salt_) %
                          static_cast<uint64_t>(config_.num_amps));
}

std::string TeradataMachine::FreshResultName() {
  return "td_result_" + std::to_string(next_result_id_++);
}

Status TeradataMachine::CreateRelation(const std::string& name,
                                       catalog::Schema schema,
                                       int primary_key_attr) {
  if (catalog_.Contains(name)) {
    return Status::AlreadyExists("relation " + name);
  }
  if (primary_key_attr < 0 ||
      static_cast<size_t>(primary_key_attr) >= schema.num_attrs()) {
    return Status::InvalidArgument("primary key attribute out of range");
  }
  RelationMeta meta;
  meta.name = name;
  meta.schema = std::move(schema);
  meta.partitioning = catalog::PartitionSpec::Hashed(primary_key_attr);
  meta.partitioning.hash_salt = placement_salt_;
  for (int i = 0; i < config_.num_amps; ++i) {
    meta.per_node_file.push_back(amps_[static_cast<size_t>(i)]->CreateFile());
  }
  GAMMA_RETURN_NOT_OK(catalog_.Register(std::move(meta)));
  RelationState state;
  state.pk_attr = primary_key_attr;
  state.key_dir.resize(static_cast<size_t>(config_.num_amps));
  states_.emplace(name, std::move(state));
  return Status::OK();
}

Status TeradataMachine::LoadTuples(
    const std::string& name, const std::vector<std::vector<uint8_t>>& tuples) {
  GAMMA_ASSIGN_OR_RETURN(RelationMeta * meta, catalog_.Get(name));
  RelationState& state = states_.at(name);
  // Route each tuple to its AMP, then store each fragment in hash-key order
  // (the hash value, then a sequence number, forms the tuple id, §3).
  std::vector<std::vector<const std::vector<uint8_t>*>> per_amp(
      static_cast<size_t>(config_.num_amps));
  for (const std::vector<uint8_t>& tuple : tuples) {
    if (tuple.size() != meta->schema.tuple_size()) {
      return Status::InvalidArgument("tuple size does not match schema");
    }
    const int32_t key = AttrOf(meta->schema, tuple, state.pk_attr);
    per_amp[static_cast<size_t>(AmpForKey(key))].push_back(&tuple);
  }
  for (int i = 0; i < config_.num_amps; ++i) {
    auto& bucket = per_amp[static_cast<size_t>(i)];
    std::stable_sort(bucket.begin(), bucket.end(),
                     [&](const std::vector<uint8_t>* a,
                         const std::vector<uint8_t>* b) {
                       return HashInt32(AttrOf(meta->schema, *a,
                                               state.pk_attr),
                                        placement_salt_) <
                              HashInt32(AttrOf(meta->schema, *b,
                                               state.pk_attr),
                                        placement_salt_);
                     });
    storage::HeapFile& fragment =
        amps_[static_cast<size_t>(i)]->file(
            meta->per_node_file[static_cast<size_t>(i)]);
    for (const std::vector<uint8_t>* tuple : bucket) {
      const Rid rid = fragment.Append(*tuple).value();
      state.key_dir[static_cast<size_t>(i)].emplace(
          AttrOf(meta->schema, *tuple, state.pk_attr), rid);
    }
  }
  meta->num_tuples += tuples.size();
  // Loading is uncharged; settle and cool the pools before measured queries.
  for (auto& amp : amps_) amp->pool().Invalidate();
  return Status::OK();
}

Status TeradataMachine::BuildSecondaryIndex(const std::string& name,
                                            int attr) {
  GAMMA_ASSIGN_OR_RETURN(RelationMeta * meta, catalog_.Get(name));
  if (attr < 0 || static_cast<size_t>(attr) >= meta->schema.num_attrs()) {
    return Status::InvalidArgument("index attribute out of range");
  }
  RelationState& state = states_.at(name);
  SecondaryIndex index;
  index.attr = attr;
  index.dir.resize(static_cast<size_t>(config_.num_amps));
  for (int i = 0; i < config_.num_amps; ++i) {
    storage::StorageManager& sm = *amps_[static_cast<size_t>(i)];
    const storage::FileId file_id = sm.CreateFile();
    storage::HeapFile& index_file = sm.file(file_id);
    sm.file(meta->per_node_file[static_cast<size_t>(i)])
        .Scan([&](Rid rid, std::span<const uint8_t> tuple) {
          const int32_t key = AttrOf(meta->schema, tuple, attr);
          index_file.Append(internal::SerializeIndexEntry(key, rid));
          index.dir[static_cast<size_t>(i)].emplace(key, rid);
          return true;
        });
    index.per_amp_file.push_back(file_id);
  }
  for (auto& amp : amps_) amp->pool().Invalidate();
  state.indices.push_back(std::move(index));
  // Catalog-level metadata so callers can discover the index.
  catalog::IndexMeta meta_index;
  meta_index.attr = attr;
  meta_index.clustered = false;
  meta_index.per_node_index = {};
  meta->indices.push_back(std::move(meta_index));
  return Status::OK();
}

catalog::RelationMeta* TeradataMachine::MakeResultRelation(
    const std::string& requested, catalog::Schema schema,
    RelationState** state_out) {
  const std::string name = requested.empty() ? FreshResultName() : requested;
  RelationMeta meta;
  meta.name = name;
  meta.schema = std::move(schema);
  meta.partitioning = catalog::PartitionSpec::Hashed(0);
  meta.partitioning.hash_salt = placement_salt_;
  for (int i = 0; i < config_.num_amps; ++i) {
    meta.per_node_file.push_back(amps_[static_cast<size_t>(i)]->CreateFile());
  }
  GAMMA_CHECK(catalog_.Register(std::move(meta)).ok());
  RelationState state;
  state.pk_attr = 0;
  state.key_dir.resize(static_cast<size_t>(config_.num_amps));
  auto [it, inserted] = states_.emplace(name, std::move(state));
  GAMMA_CHECK(inserted);
  *state_out = &it->second;
  return *catalog_.Get(name);
}

storage::Rid TeradataMachine::InsertWithRecovery(
    const std::string& relation, catalog::RelationMeta* meta,
    RelationState* state, int amp_index, std::span<const uint8_t> tuple) {
  (void)relation;
  storage::StorageManager& sm = *amps_[static_cast<size_t>(amp_index)];
  const auto& charge = sm.charge();
  // Full-recovery insert path: transient-journal and index-maintenance I/Os
  // plus the logging CPU ([DEWI87]; the paper's §4 cost analysis).
  for (uint32_t i = 0; i < config_.insert_recovery_ios; ++i) {
    charge.DiskWrite(config_.page_size, AccessIntent::kRandom);
  }
  charge.Cpu(config_.instr_per_insert_logging);
  const Rid rid =
      sm.file(meta->per_node_file[static_cast<size_t>(amp_index)])
          .Append(tuple)
          .value();
  state->key_dir[static_cast<size_t>(amp_index)].emplace(
      AttrOf(meta->schema, tuple, state->pk_attr), rid);
  for (SecondaryIndex& index : state->indices) {
    const int32_t key = AttrOf(meta->schema, tuple, index.attr);
    sm.file(index.per_amp_file[static_cast<size_t>(amp_index)])
        .Append(internal::SerializeIndexEntry(key, rid));
    index.dir[static_cast<size_t>(amp_index)].emplace(key, rid);
  }
  meta->num_tuples += 1;
  return rid;
}

Result<QueryResult> TeradataMachine::FinalizeObs(const char* label,
                                                 Result<QueryResult> result) {
  if (result.ok()) {
    obs::FinalizeStatement(config_.trace, "teradata", label,
                           config_.hw.net.ring_bytes_per_sec, &*result);
  }
  return result;
}

Result<QueryResult> TeradataMachine::RunSelect(const TdSelectQuery& query) {
  GAMMA_ASSIGN_OR_RETURN(RelationMeta * meta, catalog_.Get(query.relation));
  RelationState& state = states_.at(query.relation);
  const Predicate& pred = query.predicate;

  sim::CostTracker tracker(config_.hw, config_.tracker_nodes());
  BindAll(&tracker);
  QueryResult result;

  const bool exact_pk = pred.is_eq() && pred.attr() == state.pk_attr;
  ChargeSteps(&tracker, query.store_result ? 2 : 1, exact_pk);

  RelationMeta* result_meta = nullptr;
  RelationState* result_state = nullptr;
  if (query.store_result) {
    result_meta =
        MakeResultRelation(query.result_name, meta->schema, &result_state);
    result.result_relation = result_meta->name;
  }

  // Result tuples are re-hashed on the result's primary key; the low-level
  // software never short-circuits this (§4).
  auto make_store_split = [&](int src, const Schema* schema,
                              int pk_attr) {
    std::vector<SplitTable::Destination> dests;
    for (int amp = 0; amp < config_.num_amps; ++amp) {
      dests.push_back(SplitTable::Destination{
          amp, [this, result_meta, result_state,
                amp](std::span<const uint8_t> t) {
            InsertWithRecovery(result_meta->name, result_meta, result_state,
                               amp, t);
          }});
    }
    auto split = std::make_unique<SplitTable>(
        src, schema,
        exec::RouteSpec::HashAttr(pk_attr, placement_salt_),
        std::move(dests), &tracker);
    split->set_force_network(true);
    return split;
  };

  if (exact_pk) {
    tracker.BeginPhase("point_select", sim::PhaseKind::kSequential);
    const int amp_index = AmpForKey(pred.lo());
    storage::StorageManager& sm = *amps_[static_cast<size_t>(amp_index)];
    auto [begin, end] =
        state.key_dir[static_cast<size_t>(amp_index)].equal_range(pred.lo());
    for (auto it = begin; it != end; ++it) {
      auto tuple =
          sm.file(meta->per_node_file[static_cast<size_t>(amp_index)])
              .Fetch(it->second, AccessIntent::kRandom);
      GAMMA_CHECK(tuple.ok());
      sm.charge().Cpu(config_.hw.cost.instr_per_tuple_scan +
                      config_.hw.cost.instr_per_attr_compare);
      if (query.store_result) {
        const int home = AmpForKey(AttrOf(meta->schema, *tuple, 0));
        tracker.ChargeDataPacket(amp_index, home, tuple->size(),
                                 /*force_network=*/true);
        InsertWithRecovery(result_meta->name, result_meta, result_state,
                           home, *tuple);
      } else {
        tracker.ChargeDataPacket(amp_index, config_.host_node(),
                                 tuple->size());
        result.returned.push_back(*tuple);
      }
    }
    FlushAllPools();
    tracker.EndPhase();
  } else {
    // Pick the access path: a dense secondary index helps only at low
    // selectivity, and even then the whole index must be scanned (§3, §5.1).
    const SecondaryIndex* index = nullptr;
    if (query.allow_index && !pred.is_true()) {
      for (const SecondaryIndex& candidate : state.indices) {
        if (candidate.attr == pred.attr()) index = &candidate;
      }
      const double span =
          static_cast<double>(pred.hi()) - pred.lo() + 1;
      const double selectivity =
          span / std::max<double>(1.0,
                                  static_cast<double>(meta->num_tuples));
      if (selectivity > kIndexThreshold) index = nullptr;
    }

    // AMP software serializes its disk, CPU and Y-net work (single 80286).
    tracker.BeginPhase("scan_select", sim::PhaseKind::kSequential);
    for (int amp_index = 0; amp_index < config_.num_amps; ++amp_index) {
      storage::StorageManager& sm = *amps_[static_cast<size_t>(amp_index)];
      std::unique_ptr<SplitTable> split;
      exec::TupleSink emit;
      if (query.store_result) {
        split = make_store_split(amp_index, &meta->schema, 0);
        emit = [&split](std::span<const uint8_t> t) { split->Send(t); };
      } else {
        emit = [&](std::span<const uint8_t> t) {
          tracker.ChargeDataPacket(amp_index, config_.host_node(), t.size());
          result.returned.emplace_back(t.begin(), t.end());
        };
      }

      storage::HeapFile& fragment =
          sm.file(meta->per_node_file[static_cast<size_t>(amp_index)]);
      if (index != nullptr) {
        // Scan the *entire* index (hash order, not key order), then fetch
        // each qualifying tuple with a random access.
        std::vector<Rid> rids;
        sm.file(index->per_amp_file[static_cast<size_t>(amp_index)])
            .Scan([&](Rid, std::span<const uint8_t> bytes) {
              const internal::IndexEntry entry =
                  internal::DeserializeIndexEntry(bytes);
              sm.charge().Cpu(config_.hw.cost.instr_per_tuple_scan +
                              pred.compare_count() *
                                  config_.hw.cost.instr_per_attr_compare);
              if (entry.key >= pred.lo() && entry.key <= pred.hi()) {
                rids.push_back(Rid{entry.page_index, entry.slot});
              }
              return true;
            });
        for (const Rid rid : rids) {
          auto tuple = fragment.Fetch(rid, AccessIntent::kRandom);
          GAMMA_CHECK(tuple.ok());
          sm.charge().Cpu(config_.hw.cost.instr_per_tuple_scan);
          emit(*tuple);
        }
      } else {
        exec::SelectScan(fragment, meta->schema, pred, sm.charge(), emit);
      }
      if (split != nullptr) split->Close();
    }
    FlushAllPools();
    tracker.EndPhase();
  }

  if (query.store_result) {
    result.result_tuples = result_meta->num_tuples;
  } else {
    result.result_tuples = result.returned.size();
  }
  BindAll(nullptr);
  result.metrics = tracker.Finish();
  return FinalizeObs("select", std::move(result));
}

Result<QueryResult> TeradataMachine::RunJoin(const TdJoinQuery& query) {
  GAMMA_ASSIGN_OR_RETURN(RelationMeta * outer, catalog_.Get(query.outer));
  GAMMA_ASSIGN_OR_RETURN(RelationMeta * inner, catalog_.Get(query.inner));
  if (query.outer_attr < 0 ||
      static_cast<size_t>(query.outer_attr) >= outer->schema.num_attrs() ||
      query.inner_attr < 0 ||
      static_cast<size_t>(query.inner_attr) >= inner->schema.num_attrs()) {
    return Status::InvalidArgument("join attribute out of range");
  }

  sim::CostTracker tracker(config_.hw, config_.tracker_nodes());
  BindAll(&tracker);
  QueryResult result;
  // Joining on both primary keys: every tuple already lives at its join AMP
  // *and* every fragment is already in hash-key order on the join attribute,
  // so the redistribution and sort steps are skipped — the §6.1
  // "substantial performance improvement" for key-attribute joins.
  const bool key_join =
      query.outer_attr == states_.at(query.outer).pk_attr &&
      query.inner_attr == states_.at(query.inner).pk_attr;
  const int steps = (key_join ? 1 : 3) + (query.store_result ? 1 : 0);
  ChargeSteps(&tracker, steps, /*single_tuple=*/false);

  const Schema result_schema = Schema::Concat(inner->schema, outer->schema);
  RelationMeta* result_meta = nullptr;
  RelationState* result_state = nullptr;
  if (query.store_result) {
    result_meta =
        MakeResultRelation(query.result_name, result_schema, &result_state);
    result.result_relation = result_meta->name;
  }

  // --- Redistribution: both inputs hashed on the join attribute into
  // per-AMP spool files (skipped entirely for key-attribute joins). ---
  std::vector<storage::FileId> outer_spool(
      static_cast<size_t>(config_.num_amps));
  std::vector<storage::FileId> inner_spool(
      static_cast<size_t>(config_.num_amps));
  std::vector<storage::FileId> outer_sorted(
      static_cast<size_t>(config_.num_amps));
  std::vector<storage::FileId> inner_sorted(
      static_cast<size_t>(config_.num_amps));
  if (!key_join) {
    for (int amp = 0; amp < config_.num_amps; ++amp) {
      outer_spool[static_cast<size_t>(amp)] =
          amps_[static_cast<size_t>(amp)]->CreateFile();
      inner_spool[static_cast<size_t>(amp)] =
          amps_[static_cast<size_t>(amp)]->CreateFile();
    }
  }

  // Teradata deliberately does NOT adopt the skew-aware kBucketMap route:
  // the Ynet's hardware hashes tuples to AMPs with the fixed placement
  // function (§4) — there is no per-query software split table that could
  // carry a bucket->AMP map, and result rows always pay the network path.
  auto redistribute = [&](RelationMeta* meta, const Predicate& pred,
                          int join_attr,
                          const std::vector<storage::FileId>& spools,
                          const char* phase) {
    tracker.BeginPhase(phase, sim::PhaseKind::kSequential);
    for (int src = 0; src < config_.num_amps; ++src) {
      storage::StorageManager& sm = *amps_[static_cast<size_t>(src)];
      std::vector<SplitTable::Destination> dests;
      for (int dst = 0; dst < config_.num_amps; ++dst) {
        storage::HeapFile& spool =
            amps_[static_cast<size_t>(dst)]->file(
                spools[static_cast<size_t>(dst)]);
        dests.push_back(SplitTable::Destination{
            dst, [&spool, this, dst](std::span<const uint8_t> t) {
              // Arriving tuples are inserted into a temporary file kept in
              // hash-key order (§6): the full tuple-insert path runs.
              amps_[static_cast<size_t>(dst)]->charge().Cpu(
                  config_.instr_per_spool_tuple);
              spool.Append(t);
            }});
      }
      SplitTable split(src, &meta->schema,
                       exec::RouteSpec::HashAttr(join_attr, placement_salt_),
                       std::move(dests), &tracker);
      exec::SelectScan(
          sm.file(meta->per_node_file[static_cast<size_t>(src)]),
          meta->schema, pred, sm.charge(),
          [&split](std::span<const uint8_t> t) { split.Send(t); });
      split.Close();
    }
    FlushAllPools();
    tracker.EndPhase();
  };
  if (!key_join) {
    redistribute(inner, query.inner_pred, query.inner_attr, inner_spool,
                 "redistribute_inner");
    redistribute(outer, query.outer_pred, query.outer_attr, outer_spool,
                 "redistribute_outer");

    // --- Sort both spools at every AMP. ---
    tracker.BeginPhase("sort", sim::PhaseKind::kSequential);
    for (int amp = 0; amp < config_.num_amps; ++amp) {
      storage::StorageManager& sm = *amps_[static_cast<size_t>(amp)];
      inner_sorted[static_cast<size_t>(amp)] =
          exec::ExternalSort(sm, inner_spool[static_cast<size_t>(amp)],
                             inner->schema, query.inner_attr,
                             config_.sort_memory_bytes);
      outer_sorted[static_cast<size_t>(amp)] =
          exec::ExternalSort(sm, outer_spool[static_cast<size_t>(amp)],
                             outer->schema, query.outer_attr,
                             config_.sort_memory_bytes);
    }
    FlushAllPools();
    tracker.EndPhase();
  }

  // --- Merge join at every AMP; results re-hashed on the result key and
  // inserted with full recovery. ---
  tracker.BeginPhase("merge_store", sim::PhaseKind::kSequential);
  for (int amp = 0; amp < config_.num_amps; ++amp) {
    storage::StorageManager& sm = *amps_[static_cast<size_t>(amp)];
    std::unique_ptr<SplitTable> split;
    exec::TupleSink emit;
    if (query.store_result) {
      std::vector<SplitTable::Destination> dests;
      for (int dst = 0; dst < config_.num_amps; ++dst) {
        dests.push_back(SplitTable::Destination{
            dst, [this, result_meta, result_state, dst,
                  &query](std::span<const uint8_t> t) {
              if (query.result_is_temp) {
                // Intermediate spool: the sorted-temp insert path, without
                // the transient-journal recovery I/Os.
                storage::StorageManager& dst_sm =
                    *amps_[static_cast<size_t>(dst)];
                dst_sm.charge().Cpu(config_.instr_per_spool_tuple);
                const Rid rid =
                    dst_sm.file(result_meta->per_node_file
                                    [static_cast<size_t>(dst)])
                        .Append(t)
                        .value();
                result_state->key_dir[static_cast<size_t>(dst)].emplace(
                    AttrOf(result_meta->schema, t, result_state->pk_attr),
                    rid);
                result_meta->num_tuples += 1;
              } else {
                InsertWithRecovery(result_meta->name, result_meta,
                                   result_state, dst, t);
              }
            }});
      }
      split = std::make_unique<SplitTable>(
          amp, &result_schema,
          exec::RouteSpec::HashAttr(0, placement_salt_), std::move(dests),
          &tracker);
      split->set_force_network(true);
      emit = [&split](std::span<const uint8_t> t) { split->Send(t); };
    } else {
      emit = [&, amp](std::span<const uint8_t> t) {
        tracker.ChargeDataPacket(amp, config_.host_node(), t.size());
        result.returned.emplace_back(t.begin(), t.end());
      };
    }
    if (key_join) {
      const auto lhs = LoadHashOrdered(
          sm.file(inner->per_node_file[static_cast<size_t>(amp)]),
          inner->schema, query.inner_attr, query.inner_pred,
          placement_salt_, sm.charge());
      const auto rhs = LoadHashOrdered(
          sm.file(outer->per_node_file[static_cast<size_t>(amp)]),
          outer->schema, query.outer_attr, query.outer_pred,
          placement_salt_, sm.charge());
      HashOrderMergeJoin(lhs, rhs, sm.charge(), emit);
    } else {
      exec::SortMergeJoin(
          sm.file(inner_sorted[static_cast<size_t>(amp)]), inner->schema,
          query.inner_attr, sm.file(outer_sorted[static_cast<size_t>(amp)]),
          outer->schema, query.outer_attr, sm.charge(), emit);
    }
    if (split != nullptr) split->Close();
  }
  FlushAllPools();
  tracker.EndPhase();

  if (!key_join) {
    for (int amp = 0; amp < config_.num_amps; ++amp) {
      storage::StorageManager& sm = *amps_[static_cast<size_t>(amp)];
      sm.DropFile(inner_spool[static_cast<size_t>(amp)]);
      sm.DropFile(outer_spool[static_cast<size_t>(amp)]);
      sm.DropFile(inner_sorted[static_cast<size_t>(amp)]);
      sm.DropFile(outer_sorted[static_cast<size_t>(amp)]);
    }
  }

  if (query.store_result) {
    result.result_tuples = result_meta->num_tuples;
  } else {
    result.result_tuples = result.returned.size();
  }
  BindAll(nullptr);
  result.metrics = tracker.Finish();
  return FinalizeObs("join", std::move(result));
}

}  // namespace gammadb::teradata
