#ifndef GAMMA_TERADATA_INDEX_ENTRY_H_
#define GAMMA_TERADATA_INDEX_ENTRY_H_

// Internal to the teradata module: on-disk layout of one dense secondary
// index entry (the index rows are hashed on the key and carry the tuple id).

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "common/macros.h"
#include "storage/heap_file.h"

namespace gammadb::teradata::internal {

struct IndexEntry {
  int32_t key;
  uint32_t page_index;
  uint16_t slot;
  uint16_t pad;
};

inline std::vector<uint8_t> SerializeIndexEntry(int32_t key,
                                                storage::Rid rid) {
  IndexEntry entry{key, rid.page_index, rid.slot, 0};
  std::vector<uint8_t> bytes(sizeof(entry));
  std::memcpy(bytes.data(), &entry, sizeof(entry));
  return bytes;
}

inline IndexEntry DeserializeIndexEntry(std::span<const uint8_t> bytes) {
  IndexEntry entry;
  GAMMA_CHECK(bytes.size() == sizeof(entry));
  std::memcpy(&entry, bytes.data(), sizeof(entry));
  return entry;
}

}  // namespace gammadb::teradata::internal

#endif  // GAMMA_TERADATA_INDEX_ENTRY_H_
