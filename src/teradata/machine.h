#ifndef GAMMA_TERADATA_MACHINE_H_
#define GAMMA_TERADATA_MACHINE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "common/units.h"
#include "exec/predicate.h"
#include "exec/query_result.h"
#include "obs/trace.h"
#include "sim/hardware.h"
#include "storage/storage_manager.h"

namespace gammadb::teradata {

/// \brief Configuration of the simulated Teradata DBC/1012 (§3).
///
/// The evaluated machine: 4 IFPs + 20 AMPs (Intel 80286, 2 MB each, two
/// 525 MB drives per AMP) on a 12 MB/s Y-net. The distinguishing software
/// behaviours the paper's analysis leans on are all modelled: hash-key-only
/// file organization, dense unordered secondary indices that must be scanned
/// in full for range predicates, redistribute + sort-merge joins, and an
/// insert path that runs full recovery logging per stored tuple ([DEWI87]:
/// "at least 3 I/Os are incurred for each tuple inserted").
struct TeradataConfig {
  int num_amps = 20;
  uint32_t page_size = 4096;
  uint64_t buffer_pool_bytes = 64 * kKiB;
  /// Per-AMP memory for sort runs during sort-merge joins.
  uint64_t sort_memory_bytes = 1 * kMiB;
  sim::MachineParams hw = sim::MachineParams::TeradataDefaults();
  /// IFP parse/dispatch/step overhead per multi-AMP query step.
  double step_overhead_sec = 1.3;
  /// Fast-path overhead for single-tuple (primary-key) requests.
  double single_step_overhead_sec = 0.8;
  /// Random page I/Os per tuple inserted with full recovery (transient
  /// journal + fallback-less data + index maintenance; [DEWI87]).
  uint32_t insert_recovery_ios = 5;
  /// CPU per inserted tuple for the logging path.
  double instr_per_insert_logging = 20000;
  /// CPU per tuple inserted into the hash-key-ordered temporary files during
  /// join redistribution (the spool path runs the full tuple-insert code;
  /// fitted from Table 2's Teradata column via [DEWI87]).
  double instr_per_spool_tuple = 20000;
  /// Observability: when enabled, every successful statement carries a
  /// derived Profile in its QueryResult (same contract as GammaConfig).
  obs::TraceOptions trace;

  int ifp_node() const { return num_amps; }
  int host_node() const { return num_amps + 1; }
  int tracker_nodes() const { return num_amps + 2; }
};

/// \brief Selection request (Teradata side of Table 1).
struct TdSelectQuery {
  std::string relation;
  exec::Predicate predicate = exec::Predicate::True();
  /// Allow the optimizer to use a dense secondary index when one exists on
  /// the predicate attribute (it must still scan the whole index, §3).
  bool allow_index = true;
  bool store_result = true;
  std::string result_name;
};

/// \brief Join request (Teradata side of Table 2): redistribute both inputs
/// by hashing the join attribute, sort, then merge (§6).
struct TdJoinQuery {
  std::string outer;
  std::string inner;
  int outer_attr = -1;
  int inner_attr = -1;
  exec::Predicate outer_pred = exec::Predicate::True();
  exec::Predicate inner_pred = exec::Predicate::True();
  bool store_result = true;
  /// The result feeds a later step of the same query (an intermediate):
  /// it is spooled, not inserted through the full-recovery path.
  bool result_is_temp = false;
  std::string result_name;
};

struct TdAppendQuery {
  std::string relation;
  std::vector<uint8_t> tuple;
};

struct TdDeleteQuery {
  std::string relation;
  int key_attr = -1;
  int32_t key = 0;
};

struct TdModifyQuery {
  std::string relation;
  int locate_attr = -1;
  int32_t locate_key = 0;
  int target_attr = -1;
  int32_t new_value = 0;
};

/// \brief The simulated Teradata DBC/1012 baseline machine.
///
/// Shares the storage substrate and cost-tracker machinery with the Gamma
/// machine; differs in file organization (hash-key order only), index kind
/// (dense, unordered, secondary only), join algorithm (sort-merge) and the
/// recovery cost on every stored tuple.
class TeradataMachine {
 public:
  explicit TeradataMachine(TeradataConfig config);

  TeradataMachine(const TeradataMachine&) = delete;
  TeradataMachine& operator=(const TeradataMachine&) = delete;

  const TeradataConfig& config() const { return config_; }
  catalog::Catalog& catalog() { return catalog_; }
  storage::StorageManager& amp(int i) {
    return *amps_.at(static_cast<size_t>(i));
  }

  /// Creates a relation hash-declustered on `primary_key_attr` (the only
  /// organization the machine supports, §3).
  Status CreateRelation(const std::string& name, catalog::Schema schema,
                        int primary_key_attr);

  Status LoadTuples(const std::string& name,
                    const std::vector<std::vector<uint8_t>>& tuples);

  /// Builds a dense, unordered secondary index on `attr`.
  Status BuildSecondaryIndex(const std::string& name, int attr);

  Result<exec::QueryResult> RunSelect(const TdSelectQuery& query);
  Result<exec::QueryResult> RunJoin(const TdJoinQuery& query);
  Result<exec::QueryResult> RunAppend(const TdAppendQuery& query);
  Result<exec::QueryResult> RunDelete(const TdDeleteQuery& query);
  Result<exec::QueryResult> RunModify(const TdModifyQuery& query);

  Result<std::vector<std::vector<uint8_t>>> ReadRelation(
      const std::string& name);
  Result<uint64_t> CountTuples(const std::string& name);

 private:
  /// Post-accounting observability hook (mirrors GammaMachine::FinalizeObs):
  /// feeds the metrics registry and attaches the derived Profile when
  /// tracing is enabled. Passes error results through untouched.
  Result<exec::QueryResult> FinalizeObs(const char* label,
                                        Result<exec::QueryResult> result);

  /// Dense secondary index: an entry file per AMP (scanned in full for range
  /// predicates) plus the hash directory used for exact-match access.
  struct SecondaryIndex {
    int attr = -1;
    std::vector<storage::FileId> per_amp_file;
    std::vector<std::unordered_multimap<int32_t, storage::Rid>> dir;
  };
  /// Per-relation physical state beyond the shared catalog entry.
  struct RelationState {
    int pk_attr = -1;
    /// Hash-file directory per AMP: key -> rid in one access (§3).
    std::vector<std::unordered_multimap<int32_t, storage::Rid>> key_dir;
    std::vector<SecondaryIndex> indices;
  };

  void BindAll(sim::CostTracker* tracker);
  void FlushAllPools();
  /// Charges the IFP parse/dispatch/step overhead (serialized at the IFP).
  void ChargeSteps(sim::CostTracker* tracker, int steps, bool single_tuple);
  /// Home AMP of a key under the machine-wide placement hash.
  int AmpForKey(int32_t key) const;
  /// Appends one tuple with full recovery cost; updates directories.
  storage::Rid InsertWithRecovery(const std::string& relation,
                                  catalog::RelationMeta* meta,
                                  RelationState* state, int amp_index,
                                  std::span<const uint8_t> tuple);
  std::string FreshResultName();
  /// Registers a result relation hash-partitioned on attribute 0.
  catalog::RelationMeta* MakeResultRelation(const std::string& requested,
                                            catalog::Schema schema,
                                            RelationState** state_out);

  TeradataConfig config_;
  catalog::Catalog catalog_;
  std::map<std::string, RelationState> states_;
  std::vector<std::unique_ptr<storage::StorageManager>> amps_;
  uint64_t next_result_id_ = 1;
  uint64_t next_salt_ = 0x7EDA;
  /// Placement hash salt: also used to redistribute joins on the primary
  /// key, which is what lets key-attribute joins skip the network (§6.1).
  uint64_t placement_salt_ = 0xDBC1012;
};

}  // namespace gammadb::teradata

#endif  // GAMMA_TERADATA_MACHINE_H_
