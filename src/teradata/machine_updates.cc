// Update-query execution of the Teradata baseline (§7, Table 3): the
// machine runs full concurrency control and recovery, so every data or
// index change pays logging I/O on top of the hash-file access path.

#include <cstring>

#include "common/hash.h"
#include "common/macros.h"
#include "teradata/index_entry.h"
#include "teradata/machine.h"

namespace gammadb::teradata {

using catalog::RelationMeta;
using catalog::TupleView;
using exec::QueryResult;
using storage::AccessIntent;
using storage::Rid;

namespace {

int32_t AttrOf(const catalog::Schema& schema, std::span<const uint8_t> tuple,
               int attr) {
  return TupleView(&schema, tuple).GetInt(static_cast<size_t>(attr));
}

/// Drops (key -> rid) from a hash directory.
void EraseDir(std::unordered_multimap<int32_t, Rid>* dir, int32_t key,
              Rid rid) {
  auto [begin, end] = dir->equal_range(key);
  for (auto it = begin; it != end; ++it) {
    if (it->second == rid) {
      dir->erase(it);
      return;
    }
  }
}

}  // namespace

Result<QueryResult> TeradataMachine::RunAppend(const TdAppendQuery& query) {
  GAMMA_ASSIGN_OR_RETURN(RelationMeta * meta, catalog_.Get(query.relation));
  if (query.tuple.size() != meta->schema.tuple_size()) {
    return Status::InvalidArgument("tuple size does not match schema");
  }
  RelationState& state = states_.at(query.relation);
  sim::CostTracker tracker(config_.hw, config_.tracker_nodes());
  BindAll(&tracker);
  ChargeSteps(&tracker, 1, /*single_tuple=*/true);

  tracker.BeginPhase("append", sim::PhaseKind::kSequential);
  const int amp_index =
      AmpForKey(AttrOf(meta->schema, query.tuple, state.pk_attr));
  tracker.ChargeDataPacket(config_.host_node(), amp_index,
                           query.tuple.size());
  InsertWithRecovery(query.relation, meta, &state, amp_index, query.tuple);
  FlushAllPools();
  tracker.ChargeControlMessage(amp_index, config_.ifp_node(), true);
  tracker.EndPhase();

  QueryResult result;
  result.result_tuples = 1;
  BindAll(nullptr);
  result.metrics = tracker.Finish();
  return FinalizeObs("append", std::move(result));
}

Result<QueryResult> TeradataMachine::RunDelete(const TdDeleteQuery& query) {
  GAMMA_ASSIGN_OR_RETURN(RelationMeta * meta, catalog_.Get(query.relation));
  RelationState& state = states_.at(query.relation);
  if (query.key_attr < 0 ||
      static_cast<size_t>(query.key_attr) >= meta->schema.num_attrs()) {
    return Status::InvalidArgument("delete key attribute out of range");
  }
  sim::CostTracker tracker(config_.hw, config_.tracker_nodes());
  BindAll(&tracker);
  ChargeSteps(&tracker, 1, /*single_tuple=*/true);

  uint64_t deleted = 0;
  tracker.BeginPhase("delete", sim::PhaseKind::kSequential);
  if (query.key_attr == state.pk_attr) {
    // Primary key: one AMP, one hash access.
    const int amp_index = AmpForKey(query.key);
    storage::StorageManager& sm = *amps_[static_cast<size_t>(amp_index)];
    sm.charge().DiskRead(config_.page_size, AccessIntent::kRandom);
    auto& dir = state.key_dir[static_cast<size_t>(amp_index)];
    std::vector<Rid> rids;
    auto [begin, end] = dir.equal_range(query.key);
    for (auto it = begin; it != end; ++it) rids.push_back(it->second);
    storage::HeapFile& fragment =
        sm.file(meta->per_node_file[static_cast<size_t>(amp_index)]);
    for (const Rid rid : rids) {
      auto tuple = fragment.Fetch(rid, AccessIntent::kRandom);
      GAMMA_CHECK(tuple.ok());
      GAMMA_CHECK(fragment.Delete(rid).ok());
      EraseDir(&dir, query.key, rid);
      for (SecondaryIndex& index : state.indices) {
        const int32_t ikey = AttrOf(meta->schema, *tuple, index.attr);
        EraseDir(&index.dir[static_cast<size_t>(amp_index)], ikey, rid);
        // Index leaf rewrite + transient journal.
        sm.charge().DiskWrite(config_.page_size, AccessIntent::kRandom);
      }
      sm.charge().Cpu(config_.instr_per_insert_logging);
      sm.charge().DiskWrite(config_.page_size, AccessIntent::kRandom);
      ++deleted;
    }
    tracker.ChargeControlMessage(amp_index, config_.ifp_node(), true);
  } else {
    // Secondary attribute: hash index gives the rids in one access per AMP.
    for (int amp_index = 0; amp_index < config_.num_amps; ++amp_index) {
      storage::StorageManager& sm = *amps_[static_cast<size_t>(amp_index)];
      for (SecondaryIndex& index : state.indices) {
        if (index.attr != query.key_attr) continue;
        sm.charge().DiskRead(config_.page_size, AccessIntent::kRandom);
        auto& dir = index.dir[static_cast<size_t>(amp_index)];
        std::vector<Rid> rids;
        auto [begin, end] = dir.equal_range(query.key);
        for (auto it = begin; it != end; ++it) rids.push_back(it->second);
        storage::HeapFile& fragment =
            sm.file(meta->per_node_file[static_cast<size_t>(amp_index)]);
        for (const Rid rid : rids) {
          auto tuple = fragment.Fetch(rid, AccessIntent::kRandom);
          GAMMA_CHECK(tuple.ok());
          GAMMA_CHECK(fragment.Delete(rid).ok());
          EraseDir(&state.key_dir[static_cast<size_t>(amp_index)],
                   AttrOf(meta->schema, *tuple, state.pk_attr), rid);
          for (SecondaryIndex& other : state.indices) {
            EraseDir(&other.dir[static_cast<size_t>(amp_index)],
                     AttrOf(meta->schema, *tuple, other.attr), rid);
            sm.charge().DiskWrite(config_.page_size, AccessIntent::kRandom);
          }
          sm.charge().Cpu(config_.instr_per_insert_logging);
          sm.charge().DiskWrite(config_.page_size, AccessIntent::kRandom);
          ++deleted;
        }
      }
    }
  }
  FlushAllPools();
  tracker.EndPhase();

  meta->num_tuples -= deleted;
  QueryResult result;
  result.result_tuples = deleted;
  BindAll(nullptr);
  result.metrics = tracker.Finish();
  return FinalizeObs("delete", std::move(result));
}

Result<QueryResult> TeradataMachine::RunModify(const TdModifyQuery& query) {
  GAMMA_ASSIGN_OR_RETURN(RelationMeta * meta, catalog_.Get(query.relation));
  RelationState& state = states_.at(query.relation);
  if (query.locate_attr < 0 ||
      static_cast<size_t>(query.locate_attr) >= meta->schema.num_attrs() ||
      query.target_attr < 0 ||
      static_cast<size_t>(query.target_attr) >= meta->schema.num_attrs()) {
    return Status::InvalidArgument("modify attribute out of range");
  }
  sim::CostTracker tracker(config_.hw, config_.tracker_nodes());
  BindAll(&tracker);
  ChargeSteps(&tracker, 1, /*single_tuple=*/true);

  // Locate (amp, rid) pairs through the primary hash or a secondary index.
  std::vector<std::pair<int, Rid>> located;
  tracker.BeginPhase("modify", sim::PhaseKind::kSequential);
  if (query.locate_attr == state.pk_attr) {
    const int amp_index = AmpForKey(query.locate_key);
    amps_[static_cast<size_t>(amp_index)]->charge().DiskRead(
        config_.page_size, AccessIntent::kRandom);
    auto& dir = state.key_dir[static_cast<size_t>(amp_index)];
    auto [begin, end] = dir.equal_range(query.locate_key);
    for (auto it = begin; it != end; ++it) {
      located.emplace_back(amp_index, it->second);
    }
  } else {
    const SecondaryIndex* index = nullptr;
    for (const SecondaryIndex& candidate : state.indices) {
      if (candidate.attr == query.locate_attr) index = &candidate;
    }
    if (index != nullptr) {
      for (int amp_index = 0; amp_index < config_.num_amps; ++amp_index) {
        amps_[static_cast<size_t>(amp_index)]->charge().DiskRead(
            config_.page_size, AccessIntent::kRandom);
        const auto& dir = index->dir[static_cast<size_t>(amp_index)];
        auto [begin, end] = dir.equal_range(query.locate_key);
        for (auto it = begin; it != end; ++it) {
          located.emplace_back(amp_index, it->second);
        }
      }
    } else {
      // No index: full scan of every fragment.
      const exec::Predicate pred =
          exec::Predicate::Eq(query.locate_attr, query.locate_key);
      for (int amp_index = 0; amp_index < config_.num_amps; ++amp_index) {
        storage::StorageManager& sm = *amps_[static_cast<size_t>(amp_index)];
        sm.file(meta->per_node_file[static_cast<size_t>(amp_index)])
            .Scan([&](Rid rid, std::span<const uint8_t> tuple) {
              sm.charge().Cpu(config_.hw.cost.instr_per_tuple_scan +
                              config_.hw.cost.instr_per_attr_compare);
              if (pred.Eval(tuple, meta->schema)) {
                located.emplace_back(amp_index, rid);
              }
              return true;
            });
      }
    }
  }

  uint64_t modified = 0;
  const bool relocates = query.target_attr == state.pk_attr;
  if (relocates && !located.empty()) {
    // Changing the primary key moves the tuple between AMPs: a multi-AMP
    // transaction with two-phase commit, coordinated by the IFP (the reason
    // Table 3's key-modify row is the most expensive Teradata update).
    tracker.ChargeSerialSec(config_.ifp_node(), config_.step_overhead_sec);
  }
  for (const auto& [amp_index, rid] : located) {
    storage::StorageManager& sm = *amps_[static_cast<size_t>(amp_index)];
    storage::HeapFile& fragment =
        sm.file(meta->per_node_file[static_cast<size_t>(amp_index)]);
    auto old_tuple = fragment.Fetch(rid, AccessIntent::kRandom);
    GAMMA_CHECK(old_tuple.ok());
    std::vector<uint8_t> new_tuple = *old_tuple;
    std::memcpy(
        new_tuple.data() +
            meta->schema.offset(static_cast<size_t>(query.target_attr)),
        &query.new_value, sizeof(query.new_value));

    if (relocates) {
      // Primary key changed: the tuple hashes to a new AMP. Delete + insert
      // with full recovery at both ends, and fix every secondary index.
      GAMMA_CHECK(fragment.Delete(rid).ok());
      EraseDir(&state.key_dir[static_cast<size_t>(amp_index)],
               AttrOf(meta->schema, *old_tuple, state.pk_attr), rid);
      for (SecondaryIndex& index : state.indices) {
        EraseDir(&index.dir[static_cast<size_t>(amp_index)],
                 AttrOf(meta->schema, *old_tuple, index.attr), rid);
        sm.charge().DiskWrite(config_.page_size, AccessIntent::kRandom);
      }
      sm.charge().DiskWrite(config_.page_size, AccessIntent::kRandom);
      sm.charge().Cpu(config_.instr_per_insert_logging);
      const int new_amp = AmpForKey(query.new_value);
      if (new_amp != amp_index) {
        tracker.ChargeDataPacket(amp_index, new_amp, new_tuple.size());
      }
      meta->num_tuples -= 1;  // InsertWithRecovery re-adds it.
      InsertWithRecovery(query.relation, meta, &state, new_amp, new_tuple);
    } else {
      GAMMA_CHECK(fragment.Update(rid, new_tuple).ok());
      for (SecondaryIndex& index : state.indices) {
        if (index.attr != query.target_attr) continue;
        auto& dir = index.dir[static_cast<size_t>(amp_index)];
        EraseDir(&dir, AttrOf(meta->schema, *old_tuple, index.attr), rid);
        dir.emplace(query.new_value, rid);
        sm.file(index.per_amp_file[static_cast<size_t>(amp_index)])
            .Append(internal::SerializeIndexEntry(query.new_value, rid));
        sm.charge().DiskWrite(config_.page_size, AccessIntent::kRandom);
      }
      sm.charge().DiskWrite(config_.page_size, AccessIntent::kRandom);
      sm.charge().Cpu(config_.instr_per_insert_logging);
    }
    ++modified;
  }
  FlushAllPools();
  tracker.ChargeControlMessage(0, config_.ifp_node(), true);
  tracker.EndPhase();

  QueryResult result;
  result.result_tuples = modified;
  BindAll(nullptr);
  result.metrics = tracker.Finish();
  return FinalizeObs("modify", std::move(result));
}

Result<std::vector<std::vector<uint8_t>>> TeradataMachine::ReadRelation(
    const std::string& name) {
  GAMMA_ASSIGN_OR_RETURN(const RelationMeta* meta, catalog_.Get(name));
  std::vector<std::vector<uint8_t>> out;
  out.reserve(meta->num_tuples);
  for (int i = 0; i < config_.num_amps; ++i) {
    amps_[static_cast<size_t>(i)]
        ->file(meta->per_node_file[static_cast<size_t>(i)])
        .Scan([&](Rid, std::span<const uint8_t> tuple) {
          out.emplace_back(tuple.begin(), tuple.end());
          return true;
        });
  }
  return out;
}

Result<uint64_t> TeradataMachine::CountTuples(const std::string& name) {
  GAMMA_ASSIGN_OR_RETURN(const RelationMeta* meta, catalog_.Get(name));
  uint64_t count = 0;
  for (int i = 0; i < config_.num_amps; ++i) {
    count += amps_[static_cast<size_t>(i)]
                 ->file(meta->per_node_file[static_cast<size_t>(i)])
                 .num_tuples();
  }
  return count;
}

}  // namespace gammadb::teradata
