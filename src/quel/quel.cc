#include "quel/quel.h"

#include <algorithm>
#include <cctype>
#include <limits>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "catalog/schema.h"
#include "common/macros.h"
#include "exec/aggregate.h"
#include "exec/predicate.h"
#include "obs/profile.h"
#include "opt/explain.h"
#include "opt/planner.h"

namespace gammadb::quel {

namespace {

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

enum class TokKind { kIdent, kNumber, kSymbol, kEnd };

struct Token {
  TokKind kind;
  std::string text;  // lower-cased for identifiers
  int32_t number = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view input) : input_(input) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> tokens;
    size_t i = 0;
    while (i < input_.size()) {
      const char c = input_[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t j = i;
        while (j < input_.size() &&
               (std::isalnum(static_cast<unsigned char>(input_[j])) ||
                input_[j] == '_')) {
          ++j;
        }
        std::string word(input_.substr(i, j - i));
        std::transform(word.begin(), word.end(), word.begin(), [](char ch) {
          return static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
        });
        tokens.push_back(Token{TokKind::kIdent, std::move(word)});
        i = j;
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '-' && i + 1 < input_.size() &&
           std::isdigit(static_cast<unsigned char>(input_[i + 1])))) {
        size_t j = i + 1;
        while (j < input_.size() &&
               std::isdigit(static_cast<unsigned char>(input_[j]))) {
          ++j;
        }
        Token token{TokKind::kNumber, std::string(input_.substr(i, j - i))};
        token.number = static_cast<int32_t>(std::stol(token.text));
        tokens.push_back(std::move(token));
        i = j;
        continue;
      }
      if (c == '<' || c == '>') {
        if (i + 1 < input_.size() && input_[i + 1] == '=') {
          tokens.push_back(Token{TokKind::kSymbol,
                                 std::string(input_.substr(i, 2))});
          i += 2;
          continue;
        }
      }
      if (std::string("=<>().,").find(c) != std::string::npos) {
        tokens.push_back(Token{TokKind::kSymbol, std::string(1, c)});
        ++i;
        continue;
      }
      return Status::InvalidArgument(std::string("unexpected character '") +
                                     c + "'");
    }
    tokens.push_back(Token{TokKind::kEnd, ""});
    return tokens;
  }

 private:
  std::string_view input_;
};

// ---------------------------------------------------------------------------
// Parser state + helpers
// ---------------------------------------------------------------------------

class Cursor {
 public:
  explicit Cursor(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  const Token& Peek() const { return tokens_[pos_]; }
  Token Next() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }
  bool AtEnd() const { return Peek().kind == TokKind::kEnd; }

  bool ConsumeIdent(std::string_view word) {
    if (Peek().kind == TokKind::kIdent && Peek().text == word) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool ConsumeSymbol(std::string_view sym) {
    if (Peek().kind == TokKind::kSymbol && Peek().text == sym) {
      ++pos_;
      return true;
    }
    return false;
  }
  Result<std::string> ExpectIdent(const char* what) {
    if (Peek().kind != TokKind::kIdent) {
      return Status::InvalidArgument(std::string("expected ") + what);
    }
    return Next().text;
  }
  Result<int32_t> ExpectNumber() {
    if (Peek().kind != TokKind::kNumber) {
      return Status::InvalidArgument("expected a number");
    }
    return Next().number;
  }
  Status ExpectSymbol(std::string_view sym) {
    if (!ConsumeSymbol(sym)) {
      return Status::InvalidArgument("expected '" + std::string(sym) + "'");
    }
    return Status::OK();
  }

 private:
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

/// One where-clause comparison: var.attr OP (number | var.attr).
struct Comparison {
  std::string left_var;
  std::string left_attr;
  std::string op;
  bool rhs_is_attr = false;
  std::string right_var;
  std::string right_attr;
  int32_t value = 0;
};

/// var.attr reference.
struct AttrRef {
  std::string var;
  std::string attr;  // "all" for t.all
};

Result<AttrRef> ParseAttrRef(Cursor& cursor) {
  GAMMA_ASSIGN_OR_RETURN(std::string var, cursor.ExpectIdent("range variable"));
  GAMMA_RETURN_NOT_OK(cursor.ExpectSymbol("."));
  GAMMA_ASSIGN_OR_RETURN(std::string attr,
                         cursor.ExpectIdent("attribute name"));
  return AttrRef{std::move(var), std::move(attr)};
}

Result<std::vector<Comparison>> ParseWhere(Cursor& cursor) {
  std::vector<Comparison> comparisons;
  if (!cursor.ConsumeIdent("where")) return comparisons;
  for (;;) {
    Comparison cmp;
    GAMMA_ASSIGN_OR_RETURN(AttrRef lhs, ParseAttrRef(cursor));
    cmp.left_var = lhs.var;
    cmp.left_attr = lhs.attr;
    if (cursor.Peek().kind != TokKind::kSymbol) {
      return Status::InvalidArgument("expected a comparison operator");
    }
    cmp.op = cursor.Next().text;
    if (cmp.op != "=" && cmp.op != "<" && cmp.op != "<=" && cmp.op != ">" &&
        cmp.op != ">=") {
      return Status::InvalidArgument("unsupported operator " + cmp.op);
    }
    if (cursor.Peek().kind == TokKind::kNumber) {
      cmp.value = *cursor.ExpectNumber();
    } else {
      GAMMA_ASSIGN_OR_RETURN(AttrRef rhs, ParseAttrRef(cursor));
      cmp.rhs_is_attr = true;
      cmp.right_var = rhs.var;
      cmp.right_attr = rhs.attr;
    }
    comparisons.push_back(std::move(cmp));
    if (!cursor.ConsumeIdent("and")) break;
  }
  return comparisons;
}

/// Folds the single-variable comparisons of `var` into one predicate:
/// comparisons on each attribute intersect into an inclusive window, and
/// windows over distinct attributes combine with Predicate::And.
Result<exec::Predicate> FoldPredicate(
    const std::vector<Comparison>& comparisons, const std::string& var,
    const catalog::Schema& schema) {
  // Windows in declaration order (deterministic EXPLAIN output).
  std::vector<int> attrs;
  std::map<int, std::pair<int64_t, int64_t>> windows;
  for (const Comparison& cmp : comparisons) {
    if (cmp.rhs_is_attr || cmp.left_var != var) continue;
    const auto index = schema.IndexOf(cmp.left_attr);
    if (!index.has_value()) {
      return Status::InvalidArgument("unknown attribute " + cmp.left_attr);
    }
    const int attr = static_cast<int>(*index);
    if (windows.find(attr) == windows.end()) {
      attrs.push_back(attr);
      windows[attr] = {std::numeric_limits<int32_t>::min(),
                       std::numeric_limits<int32_t>::max()};
    }
    auto& [lo, hi] = windows[attr];
    if (cmp.op == "=") {
      lo = std::max<int64_t>(lo, cmp.value);
      hi = std::min<int64_t>(hi, cmp.value);
    } else if (cmp.op == "<") {
      hi = std::min<int64_t>(hi, static_cast<int64_t>(cmp.value) - 1);
    } else if (cmp.op == "<=") {
      hi = std::min<int64_t>(hi, cmp.value);
    } else if (cmp.op == ">") {
      lo = std::max<int64_t>(lo, static_cast<int64_t>(cmp.value) + 1);
    } else {  // >=
      lo = std::max<int64_t>(lo, cmp.value);
    }
  }
  std::vector<exec::Predicate> terms;
  for (const int attr : attrs) {
    const auto [lo, hi] = windows[attr];
    if (lo > hi) {
      // Contradictory clauses: feed And two disjoint equalities so the
      // intersection is an empty window (a predicate matching nothing).
      terms.push_back(exec::Predicate::And(
          {exec::Predicate::Eq(attr, 0), exec::Predicate::Eq(attr, 1)}));
      continue;
    }
    if (lo == std::numeric_limits<int32_t>::min() &&
        hi == std::numeric_limits<int32_t>::max()) {
      continue;  // vacuous
    }
    if (lo == hi) {
      terms.push_back(exec::Predicate::Eq(attr, static_cast<int32_t>(lo)));
    } else {
      terms.push_back(exec::Predicate::Range(attr, static_cast<int32_t>(lo),
                                             static_cast<int32_t>(hi)));
    }
  }
  return exec::Predicate::And(std::move(terms));
}

std::optional<exec::AggFunc> AggFuncByName(const std::string& name) {
  if (name == "count") return exec::AggFunc::kCount;
  if (name == "sum") return exec::AggFunc::kSum;
  if (name == "min") return exec::AggFunc::kMin;
  if (name == "max") return exec::AggFunc::kMax;
  if (name == "avg") return exec::AggFunc::kAvg;
  return std::nullopt;
}

/// `explain profile`: derives the observability profile from the finished
/// metrics (works whether or not the machine ran with tracing enabled — the
/// profile is a pure function of the metrics), appends the rendered
/// breakdown to the explain text and attaches the structured form.
void AppendProfile(const gamma::GammaMachine& machine, const char* label,
                   exec::QueryResult* result) {
  auto profile = std::make_shared<const obs::Profile>(
      obs::BuildProfile("gamma", label, result->metrics,
                        machine.config().hw.net.ring_bytes_per_sec));
  result->explain += "\n" + obs::RenderProfile(*profile);
  result->profile = std::move(profile);
}

/// `explain journal`: appends the tail of the machine's flight recorder
/// (the most recent events across all node rings, canonically merged) to
/// the explain text — the statement just executed is the last entry.
constexpr size_t kExplainJournalTail = 32;

void AppendJournal(const gamma::GammaMachine& machine,
                   exec::QueryResult* result) {
  result->explain += "\n" + machine.journal().RenderText(kExplainJournalTail);
}

}  // namespace

Session::Session(gamma::GammaMachine* machine) : machine_(machine) {
  GAMMA_CHECK(machine != nullptr);
}

Result<std::string> Session::RangeOf(const std::string& var) const {
  auto it = range_vars_.find(var);
  if (it == range_vars_.end()) {
    return Status::NotFound("no range declaration for " + var);
  }
  return it->second;
}

Result<exec::QueryResult> Session::Execute(std::string_view statement) {
  GAMMA_ASSIGN_OR_RETURN(std::vector<Token> tokens,
                         Lexer(statement).Tokenize());
  Cursor cursor(std::move(tokens));

  // explain retrieve ... — run the planned query and attach the plan tree
  // (estimated costs alongside the measured actuals) to the result.
  // explain profile retrieve ... — additionally attach the observability
  // profile (per-phase device breakdown, utilization fractions, critical
  // resource) and its span hierarchy.
  const bool explain = cursor.ConsumeIdent("explain");
  const bool profile = explain && cursor.ConsumeIdent("profile");
  // explain journal retrieve ... — additionally append the flight
  // recorder's tail (recent journal events, canonically merged).
  const bool journal = explain && !profile && cursor.ConsumeIdent("journal");
  if (explain && !(cursor.Peek().kind == TokKind::kIdent &&
                   cursor.Peek().text == "retrieve")) {
    return Status::InvalidArgument(
        profile   ? "explain profile supports retrieve statements only"
        : journal ? "explain journal supports retrieve statements only"
                  : "explain supports retrieve statements only");
  }

  // range of t is A
  if (cursor.ConsumeIdent("range")) {
    if (!cursor.ConsumeIdent("of")) {
      return Status::InvalidArgument("expected 'range of <var> is <rel>'");
    }
    GAMMA_ASSIGN_OR_RETURN(std::string var,
                           cursor.ExpectIdent("range variable"));
    if (!cursor.ConsumeIdent("is")) {
      return Status::InvalidArgument("expected 'is'");
    }
    if (cursor.Peek().kind != TokKind::kIdent) {
      return Status::InvalidArgument("expected a relation name");
    }
    // Relation names are case-sensitive in the catalog; re-scan the raw
    // token (lower-cased already) against the catalog names.
    const std::string lowered = cursor.Next().text;
    std::string actual = lowered;
    for (const std::string& name : machine_->catalog().Names()) {
      std::string candidate = name;
      std::transform(candidate.begin(), candidate.end(), candidate.begin(),
                     [](char c) {
                       return static_cast<char>(
                           std::tolower(static_cast<unsigned char>(c)));
                     });
      if (candidate == lowered) actual = name;
    }
    if (!machine_->catalog().Contains(actual)) {
      return Status::NotFound("relation " + lowered);
    }
    range_vars_[var] = actual;
    return exec::QueryResult{};
  }

  // append to REL (attr = value, ...)
  if (cursor.ConsumeIdent("append")) {
    if (!cursor.ConsumeIdent("to")) {
      return Status::InvalidArgument("expected 'append to <rel> (...)'");
    }
    GAMMA_ASSIGN_OR_RETURN(std::string lowered,
                           cursor.ExpectIdent("relation name"));
    std::string relation = lowered;
    for (const std::string& name : machine_->catalog().Names()) {
      std::string candidate = name;
      std::transform(candidate.begin(), candidate.end(), candidate.begin(),
                     [](char c) {
                       return static_cast<char>(
                           std::tolower(static_cast<unsigned char>(c)));
                     });
      if (candidate == lowered) relation = name;
    }
    GAMMA_ASSIGN_OR_RETURN(const catalog::RelationMeta* meta,
                           machine_->catalog().Get(relation));
    catalog::TupleBuilder builder(&meta->schema);
    GAMMA_RETURN_NOT_OK(cursor.ExpectSymbol("("));
    for (;;) {
      GAMMA_ASSIGN_OR_RETURN(std::string attr,
                             cursor.ExpectIdent("attribute"));
      GAMMA_RETURN_NOT_OK(cursor.ExpectSymbol("="));
      GAMMA_ASSIGN_OR_RETURN(int32_t value, cursor.ExpectNumber());
      const auto index = meta->schema.IndexOf(attr);
      if (!index.has_value()) {
        return Status::InvalidArgument("unknown attribute " + attr);
      }
      builder.SetInt(*index, value);
      if (!cursor.ConsumeSymbol(",")) break;
    }
    GAMMA_RETURN_NOT_OK(cursor.ExpectSymbol(")"));
    gamma::AppendQuery query;
    query.relation = relation;
    query.tuple.assign(builder.bytes().begin(), builder.bytes().end());
    return machine_->RunAppend(query);
  }

  // delete t where ...
  if (cursor.ConsumeIdent("delete")) {
    GAMMA_ASSIGN_OR_RETURN(std::string var,
                           cursor.ExpectIdent("range variable"));
    GAMMA_ASSIGN_OR_RETURN(std::string relation, RangeOf(var));
    GAMMA_ASSIGN_OR_RETURN(std::vector<Comparison> where, ParseWhere(cursor));
    GAMMA_ASSIGN_OR_RETURN(const catalog::RelationMeta* meta,
                           machine_->catalog().Get(relation));
    GAMMA_ASSIGN_OR_RETURN(exec::Predicate pred,
                           FoldPredicate(where, var, meta->schema));
    if (!pred.is_eq()) {
      return Status::NotImplemented("delete requires an exact-match clause");
    }
    gamma::DeleteQuery query;
    query.relation = relation;
    query.key_attr = pred.attr();
    query.key = pred.lo();
    return machine_->RunDelete(query);
  }

  // replace t (attr = value) where ...
  if (cursor.ConsumeIdent("replace")) {
    GAMMA_ASSIGN_OR_RETURN(std::string var,
                           cursor.ExpectIdent("range variable"));
    GAMMA_ASSIGN_OR_RETURN(std::string relation, RangeOf(var));
    GAMMA_ASSIGN_OR_RETURN(const catalog::RelationMeta* meta,
                           machine_->catalog().Get(relation));
    GAMMA_RETURN_NOT_OK(cursor.ExpectSymbol("("));
    GAMMA_ASSIGN_OR_RETURN(std::string attr, cursor.ExpectIdent("attribute"));
    GAMMA_RETURN_NOT_OK(cursor.ExpectSymbol("="));
    GAMMA_ASSIGN_OR_RETURN(int32_t value, cursor.ExpectNumber());
    GAMMA_RETURN_NOT_OK(cursor.ExpectSymbol(")"));
    GAMMA_ASSIGN_OR_RETURN(std::vector<Comparison> where, ParseWhere(cursor));
    GAMMA_ASSIGN_OR_RETURN(exec::Predicate pred,
                           FoldPredicate(where, var, meta->schema));
    if (!pred.is_eq()) {
      return Status::NotImplemented("replace requires an exact-match clause");
    }
    const auto target = meta->schema.IndexOf(attr);
    if (!target.has_value()) {
      return Status::InvalidArgument("unknown attribute " + attr);
    }
    gamma::ModifyQuery query;
    query.relation = relation;
    query.locate_attr = pred.attr();
    query.locate_key = pred.lo();
    query.target_attr = static_cast<int>(*target);
    query.new_value = value;
    return machine_->RunModify(query);
  }

  // retrieve [into R] (targets) [where ...]
  if (!cursor.ConsumeIdent("retrieve")) {
    return Status::InvalidArgument("unrecognized statement");
  }
  std::string into;
  bool store = false;
  if (cursor.ConsumeIdent("into")) {
    GAMMA_ASSIGN_OR_RETURN(into, cursor.ExpectIdent("result relation name"));
    store = true;
  }
  GAMMA_RETURN_NOT_OK(cursor.ExpectSymbol("("));

  // Aggregate target: func(t.attr) [by t.group]
  if (cursor.Peek().kind == TokKind::kIdent &&
      AggFuncByName(cursor.Peek().text).has_value()) {
    const exec::AggFunc func = *AggFuncByName(cursor.Next().text);
    GAMMA_RETURN_NOT_OK(cursor.ExpectSymbol("("));
    GAMMA_ASSIGN_OR_RETURN(AttrRef value_ref, ParseAttrRef(cursor));
    GAMMA_RETURN_NOT_OK(cursor.ExpectSymbol(")"));
    int group_attr = -1;
    GAMMA_ASSIGN_OR_RETURN(std::string relation, RangeOf(value_ref.var));
    GAMMA_ASSIGN_OR_RETURN(const catalog::RelationMeta* meta,
                           machine_->catalog().Get(relation));
    if (cursor.ConsumeIdent("by")) {
      GAMMA_ASSIGN_OR_RETURN(AttrRef group_ref, ParseAttrRef(cursor));
      const auto index = meta->schema.IndexOf(group_ref.attr);
      if (!index.has_value()) {
        return Status::InvalidArgument("unknown attribute " +
                                       group_ref.attr);
      }
      group_attr = static_cast<int>(*index);
    }
    GAMMA_RETURN_NOT_OK(cursor.ExpectSymbol(")"));
    GAMMA_ASSIGN_OR_RETURN(std::vector<Comparison> where, ParseWhere(cursor));
    const auto value_index = meta->schema.IndexOf(value_ref.attr);
    if (!value_index.has_value()) {
      return Status::InvalidArgument("unknown attribute " + value_ref.attr);
    }
    gamma::AggregateQuery query;
    query.relation = relation;
    query.group_attr = group_attr;
    query.value_attr = static_cast<int>(*value_index);
    query.func = func;
    GAMMA_ASSIGN_OR_RETURN(query.predicate,
                           FoldPredicate(where, value_ref.var, meta->schema));
    const opt::Planner planner(*machine_);
    GAMMA_ASSIGN_OR_RETURN(const opt::PlannedAggregate planned,
                           planner.PlanAggregate(query));
    GAMMA_ASSIGN_OR_RETURN(exec::QueryResult result,
                           machine_->RunAggregate(planned.query));
    if (explain) {
      result.explain = opt::RenderPlanWithActuals(planned.plan, result);
      if (profile) AppendProfile(*machine_, "aggregate", &result);
      if (journal) AppendJournal(*machine_, &result);
    }
    return result;
  }

  // Projection targets: t.all or a.all, b.all
  GAMMA_ASSIGN_OR_RETURN(AttrRef first, ParseAttrRef(cursor));
  if (first.attr != "all") {
    return Status::NotImplemented("only '.all' target lists are supported");
  }
  std::vector<std::string> vars = {first.var};
  while (cursor.ConsumeSymbol(",")) {
    GAMMA_ASSIGN_OR_RETURN(AttrRef next, ParseAttrRef(cursor));
    if (next.attr != "all") {
      return Status::NotImplemented("only '.all' target lists are supported");
    }
    vars.push_back(next.var);
  }
  GAMMA_RETURN_NOT_OK(cursor.ExpectSymbol(")"));
  GAMMA_ASSIGN_OR_RETURN(std::vector<Comparison> where, ParseWhere(cursor));

  if (vars.size() == 1) {
    GAMMA_ASSIGN_OR_RETURN(std::string relation, RangeOf(vars[0]));
    GAMMA_ASSIGN_OR_RETURN(const catalog::RelationMeta* meta,
                           machine_->catalog().Get(relation));
    gamma::SelectQuery query;
    query.relation = relation;
    GAMMA_ASSIGN_OR_RETURN(query.predicate,
                           FoldPredicate(where, vars[0], meta->schema));
    query.store_result = store;
    query.result_name = into;
    // Optimizer-planned: the cost model picks the access path.
    const opt::Planner planner(*machine_);
    GAMMA_ASSIGN_OR_RETURN(const opt::PlannedSelect planned,
                           planner.PlanSelect(query));
    GAMMA_ASSIGN_OR_RETURN(exec::QueryResult result,
                           machine_->RunSelect(planned.query));
    if (explain) {
      result.explain = opt::RenderPlanWithActuals(planned.plan, result);
      if (profile) AppendProfile(*machine_, "select", &result);
      if (journal) AppendJournal(*machine_, &result);
    }
    return result;
  }
  if (vars.size() != 2) {
    return Status::NotImplemented("at most two range variables per query");
  }

  // Join: exactly one var-to-var equality in the where-clause.
  const Comparison* join_cmp = nullptr;
  for (const Comparison& cmp : where) {
    if (!cmp.rhs_is_attr) continue;
    if (join_cmp != nullptr) {
      return Status::NotImplemented("exactly one join clause is supported");
    }
    if (cmp.op != "=") {
      return Status::NotImplemented("only equijoins are supported");
    }
    join_cmp = &cmp;
  }
  if (join_cmp == nullptr) {
    return Status::NotImplemented(
        "two range variables require a join clause");
  }
  // Map the join clause onto (outer=vars[0], inner=vars[1]).
  std::string outer_attr_name, inner_attr_name;
  if (join_cmp->left_var == vars[0] && join_cmp->right_var == vars[1]) {
    outer_attr_name = join_cmp->left_attr;
    inner_attr_name = join_cmp->right_attr;
  } else if (join_cmp->left_var == vars[1] &&
             join_cmp->right_var == vars[0]) {
    inner_attr_name = join_cmp->left_attr;
    outer_attr_name = join_cmp->right_attr;
  } else {
    return Status::InvalidArgument("join clause references unknown variables");
  }
  GAMMA_ASSIGN_OR_RETURN(std::string outer_rel, RangeOf(vars[0]));
  GAMMA_ASSIGN_OR_RETURN(std::string inner_rel, RangeOf(vars[1]));
  GAMMA_ASSIGN_OR_RETURN(const catalog::RelationMeta* outer_meta,
                         machine_->catalog().Get(outer_rel));
  GAMMA_ASSIGN_OR_RETURN(const catalog::RelationMeta* inner_meta,
                         machine_->catalog().Get(inner_rel));
  const auto outer_attr = outer_meta->schema.IndexOf(outer_attr_name);
  const auto inner_attr = inner_meta->schema.IndexOf(inner_attr_name);
  if (!outer_attr.has_value() || !inner_attr.has_value()) {
    return Status::InvalidArgument("unknown join attribute");
  }
  gamma::JoinQuery query;
  query.outer = outer_rel;
  query.inner = inner_rel;
  query.outer_attr = static_cast<int>(*outer_attr);
  query.inner_attr = static_cast<int>(*inner_attr);
  GAMMA_ASSIGN_OR_RETURN(query.outer_pred,
                         FoldPredicate(where, vars[0], outer_meta->schema));
  GAMMA_ASSIGN_OR_RETURN(query.inner_pred,
                         FoldPredicate(where, vars[1], inner_meta->schema));
  query.store_result = store;
  query.result_name = into;
  // Optimizer-planned: the cost model picks join algorithm and site.
  const opt::Planner planner(*machine_);
  GAMMA_ASSIGN_OR_RETURN(const opt::PlannedJoin planned,
                         planner.PlanJoin(query));
  GAMMA_ASSIGN_OR_RETURN(exec::QueryResult result,
                         machine_->RunJoin(planned.query));
  if (explain) {
    result.explain = opt::RenderPlanWithActuals(planned.plan, result);
    if (profile) AppendProfile(*machine_, "join", &result);
    if (journal) AppendJournal(*machine_, &result);
  }
  return result;
}

}  // namespace gammadb::quel
