#ifndef GAMMA_QUEL_QUEL_H_
#define GAMMA_QUEL_QUEL_H_

#include <map>
#include <string>
#include <string_view>

#include "common/result.h"
#include "exec/query_result.h"
#include "gamma/machine.h"

namespace gammadb::quel {

/// \brief A small QUEL front end for the Gamma machine.
///
/// Gamma's host spoke an extended QUEL (§2, [STON76]); this module covers
/// the subset the paper's benchmark queries need:
///
///   range of t is A
///   retrieve (t.all) where t.unique1 >= 0 and t.unique1 <= 99
///   retrieve into R (t.all) where t.unique2 = 55
///   retrieve (a.all, b.all) where a.unique2 = b.unique2
///       and a.unique1 <= 999 and b.unique1 <= 999
///   retrieve (min(t.unique1))
///   retrieve (count(t.unique1) by t.ten)
///   append to A (unique1 = 5, unique2 = 7)
///   delete t where t.unique1 = 44
///   replace t (ten = 5) where t.unique1 = 44
///   explain retrieve (t.all) where t.unique2 < 100
///
/// Statements are parsed, planned through the cost-based optimizer
/// (opt::Planner picks access path, join algorithm and join site from the
/// catalog statistics), and executed; "range of" declarations persist in
/// the session. A where-clause may and-combine comparisons over any number
/// of attributes of a variable (they compile to a compound predicate);
/// joins take exactly one var-to-var equality. An `explain` prefix on a
/// retrieve runs the query and fills QueryResult::explain with the plan
/// tree — estimated cost and cardinality beside the measured actuals.
class Session {
 public:
  explicit Session(gamma::GammaMachine* machine);

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Parses and executes one statement. "range of" statements return an
  /// empty QueryResult. Parse and planning errors come back as
  /// InvalidArgument / NotImplemented.
  Result<exec::QueryResult> Execute(std::string_view statement);

  /// Relation bound to a range variable, if any (test hook).
  Result<std::string> RangeOf(const std::string& var) const;

 private:
  gamma::GammaMachine* machine_;
  std::map<std::string, std::string> range_vars_;
};

}  // namespace gammadb::quel

#endif  // GAMMA_QUEL_QUEL_H_
