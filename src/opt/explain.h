#ifndef GAMMA_OPT_EXPLAIN_H_
#define GAMMA_OPT_EXPLAIN_H_

#include <string>
#include <vector>

#include "exec/query_result.h"

namespace gammadb::opt {

/// \brief One operator of an EXPLAIN tree.
struct PlanNode {
  /// Operator headline, e.g. "join A ⋈ Bprime (hybrid hash, Remote, 8 sites)".
  std::string label;
  /// Extra annotation lines (predicate, selectivity, rejected alternatives).
  std::vector<std::string> details;
  double est_seconds = 0;
  /// Estimated output cardinality (< 0 = not applicable).
  double est_tuples = -1;
  std::vector<PlanNode> children;
};

/// Renders the plan tree, indenting children, e.g.:
///
///   select Aheap10000 (file scan over 8 sites)
///     predicate: unique1 in [0, 99]
///     estimated: 1.23 s, 100 tuples
///
std::string RenderPlan(const PlanNode& root);

/// RenderPlan plus an "actual:" footer from the measured QueryResult, so
/// EXPLAIN output shows estimated cost alongside actuals.
std::string RenderPlanWithActuals(const PlanNode& root,
                                  const exec::QueryResult& result);

}  // namespace gammadb::opt

#endif  // GAMMA_OPT_EXPLAIN_H_
