#ifndef GAMMA_OPT_PLANNER_H_
#define GAMMA_OPT_PLANNER_H_

#include <string>

#include "common/result.h"
#include "gamma/machine.h"
#include "gamma/query.h"
#include "opt/cost_model.h"
#include "opt/explain.h"
#include "opt/statistics.h"

namespace gammadb::opt {

/// The cost-model view of a machine's configuration.
MachineShape ShapeFromConfig(const gamma::GammaConfig& config);

struct PlannedSelect {
  /// The input query with `access` pinned to the chosen path.
  gamma::SelectQuery query;
  SelectEstimate estimate;
  PlanNode plan;
};

struct PlannedJoin {
  /// The input query with `mode`, `algorithm` and `expected_build_tuples`
  /// filled in by the planner.
  gamma::JoinQuery query;
  JoinEstimate estimate;
  PlanNode plan;
};

struct PlannedAggregate {
  gamma::AggregateQuery query;
  double est_seconds = 0;
  PlanNode plan;
};

/// \brief Cost-based plan selection over catalog statistics.
///
/// Enumerates the machine's physical alternatives — access path (heap scan /
/// clustered B-tree / non-clustered B-tree) for selections; join algorithm
/// (simple hash / hybrid hash / sort-merge) × join site (Local / Remote /
/// Allnodes) for joins — costs each candidate with the CostModel and picks
/// the cheapest. A query arriving with a forced access path / mode is
/// respected (only its estimate is computed), so EXPLAIN works for forced
/// plans too.
class Planner {
 public:
  Planner(MachineShape shape, const catalog::Catalog* catalog,
          const StatisticsCatalog* stats)
      : model_(shape), catalog_(catalog), stats_(stats) {}

  /// Convenience: plan against a live machine's catalog and statistics.
  explicit Planner(const gamma::GammaMachine& machine)
      : Planner(ShapeFromConfig(machine.config()), &machine.catalog(),
                &machine.stats()) {}

  Result<PlannedSelect> PlanSelect(gamma::SelectQuery query) const;
  Result<PlannedJoin> PlanJoin(gamma::JoinQuery query) const;
  Result<PlannedAggregate> PlanAggregate(gamma::AggregateQuery query) const;

  const CostModel& model() const { return model_; }

 private:
  CostModel model_;
  const catalog::Catalog* catalog_;
  const StatisticsCatalog* stats_;
};

/// Human-readable form of a predicate under a schema, e.g.
/// "unique1 in [0, 99] and ten = 3" ("true" for the match-all predicate).
std::string DescribePredicate(const exec::Predicate& pred,
                              const catalog::Schema& schema);

const char* AccessPathName(gamma::AccessPath path);
const char* JoinModeName(gamma::JoinMode mode);
const char* JoinAlgorithmName(gamma::JoinAlgorithm algorithm);

}  // namespace gammadb::opt

#endif  // GAMMA_OPT_PLANNER_H_
