#include "opt/statistics.h"

#include <algorithm>
#include <cmath>

namespace gammadb::opt {

namespace {

/// 64-bit finalizer (splitmix64); decorrelates consecutive keys so the
/// linear-counting bitmap fills uniformly.
uint64_t MixHash(int32_t value) {
  uint64_t x = static_cast<uint64_t>(static_cast<uint32_t>(value));
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

DistinctSketch::DistinctSketch(uint64_t expected) {
  // ~4 bits per expected distinct value keeps the zero fraction comfortably
  // away from saturation; 4096 bits minimum keeps tiny relations exact.
  uint64_t bits = std::max<uint64_t>(4096, 4 * expected);
  // Round up to a whole number of 64-bit words.
  const uint64_t words = (bits + 63) / 64;
  words_.assign(words, 0);
  bit_count_ = words * 64;
}

void DistinctSketch::Insert(int32_t value) {
  if (bit_count_ == 0) {
    // Un-sized sketch (incrementally created relation): start small.
    *this = DistinctSketch(1024);
  }
  const uint64_t bit = MixHash(value) % bit_count_;
  uint64_t& word = words_[bit / 64];
  const uint64_t mask = 1ull << (bit % 64);
  if ((word & mask) == 0) {
    word |= mask;
    ++set_bits_;
  }
}

double DistinctSketch::Estimate(double fallback) const {
  if (bit_count_ == 0 || set_bits_ == 0) return 0;
  if (set_bits_ >= bit_count_) return fallback;
  const double m = static_cast<double>(bit_count_);
  const double zero_fraction = (m - static_cast<double>(set_bits_)) / m;
  return -m * std::log(zero_fraction);
}

void FrequencySketch::Insert(int32_t value) {
  if (tick_++ % kSampleEvery != 0) return;
  ++sampled_;
  Entry* min_entry = nullptr;
  for (Entry& e : entries_) {
    if (e.value == value) {
      e.count += 1;
      return;
    }
    if (min_entry == nullptr || e.count < min_entry->count) min_entry = &e;
  }
  if (entries_.size() < kCapacity) {
    entries_.push_back(Entry{value, 1, 0});
    return;
  }
  // Space-saving takeover: the new value inherits the minimum counter and
  // records it as its error bound.
  min_entry->value = value;
  min_entry->error = min_entry->count;
  min_entry->count += 1;
}

double FrequencySketch::TopShare() const {
  if (sampled_ == 0) return 0;
  uint64_t best = 0;
  for (const Entry& e : entries_) {
    best = std::max(best, e.count - e.error);
  }
  return static_cast<double>(best) / static_cast<double>(sampled_);
}

double PredictHashImbalance(const AttrStats& attr, size_t nsites) {
  if (nsites <= 1) return 1.0;
  const double f = std::clamp(attr.freq.TopShare(), 0.0, 1.0);
  return 1.0 + f * static_cast<double>(nsites - 1);
}

double AttrStats::DistinctEstimate(double cardinality) const {
  if (!has_values || cardinality <= 0) return 1;
  const double estimate = sketch.Estimate(cardinality);
  return std::clamp(estimate, 1.0, cardinality);
}

void StatisticsCatalog::OnLoad(
    const std::string& relation, const catalog::Schema& schema,
    const std::vector<std::vector<uint8_t>>& tuples,
    const catalog::PartitionSpec& partitioning) {
  RelationStats& stats = Ensure(relation, schema);
  stats.hash_partitioned =
      partitioning.strategy == catalog::PartitionStrategy::kHashed;
  stats.range_partitioned =
      partitioning.strategy == catalog::PartitionStrategy::kRangeUser ||
      partitioning.strategy == catalog::PartitionStrategy::kRangeUniform;
  stats.partition_attr =
      (stats.hash_partitioned || stats.range_partitioned)
          ? partitioning.key_attr
          : -1;
  // Size the sketches once, from the first (bulk) load.
  for (size_t a = 0; a < schema.num_attrs(); ++a) {
    if (schema.attr(a).type != catalog::AttrType::kInt32) continue;
    AttrStats& as = stats.attrs[a];
    if (!as.has_values) as.sketch = DistinctSketch(tuples.size());
  }
  for (const std::vector<uint8_t>& tuple : tuples) {
    Absorb(stats, schema, tuple);
  }
  stats.cardinality += static_cast<double>(tuples.size());
}

void StatisticsCatalog::OnIndexBuilt(const std::string& relation, int attr,
                                     bool clustered) {
  auto it = relations_.find(relation);
  if (it == relations_.end()) return;
  if (it->second.FindIndex(attr, clustered) != nullptr) return;
  it->second.indexes.push_back(IndexStats{attr, clustered});
}

void StatisticsCatalog::OnAppend(const std::string& relation,
                                 const catalog::Schema& schema,
                                 std::span<const uint8_t> tuple) {
  RelationStats& stats = Ensure(relation, schema);
  Absorb(stats, schema, tuple);
  stats.cardinality += 1;
}

void StatisticsCatalog::OnDelete(const std::string& relation,
                                 uint64_t deleted) {
  auto it = relations_.find(relation);
  if (it == relations_.end()) return;
  it->second.cardinality =
      std::max(0.0, it->second.cardinality - static_cast<double>(deleted));
}

void StatisticsCatalog::OnModify(const std::string& relation,
                                 const catalog::Schema& schema, int attr,
                                 int32_t new_value) {
  RelationStats& stats = Ensure(relation, schema);
  if (attr < 0 || static_cast<size_t>(attr) >= stats.attrs.size()) return;
  if (schema.attr(static_cast<size_t>(attr)).type !=
      catalog::AttrType::kInt32) {
    return;
  }
  AttrStats& as = stats.attrs[static_cast<size_t>(attr)];
  as.min = std::min(as.min, new_value);
  as.max = std::max(as.max, new_value);
  as.sketch.Insert(new_value);
  as.freq.Insert(new_value);
  as.has_values = true;
}

void StatisticsCatalog::SetResultCardinality(const std::string& relation,
                                             const catalog::Schema& schema,
                                             double cardinality) {
  RelationStats& stats = Ensure(relation, schema);
  stats.cardinality = cardinality;
}

void StatisticsCatalog::Recompute(
    const std::string& relation, const catalog::Schema& schema,
    const std::vector<std::vector<uint8_t>>& tuples) {
  auto it = relations_.find(relation);
  RelationStats fresh;
  if (it != relations_.end()) {
    // Keep structural facts; rebuild the data-dependent ones.
    fresh.partition_attr = it->second.partition_attr;
    fresh.hash_partitioned = it->second.hash_partitioned;
    fresh.range_partitioned = it->second.range_partitioned;
    fresh.indexes = it->second.indexes;
  }
  fresh.attrs.resize(schema.num_attrs());
  for (size_t a = 0; a < schema.num_attrs(); ++a) {
    if (schema.attr(a).type != catalog::AttrType::kInt32) continue;
    fresh.attrs[a].sketch = DistinctSketch(tuples.size());
  }
  for (const std::vector<uint8_t>& tuple : tuples) {
    Absorb(fresh, schema, tuple);
  }
  fresh.cardinality = static_cast<double>(tuples.size());
  relations_[relation] = std::move(fresh);
}

void StatisticsCatalog::Drop(const std::string& relation) {
  relations_.erase(relation);
}

const RelationStats* StatisticsCatalog::Find(
    const std::string& relation) const {
  auto it = relations_.find(relation);
  return it == relations_.end() ? nullptr : &it->second;
}

RelationStats& StatisticsCatalog::Ensure(const std::string& relation,
                                         const catalog::Schema& schema) {
  RelationStats& stats = relations_[relation];
  if (stats.attrs.size() < schema.num_attrs()) {
    stats.attrs.resize(schema.num_attrs());
  }
  return stats;
}

void StatisticsCatalog::Absorb(RelationStats& stats,
                               const catalog::Schema& schema,
                               std::span<const uint8_t> tuple) {
  const catalog::TupleView view(&schema, tuple);
  for (size_t a = 0; a < schema.num_attrs(); ++a) {
    if (schema.attr(a).type != catalog::AttrType::kInt32) continue;
    const int32_t value = view.GetInt(a);
    AttrStats& as = stats.attrs[a];
    as.min = std::min(as.min, value);
    as.max = std::max(as.max, value);
    as.sketch.Insert(value);
    as.freq.Insert(value);
    as.has_values = true;
  }
}

}  // namespace gammadb::opt
