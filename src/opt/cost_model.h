#ifndef GAMMA_OPT_COST_MODEL_H_
#define GAMMA_OPT_COST_MODEL_H_

#include <cstdint>

#include "catalog/catalog.h"
#include "common/units.h"
#include "exec/predicate.h"
#include "gamma/query.h"
#include "opt/statistics.h"
#include "sim/hardware.h"

namespace gammadb::opt {

/// The machine parameters the cost model needs: a plain-data subset of
/// GammaConfig, so the optimizer can be built and tested without a machine.
struct MachineShape {
  int num_disk_nodes = 8;
  int num_diskless_nodes = 8;
  uint32_t page_size = 4096;
  uint64_t buffer_pool_bytes = 64 * kKiB;
  uint64_t join_memory_total = 8 * kMiB;
  double host_setup_sec = 0.04;
  sim::MachineParams hw;
};

/// Estimated fraction of tuples satisfying `pred`: the product over
/// constrained attributes of the per-attribute fraction, assuming a uniform
/// distribution over [min, max] (equality uses 1 / distinct). Falls back to
/// System-R-style constants (1% equality, 10% range) when no statistics are
/// available.
double EstimateSelectivity(const exec::Predicate& pred,
                           const RelationStats* stats,
                           const catalog::Schema& schema);

/// A fully specified candidate selection plan.
struct SelectPlanSpec {
  gamma::AccessPath path = gamma::AccessPath::kFileScan;
  /// Index key attribute when `path` is an index access.
  int key_attr = -1;
  bool store_result = true;
};

struct SelectEstimate {
  double selectivity = 1;
  double output_tuples = 0;
  int participating_sites = 0;
  /// Estimated simulated response time, including scheduling overhead.
  double seconds = 0;
};

/// A fully specified candidate join plan.
struct JoinPlanSpec {
  gamma::JoinMode mode = gamma::JoinMode::kRemote;
  gamma::JoinAlgorithm algorithm = gamma::JoinAlgorithm::kSimpleHash;
};

struct JoinEstimate {
  /// Tuples reaching the join sites from each input (after selections).
  double build_tuples = 0;
  double probe_tuples = 0;
  double output_tuples = 0;
  /// The building side is expected to exceed the sites' aggregate memory.
  bool overflow = false;
  /// Estimated elapsed time of the building / probing phases (the probe
  /// phase includes storing the result).
  double build_phase_sec = 0;
  double probe_phase_sec = 0;
  double seconds = 0;
};

/// \brief Estimated simulated-time cost of candidate plans.
///
/// A miniature analytic replay of the machine's charging paths: per-phase,
/// per-node disk / CPU / network seconds (phase time is the slowest node's
/// max resource, as in sim::CostTracker's pipelined phases), split-table
/// packet and short-circuit accounting, the NIC bottleneck, hash-table
/// memory vs overflow spooling, and the scheduler's 4-messages-per-op-per-
/// node overhead. Absolute estimates track the executor closely because
/// both draw every constant from sim::MachineParams; what the planner needs
/// is that the *ordering* of candidate plans matches measured times.
class CostModel {
 public:
  explicit CostModel(MachineShape shape) : shape_(shape) {}

  const MachineShape& shape() const { return shape_; }

  SelectEstimate EstimateSelect(const catalog::RelationMeta& meta,
                                const RelationStats* stats,
                                const exec::Predicate& pred,
                                const SelectPlanSpec& plan) const;

  JoinEstimate EstimateJoin(const catalog::RelationMeta& outer,
                            const RelationStats* outer_stats,
                            const exec::Predicate& outer_pred, int outer_attr,
                            const catalog::RelationMeta& inner,
                            const RelationStats* inner_stats,
                            const exec::Predicate& inner_pred, int inner_attr,
                            const JoinPlanSpec& plan) const;

  /// Scan + accumulate estimate for aggregates (used by EXPLAIN only).
  double EstimateAggregate(const catalog::RelationMeta& meta,
                           const RelationStats* stats,
                           const exec::Predicate& pred) const;

  /// Elapsed-time estimate of a join's skew-sampling pass: every disk site
  /// reads one page in exec::kSkewSampleStride from each input fragment,
  /// hashes the sampled join keys, and reports its sample to the scheduler.
  /// Charged by the machine inside the query when bucket-map routing runs.
  double EstimateSkewSample(const catalog::RelationMeta& outer,
                            const RelationStats* outer_stats,
                            const catalog::RelationMeta& inner,
                            const RelationStats* inner_stats) const;

  /// Disk sites participating in a selection (1 for an exact match on the
  /// hashed partitioning attribute, a localized subset for a range on a
  /// range-partitioned attribute, else all).
  int ParticipatingSites(const catalog::RelationMeta& meta,
                         const RelationStats* stats,
                         const exec::Predicate& pred) const;

  /// Tuples per data page under the machine's page size.
  double TuplesPerPage(uint32_t tuple_size) const;

 private:
  MachineShape shape_;
};

}  // namespace gammadb::opt

#endif  // GAMMA_OPT_COST_MODEL_H_
