#include "opt/planner.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

namespace gammadb::opt {

namespace {

std::string FormatSec(double sec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4f s", sec);
  return buf;
}

std::string AttrName(const catalog::Schema& schema, int attr) {
  if (attr >= 0 && static_cast<size_t>(attr) < schema.num_attrs()) {
    return schema.attr(static_cast<size_t>(attr)).name;
  }
  return "attr" + std::to_string(attr);
}

}  // namespace

MachineShape ShapeFromConfig(const gamma::GammaConfig& config) {
  MachineShape shape;
  shape.num_disk_nodes = config.num_disk_nodes;
  shape.num_diskless_nodes = config.num_diskless_nodes;
  shape.page_size = config.page_size;
  shape.buffer_pool_bytes = config.buffer_pool_bytes;
  shape.join_memory_total = config.join_memory_total;
  shape.host_setup_sec = config.host_setup_sec;
  shape.hw = config.hw;
  return shape;
}

std::string DescribePredicate(const exec::Predicate& pred,
                              const catalog::Schema& schema) {
  if (pred.is_true()) return "true";
  std::string out;
  for (size_t a = 0; a < schema.num_attrs(); ++a) {
    const auto bounds = pred.BoundsOn(static_cast<int>(a));
    if (!bounds.has_value()) continue;
    if (!out.empty()) out += " and ";
    const std::string name = AttrName(schema, static_cast<int>(a));
    if (bounds->first > bounds->second) {
      out += name + " in (empty)";
    } else if (bounds->first == bounds->second) {
      out += name + " = " + std::to_string(bounds->first);
    } else {
      out += name + " in [" + std::to_string(bounds->first) + ", " +
             std::to_string(bounds->second) + "]";
    }
  }
  return out.empty() ? "true" : out;
}

const char* AccessPathName(gamma::AccessPath path) {
  switch (path) {
    case gamma::AccessPath::kAuto:
      return "auto";
    case gamma::AccessPath::kFileScan:
      return "file scan";
    case gamma::AccessPath::kClusteredIndex:
      return "clustered index";
    case gamma::AccessPath::kNonClusteredIndex:
      return "non-clustered index";
  }
  return "?";
}

const char* JoinModeName(gamma::JoinMode mode) {
  switch (mode) {
    case gamma::JoinMode::kLocal:
      return "Local";
    case gamma::JoinMode::kRemote:
      return "Remote";
    case gamma::JoinMode::kAllnodes:
      return "Allnodes";
  }
  return "?";
}

const char* JoinAlgorithmName(gamma::JoinAlgorithm algorithm) {
  switch (algorithm) {
    case gamma::JoinAlgorithm::kSimpleHash:
      return "simple hash";
    case gamma::JoinAlgorithm::kHybridHash:
      return "hybrid hash";
    case gamma::JoinAlgorithm::kSortMerge:
      return "sort-merge";
  }
  return "?";
}

Result<PlannedSelect> Planner::PlanSelect(gamma::SelectQuery query) const {
  const catalog::RelationMeta* meta;
  GAMMA_ASSIGN_OR_RETURN(meta, catalog_->Get(query.relation));
  const RelationStats* stats = stats_->Find(query.relation);

  // Enumerate the applicable access paths.
  struct Candidate {
    SelectPlanSpec spec;
    SelectEstimate estimate;
  };
  std::vector<Candidate> candidates;
  auto consider = [&](gamma::AccessPath path, int key_attr) {
    if (query.access != gamma::AccessPath::kAuto && query.access != path) {
      return;
    }
    Candidate c;
    c.spec.path = path;
    c.spec.key_attr = key_attr;
    c.spec.store_result = query.store_result;
    c.estimate = model_.EstimateSelect(*meta, stats, query.predicate, c.spec);
    candidates.push_back(std::move(c));
  };
  consider(gamma::AccessPath::kFileScan, -1);
  for (const catalog::IndexMeta& index : meta->indices) {
    if (!query.predicate.BoundsOn(index.attr).has_value()) continue;
    consider(index.clustered ? gamma::AccessPath::kClusteredIndex
                             : gamma::AccessPath::kNonClusteredIndex,
             index.attr);
  }
  if (candidates.empty()) {
    return Status::InvalidArgument(
        "no applicable access path for the requested plan of '" +
        query.relation + "'");
  }

  size_t best = 0;
  for (size_t i = 1; i < candidates.size(); ++i) {
    if (candidates[i].estimate.seconds < candidates[best].estimate.seconds) {
      best = i;
    }
  }

  PlannedSelect planned;
  planned.query = query;
  planned.query.access = candidates[best].spec.path;
  planned.estimate = candidates[best].estimate;

  char buf[160];
  std::snprintf(buf, sizeof(buf), "select %s (%s over %d site%s)",
                query.relation.c_str(),
                AccessPathName(candidates[best].spec.path),
                planned.estimate.participating_sites,
                planned.estimate.participating_sites == 1 ? "" : "s");
  planned.plan.label = buf;
  planned.plan.details.push_back(
      "predicate: " + DescribePredicate(query.predicate, meta->schema));
  std::snprintf(buf, sizeof(buf), "selectivity: %.4f",
                planned.estimate.selectivity);
  planned.plan.details.push_back(buf);
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (i == best) continue;
    planned.plan.details.push_back(
        std::string("rejected: ") + AccessPathName(candidates[i].spec.path) +
        " (est " + FormatSec(candidates[i].estimate.seconds) + ")");
  }
  planned.plan.est_seconds = planned.estimate.seconds;
  planned.plan.est_tuples = planned.estimate.output_tuples;
  return planned;
}

Result<PlannedJoin> Planner::PlanJoin(gamma::JoinQuery query) const {
  const catalog::RelationMeta* outer;
  const catalog::RelationMeta* inner;
  GAMMA_ASSIGN_OR_RETURN(outer, catalog_->Get(query.outer));
  GAMMA_ASSIGN_OR_RETURN(inner, catalog_->Get(query.inner));
  const RelationStats* outer_stats = stats_->Find(query.outer);
  const RelationStats* inner_stats = stats_->Find(query.inner);

  struct Candidate {
    JoinPlanSpec spec;
    JoinEstimate estimate;
  };
  std::vector<Candidate> candidates;
  const gamma::JoinMode modes[] = {gamma::JoinMode::kLocal,
                                   gamma::JoinMode::kRemote,
                                   gamma::JoinMode::kAllnodes};
  // Simple first: ties (no overflow expected) resolve to Gamma's default.
  const gamma::JoinAlgorithm algorithms[] = {
      gamma::JoinAlgorithm::kSimpleHash, gamma::JoinAlgorithm::kHybridHash,
      gamma::JoinAlgorithm::kSortMerge};
  for (gamma::JoinMode mode : modes) {
    if (mode == gamma::JoinMode::kRemote &&
        model_.shape().num_diskless_nodes == 0) {
      continue;
    }
    for (gamma::JoinAlgorithm algorithm : algorithms) {
      Candidate c;
      c.spec.mode = mode;
      c.spec.algorithm = algorithm;
      c.estimate = model_.EstimateJoin(
          *outer, outer_stats, query.outer_pred, query.outer_attr, *inner,
          inner_stats, query.inner_pred, query.inner_attr, c.spec);
      candidates.push_back(std::move(c));
    }
  }

  size_t best = 0;
  for (size_t i = 1; i < candidates.size(); ++i) {
    if (candidates[i].estimate.seconds < candidates[best].estimate.seconds) {
      best = i;
    }
  }

  PlannedJoin planned;
  planned.query = query;
  planned.query.mode = candidates[best].spec.mode;
  planned.query.algorithm = candidates[best].spec.algorithm;
  planned.estimate = candidates[best].estimate;
  planned.query.expected_build_tuples = static_cast<uint64_t>(
      std::llround(std::ceil(planned.estimate.build_tuples)));

  // Redistribution routing: the frequency sketches on both join attributes
  // predict what plain hash(attr) % sites would do to the busiest site;
  // above the documented threshold the bucket-map route pays for its
  // sampling pass. A forced routing is respected (estimates still shown).
  int join_sites = model_.shape().num_disk_nodes;
  if (planned.query.mode == gamma::JoinMode::kRemote) {
    join_sites = model_.shape().num_diskless_nodes;
  } else if (planned.query.mode == gamma::JoinMode::kAllnodes) {
    join_sites += model_.shape().num_diskless_nodes;
  }
  join_sites = std::max(1, join_sites);
  auto sketch_imbalance = [&](const RelationStats* stats, int attr) {
    const AttrStats* as = stats != nullptr ? stats->Attr(attr) : nullptr;
    return as != nullptr
               ? PredictHashImbalance(*as, static_cast<size_t>(join_sites))
               : 1.0;
  };
  const double predicted =
      std::max(sketch_imbalance(outer_stats, query.outer_attr),
               sketch_imbalance(inner_stats, query.inner_attr));
  const double sample_sec =
      model_.EstimateSkewSample(*outer, outer_stats, *inner, inner_stats);
  bool bucket_map = predicted > kSkewImbalanceThreshold;
  if (query.routing != gamma::SplitRouting::kAuto) {
    bucket_map = query.routing == gamma::SplitRouting::kBucketMap;
  }
  planned.query.routing = bucket_map ? gamma::SplitRouting::kBucketMap
                                     : gamma::SplitRouting::kHash;
  if (bucket_map) planned.estimate.seconds += sample_sec;

  char buf[200];
  std::snprintf(buf, sizeof(buf), "join %s x %s on (%s = %s) [%s, %s]",
                query.outer.c_str(), query.inner.c_str(),
                AttrName(outer->schema, query.outer_attr).c_str(),
                AttrName(inner->schema, query.inner_attr).c_str(),
                JoinAlgorithmName(planned.query.algorithm),
                JoinModeName(planned.query.mode));
  planned.plan.label = buf;
  if (planned.estimate.overflow) {
    planned.plan.details.push_back(
        "building side exceeds aggregate join memory (overflow expected)");
  }
  {
    const double mean_routed =
        (planned.estimate.build_tuples + planned.estimate.probe_tuples) /
        join_sites;
    std::snprintf(buf, sizeof(buf),
                  "routing: %s (predicted hash imbalance %.2f %s threshold "
                  "%.2f%s)",
                  bucket_map ? "bucket-map" : "hash", predicted,
                  predicted > kSkewImbalanceThreshold ? ">" : "<=",
                  kSkewImbalanceThreshold,
                  query.routing != gamma::SplitRouting::kAuto ? ", forced"
                                                              : "");
    planned.plan.details.push_back(buf);
    std::snprintf(buf, sizeof(buf),
                  "est per-node routed tuples: hash max/mean %.0f/%.0f, "
                  "bucket-map ~%.0f",
                  mean_routed * predicted, mean_routed, mean_routed);
    planned.plan.details.push_back(buf);
    if (bucket_map) {
      planned.plan.details.push_back("est sampling cost: " +
                                     FormatSec(sample_sec));
    }
  }
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (i == best) continue;
    planned.plan.details.push_back(
        std::string("rejected: ") +
        JoinAlgorithmName(candidates[i].spec.algorithm) + "/" +
        JoinModeName(candidates[i].spec.mode) + " (est " +
        FormatSec(candidates[i].estimate.seconds) + ")");
  }
  planned.plan.est_seconds = planned.estimate.seconds;
  planned.plan.est_tuples = planned.estimate.output_tuples;

  PlanNode build_child;
  build_child.label = "build: scan " + query.inner + " (file scan)";
  build_child.details.push_back(
      "predicate: " + DescribePredicate(query.inner_pred, inner->schema));
  build_child.est_seconds = planned.estimate.build_phase_sec;
  build_child.est_tuples = planned.estimate.build_tuples;
  PlanNode probe_child;
  probe_child.label = "probe: scan " + query.outer + " (file scan)";
  probe_child.details.push_back(
      "predicate: " + DescribePredicate(query.outer_pred, outer->schema));
  probe_child.est_seconds = planned.estimate.probe_phase_sec;
  probe_child.est_tuples = planned.estimate.probe_tuples;
  planned.plan.children.push_back(std::move(build_child));
  planned.plan.children.push_back(std::move(probe_child));
  return planned;
}

Result<PlannedAggregate> Planner::PlanAggregate(
    gamma::AggregateQuery query) const {
  const catalog::RelationMeta* meta;
  GAMMA_ASSIGN_OR_RETURN(meta, catalog_->Get(query.relation));
  const RelationStats* stats = stats_->Find(query.relation);
  PlannedAggregate planned;
  planned.query = query;
  planned.est_seconds = model_.EstimateAggregate(*meta, stats, query.predicate);
  planned.plan.label =
      (query.group_attr >= 0 ? "aggregate by " +
                                   AttrName(meta->schema, query.group_attr) +
                                   " over "
                             : "scalar aggregate over ") +
      query.relation + " (file scan)";
  planned.plan.details.push_back(
      "predicate: " + DescribePredicate(query.predicate, meta->schema));
  planned.plan.est_seconds = planned.est_seconds;
  return planned;
}

}  // namespace gammadb::opt
