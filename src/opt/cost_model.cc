#include "opt/cost_model.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "exec/skew.h"

namespace gammadb::opt {

namespace {

/// Selectivity fallbacks when a relation has no attribute statistics
/// (result relations store only cardinality) — the System R constants.
constexpr double kFallbackEqSelectivity = 0.01;
constexpr double kFallbackRangeSelectivity = 0.10;

/// Fraction of tuples passing the single-attribute window `bounds`.
double AttrFraction(const std::pair<int32_t, int32_t>& bounds,
                    const AttrStats* as, double cardinality) {
  const double lo = bounds.first;
  const double hi = bounds.second;
  if (lo > hi) return 0;  // contradictory conjunction
  if (as == nullptr) {
    return lo == hi ? kFallbackEqSelectivity : kFallbackRangeSelectivity;
  }
  if (lo == hi) {
    return 1.0 / std::max(1.0, as->DistinctEstimate(cardinality));
  }
  const double domain = static_cast<double>(as->max) - as->min + 1;
  const double overlap =
      std::min(hi, static_cast<double>(as->max)) -
      std::max(lo, static_cast<double>(as->min)) + 1;
  if (overlap <= 0) return 0;
  return std::clamp(overlap / domain, 0.0, 1.0);
}

/// \brief One pipelined phase of the analytic replay.
///
/// Mirrors sim::CostTracker: each node accumulates disk / CPU / network
/// seconds; the phase takes as long as the slowest node's busiest resource
/// (plus any serial portion), but never less than the ring needs to carry
/// the phase's bytes.
class PhaseSim {
 public:
  PhaseSim(const MachineShape& shape, int num_nodes)
      : shape_(shape), loads_(static_cast<size_t>(num_nodes)) {}

  void DiskRead(int node, double pages, bool sequential) {
    DiskAccess(node, pages, sequential);
  }
  void DiskWrite(int node, double pages, bool sequential) {
    DiskAccess(node, pages, sequential);
  }
  void Cpu(int node, double instructions) {
    loads_[static_cast<size_t>(node)].cpu +=
        shape_.hw.cpu.InstrSec(instructions);
  }
  /// Data-packet stream of `bytes` from `src` to `dst` (split-table path:
  /// the per-tuple copy is charged separately by the caller).
  void Packets(int src, int dst, double bytes) {
    if (bytes <= 0) return;
    const auto& net = shape_.hw.net;
    const auto& cost = shape_.hw.cost;
    const double packets =
        std::ceil(bytes / static_cast<double>(net.packet_payload_bytes));
    if (src == dst) {
      Cpu(src, packets * cost.instr_per_packet_shortcircuit);
      return;
    }
    Cpu(src, packets * cost.instr_per_packet_protocol);
    Cpu(dst, packets * cost.instr_per_packet_protocol);
    const double wire = bytes / net.nic_bytes_per_sec;
    loads_[static_cast<size_t>(src)].net += wire;
    loads_[static_cast<size_t>(dst)].net += wire;
    ring_bytes_ += bytes;
  }
  /// Non-blocking control message (split-table close, completion reports).
  void ControlMessage(int src, int dst) {
    const auto& cost = shape_.hw.cost;
    if (src == dst) {
      Cpu(src, cost.instr_per_packet_shortcircuit);
      return;
    }
    const double half = shape_.hw.net.control_msg_sec / 2;
    loads_[static_cast<size_t>(src)].cpu += half;
    loads_[static_cast<size_t>(dst)].cpu += half;
  }

  double Elapsed() const {
    double elapsed = 0;
    for (const Load& load : loads_) {
      elapsed = std::max(elapsed,
                         std::max(load.disk, std::max(load.cpu, load.net)));
    }
    return std::max(elapsed,
                    ring_bytes_ / shape_.hw.net.ring_bytes_per_sec);
  }

 private:
  struct Load {
    double disk = 0;
    double cpu = 0;
    double net = 0;
  };

  void DiskAccess(int node, double pages, bool sequential) {
    if (pages <= 0) return;
    Load& load = loads_[static_cast<size_t>(node)];
    load.disk +=
        pages * shape_.hw.disk.AccessSec(shape_.page_size, sequential);
    load.cpu += pages * shape_.hw.cpu.InstrSec(shape_.hw.cost.instr_per_page_io);
  }

  const MachineShape& shape_;
  std::vector<Load> loads_;
  double ring_bytes_ = 0;
};

/// Estimated B-tree height for `entries` keys (fanout from the page size;
/// entries are key + rid + slot overhead, ~16 bytes).
double IndexHeight(double entries, uint32_t page_size) {
  const double fanout = std::max(2.0, page_size / 16.0);
  if (entries <= 1) return 1;
  return std::max(1.0, std::ceil(std::log(entries) / std::log(fanout)));
}

/// Fraction of tuples a split table delivers on-node (short-circuited), for
/// one input side of a join. `aligned` = the split table reuses the load
/// salt AND this relation is hash-declustered on its join attribute, so a
/// tuple's join destination is a function of its home node.
double ShortCircuitFraction(gamma::JoinMode mode, bool aligned,
                            int join_sites) {
  switch (mode) {
    case gamma::JoinMode::kLocal:
      return aligned ? 1.0 : 1.0 / std::max(1, join_sites);
    case gamma::JoinMode::kAllnodes:
      // Reused salt: dest = H % 2n, home = H % n — equal with prob 1/2.
      return aligned ? 0.5 : 1.0 / std::max(1, join_sites);
    case gamma::JoinMode::kRemote:
      return 0;
  }
  return 0;
}

}  // namespace

double EstimateSelectivity(const exec::Predicate& pred,
                           const RelationStats* stats,
                           const catalog::Schema& schema) {
  if (pred.is_true()) return 1;
  const double cardinality = stats != nullptr ? stats->cardinality : 0;
  double selectivity = 1;
  for (size_t a = 0; a < schema.num_attrs(); ++a) {
    const auto bounds = pred.BoundsOn(static_cast<int>(a));
    if (!bounds.has_value()) continue;
    const AttrStats* as =
        stats != nullptr ? stats->Attr(static_cast<int>(a)) : nullptr;
    selectivity *= AttrFraction(*bounds, as, cardinality);
  }
  return std::clamp(selectivity, 0.0, 1.0);
}

double CostModel::TuplesPerPage(uint32_t tuple_size) const {
  // Mirrors storage::Page: 8-byte header, 4-byte slot per tuple.
  const double per_page = (shape_.page_size - 8.0) / (tuple_size + 4.0);
  return std::max(1.0, std::floor(per_page));
}

int CostModel::ParticipatingSites(const catalog::RelationMeta& meta,
                                  const RelationStats* stats,
                                  const exec::Predicate& pred) const {
  const int n = shape_.num_disk_nodes;
  const catalog::PartitionSpec& spec = meta.partitioning;
  const auto bounds = pred.BoundsOn(spec.key_attr);
  if (!bounds.has_value()) return n;
  if (spec.strategy == catalog::PartitionStrategy::kHashed) {
    return bounds->first == bounds->second ? 1 : n;
  }
  if (spec.strategy == catalog::PartitionStrategy::kRangeUser ||
      spec.strategy == catalog::PartitionStrategy::kRangeUniform) {
    const AttrStats* as =
        stats != nullptr ? stats->Attr(spec.key_attr) : nullptr;
    const double cardinality =
        stats != nullptr ? stats->cardinality
                         : static_cast<double>(meta.num_tuples);
    const double fraction = AttrFraction(*bounds, as, cardinality);
    return std::clamp(static_cast<int>(std::ceil(fraction * n)), 1, n);
  }
  return n;
}

SelectEstimate CostModel::EstimateSelect(const catalog::RelationMeta& meta,
                                         const RelationStats* stats,
                                         const exec::Predicate& pred,
                                         const SelectPlanSpec& plan) const {
  SelectEstimate est;
  const catalog::Schema& schema = meta.schema;
  const double cardinality = stats != nullptr
                                 ? stats->cardinality
                                 : static_cast<double>(meta.num_tuples);
  est.selectivity = EstimateSelectivity(pred, stats, schema);
  est.output_tuples = est.selectivity * cardinality;

  const int n = shape_.num_disk_nodes;
  const int sites = ParticipatingSites(meta, stats, pred);
  est.participating_sites = sites;
  const double tpp = TuplesPerPage(schema.tuple_size());
  const double frag_tuples = cardinality / std::max(1, n);
  const double frag_pages = std::ceil(frag_tuples / tpp);
  const double matches_per_site = est.output_tuples / std::max(1, sites);

  const auto& cost = shape_.hw.cost;
  const auto& net = shape_.hw.net;
  const int scheduler = shape_.num_disk_nodes + shape_.num_diskless_nodes;
  const int host = scheduler + 1;
  PhaseSim phase(shape_, host + 1);

  // Store destinations: the single source for a one-site selection, all
  // disk nodes otherwise; the host when the result is returned instead.
  const int stores = plan.store_result ? (sites == 1 ? 1 : n) : 1;

  for (int s = 0; s < sites; ++s) {
    double examined = 0;
    switch (plan.path) {
      case gamma::AccessPath::kAuto:
      case gamma::AccessPath::kFileScan: {
        phase.DiskRead(s, frag_pages, /*sequential=*/true);
        examined = frag_tuples;
        break;
      }
      case gamma::AccessPath::kClusteredIndex: {
        const double height = IndexHeight(frag_tuples, shape_.page_size);
        phase.DiskRead(s, height, /*sequential=*/false);
        phase.Cpu(s, height * cost.instr_per_btree_level);
        phase.DiskRead(s, std::ceil(matches_per_site / tpp),
                       /*sequential=*/true);
        examined = matches_per_site;
        break;
      }
      case gamma::AccessPath::kNonClusteredIndex: {
        const double height = IndexHeight(frag_tuples, shape_.page_size);
        phase.DiskRead(s, height, /*sequential=*/false);
        phase.Cpu(s, height * cost.instr_per_btree_level);
        // Leaf walk over the qualifying entries (dense keyed leaves).
        const double leaf_cap = std::max(2.0, shape_.page_size / 16.0);
        phase.DiskRead(s, std::ceil(matches_per_site / leaf_cap),
                       /*sequential=*/true);
        // Each qualifying rid is a random data-page fetch; the small
        // buffer pool means almost every fetch misses.
        const double pool_pages = static_cast<double>(
            shape_.buffer_pool_bytes / shape_.page_size);
        const double hit =
            frag_pages > 0 ? std::min(1.0, pool_pages / frag_pages) : 1.0;
        phase.DiskRead(s, matches_per_site * (1.0 - hit),
                       /*sequential=*/false);
        phase.Cpu(s, matches_per_site * hit * cost.instr_per_page_hit);
        examined = matches_per_site;
        break;
      }
    }
    phase.Cpu(s, examined * (cost.instr_per_tuple_scan +
                             pred.compare_count() * cost.instr_per_attr_compare));

    // Split the matches to the destinations (round-robin — no hash CPU).
    if (plan.store_result) {
      const double per_dest = matches_per_site / stores;
      for (int d = 0; d < stores; ++d) {
        const int dest = sites == 1 ? s : d;
        if (dest == s) {
          phase.Cpu(s, per_dest * cost.instr_per_tuple_local_handoff);
        } else {
          phase.Cpu(s, per_dest * cost.instr_per_tuple_copy);
          phase.Packets(s, dest, per_dest * schema.tuple_size());
        }
        phase.ControlMessage(s, dest);  // split-table close
      }
    } else {
      phase.Cpu(s, matches_per_site * cost.instr_per_tuple_copy);
      phase.Packets(s, host, matches_per_site * schema.tuple_size());
      phase.ControlMessage(s, host);
    }
    phase.ControlMessage(s, scheduler);  // operator-complete report
  }

  if (plan.store_result) {
    const double per_store = est.output_tuples / stores;
    for (int d = 0; d < stores; ++d) {
      const int dest = sites == 1 ? 0 : d;
      phase.Cpu(dest, per_store * cost.instr_per_tuple_store);
      phase.DiskWrite(dest, std::ceil(per_store / tpp), /*sequential=*/true);
    }
  }

  const double sched_msgs =
      static_cast<double>(sites + stores) * net.sched_msgs_per_operator_per_node;
  est.seconds = shape_.host_setup_sec + sched_msgs * net.control_msg_sec +
                phase.Elapsed();
  return est;
}

JoinEstimate CostModel::EstimateJoin(
    const catalog::RelationMeta& outer, const RelationStats* outer_stats,
    const exec::Predicate& outer_pred, int outer_attr,
    const catalog::RelationMeta& inner, const RelationStats* inner_stats,
    const exec::Predicate& inner_pred, int inner_attr,
    const JoinPlanSpec& plan) const {
  JoinEstimate est;
  const int n = shape_.num_disk_nodes;
  const int diskless = shape_.num_diskless_nodes;
  const auto& cost = shape_.hw.cost;
  const auto& net = shape_.hw.net;
  const int scheduler = n + diskless;
  const int num_nodes = scheduler + 2;  // + scheduler + host

  // Join-site set per §6.
  std::vector<int> join_sites;
  switch (plan.mode) {
    case gamma::JoinMode::kLocal:
      for (int i = 0; i < n; ++i) join_sites.push_back(i);
      break;
    case gamma::JoinMode::kRemote:
      for (int i = 0; i < diskless; ++i) join_sites.push_back(n + i);
      if (join_sites.empty()) join_sites.push_back(0);  // degenerate config
      break;
    case gamma::JoinMode::kAllnodes:
      for (int i = 0; i < n + diskless; ++i) join_sites.push_back(i);
      break;
  }
  const int num_sites = static_cast<int>(join_sites.size());

  const double outer_card = outer_stats != nullptr
                                ? outer_stats->cardinality
                                : static_cast<double>(outer.num_tuples);
  const double inner_card = inner_stats != nullptr
                                ? inner_stats->cardinality
                                : static_cast<double>(inner.num_tuples);
  const double outer_sel =
      EstimateSelectivity(outer_pred, outer_stats, outer.schema);
  const double inner_sel =
      EstimateSelectivity(inner_pred, inner_stats, inner.schema);
  est.probe_tuples = outer_sel * outer_card;
  est.build_tuples = inner_sel * inner_card;

  // Equijoin output: |B||P| / max(d_B, d_P) with the distinct counts capped
  // by the post-selection input sizes.
  auto distinct_of = [](const RelationStats* stats, int attr, double input) {
    if (stats == nullptr) return std::max(1.0, input);
    const AttrStats* as = stats->Attr(attr);
    if (as == nullptr) return std::max(1.0, input);
    return std::clamp(as->DistinctEstimate(stats->cardinality), 1.0,
                      std::max(1.0, input));
  };
  const double d_build = distinct_of(inner_stats, inner_attr, est.build_tuples);
  const double d_probe = distinct_of(outer_stats, outer_attr, est.probe_tuples);
  est.output_tuples = est.build_tuples * est.probe_tuples /
                      std::max(1.0, std::max(d_build, d_probe));

  // Split-table alignment: the machine reuses the load salt when either
  // input is hash-declustered on its join attribute, making that side's
  // routing a function of its home node.
  auto hashed_on = [](const catalog::RelationMeta& meta, int attr) {
    return meta.partitioning.strategy == catalog::PartitionStrategy::kHashed &&
           meta.partitioning.key_attr == attr;
  };
  const bool salt_reuse =
      hashed_on(inner, inner_attr) || hashed_on(outer, outer_attr);
  const double sc_build = ShortCircuitFraction(
      plan.mode, salt_reuse && hashed_on(inner, inner_attr), num_sites);
  const double sc_probe = ShortCircuitFraction(
      plan.mode, salt_reuse && hashed_on(outer, outer_attr), num_sites);

  const double tpp_inner = TuplesPerPage(inner.schema.tuple_size());
  const double tpp_outer = TuplesPerPage(outer.schema.tuple_size());
  const catalog::Schema result_schema =
      catalog::Schema::Concat(inner.schema, outer.schema);
  const double tpp_result = TuplesPerPage(result_schema.tuple_size());

  // Memory: does a site's share of the building side fit its hash table?
  const double site_capacity =
      static_cast<double>(shape_.join_memory_total) / num_sites;
  const double build_bytes_site =
      est.build_tuples / num_sites * (inner.schema.tuple_size() + 16.0);
  const double resident =
      build_bytes_site > 0
          ? std::min(1.0, site_capacity / build_bytes_site)
          : 1.0;
  est.overflow = resident < 1.0 &&
                 plan.algorithm != gamma::JoinAlgorithm::kSortMerge;

  const bool sort_merge = plan.algorithm == gamma::JoinAlgorithm::kSortMerge;
  double total = 0;

  // One streaming phase per input: scan at the disk nodes, split to the
  // join sites, build (or spool) there.
  struct Side {
    const catalog::RelationMeta* meta;
    const exec::Predicate* pred;
    double input;     // tuples scanned per the whole relation
    double emitted;   // tuples reaching the join sites
    double tpp;
    double sc;        // short-circuit fraction
    double site_cpu_instr;  // per arriving tuple at the join site
  };
  const Side sides[2] = {
      {&inner, &inner_pred, inner_card, est.build_tuples, tpp_inner, sc_build,
       sort_merge ? cost.instr_per_tuple_copy : cost.instr_per_tuple_build},
      {&outer, &outer_pred, outer_card, est.probe_tuples, tpp_outer, sc_probe,
       sort_merge ? cost.instr_per_tuple_copy : cost.instr_per_tuple_probe},
  };

  for (int side_ix = 0; side_ix < 2; ++side_ix) {
    const Side& side = sides[side_ix];
    PhaseSim phase(shape_, num_nodes);
    const double frag_tuples = side.input / std::max(1, n);
    const double frag_pages = std::ceil(frag_tuples / side.tpp);
    const double emitted_site = side.emitted / std::max(1, n);
    const uint32_t tuple_size = side.meta->schema.tuple_size();
    for (int s = 0; s < n; ++s) {
      phase.DiskRead(s, frag_pages, /*sequential=*/true);
      phase.Cpu(s, frag_tuples *
                       (cost.instr_per_tuple_scan +
                        side.pred->compare_count() * cost.instr_per_attr_compare));
      // Hash split to the join sites.
      phase.Cpu(s, emitted_site * cost.instr_per_tuple_hash);
      phase.Cpu(s, emitted_site * side.sc * cost.instr_per_tuple_local_handoff);
      phase.Cpu(s, emitted_site * (1 - side.sc) * cost.instr_per_tuple_copy);
      const double remote_bytes = emitted_site * (1 - side.sc) * tuple_size;
      for (int j = 0; j < num_sites; ++j) {
        const int site = join_sites[static_cast<size_t>(j)];
        if (site != s) phase.Packets(s, site, remote_bytes / num_sites);
        phase.ControlMessage(s, site);
      }
      phase.ControlMessage(s, scheduler);
    }
    // Arrival work at the join sites.
    const double arriving = side.emitted / num_sites;
    for (int j = 0; j < num_sites; ++j) {
      const int site = join_sites[static_cast<size_t>(j)];
      phase.Cpu(site, arriving * side.site_cpu_instr);
      if (sort_merge) {
        // Spool to a site-local file for the sort.
        phase.DiskWrite(site, std::ceil(arriving / side.tpp),
                        /*sequential=*/true);
      } else if (resident < 1.0) {
        // Hash joins spool the non-resident fraction while the stream is
        // still flowing: each spooled tuple is copied into a site-local
        // heap file (copy + buffer pin), and the filled pages go to disk.
        // At a site that is also a disk node this work lands on top of the
        // base-relation scan — the contention that makes Allnodes lose to
        // Remote under overflow.
        phase.Cpu(site, arriving * (1.0 - resident) *
                            (cost.instr_per_tuple_copy +
                             cost.instr_per_page_hit));
        phase.DiskWrite(site,
                        std::ceil(arriving * (1.0 - resident) / side.tpp),
                        /*sequential=*/true);
      }
      phase.ControlMessage(site, scheduler);
    }
    // The probe phase also carries the result stream to the store nodes.
    // Under overflow only the resident fraction of the matches is found
    // while the stream flows; the spooled matches emit during resolution.
    if (side_ix == 1 && !sort_merge) {
      const double emit_frac = resident < 1.0 ? resident : 1.0;
      const double out_site = est.output_tuples / num_sites * emit_frac;
      for (int j = 0; j < num_sites; ++j) {
        const int site = join_sites[static_cast<size_t>(j)];
        phase.Cpu(site, out_site * cost.instr_per_tuple_copy);  // match emit
        const double to_store = out_site / std::max(1, n);
        for (int d = 0; d < n; ++d) {
          if (d == site) {
            phase.Cpu(site, to_store * cost.instr_per_tuple_local_handoff);
          } else {
            phase.Cpu(site, to_store * cost.instr_per_tuple_copy);
            phase.Packets(site, d, to_store * result_schema.tuple_size());
          }
        }
      }
      const double per_store =
          est.output_tuples * emit_frac / std::max(1, n);
      for (int d = 0; d < n; ++d) {
        phase.Cpu(d, per_store * cost.instr_per_tuple_store);
        phase.DiskWrite(d, std::ceil(per_store / tpp_result),
                        /*sequential=*/true);
      }
    }
    const double elapsed = phase.Elapsed();
    (side_ix == 0 ? est.build_phase_sec : est.probe_phase_sec) = elapsed;
    total += elapsed;
  }

  // Overflow / sort resolution phase.
  if (sort_merge) {
    PhaseSim phase(shape_, num_nodes);
    const double mem_pages =
        std::max(2.0, site_capacity / shape_.page_size);
    for (int j = 0; j < num_sites; ++j) {
      const int site = join_sites[static_cast<size_t>(j)];
      for (const Side& side : sides) {
        const double tuples = side.emitted / num_sites;
        const double pages = std::ceil(tuples / side.tpp);
        // Run formation: read + write everything once.
        phase.DiskRead(site, pages, /*sequential=*/true);
        phase.DiskWrite(site, pages, /*sequential=*/true);
        phase.Cpu(site, tuples * std::log2(std::max(2.0, tuples)) *
                            cost.instr_per_sort_compare);
        const double runs = std::ceil(pages / mem_pages);
        if (runs > 1) {
          const double passes = std::ceil(std::log(runs) /
                                          std::log(std::max(2.0, mem_pages)));
          phase.DiskRead(site, passes * pages, /*sequential=*/true);
          phase.DiskWrite(site, passes * pages, /*sequential=*/true);
          phase.Cpu(site, passes * tuples * cost.instr_per_sort_compare);
        }
        // Merge-join re-reads the sorted file.
        phase.DiskRead(site, pages, /*sequential=*/true);
        phase.Cpu(site, tuples * (cost.instr_per_tuple_scan +
                                  cost.instr_per_sort_compare));
      }
      // Result stream to the stores (as in the hash probe phase).
      const double out_site = est.output_tuples / num_sites;
      const double to_store = out_site / std::max(1, n);
      for (int d = 0; d < n; ++d) {
        if (d == site) {
          phase.Cpu(site, to_store * cost.instr_per_tuple_local_handoff);
        } else {
          phase.Cpu(site, to_store * cost.instr_per_tuple_copy);
          phase.Packets(site, d, to_store * result_schema.tuple_size());
        }
      }
    }
    const double per_store = est.output_tuples / std::max(1, n);
    for (int d = 0; d < n; ++d) {
      phase.Cpu(d, per_store * cost.instr_per_tuple_store);
      phase.DiskWrite(d, std::ceil(per_store / tpp_result),
                      /*sequential=*/true);
    }
    total += phase.Elapsed();
  } else if (resident < 1.0) {
    // Spooled fraction re-processed: Hybrid writes and reads each
    // non-resident bucket once; the Simple join re-splits repeatedly
    // (geometric escalation, ~1/resident total passes over the data).
    const double spool_factor =
        plan.algorithm == gamma::JoinAlgorithm::kHybridHash
            ? 1.0 - resident
            : std::min(16.0, 1.0 / resident - 1.0);
    PhaseSim phase(shape_, num_nodes);
    for (int j = 0; j < num_sites; ++j) {
      const int site = join_sites[static_cast<size_t>(j)];
      const double build_site = est.build_tuples / num_sites * spool_factor;
      const double probe_site = est.probe_tuples / num_sites * spool_factor;
      const double pages =
          std::ceil(build_site / tpp_inner) + std::ceil(probe_site / tpp_outer);
      // The initial spool writes were charged inside the streaming phases;
      // Hybrid only reads each bucket back, while the Simple join keeps
      // writing fresh spools on every redistribution round.
      if (plan.algorithm == gamma::JoinAlgorithm::kSimpleHash) {
        phase.DiskWrite(site, pages, /*sequential=*/true);
        // Each redistribution round copies the overflow into a fresh spool;
        // Hybrid paid its single spool copy back in the streaming phases.
        phase.Cpu(site,
                  (build_site + probe_site) * cost.instr_per_tuple_copy);
      }
      phase.DiskRead(site, pages, /*sequential=*/true);
      phase.Cpu(site, build_site * cost.instr_per_tuple_build +
                          probe_site * cost.instr_per_tuple_probe);
      // Matches among the spooled tuples emit here, and the result stream
      // to the store nodes runs alongside the bucket re-reads.
      const double out_res =
          est.output_tuples / num_sites * (1.0 - resident);
      phase.Cpu(site, out_res * cost.instr_per_tuple_copy);  // match emit
      const double to_store = out_res / std::max(1, n);
      for (int d = 0; d < n; ++d) {
        if (d == site) {
          phase.Cpu(site, to_store * cost.instr_per_tuple_local_handoff);
        } else {
          phase.Cpu(site, to_store * cost.instr_per_tuple_copy);
          phase.Packets(site, d, to_store * result_schema.tuple_size());
        }
      }
      if (plan.algorithm == gamma::JoinAlgorithm::kSimpleHash) {
        // Each pass re-hashes and redistributes across the sites.
        const double moved = build_site + probe_site;
        phase.Cpu(site, moved * cost.instr_per_tuple_hash);
        phase.Cpu(site, moved * cost.instr_per_tuple_copy);
        const double remote_bytes = moved * (1.0 - 1.0 / num_sites) *
                                    inner.schema.tuple_size();
        for (int k = 0; k < num_sites; ++k) {
          const int other = join_sites[static_cast<size_t>(k)];
          if (other != site) {
            phase.Packets(site, other, remote_bytes / num_sites);
          }
        }
      }
    }
    const double per_store =
        est.output_tuples * (1.0 - resident) / std::max(1, n);
    for (int d = 0; d < n; ++d) {
      phase.Cpu(d, per_store * cost.instr_per_tuple_store);
      phase.DiskWrite(d, std::ceil(per_store / tpp_result),
                      /*sequential=*/true);
    }
    total += phase.Elapsed();
  }

  // Final flush / close control messages — one small serial tail.
  total += net.control_msg_sec;

  const double sched_msgs =
      static_cast<double>(2 * n + 2 * num_sites + n) *
      net.sched_msgs_per_operator_per_node;
  est.seconds =
      shape_.host_setup_sec + sched_msgs * net.control_msg_sec + total;
  return est;
}

double CostModel::EstimateAggregate(const catalog::RelationMeta& meta,
                                    const RelationStats* stats,
                                    const exec::Predicate& pred) const {
  const auto& cost = shape_.hw.cost;
  const auto& net = shape_.hw.net;
  const int n = shape_.num_disk_nodes;
  const double cardinality = stats != nullptr
                                 ? stats->cardinality
                                 : static_cast<double>(meta.num_tuples);
  const double tpp = TuplesPerPage(meta.schema.tuple_size());
  const double frag_tuples = cardinality / std::max(1, n);
  PhaseSim phase(shape_, n + 2);
  for (int s = 0; s < n; ++s) {
    phase.DiskRead(s, std::ceil(frag_tuples / tpp), /*sequential=*/true);
    phase.Cpu(s, frag_tuples *
                     (cost.instr_per_tuple_scan +
                      pred.compare_count() * cost.instr_per_attr_compare +
                      cost.instr_per_tuple_agg));
  }
  const double sched_msgs =
      static_cast<double>(2 * n) * net.sched_msgs_per_operator_per_node;
  return shape_.host_setup_sec + sched_msgs * net.control_msg_sec +
         phase.Elapsed() + net.control_msg_sec;
}

double CostModel::EstimateSkewSample(const catalog::RelationMeta& outer,
                                     const RelationStats* outer_stats,
                                     const catalog::RelationMeta& inner,
                                     const RelationStats* inner_stats) const {
  const auto& cost = shape_.hw.cost;
  const int n = std::max(1, shape_.num_disk_nodes);
  // Node n stands in for the scheduler receiving the per-fragment reports.
  PhaseSim phase(shape_, n + 1);
  auto sample_side = [&](const catalog::RelationMeta& meta,
                         const RelationStats* stats) {
    const double cardinality = stats != nullptr
                                   ? stats->cardinality
                                   : static_cast<double>(meta.num_tuples);
    const double tpp = TuplesPerPage(meta.schema.tuple_size());
    const double frag_pages = std::ceil(cardinality / n / tpp);
    const double sampled =
        std::ceil(frag_pages / static_cast<double>(exec::kSkewSampleStride));
    for (int s = 0; s < n; ++s) {
      phase.DiskRead(s, sampled, /*sequential=*/true);
      phase.Cpu(s, sampled * tpp *
                       (cost.instr_per_tuple_scan + cost.instr_per_tuple_hash));
      phase.ControlMessage(s, n);
    }
  };
  sample_side(outer, outer_stats);
  sample_side(inner, inner_stats);
  return phase.Elapsed();
}

}  // namespace gammadb::opt
