#ifndef GAMMA_OPT_STATISTICS_H_
#define GAMMA_OPT_STATISTICS_H_

#include <cstdint>
#include <limits>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/schema.h"

namespace gammadb::opt {

/// \brief Linear-counting distinct-value sketch.
///
/// A bitmap sized at bulk-load time (~4 bits per expected row); each value
/// hashes to one bit. With `z` the fraction of zero bits over `m` bits the
/// distinct estimate is `-m * ln(z)` [Whang et al. 1990]. Deletions are not
/// supported (the estimate only grows); StatisticsCatalog::Recompute rebuilds
/// the sketch from a fresh scan when drift matters (e.g. after failover
/// recovery).
class DistinctSketch {
 public:
  DistinctSketch() = default;
  /// Sizes the bitmap for roughly `expected` distinct values.
  explicit DistinctSketch(uint64_t expected);

  void Insert(int32_t value);
  /// Linear-counting estimate; when the bitmap is fully saturated returns
  /// `fallback` (the caller's cardinality upper bound).
  double Estimate(double fallback) const;
  uint64_t bit_count() const { return bit_count_; }

 private:
  std::vector<uint64_t> words_;
  uint64_t bit_count_ = 0;
  uint64_t set_bits_ = 0;
};

/// \brief Space-saving heavy-hitter sketch [Metwally et al. 2005] over a
/// deterministic 1-in-4 sample of the inserted values.
///
/// Tracks the most frequent values in `kCapacity` counters; a value absent
/// from the table evicts the minimum counter and inherits its count as its
/// error bound. `count - error` is a guaranteed lower bound on the value's
/// true sampled frequency, which is what the skew predictor reads — so a
/// uniform attribute (whose counters are all churn) never reads as skewed.
class FrequencySketch {
 public:
  struct Entry {
    int32_t value = 0;
    uint64_t count = 0;
    /// Count inherited at takeover; the overestimation bound.
    uint64_t error = 0;
  };

  void Insert(int32_t value);

  /// Guaranteed lower bound on the frequency share of the most frequent
  /// value (max over entries of (count - error) / sampled inserts); 0 when
  /// nothing was sampled.
  double TopShare() const;

  const std::vector<Entry>& entries() const { return entries_; }
  uint64_t sampled() const { return sampled_; }

 private:
  static constexpr size_t kCapacity = 32;
  /// Only every 4th insert is counted: keeps per-tuple maintenance cheap at
  /// bulk load while leaving hundreds of samples behind any value heavy
  /// enough to matter to routing.
  static constexpr uint64_t kSampleEvery = 4;

  uint64_t tick_ = 0;
  uint64_t sampled_ = 0;
  std::vector<Entry> entries_;
};

/// Per-attribute statistics (integer attributes only; char attributes are
/// never predicate or join targets in the Wisconsin workload).
struct AttrStats {
  int32_t min = std::numeric_limits<int32_t>::max();
  int32_t max = std::numeric_limits<int32_t>::min();
  DistinctSketch sketch;
  FrequencySketch freq;
  bool has_values = false;

  /// Distinct-value estimate clamped to [1, cardinality].
  double DistinctEstimate(double cardinality) const;
};

/// The documented planner/executor threshold: bucket-map routing is chosen
/// only when PredictHashImbalance (or, for aggregates, the exact hash
/// assignment of the known group keys) exceeds this max/mean ratio. Below
/// it, the sampling charge cannot pay for itself; well above it, one site's
/// runtime dominates the phase and the map wins.
inline constexpr double kSkewImbalanceThreshold = 1.25;

/// Predicted max/mean per-site weight of hash-routing `attr`'s values over
/// `nsites` sites: the heaviest value (frequency share f, lower-bounded by
/// the frequency sketch) lands whole on one site, the rest spreads evenly —
/// imbalance ≈ 1 + f·(nsites − 1).
double PredictHashImbalance(const AttrStats& attr, size_t nsites);

struct IndexStats {
  int attr = -1;
  bool clustered = false;
};

/// \brief Everything the planner knows about one relation.
struct RelationStats {
  double cardinality = 0;
  /// Horizontal-partitioning attribute (-1 for round-robin declustering).
  int partition_attr = -1;
  bool hash_partitioned = false;
  bool range_partitioned = false;
  /// Indexes available on the relation (mirrors catalog, maintained by the
  /// OnIndexBuilt hook so the planner can consult statistics alone).
  std::vector<IndexStats> indexes;
  /// Indexed by attribute position; empty until the relation is loaded.
  std::vector<AttrStats> attrs;

  const AttrStats* Attr(int attr) const {
    if (attr < 0 || static_cast<size_t>(attr) >= attrs.size()) return nullptr;
    const AttrStats& s = attrs[static_cast<size_t>(attr)];
    return s.has_values ? &s : nullptr;
  }
  const IndexStats* FindIndex(int attr, bool clustered) const {
    for (const IndexStats& ix : indexes) {
      if (ix.attr == attr && ix.clustered == clustered) return &ix;
    }
    return nullptr;
  }
};

/// \brief Catalog statistics collected at load time and maintained
/// incrementally by append / delete / modify.
///
/// The GammaMachine owns one of these and calls the On* hooks from the
/// corresponding operations; the planner reads it via Find(). Statistics
/// maintenance is free in simulated time (Gamma's Query Manager kept them in
/// the host's catalog, off the critical path).
class StatisticsCatalog {
 public:
  /// Bulk collection: exact min/max, sketch sized from the batch. A second
  /// load into the same relation folds into the existing statistics.
  void OnLoad(const std::string& relation, const catalog::Schema& schema,
              const std::vector<std::vector<uint8_t>>& tuples,
              const catalog::PartitionSpec& partitioning);
  void OnIndexBuilt(const std::string& relation, int attr, bool clustered);
  void OnAppend(const std::string& relation, const catalog::Schema& schema,
                std::span<const uint8_t> tuple);
  /// Deletion: cardinality drops; min/max and the distinct sketch keep their
  /// (now possibly loose) values until a Recompute.
  void OnDelete(const std::string& relation, uint64_t deleted);
  void OnModify(const std::string& relation, const catalog::Schema& schema,
                int attr, int32_t new_value);
  /// Result relations: cardinality is known exactly from the store count,
  /// attribute distributions are not collected.
  void SetResultCardinality(const std::string& relation,
                            const catalog::Schema& schema, double cardinality);
  /// Full rebuild from a fresh scan (e.g. after a failover rebuild); keeps
  /// partitioning/index info, replaces cardinality and attribute stats.
  void Recompute(const std::string& relation, const catalog::Schema& schema,
                 const std::vector<std::vector<uint8_t>>& tuples);
  void Drop(const std::string& relation);

  const RelationStats* Find(const std::string& relation) const;

 private:
  RelationStats& Ensure(const std::string& relation,
                        const catalog::Schema& schema);
  static void Absorb(RelationStats& stats, const catalog::Schema& schema,
                     std::span<const uint8_t> tuple);

  std::map<std::string, RelationStats> relations_;
};

}  // namespace gammadb::opt

#endif  // GAMMA_OPT_STATISTICS_H_
