#include "opt/explain.h"

#include <cinttypes>
#include <cstdio>

namespace gammadb::opt {

namespace {

std::string FormatSeconds(double sec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4f s", sec);
  return buf;
}

void RenderNode(const PlanNode& node, int depth, std::string* out) {
  const std::string indent(static_cast<size_t>(depth) * 2, ' ');
  out->append(indent);
  out->append(node.label);
  out->push_back('\n');
  for (const std::string& detail : node.details) {
    out->append(indent);
    out->append("  ");
    out->append(detail);
    out->push_back('\n');
  }
  out->append(indent);
  out->append("  estimated: ");
  out->append(FormatSeconds(node.est_seconds));
  if (node.est_tuples >= 0) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), ", %.0f tuples", node.est_tuples);
    out->append(buf);
  }
  out->push_back('\n');
  for (const PlanNode& child : node.children) {
    RenderNode(child, depth + 1, out);
  }
}

}  // namespace

std::string RenderPlan(const PlanNode& root) {
  std::string out;
  RenderNode(root, 0, &out);
  return out;
}

std::string RenderPlanWithActuals(const PlanNode& root,
                                  const exec::QueryResult& result) {
  std::string out = RenderPlan(root);
  const sim::NodeUsage totals = result.metrics.Totals();
  char buf[224];
  std::snprintf(buf, sizeof(buf),
                "actual: %s, %" PRIu64 " tuples, %" PRIu64
                " page I/Os, %" PRIu64 " packets, %" PRIu64 " locks (%" PRIu64
                " waits)\n",
                FormatSeconds(result.seconds()).c_str(), result.result_tuples,
                totals.pages_read + totals.pages_written,
                totals.packets_sent + totals.packets_short_circuited,
                result.metrics.locks_acquired, result.metrics.lock_waits);
  out.append(buf);
  if (result.metrics.failover_retries > 0) {
    std::snprintf(buf, sizeof(buf),
                  "actual: %u failover retries (%s backoff)\n",
                  result.metrics.failover_retries,
                  FormatSeconds(result.metrics.failover_backoff_sec).c_str());
    out.append(buf);
  }
  return out;
}

}  // namespace gammadb::opt
