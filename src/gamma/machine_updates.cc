// Update-query execution of GammaMachine (paper §7, Table 3): single-tuple
// appends, deletes, and modifies, with partial recovery through deferred
// update files for the index structures and full concurrency control.
//
// Updates always run against the primary copy and mirror into the chained
// backup when one exists; they never fail over (a dead primary makes the
// write Unavailable). A failed append rolls its tuple back before reporting.

#include <cstring>

#include "common/macros.h"
#include "exec/select.h"
#include "gamma/machine.h"
#include "gamma/recovery_log.h"
#include "storage/deferred_update.h"

namespace gammadb::gamma {

using catalog::IndexMeta;
using catalog::PartitionStrategy;
using catalog::RelationMeta;
using catalog::TupleView;
using exec::Predicate;
using storage::AccessIntent;
using storage::DeferredUpdateFile;
using storage::LockMode;
using storage::LockName;
using storage::Rid;

namespace {

int32_t AttrOf(const catalog::Schema& schema,
               std::span<const uint8_t> tuple, int attr) {
  return TupleView(&schema, tuple).GetInt(static_cast<size_t>(attr));
}

}  // namespace

Status GammaMachine::DeleteFromBackup(const RelationMeta& meta, int fragment,
                                      std::span<const uint8_t> tuple,
                                      sim::CostTracker* tracker,
                                      Rid* deleted_rid) {
  const int host = (fragment + 1) % config_.num_disk_nodes;
  if (faults_->IsDead(host)) {
    return Status::Unavailable("backup site " + std::to_string(host) +
                               " of fragment " + std::to_string(fragment) +
                               " of " + meta.name + " is down");
  }
  storage::StorageManager& sm = *nodes_[static_cast<size_t>(host)];
  storage::HeapFile& backup =
      sm.file(meta.per_node_backup_file[static_cast<size_t>(fragment)]);
  // Ship the pre-image over, then locate the copy by content: backups carry
  // no indexes. The primary's record lock already covers the logical tuple.
  tracker->ChargeDataPacket(fragment, host, tuple.size());
  Rid match{};
  bool found = false;
  GAMMA_RETURN_NOT_OK(backup.Scan([&](Rid rid, std::span<const uint8_t> t) {
    sm.charge().Cpu(config_.hw.cost.instr_per_tuple_scan);
    if (t.size() == tuple.size() &&
        std::memcmp(t.data(), tuple.data(), t.size()) == 0) {
      match = rid;
      found = true;
      return false;
    }
    return true;
  }));
  if (!found) {
    return Status::Corruption("backup of fragment " +
                              std::to_string(fragment) + " of " + meta.name +
                              " is missing a tuple");
  }
  if (deleted_rid != nullptr) *deleted_rid = match;
  return backup.Delete(match);
}

Status GammaMachine::UpdateInBackup(const RelationMeta& meta, int fragment,
                                    std::span<const uint8_t> old_tuple,
                                    std::span<const uint8_t> new_tuple,
                                    sim::CostTracker* tracker,
                                    Rid* updated_rid) {
  const int host = (fragment + 1) % config_.num_disk_nodes;
  if (faults_->IsDead(host)) {
    return Status::Unavailable("backup site " + std::to_string(host) +
                               " of fragment " + std::to_string(fragment) +
                               " of " + meta.name + " is down");
  }
  storage::StorageManager& sm = *nodes_[static_cast<size_t>(host)];
  storage::HeapFile& backup =
      sm.file(meta.per_node_backup_file[static_cast<size_t>(fragment)]);
  tracker->ChargeDataPacket(fragment, host, new_tuple.size());
  Rid match{};
  bool found = false;
  GAMMA_RETURN_NOT_OK(backup.Scan([&](Rid rid, std::span<const uint8_t> t) {
    sm.charge().Cpu(config_.hw.cost.instr_per_tuple_scan);
    if (t.size() == old_tuple.size() &&
        std::memcmp(t.data(), old_tuple.data(), t.size()) == 0) {
      match = rid;
      found = true;
      return false;
    }
    return true;
  }));
  if (!found) {
    return Status::Corruption("backup of fragment " +
                              std::to_string(fragment) + " of " + meta.name +
                              " is missing a tuple");
  }
  if (updated_rid != nullptr) *updated_rid = match;
  return backup.Update(match, new_tuple);
}

Result<QueryResult> GammaMachine::RunAppend(const AppendQuery& query,
                                            uint64_t external_txn) {
  if (crashed_) {
    return Status::Unavailable(
        "machine crashed: run Recover() before issuing queries");
  }
  GAMMA_ASSIGN_OR_RETURN(RelationMeta * meta, catalog_.Get(query.relation));
  if (query.tuple.size() != meta->schema.tuple_size()) {
    return Status::InvalidArgument("tuple size does not match schema");
  }

  int target;
  if (meta->partitioning.strategy == PartitionStrategy::kRoundRobin) {
    target = static_cast<int>(meta->num_tuples %
                              static_cast<uint64_t>(config_.num_disk_nodes));
  } else {
    catalog::Partitioner partitioner(&meta->partitioning, &meta->schema,
                                     config_.num_disk_nodes);
    target = partitioner.NodeFor(query.tuple);
  }
  // Writes always go to the primary copy; no failover for updates.
  if (faults_->IsDead(target)) {
    return Status::Unavailable("append to " + query.relation +
                               ": home site " + std::to_string(target) +
                               " is down");
  }
  const int backup_host = (target + 1) % config_.num_disk_nodes;
  // Without the replayable log, a dead backup host blocks the write (the
  // mirror would silently diverge). With logging on, the write proceeds and
  // its records carry mirrored=false — reintegration replays them into the
  // stale backup when the host returns.
  const bool mirror = meta->backed_up && !faults_->IsDead(backup_host);
  if (meta->backed_up && !mirror && wal_ == nullptr) {
    return Status::Unavailable("append to " + query.relation +
                               ": backup site " + std::to_string(backup_host) +
                               " is down");
  }

  if (external_txn != 0 && !txns_.IsActive(external_txn)) {
    return Status::FailedPrecondition("append under unknown transaction " +
                                      std::to_string(external_txn));
  }

  sim::CostTracker tracker(config_.hw, config_.tracker_nodes());
  tracker.AttachFaultInjector(faults_.get());
  BindAll(&tracker);
  tracker.ChargeHostSetup(config_.host_setup_sec);
  RecoveryLog log(config_.enable_logging ? &tracker : nullptr,
                  config_.recovery_node(), config_.page_size, wal_.get());
  const bool auto_commit = external_txn == 0;
  const uint64_t txn = auto_commit ? txns_.Begin() : external_txn;
  QueryGuard guard(this, txn);
  const uint64_t wal_txn =
      wal_ != nullptr ? (auto_commit ? StatementWalTxn() : txn) : 0;
  const uint32_t wal_rel =
      wal_ != nullptr ? wal_->InternRelation(meta->name) : 0;
  guard.set_wal_txn(wal_txn);

  // Host submits to the scheduler, which initiates one update operator at
  // the tuple's home site.
  tracker.ChargeControlMessage(config_.host_node(), config_.scheduler_node(),
                               /*blocking=*/true);
  tracker.ChargeScheduling(1, 1);

  tracker.BeginPhase("append", sim::PhaseKind::kSequential);

  // 2PL footprint: intention-exclusive on relation and home fragment; the
  // page-level X lock follows once the append picks the page.
  const uint32_t rel = txns_.RelationId(meta->name);
  GAMMA_RETURN_NOT_OK(AcquireTxnLock(&tracker, txn, config_.scheduler_node(),
                                     txn::LockId::Relation(rel),
                                     txn::LockMode::kIX));
  {
    const txn::LockId fl =
        txn::LockId::Fragment(rel, static_cast<uint32_t>(target));
    GAMMA_RETURN_NOT_OK(AcquireTxnLock(&tracker, txn, txns_.TableFor(fl), fl,
                                       txn::LockMode::kIX));
  }

  storage::StorageManager& sm = *nodes_[static_cast<size_t>(target)];
  const uint32_t fid = meta->per_node_file[static_cast<size_t>(target)];
  storage::HeapFile& fragment = sm.file(fid);
  // The tuple itself travels host -> home site.
  tracker.ChargeDataPacket(config_.host_node(), target, query.tuple.size());
  GAMMA_CHECK(sm.locks()
                  .Acquire(txn, LockName::File(fid), LockMode::kExclusive)
                  .ok());
  sm.charge().Cpu(config_.hw.cost.instr_per_tuple_store);
  GAMMA_ASSIGN_OR_RETURN(const Rid rid, fragment.Append(query.tuple));
  {
    const txn::LockId pl = txn::LockId::Page(
        rel, static_cast<uint32_t>(target), rid.page_index);
    GAMMA_RETURN_NOT_OK(AcquireTxnLock(&tracker, txn, txns_.TableFor(pl), pl,
                                       txn::LockMode::kX));
  }
  DeferredUpdateFile deferred(&sm.charge(), config_.page_size);
  for (const IndexMeta& index : meta->indices) {
    deferred.LogInsert(
        &sm.index(index.per_node_index[static_cast<size_t>(target)]),
        AttrOf(meta->schema, query.tuple, index.attr), rid);
  }
  if (Status st = deferred.Commit(); !st.ok()) {
    // Atomicity: take the appended tuple back out before reporting.
    fragment.Delete(rid);
    return st;
  }
  storage::HeapFile* backup_file = nullptr;
  Rid backup_rid{};
  if (mirror) {
    // Mirror into the chained backup at (target + 1) % n.
    storage::StorageManager& bsm = *nodes_[static_cast<size_t>(backup_host)];
    const uint32_t bfid =
        meta->per_node_backup_file[static_cast<size_t>(target)];
    tracker.ChargeDataPacket(target, backup_host, query.tuple.size());
    GAMMA_CHECK(bsm.locks()
                    .Acquire(txn, LockName::File(bfid), LockMode::kExclusive)
                    .ok());
    bsm.charge().Cpu(config_.hw.cost.instr_per_tuple_store);
    auto brid_or = bsm.file(bfid).Append(query.tuple);
    if (!brid_or.ok()) {
      fragment.Delete(rid);
      return brid_or.status();
    }
    backup_file = &bsm.file(bfid);
    backup_rid = *brid_or;
  }
  if (config_.enable_logging) {
    // Write-ahead: the record and the force precede the page flushes below.
    log.LogInsert(target, wal_txn, wal_rel, target, rid, query.tuple, mirror,
                  backup_rid);
    log.ForceTail(target);
  }
  if (Status st = FlushAllPools(); !st.ok()) {
    // The commit-time force failed: tombstone this append (both copies)
    // while its pages are still cached so nothing partial survives.
    if (backup_file != nullptr) backup_file->Delete(backup_rid);
    fragment.Delete(rid);
    return st;
  }
  if (config_.enable_logging) {
    if (auto_commit) {
      // Commit point: the log is forced and the pages are durable, but the
      // winner marker has not been sealed — a death here leaves a loser.
      if (faults_->OnCommitPoint(target)) {
        guard.set_crashed();
        return Status::Unavailable("append to " + query.relation +
                                   ": home site " + std::to_string(target) +
                                   " died at its commit point");
      }
      log.LogCommit(target, wal_txn);
      MaybeAutoCheckpoint(&log, target);
    } else {
      // The statement's records are forced; the commit marker waits for
      // CommitTxn.
      log.Commit(target);
    }
  }
  tracker.ChargeControlMessage(target, config_.scheduler_node(), true);
  tracker.ChargeControlMessage(config_.scheduler_node(), config_.host_node(),
                               true);
  tracker.EndPhase();

  if (auto_commit) {
    for (auto& node : nodes_) node->locks().ReleaseAll(txn);
  }
  meta->num_tuples += 1;
  stats_.OnAppend(query.relation, meta->schema, query.tuple);
  QueryResult result;
  result.result_tuples = 1;
  guard.Dismiss();
  BindAll(nullptr);
  result.metrics = tracker.Finish();
  result.metrics.log_records = log.stats().records;
  result.metrics.log_forced_flushes = log.stats().forced_flushes;
  FillLockMetrics(txn, &result.metrics);
  if (auto_commit) txns_.Commit(txn);
  return FinalizeObs("append", std::move(result));
}

Result<QueryResult> GammaMachine::RunDelete(const DeleteQuery& query,
                                            uint64_t external_txn) {
  if (crashed_) {
    return Status::Unavailable(
        "machine crashed: run Recover() before issuing queries");
  }
  GAMMA_ASSIGN_OR_RETURN(RelationMeta * meta, catalog_.Get(query.relation));
  if (query.key_attr < 0 ||
      static_cast<size_t>(query.key_attr) >= meta->schema.num_attrs()) {
    return Status::InvalidArgument("delete key attribute out of range");
  }

  const Predicate pred = Predicate::Eq(query.key_attr, query.key);
  const std::vector<int> parts = ParticipatingNodes(*meta, pred);
  const IndexMeta* index = meta->FindIndex(query.key_attr);
  for (int node : parts) {
    if (faults_->IsDead(node)) {
      return Status::Unavailable("delete from " + query.relation +
                                 ": primary site " + std::to_string(node) +
                                 " is down");
    }
  }

  if (external_txn != 0 && !txns_.IsActive(external_txn)) {
    return Status::FailedPrecondition("delete under unknown transaction " +
                                      std::to_string(external_txn));
  }

  sim::CostTracker tracker(config_.hw, config_.tracker_nodes());
  tracker.AttachFaultInjector(faults_.get());
  BindAll(&tracker);
  tracker.ChargeHostSetup(config_.host_setup_sec);
  RecoveryLog log(config_.enable_logging ? &tracker : nullptr,
                  config_.recovery_node(), config_.page_size, wal_.get());
  const bool auto_commit = external_txn == 0;
  const uint64_t txn = auto_commit ? txns_.Begin() : external_txn;
  QueryGuard guard(this, txn);
  const uint64_t wal_txn =
      wal_ != nullptr ? (auto_commit ? StatementWalTxn() : txn) : 0;
  const uint32_t wal_rel =
      wal_ != nullptr ? wal_->InternRelation(meta->name) : 0;
  guard.set_wal_txn(wal_txn);

  tracker.ChargeControlMessage(config_.host_node(), config_.scheduler_node(),
                               true);
  tracker.ChargeScheduling(1, static_cast<uint32_t>(parts.size()));

  uint64_t deleted = 0;
  tracker.BeginPhase("delete", sim::PhaseKind::kSequential);
  const uint32_t rel = txns_.RelationId(meta->name);
  GAMMA_RETURN_NOT_OK(AcquireTxnLock(&tracker, txn, config_.scheduler_node(),
                                     txn::LockId::Relation(rel),
                                     txn::LockMode::kIX));
  for (int node : parts) {
    storage::StorageManager& sm = *nodes_[static_cast<size_t>(node)];
    storage::HeapFile& fragment =
        sm.file(meta->per_node_file[static_cast<size_t>(node)]);

    std::vector<Rid> rids;
    if (index != nullptr) {
      GAMMA_ASSIGN_OR_RETURN(
          rids, sm.index(index->per_node_index[static_cast<size_t>(node)])
                    .RangeLookup(query.key, query.key));
    } else {
      GAMMA_RETURN_NOT_OK(
          fragment.Scan([&](Rid rid, std::span<const uint8_t> tuple) {
            sm.charge().Cpu(config_.hw.cost.instr_per_tuple_scan +
                            config_.hw.cost.instr_per_attr_compare);
            if (pred.Eval(tuple, meta->schema)) rids.push_back(rid);
            return true;
          }));
    }
    {
      const txn::LockId fl =
          txn::LockId::Fragment(rel, static_cast<uint32_t>(node));
      GAMMA_RETURN_NOT_OK(AcquireTxnLock(&tracker, txn, txns_.TableFor(fl),
                                         fl, txn::LockMode::kIX));
    }
    DeferredUpdateFile deferred(&sm.charge(), config_.page_size);
    for (const Rid rid : rids) {
      GAMMA_ASSIGN_OR_RETURN(const std::vector<uint8_t> tuple,
                             fragment.Fetch(rid, AccessIntent::kRandom));
      GAMMA_CHECK(sm.locks()
                      .Acquire(txn,
                               LockName::Record(
                                   meta->per_node_file[static_cast<size_t>(
                                       node)],
                                   rid.page_index, rid.slot),
                               LockMode::kExclusive)
                      .ok());
      {
        const txn::LockId pl = txn::LockId::Page(
            rel, static_cast<uint32_t>(node), rid.page_index);
        GAMMA_RETURN_NOT_OK(AcquireTxnLock(&tracker, txn, txns_.TableFor(pl),
                                           pl, txn::LockMode::kX));
      }
      GAMMA_RETURN_NOT_OK(fragment.Delete(rid));
      for (const IndexMeta& idx : meta->indices) {
        deferred.LogDelete(
            &sm.index(idx.per_node_index[static_cast<size_t>(node)]),
            AttrOf(meta->schema, tuple, idx.attr), rid);
      }
      bool mirrored = false;
      Rid backup_rid{};
      if (meta->backed_up) {
        const int bhost = (node + 1) % config_.num_disk_nodes;
        if (wal_ == nullptr || !faults_->IsDead(bhost)) {
          GAMMA_RETURN_NOT_OK(
              DeleteFromBackup(*meta, node, tuple, &tracker, &backup_rid));
          mirrored = true;
        }
        // else: the backup host is down but the log keeps the record with
        // mirrored=false; reintegration replays it into the stale copy.
      }
      if (config_.enable_logging) {
        log.LogDelete(node, wal_txn, wal_rel, node, rid, tuple, mirrored,
                      backup_rid);
      }
      ++deleted;
    }
    GAMMA_RETURN_NOT_OK(deferred.Commit());
    if (config_.enable_logging && deleted > 0) log.ForceTail(node);
    tracker.ChargeControlMessage(node, config_.scheduler_node(), true);
  }
  GAMMA_RETURN_NOT_OK(FlushAllPools());
  if (config_.enable_logging && deleted > 0) {
    const int commit_site = parts.empty() ? 0 : parts.front();
    if (auto_commit) {
      for (int node : parts) {
        if (faults_->OnCommitPoint(node)) {
          guard.set_crashed();
          return Status::Unavailable(
              "delete from " + query.relation + ": site " +
              std::to_string(node) + " died at its commit point");
        }
      }
      log.LogCommit(commit_site, wal_txn);
      MaybeAutoCheckpoint(&log, commit_site);
    } else {
      log.Commit(commit_site);
    }
  }
  tracker.ChargeControlMessage(config_.scheduler_node(), config_.host_node(),
                               true);
  tracker.EndPhase();

  if (auto_commit) {
    for (auto& node : nodes_) node->locks().ReleaseAll(txn);
  }
  meta->num_tuples -= deleted;
  stats_.OnDelete(query.relation, deleted);
  QueryResult result;
  result.result_tuples = deleted;
  guard.Dismiss();
  BindAll(nullptr);
  result.metrics = tracker.Finish();
  result.metrics.log_records = log.stats().records;
  result.metrics.log_forced_flushes = log.stats().forced_flushes;
  FillLockMetrics(txn, &result.metrics);
  if (auto_commit) txns_.Commit(txn);
  return FinalizeObs("delete", std::move(result));
}

Result<QueryResult> GammaMachine::RunModify(const ModifyQuery& query,
                                            uint64_t external_txn) {
  if (crashed_) {
    return Status::Unavailable(
        "machine crashed: run Recover() before issuing queries");
  }
  GAMMA_ASSIGN_OR_RETURN(RelationMeta * meta, catalog_.Get(query.relation));
  if (query.locate_attr < 0 ||
      static_cast<size_t>(query.locate_attr) >= meta->schema.num_attrs() ||
      query.target_attr < 0 ||
      static_cast<size_t>(query.target_attr) >= meta->schema.num_attrs()) {
    return Status::InvalidArgument("modify attribute out of range");
  }
  if (meta->schema.attr(static_cast<size_t>(query.target_attr)).type !=
      catalog::AttrType::kInt32) {
    return Status::InvalidArgument("modify supports integer attributes");
  }

  const Predicate pred = Predicate::Eq(query.locate_attr, query.locate_key);
  const std::vector<int> parts = ParticipatingNodes(*meta, pred);
  const IndexMeta* locate_index = meta->FindIndex(query.locate_attr);
  const bool relocates =
      meta->partitioning.strategy != PartitionStrategy::kRoundRobin &&
      meta->partitioning.key_attr == query.target_attr;
  for (int node : parts) {
    if (faults_->IsDead(node)) {
      return Status::Unavailable("modify of " + query.relation +
                                 ": primary site " + std::to_string(node) +
                                 " is down");
    }
  }

  if (external_txn != 0 && !txns_.IsActive(external_txn)) {
    return Status::FailedPrecondition("modify under unknown transaction " +
                                      std::to_string(external_txn));
  }

  sim::CostTracker tracker(config_.hw, config_.tracker_nodes());
  tracker.AttachFaultInjector(faults_.get());
  BindAll(&tracker);
  tracker.ChargeHostSetup(config_.host_setup_sec);
  RecoveryLog log(config_.enable_logging ? &tracker : nullptr,
                  config_.recovery_node(), config_.page_size, wal_.get());
  const bool auto_commit = external_txn == 0;
  const uint64_t txn = auto_commit ? txns_.Begin() : external_txn;
  QueryGuard guard(this, txn);
  const uint64_t wal_txn =
      wal_ != nullptr ? (auto_commit ? StatementWalTxn() : txn) : 0;
  const uint32_t wal_rel =
      wal_ != nullptr ? wal_->InternRelation(meta->name) : 0;
  guard.set_wal_txn(wal_txn);

  tracker.ChargeControlMessage(config_.host_node(), config_.scheduler_node(),
                               true);
  tracker.ChargeScheduling(1, static_cast<uint32_t>(parts.size()));

  uint64_t modified = 0;
  tracker.BeginPhase("modify", sim::PhaseKind::kSequential);
  const uint32_t rel = txns_.RelationId(meta->name);
  GAMMA_RETURN_NOT_OK(AcquireTxnLock(&tracker, txn, config_.scheduler_node(),
                                     txn::LockId::Relation(rel),
                                     txn::LockMode::kIX));
  for (int node : parts) {
    storage::StorageManager& sm = *nodes_[static_cast<size_t>(node)];
    storage::HeapFile& fragment =
        sm.file(meta->per_node_file[static_cast<size_t>(node)]);

    std::vector<Rid> rids;
    if (locate_index != nullptr) {
      GAMMA_ASSIGN_OR_RETURN(
          rids,
          sm.index(locate_index->per_node_index[static_cast<size_t>(node)])
              .RangeLookup(query.locate_key, query.locate_key));
    } else {
      GAMMA_RETURN_NOT_OK(
          fragment.Scan([&](Rid rid, std::span<const uint8_t> tuple) {
            sm.charge().Cpu(config_.hw.cost.instr_per_tuple_scan +
                            config_.hw.cost.instr_per_attr_compare);
            if (pred.Eval(tuple, meta->schema)) rids.push_back(rid);
            return true;
          }));
    }

    {
      const txn::LockId fl =
          txn::LockId::Fragment(rel, static_cast<uint32_t>(node));
      GAMMA_RETURN_NOT_OK(AcquireTxnLock(&tracker, txn, txns_.TableFor(fl),
                                         fl, txn::LockMode::kIX));
    }
    for (const Rid rid : rids) {
      GAMMA_ASSIGN_OR_RETURN(const std::vector<uint8_t> old_tuple,
                             fragment.Fetch(rid, AccessIntent::kRandom));
      std::vector<uint8_t> new_tuple = old_tuple;
      const int32_t new_value = query.new_value;
      std::memcpy(new_tuple.data() +
                      meta->schema.offset(static_cast<size_t>(query.target_attr)),
                  &new_value, sizeof(new_value));
      GAMMA_CHECK(sm.locks()
                      .Acquire(txn,
                               LockName::Record(
                                   meta->per_node_file[static_cast<size_t>(
                                       node)],
                                   rid.page_index, rid.slot),
                               LockMode::kExclusive)
                      .ok());
      {
        const txn::LockId pl = txn::LockId::Page(
            rel, static_cast<uint32_t>(node), rid.page_index);
        GAMMA_RETURN_NOT_OK(AcquireTxnLock(&tracker, txn, txns_.TableFor(pl),
                                           pl, txn::LockMode::kX));
      }

      if (relocates) {
        // The partitioning attribute changed: delete here, re-insert at the
        // new home site, and maintain every index at both ends through the
        // deferred-update files (Halloween-safe, §7). The scheduler must
        // initiate a second operator at the new home and run the commit
        // protocol across both sites.
        tracker.ChargeScheduling(1, 1);
        tracker.ChargeControlMessage(config_.scheduler_node(), node, true);
        tracker.ChargeControlMessage(node, config_.scheduler_node(), true);
        DeferredUpdateFile deferred_old(&sm.charge(), config_.page_size);
        GAMMA_RETURN_NOT_OK(fragment.Delete(rid));
        for (const IndexMeta& idx : meta->indices) {
          deferred_old.LogDelete(
              &sm.index(idx.per_node_index[static_cast<size_t>(node)]),
              AttrOf(meta->schema, old_tuple, idx.attr), rid);
        }
        GAMMA_RETURN_NOT_OK(deferred_old.Commit());

        catalog::Partitioner partitioner(&meta->partitioning, &meta->schema,
                                         config_.num_disk_nodes);
        const int new_home = partitioner.NodeFor(new_tuple);
        if (faults_->IsDead(new_home)) {
          return Status::Unavailable("modify of " + query.relation +
                                     ": relocation target site " +
                                     std::to_string(new_home) + " is down");
        }
        storage::StorageManager& dst = *nodes_[static_cast<size_t>(new_home)];
        if (new_home != node) {
          tracker.ChargeDataPacket(node, new_home, new_tuple.size());
        }
        GAMMA_CHECK(dst.locks()
                        .Acquire(txn,
                                 LockName::File(
                                     meta->per_node_file[static_cast<size_t>(
                                         new_home)]),
                                 LockMode::kExclusive)
                        .ok());
        {
          const txn::LockId fl =
              txn::LockId::Fragment(rel, static_cast<uint32_t>(new_home));
          GAMMA_RETURN_NOT_OK(AcquireTxnLock(&tracker, txn,
                                             txns_.TableFor(fl), fl,
                                             txn::LockMode::kIX));
        }
        dst.charge().Cpu(config_.hw.cost.instr_per_tuple_store);
        GAMMA_ASSIGN_OR_RETURN(
            const Rid new_rid,
            dst.file(meta->per_node_file[static_cast<size_t>(new_home)])
                .Append(new_tuple));
        {
          const txn::LockId pl = txn::LockId::Page(
              rel, static_cast<uint32_t>(new_home), new_rid.page_index);
          GAMMA_RETURN_NOT_OK(AcquireTxnLock(&tracker, txn,
                                             txns_.TableFor(pl), pl,
                                             txn::LockMode::kX));
        }
        DeferredUpdateFile deferred_new(&dst.charge(), config_.page_size);
        for (const IndexMeta& idx : meta->indices) {
          deferred_new.LogInsert(
              &dst.index(idx.per_node_index[static_cast<size_t>(new_home)]),
              AttrOf(meta->schema, new_tuple, idx.attr), new_rid);
        }
        GAMMA_RETURN_NOT_OK(deferred_new.Commit());
        bool old_mirrored = false;
        bool new_mirrored = false;
        Rid old_backup_rid{};
        Rid new_backup_rid{};
        if (meta->backed_up) {
          // The backup copy moves with the tuple: out of this fragment's
          // chain, into the new home fragment's chain. A dead backup host on
          // either end blocks the write unless the log can carry the
          // mirrored=false record for reintegration to replay.
          const int old_backup_host = (node + 1) % config_.num_disk_nodes;
          if (wal_ == nullptr || !faults_->IsDead(old_backup_host)) {
            GAMMA_RETURN_NOT_OK(DeleteFromBackup(*meta, node, old_tuple,
                                                 &tracker, &old_backup_rid));
            old_mirrored = true;
          }
          const int new_backup_host =
              (new_home + 1) % config_.num_disk_nodes;
          if (faults_->IsDead(new_backup_host)) {
            if (wal_ == nullptr) {
              return Status::Unavailable(
                  "modify of " + query.relation + ": backup site " +
                  std::to_string(new_backup_host) + " is down");
            }
          } else {
            storage::StorageManager& bsm =
                *nodes_[static_cast<size_t>(new_backup_host)];
            tracker.ChargeDataPacket(new_home, new_backup_host,
                                     new_tuple.size());
            bsm.charge().Cpu(config_.hw.cost.instr_per_tuple_store);
            auto brid_or =
                bsm.file(meta->per_node_backup_file[static_cast<size_t>(
                             new_home)])
                    .Append(new_tuple);
            GAMMA_RETURN_NOT_OK(brid_or.status());
            new_backup_rid = *brid_or;
            new_mirrored = true;
          }
        }
        if (config_.enable_logging) {
          // A relocation is logically delete-here + insert-there; two
          // records keep undo and reintegration site-local.
          log.LogDelete(node, wal_txn, wal_rel, node, rid, old_tuple,
                        old_mirrored, old_backup_rid);
          log.LogInsert(new_home, wal_txn, wal_rel, new_home, new_rid,
                        new_tuple, new_mirrored, new_backup_rid);
        }
      } else {
        GAMMA_RETURN_NOT_OK(fragment.Update(rid, new_tuple));
        // Pre-image record for the statement, forced at commit (Gamma's
        // partial recovery covers in-place modifies too).
        sm.charge().DiskWrite(config_.page_size, AccessIntent::kRandom);
        DeferredUpdateFile deferred(&sm.charge(), config_.page_size);
        for (const IndexMeta& idx : meta->indices) {
          if (idx.attr != query.target_attr) continue;
          storage::BTree& tree =
              sm.index(idx.per_node_index[static_cast<size_t>(node)]);
          deferred.LogDelete(&tree,
                             AttrOf(meta->schema, old_tuple, idx.attr), rid);
          deferred.LogInsert(&tree,
                             AttrOf(meta->schema, new_tuple, idx.attr), rid);
        }
        GAMMA_RETURN_NOT_OK(deferred.Commit());
        bool mirrored = false;
        Rid backup_rid{};
        if (meta->backed_up) {
          const int bhost = (node + 1) % config_.num_disk_nodes;
          if (wal_ == nullptr || !faults_->IsDead(bhost)) {
            GAMMA_RETURN_NOT_OK(UpdateInBackup(*meta, node, old_tuple,
                                               new_tuple, &tracker,
                                               &backup_rid));
            mirrored = true;
          }
        }
        if (config_.enable_logging) {
          // Before and after images.
          log.LogModify(node, wal_txn, wal_rel, node, rid, old_tuple,
                        new_tuple, mirrored, backup_rid);
        }
      }
      ++modified;
    }
    if (config_.enable_logging && modified > 0) log.ForceTail(node);
    tracker.ChargeControlMessage(node, config_.scheduler_node(), true);
  }
  GAMMA_RETURN_NOT_OK(FlushAllPools());
  if (config_.enable_logging && modified > 0) {
    const int commit_site = parts.empty() ? 0 : parts.front();
    if (auto_commit) {
      for (int node : parts) {
        if (faults_->OnCommitPoint(node)) {
          guard.set_crashed();
          return Status::Unavailable(
              "modify of " + query.relation + ": site " +
              std::to_string(node) + " died at its commit point");
        }
      }
      log.LogCommit(commit_site, wal_txn);
      MaybeAutoCheckpoint(&log, commit_site);
    } else {
      log.Commit(commit_site);
    }
  }
  tracker.ChargeControlMessage(config_.scheduler_node(), config_.host_node(),
                               true);
  tracker.EndPhase();

  if (auto_commit) {
    for (auto& node : nodes_) node->locks().ReleaseAll(txn);
  }
  if (modified > 0) {
    stats_.OnModify(query.relation, meta->schema, query.target_attr,
                    query.new_value);
  }
  QueryResult result;
  result.result_tuples = modified;
  guard.Dismiss();
  BindAll(nullptr);
  result.metrics = tracker.Finish();
  result.metrics.log_records = log.stats().records;
  result.metrics.log_forced_flushes = log.stats().forced_flushes;
  FillLockMetrics(txn, &result.metrics);
  if (auto_commit) txns_.Commit(txn);
  return FinalizeObs("modify", std::move(result));
}

Result<std::vector<std::vector<uint8_t>>> GammaMachine::ReadRelation(
    const std::string& name) {
  GAMMA_ASSIGN_OR_RETURN(const RelationMeta* meta, catalog_.Get(name));
  std::vector<std::vector<uint8_t>> out;
  out.reserve(meta->num_tuples);
  for (int f = 0; f < config_.num_disk_nodes; ++f) {
    // kNoFile: a result relation created while this node was dead holds no
    // fragment here at all (nothing was ever routed to it).
    if (meta->per_node_file[static_cast<size_t>(f)] == catalog::kNoFile) {
      continue;
    }
    GAMMA_ASSIGN_OR_RETURN(const FragmentCopy copy, ServingCopy(*meta, f));
    GAMMA_RETURN_NOT_OK(
        nodes_[static_cast<size_t>(copy.node)]
            ->file(copy.file)
            .Scan([&](Rid, std::span<const uint8_t> tuple) {
              out.emplace_back(tuple.begin(), tuple.end());
              return true;
            }));
  }
  return out;
}

Status GammaMachine::RecomputeStatistics(const std::string& name) {
  GAMMA_ASSIGN_OR_RETURN(const RelationMeta* meta, catalog_.Get(name));
  GAMMA_ASSIGN_OR_RETURN(const auto tuples, ReadRelation(name));
  stats_.Recompute(name, meta->schema, tuples);
  return Status::OK();
}

Result<uint64_t> GammaMachine::CountTuples(const std::string& name) {
  GAMMA_ASSIGN_OR_RETURN(const RelationMeta* meta, catalog_.Get(name));
  uint64_t count = 0;
  for (int f = 0; f < config_.num_disk_nodes; ++f) {
    if (meta->per_node_file[static_cast<size_t>(f)] == catalog::kNoFile) {
      continue;
    }
    GAMMA_ASSIGN_OR_RETURN(const FragmentCopy copy, ServingCopy(*meta, f));
    count += nodes_[static_cast<size_t>(copy.node)]
                 ->file(copy.file)
                 .num_tuples();
  }
  return count;
}

}  // namespace gammadb::gamma
