// Update-query execution of GammaMachine (paper §7, Table 3): single-tuple
// appends, deletes, and modifies, with partial recovery through deferred
// update files for the index structures and full concurrency control.

#include <cstring>

#include "common/macros.h"
#include "exec/select.h"
#include "gamma/machine.h"
#include "gamma/recovery_log.h"
#include "storage/deferred_update.h"

namespace gammadb::gamma {

using catalog::IndexMeta;
using catalog::PartitionStrategy;
using catalog::RelationMeta;
using catalog::TupleView;
using exec::Predicate;
using storage::AccessIntent;
using storage::DeferredUpdateFile;
using storage::LockMode;
using storage::LockName;
using storage::Rid;

namespace {

int32_t AttrOf(const catalog::Schema& schema,
               std::span<const uint8_t> tuple, int attr) {
  return TupleView(&schema, tuple).GetInt(static_cast<size_t>(attr));
}

}  // namespace

Result<QueryResult> GammaMachine::RunAppend(const AppendQuery& query) {
  GAMMA_ASSIGN_OR_RETURN(RelationMeta * meta, catalog_.Get(query.relation));
  if (query.tuple.size() != meta->schema.tuple_size()) {
    return Status::InvalidArgument("tuple size does not match schema");
  }
  sim::CostTracker tracker(config_.hw, config_.tracker_nodes());
  BindAll(&tracker);
  tracker.ChargeHostSetup(config_.host_setup_sec);
  const uint64_t txn = next_txn_id_++;

  // Host submits to the scheduler, which initiates one update operator at
  // the tuple's home site.
  tracker.ChargeControlMessage(config_.host_node(), config_.scheduler_node(),
                               /*blocking=*/true);
  tracker.ChargeScheduling(1, 1);

  int target;
  if (meta->partitioning.strategy == PartitionStrategy::kRoundRobin) {
    target = static_cast<int>(meta->num_tuples %
                              static_cast<uint64_t>(config_.num_disk_nodes));
  } else {
    catalog::Partitioner partitioner(&meta->partitioning, &meta->schema,
                                     config_.num_disk_nodes);
    target = partitioner.NodeFor(query.tuple);
  }

  tracker.BeginPhase("append", sim::PhaseKind::kSequential);
  storage::StorageManager& sm = *nodes_[static_cast<size_t>(target)];
  // The tuple itself travels host -> home site.
  tracker.ChargeDataPacket(config_.host_node(), target, query.tuple.size());
  GAMMA_CHECK(
      sm.locks()
          .Acquire(txn,
                   LockName::File(
                       meta->per_node_file[static_cast<size_t>(target)]),
                   LockMode::kExclusive)
          .ok());
  sm.charge().Cpu(config_.hw.cost.instr_per_tuple_store);
  const Rid rid =
      sm.file(meta->per_node_file[static_cast<size_t>(target)])
          .Append(query.tuple);
  DeferredUpdateFile deferred(&sm.charge(), config_.page_size);
  for (const IndexMeta& index : meta->indices) {
    deferred.LogInsert(
        &sm.index(index.per_node_index[static_cast<size_t>(target)]),
        AttrOf(meta->schema, query.tuple, index.attr), rid);
  }
  deferred.Commit();
  if (config_.enable_logging) {
    RecoveryLog log(&tracker, config_.recovery_node(), config_.page_size);
    log.Append(target, static_cast<uint32_t>(query.tuple.size()));
    log.Commit(target);
  }
  FlushAllPools();  // force the data page at commit
  tracker.ChargeControlMessage(target, config_.scheduler_node(), true);
  tracker.ChargeControlMessage(config_.scheduler_node(), config_.host_node(),
                               true);
  tracker.EndPhase();

  for (auto& node : nodes_) node->locks().ReleaseAll(txn);
  meta->num_tuples += 1;
  QueryResult result;
  result.result_tuples = 1;
  BindAll(nullptr);
  result.metrics = tracker.Finish();
  return result;
}

Result<QueryResult> GammaMachine::RunDelete(const DeleteQuery& query) {
  GAMMA_ASSIGN_OR_RETURN(RelationMeta * meta, catalog_.Get(query.relation));
  if (query.key_attr < 0 ||
      static_cast<size_t>(query.key_attr) >= meta->schema.num_attrs()) {
    return Status::InvalidArgument("delete key attribute out of range");
  }
  sim::CostTracker tracker(config_.hw, config_.tracker_nodes());
  BindAll(&tracker);
  tracker.ChargeHostSetup(config_.host_setup_sec);
  const uint64_t txn = next_txn_id_++;

  const Predicate pred = Predicate::Eq(query.key_attr, query.key);
  const std::vector<int> parts = ParticipatingNodes(*meta, pred);
  const IndexMeta* index = meta->FindIndex(query.key_attr);

  tracker.ChargeControlMessage(config_.host_node(), config_.scheduler_node(),
                               true);
  tracker.ChargeScheduling(1, static_cast<uint32_t>(parts.size()));

  uint64_t deleted = 0;
  tracker.BeginPhase("delete", sim::PhaseKind::kSequential);
  for (int node : parts) {
    storage::StorageManager& sm = *nodes_[static_cast<size_t>(node)];
    storage::HeapFile& fragment =
        sm.file(meta->per_node_file[static_cast<size_t>(node)]);

    std::vector<Rid> rids;
    if (index != nullptr) {
      rids = sm.index(index->per_node_index[static_cast<size_t>(node)])
                 .RangeLookup(query.key, query.key);
    } else {
      fragment.Scan([&](Rid rid, std::span<const uint8_t> tuple) {
        sm.charge().Cpu(config_.hw.cost.instr_per_tuple_scan +
                        config_.hw.cost.instr_per_attr_compare);
        if (pred.Eval(tuple, meta->schema)) rids.push_back(rid);
        return true;
      });
    }
    DeferredUpdateFile deferred(&sm.charge(), config_.page_size);
    for (const Rid rid : rids) {
      auto tuple = fragment.Fetch(rid, AccessIntent::kRandom);
      GAMMA_CHECK(tuple.ok());
      GAMMA_CHECK(sm.locks()
                      .Acquire(txn,
                               LockName::Record(
                                   meta->per_node_file[static_cast<size_t>(
                                       node)],
                                   rid.page_index, rid.slot),
                               LockMode::kExclusive)
                      .ok());
      GAMMA_CHECK(fragment.Delete(rid).ok());
      for (const IndexMeta& idx : meta->indices) {
        deferred.LogDelete(
            &sm.index(idx.per_node_index[static_cast<size_t>(node)]),
            AttrOf(meta->schema, *tuple, idx.attr), rid);
      }
      if (config_.enable_logging) {
        RecoveryLog log(&tracker, config_.recovery_node(),
                        config_.page_size);
        log.Append(node, static_cast<uint32_t>(tuple->size()));
        log.Commit(node);
      }
      ++deleted;
    }
    deferred.Commit();
    tracker.ChargeControlMessage(node, config_.scheduler_node(), true);
  }
  FlushAllPools();
  tracker.ChargeControlMessage(config_.scheduler_node(), config_.host_node(),
                               true);
  tracker.EndPhase();

  for (auto& node : nodes_) node->locks().ReleaseAll(txn);
  meta->num_tuples -= deleted;
  QueryResult result;
  result.result_tuples = deleted;
  BindAll(nullptr);
  result.metrics = tracker.Finish();
  return result;
}

Result<QueryResult> GammaMachine::RunModify(const ModifyQuery& query) {
  GAMMA_ASSIGN_OR_RETURN(RelationMeta * meta, catalog_.Get(query.relation));
  if (query.locate_attr < 0 ||
      static_cast<size_t>(query.locate_attr) >= meta->schema.num_attrs() ||
      query.target_attr < 0 ||
      static_cast<size_t>(query.target_attr) >= meta->schema.num_attrs()) {
    return Status::InvalidArgument("modify attribute out of range");
  }
  if (meta->schema.attr(static_cast<size_t>(query.target_attr)).type !=
      catalog::AttrType::kInt32) {
    return Status::InvalidArgument("modify supports integer attributes");
  }
  sim::CostTracker tracker(config_.hw, config_.tracker_nodes());
  BindAll(&tracker);
  tracker.ChargeHostSetup(config_.host_setup_sec);
  const uint64_t txn = next_txn_id_++;

  const Predicate pred = Predicate::Eq(query.locate_attr, query.locate_key);
  const std::vector<int> parts = ParticipatingNodes(*meta, pred);
  const IndexMeta* locate_index = meta->FindIndex(query.locate_attr);
  const bool relocates =
      meta->partitioning.strategy != PartitionStrategy::kRoundRobin &&
      meta->partitioning.key_attr == query.target_attr;

  tracker.ChargeControlMessage(config_.host_node(), config_.scheduler_node(),
                               true);
  tracker.ChargeScheduling(1, static_cast<uint32_t>(parts.size()));

  uint64_t modified = 0;
  tracker.BeginPhase("modify", sim::PhaseKind::kSequential);
  for (int node : parts) {
    storage::StorageManager& sm = *nodes_[static_cast<size_t>(node)];
    storage::HeapFile& fragment =
        sm.file(meta->per_node_file[static_cast<size_t>(node)]);

    std::vector<Rid> rids;
    if (locate_index != nullptr) {
      rids = sm.index(locate_index->per_node_index[static_cast<size_t>(node)])
                 .RangeLookup(query.locate_key, query.locate_key);
    } else {
      fragment.Scan([&](Rid rid, std::span<const uint8_t> tuple) {
        sm.charge().Cpu(config_.hw.cost.instr_per_tuple_scan +
                        config_.hw.cost.instr_per_attr_compare);
        if (pred.Eval(tuple, meta->schema)) rids.push_back(rid);
        return true;
      });
    }

    for (const Rid rid : rids) {
      auto old_tuple = fragment.Fetch(rid, AccessIntent::kRandom);
      GAMMA_CHECK(old_tuple.ok());
      std::vector<uint8_t> new_tuple = *old_tuple;
      const int32_t new_value = query.new_value;
      std::memcpy(new_tuple.data() +
                      meta->schema.offset(static_cast<size_t>(query.target_attr)),
                  &new_value, sizeof(new_value));
      GAMMA_CHECK(sm.locks()
                      .Acquire(txn,
                               LockName::Record(
                                   meta->per_node_file[static_cast<size_t>(
                                       node)],
                                   rid.page_index, rid.slot),
                               LockMode::kExclusive)
                      .ok());

      if (relocates) {
        // The partitioning attribute changed: delete here, re-insert at the
        // new home site, and maintain every index at both ends through the
        // deferred-update files (Halloween-safe, §7). The scheduler must
        // initiate a second operator at the new home and run the commit
        // protocol across both sites.
        tracker.ChargeScheduling(1, 1);
        tracker.ChargeControlMessage(config_.scheduler_node(), node, true);
        tracker.ChargeControlMessage(node, config_.scheduler_node(), true);
        DeferredUpdateFile deferred_old(&sm.charge(), config_.page_size);
        GAMMA_CHECK(fragment.Delete(rid).ok());
        for (const IndexMeta& idx : meta->indices) {
          deferred_old.LogDelete(
              &sm.index(idx.per_node_index[static_cast<size_t>(node)]),
              AttrOf(meta->schema, *old_tuple, idx.attr), rid);
        }
        deferred_old.Commit();

        catalog::Partitioner partitioner(&meta->partitioning, &meta->schema,
                                         config_.num_disk_nodes);
        const int new_home = partitioner.NodeFor(new_tuple);
        storage::StorageManager& dst = *nodes_[static_cast<size_t>(new_home)];
        if (new_home != node) {
          tracker.ChargeDataPacket(node, new_home, new_tuple.size());
        }
        GAMMA_CHECK(dst.locks()
                        .Acquire(txn,
                                 LockName::File(
                                     meta->per_node_file[static_cast<size_t>(
                                         new_home)]),
                                 LockMode::kExclusive)
                        .ok());
        dst.charge().Cpu(config_.hw.cost.instr_per_tuple_store);
        const Rid new_rid =
            dst.file(meta->per_node_file[static_cast<size_t>(new_home)])
                .Append(new_tuple);
        DeferredUpdateFile deferred_new(&dst.charge(), config_.page_size);
        for (const IndexMeta& idx : meta->indices) {
          deferred_new.LogInsert(
              &dst.index(idx.per_node_index[static_cast<size_t>(new_home)]),
              AttrOf(meta->schema, new_tuple, idx.attr), new_rid);
        }
        deferred_new.Commit();
      } else {
        GAMMA_CHECK(fragment.Update(rid, new_tuple).ok());
        // Pre-image record for the statement, forced at commit (Gamma's
        // partial recovery covers in-place modifies too).
        sm.charge().DiskWrite(config_.page_size, AccessIntent::kRandom);
        DeferredUpdateFile deferred(&sm.charge(), config_.page_size);
        for (const IndexMeta& idx : meta->indices) {
          if (idx.attr != query.target_attr) continue;
          storage::BTree& tree =
              sm.index(idx.per_node_index[static_cast<size_t>(node)]);
          deferred.LogDelete(&tree,
                             AttrOf(meta->schema, *old_tuple, idx.attr), rid);
          deferred.LogInsert(&tree,
                             AttrOf(meta->schema, new_tuple, idx.attr), rid);
        }
        deferred.Commit();
      }
      if (config_.enable_logging) {
        // Before and after images.
        RecoveryLog log(&tracker, config_.recovery_node(),
                        config_.page_size);
        log.Append(node, static_cast<uint32_t>(2 * new_tuple.size()));
        log.Commit(node);
      }
      ++modified;
    }
    tracker.ChargeControlMessage(node, config_.scheduler_node(), true);
  }
  FlushAllPools();
  tracker.ChargeControlMessage(config_.scheduler_node(), config_.host_node(),
                               true);
  tracker.EndPhase();

  for (auto& node : nodes_) node->locks().ReleaseAll(txn);
  QueryResult result;
  result.result_tuples = modified;
  BindAll(nullptr);
  result.metrics = tracker.Finish();
  return result;
}

Result<std::vector<std::vector<uint8_t>>> GammaMachine::ReadRelation(
    const std::string& name) {
  GAMMA_ASSIGN_OR_RETURN(const RelationMeta* meta, catalog_.Get(name));
  std::vector<std::vector<uint8_t>> out;
  out.reserve(meta->num_tuples);
  for (int i = 0; i < config_.num_disk_nodes; ++i) {
    nodes_[static_cast<size_t>(i)]
        ->file(meta->per_node_file[static_cast<size_t>(i)])
        .Scan([&](Rid, std::span<const uint8_t> tuple) {
          out.emplace_back(tuple.begin(), tuple.end());
          return true;
        });
  }
  return out;
}

Result<uint64_t> GammaMachine::CountTuples(const std::string& name) {
  GAMMA_ASSIGN_OR_RETURN(const RelationMeta* meta, catalog_.Get(name));
  uint64_t count = 0;
  for (int i = 0; i < config_.num_disk_nodes; ++i) {
    count += nodes_[static_cast<size_t>(i)]
                 ->file(meta->per_node_file[static_cast<size_t>(i)])
                 .num_tuples();
  }
  return count;
}

}  // namespace gammadb::gamma
