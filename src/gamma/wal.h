#ifndef GAMMA_GAMMA_WAL_H_
#define GAMMA_GAMMA_WAL_H_

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "obs/journal.h"
#include "storage/heap_file.h"

namespace gammadb::gamma {

/// Kind of one write-ahead-log record kept by the recovery server.
enum class WalKind : uint8_t {
  /// Tuple appended (store operator, append statement, relocation insert).
  kInsert,
  /// Tuple deleted; `before` is the pre-image.
  kDelete,
  /// Tuple rewritten in place; `before`/`after` are the two images.
  kModify,
  /// Transaction commit point (the force of this record makes it a winner).
  kCommit,
  /// Transaction rolled back cleanly by the machine (its effects were
  /// physically reversed before this record was written; recovery skips it).
  kAbort,
  /// Fuzzy checkpoint begin: carries the active-transaction table.
  kCheckpointBegin,
  /// Fuzzy checkpoint end: replay starts at the matching begin record.
  kCheckpointEnd,
  /// Catalog partition-spec flip of an elastic migration (`fragment` = -1;
  /// `before`/`after` are PartitionSpec::Serialize images). Redo of a winner
  /// completes the flip; undo of a loser restores the old placement — so a
  /// crash between the data moves and the flip recovers to either side of
  /// the migration, never in between.
  kPartition,
};

/// One replayable log record. Payload images are logical tuple copies —
/// redo and undo are test-and-apply (idempotent) against the serving copy,
/// so records survive file rebuilds that renumber rids.
struct WalRecord {
  uint64_t lsn = 0;
  uint64_t txn = 0;
  WalKind kind = WalKind::kInsert;
  /// Interned relation id (WalStore::InternRelation).
  uint32_t rel = 0;
  /// Home fragment (primary node index) the record targets.
  int32_t fragment = -1;
  /// Rid on the primary at log time — a fast path for redo verification;
  /// content match is the fallback after a rebuild renumbers pages.
  storage::Rid rid;
  /// Rid of the mirrored copy in the chained backup file (valid only when
  /// `mirrored`); lets undo restore the backup byte-identically.
  storage::Rid backup_rid;
  /// Whether the effect also reached the fragment's chained backup. Unset
  /// when the backup host was down (reintegration replays these).
  bool mirrored = true;
  /// Pre-image (delete/modify) and post-image (insert/modify).
  std::vector<uint8_t> before;
  std::vector<uint8_t> after;

  /// Logged size: fixed header plus the tuple images.
  uint64_t bytes() const {
    return kHeaderBytes + before.size() + after.size();
  }
  static constexpr uint64_t kHeaderBytes = 32;
};

/// \brief The recovery server's durable log contents.
///
/// `RecoveryLog` (per statement) charges the simulated cost of shipping and
/// forcing log records; this machine-lifetime store keeps the records
/// themselves so a crashed machine can be restored and a rebuilt node can be
/// caught up. Mirrors the host-parallel staging discipline of the charging
/// path: store operators stage records under the one-task-per-node rule into
/// per-node buffers, and the coordinator seals them into the global
/// LSN-ordered log in canonical node order at every barrier — so LSNs are
/// byte-identical for any GAMMA_HOST_THREADS.
class WalStore {
 public:
  explicit WalStore(int num_nodes);

  WalStore(const WalStore&) = delete;
  WalStore& operator=(const WalStore&) = delete;

  /// Elastic growth: widens the per-node staging buffers to `num_nodes`
  /// tracker nodes (never shrinks). Existing records and LSNs are untouched.
  void Grow(int num_nodes);

  /// Wires the machine's flight recorder in: commit forces and checkpoints
  /// are journaled on `ring` (the recovery server's). Both happen on the
  /// coordinator path only. Null detaches.
  void AttachJournal(obs::Journal* journal, int ring) {
    journal_ = journal;
    journal_ring_ = ring;
  }

  /// Stable small id for a relation name (first use assigns).
  uint32_t InternRelation(const std::string& name);
  /// Name for an interned id ("" when unknown — never interned).
  const std::string& RelationName(uint32_t id) const;

  /// Stages one record from `src_node` (single writer per node while a
  /// parallel step runs). The LSN is assigned at Seal time.
  void Stage(int src_node, WalRecord record);

  /// Coordinator barrier: moves every staged record into the log in
  /// ascending node order, assigning LSNs.
  void Seal();

  /// Drops all staged (unsealed) records — a statement failed before its
  /// effects were forced.
  void DiscardStaged();

  /// Appends a record on the coordinator path, sealing immediately.
  /// Returns its LSN.
  uint64_t Append(WalRecord record);

  /// Transaction `txn` committed: append the kCommit record. Winners are
  /// exactly the transactions with a sealed commit record.
  void NoteCommit(uint64_t txn);

  /// Transaction `txn` was rolled back *cleanly* — the machine physically
  /// reversed (or never flushed) its effects. Its sealed records are marked
  /// compensated so recovery neither redoes nor undoes them, and an abort
  /// record closes the transaction in the log.
  void NoteCleanAbort(uint64_t txn);

  bool IsCommitted(uint64_t txn) const {
    return committed_.contains(txn);
  }

  bool IsAborted(uint64_t txn) const { return aborted_.contains(txn); }

  /// True when `txn` has at least one sealed insert/delete/modify record in
  /// the retained log.
  bool HasDataRecords(uint64_t txn) const;

  /// Marks every sealed record of fragment `fragment` of `rel` with
  /// lsn <= `upto_lsn` as mirrored (reintegration replayed them into the
  /// caught-up backup).
  void MarkMirrored(uint32_t rel, int32_t fragment, uint64_t upto_lsn);

  // --- Checkpointing ---

  /// Writes a fuzzy checkpoint (begin + end records snapshotting the
  /// transactions with sealed-but-uncommitted records) and truncates the
  /// prefix no recovery pass can need: everything below the oldest record of
  /// an open transaction and the oldest committed-but-unmirrored record.
  /// Returns the checkpoint's begin LSN.
  uint64_t Checkpoint();

  /// LSN of the last complete checkpoint's begin record (0 = none yet).
  uint64_t checkpoint_lsn() const { return checkpoint_lsn_; }

  /// Statement/transaction commits sealed since the last checkpoint.
  uint64_t commits_since_checkpoint() const {
    return commits_since_checkpoint_;
  }

  // --- Recovery access ---

  /// Retained records in LSN order (the truncated prefix is gone).
  const std::deque<WalRecord>& records() const { return log_; }
  std::deque<WalRecord>& mutable_records() { return log_; }

  uint64_t next_lsn() const { return next_lsn_; }
  /// Total sealed bytes, including truncated history (cost reporting).
  uint64_t total_bytes() const { return total_bytes_; }
  uint64_t retained_bytes() const { return retained_bytes_; }

  /// Transactions with sealed data records and no commit/clean-abort record
  /// — recovery's losers.
  std::vector<uint64_t> OpenTxns() const;

 private:
  void SealOne(WalRecord&& record);

  int num_nodes_;
  std::vector<std::vector<WalRecord>> staged_;
  std::deque<WalRecord> log_;
  uint64_t next_lsn_ = 1;
  uint64_t total_bytes_ = 0;
  uint64_t retained_bytes_ = 0;
  uint64_t checkpoint_lsn_ = 0;
  uint64_t commits_since_checkpoint_ = 0;
  /// Transactions with a sealed commit record (survives truncation).
  std::set<uint64_t> committed_;
  /// Transactions closed by a clean abort (records compensated).
  std::set<uint64_t> aborted_;
  std::map<std::string, uint32_t> relation_ids_;
  std::vector<std::string> relation_names_;
  /// Flight recorder (null until the machine attaches it).
  obs::Journal* journal_ = nullptr;
  int journal_ring_ = 0;
};

}  // namespace gammadb::gamma

#endif  // GAMMA_GAMMA_WAL_H_
