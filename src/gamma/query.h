#ifndef GAMMA_GAMMA_QUERY_H_
#define GAMMA_GAMMA_QUERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "exec/aggregate.h"
#include "exec/predicate.h"
#include "exec/query_result.h"
#include "sim/cost_tracker.h"

namespace gammadb::gamma {

/// How a selection accesses the relation.
enum class AccessPath {
  /// Let the machine pick (clustered index if usable, else non-clustered if
  /// selective enough, else file scan — the §5.1 optimizer behaviour).
  kAuto,
  kFileScan,
  kClusteredIndex,
  kNonClusteredIndex,
};

/// Where join operators execute (§6): on the processors with disks, on the
/// diskless processors, or on both.
enum class JoinMode { kLocal, kRemote, kAllnodes };

/// How the join's redistribution split tables pick a destination site.
enum class SplitRouting {
  /// Consult the statistics catalog: bucket-map when the frequency sketches
  /// predict hash imbalance above opt::kSkewImbalanceThreshold, else hash.
  kAuto,
  /// Plain hash(attr) % sites — the paper's split table (§2).
  kHash,
  /// Skew-aware virtual-bucket map built from a charged sample of both
  /// inputs; build and probe share the map.
  kBucketMap,
};

/// Which join algorithm the join sites run.
enum class JoinAlgorithm {
  /// Gamma's Simple hash-partitioned join: build then probe, with
  /// residency-escalation overflow rounds when the building side exceeds
  /// the sites' aggregate memory.
  kSimpleHash,
  /// Parallel Hybrid hash join (the paper's proposed replacement, §8):
  /// non-resident buckets are spooled once and joined without re-splitting.
  kHybridHash,
  /// Sort-merge: each site spools both inputs, externally sorts them on the
  /// join attribute and merges (the Teradata-style algorithm the paper
  /// compares against).
  kSortMerge,
};

/// \brief Selection: retrieve tuples of `relation` satisfying `predicate`.
struct SelectQuery {
  std::string relation;
  exec::Predicate predicate = exec::Predicate::True();
  AccessPath access = AccessPath::kAuto;
  /// Store the result in the database (round-robin declustered result
  /// relation, the paper's default) rather than returning it to the host.
  bool store_result = true;
  /// Name for the stored result; auto-generated when empty.
  std::string result_name;
};

/// \brief Equijoin of `outer` (probing side) with `inner` (building side),
/// with optional selections pushed onto either input.
struct JoinQuery {
  std::string outer;
  std::string inner;
  int outer_attr = -1;
  int inner_attr = -1;
  exec::Predicate outer_pred = exec::Predicate::True();
  exec::Predicate inner_pred = exec::Predicate::True();
  JoinMode mode = JoinMode::kRemote;
  bool store_result = true;
  std::string result_name;
  /// Optimizer's estimate of building tuples reaching the join (sizes the
  /// Hybrid join's buckets); 0 = use the inner relation's cardinality.
  uint64_t expected_build_tuples = 0;
  /// Join algorithm run by the join sites.
  JoinAlgorithm algorithm = JoinAlgorithm::kSimpleHash;
  /// Insert a bit-vector filter built from the inner relation into the
  /// outer side's split tables (§2).
  bool use_bit_filter = false;
  /// Redistribution routing policy; the planner pins it when it plans the
  /// query, kAuto lets the machine consult its own statistics.
  SplitRouting routing = SplitRouting::kAuto;
};

/// \brief Scalar or grouped aggregate over one relation.
struct AggregateQuery {
  std::string relation;
  /// -1 for a scalar aggregate.
  int group_attr = -1;
  int value_attr = -1;
  exec::AggFunc func = exec::AggFunc::kCount;
  exec::Predicate predicate = exec::Predicate::True();
};

/// \brief Append one tuple (Table 3 rows 1-2).
struct AppendQuery {
  std::string relation;
  std::vector<uint8_t> tuple;
};

/// \brief Delete the tuple whose `key_attr` equals `key` (Table 3 row 3;
/// located through an index when one exists).
struct DeleteQuery {
  std::string relation;
  int key_attr = -1;
  int32_t key = 0;
};

/// \brief Modify one attribute of the tuple located by `locate_attr ==
/// locate_key` (Table 3 rows 4-6). Relocates the tuple when the modified
/// attribute is the partitioning key; maintains indices through deferred
/// update files.
struct ModifyQuery {
  std::string relation;
  int locate_attr = -1;
  int32_t locate_key = 0;
  int target_attr = -1;
  int32_t new_value = 0;
};

/// Both machines report outcomes in the same shape (exec/query_result.h).
using QueryResult = exec::QueryResult;

}  // namespace gammadb::gamma

#endif  // GAMMA_GAMMA_QUERY_H_
