#ifndef GAMMA_GAMMA_RECOVERY_LOG_H_
#define GAMMA_GAMMA_RECOVERY_LOG_H_

#include <cstdint>
#include <vector>

#include "sim/cost_tracker.h"

namespace gammadb::gamma {

/// \brief The recovery server the paper's conclusion plans to add (§8).
///
/// The evaluated Gamma lacked full recovery: its "most glaring deficiency".
/// The authors' stated fix is "a recovery server that will collect log
/// records from each processor". This class implements that design: each
/// operator ships log records (packed into network packets) to a dedicated
/// recovery processor, which appends them to a sequential log; commit forces
/// the tail of the log and acknowledges.
///
/// Enabled via GammaConfig::enable_logging; the ablation bench
/// `extension_recovery_server` measures what this full-recovery path costs
/// on the paper's workloads (the price Gamma's numbers avoided paying and
/// Teradata's numbers included).
class RecoveryLog {
 public:
  struct Stats {
    uint64_t records = 0;
    uint64_t bytes = 0;
    uint64_t log_pages_written = 0;
    /// Commit points that forced the log tail (partial page) to disk.
    uint64_t forced_flushes = 0;
  };

  /// Per-record header (txn id, kind, file id, rid, lengths).
  static constexpr uint32_t kRecordHeaderBytes = 32;

  /// `recovery_node` is the dedicated processor's tracker index; `tracker`
  /// may be null (logging disabled / unmeasured).
  RecoveryLog(sim::CostTracker* tracker, int recovery_node,
              uint32_t page_size);

  RecoveryLog(const RecoveryLog&) = delete;
  RecoveryLog& operator=(const RecoveryLog&) = delete;

  /// Logs one record of `payload_bytes` (tuple image(s)) from `src_node`.
  /// Full packets are shipped to the recovery server as they fill; the
  /// server appends them to the sequential log as pages fill.
  void Append(int src_node, uint32_t payload_bytes);

  /// Commit point for `src_node`: flushes its partial packet, forces the
  /// log tail, and waits for the acknowledgement.
  void Commit(int src_node);

  const Stats& stats() const { return stats_; }

 private:
  void ShipPacket(int src_node, uint64_t bytes);

  sim::CostTracker* tracker_;
  int recovery_node_;
  uint32_t page_size_;
  /// Unshipped log bytes per source node.
  std::vector<uint64_t> pending_;
  /// Bytes accumulated at the server toward the next log page.
  uint64_t server_pending_ = 0;
  Stats stats_;
};

}  // namespace gammadb::gamma

#endif  // GAMMA_GAMMA_RECOVERY_LOG_H_
