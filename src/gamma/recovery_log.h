#ifndef GAMMA_GAMMA_RECOVERY_LOG_H_
#define GAMMA_GAMMA_RECOVERY_LOG_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "sim/cost_tracker.h"

namespace gammadb::gamma {

/// \brief The recovery server the paper's conclusion plans to add (§8).
///
/// The evaluated Gamma lacked full recovery: its "most glaring deficiency".
/// The authors' stated fix is "a recovery server that will collect log
/// records from each processor". This class implements that design: each
/// operator ships log records (packed into network packets) to a dedicated
/// recovery processor, which appends them to a sequential log; commit forces
/// the tail of the log and acknowledges.
///
/// Host-parallel execution: store operators on different nodes append log
/// records concurrently, so all per-source state (pending bytes, record
/// counters, the charging sink) is per node, and the *server-side* work —
/// sequential log-page writes fed by every source — is deferred while any
/// source is rebound to a task shard (BindNode) and applied in canonical
/// node order at Settle(). The sequential coordinator path (no BindNode
/// calls) applies server work immediately, exactly as before.
///
/// Enabled via GammaConfig::enable_logging; the ablation bench
/// `extension_recovery_server` measures what this full-recovery path costs
/// on the paper's workloads (the price Gamma's numbers avoided paying and
/// Teradata's numbers included).
class RecoveryLog {
 public:
  struct Stats {
    uint64_t records = 0;
    uint64_t bytes = 0;
    uint64_t log_pages_written = 0;
    /// Commit points that forced the log tail (partial page) to disk.
    uint64_t forced_flushes = 0;
  };

  /// Per-record header (txn id, kind, file id, rid, lengths).
  static constexpr uint32_t kRecordHeaderBytes = 32;

  /// `recovery_node` is the dedicated processor's tracker index; `tracker`
  /// may be null (logging disabled / unmeasured).
  RecoveryLog(sim::CostTracker* tracker, int recovery_node,
              uint32_t page_size);

  RecoveryLog(const RecoveryLog&) = delete;
  RecoveryLog& operator=(const RecoveryLog&) = delete;

  /// Redirects `src_node`'s charging to a host-parallel task shard (null
  /// restores the query tracker). While bound, the node's shipped packets
  /// accumulate toward the next Settle() instead of being applied to the
  /// server log immediately.
  void BindNode(int src_node, sim::CostTracker* shard);

  /// Logs one record of `payload_bytes` (tuple image(s)) from `src_node`.
  /// Full packets are shipped to the recovery server as they fill; the
  /// server appends them to the sequential log as pages fill.
  void Append(int src_node, uint32_t payload_bytes);

  /// Applies packets shipped by task-bound sources to the server's
  /// sequential log, in canonical node order, charging the query tracker.
  /// The machine calls this at every phase barrier where stores logged;
  /// no-op when nothing is deferred.
  void Settle();

  /// Commit point for `src_node`: flushes its partial packet, forces the
  /// log tail, and waits for the acknowledgement.
  void Commit(int src_node);

  /// Counters aggregated over the per-node streams.
  Stats stats() const;

 private:
  sim::CostTracker* TrackerFor(int src_node) const;
  void ShipPacket(int src_node, uint64_t bytes);
  /// Server side: copy `bytes` into the log buffer, write full pages.
  void ApplyToServer(uint64_t bytes);

  sim::CostTracker* tracker_;
  int recovery_node_;
  uint32_t page_size_;
  /// Unshipped log bytes per source node.
  std::vector<uint64_t> pending_;
  /// Shipped bytes per source awaiting server-side settlement (only used
  /// while the source is bound to a shard).
  std::vector<uint64_t> unsettled_;
  /// Task-shard overrides per source node (null = the query tracker).
  std::vector<sim::CostTracker*> overrides_;
  /// Per-source record/byte counters (single writer: the owning task).
  std::vector<uint64_t> records_;
  std::vector<uint64_t> bytes_;
  /// Bytes accumulated at the server toward the next log page.
  uint64_t server_pending_ = 0;
  uint64_t log_pages_written_ = 0;
  uint64_t forced_flushes_ = 0;
  /// Record/byte counters used when no tracker is attached (logging off:
  /// there are no per-node vectors to write into). Atomic because parallel
  /// store tasks bump them concurrently; relaxed increments commute, so the
  /// totals stay deterministic.
  std::atomic<uint64_t> untracked_records_{0};
  std::atomic<uint64_t> untracked_bytes_{0};
};

}  // namespace gammadb::gamma

#endif  // GAMMA_GAMMA_RECOVERY_LOG_H_
