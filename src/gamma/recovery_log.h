#ifndef GAMMA_GAMMA_RECOVERY_LOG_H_
#define GAMMA_GAMMA_RECOVERY_LOG_H_

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "gamma/wal.h"
#include "sim/cost_tracker.h"
#include "storage/heap_file.h"

namespace gammadb::gamma {

/// \brief The recovery server the paper's conclusion plans to add (§8).
///
/// The evaluated Gamma lacked full recovery: its "most glaring deficiency".
/// The authors' stated fix is "a recovery server that will collect log
/// records from each processor". This class implements that design: each
/// operator ships log records (packed into network packets) to a dedicated
/// recovery processor, which appends them to a sequential log; commit forces
/// the tail of the log and acknowledges.
///
/// Host-parallel execution: store operators on different nodes append log
/// records concurrently, so all per-source state (pending bytes, record
/// counters, the charging sink) is per node, and the *server-side* work —
/// sequential log-page writes fed by every source — is deferred while any
/// source is rebound to a task shard (BindNode) and applied in canonical
/// node order at Settle(). The sequential coordinator path (no BindNode
/// calls) applies server work immediately, exactly as before.
///
/// Enabled via GammaConfig::enable_logging; the ablation bench
/// `extension_recovery_server` measures what this full-recovery path costs
/// on the paper's workloads (the price Gamma's numbers avoided paying and
/// Teradata's numbers included).
class RecoveryLog {
 public:
  struct Stats {
    uint64_t records = 0;
    uint64_t bytes = 0;
    uint64_t log_pages_written = 0;
    /// Commit points that forced the log tail (partial page) to disk.
    uint64_t forced_flushes = 0;
  };

  /// Per-record header (txn id, kind, file id, rid, lengths).
  static constexpr uint32_t kRecordHeaderBytes = 32;

  /// `recovery_node` is the dedicated processor's tracker index; `tracker`
  /// may be null (logging disabled / unmeasured). `wal`, when given, is the
  /// machine-lifetime store the typed Log* calls stage replayable records
  /// into (null = charge-only, the pre-recovery accounting mode).
  RecoveryLog(sim::CostTracker* tracker, int recovery_node,
              uint32_t page_size, WalStore* wal = nullptr);

  RecoveryLog(const RecoveryLog&) = delete;
  RecoveryLog& operator=(const RecoveryLog&) = delete;

  /// Redirects `src_node`'s charging to a host-parallel task shard (null
  /// restores the query tracker). While bound, the node's shipped packets
  /// accumulate toward the next Settle() instead of being applied to the
  /// server log immediately.
  void BindNode(int src_node, sim::CostTracker* shard);

  /// Logs one record of `payload_bytes` (tuple image(s)) from `src_node`.
  /// Full packets are shipped to the recovery server as they fill; the
  /// server appends them to the sequential log as pages fill.
  void Append(int src_node, uint32_t payload_bytes);

  // --- Typed records (charge exactly like Append, and seal the replayable
  // --- content into the WalStore when one is attached). Update statements
  // --- run on the coordinator thread, so records seal in program order and
  // --- LSNs are identical for any host-pool width. ---

  /// Tuple appended to fragment `fragment` of `rel` at `rid`.
  void LogInsert(int src_node, uint64_t txn, uint32_t rel, int32_t fragment,
                 storage::Rid rid, std::span<const uint8_t> tuple,
                 bool mirrored, storage::Rid backup_rid = {});

  /// Tuple deleted; `before` is the pre-image.
  void LogDelete(int src_node, uint64_t txn, uint32_t rel, int32_t fragment,
                 storage::Rid rid, std::span<const uint8_t> before,
                 bool mirrored, storage::Rid backup_rid = {});

  /// Tuple rewritten in place; logs before and after images (2x payload,
  /// the historical charge for a modify).
  void LogModify(int src_node, uint64_t txn, uint32_t rel, int32_t fragment,
                 storage::Rid rid, std::span<const uint8_t> before,
                 std::span<const uint8_t> after, bool mirrored,
                 storage::Rid backup_rid = {});

  /// Catalog partition-spec flip of an elastic migration (`before`/`after`
  /// are PartitionSpec::Serialize images; fragment -1, mirrored). Redo of a
  /// committed flip completes it; undo of a loser restores the old
  /// placement.
  void LogPartition(int src_node, uint64_t txn, uint32_t rel,
                    std::span<const uint8_t> before,
                    std::span<const uint8_t> after);

  /// Forces the log tail for `src_node`'s records *without* the commit
  /// acknowledgement: flushes the partial packet, settles deferred server
  /// work, and writes the partial log page. This is the data force of the
  /// commit protocol — the statement's page writes may only proceed once it
  /// completes (write-ahead rule).
  void ForceTail(int src_node);

  /// Seals the statement's commit record (winner marker) and runs the
  /// classic commit step: force + acknowledgement round trip.
  void LogCommit(int src_node, uint64_t txn);

  /// Charges the fuzzy-checkpoint record pair (excluded from the
  /// data-record stats, like commit markers) and forces the tail. The
  /// caller seals the actual checkpoint via WalStore::Checkpoint().
  void ChargeCheckpoint(int src_node);

  /// Applies packets shipped by task-bound sources to the server's
  /// sequential log, in canonical node order, charging the query tracker.
  /// The machine calls this at every phase barrier where stores logged;
  /// no-op when nothing is deferred.
  void Settle();

  /// Commit point for `src_node`: flushes its partial packet, forces the
  /// log tail, and waits for the acknowledgement.
  void Commit(int src_node);

  /// Counters aggregated over the per-node streams.
  Stats stats() const;

  WalStore* wal() { return wal_; }

 private:
  sim::CostTracker* TrackerFor(int src_node) const;
  void ShipPacket(int src_node, uint64_t bytes);
  /// Server side: copy `bytes` into the log buffer, write full pages.
  void ApplyToServer(uint64_t bytes);
  /// Charge path of Append without bumping the record/byte stats — used for
  /// commit markers, which the metrics contract excludes from log_records.
  void AppendUncounted(int src_node, uint32_t payload_bytes);

  sim::CostTracker* tracker_;
  int recovery_node_;
  uint32_t page_size_;
  WalStore* wal_;
  /// Unshipped log bytes per source node.
  std::vector<uint64_t> pending_;
  /// Shipped bytes per source awaiting server-side settlement (only used
  /// while the source is bound to a shard).
  std::vector<uint64_t> unsettled_;
  /// Task-shard overrides per source node (null = the query tracker).
  std::vector<sim::CostTracker*> overrides_;
  /// Per-source record/byte counters (single writer: the owning task).
  std::vector<uint64_t> records_;
  std::vector<uint64_t> bytes_;
  /// Bytes accumulated at the server toward the next log page.
  uint64_t server_pending_ = 0;
  uint64_t log_pages_written_ = 0;
  uint64_t forced_flushes_ = 0;
  /// Record/byte counters used when no tracker is attached (logging off:
  /// there are no per-node vectors to write into). Atomic because parallel
  /// store tasks bump them concurrently; relaxed increments commute, so the
  /// totals stay deterministic.
  std::atomic<uint64_t> untracked_records_{0};
  std::atomic<uint64_t> untracked_bytes_{0};
};

}  // namespace gammadb::gamma

#endif  // GAMMA_GAMMA_RECOVERY_LOG_H_
