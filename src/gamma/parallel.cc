// Host-parallel task runner of GammaMachine: maps one phase's independent
// per-node work onto the process-wide worker pool, with deterministic cost
// accounting.
//
// Determinism contract: each task charges into a private CostTracker shard
// (a full node-slot vector with no phases of its own); after the barrier the
// shards are merged into the query tracker *in task order*. With one host
// thread the same tasks run inline in the same order, so every simulated
// time, counter and answer is byte-identical for any thread count — the
// schedule decides only which core does the work, never what is charged.

#include <memory>

#include "common/macros.h"
#include "gamma/machine.h"
#include "sim/host_pool.h"

namespace gammadb::gamma {

std::vector<GammaMachine::NodeGroup> GammaMachine::GroupByServingNode(
    const std::vector<FragmentCopy>& sources) {
  std::vector<NodeGroup> groups;
  for (size_t s = 0; s < sources.size(); ++s) {
    const int node = sources[s].node;
    NodeGroup* group = nullptr;
    for (NodeGroup& existing : groups) {
      if (existing.node == node) {
        group = &existing;
        break;
      }
    }
    if (group == nullptr) {
      // Keep groups in ascending node order: it is the canonical merge
      // order, and with failover off it equals fragment order.
      size_t at = 0;
      while (at < groups.size() && groups[at].node < node) ++at;
      groups.insert(groups.begin() + static_cast<std::ptrdiff_t>(at),
                    NodeGroup{node, {}});
      group = &groups[at];
    }
    group->members.push_back(s);
  }
  return groups;
}

Status GammaMachine::RunNodeTasks(sim::CostTracker* tracker,
                                  std::vector<NodeTask> tasks) {
  const size_t n = tasks.size();
  std::vector<std::unique_ptr<sim::CostTracker>> shards(n);
  std::vector<Status> statuses(n, Status::OK());
  std::vector<std::function<void()>> thunks;
  thunks.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    shards[i] =
        std::make_unique<sim::CostTracker>(config_.hw, config_.tracker_nodes());
    shards[i]->AttachFaultInjector(faults_.get());
    thunks.push_back([this, i, tracker, &tasks, &shards, &statuses] {
      const NodeTask& task = tasks[i];
      if (task.owner >= 0) {
        storage::StorageManager& sm = *nodes_[static_cast<size_t>(task.owner)];
        sm.BeginExclusive();
        if (tracker != nullptr) sm.BindTracker(shards[i].get(), task.owner);
        statuses[i] = task.body(*shards[i]);
        sm.EndExclusive();
      } else {
        statuses[i] = task.body(*shards[i]);
      }
    });
  }
  sim::HostPool::Instance().RunAll(thunks);
  // Barrier passed: merge shards and restore the node bindings, in task
  // order (callers build tasks in canonical node order).
  for (size_t i = 0; i < n; ++i) {
    if (tracker != nullptr) tracker->MergeUsage(*shards[i]);
    if (tasks[i].owner >= 0) {
      nodes_[static_cast<size_t>(tasks[i].owner)]->BindTracker(tracker,
                                                               tasks[i].owner);
    }
  }
  for (const Status& status : statuses) {
    GAMMA_RETURN_NOT_OK(status);
  }
  return Status::OK();
}

}  // namespace gammadb::gamma
