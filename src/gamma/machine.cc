#include "gamma/machine.h"

#include "gamma/recovery_log.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <utility>

#include "common/hash.h"
#include "common/macros.h"
#include "exec/exchange.h"
#include "exec/hash_join.h"
#include "exec/hybrid_join.h"
#include "exec/merge_join.h"
#include "exec/select.h"
#include "exec/skew.h"
#include "exec/sort.h"
#include "exec/split_table.h"
#include "exec/store.h"
#include "obs/chrome_trace.h"
#include "obs/metrics_registry.h"
#include "obs/profile.h"
#include "storage/deferred_update.h"

namespace gammadb::gamma {

using catalog::IndexMeta;
using catalog::PartitionStrategy;
using catalog::RelationMeta;
using catalog::Schema;
using catalog::TupleView;
using exec::Predicate;
using exec::SplitTable;
using storage::AccessIntent;
using storage::LockMode;
using storage::LockName;
using storage::Rid;

namespace {

/// Non-clustered index selections beat a file scan only below this
/// selectivity (the §5.1 optimizer chooses the scan for the 10% queries and
/// the index for the 1% queries).
constexpr double kNonClusteredIndexThreshold = 0.05;

/// Ceiling on overflow rounds; reaching it means the residency escalation
/// could not shrink the build input (impossible without extreme skew).
constexpr int kMaxOverflowRounds = 64;

/// One sort-merge join site: arriving build/probe tuples are spooled to
/// temporary files, sorted on the join attribute once both streams close,
/// and merge-joined (the Teradata-style alternative of §8's comparison).
class MergeJoinSite {
 public:
  MergeJoinSite(int node, storage::StorageManager* sm) : node_(node), sm_(sm) {
    build_spool_ = sm_->CreateFile();
    probe_spool_ = sm_->CreateFile();
  }
  MergeJoinSite(const MergeJoinSite&) = delete;
  MergeJoinSite& operator=(const MergeJoinSite&) = delete;
  ~MergeJoinSite() {
    sm_->DropFile(build_spool_);
    sm_->DropFile(probe_spool_);
  }

  int node() const { return node_; }
  storage::StorageManager& sm() { return *sm_; }
  storage::FileId build_spool() const { return build_spool_; }
  storage::FileId probe_spool() const { return probe_spool_; }
  const Status& status() const { return status_; }

  void AddBuildTuple(std::span<const uint8_t> t) { Spool(build_spool_, t); }
  void AddProbeTuple(std::span<const uint8_t> t) { Spool(probe_spool_, t); }

 private:
  void Spool(storage::FileId file, std::span<const uint8_t> t) {
    if (!status_.ok()) return;
    if (sm_->charge().tracker != nullptr) {
      sm_->charge().Cpu(sm_->charge().tracker->hw().cost.instr_per_tuple_copy);
    }
    const auto rid = sm_->file(file).Append(t);
    if (!rid.ok()) status_ = rid.status();
  }

  int node_;
  storage::StorageManager* sm_;
  storage::FileId build_spool_;
  storage::FileId probe_spool_;
  Status status_;
};

}  // namespace

namespace {

/// Flight-recorder ring capacity: GAMMA_JOURNAL_RING events per tracker
/// node (default 256, 0 disables recording).
size_t JournalCapFromEnv() {
  size_t cap = 256;
  if (const char* env = std::getenv("GAMMA_JOURNAL_RING")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && parsed >= 0) cap = static_cast<size_t>(parsed);
  }
  return cap;
}

}  // namespace

GammaMachine::GammaMachine(GammaConfig config)
    : config_(config),
      txns_(config.tracker_nodes(), config.scheduler_node()),
      journal_(config.tracker_nodes(), JournalCapFromEnv()) {
  GAMMA_CHECK(config_.num_disk_nodes > 0);
  GAMMA_CHECK(config_.num_diskless_nodes >= 0);
  // Disk fault streams cover the disk nodes; packet-drop streams cover every
  // tracker node (diskless processors, scheduler, host and recovery server
  // all send data packets).
  faults_ = std::make_unique<sim::FaultInjector>(
      config_.fault, config_.num_disk_nodes, config_.tracker_nodes());
  for (int i = 0; i < config_.total_query_nodes(); ++i) {
    // Only the disk nodes are subject to the fault schedule; diskless query
    // processors use their StorageManager solely for join spool files.
    const bool disk_node = i < config_.num_disk_nodes;
    nodes_.push_back(std::make_unique<storage::StorageManager>(
        config_.page_size, config_.buffer_pool_bytes,
        disk_node ? faults_.get() : nullptr, disk_node ? i : -1));
  }
  if (config_.enable_logging) {
    wal_ = std::make_unique<WalStore>(config_.tracker_nodes());
  }
  // Profile ring capacity: GAMMA_PROFILE_RING statements (default 64,
  // 0 disables buffering). One FlushProfileRing file replaces the
  // one-file-per-query pattern on long runs.
  if (const char* env = std::getenv("GAMMA_PROFILE_RING")) {
    char* end = nullptr;
    const long cap = std::strtol(env, &end, 10);
    if (end != env && cap >= 0) profile_ring_cap_ = static_cast<size_t>(cap);
  }
  // Wire the flight recorder into the layers that emit events from their
  // own call sites: fault draws (per-node rings), lock waits / deadlock
  // victims (scheduler ring), WAL forces / checkpoints (recovery ring).
  faults_->AttachJournal(&journal_);
  txns_.AttachJournal(&journal_, config_.scheduler_node());
  if (wal_ != nullptr) {
    wal_->AttachJournal(&journal_, config_.recovery_node());
  }
}

void GammaMachine::BindAll(sim::CostTracker* tracker) {
  for (int i = 0; i < config_.total_query_nodes(); ++i) {
    nodes_[static_cast<size_t>(i)]->BindTracker(tracker, i);
  }
}

Status GammaMachine::FlushAllPools() {
  // Every node is bound to the same tracker (or to none) between parallel
  // steps; flush one host task per node and merge in node order.
  sim::CostTracker* tracker = nodes_[0]->charge().tracker;
  std::vector<NodeTask> tasks;
  tasks.reserve(nodes_.size());
  for (size_t i = 0; i < nodes_.size(); ++i) {
    tasks.push_back(NodeTask{static_cast<int>(i), [this, i](sim::CostTracker&) {
                               return nodes_[i]->pool().FlushAll();
                             }});
  }
  return RunNodeTasks(tracker, std::move(tasks));
}

Result<GammaMachine::FragmentCopy> GammaMachine::ServingCopy(
    const RelationMeta& meta, int fragment) const {
  const uint32_t primary = meta.per_node_file[static_cast<size_t>(fragment)];
  if (!faults_->IsDead(fragment)) {
    return FragmentCopy{fragment, primary, /*backup=*/false};
  }
  if (meta.backed_up) {
    const int host = (fragment + 1) % config_.num_disk_nodes;
    const uint32_t file =
        meta.per_node_backup_file[static_cast<size_t>(fragment)];
    if (file != catalog::kNoFile && !faults_->IsDead(host)) {
      return FragmentCopy{host, file, /*backup=*/true};
    }
  }
  return Status::Unavailable("fragment " + std::to_string(fragment) + " of " +
                             meta.name + " has no surviving copy");
}

std::vector<int> GammaMachine::LiveDiskNodes() const {
  std::vector<int> live;
  for (int i = 0; i < config_.num_disk_nodes; ++i) {
    if (!faults_->IsDead(i)) live.push_back(i);
  }
  return live;
}

std::vector<txn::LockManager::Grant> GammaMachine::CommitTxn(uint64_t txn) {
  // The transaction's statements each forced their log records and pages at
  // statement end, so the commit point only seals the winner marker.
  if (wal_ != nullptr && !wal_->IsCommitted(txn) &&
      wal_->HasDataRecords(txn)) {
    wal_->NoteCommit(txn);
    if (config_.checkpoint_every_commits > 0 &&
        wal_->commits_since_checkpoint() >= config_.checkpoint_every_commits) {
      wal_->Checkpoint();
    }
  }
  for (auto& node : nodes_) node->locks().ReleaseAll(txn);
  return txns_.Commit(txn);
}

std::vector<txn::LockManager::Grant> GammaMachine::AbortTxn(uint64_t txn) {
  if (wal_ != nullptr && !wal_->IsCommitted(txn) &&
      wal_->HasDataRecords(txn)) {
    UndoTransaction(txn, /*close=*/true);
    for (auto& node : nodes_) node->pool().Invalidate();
  }
  for (auto& node : nodes_) node->locks().ReleaseAll(txn);
  return txns_.Abort(txn);
}

Status GammaMachine::DropRelation(const std::string& name) {
  GAMMA_ASSIGN_OR_RETURN(RelationMeta * meta, catalog_.Get(name));
  for (int i = 0; i < config_.num_disk_nodes; ++i) {
    const uint32_t fid = meta->per_node_file[static_cast<size_t>(i)];
    if (fid != catalog::kNoFile) nodes_[static_cast<size_t>(i)]->DropFile(fid);
  }
  if (meta->backed_up) {
    for (int i = 0; i < config_.num_disk_nodes; ++i) {
      const uint32_t fid = meta->per_node_backup_file[static_cast<size_t>(i)];
      if (fid == catalog::kNoFile) continue;
      nodes_[static_cast<size_t>((i + 1) % config_.num_disk_nodes)]->DropFile(
          fid);
    }
  }
  catalog_.Drop(name);
  stats_.Drop(name);
  return Status::OK();
}

Status GammaMachine::AcquireTxnLock(sim::CostTracker* tracker, uint64_t txn,
                                    int charge_node, txn::LockId id,
                                    txn::LockMode mode) {
  if (tracker != nullptr) {
    tracker->ChargeCpu(charge_node, tracker->hw().cost.instr_per_lock);
  }
  const txn::TxnManager::AcquireResult res = txns_.Acquire(txn, id, mode);
  // The machine runs one statement at a time, so a conflict can only be with
  // another *open* transaction: under fail-fast 2PL that is a precondition
  // failure the caller resolves (the workload scheduler never lets real
  // execution reach a conflicting footprint).
  switch (res.outcome) {
    case txn::TxnManager::AcquireResult::Outcome::kGranted:
      return Status::OK();
    case txn::TxnManager::AcquireResult::Outcome::kAbortedSelf:
      return Status::FailedPrecondition(
          "transaction " + std::to_string(txn) +
          " aborted as deadlock victim requesting " + id.ToString());
    case txn::TxnManager::AcquireResult::Outcome::kBlocked:
    default:
      // Fail fast instead of blocking a real thread: cancel the queued wait
      // so the transaction can abort/retry.
      txns_.Abort(txn);
      return Status::FailedPrecondition(
          "lock conflict on " + id.ToString() + " (" + txn::ModeName(mode) +
          ") for transaction " + std::to_string(txn));
  }
}

void GammaMachine::FillLockMetrics(uint64_t txn,
                                   sim::QueryMetrics* metrics) const {
  const txn::TxnStats stats = txns_.StatsFor(txn);
  metrics->locks_acquired = stats.locks_acquired;
  metrics->lock_waits = stats.lock_waits;
  metrics->lock_wait_sec = stats.lock_wait_sec;
  metrics->deadlocks = stats.deadlocks;
  metrics->lock_aborts = stats.aborts;
}

void GammaMachine::AbortQuery(uint64_t txn, const std::string& partial_result,
                              uint64_t wal_txn, bool wal_crashed) {
  for (auto& node : nodes_) node->locks().ReleaseAll(txn);
  txns_.Abort(txn);
  // A failed query's dirty pages are not durable state; drop them instead of
  // flushing (a dead node could not accept them anyway).
  for (auto& node : nodes_) node->pool().Discard();
  BindAll(nullptr);
  if (wal_ != nullptr && wal_txn != 0) {
    if (wal_crashed) {
      // The node died at its commit point: undo the statement's effects on
      // the nodes still alive (so failover reads never see them), but leave
      // the records open as a loser — the dead node's copies are
      // unreachable until Recover()/ReintegrateNode() finishes the job.
      wal_->DiscardStaged();
      UndoTransaction(wal_txn, /*close=*/false);
    } else {
      // Clean abort: reverse whatever the statement already sealed — the
      // pool Discard above dropped unflushed effects, but records of pages
      // that were evicted (or force-flushed before a later step failed)
      // survived on disk. Undo is test-and-apply, so already-dropped
      // effects are skipped.
      UndoTransaction(wal_txn, /*close=*/true);
    }
    // The undo ran uncharged; settle its pages off-budget so the next
    // measured query does not pay for them.
    for (auto& node : nodes_) node->pool().Invalidate();
  }
  if (!partial_result.empty() && catalog_.Contains(partial_result)) {
    auto meta_or = catalog_.Get(partial_result);
    if (meta_or.ok()) {
      RelationMeta* meta = *meta_or;
      for (int i = 0; i < config_.num_disk_nodes; ++i) {
        const uint32_t fid = meta->per_node_file[static_cast<size_t>(i)];
        if (fid != catalog::kNoFile) {
          nodes_[static_cast<size_t>(i)]->DropFile(fid);
        }
      }
    }
    catalog_.Drop(partial_result);
    stats_.Drop(partial_result);
  }
  BindAll(nullptr);
}

Result<QueryResult> GammaMachine::RunWithFailover(
    const std::function<Result<QueryResult>()>& attempt) {
  if (crashed_) {
    return Status::Unavailable(
        "machine crashed: run Recover() before issuing queries");
  }
  Result<QueryResult> result = attempt();
  const uint32_t budget =
      config_.failover_max_retries > 0
          ? static_cast<uint32_t>(config_.failover_max_retries)
          : 0;
  uint32_t retries = 0;
  double backoff_sec = 0;
  while (!result.ok() && result.status().IsUnavailable() &&
         retries < budget) {
    // A node died mid-flight: the attempt was aborted cleanly (locks
    // released, partial result dropped). Wait out the simulated
    // reconfiguration delay, then retry — fragment routing now resolves to
    // the chained backups. Unavailable after the final retry means some
    // fragment truly has no surviving copy, and is reported to the host.
    backoff_sec +=
        config_.failover_backoff_base_sec * static_cast<double>(1u << retries);
    ++retries;
    result = attempt();
  }
  if (result.ok() && retries > 0) {
    result->failover_retries = retries;
    result->metrics.failover_retries = retries;
    result->metrics.failover_backoff_sec = backoff_sec;
    result->metrics.scheduling_sec += backoff_sec;
  }
  return result;
}

Result<QueryResult> GammaMachine::FinalizeObs(const char* label,
                                              Result<QueryResult> result) {
  if (result.ok()) {
    obs::FinalizeStatement(config_.trace, "gamma", label,
                           config_.hw.net.ring_bytes_per_sec, &*result);
    if (result->profile != nullptr && profile_ring_cap_ > 0) {
      profile_ring_.push_back(result->profile);
      while (profile_ring_.size() > profile_ring_cap_) {
        profile_ring_.pop_front();
      }
    }
    // Flight recorder: place the statement's lifecycle inside its simulated
    // interval, then advance the machine clock past it. Strictly
    // post-accounting — recording costs no simulated time. Mid-statement
    // events (lock waits, fault draws) were stamped at the interval's
    // begin; phase markers land at their cumulative offsets.
    if (journal_.enabled()) {
      const sim::QueryMetrics& metrics = result->metrics;
      const int64_t ordinal = static_cast<int64_t>(++statement_ordinal_);
      const double begin = journal_.now();
      const int host = config_.host_node();
      const int scheduler = config_.scheduler_node();
      journal_.EmitAt(host, begin, obs::JournalEventKind::kStatementBegin,
                      ordinal, 0, label);
      if (metrics.failover_retries > 0) {
        journal_.EmitAt(
            scheduler, begin, obs::JournalEventKind::kFailoverRetry,
            static_cast<int64_t>(metrics.failover_retries),
            static_cast<int64_t>(metrics.failover_backoff_sec * 1e6), label);
      }
      double cursor = begin + metrics.scheduling_sec;
      for (const sim::PhaseMetrics& phase : metrics.phases) {
        journal_.EmitAt(scheduler, cursor, obs::JournalEventKind::kPhase,
                        ordinal, 0, phase.name);
        cursor += phase.elapsed_sec;
      }
      journal_.EmitAt(host, begin + metrics.TotalSec(),
                      obs::JournalEventKind::kStatementEnd, ordinal,
                      static_cast<int64_t>(result->result_tuples), label);
      journal_.Advance(metrics.TotalSec());
    }
  } else if (result.status().IsCorruption() || result.status().IsIOError()) {
    // A fatal storage error: snapshot the evidence while it is still hot,
    // exactly as a crash would.
    journal_.Emit(config_.host_node(), obs::JournalEventKind::kFatalError, 0,
                  0, result.status().ToString());
    CapturePostMortem("fatal storage error: " + result.status().ToString());
  }
  return result;
}

Status GammaMachine::DumpJournal(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot write journal to " + path);
  }
  const std::string json = journal_.EventsJson();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  return Status::OK();
}

void GammaMachine::CapturePostMortem(const std::string& reason) {
  if (!journal_.enabled()) return;
  std::string out = "{\n  \"reason\": \"";
  for (const char c : reason) {
    if (c == '"' || c == '\\') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  out += "\",\n";
  char buf[96];
  std::snprintf(buf, sizeof(buf), "  \"sim_sec\": %.9f,\n", journal_.now());
  out += buf;
  out += "  \"events\": ";
  out += journal_.EventsJson();
  out += ",\n  \"metrics\": {";
  const auto samples = obs::MetricsRegistry::Instance().Snapshot();
  for (size_t i = 0; i < samples.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%s\n    \"%s\": %.9g",
                  i == 0 ? "" : ",", samples[i].name.c_str(),
                  samples[i].value);
    out += buf;
  }
  out += "\n  }\n}\n";
  post_mortem_ = std::move(out);
}

Status GammaMachine::FlushProfileRing(const std::string& path) {
  const std::vector<std::shared_ptr<const obs::Profile>> profiles(
      profile_ring_.begin(), profile_ring_.end());
  if (!obs::WriteChromeTraceAll(profiles, path)) {
    return Status::IOError("cannot write profile-ring trace to " + path);
  }
  profile_ring_.clear();
  return Status::OK();
}

std::string GammaMachine::FreshResultName() {
  return "result_" + std::to_string(next_result_id_++);
}

Status GammaMachine::CreateRelation(const std::string& name,
                                    catalog::Schema schema,
                                    catalog::PartitionSpec spec) {
  if (catalog_.Contains(name)) {
    return Status::AlreadyExists("relation " + name);
  }
  for (int i = 0; i < config_.num_disk_nodes; ++i) {
    if (faults_->IsDead(i)) {
      return Status::Unavailable("cannot create relation " + name +
                                 " while disk node " + std::to_string(i) +
                                 " is down");
    }
  }
  RelationMeta meta;
  meta.name = name;
  meta.schema = std::move(schema);
  meta.partitioning = std::move(spec);
  for (int i = 0; i < config_.num_disk_nodes; ++i) {
    meta.per_node_file.push_back(nodes_[static_cast<size_t>(i)]->CreateFile());
  }
  if (config_.chained_declustering && config_.num_disk_nodes > 1) {
    meta.backed_up = true;
    for (int i = 0; i < config_.num_disk_nodes; ++i) {
      const int host = (i + 1) % config_.num_disk_nodes;
      meta.per_node_backup_file.push_back(
          nodes_[static_cast<size_t>(host)]->CreateFile());
    }
  }
  return catalog_.Register(std::move(meta));
}

Status GammaMachine::LoadTuples(
    const std::string& name, const std::vector<std::vector<uint8_t>>& tuples) {
  GAMMA_ASSIGN_OR_RETURN(RelationMeta * meta, catalog_.Get(name));
  // Validate everything before touching any fragment, so the common failure
  // (malformed input) rejects the whole batch without a single write.
  for (const std::vector<uint8_t>& tuple : tuples) {
    if (tuple.size() != meta->schema.tuple_size()) {
      return Status::InvalidArgument("tuple size does not match schema");
    }
  }
  catalog::Partitioner partitioner(&meta->partitioning, &meta->schema,
                                   config_.num_disk_nodes);
  // Route every tuple once on the coordinator, then fan the appends out one
  // host task per disk node: a node appends exactly the subsequence of
  // tuples homed (or backed up) on it, in input order — the same per-node
  // append sequence the sequential loop produced, so the stored pages are
  // bit-identical for any thread count.
  std::vector<int> targets(tuples.size());
  for (size_t i = 0; i < tuples.size(); ++i) {
    targets[i] = partitioner.NodeFor(tuples[i]);
  }
  struct Undo {
    uint32_t file;
    Rid rid;
  };
  std::vector<std::vector<Undo>> undo(
      static_cast<size_t>(config_.num_disk_nodes));
  std::vector<NodeTask> tasks;
  tasks.reserve(static_cast<size_t>(config_.num_disk_nodes));
  for (int n = 0; n < config_.num_disk_nodes; ++n) {
    tasks.push_back(NodeTask{
        n, [&, n](sim::CostTracker&) -> Status {
          storage::StorageManager& sm = *nodes_[static_cast<size_t>(n)];
          std::vector<Undo>& mine = undo[static_cast<size_t>(n)];
          for (size_t i = 0; i < tuples.size(); ++i) {
            if (targets[i] == n) {
              const uint32_t fid = meta->per_node_file[static_cast<size_t>(n)];
              auto rid_or = sm.file(fid).Append(tuples[i]);
              if (!rid_or.ok()) return rid_or.status();
              mine.push_back({fid, *rid_or});
            }
            if (meta->backed_up &&
                (targets[i] + 1) % config_.num_disk_nodes == n) {
              const uint32_t bfid =
                  meta->per_node_backup_file[static_cast<size_t>(targets[i])];
              auto brid_or = sm.file(bfid).Append(tuples[i]);
              if (!brid_or.ok()) return brid_or.status();
              mine.push_back({bfid, *brid_or});
            }
          }
          return Status::OK();
        }});
  }
  Status failed = RunNodeTasks(nullptr, std::move(tasks));
  if (failed.ok()) {
    // Loading is not a measured query: settle the pools now (uncharged) so
    // no load-time dirty page is written back on a later query's budget,
    // and so measured queries start cold. A node dying during this settle
    // fails the load too — the caller must see that the batch didn't land.
    std::vector<NodeTask> settles;
    settles.reserve(nodes_.size());
    for (size_t i = 0; i < nodes_.size(); ++i) {
      settles.push_back(NodeTask{static_cast<int>(i),
                                 [this, i](sim::CostTracker&) {
                                   return nodes_[i]->pool().Invalidate();
                                 }});
    }
    failed = RunNodeTasks(nullptr, std::move(settles));
  }
  if (!failed.ok()) {
    // All-or-nothing: tombstone everything this call appended while the
    // touched pages are still cached, then settle the pools (best effort on
    // a node that died mid-load — its data is lost with it regardless).
    for (int n = 0; n < config_.num_disk_nodes; ++n) {
      std::vector<Undo>& mine = undo[static_cast<size_t>(n)];
      for (auto it = mine.rbegin(); it != mine.rend(); ++it) {
        nodes_[static_cast<size_t>(n)]->file(it->file).Delete(it->rid);
      }
    }
    for (auto& node : nodes_) node->pool().Invalidate();
    return failed;
  }
  meta->num_tuples += tuples.size();
  stats_.OnLoad(name, meta->schema, tuples, meta->partitioning);
  return Status::OK();
}

Status GammaMachine::BuildIndex(const std::string& name, int attr,
                                bool clustered) {
  GAMMA_ASSIGN_OR_RETURN(RelationMeta * meta, catalog_.Get(name));
  if (attr < 0 || static_cast<size_t>(attr) >= meta->schema.num_attrs()) {
    return Status::InvalidArgument("index attribute out of range");
  }
  if (clustered && !meta->indices.empty()) {
    return Status::FailedPrecondition(
        "build the clustered index before any non-clustered index: "
        "clustering rewrites every fragment and would invalidate rids");
  }
  if (clustered && meta->FindClusteredIndex() != nullptr) {
    return Status::AlreadyExists("clustered index already exists");
  }

  IndexMeta index;
  index.attr = attr;
  index.clustered = clustered;

  // Each node builds its fragment's index (and, for a clustered index, its
  // reordered fragment) independently; the per-node file and index ids land
  // in preassigned slots, so the catalog sees them in node order regardless
  // of which host thread finished first.
  std::vector<storage::FileId> new_files(
      static_cast<size_t>(config_.num_disk_nodes), catalog::kNoFile);
  std::vector<storage::IndexId> new_indices(
      static_cast<size_t>(config_.num_disk_nodes));
  std::vector<NodeTask> tasks;
  tasks.reserve(static_cast<size_t>(config_.num_disk_nodes));
  for (int i = 0; i < config_.num_disk_nodes; ++i) {
    tasks.push_back(NodeTask{i, [&, i](sim::CostTracker&) -> Status {
      storage::StorageManager& sm = *nodes_[static_cast<size_t>(i)];
      storage::HeapFile& fragment =
          sm.file(meta->per_node_file[static_cast<size_t>(i)]);

      std::vector<std::pair<int32_t, Rid>> entries;
      entries.reserve(fragment.num_tuples());

      if (clustered) {
        // Physically reorder the fragment into key order, then index it.
        std::vector<std::vector<uint8_t>> tuples;
        tuples.reserve(fragment.num_tuples());
        GAMMA_RETURN_NOT_OK(
            fragment.Scan([&](Rid, std::span<const uint8_t> tuple) {
              tuples.emplace_back(tuple.begin(), tuple.end());
              return true;
            }));
        std::stable_sort(tuples.begin(), tuples.end(),
                         [&](const std::vector<uint8_t>& a,
                             const std::vector<uint8_t>& b) {
                           return TupleView(&meta->schema, a)
                                      .GetInt(static_cast<size_t>(attr)) <
                                  TupleView(&meta->schema, b)
                                      .GetInt(static_cast<size_t>(attr));
                         });
        const storage::FileId sorted_id = sm.CreateFile();
        storage::HeapFile& sorted = sm.file(sorted_id);
        for (const std::vector<uint8_t>& tuple : tuples) {
          GAMMA_ASSIGN_OR_RETURN(const Rid rid, sorted.Append(tuple));
          entries.emplace_back(TupleView(&meta->schema, tuple)
                                   .GetInt(static_cast<size_t>(attr)),
                               rid);
        }
        new_files[static_cast<size_t>(i)] = sorted_id;
      } else {
        GAMMA_RETURN_NOT_OK(
            fragment.Scan([&](Rid rid, std::span<const uint8_t> tuple) {
              entries.emplace_back(TupleView(&meta->schema, tuple)
                                       .GetInt(static_cast<size_t>(attr)),
                                   rid);
              return true;
            }));
        std::sort(entries.begin(), entries.end(),
                  [](const auto& a, const auto& b) {
                    if (a.first != b.first) return a.first < b.first;
                    return a.second < b.second;
                  });
      }

      std::vector<storage::BTree::Entry> btree_entries;
      btree_entries.reserve(entries.size());
      for (const auto& [key, rid] : entries) {
        btree_entries.push_back(storage::BTree::Entry{key, rid});
      }
      const storage::IndexId index_id = sm.CreateIndex();
      GAMMA_RETURN_NOT_OK(sm.index(index_id).BulkLoad(btree_entries));
      new_indices[static_cast<size_t>(i)] = index_id;
      return Status::OK();
    }});
  }
  GAMMA_RETURN_NOT_OK(RunNodeTasks(nullptr, std::move(tasks)));

  // Commit the build on the coordinator, in node order.
  for (int i = 0; i < config_.num_disk_nodes; ++i) {
    if (clustered) {
      storage::StorageManager& sm = *nodes_[static_cast<size_t>(i)];
      sm.DropFile(meta->per_node_file[static_cast<size_t>(i)]);
      meta->per_node_file[static_cast<size_t>(i)] =
          new_files[static_cast<size_t>(i)];
    }
    index.per_node_index.push_back(new_indices[static_cast<size_t>(i)]);
  }

  meta->indices.push_back(std::move(index));
  stats_.OnIndexBuilt(name, attr, clustered);
  for (auto& node : nodes_) node->pool().Invalidate();
  return Status::OK();
}

GammaMachine::AccessDecision GammaMachine::ChooseAccessPath(
    const RelationMeta& meta, const SelectQuery& query) const {
  const Predicate& pred = query.predicate;
  // Indexes usable by this (possibly compound) predicate: those whose key
  // attribute it constrains. The remaining conjunction terms run as residual
  // filters inside the index select.
  const IndexMeta* clustered = nullptr;
  const IndexMeta* non_clustered = nullptr;
  for (const IndexMeta& index : meta.indices) {
    if (!pred.BoundsOn(index.attr).has_value()) continue;
    if (index.clustered) {
      if (clustered == nullptr) clustered = &index;
    } else if (non_clustered == nullptr) {
      non_clustered = &index;
    }
  }

  switch (query.access) {
    case AccessPath::kFileScan:
      return {AccessPath::kFileScan, nullptr};
    case AccessPath::kClusteredIndex:
      GAMMA_CHECK_MSG(clustered != nullptr,
                      "no clustered index on a predicate attribute");
      return {AccessPath::kClusteredIndex, clustered};
    case AccessPath::kNonClusteredIndex:
      GAMMA_CHECK_MSG(non_clustered != nullptr,
                      "no non-clustered index on a predicate attribute");
      return {AccessPath::kNonClusteredIndex, non_clustered};
    case AccessPath::kAuto:
      break;
  }
  if (clustered != nullptr) return {AccessPath::kClusteredIndex, clustered};
  if (non_clustered == nullptr) return {AccessPath::kFileScan, nullptr};
  // Non-clustered: worthwhile only for low selectivity (§5.1).
  const auto bounds = *pred.BoundsOn(non_clustered->attr);
  const double span =
      static_cast<double>(bounds.second) - bounds.first + 1;
  const double selectivity =
      span / std::max<double>(1.0, static_cast<double>(meta.num_tuples));
  if (selectivity <= kNonClusteredIndexThreshold) {
    return {AccessPath::kNonClusteredIndex, non_clustered};
  }
  return {AccessPath::kFileScan, nullptr};
}

RelationMeta* GammaMachine::MakeResultRelation(
    const std::string& requested_name, catalog::Schema schema) {
  std::string name =
      requested_name.empty() ? FreshResultName() : requested_name;
  RelationMeta meta;
  meta.name = name;
  meta.schema = std::move(schema);
  meta.partitioning = catalog::PartitionSpec::RoundRobin();
  for (int i = 0; i < config_.num_disk_nodes; ++i) {
    // Results land only on surviving nodes; a dead node's slot keeps the
    // kNoFile sentinel so later reads skip it.
    meta.per_node_file.push_back(
        faults_->IsDead(i) ? catalog::kNoFile
                           : nodes_[static_cast<size_t>(i)]->CreateFile());
  }
  GAMMA_CHECK(catalog_.Register(std::move(meta)).ok());
  return *catalog_.Get(name);
}

std::vector<int> GammaMachine::ParticipatingNodes(
    const RelationMeta& meta, const Predicate& pred) const {
  // The window the (possibly compound) predicate imposes on the
  // partitioning attribute, if any.
  std::optional<std::pair<int32_t, int32_t>> window;
  if (meta.partitioning.strategy != PartitionStrategy::kRoundRobin) {
    window = pred.BoundsOn(meta.partitioning.key_attr);
  }
  if (window.has_value() && window->first <= window->second) {
    const catalog::Partitioner partitioner(&meta.partitioning, &meta.schema,
                                           config_.num_disk_nodes);
    if (window->first == window->second) {
      const int home = partitioner.NodeForKey(window->first);
      if (home >= 0) return {home};
    } else if (meta.partitioning.strategy == PartitionStrategy::kRangeUser ||
               meta.partitioning.strategy ==
                   PartitionStrategy::kRangeUniform) {
      // Range declustering localizes range predicates: only the sites whose
      // key ranges intersect [lo, hi] get a select operator (§2: "the
      // optimizer is able to determine the best way of assigning these
      // operators to processors"). Ranges map to sites through the
      // (post-migration) range_nodes indirection, so walk ranges and dedup
      // the serving nodes rather than assuming consecutive sites.
      const auto& bounds = meta.partitioning.range_boundaries;
      const size_t first = static_cast<size_t>(
          std::upper_bound(bounds.begin(), bounds.end(), window->first) -
          bounds.begin());
      const size_t last = static_cast<size_t>(
          std::upper_bound(bounds.begin(), bounds.end(), window->second) -
          bounds.begin());
      std::set<int> sites;
      for (size_t r = first; r <= last && r < meta.partitioning.num_ranges();
           ++r) {
        sites.insert(meta.partitioning.RangeNode(r, config_.num_disk_nodes));
      }
      if (!sites.empty()) return {sites.begin(), sites.end()};
    }
  }
  std::vector<int> all(static_cast<size_t>(config_.num_disk_nodes));
  for (int i = 0; i < config_.num_disk_nodes; ++i) {
    all[static_cast<size_t>(i)] = i;
  }
  return all;
}

Result<QueryResult> GammaMachine::RunSelect(const SelectQuery& query) {
  return FinalizeObs("select",
                     RunWithFailover([&] { return RunSelectAttempt(query); }));
}

Result<QueryResult> GammaMachine::RunSelectAttempt(const SelectQuery& query) {
  GAMMA_ASSIGN_OR_RETURN(RelationMeta * meta, catalog_.Get(query.relation));
  sim::CostTracker tracker(config_.hw, config_.tracker_nodes());
  tracker.AttachFaultInjector(faults_.get());
  BindAll(&tracker);
  tracker.ChargeHostSetup(config_.host_setup_sec);
  RecoveryLog log(config_.enable_logging ? &tracker : nullptr,
                  config_.recovery_node(), config_.page_size);
  const uint64_t txn = txns_.Begin();
  QueryGuard guard(this, txn);

  const AccessDecision decision = ChooseAccessPath(*meta, query);
  const std::vector<int> fragments =
      ParticipatingNodes(*meta, query.predicate);
  // Resolve which node serves each participating fragment before any
  // operator is scheduled (primaries, or chained backups of dead nodes).
  std::vector<FragmentCopy> sources;
  sources.reserve(fragments.size());
  for (int f : fragments) {
    GAMMA_ASSIGN_OR_RETURN(const FragmentCopy copy, ServingCopy(*meta, f));
    sources.push_back(copy);
  }
  // A single-site selection stores its (single-tuple) result at one site;
  // otherwise results are declustered round-robin over every live disk
  // node (§4).
  const bool single_site = sources.size() == 1;

  QueryResult result;
  RelationMeta* result_meta = nullptr;
  std::vector<std::unique_ptr<exec::StoreConsumer>> stores;
  std::vector<int> store_nodes;
  if (query.store_result) {
    result_meta = MakeResultRelation(query.result_name, meta->schema);
    result.result_relation = result_meta->name;
    guard.set_partial_result(result_meta->name);
    store_nodes =
        single_site ? std::vector<int>{sources[0].node} : LiveDiskNodes();
    for (int node : store_nodes) {
      stores.push_back(std::make_unique<exec::StoreConsumer>(
          &nodes_[static_cast<size_t>(node)]->file(
              result_meta->per_node_file[static_cast<size_t>(node)]),
          &nodes_[static_cast<size_t>(node)]->charge()));
    }
  }

  // Host submits the compiled query to the scheduler; completion flows back.
  tracker.ChargeControlMessage(config_.host_node(), config_.scheduler_node(),
                               /*blocking=*/true);
  tracker.ChargeControlMessage(config_.scheduler_node(), config_.host_node(),
                               /*blocking=*/true);
  // Scheduling: one select operator per source site, plus one store operator
  // per store site when the result is kept in the database.
  tracker.ChargeScheduling(1, static_cast<uint32_t>(sources.size()));
  if (query.store_result) {
    tracker.ChargeScheduling(1, static_cast<uint32_t>(store_nodes.size()));
  }

  tracker.BeginPhase("select", sim::PhaseKind::kPipelined);

  // Transaction footprint (multi-granularity 2PL, coordinator-side):
  // intention-shared on the relation at the scheduler's lock table, shared on
  // every participating fragment at the fragment's home table. Charged
  // inside the phase so the lock-manager CPU shows up in the cost model.
  {
    const uint32_t rel = txns_.RelationId(meta->name);
    GAMMA_RETURN_NOT_OK(AcquireTxnLock(&tracker, txn, config_.scheduler_node(),
                                       txn::LockId::Relation(rel),
                                       txn::LockMode::kIS));
    for (int f : fragments) {
      const txn::LockId id =
          txn::LockId::Fragment(rel, static_cast<uint32_t>(f));
      GAMMA_RETURN_NOT_OK(
          AcquireTxnLock(&tracker, txn, txns_.TableFor(id), id,
                         txn::LockMode::kS));
    }
  }

  // Producer subphase: one host task per serving node scans its fragments
  // and routes each selected tuple through the split table into the
  // per-(source, consumer) exchange cell — the same routing decisions and
  // network charges as direct delivery, buffered so the consumer side can
  // replay them in canonical order after the barrier.
  exec::Exchange ex(sources.size(),
                    query.store_result ? stores.size() : size_t{1},
                    meta->schema.tuple_size());
  {
    std::vector<NodeTask> scan_tasks;
    for (const NodeGroup& group : GroupByServingNode(sources)) {
      scan_tasks.push_back(NodeTask{
          group.node, [&, group](sim::CostTracker& shard) -> Status {
            storage::StorageManager& sm =
                *nodes_[static_cast<size_t>(group.node)];
            for (size_t s : group.members) {
              const FragmentCopy& src = sources[s];
              GAMMA_CHECK(sm.locks()
                              .Acquire(txn, LockName::File(src.file),
                                       LockMode::kShared)
                              .ok());

              // Store destinations rotated by the source index so concurrent
              // round-robin streams interleave evenly, or a single host
              // destination for host-bound results.
              std::vector<SplitTable::Destination> dests;
              if (query.store_result) {
                for (size_t d = 0; d < stores.size(); ++d) {
                  const size_t rotated = (d + s) % stores.size();
                  dests.push_back(SplitTable::Destination{
                      store_nodes[rotated],
                      [&ex, s, rotated](std::span<const uint8_t> t) {
                        ex.Append(s, rotated, t);
                      }});
                }
              } else {
                dests.push_back(SplitTable::Destination{
                    config_.host_node(),
                    [&ex, s](std::span<const uint8_t> t) {
                      ex.Append(s, 0, t);
                    }});
              }
              SplitTable split(src.node, &meta->schema,
                               exec::RouteSpec::RoundRobin(),
                               std::move(dests), &shard);
              const exec::TupleSink emit =
                  [&split](std::span<const uint8_t> t) { split.Send(t); };

              const storage::HeapFile& fragment = sm.file(src.file);
              // Backups carry no indexes: a backup-served fragment is always
              // scanned.
              const AccessPath path =
                  src.backup ? AccessPath::kFileScan : decision.path;
              switch (path) {
                case AccessPath::kFileScan:
                  GAMMA_RETURN_NOT_OK(exec::SelectScan(fragment, meta->schema,
                                                       query.predicate,
                                                       sm.charge(), emit)
                                          .status());
                  break;
                case AccessPath::kClusteredIndex:
                  GAMMA_RETURN_NOT_OK(
                      exec::ClusteredIndexSelect(
                          fragment,
                          sm.index(decision.index->per_node_index
                                       [static_cast<size_t>(src.node)]),
                          decision.index->attr, meta->schema, query.predicate,
                          sm.charge(), emit)
                          .status());
                  break;
                case AccessPath::kNonClusteredIndex:
                  GAMMA_RETURN_NOT_OK(
                      exec::NonClusteredIndexSelect(
                          fragment,
                          sm.index(decision.index->per_node_index
                                       [static_cast<size_t>(src.node)]),
                          decision.index->attr, meta->schema, query.predicate,
                          sm.charge(), emit)
                          .status());
                  break;
                case AccessPath::kAuto:
                  GAMMA_CHECK_MSG(false, "unresolved access path");
              }
              split.Close();
              shard.ChargeControlMessage(src.node, config_.scheduler_node(),
                                         /*blocking=*/false);
            }
            return Status::OK();
          }});
    }
    GAMMA_RETURN_NOT_OK(RunNodeTasks(&tracker, std::move(scan_tasks)));
  }

  // Consumer subphase: each store site drains its exchange column in
  // ascending source order — exactly the arrival order the sequential
  // source loop produced — appending to its result fragment and logging.
  if (query.store_result) {
    std::vector<NodeTask> store_tasks;
    for (size_t d = 0; d < stores.size(); ++d) {
      const int store_node = store_nodes[d];
      store_tasks.push_back(NodeTask{
          store_node, [&, d, store_node](sim::CostTracker& shard) {
            log.BindNode(store_node, &shard);
            ex.Drain(d, [&, store_node](std::span<const uint8_t> t) {
              stores[d]->Consume(t);
              log.Append(store_node, static_cast<uint32_t>(t.size()));
            });
            log.BindNode(store_node, nullptr);
            return Status::OK();
          }});
    }
    GAMMA_RETURN_NOT_OK(RunNodeTasks(&tracker, std::move(store_tasks)));
    log.Settle();
  } else {
    // Host-bound results are gathered by the coordinator (the host is not a
    // simulated storage node; its packet costs were charged at the split).
    ex.Drain(0, [&result](std::span<const uint8_t> t) {
      result.returned.emplace_back(t.begin(), t.end());
    });
  }
  ex.Clear();

  for (const auto& store : stores) {
    GAMMA_RETURN_NOT_OK(store->status());
  }
  if (query.store_result && config_.enable_logging) {
    for (int node : store_nodes) log.Commit(node);
  }
  GAMMA_RETURN_NOT_OK(FlushAllPools());
  tracker.EndPhase();

  for (auto& node : nodes_) node->locks().ReleaseAll(txn);

  if (query.store_result) {
    uint64_t stored = 0;
    for (const auto& store : stores) stored += store->stored();
    result.result_tuples = stored;
    result_meta->num_tuples = stored;
    stats_.SetResultCardinality(result_meta->name, result_meta->schema,
                                static_cast<double>(stored));
  } else {
    result.result_tuples = result.returned.size();
  }
  guard.Dismiss();
  BindAll(nullptr);
  result.metrics = tracker.Finish();
  result.metrics.log_records = log.stats().records;
  result.metrics.log_forced_flushes = log.stats().forced_flushes;
  FillLockMetrics(txn, &result.metrics);
  txns_.Commit(txn);
  return result;
}

Result<QueryResult> GammaMachine::RunJoin(const JoinQuery& query) {
  return FinalizeObs("join",
                     RunWithFailover([&] { return RunJoinAttempt(query); }));
}

Result<QueryResult> GammaMachine::RunJoinAttempt(const JoinQuery& query) {
  GAMMA_ASSIGN_OR_RETURN(RelationMeta * outer, catalog_.Get(query.outer));
  GAMMA_ASSIGN_OR_RETURN(RelationMeta * inner, catalog_.Get(query.inner));
  if (query.outer_attr < 0 ||
      static_cast<size_t>(query.outer_attr) >= outer->schema.num_attrs() ||
      query.inner_attr < 0 ||
      static_cast<size_t>(query.inner_attr) >= inner->schema.num_attrs()) {
    return Status::InvalidArgument("join attribute out of range");
  }

  // Join sites per execution mode (§6); dead disk nodes host no operators.
  std::vector<int> join_nodes;
  switch (query.mode) {
    case JoinMode::kLocal:
      join_nodes = LiveDiskNodes();
      break;
    case JoinMode::kRemote:
      if (config_.num_diskless_nodes == 0) {
        return Status::InvalidArgument("Remote join with no diskless nodes");
      }
      for (int i = 0; i < config_.num_diskless_nodes; ++i) {
        join_nodes.push_back(config_.num_disk_nodes + i);
      }
      break;
    case JoinMode::kAllnodes:
      join_nodes = LiveDiskNodes();
      for (int i = 0; i < config_.num_diskless_nodes; ++i) {
        join_nodes.push_back(config_.num_disk_nodes + i);
      }
      break;
  }
  if (join_nodes.empty()) {
    return Status::Unavailable("no surviving join sites");
  }
  const size_t nsites = join_nodes.size();
  const uint64_t site_capacity = config_.join_memory_total / nsites;

  sim::CostTracker tracker(config_.hw, config_.tracker_nodes());
  tracker.AttachFaultInjector(faults_.get());
  BindAll(&tracker);
  tracker.ChargeHostSetup(config_.host_setup_sec);
  RecoveryLog log(config_.enable_logging ? &tracker : nullptr,
                  config_.recovery_node(), config_.page_size);
  const uint64_t txn = txns_.Begin();
  QueryGuard guard(this, txn);

  // Resolve the serving copy of every fragment of both inputs up front.
  std::vector<FragmentCopy> inner_sources;
  std::vector<FragmentCopy> outer_sources;
  for (int f = 0; f < config_.num_disk_nodes; ++f) {
    GAMMA_ASSIGN_OR_RETURN(const FragmentCopy ic, ServingCopy(*inner, f));
    GAMMA_ASSIGN_OR_RETURN(const FragmentCopy oc, ServingCopy(*outer, f));
    inner_sources.push_back(ic);
    outer_sources.push_back(oc);
  }

  const Schema result_schema =
      Schema::Concat(inner->schema, outer->schema);
  QueryResult result;
  RelationMeta* result_meta = nullptr;
  std::vector<std::unique_ptr<exec::StoreConsumer>> stores;
  std::vector<int> store_nodes;
  if (query.store_result) {
    result_meta = MakeResultRelation(query.result_name, result_schema);
    result.result_relation = result_meta->name;
    guard.set_partial_result(result_meta->name);
    store_nodes = LiveDiskNodes();
    for (int node : store_nodes) {
      stores.push_back(std::make_unique<exec::StoreConsumer>(
          &nodes_[static_cast<size_t>(node)]->file(
              result_meta->per_node_file[static_cast<size_t>(node)]),
          &nodes_[static_cast<size_t>(node)]->charge()));
    }
  }

  tracker.ChargeControlMessage(config_.host_node(), config_.scheduler_node(),
                               /*blocking=*/true);
  tracker.ChargeControlMessage(config_.scheduler_node(), config_.host_node(),
                               /*blocking=*/true);
  // Scheduling: two selects on the disk nodes, build + join on the join
  // sites ("a join is logically composed of two operators", §6.2.3), one
  // store on the disk nodes.
  tracker.ChargeScheduling(2, static_cast<uint32_t>(config_.num_disk_nodes));
  tracker.ChargeScheduling(2, static_cast<uint32_t>(nsites));
  if (query.store_result) {
    tracker.ChargeScheduling(1, static_cast<uint32_t>(store_nodes.size()));
  }

  // Per-site result split tables (join output is declustered round-robin to
  // the store operators; stays open across overflow rounds). Result tuples
  // buffer in the (site, store) exchange; after every barrier where sites
  // emitted, `drain_results` replays them to the store operators (or the
  // host) in ascending site order.
  exec::Exchange res_ex(nsites, query.store_result ? stores.size() : size_t{1},
                        result_schema.tuple_size());
  std::vector<std::unique_ptr<SplitTable>> result_splits;
  std::vector<exec::TupleSink> result_sinks;
  for (size_t j = 0; j < nsites; ++j) {
    std::vector<SplitTable::Destination> dests;
    if (query.store_result) {
      for (size_t d = 0; d < stores.size(); ++d) {
        const size_t rotated = (d + j) % stores.size();
        dests.push_back(SplitTable::Destination{
            store_nodes[rotated],
            [&res_ex, j, rotated](std::span<const uint8_t> t) {
              res_ex.Append(j, rotated, t);
            }});
      }
    } else {
      dests.push_back(SplitTable::Destination{
          config_.host_node(), [&res_ex, j](std::span<const uint8_t> t) {
            res_ex.Append(j, 0, t);
          }});
    }
    result_splits.push_back(std::make_unique<SplitTable>(
        join_nodes[j], &result_schema, exec::RouteSpec::RoundRobin(),
        std::move(dests), &tracker));
    result_sinks.push_back(
        [split = result_splits.back().get()](std::span<const uint8_t> t) {
          split->Send(t);
        });
  }
  auto drain_results = [&]() -> Status {
    if (query.store_result) {
      std::vector<NodeTask> store_tasks;
      for (size_t d = 0; d < stores.size(); ++d) {
        const int store_node = store_nodes[d];
        store_tasks.push_back(NodeTask{
            store_node, [&, d, store_node](sim::CostTracker& shard) {
              log.BindNode(store_node, &shard);
              res_ex.Drain(d, [&, store_node](std::span<const uint8_t> t) {
                stores[d]->Consume(t);
                log.Append(store_node, static_cast<uint32_t>(t.size()));
              });
              log.BindNode(store_node, nullptr);
              return Status::OK();
            }});
      }
      GAMMA_RETURN_NOT_OK(RunNodeTasks(&tracker, std::move(store_tasks)));
      log.Settle();
    } else {
      res_ex.Drain(0, [&result](std::span<const uint8_t> t) {
        result.returned.emplace_back(t.begin(), t.end());
      });
    }
    res_ex.Clear();
    return Status::OK();
  };
  // Runs `body(j, shard)` as one host task per join site, with site j's
  // result split rebound to that task's shard (probe/bucket/merge work emits
  // result tuples through it) and restored afterwards.
  auto run_site_tasks =
      [&](const std::function<Status(size_t, sim::CostTracker&)>& body)
      -> Status {
    std::vector<NodeTask> tasks;
    tasks.reserve(nsites);
    for (size_t j = 0; j < nsites; ++j) {
      tasks.push_back(NodeTask{
          join_nodes[j], [&, j](sim::CostTracker& shard) {
            result_splits[j]->BindTracker(&shard);
            const Status st = body(j, shard);
            result_splits[j]->BindTracker(&tracker);
            return st;
          }});
    }
    return RunNodeTasks(&tracker, std::move(tasks));
  };

  // Join sites: Simple (Gamma's algorithm), Hybrid (the §8 replacement), or
  // sort-merge (the Teradata-style alternative).
  const uint64_t expected_build =
      query.expected_build_tuples != 0 ? query.expected_build_tuples
                                       : inner->num_tuples;
  std::vector<std::unique_ptr<exec::HashJoinSite>> simple_sites;
  std::vector<std::unique_ptr<exec::HybridHashJoinSite>> hybrid_sites;
  std::vector<std::unique_ptr<MergeJoinSite>> merge_sites;
  const uint64_t seed0 = next_salt_++;
  for (size_t j = 0; j < nsites; ++j) {
    storage::StorageManager& sm = *nodes_[static_cast<size_t>(join_nodes[j])];
    switch (query.algorithm) {
      case JoinAlgorithm::kHybridHash: {
        const uint64_t expected_bytes =
            (expected_build * (inner->schema.tuple_size() +
                               exec::JoinHashTable::kPerEntryOverhead)) /
            nsites;
        hybrid_sites.push_back(std::make_unique<exec::HybridHashJoinSite>(
            join_nodes[j], &sm, &inner->schema, &outer->schema,
            query.inner_attr, query.outer_attr, site_capacity, expected_bytes,
            seed0 ^ 0xA5A5));
        break;
      }
      case JoinAlgorithm::kSimpleHash:
        simple_sites.push_back(std::make_unique<exec::HashJoinSite>(
            join_nodes[j], &sm, &inner->schema, &outer->schema,
            query.inner_attr, query.outer_attr, site_capacity));
        simple_sites.back()->BeginRound(seed0);
        break;
      case JoinAlgorithm::kSortMerge:
        merge_sites.push_back(
            std::make_unique<MergeJoinSite>(join_nodes[j], &sm));
        break;
    }
  }

  // Optional bit-vector filter over the building relation's join keys,
  // consulted by the probing side's split tables (§2).
  std::unique_ptr<exec::BitVectorFilter> filter;
  if (query.use_bit_filter) {
    filter = std::make_unique<exec::BitVectorFilter>(
        static_cast<uint32_t>(std::max<uint64_t>(expected_build * 8, 1024)),
        seed0 ^ 0xF117E4);
  }

  // Gamma uses the same hash function to decluster relations at load time
  // and to split them for joins (§6.2.1) — when the join attribute is the
  // partitioning attribute, every input tuple of a Local join therefore
  // short-circuits, and roughly half do under Allnodes.
  uint64_t routing_salt = HashBytes(&seed0, sizeof(seed0), 0x407E);
  if (inner->partitioning.strategy == PartitionStrategy::kHashed &&
      inner->partitioning.key_attr == query.inner_attr) {
    routing_salt = inner->partitioning.hash_salt;
  } else if (outer->partitioning.strategy == PartitionStrategy::kHashed &&
             outer->partitioning.key_attr == query.outer_attr) {
    routing_salt = outer->partitioning.hash_salt;
  }

  // Skew-aware routing: when the frequency sketches predict that hash
  // routing would leave one site with well over its fair share, draw a
  // charged sample of both inputs and route through a virtual-bucket map
  // balanced by LPT instead. Build and probe must share the map — a build
  // tuple and the probe tuples matching it have to meet at one site.
  bool use_bucket_map = false;
  switch (query.routing) {
    case SplitRouting::kHash:
      break;
    case SplitRouting::kBucketMap:
      use_bucket_map = true;
      break;
    case SplitRouting::kAuto: {
      double predicted = 1.0;
      if (const opt::RelationStats* s = stats_.Find(query.inner)) {
        if (const opt::AttrStats* a = s->Attr(query.inner_attr)) {
          predicted =
              std::max(predicted, opt::PredictHashImbalance(*a, nsites));
        }
      }
      if (const opt::RelationStats* s = stats_.Find(query.outer)) {
        if (const opt::AttrStats* a = s->Attr(query.outer_attr)) {
          predicted =
              std::max(predicted, opt::PredictHashImbalance(*a, nsites));
        }
      }
      use_bucket_map = predicted > opt::kSkewImbalanceThreshold;
      break;
    }
  }

  exec::RouteSpec build_route =
      exec::RouteSpec::HashAttr(query.inner_attr, routing_salt);
  exec::RouteSpec probe_route =
      exec::RouteSpec::HashAttr(query.outer_attr, routing_salt);
  if (use_bucket_map) {
    // Charged sample phase: every kSkewSampleStride-th page of each
    // fragment of both inputs is read (disk + per-tuple CPU through the
    // node's charge context) and the surviving join keys collected per
    // fragment, so the coordinator merges them in canonical fragment order
    // regardless of host thread count. Rebuilt on every failover attempt,
    // against whatever copies are then serving.
    const uint64_t bucket_salt = HashBytes(&seed0, sizeof(seed0), 0xB0C4);
    exec::SplitTableBuilder builder(exec::ChooseBucketCount(nsites),
                                    bucket_salt);
    tracker.BeginPhase("skew_sample", sim::PhaseKind::kPipelined);
    std::vector<std::vector<int32_t>> inner_keys(inner_sources.size());
    std::vector<std::vector<int32_t>> outer_keys(outer_sources.size());
    auto sample_input = [&](const std::vector<FragmentCopy>& sources,
                            const Schema& schema, int attr,
                            const Predicate& pred,
                            std::vector<std::vector<int32_t>>& out) -> Status {
      std::vector<NodeTask> tasks;
      for (const NodeGroup& group : GroupByServingNode(sources)) {
        tasks.push_back(NodeTask{
            group.node, [&, group](sim::CostTracker& shard) -> Status {
              storage::StorageManager& sm =
                  *nodes_[static_cast<size_t>(group.node)];
              const auto& cost = shard.hw().cost;
              for (size_t f : group.members) {
                const FragmentCopy& src = sources[f];
                const storage::HeapFile& file = sm.file(src.file);
                for (uint32_t p = 0; p < file.num_pages();
                     p += exec::kSkewSampleStride) {
                  GAMMA_RETURN_NOT_OK(file.ScanPages(
                      p, p, [&](Rid, std::span<const uint8_t> t) {
                        sm.charge().Cpu(cost.instr_per_tuple_scan +
                                        cost.instr_per_tuple_hash);
                        if (pred.Eval(t, schema)) {
                          out[f].push_back(
                              TupleView(&schema, t).GetInt(
                                  static_cast<size_t>(attr)));
                        }
                        return true;
                      }));
                }
                // Sampled counts return to the scheduler in one message.
                shard.ChargeControlMessage(src.node, config_.scheduler_node(),
                                           false);
              }
              return Status::OK();
            }});
      }
      return RunNodeTasks(&tracker, std::move(tasks));
    };
    GAMMA_RETURN_NOT_OK(sample_input(inner_sources, inner->schema,
                                     query.inner_attr, query.inner_pred,
                                     inner_keys));
    GAMMA_RETURN_NOT_OK(sample_input(outer_sources, outer->schema,
                                     query.outer_attr, query.outer_pred,
                                     outer_keys));
    tracker.EndPhase();
    for (size_t f = 0; f < inner_keys.size(); ++f) {
      for (const int32_t key : inner_keys[f]) {
        builder.AddSampleKey(key, inner_sources[f].node);
      }
    }
    for (size_t f = 0; f < outer_keys.size(); ++f) {
      for (const int32_t key : outer_keys[f]) {
        builder.AddWeightedKey(key, exec::kSkewProbeWeight,
                               outer_sources[f].node);
      }
    }
    const exec::SkewAssignment assignment = builder.Build(join_nodes);
    build_route = exec::RouteSpec::BucketMap(query.inner_attr, bucket_salt,
                                             assignment.bucket_map);
    probe_route = exec::RouteSpec::BucketMap(query.outer_attr, bucket_salt,
                                             assignment.bucket_map);
  }

  auto build_deliver = [&](size_t j) {
    return [&, j](std::span<const uint8_t> t) {
      switch (query.algorithm) {
        case JoinAlgorithm::kHybridHash:
          hybrid_sites[j]->AddBuildTuple(t);
          break;
        case JoinAlgorithm::kSimpleHash:
          simple_sites[j]->AddBuildTuple(t);
          break;
        case JoinAlgorithm::kSortMerge:
          merge_sites[j]->AddBuildTuple(t);
          break;
      }
    };
  };
  auto probe_deliver = [&](size_t j) {
    return [&, j](std::span<const uint8_t> t) {
      switch (query.algorithm) {
        case JoinAlgorithm::kHybridHash:
          hybrid_sites[j]->AddProbeTuple(t, result_sinks[j]);
          break;
        case JoinAlgorithm::kSimpleHash:
          simple_sites[j]->AddProbeTuple(t, result_sinks[j]);
          break;
        case JoinAlgorithm::kSortMerge:
          merge_sites[j]->AddProbeTuple(t);
          break;
      }
    };
  };
  // Push-based operators latch their first error; surface it between phases.
  auto check_sites = [&]() -> Status {
    for (const auto& site : simple_sites) {
      GAMMA_RETURN_NOT_OK(site->status());
    }
    for (const auto& site : hybrid_sites) {
      GAMMA_RETURN_NOT_OK(site->status());
    }
    for (const auto& site : merge_sites) {
      GAMMA_RETURN_NOT_OK(site->status());
    }
    for (const auto& store : stores) {
      GAMMA_RETURN_NOT_OK(store->status());
    }
    return Status::OK();
  };

  // --- Build phase: select inner at every serving site, split on the join
  // attribute to the join sites. Producers buffer into the (fragment, site)
  // exchange; after the barrier each site drains its column in ascending
  // fragment order — the arrival order of the sequential loop. ---
  tracker.BeginPhase("build", sim::PhaseKind::kPipelined);

  // 2PL footprint for both inputs: intention-shared on each relation, shared
  // on every fragment (ascending relation then fragment order, the canonical
  // order that keeps single-statement transactions deadlock-free).
  for (const RelationMeta* rel_meta : {inner, outer}) {
    const uint32_t rel = txns_.RelationId(rel_meta->name);
    GAMMA_RETURN_NOT_OK(AcquireTxnLock(&tracker, txn, config_.scheduler_node(),
                                       txn::LockId::Relation(rel),
                                       txn::LockMode::kIS));
    for (int f = 0; f < config_.num_disk_nodes; ++f) {
      const txn::LockId id =
          txn::LockId::Fragment(rel, static_cast<uint32_t>(f));
      GAMMA_RETURN_NOT_OK(AcquireTxnLock(&tracker, txn, txns_.TableFor(id),
                                         id, txn::LockMode::kS));
    }
  }

  exec::Exchange build_ex(static_cast<size_t>(config_.num_disk_nodes), nsites,
                          inner->schema.tuple_size());
  {
    std::vector<NodeTask> scan_tasks;
    for (const NodeGroup& group : GroupByServingNode(inner_sources)) {
      scan_tasks.push_back(NodeTask{
          group.node, [&, group](sim::CostTracker& shard) -> Status {
            storage::StorageManager& sm =
                *nodes_[static_cast<size_t>(group.node)];
            for (size_t f : group.members) {
              const FragmentCopy& src = inner_sources[f];
              GAMMA_CHECK(sm.locks()
                              .Acquire(txn, LockName::File(src.file),
                                       LockMode::kShared)
                              .ok());
              std::vector<SplitTable::Destination> dests;
              for (size_t j = 0; j < nsites; ++j) {
                dests.push_back(SplitTable::Destination{
                    join_nodes[j], [&build_ex, f, j](std::span<const uint8_t> t) {
                      build_ex.Append(f, j, t);
                    }});
              }
              SplitTable split(src.node, &inner->schema, build_route,
                               std::move(dests), &shard);
              GAMMA_RETURN_NOT_OK(
                  exec::SelectScan(
                      sm.file(src.file), inner->schema, query.inner_pred,
                      sm.charge(),
                      [&](std::span<const uint8_t> t) {
                        if (filter != nullptr) {
                          filter->Insert(
                              TupleView(&inner->schema, t)
                                  .GetInt(
                                      static_cast<size_t>(query.inner_attr)));
                        }
                        split.Send(t);
                      })
                      .status());
              split.Close();
              shard.ChargeControlMessage(src.node, config_.scheduler_node(),
                                         false);
            }
            return Status::OK();
          }});
    }
    GAMMA_RETURN_NOT_OK(RunNodeTasks(&tracker, std::move(scan_tasks)));
  }
  GAMMA_RETURN_NOT_OK(run_site_tasks([&](size_t j, sim::CostTracker&) {
    build_ex.Drain(j, build_deliver(j));
    return Status::OK();
  }));
  build_ex.Clear();
  GAMMA_RETURN_NOT_OK(check_sites());
  GAMMA_RETURN_NOT_OK(FlushAllPools());
  tracker.EndPhase();

  // --- Probe phase: select outer, split with the same hash, probe. ---
  tracker.BeginPhase("probe", sim::PhaseKind::kPipelined);
  exec::Exchange probe_ex(static_cast<size_t>(config_.num_disk_nodes), nsites,
                          outer->schema.tuple_size());
  {
    std::vector<NodeTask> scan_tasks;
    for (const NodeGroup& group : GroupByServingNode(outer_sources)) {
      scan_tasks.push_back(NodeTask{
          group.node, [&, group](sim::CostTracker& shard) -> Status {
            storage::StorageManager& sm =
                *nodes_[static_cast<size_t>(group.node)];
            for (size_t f : group.members) {
              const FragmentCopy& src = outer_sources[f];
              GAMMA_CHECK(sm.locks()
                              .Acquire(txn, LockName::File(src.file),
                                       LockMode::kShared)
                              .ok());
              std::vector<SplitTable::Destination> dests;
              for (size_t j = 0; j < nsites; ++j) {
                dests.push_back(SplitTable::Destination{
                    join_nodes[j], [&probe_ex, f, j](std::span<const uint8_t> t) {
                      probe_ex.Append(f, j, t);
                    }});
              }
              SplitTable split(src.node, &outer->schema, probe_route,
                               std::move(dests), &shard, filter.get(),
                               query.outer_attr);
              GAMMA_RETURN_NOT_OK(
                  exec::SelectScan(sm.file(src.file), outer->schema,
                                   query.outer_pred, sm.charge(),
                                   [&split](std::span<const uint8_t> t) {
                                     split.Send(t);
                                   })
                      .status());
              split.Close();
              shard.ChargeControlMessage(src.node, config_.scheduler_node(),
                                         false);
            }
            return Status::OK();
          }});
    }
    GAMMA_RETURN_NOT_OK(RunNodeTasks(&tracker, std::move(scan_tasks)));
  }
  GAMMA_RETURN_NOT_OK(run_site_tasks([&](size_t j, sim::CostTracker&) {
    probe_ex.Drain(j, probe_deliver(j));
    return Status::OK();
  }));
  probe_ex.Clear();
  GAMMA_RETURN_NOT_OK(drain_results());
  GAMMA_RETURN_NOT_OK(check_sites());
  GAMMA_RETURN_NOT_OK(FlushAllPools());
  tracker.EndPhase();

  if (query.algorithm == JoinAlgorithm::kHybridHash) {
    // Hybrid: spooled buckets are joined locally, one extra read each.
    tracker.BeginPhase("hybrid_buckets", sim::PhaseKind::kPipelined);
    GAMMA_RETURN_NOT_OK(run_site_tasks([&](size_t j, sim::CostTracker&) {
      return hybrid_sites[j]->FinishSpooledBuckets(result_sinks[j]);
    }));
    GAMMA_RETURN_NOT_OK(drain_results());
    GAMMA_RETURN_NOT_OK(check_sites());
    GAMMA_RETURN_NOT_OK(FlushAllPools());
    tracker.EndPhase();
  } else if (query.algorithm == JoinAlgorithm::kSortMerge) {
    // Sort-merge: each site sorts its spooled partitions on the join
    // attribute and merges them; memory bounds the run size, never the
    // join, so there are no overflow rounds.
    tracker.BeginPhase("sort_merge", sim::PhaseKind::kPipelined);
    GAMMA_RETURN_NOT_OK(run_site_tasks([&](size_t j, sim::CostTracker&) {
      MergeJoinSite& site = *merge_sites[j];
      storage::StorageManager& sm = site.sm();
      const storage::FileId sorted_build = exec::ExternalSort(
          sm, site.build_spool(), inner->schema, query.inner_attr,
          site_capacity);
      const storage::FileId sorted_probe = exec::ExternalSort(
          sm, site.probe_spool(), outer->schema, query.outer_attr,
          site_capacity);
      exec::SortMergeJoin(sm.file(sorted_build), inner->schema,
                          query.inner_attr, sm.file(sorted_probe),
                          outer->schema, query.outer_attr, sm.charge(),
                          result_sinks[j]);
      sm.DropFile(sorted_build);
      sm.DropFile(sorted_probe);
      return Status::OK();
    }));
    GAMMA_RETURN_NOT_OK(drain_results());
    GAMMA_RETURN_NOT_OK(check_sites());
    GAMMA_RETURN_NOT_OK(FlushAllPools());
    tracker.EndPhase();
  } else {
    // Simple hash join: recursively redistribute and re-join the overflow
    // partitions. Each round uses a fresh split-table hash, so overflow
    // tuples no longer align with the storage partitioning (§6.2.2). If a
    // round makes no progress — a single key's duplicates exceed the table,
    // which no residency split can fix — the next round is forced: it
    // over-commits memory instead of spooling, guaranteeing termination.
    int round = 0;
    uint64_t prev_spooled = UINT64_MAX;
    for (;;) {
      bool any_overflow = false;
      uint64_t spooled = 0;
      for (const auto& site : simple_sites) {
        any_overflow = any_overflow || site->HasOverflow();
        spooled += site->build_spool().num_tuples() +
                   site->probe_spool().num_tuples();
      }
      if (!any_overflow) break;
      const bool forced = spooled >= prev_spooled;
      prev_spooled = spooled;
      GAMMA_CHECK_MSG(++round < kMaxOverflowRounds,
                      "join overflow failed to converge");
      tracker.AddOverflowRound();
      const uint64_t round_seed = next_salt_++;
      const uint64_t round_salt =
          HashBytes(&round_seed, sizeof(round_seed), 0x0F107);
      for (const auto& site : simple_sites) {
        site->BeginRound(round_seed, forced);
      }

      tracker.BeginPhase("overflow_build_" + std::to_string(round),
                         sim::PhaseKind::kPipelined);
      {
        exec::Exchange oex(nsites, nsites, inner->schema.tuple_size());
        GAMMA_RETURN_NOT_OK(
            run_site_tasks([&](size_t j, sim::CostTracker& shard) -> Status {
              storage::StorageManager& sm =
                  *nodes_[static_cast<size_t>(join_nodes[j])];
              std::vector<SplitTable::Destination> dests;
              for (size_t k = 0; k < nsites; ++k) {
                dests.push_back(SplitTable::Destination{
                    join_nodes[k], [&oex, j, k](std::span<const uint8_t> t) {
                      oex.Append(j, k, t);
                    }});
              }
              SplitTable split(
                  join_nodes[j], &inner->schema,
                  exec::RouteSpec::HashAttr(query.inner_attr, round_salt),
                  std::move(dests), &shard);
              GAMMA_RETURN_NOT_OK(simple_sites[j]->prev_build_spool().Scan(
                  [&](Rid, std::span<const uint8_t> t) {
                    sm.charge().Cpu(config_.hw.cost.instr_per_tuple_scan);
                    split.Send(t);
                    return true;
                  }));
              split.Close();
              return Status::OK();
            }));
        GAMMA_RETURN_NOT_OK(run_site_tasks([&](size_t k, sim::CostTracker&) {
          oex.Drain(k, build_deliver(k));
          return Status::OK();
        }));
      }
      GAMMA_RETURN_NOT_OK(check_sites());
      GAMMA_RETURN_NOT_OK(FlushAllPools());
      tracker.EndPhase();

      tracker.BeginPhase("overflow_probe_" + std::to_string(round),
                         sim::PhaseKind::kPipelined);
      {
        exec::Exchange oex(nsites, nsites, outer->schema.tuple_size());
        GAMMA_RETURN_NOT_OK(
            run_site_tasks([&](size_t j, sim::CostTracker& shard) -> Status {
              storage::StorageManager& sm =
                  *nodes_[static_cast<size_t>(join_nodes[j])];
              std::vector<SplitTable::Destination> dests;
              for (size_t k = 0; k < nsites; ++k) {
                dests.push_back(SplitTable::Destination{
                    join_nodes[k], [&oex, j, k](std::span<const uint8_t> t) {
                      oex.Append(j, k, t);
                    }});
              }
              SplitTable split(
                  join_nodes[j], &outer->schema,
                  exec::RouteSpec::HashAttr(query.outer_attr, round_salt),
                  std::move(dests), &shard);
              GAMMA_RETURN_NOT_OK(simple_sites[j]->prev_probe_spool().Scan(
                  [&](Rid, std::span<const uint8_t> t) {
                    sm.charge().Cpu(config_.hw.cost.instr_per_tuple_scan);
                    split.Send(t);
                    return true;
                  }));
              split.Close();
              return Status::OK();
            }));
        GAMMA_RETURN_NOT_OK(run_site_tasks([&](size_t k, sim::CostTracker&) {
          oex.Drain(k, probe_deliver(k));
          return Status::OK();
        }));
        GAMMA_RETURN_NOT_OK(drain_results());
      }
      GAMMA_RETURN_NOT_OK(check_sites());
      GAMMA_RETURN_NOT_OK(FlushAllPools());
      tracker.EndPhase();
    }
  }

  // Final packets / end-of-stream from the join operators to the stores.
  tracker.BeginPhase("finalize", sim::PhaseKind::kPipelined);
  for (auto& split : result_splits) split->Close();
  GAMMA_RETURN_NOT_OK(drain_results());
  GAMMA_RETURN_NOT_OK(check_sites());
  if (query.store_result && config_.enable_logging) {
    for (int node : store_nodes) log.Commit(node);
  }
  GAMMA_RETURN_NOT_OK(FlushAllPools());
  tracker.EndPhase();

  for (auto& node : nodes_) node->locks().ReleaseAll(txn);

  if (query.store_result) {
    uint64_t stored = 0;
    for (const auto& store : stores) stored += store->stored();
    result.result_tuples = stored;
    result_meta->num_tuples = stored;
    stats_.SetResultCardinality(result_meta->name, result_meta->schema,
                                static_cast<double>(stored));
  } else {
    result.result_tuples = result.returned.size();
  }
  // Site teardown drops the spool files before the tracker unbinds.
  simple_sites.clear();
  hybrid_sites.clear();
  merge_sites.clear();
  guard.Dismiss();
  BindAll(nullptr);
  result.metrics = tracker.Finish();
  result.metrics.log_records = log.stats().records;
  result.metrics.log_forced_flushes = log.stats().forced_flushes;
  FillLockMetrics(txn, &result.metrics);
  txns_.Commit(txn);
  return result;
}

}  // namespace gammadb::gamma
