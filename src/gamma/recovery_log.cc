#include "gamma/recovery_log.h"

#include "common/macros.h"

namespace gammadb::gamma {

RecoveryLog::RecoveryLog(sim::CostTracker* tracker, int recovery_node,
                         uint32_t page_size, WalStore* wal)
    : tracker_(tracker),
      recovery_node_(recovery_node),
      page_size_(page_size),
      wal_(wal) {
  if (tracker_ != nullptr) {
    GAMMA_CHECK(recovery_node >= 0 && recovery_node < tracker->num_nodes());
    const size_t n = static_cast<size_t>(tracker->num_nodes());
    pending_.resize(n, 0);
    unsettled_.resize(n, 0);
    overrides_.resize(n, nullptr);
    records_.resize(n, 0);
    bytes_.resize(n, 0);
  }
}

sim::CostTracker* RecoveryLog::TrackerFor(int src_node) const {
  sim::CostTracker* shard = overrides_[static_cast<size_t>(src_node)];
  return shard != nullptr ? shard : tracker_;
}

void RecoveryLog::BindNode(int src_node, sim::CostTracker* shard) {
  if (tracker_ == nullptr) return;
  overrides_[static_cast<size_t>(src_node)] = shard;
}

void RecoveryLog::ApplyToServer(uint64_t bytes) {
  tracker_->ChargeCpu(recovery_node_,
                      tracker_->hw().cost.instr_per_tuple_copy);
  server_pending_ += bytes;
  while (server_pending_ >= page_size_) {
    tracker_->ChargeDiskWrite(recovery_node_, page_size_,
                              /*sequential=*/true);
    server_pending_ -= page_size_;
    ++log_pages_written_;
  }
}

void RecoveryLog::ShipPacket(int src_node, uint64_t bytes) {
  sim::CostTracker* sink = TrackerFor(src_node);
  sink->ChargeDataPacket(src_node, recovery_node_, bytes);
  if (sink == tracker_) {
    ApplyToServer(bytes);
  } else {
    // A task shard is driving this source: the server's sequential log is
    // shared across sources, so its accounting waits for the next Settle().
    // The receive-side packet charge above lands in the shard's slot for
    // the recovery node and merges like any other usage.
    unsettled_[static_cast<size_t>(src_node)] += bytes;
  }
}

void RecoveryLog::Append(int src_node, uint32_t payload_bytes) {
  const uint32_t record = kRecordHeaderBytes + payload_bytes;
  if (tracker_ == nullptr) {
    untracked_records_.fetch_add(1, std::memory_order_relaxed);
    untracked_bytes_.fetch_add(record, std::memory_order_relaxed);
    return;
  }
  ++records_[static_cast<size_t>(src_node)];
  bytes_[static_cast<size_t>(src_node)] += record;
  // Building the record is cheap; shipping dominates.
  sim::CostTracker* sink = TrackerFor(src_node);
  sink->ChargeCpu(src_node, sink->hw().cost.instr_per_tuple_copy);
  uint64_t& pending = pending_[static_cast<size_t>(src_node)];
  pending += record;
  const uint64_t payload = sink->hw().net.packet_payload_bytes;
  while (pending >= payload) {
    ShipPacket(src_node, payload);
    pending -= payload;
  }
}

void RecoveryLog::Settle() {
  // The staging side mirrors the charging side: records buffered by task-
  // bound sources become durable log content in the same canonical order
  // their packets are applied to the server's sequential log.
  if (wal_ != nullptr) wal_->Seal();
  if (tracker_ == nullptr) return;
  for (size_t node = 0; node < unsettled_.size(); ++node) {
    if (unsettled_[node] == 0) continue;
    ApplyToServer(unsettled_[node]);
    unsettled_[node] = 0;
  }
}

void RecoveryLog::Commit(int src_node) {
  if (wal_ != nullptr) wal_->Seal();
  if (tracker_ == nullptr) return;
  uint64_t& pending = pending_[static_cast<size_t>(src_node)];
  if (pending > 0) {
    ShipPacket(src_node, pending);
    pending = 0;
  }
  Settle();
  if (server_pending_ > 0) {
    // Force the log tail (partial page) at commit.
    tracker_->ChargeDiskWrite(recovery_node_, page_size_,
                              /*sequential=*/true);
    server_pending_ = 0;
    ++log_pages_written_;
    ++forced_flushes_;
  }
  // Commit acknowledgement round trip.
  tracker_->ChargeControlMessage(src_node, recovery_node_, /*blocking=*/true);
  tracker_->ChargeControlMessage(recovery_node_, src_node, /*blocking=*/false);
}

void RecoveryLog::ForceTail(int src_node) {
  if (wal_ != nullptr) wal_->Seal();
  if (tracker_ == nullptr) return;
  uint64_t& pending = pending_[static_cast<size_t>(src_node)];
  if (pending > 0) {
    ShipPacket(src_node, pending);
    pending = 0;
  }
  Settle();
  if (server_pending_ > 0) {
    tracker_->ChargeDiskWrite(recovery_node_, page_size_,
                              /*sequential=*/true);
    server_pending_ = 0;
    ++log_pages_written_;
    ++forced_flushes_;
  }
}

void RecoveryLog::AppendUncounted(int src_node, uint32_t payload_bytes) {
  if (tracker_ == nullptr) return;
  const uint32_t record = kRecordHeaderBytes + payload_bytes;
  sim::CostTracker* sink = TrackerFor(src_node);
  sink->ChargeCpu(src_node, sink->hw().cost.instr_per_tuple_copy);
  uint64_t& pending = pending_[static_cast<size_t>(src_node)];
  pending += record;
  const uint64_t payload = sink->hw().net.packet_payload_bytes;
  while (pending >= payload) {
    ShipPacket(src_node, payload);
    pending -= payload;
  }
}

namespace {

std::vector<uint8_t> CopyImage(std::span<const uint8_t> bytes) {
  return {bytes.begin(), bytes.end()};
}

}  // namespace

void RecoveryLog::LogInsert(int src_node, uint64_t txn, uint32_t rel,
                            int32_t fragment, storage::Rid rid,
                            std::span<const uint8_t> tuple, bool mirrored,
                            storage::Rid backup_rid) {
  if (wal_ != nullptr) {
    WalRecord record;
    record.txn = txn;
    record.kind = WalKind::kInsert;
    record.rel = rel;
    record.fragment = fragment;
    record.rid = rid;
    record.backup_rid = backup_rid;
    record.mirrored = mirrored;
    record.after = CopyImage(tuple);
    wal_->Append(std::move(record));
  }
  Append(src_node, static_cast<uint32_t>(tuple.size()));
}

void RecoveryLog::LogDelete(int src_node, uint64_t txn, uint32_t rel,
                            int32_t fragment, storage::Rid rid,
                            std::span<const uint8_t> before, bool mirrored,
                            storage::Rid backup_rid) {
  if (wal_ != nullptr) {
    WalRecord record;
    record.txn = txn;
    record.kind = WalKind::kDelete;
    record.rel = rel;
    record.fragment = fragment;
    record.rid = rid;
    record.backup_rid = backup_rid;
    record.mirrored = mirrored;
    record.before = CopyImage(before);
    wal_->Append(std::move(record));
  }
  Append(src_node, static_cast<uint32_t>(before.size()));
}

void RecoveryLog::LogModify(int src_node, uint64_t txn, uint32_t rel,
                            int32_t fragment, storage::Rid rid,
                            std::span<const uint8_t> before,
                            std::span<const uint8_t> after, bool mirrored,
                            storage::Rid backup_rid) {
  if (wal_ != nullptr) {
    WalRecord record;
    record.txn = txn;
    record.kind = WalKind::kModify;
    record.rel = rel;
    record.fragment = fragment;
    record.rid = rid;
    record.backup_rid = backup_rid;
    record.mirrored = mirrored;
    record.before = CopyImage(before);
    record.after = CopyImage(after);
    wal_->Append(std::move(record));
  }
  Append(src_node, static_cast<uint32_t>(before.size() + after.size()));
}

void RecoveryLog::LogPartition(int src_node, uint64_t txn, uint32_t rel,
                               std::span<const uint8_t> before,
                               std::span<const uint8_t> after) {
  if (wal_ != nullptr) {
    WalRecord record;
    record.txn = txn;
    record.kind = WalKind::kPartition;
    record.rel = rel;
    record.fragment = -1;
    record.mirrored = true;  // no backup copy to catch up; truncatable
    record.before = CopyImage(before);
    record.after = CopyImage(after);
    wal_->Append(std::move(record));
  }
  Append(src_node, static_cast<uint32_t>(before.size() + after.size()));
}

void RecoveryLog::LogCommit(int src_node, uint64_t txn) {
  if (wal_ != nullptr) {
    wal_->Seal();
    wal_->NoteCommit(txn);
  }
  // The commit record itself ships like any record but is excluded from the
  // data-record stats; the force + acknowledgement are the classic commit.
  AppendUncounted(src_node, 0);
  Commit(src_node);
}

void RecoveryLog::ChargeCheckpoint(int src_node) {
  AppendUncounted(src_node, 0);
  AppendUncounted(src_node, 0);
  ForceTail(src_node);
}

RecoveryLog::Stats RecoveryLog::stats() const {
  Stats total;
  total.records = untracked_records_.load(std::memory_order_relaxed);
  total.bytes = untracked_bytes_.load(std::memory_order_relaxed);
  for (size_t node = 0; node < records_.size(); ++node) {
    total.records += records_[node];
    total.bytes += bytes_[node];
  }
  total.log_pages_written = log_pages_written_;
  total.forced_flushes = forced_flushes_;
  return total;
}

}  // namespace gammadb::gamma
