#include "gamma/recovery_log.h"

#include "common/macros.h"

namespace gammadb::gamma {

RecoveryLog::RecoveryLog(sim::CostTracker* tracker, int recovery_node,
                         uint32_t page_size)
    : tracker_(tracker),
      recovery_node_(recovery_node),
      page_size_(page_size) {
  if (tracker_ != nullptr) {
    GAMMA_CHECK(recovery_node >= 0 && recovery_node < tracker->num_nodes());
    pending_.resize(static_cast<size_t>(tracker->num_nodes()), 0);
  }
}

void RecoveryLog::ShipPacket(int src_node, uint64_t bytes) {
  tracker_->ChargeDataPacket(src_node, recovery_node_, bytes);
  // Server side: copy into the log buffer; write full log pages
  // sequentially.
  tracker_->ChargeCpu(recovery_node_,
                      tracker_->hw().cost.instr_per_tuple_copy);
  server_pending_ += bytes;
  while (server_pending_ >= page_size_) {
    tracker_->ChargeDiskWrite(recovery_node_, page_size_,
                              /*sequential=*/true);
    server_pending_ -= page_size_;
    ++stats_.log_pages_written;
  }
}

void RecoveryLog::Append(int src_node, uint32_t payload_bytes) {
  const uint32_t record = kRecordHeaderBytes + payload_bytes;
  ++stats_.records;
  stats_.bytes += record;
  if (tracker_ == nullptr) return;
  // Building the record is cheap; shipping dominates.
  tracker_->ChargeCpu(src_node, tracker_->hw().cost.instr_per_tuple_copy);
  uint64_t& pending = pending_[static_cast<size_t>(src_node)];
  pending += record;
  const uint64_t payload = tracker_->hw().net.packet_payload_bytes;
  while (pending >= payload) {
    ShipPacket(src_node, payload);
    pending -= payload;
  }
}

void RecoveryLog::Commit(int src_node) {
  if (tracker_ == nullptr) return;
  uint64_t& pending = pending_[static_cast<size_t>(src_node)];
  if (pending > 0) {
    ShipPacket(src_node, pending);
    pending = 0;
  }
  if (server_pending_ > 0) {
    // Force the log tail (partial page) at commit.
    tracker_->ChargeDiskWrite(recovery_node_, page_size_,
                              /*sequential=*/true);
    server_pending_ = 0;
    ++stats_.log_pages_written;
    ++stats_.forced_flushes;
  }
  // Commit acknowledgement round trip.
  tracker_->ChargeControlMessage(src_node, recovery_node_, /*blocking=*/true);
  tracker_->ChargeControlMessage(recovery_node_, src_node, /*blocking=*/false);
}

}  // namespace gammadb::gamma
