#ifndef GAMMA_GAMMA_MACHINE_H_
#define GAMMA_GAMMA_MACHINE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "common/units.h"
#include "gamma/query.h"
#include "gamma/wal.h"
#include "obs/journal.h"
#include "obs/trace.h"
#include "opt/statistics.h"
#include "sim/fault_injector.h"
#include "sim/hardware.h"
#include "storage/storage_manager.h"
#include "txn/txn_manager.h"

namespace gammadb::elastic {
class ElasticMigrator;
}  // namespace gammadb::elastic

namespace gammadb::gamma {

class RecoveryLog;

/// \brief Configuration of one simulated Gamma machine.
///
/// The paper's machine is 8 processors with disks + 8 diskless query
/// processors + a scheduling processor, 2 MB of memory each, 4 KB disk
/// pages. The experiments vary `num_disk_nodes` (Figs 1-4, 9-12),
/// `page_size` (Figs 5-8, 14-15) and `join_memory_total` (Fig 13, Table 2).
struct GammaConfig {
  int num_disk_nodes = 8;
  int num_diskless_nodes = 8;
  uint32_t page_size = 4096;
  /// Buffer pool per node. WiSS-era sizing: most of the 2 MB held code and
  /// join hash tables, so the page buffer is small.
  uint64_t buffer_pool_bytes = 64 * kKiB;
  /// Memory for join hash tables, summed across the participating join
  /// sites. The paper holds this constant while varying processors (§1) and
  /// sweeps it in §6.2.2.
  uint64_t join_memory_total = 8 * kMiB;
  /// Host-side parse/compile/dispatch before the scheduler takes over.
  double host_setup_sec = 0.04;
  /// Ship log records for every stored/updated tuple to a dedicated
  /// recovery server (the §8 plan; the evaluated Gamma ran without it).
  /// Also keeps the replayable write-ahead log that Crash()/Recover() and
  /// node reintegration replay.
  bool enable_logging = false;
  /// A statement that hits Unavailable mid-flight (a node died under it) is
  /// retried against the surviving configuration up to this many times.
  int failover_max_retries = 3;
  /// Simulated reconfiguration wait before failover retry k:
  /// base * 2^(k-1) seconds, charged to scheduling.
  double failover_backoff_base_sec = 0.05;
  /// With logging on, the recovery server writes a fuzzy checkpoint after
  /// this many sealed commit records (0 = only explicit Checkpoint calls).
  uint64_t checkpoint_every_commits = 32;
  /// Seeded fault schedule (transient I/O errors, page corruption, dropped
  /// packets, node deaths) consulted by every disk node and data packet.
  /// The default config injects nothing.
  sim::FaultConfig fault;
  /// Keep a backup copy of fragment f on disk node (f+1) % n so a single
  /// node death leaves every fragment readable (chained declustering; the
  /// availability design Gamma adopted after the paper).
  bool chained_declustering = false;
  /// Observability: when enabled, every successful statement carries a
  /// derived Profile (trace spans, per-device utilization) in its
  /// QueryResult. Derivation happens after cost accounting closes, so it
  /// never changes a query's simulated seconds.
  obs::TraceOptions trace;
  sim::MachineParams hw = sim::MachineParams::GammaDefaults();

  int total_query_nodes() const {
    return num_disk_nodes + num_diskless_nodes;
  }
  int scheduler_node() const { return total_query_nodes(); }
  int host_node() const { return total_query_nodes() + 1; }
  int recovery_node() const { return total_query_nodes() + 2; }
  int tracker_nodes() const { return total_query_nodes() + 3; }
};

/// \brief The Gamma database machine: horizontally partitioned relations on
/// the disk nodes, dataflow operators connected by split tables, hash-based
/// parallel joins, and a calibrated 1988 cost model producing simulated
/// response times for every query.
///
/// Queries execute for real (correct answers over real pages and indices);
/// `QueryResult::metrics` carries the simulated elapsed time and per-phase,
/// per-resource breakdown.
///
/// Failure model: disk nodes may suffer transient I/O faults (retried by the
/// buffer pool at simulated cost), page corruption (caught by per-page
/// checksums) and permanent death. With chained declustering enabled a read
/// query whose node dies mid-flight is aborted, its locks and partial result
/// dropped, and retried exactly once against the surviving configuration —
/// backup fragments stand in for dead primaries. When no copy of a fragment
/// survives (two adjacent dead nodes), queries return a descriptive
/// Unavailable status and the machine stays usable.
class GammaMachine {
 public:
  explicit GammaMachine(GammaConfig config);

  GammaMachine(const GammaMachine&) = delete;
  GammaMachine& operator=(const GammaMachine&) = delete;

  const GammaConfig& config() const { return config_; }
  catalog::Catalog& catalog() { return catalog_; }
  const catalog::Catalog& catalog() const { return catalog_; }
  /// Catalog statistics maintained by load / append / delete / modify (read
  /// by the cost-based planner).
  const opt::StatisticsCatalog& stats() const { return stats_; }
  storage::StorageManager& node(int i) { return *nodes_.at(static_cast<size_t>(i)); }

  // --- Fault control (test / bench hooks) ---

  sim::FaultInjector& faults() { return *faults_; }
  /// Permanently kills disk node `node` right now.
  void KillNode(int node) { faults_->KillNode(node); }
  /// Kills disk node `node` after its next `disk_ops` disk operations —
  /// lands the death in the middle of a running query.
  void KillNodeAfterOps(int node, uint64_t disk_ops) {
    faults_->KillNodeAfterOps(node, disk_ops);
  }
  void ReviveNode(int node) { faults_->ReviveNode(node); }
  /// Kills disk node `node` at its `commits`-th upcoming commit point —
  /// after the statement's log records are forced but before the commit
  /// record lands, leaving a durable loser for Recover() to undo.
  void KillNodeAtCommit(int node, uint64_t commits) {
    faults_->KillNodeAtCommit(node, commits);
  }
  bool NodeAlive(int node) const { return !faults_->IsDead(node); }

  // --- Crash, recovery and reintegration (requires enable_logging) ---

  struct RecoveryReport {
    /// Retained log records the analysis pass scanned.
    uint64_t log_records_scanned = 0;
    /// Bytes of log read back during replay.
    uint64_t log_bytes_replayed = 0;
    /// Distinct committed transactions seen in the retained log.
    uint64_t winners = 0;
    /// Transactions with data records but no commit — undone.
    uint64_t losers = 0;
    /// Redo applications (committed effects missing from disk; normally 0 —
    /// commit forces every page, so redo is verification).
    uint64_t records_redone = 0;
    /// Loser records physically reversed.
    uint64_t records_undone = 0;
    /// Simulated time the recovery pass took.
    double recovery_sec = 0;
    /// The post-mortem dump Crash() (or a fatal storage error) captured:
    /// the merged flight-recorder journal plus a metrics-registry snapshot,
    /// as one JSON document ("" when the journal is disabled or nothing
    /// fatal preceded this recovery).
    std::string post_mortem_json;
  };

  struct RebuildReport {
    int node = -1;
    /// Primary fragments rebuilt from their chained backups.
    uint64_t fragments_rebuilt = 0;
    /// Tuples copied into rebuilt primary fragments.
    uint64_t tuples_copied = 0;
    /// Bytes shipped backup-host -> rebuilt node.
    uint64_t bytes_shipped = 0;
    /// Committed-but-unmirrored log records replayed into the node's stale
    /// backup fragments (the log tail it missed while dead).
    uint64_t log_records_replayed = 0;
    /// Aborted-statement records reversed on the node's own fragments
    /// (effects that crashed onto its disk before it died).
    uint64_t records_undone = 0;
    /// Simulated time the rebuild took.
    double rebuild_sec = 0;
  };

  /// The machine-lifetime write-ahead log (null when logging is off).
  WalStore* wal() { return wal_.get(); }
  bool crashed() const { return crashed_; }

  /// Simulates a whole-machine crash: every buffer pool, lock table and
  /// open transaction vanishes; disks and the recovery server's log
  /// survive. Queries fail until Recover() runs.
  void Crash();

  /// ARIES-style restart: scans the retained log from the last checkpoint,
  /// redoes committed work missing from disk, undoes losers, and reopens
  /// the machine. Deterministic and charged (see RecoveryReport).
  Result<RecoveryReport> Recover();

  /// Writes a fuzzy checkpoint now (also triggered automatically every
  /// `checkpoint_every_commits` commits). Returns its begin LSN.
  Result<uint64_t> Checkpoint();

  /// Brings a dead disk node back into service: revives it, rebuilds its
  /// primary fragments from their chained backups (catalog flips back to
  /// the primary once each copy lands), replays the committed log tail
  /// into its stale backup fragments, and reverses aborted-statement
  /// effects stranded on its disk.
  Result<RebuildReport> ReintegrateNode(int node);

  // --- Elastic growth (src/elastic) ---

  struct GrowthReport {
    /// Index of the freshly added disk node (== old num_disk_nodes).
    int node = -1;
    /// Hashed relations converted to virtual-bucket (bucket_map) placement
    /// so a later migration can move buckets instead of rehashing.
    uint64_t relations_converted = 0;
    /// Backup tuples relocated to keep the chained-declustering ring order
    /// (fragment n-1's backup moves from node 0 to the new node).
    uint64_t backup_tuples_relocated = 0;
    /// Bytes shipped during the backup-ring rewiring.
    uint64_t bytes_shipped = 0;
    /// Simulated time the registration + rewiring took.
    double grow_sec = 0;
  };

  /// Registers one fresh disk node with the running machine: a new
  /// StorageManager with its own disk/CPU/NIC cost servers and fault
  /// streams, a widened transaction manager and WAL, an empty fragment
  /// (and empty index slots) for every relation, and — for backed-up
  /// relations — a synchronous backup-ring rewiring so the chained
  /// (f+1) % n invariant holds at the new width. Placement of existing
  /// tuples is untouched: queries keep reading the old sites until an
  /// ElasticMigrator rebalances fragments onto the new node.
  /// Requires all disk nodes alive, no open transactions, not crashed.
  Result<GrowthReport> AddNode();

  /// Bounded ring of the most recent statement profiles (capacity from
  /// GAMMA_PROFILE_RING, default 64; 0 disables buffering). Filled by every
  /// successful traced statement in completion order.
  const std::deque<std::shared_ptr<const obs::Profile>>& profile_ring() const {
    return profile_ring_;
  }

  /// Writes one Chrome trace file covering every buffered profile (one
  /// process track per statement) and clears the ring — the flush-on-demand
  /// replacement for one-file-per-query on long runs.
  Status FlushProfileRing(const std::string& path);

  /// The always-on flight recorder: one bounded event ring per tracker
  /// node (capacity from GAMMA_JOURNAL_RING, default 256; 0 disables),
  /// byte-identical at any GAMMA_HOST_THREADS and charging zero simulated
  /// time. Read it only between statements (coordinator discipline).
  obs::Journal& journal() { return journal_; }
  const obs::Journal& journal() const { return journal_; }

  /// Writes the journal's merged events as a JSON array to `path` (the
  /// file-export companion of `explain journal`). The journal keeps its
  /// events.
  Status DumpJournal(const std::string& path) const;

  // --- Loading (not part of any measured query) ---

  /// Creates an empty relation declustered per `spec` over the disk nodes
  /// (all of which must be alive), plus chained backup fragments when
  /// `chained_declustering` is on.
  Status CreateRelation(const std::string& name, catalog::Schema schema,
                        catalog::PartitionSpec spec);

  /// Loads tuples (routing each to its home site and, when backed up, to
  /// the backup site). All-or-nothing: a failed load rolls back every tuple
  /// it appended. Call once per relation.
  Status LoadTuples(const std::string& name,
                    const std::vector<std::vector<uint8_t>>& tuples);

  /// Builds an index on `attr`. A clustered index physically reorders every
  /// fragment into key order first (the paper's clustered organization).
  /// Backup fragments carry no indexes.
  Status BuildIndex(const std::string& name, int attr, bool clustered);

  // --- Queries (measured) ---

  Result<QueryResult> RunSelect(const SelectQuery& query);
  Result<QueryResult> RunJoin(const JoinQuery& query);
  Result<QueryResult> RunAggregate(const AggregateQuery& query);
  /// Updates optionally run inside an externally managed transaction
  /// (`txn` from BeginTxn): its locks are then held to CommitTxn/AbortTxn
  /// rather than released at statement end, and a 2PL conflict with another
  /// open transaction fails the statement with FailedPrecondition (the
  /// blocking/queueing discipline lives in the workload scheduler, which
  /// resolves conflicts in simulated time before executing for real).
  /// `txn` 0 (the default) auto-commits the statement.
  Result<QueryResult> RunAppend(const AppendQuery& query, uint64_t txn = 0);
  Result<QueryResult> RunDelete(const DeleteQuery& query, uint64_t txn = 0);
  Result<QueryResult> RunModify(const ModifyQuery& query, uint64_t txn = 0);

  // --- Multi-user transactions (2PL) ---

  txn::TxnManager& txns() { return txns_; }
  const txn::TxnManager& txns() const { return txns_; }

  /// Starts an explicit transaction for use with the update queries above.
  uint64_t BeginTxn() { return txns_.Begin(); }
  /// Commits / aborts an explicit transaction: releases its storage-level
  /// locks on every node and its 2PL locks in every table. Returns the
  /// lock requests that became grantable (for the workload scheduler to
  /// wake the corresponding blocked clients).
  std::vector<txn::LockManager::Grant> CommitTxn(uint64_t txn);
  std::vector<txn::LockManager::Grant> AbortTxn(uint64_t txn);

  /// Drops a relation and its fragment/backup files (uncharged; used by the
  /// workload driver to discard profiled result relations).
  Status DropRelation(const std::string& name);

  // --- Test / verification hooks (uncharged) ---

  /// Every tuple of the relation, gathered from all fragments (backups
  /// standing in for dead primaries).
  Result<std::vector<std::vector<uint8_t>>> ReadRelation(
      const std::string& name);

  /// Tuple count summed over fragments.
  Result<uint64_t> CountTuples(const std::string& name);

  /// Rebuilds the relation's catalog statistics from a fresh (uncharged)
  /// scan of the serving fragment copies — e.g. after a failover rebuild,
  /// when incremental maintenance has drifted.
  Status RecomputeStatistics(const std::string& name);

 private:
  /// The migration subsystem executes charged, WAL-logged statements
  /// against the machine internals (src/elastic/migrator.h).
  friend class elastic::ElasticMigrator;

  struct AccessDecision {
    AccessPath path;
    const catalog::IndexMeta* index;  // null for file scan
  };

  /// The node and heap file serving fragment `fragment` of a relation: the
  /// primary when its node is alive, else the chained backup.
  struct FragmentCopy {
    int node;
    uint32_t file;
    /// Served from the backup chain; such fragments are always file-scanned
    /// (backups carry no indexes).
    bool backup;
  };

  /// RAII abort: unless dismissed, releases the query's locks, discards
  /// un-flushed pages, drops the partial result relation and unbinds the
  /// tracker. Declared after the CostTracker so it runs first.
  class QueryGuard {
   public:
    QueryGuard(GammaMachine* machine, uint64_t txn)
        : machine_(machine), txn_(txn) {}
    QueryGuard(const QueryGuard&) = delete;
    QueryGuard& operator=(const QueryGuard&) = delete;
    ~QueryGuard() {
      if (!dismissed_) {
        machine_->AbortQuery(txn_, partial_result_, wal_txn_, crashed_);
      }
    }

    /// Registers the result relation to drop if the query aborts.
    void set_partial_result(const std::string& name) {
      partial_result_ = name;
    }
    /// Registers the WAL transaction whose sealed records a clean abort
    /// must reverse and close.
    void set_wal_txn(uint64_t wal_txn) { wal_txn_ = wal_txn; }
    /// Marks the abort as a crash (node died at the commit point): sealed
    /// records stay in the log as losers for Recover() instead of being
    /// compensated now.
    void set_crashed() { crashed_ = true; }
    void Dismiss() { dismissed_ = true; }

   private:
    GammaMachine* machine_;
    uint64_t txn_;
    uint64_t wal_txn_ = 0;
    std::string partial_result_;
    bool crashed_ = false;
    bool dismissed_ = false;
  };

  /// One unit of host-parallel work: `body` runs on some pool thread with
  /// exclusive ownership of node `owner`'s storage (owner < 0: no storage),
  /// charging simulated costs into a private CostTracker shard.
  struct NodeTask {
    int owner;
    std::function<Status(sim::CostTracker& shard)> body;
  };

  /// Participating fragments grouped by serving node (failover can map two
  /// fragments onto one survivor; both must run in that node's task).
  struct NodeGroup {
    int node;
    std::vector<size_t> members;  // indices into the sources vector
  };

  /// Runs `tasks` on the host pool (inline, in order, with one thread) and
  /// barriers. Each task's node is bound to the task's shard for the
  /// duration; afterwards shards are merged into `tracker` and nodes
  /// rebound to it in task order, so accounting is byte-identical for every
  /// thread count. Returns the first non-OK task status, in task order —
  /// all tasks run to completion either way (an abort discards their work).
  /// `tracker` may be null (uncharged work, e.g. loading).
  Status RunNodeTasks(sim::CostTracker* tracker, std::vector<NodeTask> tasks);

  static std::vector<NodeGroup> GroupByServingNode(
      const std::vector<FragmentCopy>& sources);

  /// Binds every node's ChargeContext to `tracker` (or clears with null).
  void BindAll(sim::CostTracker* tracker);
  /// Flushes every node's pool, one host task per node, charging whatever
  /// tracker the nodes are currently bound to.
  Status FlushAllPools();

  /// Resolves which copy serves `fragment`, or Unavailable when neither the
  /// primary nor its chained backup survives.
  Result<FragmentCopy> ServingCopy(const catalog::RelationMeta& meta,
                                   int fragment) const;

  /// Disk nodes currently alive, in index order.
  std::vector<int> LiveDiskNodes() const;

  /// Backout path shared by the failed-query guards: release `txn`'s locks,
  /// drop un-flushed pages, delete the partial result relation, unbind.
  /// When `wal_txn` is set and the abort is clean (not `wal_crashed`), the
  /// transaction's sealed log records are reversed and compensated.
  void AbortQuery(uint64_t txn, const std::string& partial_result,
                  uint64_t wal_txn = 0, bool wal_crashed = false);

  /// Runs `attempt`; while it reports Unavailable (a node died mid-flight),
  /// re-runs it against the surviving configuration up to
  /// `failover_max_retries` times, charging exponential backoff between
  /// retries.
  Result<QueryResult> RunWithFailover(
      const std::function<Result<QueryResult>()>& attempt);

  /// Post-accounting observability hook every statement entry point routes
  /// its finished result through: feeds the process metrics registry and,
  /// when `config_.trace` enables it, attaches the derived Profile. Passes
  /// error results through untouched.
  Result<QueryResult> FinalizeObs(const char* label,
                                  Result<QueryResult> result);

  /// Serializes the journal plus a metrics-registry snapshot into the
  /// held post-mortem JSON document (Crash() and fatal storage errors call
  /// this; the next Recover() hands the dump out on its report).
  void CapturePostMortem(const std::string& reason);

  Result<QueryResult> RunSelectAttempt(const SelectQuery& query);
  Result<QueryResult> RunJoinAttempt(const JoinQuery& query);
  Result<QueryResult> RunAggregateAttempt(const AggregateQuery& query);

  /// Removes the backup copy of a tuple deleted from `fragment` (located by
  /// content match — backups have no indexes), charging the shipping packet
  /// and the scan. `deleted_rid`, when given, receives the backup rid (the
  /// WAL logs it so undo can restore the copy in place).
  Status DeleteFromBackup(const catalog::RelationMeta& meta, int fragment,
                          std::span<const uint8_t> tuple,
                          sim::CostTracker* tracker,
                          storage::Rid* deleted_rid = nullptr);

  /// In-place rewrite of the backup copy of a modified tuple.
  Status UpdateInBackup(const catalog::RelationMeta& meta, int fragment,
                        std::span<const uint8_t> old_tuple,
                        std::span<const uint8_t> new_tuple,
                        sim::CostTracker* tracker,
                        storage::Rid* updated_rid = nullptr);

  // --- Recovery internals (machine_recovery.cc) ---

  /// Fresh WAL transaction id for an auto-commit statement (high bit set so
  /// it can never collide with a TxnManager id).
  uint64_t StatementWalTxn();

  /// Re-applies one committed log record missing from the serving copies
  /// (test-and-apply redo; a no-op when the forced pages already hold the
  /// effect). Bumps `*applied` and records the relation in `touched` only
  /// when something changed.
  Status RedoRecord(const WalRecord& record, uint64_t* applied,
                    std::set<std::string>* touched);

  /// Reverses one loser record on the primary (and, when mirrored, the
  /// backup), maintaining index entries incrementally so rids never move.
  Status UndoRecord(const WalRecord& record, uint64_t* undone,
                    std::set<std::string>* touched);

  /// Physically reverses every sealed record of `wal_txn` wherever it is
  /// reachable (dead nodes are skipped). `close` additionally compensates
  /// the transaction in the log (clean abort); a crashed statement leaves
  /// it open so Recover()/ReintegrateNode() finish the job.
  void UndoTransaction(uint64_t wal_txn, bool close);

  /// Writes a fuzzy checkpoint when the commit cadence is due, charging the
  /// checkpoint records through `log` from `src_node`.
  void MaybeAutoCheckpoint(RecoveryLog* log, int src_node);

  /// Resets `name`'s cardinality from its serving fragment copies and
  /// recomputes its statistics (after undo changed tuple counts).
  void RecountRelation(const std::string& name);

  /// §5.1 optimizer: clustered index when the predicate is on its attribute;
  /// non-clustered only when selectivity is low enough to beat a scan.
  AccessDecision ChooseAccessPath(const catalog::RelationMeta& meta,
                                  const SelectQuery& query) const;

  /// Registers a round-robin result relation and creates its fragments on
  /// the live disk nodes (kNoFile on dead ones; results are never backed
  /// up — a failed query is simply re-run).
  catalog::RelationMeta* MakeResultRelation(const std::string& requested_name,
                                            catalog::Schema schema);

  /// Disk fragments participating in a selection: a single site for an
  /// exact-match predicate on the partitioning attribute, else all of them.
  std::vector<int> ParticipatingNodes(const catalog::RelationMeta& meta,
                                      const exec::Predicate& pred) const;

  /// Takes one 2PL lock for `txn`, charging the lock-manager CPU path at
  /// `charge_node` into the tracker's open phase. Fails with
  /// FailedPrecondition on a conflict with another open transaction (the
  /// machine itself never blocks; waiting is simulated by the workload
  /// scheduler, which pre-acquires the footprint before executing).
  Status AcquireTxnLock(sim::CostTracker* tracker, uint64_t txn,
                        int charge_node, txn::LockId id, txn::LockMode mode);

  /// Copies the transaction's 2PL counters into `metrics` (call before the
  /// txn commits — stats vanish with the transaction).
  void FillLockMetrics(uint64_t txn, sim::QueryMetrics* metrics) const;

  std::string FreshResultName();

  GammaConfig config_;
  std::unique_ptr<sim::FaultInjector> faults_;
  catalog::Catalog catalog_;
  opt::StatisticsCatalog stats_;
  std::vector<std::unique_ptr<storage::StorageManager>> nodes_;
  /// 2PL lock tables: one per tracker node (fragment/page locks live in the
  /// fragment's table, relation locks in the scheduler's), ids shared with
  /// the storage-level lock managers. Only coordinator threads call it.
  txn::TxnManager txns_;
  /// Replayable write-ahead log kept by the recovery server (only when
  /// `enable_logging`); survives Crash().
  std::unique_ptr<WalStore> wal_;
  /// Set by Crash(), cleared by Recover(); queries refuse while set.
  bool crashed_ = false;
  uint64_t next_statement_txn_ = 1;
  uint64_t next_result_id_ = 1;
  uint64_t next_salt_ = 0xBEEF;
  /// Recent statement profiles, newest last (see profile_ring()).
  std::deque<std::shared_ptr<const obs::Profile>> profile_ring_;
  /// Ring capacity, read from GAMMA_PROFILE_RING at construction.
  size_t profile_ring_cap_ = 64;
  /// Flight recorder (see journal()); ring i belongs to tracker node i.
  obs::Journal journal_;
  /// Statements finalized so far — the ordinal stamped on journal events.
  uint64_t statement_ordinal_ = 0;
  /// Pending post-mortem dump captured by Crash() / a fatal storage error;
  /// moved onto the next RecoveryReport.
  std::string post_mortem_;
};

}  // namespace gammadb::gamma

#endif  // GAMMA_GAMMA_MACHINE_H_
