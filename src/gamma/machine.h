#ifndef GAMMA_GAMMA_MACHINE_H_
#define GAMMA_GAMMA_MACHINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "common/units.h"
#include "gamma/query.h"
#include "sim/hardware.h"
#include "storage/storage_manager.h"

namespace gammadb::gamma {

/// \brief Configuration of one simulated Gamma machine.
///
/// The paper's machine is 8 processors with disks + 8 diskless query
/// processors + a scheduling processor, 2 MB of memory each, 4 KB disk
/// pages. The experiments vary `num_disk_nodes` (Figs 1-4, 9-12),
/// `page_size` (Figs 5-8, 14-15) and `join_memory_total` (Fig 13, Table 2).
struct GammaConfig {
  int num_disk_nodes = 8;
  int num_diskless_nodes = 8;
  uint32_t page_size = 4096;
  /// Buffer pool per node. WiSS-era sizing: most of the 2 MB held code and
  /// join hash tables, so the page buffer is small.
  uint64_t buffer_pool_bytes = 64 * kKiB;
  /// Memory for join hash tables, summed across the participating join
  /// sites. The paper holds this constant while varying processors (§1) and
  /// sweeps it in §6.2.2.
  uint64_t join_memory_total = 8 * kMiB;
  /// Host-side parse/compile/dispatch before the scheduler takes over.
  double host_setup_sec = 0.04;
  /// Ship log records for every stored/updated tuple to a dedicated
  /// recovery server (the §8 plan; the evaluated Gamma ran without it).
  bool enable_logging = false;
  sim::MachineParams hw = sim::MachineParams::GammaDefaults();

  int total_query_nodes() const {
    return num_disk_nodes + num_diskless_nodes;
  }
  int scheduler_node() const { return total_query_nodes(); }
  int host_node() const { return total_query_nodes() + 1; }
  int recovery_node() const { return total_query_nodes() + 2; }
  int tracker_nodes() const { return total_query_nodes() + 3; }
};

/// \brief The Gamma database machine: horizontally partitioned relations on
/// the disk nodes, dataflow operators connected by split tables, hash-based
/// parallel joins, and a calibrated 1988 cost model producing simulated
/// response times for every query.
///
/// Queries execute for real (correct answers over real pages and indices);
/// `QueryResult::metrics` carries the simulated elapsed time and per-phase,
/// per-resource breakdown.
class GammaMachine {
 public:
  explicit GammaMachine(GammaConfig config);

  GammaMachine(const GammaMachine&) = delete;
  GammaMachine& operator=(const GammaMachine&) = delete;

  const GammaConfig& config() const { return config_; }
  catalog::Catalog& catalog() { return catalog_; }
  storage::StorageManager& node(int i) { return *nodes_.at(static_cast<size_t>(i)); }

  // --- Loading (not part of any measured query) ---

  /// Creates an empty relation declustered per `spec` over the disk nodes.
  Status CreateRelation(const std::string& name, catalog::Schema schema,
                        catalog::PartitionSpec spec);

  /// Loads tuples (routing each to its home site). Call once per relation.
  Status LoadTuples(const std::string& name,
                    const std::vector<std::vector<uint8_t>>& tuples);

  /// Builds an index on `attr`. A clustered index physically reorders every
  /// fragment into key order first (the paper's clustered organization).
  Status BuildIndex(const std::string& name, int attr, bool clustered);

  // --- Queries (measured) ---

  Result<QueryResult> RunSelect(const SelectQuery& query);
  Result<QueryResult> RunJoin(const JoinQuery& query);
  Result<QueryResult> RunAggregate(const AggregateQuery& query);
  Result<QueryResult> RunAppend(const AppendQuery& query);
  Result<QueryResult> RunDelete(const DeleteQuery& query);
  Result<QueryResult> RunModify(const ModifyQuery& query);

  // --- Test / verification hooks (uncharged) ---

  /// Every tuple of the relation, gathered from all fragments.
  Result<std::vector<std::vector<uint8_t>>> ReadRelation(
      const std::string& name);

  /// Tuple count summed over fragments.
  Result<uint64_t> CountTuples(const std::string& name);

 private:
  struct AccessDecision {
    AccessPath path;
    const catalog::IndexMeta* index;  // null for file scan
  };

  /// Binds every node's ChargeContext to `tracker` (or clears with null).
  void BindAll(sim::CostTracker* tracker);
  void FlushAllPools();

  /// §5.1 optimizer: clustered index when the predicate is on its attribute;
  /// non-clustered only when selectivity is low enough to beat a scan.
  AccessDecision ChooseAccessPath(const catalog::RelationMeta& meta,
                                  const SelectQuery& query) const;

  /// Registers a round-robin result relation and creates its fragments.
  catalog::RelationMeta* MakeResultRelation(const std::string& requested_name,
                                            catalog::Schema schema);

  /// Disk nodes participating in a selection: a single site for an
  /// exact-match predicate on the partitioning attribute, else all of them.
  std::vector<int> ParticipatingNodes(const catalog::RelationMeta& meta,
                                      const exec::Predicate& pred) const;

  std::string FreshResultName();

  GammaConfig config_;
  catalog::Catalog catalog_;
  std::vector<std::unique_ptr<storage::StorageManager>> nodes_;
  uint64_t next_result_id_ = 1;
  uint64_t next_txn_id_ = 1;
  uint64_t next_salt_ = 0xBEEF;
};

}  // namespace gammadb::gamma

#endif  // GAMMA_GAMMA_MACHINE_H_
