#ifndef GAMMA_GAMMA_MACHINE_H_
#define GAMMA_GAMMA_MACHINE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "common/units.h"
#include "gamma/query.h"
#include "opt/statistics.h"
#include "sim/fault_injector.h"
#include "sim/hardware.h"
#include "storage/storage_manager.h"
#include "txn/txn_manager.h"

namespace gammadb::gamma {

/// \brief Configuration of one simulated Gamma machine.
///
/// The paper's machine is 8 processors with disks + 8 diskless query
/// processors + a scheduling processor, 2 MB of memory each, 4 KB disk
/// pages. The experiments vary `num_disk_nodes` (Figs 1-4, 9-12),
/// `page_size` (Figs 5-8, 14-15) and `join_memory_total` (Fig 13, Table 2).
struct GammaConfig {
  int num_disk_nodes = 8;
  int num_diskless_nodes = 8;
  uint32_t page_size = 4096;
  /// Buffer pool per node. WiSS-era sizing: most of the 2 MB held code and
  /// join hash tables, so the page buffer is small.
  uint64_t buffer_pool_bytes = 64 * kKiB;
  /// Memory for join hash tables, summed across the participating join
  /// sites. The paper holds this constant while varying processors (§1) and
  /// sweeps it in §6.2.2.
  uint64_t join_memory_total = 8 * kMiB;
  /// Host-side parse/compile/dispatch before the scheduler takes over.
  double host_setup_sec = 0.04;
  /// Ship log records for every stored/updated tuple to a dedicated
  /// recovery server (the §8 plan; the evaluated Gamma ran without it).
  bool enable_logging = false;
  /// Seeded fault schedule (transient I/O errors, page corruption, dropped
  /// packets, node deaths) consulted by every disk node and data packet.
  /// The default config injects nothing.
  sim::FaultConfig fault;
  /// Keep a backup copy of fragment f on disk node (f+1) % n so a single
  /// node death leaves every fragment readable (chained declustering; the
  /// availability design Gamma adopted after the paper).
  bool chained_declustering = false;
  sim::MachineParams hw = sim::MachineParams::GammaDefaults();

  int total_query_nodes() const {
    return num_disk_nodes + num_diskless_nodes;
  }
  int scheduler_node() const { return total_query_nodes(); }
  int host_node() const { return total_query_nodes() + 1; }
  int recovery_node() const { return total_query_nodes() + 2; }
  int tracker_nodes() const { return total_query_nodes() + 3; }
};

/// \brief The Gamma database machine: horizontally partitioned relations on
/// the disk nodes, dataflow operators connected by split tables, hash-based
/// parallel joins, and a calibrated 1988 cost model producing simulated
/// response times for every query.
///
/// Queries execute for real (correct answers over real pages and indices);
/// `QueryResult::metrics` carries the simulated elapsed time and per-phase,
/// per-resource breakdown.
///
/// Failure model: disk nodes may suffer transient I/O faults (retried by the
/// buffer pool at simulated cost), page corruption (caught by per-page
/// checksums) and permanent death. With chained declustering enabled a read
/// query whose node dies mid-flight is aborted, its locks and partial result
/// dropped, and retried exactly once against the surviving configuration —
/// backup fragments stand in for dead primaries. When no copy of a fragment
/// survives (two adjacent dead nodes), queries return a descriptive
/// Unavailable status and the machine stays usable.
class GammaMachine {
 public:
  explicit GammaMachine(GammaConfig config);

  GammaMachine(const GammaMachine&) = delete;
  GammaMachine& operator=(const GammaMachine&) = delete;

  const GammaConfig& config() const { return config_; }
  catalog::Catalog& catalog() { return catalog_; }
  const catalog::Catalog& catalog() const { return catalog_; }
  /// Catalog statistics maintained by load / append / delete / modify (read
  /// by the cost-based planner).
  const opt::StatisticsCatalog& stats() const { return stats_; }
  storage::StorageManager& node(int i) { return *nodes_.at(static_cast<size_t>(i)); }

  // --- Fault control (test / bench hooks) ---

  sim::FaultInjector& faults() { return *faults_; }
  /// Permanently kills disk node `node` right now.
  void KillNode(int node) { faults_->KillNode(node); }
  /// Kills disk node `node` after its next `disk_ops` disk operations —
  /// lands the death in the middle of a running query.
  void KillNodeAfterOps(int node, uint64_t disk_ops) {
    faults_->KillNodeAfterOps(node, disk_ops);
  }
  void ReviveNode(int node) { faults_->ReviveNode(node); }
  bool NodeAlive(int node) const { return !faults_->IsDead(node); }

  // --- Loading (not part of any measured query) ---

  /// Creates an empty relation declustered per `spec` over the disk nodes
  /// (all of which must be alive), plus chained backup fragments when
  /// `chained_declustering` is on.
  Status CreateRelation(const std::string& name, catalog::Schema schema,
                        catalog::PartitionSpec spec);

  /// Loads tuples (routing each to its home site and, when backed up, to
  /// the backup site). All-or-nothing: a failed load rolls back every tuple
  /// it appended. Call once per relation.
  Status LoadTuples(const std::string& name,
                    const std::vector<std::vector<uint8_t>>& tuples);

  /// Builds an index on `attr`. A clustered index physically reorders every
  /// fragment into key order first (the paper's clustered organization).
  /// Backup fragments carry no indexes.
  Status BuildIndex(const std::string& name, int attr, bool clustered);

  // --- Queries (measured) ---

  Result<QueryResult> RunSelect(const SelectQuery& query);
  Result<QueryResult> RunJoin(const JoinQuery& query);
  Result<QueryResult> RunAggregate(const AggregateQuery& query);
  /// Updates optionally run inside an externally managed transaction
  /// (`txn` from BeginTxn): its locks are then held to CommitTxn/AbortTxn
  /// rather than released at statement end, and a 2PL conflict with another
  /// open transaction fails the statement with FailedPrecondition (the
  /// blocking/queueing discipline lives in the workload scheduler, which
  /// resolves conflicts in simulated time before executing for real).
  /// `txn` 0 (the default) auto-commits the statement.
  Result<QueryResult> RunAppend(const AppendQuery& query, uint64_t txn = 0);
  Result<QueryResult> RunDelete(const DeleteQuery& query, uint64_t txn = 0);
  Result<QueryResult> RunModify(const ModifyQuery& query, uint64_t txn = 0);

  // --- Multi-user transactions (2PL) ---

  txn::TxnManager& txns() { return txns_; }
  const txn::TxnManager& txns() const { return txns_; }

  /// Starts an explicit transaction for use with the update queries above.
  uint64_t BeginTxn() { return txns_.Begin(); }
  /// Commits / aborts an explicit transaction: releases its storage-level
  /// locks on every node and its 2PL locks in every table. Returns the
  /// lock requests that became grantable (for the workload scheduler to
  /// wake the corresponding blocked clients).
  std::vector<txn::LockManager::Grant> CommitTxn(uint64_t txn);
  std::vector<txn::LockManager::Grant> AbortTxn(uint64_t txn);

  /// Drops a relation and its fragment/backup files (uncharged; used by the
  /// workload driver to discard profiled result relations).
  Status DropRelation(const std::string& name);

  // --- Test / verification hooks (uncharged) ---

  /// Every tuple of the relation, gathered from all fragments (backups
  /// standing in for dead primaries).
  Result<std::vector<std::vector<uint8_t>>> ReadRelation(
      const std::string& name);

  /// Tuple count summed over fragments.
  Result<uint64_t> CountTuples(const std::string& name);

  /// Rebuilds the relation's catalog statistics from a fresh (uncharged)
  /// scan of the serving fragment copies — e.g. after a failover rebuild,
  /// when incremental maintenance has drifted.
  Status RecomputeStatistics(const std::string& name);

 private:
  struct AccessDecision {
    AccessPath path;
    const catalog::IndexMeta* index;  // null for file scan
  };

  /// The node and heap file serving fragment `fragment` of a relation: the
  /// primary when its node is alive, else the chained backup.
  struct FragmentCopy {
    int node;
    uint32_t file;
    /// Served from the backup chain; such fragments are always file-scanned
    /// (backups carry no indexes).
    bool backup;
  };

  /// RAII abort: unless dismissed, releases the query's locks, discards
  /// un-flushed pages, drops the partial result relation and unbinds the
  /// tracker. Declared after the CostTracker so it runs first.
  class QueryGuard {
   public:
    QueryGuard(GammaMachine* machine, uint64_t txn)
        : machine_(machine), txn_(txn) {}
    QueryGuard(const QueryGuard&) = delete;
    QueryGuard& operator=(const QueryGuard&) = delete;
    ~QueryGuard() {
      if (!dismissed_) machine_->AbortQuery(txn_, partial_result_);
    }

    /// Registers the result relation to drop if the query aborts.
    void set_partial_result(const std::string& name) {
      partial_result_ = name;
    }
    void Dismiss() { dismissed_ = true; }

   private:
    GammaMachine* machine_;
    uint64_t txn_;
    std::string partial_result_;
    bool dismissed_ = false;
  };

  /// One unit of host-parallel work: `body` runs on some pool thread with
  /// exclusive ownership of node `owner`'s storage (owner < 0: no storage),
  /// charging simulated costs into a private CostTracker shard.
  struct NodeTask {
    int owner;
    std::function<Status(sim::CostTracker& shard)> body;
  };

  /// Participating fragments grouped by serving node (failover can map two
  /// fragments onto one survivor; both must run in that node's task).
  struct NodeGroup {
    int node;
    std::vector<size_t> members;  // indices into the sources vector
  };

  /// Runs `tasks` on the host pool (inline, in order, with one thread) and
  /// barriers. Each task's node is bound to the task's shard for the
  /// duration; afterwards shards are merged into `tracker` and nodes
  /// rebound to it in task order, so accounting is byte-identical for every
  /// thread count. Returns the first non-OK task status, in task order —
  /// all tasks run to completion either way (an abort discards their work).
  /// `tracker` may be null (uncharged work, e.g. loading).
  Status RunNodeTasks(sim::CostTracker* tracker, std::vector<NodeTask> tasks);

  static std::vector<NodeGroup> GroupByServingNode(
      const std::vector<FragmentCopy>& sources);

  /// Binds every node's ChargeContext to `tracker` (or clears with null).
  void BindAll(sim::CostTracker* tracker);
  /// Flushes every node's pool, one host task per node, charging whatever
  /// tracker the nodes are currently bound to.
  Status FlushAllPools();

  /// Resolves which copy serves `fragment`, or Unavailable when neither the
  /// primary nor its chained backup survives.
  Result<FragmentCopy> ServingCopy(const catalog::RelationMeta& meta,
                                   int fragment) const;

  /// Disk nodes currently alive, in index order.
  std::vector<int> LiveDiskNodes() const;

  /// Backout path shared by the failed-query guards: release `txn`'s locks,
  /// drop un-flushed pages, delete the partial result relation, unbind.
  void AbortQuery(uint64_t txn, const std::string& partial_result);

  /// Runs `attempt`; if it reports Unavailable (a node died mid-flight),
  /// re-runs it exactly once against the surviving configuration.
  Result<QueryResult> RunWithFailover(
      const std::function<Result<QueryResult>()>& attempt);

  Result<QueryResult> RunSelectAttempt(const SelectQuery& query);
  Result<QueryResult> RunJoinAttempt(const JoinQuery& query);
  Result<QueryResult> RunAggregateAttempt(const AggregateQuery& query);

  /// Removes the backup copy of a tuple deleted from `fragment` (located by
  /// content match — backups have no indexes), charging the shipping packet
  /// and the scan.
  Status DeleteFromBackup(const catalog::RelationMeta& meta, int fragment,
                          std::span<const uint8_t> tuple,
                          sim::CostTracker* tracker);

  /// In-place rewrite of the backup copy of a modified tuple.
  Status UpdateInBackup(const catalog::RelationMeta& meta, int fragment,
                        std::span<const uint8_t> old_tuple,
                        std::span<const uint8_t> new_tuple,
                        sim::CostTracker* tracker);

  /// §5.1 optimizer: clustered index when the predicate is on its attribute;
  /// non-clustered only when selectivity is low enough to beat a scan.
  AccessDecision ChooseAccessPath(const catalog::RelationMeta& meta,
                                  const SelectQuery& query) const;

  /// Registers a round-robin result relation and creates its fragments on
  /// the live disk nodes (kNoFile on dead ones; results are never backed
  /// up — a failed query is simply re-run).
  catalog::RelationMeta* MakeResultRelation(const std::string& requested_name,
                                            catalog::Schema schema);

  /// Disk fragments participating in a selection: a single site for an
  /// exact-match predicate on the partitioning attribute, else all of them.
  std::vector<int> ParticipatingNodes(const catalog::RelationMeta& meta,
                                      const exec::Predicate& pred) const;

  /// Takes one 2PL lock for `txn`, charging the lock-manager CPU path at
  /// `charge_node` into the tracker's open phase. Fails with
  /// FailedPrecondition on a conflict with another open transaction (the
  /// machine itself never blocks; waiting is simulated by the workload
  /// scheduler, which pre-acquires the footprint before executing).
  Status AcquireTxnLock(sim::CostTracker* tracker, uint64_t txn,
                        int charge_node, txn::LockId id, txn::LockMode mode);

  /// Copies the transaction's 2PL counters into `metrics` (call before the
  /// txn commits — stats vanish with the transaction).
  void FillLockMetrics(uint64_t txn, sim::QueryMetrics* metrics) const;

  std::string FreshResultName();

  GammaConfig config_;
  std::unique_ptr<sim::FaultInjector> faults_;
  catalog::Catalog catalog_;
  opt::StatisticsCatalog stats_;
  std::vector<std::unique_ptr<storage::StorageManager>> nodes_;
  /// 2PL lock tables: one per tracker node (fragment/page locks live in the
  /// fragment's table, relation locks in the scheduler's), ids shared with
  /// the storage-level lock managers. Only coordinator threads call it.
  txn::TxnManager txns_;
  uint64_t next_result_id_ = 1;
  uint64_t next_salt_ = 0xBEEF;
};

}  // namespace gammadb::gamma

#endif  // GAMMA_GAMMA_MACHINE_H_
