#include "gamma/wal.h"

#include <algorithm>
#include <utility>

#include "common/macros.h"

namespace gammadb::gamma {

WalStore::WalStore(int num_nodes) : num_nodes_(num_nodes) {
  GAMMA_CHECK(num_nodes > 0);
  staged_.resize(static_cast<size_t>(num_nodes));
}

void WalStore::Grow(int num_nodes) {
  GAMMA_CHECK(num_nodes >= num_nodes_);
  num_nodes_ = num_nodes;
  staged_.resize(static_cast<size_t>(num_nodes));
}

namespace {

/// Records the redo/undo passes act on — the ones whose presence keeps a
/// transaction open and whose retention the checkpoint must protect.
bool IsReplayable(WalKind kind) {
  switch (kind) {
    case WalKind::kInsert:
    case WalKind::kDelete:
    case WalKind::kModify:
    case WalKind::kPartition:
      return true;
    default:
      return false;
  }
}

}  // namespace

uint32_t WalStore::InternRelation(const std::string& name) {
  auto it = relation_ids_.find(name);
  if (it != relation_ids_.end()) return it->second;
  const uint32_t id = static_cast<uint32_t>(relation_names_.size());
  relation_ids_.emplace(name, id);
  relation_names_.push_back(name);
  return id;
}

const std::string& WalStore::RelationName(uint32_t id) const {
  static const std::string kUnknown;
  if (id >= relation_names_.size()) return kUnknown;
  return relation_names_[id];
}

void WalStore::Stage(int src_node, WalRecord record) {
  GAMMA_CHECK(src_node >= 0 && src_node < num_nodes_);
  staged_[static_cast<size_t>(src_node)].push_back(std::move(record));
}

void WalStore::SealOne(WalRecord&& record) {
  record.lsn = next_lsn_++;
  const uint64_t bytes = record.bytes();
  total_bytes_ += bytes;
  retained_bytes_ += bytes;
  if (record.kind == WalKind::kCommit) {
    committed_.insert(record.txn);
    ++commits_since_checkpoint_;
  }
  log_.push_back(std::move(record));
}

void WalStore::Seal() {
  for (std::vector<WalRecord>& buffer : staged_) {
    for (WalRecord& record : buffer) SealOne(std::move(record));
    buffer.clear();
  }
}

void WalStore::DiscardStaged() {
  for (std::vector<WalRecord>& buffer : staged_) buffer.clear();
}

uint64_t WalStore::Append(WalRecord record) {
  SealOne(std::move(record));
  return next_lsn_ - 1;
}

void WalStore::NoteCommit(uint64_t txn) {
  WalRecord record;
  record.txn = txn;
  record.kind = WalKind::kCommit;
  const uint64_t lsn = Append(std::move(record));
  if (journal_ != nullptr) {
    journal_->Emit(journal_ring_, obs::JournalEventKind::kWalForce,
                   static_cast<int64_t>(txn), static_cast<int64_t>(lsn));
  }
}

void WalStore::NoteCleanAbort(uint64_t txn) {
  if (committed_.contains(txn)) return;  // too late: txn is a winner
  DiscardStaged();
  // Only transactions that actually logged something need closing.
  bool logged = false;
  for (const WalRecord& record : log_) {
    if (record.txn == txn && record.kind != WalKind::kAbort) {
      logged = true;
      break;
    }
  }
  if (!logged) return;
  aborted_.insert(txn);
  WalRecord record;
  record.txn = txn;
  record.kind = WalKind::kAbort;
  Append(std::move(record));
}

bool WalStore::HasDataRecords(uint64_t txn) const {
  for (const WalRecord& record : log_) {
    if (IsReplayable(record.kind) && record.txn == txn) return true;
  }
  return false;
}

void WalStore::MarkMirrored(uint32_t rel, int32_t fragment,
                            uint64_t upto_lsn) {
  for (WalRecord& record : log_) {
    if (record.lsn > upto_lsn) break;
    if (record.rel == rel && record.fragment == fragment) {
      record.mirrored = true;
    }
  }
}

std::vector<uint64_t> WalStore::OpenTxns() const {
  std::set<uint64_t> open;
  for (const WalRecord& record : log_) {
    if (IsReplayable(record.kind) && !committed_.contains(record.txn) &&
        !aborted_.contains(record.txn)) {
      open.insert(record.txn);
    }
  }
  return {open.begin(), open.end()};
}

uint64_t WalStore::Checkpoint() {
  GAMMA_CHECK_MSG(
      std::all_of(staged_.begin(), staged_.end(),
                  [](const std::vector<WalRecord>& b) { return b.empty(); }),
      "checkpoint with staged (unsealed) log records");
  // The begin record carries the active-transaction table: the open
  // transactions whose records the undo pass must still reach.
  const std::vector<uint64_t> open = OpenTxns();
  WalRecord begin;
  begin.kind = WalKind::kCheckpointBegin;
  const uint64_t begin_lsn = Append(std::move(begin));

  // Truncation point: recovery needs (a) every record of an open
  // transaction, (b) every committed record not yet mirrored into its
  // chained backup (reintegration replays those), (c) the checkpoint itself.
  uint64_t keep_from = begin_lsn;
  for (const WalRecord& record : log_) {
    if (!IsReplayable(record.kind)) continue;
    const bool open_txn =
        !committed_.contains(record.txn) && !aborted_.contains(record.txn);
    const bool unmirrored_winner =
        committed_.contains(record.txn) && !record.mirrored;
    if ((open_txn || unmirrored_winner) && record.lsn < keep_from) {
      keep_from = record.lsn;
    }
  }
  while (!log_.empty() && log_.front().lsn < keep_from) {
    retained_bytes_ -= log_.front().bytes();
    log_.pop_front();
  }

  WalRecord end;
  end.kind = WalKind::kCheckpointEnd;
  end.txn = static_cast<uint64_t>(open.size());
  Append(std::move(end));
  checkpoint_lsn_ = begin_lsn;
  commits_since_checkpoint_ = 0;
  if (journal_ != nullptr) {
    journal_->Emit(journal_ring_, obs::JournalEventKind::kCheckpoint,
                   static_cast<int64_t>(begin_lsn),
                   static_cast<int64_t>(log_.size()));
  }
  return begin_lsn;
}

}  // namespace gammadb::gamma
