// Crash, restart recovery and failed-node reintegration for GammaMachine.
//
// The replayable log (gamma/wal.h) carries logical tuple images, so every
// pass here is test-and-apply: a record is re-applied (redo) or reversed
// (undo) only when the serving copy does not already show its effect. That
// makes the passes idempotent — safe to run after a whole-machine crash,
// after a single node death, and again after both.
//
// The machine forces the log tail and every dirty page at each statement's
// commit point, so redo is normally pure verification; the substantive pass
// is undo, which reverses statements that died between the log force and
// the commit record (kCrashAtCommit) and explicit transactions that never
// reached CommitTxn.

#include <algorithm>
#include <cstring>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/macros.h"
#include "elastic/fragment_rebuild.h"
#include "gamma/machine.h"
#include "gamma/recovery_log.h"
#include "obs/metrics_registry.h"

namespace gammadb::gamma {

using catalog::IndexMeta;
using catalog::RelationMeta;
using catalog::TupleView;
using storage::AccessIntent;
using storage::Rid;

namespace {

bool IsData(WalKind kind) {
  // kPartition counts: a migration's catalog flip is replayed (redo) or
  // rolled back (undo) exactly like its tuple moves.
  return kind == WalKind::kInsert || kind == WalKind::kDelete ||
         kind == WalKind::kModify || kind == WalKind::kPartition;
}

/// Applies a serialized PartitionSpec image to the catalog when it differs
/// from the current spec (test-and-apply, keyed on the serialized bytes).
/// Returns true when the catalog changed; a malformed image is skipped.
bool ApplyPartitionImage(RelationMeta* meta,
                         std::span<const uint8_t> image) {
  catalog::PartitionSpec spec;
  if (!catalog::PartitionSpec::Deserialize(image, &spec)) return false;
  if (meta->partitioning.Serialize() == std::vector<uint8_t>(image.begin(),
                                                             image.end())) {
    return false;
  }
  meta->partitioning = std::move(spec);
  return true;
}

int32_t KeyOf(const catalog::Schema& schema, std::span<const uint8_t> tuple,
              int attr) {
  return TupleView(&schema, tuple).GetInt(static_cast<size_t>(attr));
}

/// True when the fetch succeeded and returned exactly `want`.
bool Holds(const Result<std::vector<uint8_t>>& cur,
           std::span<const uint8_t> want) {
  return cur.ok() && cur->size() == want.size() &&
         std::memcmp(cur->data(), want.data(), want.size()) == 0;
}

/// Content-match scan: the rid in a log record is only a fast path (a
/// rebuild renumbers pages), so both passes fall back to locating the
/// image by value.
Result<std::optional<Rid>> FindByContent(storage::StorageManager& sm,
                                         storage::HeapFile& file,
                                         std::span<const uint8_t> bytes,
                                         double scan_cpu) {
  std::optional<Rid> found;
  GAMMA_RETURN_NOT_OK(file.Scan([&](Rid rid, std::span<const uint8_t> t) {
    sm.charge().Cpu(scan_cpu);
    if (t.size() == bytes.size() &&
        std::memcmp(t.data(), bytes.data(), t.size()) == 0) {
      found = rid;
      return false;
    }
    return true;
  }));
  return found;
}

Status EnsureIndexEntry(storage::BTree& tree, int32_t key, Rid rid) {
  GAMMA_ASSIGN_OR_RETURN(const std::vector<Rid> rids,
                         tree.RangeLookup(key, key));
  for (const Rid& r : rids) {
    if (r == rid) return Status::OK();
  }
  return tree.Insert(key, rid);
}

Status RemoveIndexEntry(storage::BTree& tree, int32_t key, Rid rid) {
  return tree.Delete(key, rid).status();
}

}  // namespace

uint64_t GammaMachine::StatementWalTxn() {
  // High bit set: can never collide with a TxnManager id.
  return (1ull << 63) | next_statement_txn_++;
}

void GammaMachine::Crash() {
  // The flight recorder survives the crash (it models the post-mortem a
  // real operator would pull off stable storage); capture the dump before
  // any volatile state goes, so the evidence is exactly what the machine
  // saw at the moment of death.
  journal_.Emit(config_.recovery_node(), obs::JournalEventKind::kCrash);
  CapturePostMortem("crash");
  // Volatile state vanishes: buffered (dirty) pages, storage-level and 2PL
  // lock tables, open transactions. Disk contents and the recovery server's
  // sealed log survive.
  for (auto& node : nodes_) node->pool().Discard();
  for (auto& node : nodes_) node->locks().Clear();
  txns_.CrashReset();
  if (wal_ != nullptr) wal_->DiscardStaged();
  crashed_ = true;
}

Result<uint64_t> GammaMachine::Checkpoint() {
  if (wal_ == nullptr) {
    return Status::FailedPrecondition(
        "checkpointing requires enable_logging");
  }
  return wal_->Checkpoint();
}

void GammaMachine::MaybeAutoCheckpoint(RecoveryLog* log, int src_node) {
  if (wal_ == nullptr || config_.checkpoint_every_commits == 0) return;
  if (wal_->commits_since_checkpoint() < config_.checkpoint_every_commits) {
    return;
  }
  wal_->Checkpoint();
  log->ChargeCheckpoint(src_node);
}

void GammaMachine::RecountRelation(const std::string& name) {
  auto meta_or = catalog_.Get(name);
  if (!meta_or.ok()) return;
  auto count_or = CountTuples(name);
  if (!count_or.ok()) return;
  (*meta_or)->num_tuples = *count_or;
  // Undo changed tuple contents too; refresh the planner statistics from
  // the surviving copies (best effort — a missing fragment keeps the old
  // statistics).
  (void)RecomputeStatistics(name);
}

Status GammaMachine::RedoRecord(const WalRecord& record, uint64_t* applied,
                                std::set<std::string>* touched) {
  const std::string& name = wal_->RelationName(record.rel);
  auto meta_or = catalog_.Get(name);
  if (!meta_or.ok()) return Status::OK();  // relation dropped since
  RelationMeta* meta = *meta_or;
  if (record.kind == WalKind::kPartition) {
    // Committed migration: make sure the catalog shows the new placement
    // (the crash may have landed between the commit record and the flip).
    if (ApplyPartitionImage(meta, record.after)) {
      ++*applied;
      if (touched != nullptr) touched->insert(name);
    }
    return Status::OK();
  }
  const int node = record.fragment;
  if (node < 0 || node >= config_.num_disk_nodes) return Status::OK();
  const double scan_cpu = config_.hw.cost.instr_per_tuple_scan;
  bool changed = false;

  if (!faults_->IsDead(node) &&
      meta->per_node_file[static_cast<size_t>(node)] != catalog::kNoFile) {
    storage::StorageManager& sm = *nodes_[static_cast<size_t>(node)];
    storage::HeapFile& file =
        sm.file(meta->per_node_file[static_cast<size_t>(node)]);
    switch (record.kind) {
      case WalKind::kInsert: {
        const auto cur = file.Fetch(record.rid, AccessIntent::kRandom);
        Rid at = record.rid;
        bool present = Holds(cur, record.after);
        if (!present) {
          GAMMA_ASSIGN_OR_RETURN(
              const std::optional<Rid> match,
              FindByContent(sm, file, record.after, scan_cpu));
          if (match.has_value()) {
            present = true;
          } else {
            if (!cur.ok() && file.Restore(record.rid, record.after).ok()) {
              at = record.rid;
            } else {
              GAMMA_ASSIGN_OR_RETURN(at, file.Append(record.after));
            }
            changed = true;
          }
        }
        if (changed) {
          for (const IndexMeta& idx : meta->indices) {
            GAMMA_RETURN_NOT_OK(EnsureIndexEntry(
                sm.index(idx.per_node_index[static_cast<size_t>(node)]),
                KeyOf(meta->schema, record.after, idx.attr), at));
          }
        }
        break;
      }
      case WalKind::kDelete: {
        const auto cur = file.Fetch(record.rid, AccessIntent::kRandom);
        std::optional<Rid> victim;
        if (Holds(cur, record.before)) {
          victim = record.rid;
        } else if (cur.ok()) {
          // The slot holds something else (renumbered after a rebuild);
          // locate the image by value. A failed fetch is a tombstone: the
          // delete already happened, no scan needed.
          GAMMA_ASSIGN_OR_RETURN(
              victim, FindByContent(sm, file, record.before, scan_cpu));
        }
        if (victim.has_value()) {
          for (const IndexMeta& idx : meta->indices) {
            GAMMA_RETURN_NOT_OK(RemoveIndexEntry(
                sm.index(idx.per_node_index[static_cast<size_t>(node)]),
                KeyOf(meta->schema, record.before, idx.attr), *victim));
          }
          GAMMA_RETURN_NOT_OK(file.Delete(*victim));
          changed = true;
        }
        break;
      }
      case WalKind::kModify: {
        const auto cur = file.Fetch(record.rid, AccessIntent::kRandom);
        std::optional<Rid> stale;
        if (Holds(cur, record.before)) {
          stale = record.rid;
        } else if (!Holds(cur, record.after)) {
          GAMMA_ASSIGN_OR_RETURN(
              const std::optional<Rid> done,
              FindByContent(sm, file, record.after, scan_cpu));
          if (!done.has_value()) {
            GAMMA_ASSIGN_OR_RETURN(
                stale, FindByContent(sm, file, record.before, scan_cpu));
          }
        }
        if (stale.has_value()) {
          GAMMA_RETURN_NOT_OK(file.Update(*stale, record.after));
          for (const IndexMeta& idx : meta->indices) {
            const int32_t before_key =
                KeyOf(meta->schema, record.before, idx.attr);
            const int32_t after_key =
                KeyOf(meta->schema, record.after, idx.attr);
            if (before_key == after_key) continue;
            storage::BTree& tree =
                sm.index(idx.per_node_index[static_cast<size_t>(node)]);
            GAMMA_RETURN_NOT_OK(RemoveIndexEntry(tree, before_key, *stale));
            GAMMA_RETURN_NOT_OK(EnsureIndexEntry(tree, after_key, *stale));
          }
          changed = true;
        }
        break;
      }
      default:
        break;
    }
  }

  if (record.mirrored && meta->backed_up &&
      meta->per_node_backup_file[static_cast<size_t>(node)] !=
          catalog::kNoFile) {
    const int host = (node + 1) % config_.num_disk_nodes;
    if (!faults_->IsDead(host)) {
      storage::StorageManager& sm = *nodes_[static_cast<size_t>(host)];
      storage::HeapFile& backup =
          sm.file(meta->per_node_backup_file[static_cast<size_t>(node)]);
      switch (record.kind) {
        case WalKind::kInsert: {
          const auto cur = backup.Fetch(record.backup_rid,
                                        AccessIntent::kRandom);
          if (!Holds(cur, record.after)) {
            GAMMA_ASSIGN_OR_RETURN(
                const std::optional<Rid> match,
                FindByContent(sm, backup, record.after, scan_cpu));
            if (!match.has_value()) {
              if (cur.ok() ||
                  !backup.Restore(record.backup_rid, record.after).ok()) {
                GAMMA_RETURN_NOT_OK(backup.Append(record.after).status());
              }
              changed = true;
            }
          }
          break;
        }
        case WalKind::kDelete: {
          const auto cur = backup.Fetch(record.backup_rid,
                                        AccessIntent::kRandom);
          std::optional<Rid> victim;
          if (Holds(cur, record.before)) {
            victim = record.backup_rid;
          } else if (cur.ok()) {
            GAMMA_ASSIGN_OR_RETURN(
                victim, FindByContent(sm, backup, record.before, scan_cpu));
          }
          if (victim.has_value()) {
            GAMMA_RETURN_NOT_OK(backup.Delete(*victim));
            changed = true;
          }
          break;
        }
        case WalKind::kModify: {
          const auto cur = backup.Fetch(record.backup_rid,
                                        AccessIntent::kRandom);
          std::optional<Rid> stale;
          if (Holds(cur, record.before)) {
            stale = record.backup_rid;
          } else if (!Holds(cur, record.after)) {
            GAMMA_ASSIGN_OR_RETURN(
                const std::optional<Rid> done,
                FindByContent(sm, backup, record.after, scan_cpu));
            if (!done.has_value()) {
              GAMMA_ASSIGN_OR_RETURN(
                  stale, FindByContent(sm, backup, record.before, scan_cpu));
            }
          }
          if (stale.has_value()) {
            GAMMA_RETURN_NOT_OK(backup.Update(*stale, record.after));
            changed = true;
          }
          break;
        }
        default:
          break;
      }
    }
  }

  if (changed) {
    ++*applied;
    if (touched != nullptr) touched->insert(name);
  }
  return Status::OK();
}

Status GammaMachine::UndoRecord(const WalRecord& record, uint64_t* undone,
                                std::set<std::string>* touched) {
  const std::string& name = wal_->RelationName(record.rel);
  auto meta_or = catalog_.Get(name);
  if (!meta_or.ok()) return Status::OK();
  RelationMeta* meta = *meta_or;
  if (record.kind == WalKind::kPartition) {
    // Loser migration: restore the old placement (a no-op when the crash
    // came before the flip was applied).
    if (ApplyPartitionImage(meta, record.before)) {
      ++*undone;
      if (touched != nullptr) touched->insert(name);
    }
    return Status::OK();
  }
  const int node = record.fragment;
  if (node < 0 || node >= config_.num_disk_nodes) return Status::OK();
  const double scan_cpu = config_.hw.cost.instr_per_tuple_scan;
  bool changed = false;

  if (!faults_->IsDead(node) &&
      meta->per_node_file[static_cast<size_t>(node)] != catalog::kNoFile) {
    storage::StorageManager& sm = *nodes_[static_cast<size_t>(node)];
    storage::HeapFile& file =
        sm.file(meta->per_node_file[static_cast<size_t>(node)]);
    switch (record.kind) {
      case WalKind::kInsert: {
        const auto cur = file.Fetch(record.rid, AccessIntent::kRandom);
        std::optional<Rid> victim;
        if (Holds(cur, record.after)) {
          victim = record.rid;
        } else {
          GAMMA_ASSIGN_OR_RETURN(
              victim, FindByContent(sm, file, record.after, scan_cpu));
        }
        if (victim.has_value()) {
          for (const IndexMeta& idx : meta->indices) {
            GAMMA_RETURN_NOT_OK(RemoveIndexEntry(
                sm.index(idx.per_node_index[static_cast<size_t>(node)]),
                KeyOf(meta->schema, record.after, idx.attr), *victim));
          }
          GAMMA_RETURN_NOT_OK(file.Delete(*victim));
          changed = true;
        }
        break;
      }
      case WalKind::kDelete: {
        // Restore at the original rid keeps the fragment byte-identical to
        // one that never deleted (later appends land after the revived
        // slot, exactly as they would have).
        GAMMA_ASSIGN_OR_RETURN(
            const std::optional<Rid> present,
            FindByContent(sm, file, record.before, scan_cpu));
        if (!present.has_value()) {
          Rid at = record.rid;
          if (!file.Restore(record.rid, record.before).ok()) {
            GAMMA_ASSIGN_OR_RETURN(at, file.Append(record.before));
          }
          for (const IndexMeta& idx : meta->indices) {
            GAMMA_RETURN_NOT_OK(EnsureIndexEntry(
                sm.index(idx.per_node_index[static_cast<size_t>(node)]),
                KeyOf(meta->schema, record.before, idx.attr), at));
          }
          changed = true;
        }
        break;
      }
      case WalKind::kModify: {
        const auto cur = file.Fetch(record.rid, AccessIntent::kRandom);
        std::optional<Rid> stale;
        if (Holds(cur, record.after)) {
          stale = record.rid;
        } else if (!Holds(cur, record.before)) {
          GAMMA_ASSIGN_OR_RETURN(
              const std::optional<Rid> done,
              FindByContent(sm, file, record.before, scan_cpu));
          if (!done.has_value()) {
            GAMMA_ASSIGN_OR_RETURN(
                stale, FindByContent(sm, file, record.after, scan_cpu));
          }
        }
        if (stale.has_value()) {
          GAMMA_RETURN_NOT_OK(file.Update(*stale, record.before));
          for (const IndexMeta& idx : meta->indices) {
            const int32_t before_key =
                KeyOf(meta->schema, record.before, idx.attr);
            const int32_t after_key =
                KeyOf(meta->schema, record.after, idx.attr);
            if (before_key == after_key) continue;
            storage::BTree& tree =
                sm.index(idx.per_node_index[static_cast<size_t>(node)]);
            GAMMA_RETURN_NOT_OK(RemoveIndexEntry(tree, after_key, *stale));
            GAMMA_RETURN_NOT_OK(EnsureIndexEntry(tree, before_key, *stale));
          }
          changed = true;
        }
        break;
      }
      default:
        break;
    }
  }

  if (record.mirrored && meta->backed_up &&
      meta->per_node_backup_file[static_cast<size_t>(node)] !=
          catalog::kNoFile) {
    const int host = (node + 1) % config_.num_disk_nodes;
    if (!faults_->IsDead(host)) {
      storage::StorageManager& sm = *nodes_[static_cast<size_t>(host)];
      storage::HeapFile& backup =
          sm.file(meta->per_node_backup_file[static_cast<size_t>(node)]);
      switch (record.kind) {
        case WalKind::kInsert: {
          const auto cur = backup.Fetch(record.backup_rid,
                                        AccessIntent::kRandom);
          std::optional<Rid> victim;
          if (Holds(cur, record.after)) {
            victim = record.backup_rid;
          } else {
            GAMMA_ASSIGN_OR_RETURN(
                victim, FindByContent(sm, backup, record.after, scan_cpu));
          }
          if (victim.has_value()) {
            GAMMA_RETURN_NOT_OK(backup.Delete(*victim));
            changed = true;
          }
          break;
        }
        case WalKind::kDelete: {
          GAMMA_ASSIGN_OR_RETURN(
              const std::optional<Rid> present,
              FindByContent(sm, backup, record.before, scan_cpu));
          if (!present.has_value()) {
            if (!backup.Restore(record.backup_rid, record.before).ok()) {
              GAMMA_RETURN_NOT_OK(backup.Append(record.before).status());
            }
            changed = true;
          }
          break;
        }
        case WalKind::kModify: {
          const auto cur = backup.Fetch(record.backup_rid,
                                        AccessIntent::kRandom);
          std::optional<Rid> stale;
          if (Holds(cur, record.after)) {
            stale = record.backup_rid;
          } else if (!Holds(cur, record.before)) {
            GAMMA_ASSIGN_OR_RETURN(
                const std::optional<Rid> done,
                FindByContent(sm, backup, record.before, scan_cpu));
            if (!done.has_value()) {
              GAMMA_ASSIGN_OR_RETURN(
                  stale, FindByContent(sm, backup, record.after, scan_cpu));
            }
          }
          if (stale.has_value()) {
            GAMMA_RETURN_NOT_OK(backup.Update(*stale, record.before));
            changed = true;
          }
          break;
        }
        default:
          break;
      }
    }
  }

  if (changed) {
    ++*undone;
    if (touched != nullptr) touched->insert(name);
  }
  return Status::OK();
}

void GammaMachine::UndoTransaction(uint64_t wal_txn, bool close) {
  if (wal_ == nullptr || wal_txn == 0) return;
  const std::deque<WalRecord>& log = wal_->records();
  uint64_t undone = 0;
  for (auto it = log.rbegin(); it != log.rend(); ++it) {
    if (it->txn != wal_txn || !IsData(it->kind)) continue;
    // Best effort: an unreachable copy (dead node) is picked up by
    // Recover()/ReintegrateNode() later.
    (void)UndoRecord(*it, &undone, nullptr);
  }
  if (close) wal_->NoteCleanAbort(wal_txn);
}

Result<GammaMachine::RecoveryReport> GammaMachine::Recover() {
  if (wal_ == nullptr) {
    return Status::FailedPrecondition("Recover requires enable_logging");
  }
  sim::CostTracker tracker(config_.hw, config_.tracker_nodes());
  tracker.AttachFaultInjector(faults_.get());
  BindAll(&tracker);
  tracker.BeginPhase("recovery", sim::PhaseKind::kSequential);
  RecoveryReport report;

  // --- Analysis: one sequential sweep of the retained log classifies every
  // transaction as winner (sealed commit record), already-compensated
  // (clean abort) or loser.
  const std::deque<WalRecord>& log = wal_->records();
  std::set<uint64_t> winners;
  std::set<uint64_t> losers;
  for (const WalRecord& r : log) {
    ++report.log_records_scanned;
    report.log_bytes_replayed += r.bytes();
    if (!IsData(r.kind)) continue;
    if (wal_->IsCommitted(r.txn)) {
      winners.insert(r.txn);
    } else if (!wal_->IsAborted(r.txn)) {
      // A transaction still active in the lock manager is live, not a loser
      // (Recover on an un-crashed machine is a pure verification pass; a
      // real crash cleared the transaction table).
      const bool statement_txn = (r.txn >> 63) != 0;
      if (statement_txn || !txns_.IsActive(r.txn)) losers.insert(r.txn);
    }
  }
  const uint64_t log_pages =
      (report.log_bytes_replayed + config_.page_size - 1) / config_.page_size;
  for (uint64_t p = 0; p < log_pages; ++p) {
    tracker.ChargeDiskRead(config_.recovery_node(), config_.page_size,
                           /*sequential=*/true);
  }

  // --- Redo (forward): committed effects missing from the serving copies.
  // Pages are forced at every commit point, so this normally verifies.
  std::set<std::string> touched;
  for (const WalRecord& r : log) {
    if (!IsData(r.kind) || !winners.contains(r.txn)) continue;
    GAMMA_RETURN_NOT_OK(RedoRecord(r, &report.records_redone, &touched));
  }

  // --- Undo (backward): reverse every loser record, then close the losers
  // in the log so a second restart skips them.
  for (auto it = log.rbegin(); it != log.rend(); ++it) {
    if (!IsData(it->kind) || !losers.contains(it->txn)) continue;
    GAMMA_RETURN_NOT_OK(UndoRecord(*it, &report.records_undone, &touched));
  }
  for (const uint64_t txn : losers) wal_->NoteCleanAbort(txn);

  report.winners = winners.size();
  report.losers = losers.size();
  GAMMA_RETURN_NOT_OK(FlushAllPools());
  tracker.EndPhase();
  BindAll(nullptr);
  for (const std::string& name : touched) RecountRelation(name);
  crashed_ = false;
  report.recovery_sec = tracker.Finish().TotalSec();
  // Flight recorder: the restart occupies [now, now + recovery_sec) on the
  // simulated clock, and the pending post-mortem dump (captured at crash
  // time) rides out on the report.
  journal_.Emit(config_.recovery_node(),
                obs::JournalEventKind::kRecoverBegin);
  journal_.EmitAt(config_.recovery_node(),
                  journal_.now() + report.recovery_sec,
                  obs::JournalEventKind::kRecoverEnd,
                  static_cast<int64_t>(report.winners),
                  static_cast<int64_t>(report.losers));
  journal_.Advance(report.recovery_sec);
  report.post_mortem_json = std::move(post_mortem_);
  post_mortem_.clear();
  // Coordinator-serial path: histogram observation order is deterministic.
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Instance();
  registry.counter("recovery.restarts").Inc();
  registry.counter("recovery.records_redone").Inc(report.records_redone);
  registry.counter("recovery.records_undone").Inc(report.records_undone);
  registry.counter("recovery.losers").Inc(report.losers);
  registry
      .histogram("recovery.seconds", {0.01, 0.1, 1.0, 10.0, 100.0, 1000.0})
      .Observe(report.recovery_sec);
  return report;
}

Result<GammaMachine::RebuildReport> GammaMachine::ReintegrateNode(int node) {
  if (wal_ == nullptr) {
    return Status::FailedPrecondition(
        "node reintegration requires enable_logging");
  }
  if (node < 0 || node >= config_.num_disk_nodes) {
    return Status::InvalidArgument("no such disk node");
  }
  if (crashed_) {
    return Status::FailedPrecondition(
        "machine crashed: run Recover() before reintegrating a node");
  }
  if (!faults_->IsDead(node)) {
    return Status::FailedPrecondition("disk node " + std::to_string(node) +
                                      " is alive");
  }

  sim::CostTracker tracker(config_.hw, config_.tracker_nodes());
  tracker.AttachFaultInjector(faults_.get());
  faults_->ReviveNode(node);
  BindAll(&tracker);
  tracker.BeginPhase("reintegrate", sim::PhaseKind::kSequential);
  RebuildReport report;
  report.node = node;
  const double scan_cpu = config_.hw.cost.instr_per_tuple_scan;
  std::set<std::string> touched;

  // --- 1) Reverse non-committed effects stranded on the revived disk:
  // statements that died at this node's commit point flushed their pages
  // before the death, and every undo so far skipped the unreachable node.
  // Test-and-apply makes the global sweep a no-op everywhere else.
  {
    const std::deque<WalRecord>& log = wal_->records();
    for (auto it = log.rbegin(); it != log.rend(); ++it) {
      if (!IsData(it->kind) || wal_->IsCommitted(it->txn)) continue;
      GAMMA_RETURN_NOT_OK(
          UndoRecord(*it, &report.records_undone, &touched));
    }
  }

  // --- 2) Rebuild the node's primary fragments from their chained backups
  // (the Gamma procedure: a replacement disk is filled from the surviving
  // copy). Mirrored writes land in primary order, so the copy reproduces
  // the fragment's logical order; a clustered fragment is re-sorted on its
  // key (order-exact provided no appends landed after the clustering).
  for (const std::string& name : catalog_.Names()) {
    auto meta_or = catalog_.Get(name);
    if (!meta_or.ok()) continue;
    RelationMeta* meta = *meta_or;
    if (!meta->backed_up) continue;
    const uint32_t old_fid = meta->per_node_file[static_cast<size_t>(node)];
    const uint32_t bfid =
        meta->per_node_backup_file[static_cast<size_t>(node)];
    if (old_fid == catalog::kNoFile || bfid == catalog::kNoFile) continue;
    const int host = (node + 1) % config_.num_disk_nodes;
    if (faults_->IsDead(host)) continue;  // no source; the old copy stands

    storage::StorageManager& src = *nodes_[static_cast<size_t>(host)];
    storage::StorageManager& dst = *nodes_[static_cast<size_t>(node)];
    std::vector<std::vector<uint8_t>> tuples;
    GAMMA_RETURN_NOT_OK(
        src.file(bfid).Scan([&](Rid, std::span<const uint8_t> t) {
          src.charge().Cpu(scan_cpu);
          tuples.emplace_back(t.begin(), t.end());
          return true;
        }));
    // Ship the surviving copy host -> rebuilt node, then hand the stream to
    // the shared rebuilder (fresh heap file in clustered-key order,
    // BulkLoad'ed B-trees, catalog flip) — the one charged implementation,
    // shared with the elastic migrator.
    for (const std::vector<uint8_t>& tuple : tuples) {
      tracker.ChargeDataPacket(host, node, tuple.size());
      report.bytes_shipped += tuple.size();
      ++report.tuples_copied;
    }
    GAMMA_RETURN_NOT_OK(
        elastic::RebuildFragment(dst, node, meta, std::move(tuples),
                                 config_.hw)
            .status());
    ++report.fragments_rebuilt;
    touched.insert(name);
  }

  // --- 3) Catch the node's stale backup fragments up: replay the committed
  // records that could not be mirrored while the node was dead, stamping
  // each with its landing rid so the log regains the mirrored invariant
  // (and the checkpoint can truncate them).
  const int pred =
      (node + config_.num_disk_nodes - 1) % config_.num_disk_nodes;
  for (WalRecord& r : wal_->mutable_records()) {
    if (!IsData(r.kind) || r.mirrored || r.fragment != pred) continue;
    if (!wal_->IsCommitted(r.txn)) continue;
    const std::string& name = wal_->RelationName(r.rel);
    auto meta_or = catalog_.Get(name);
    if (!meta_or.ok()) continue;
    RelationMeta* meta = *meta_or;
    if (!meta->backed_up) continue;
    const uint32_t bfid =
        meta->per_node_backup_file[static_cast<size_t>(pred)];
    if (bfid == catalog::kNoFile) continue;
    storage::StorageManager& sm = *nodes_[static_cast<size_t>(node)];
    storage::HeapFile& backup = sm.file(bfid);
    // The recovery server ships the retained record to the rebuilt host.
    tracker.ChargeDiskRead(config_.recovery_node(), config_.page_size,
                           /*sequential=*/true);
    tracker.ChargeDataPacket(config_.recovery_node(), node,
                             r.before.size() + r.after.size());
    switch (r.kind) {
      case WalKind::kInsert: {
        GAMMA_ASSIGN_OR_RETURN(
            std::optional<Rid> at,
            FindByContent(sm, backup, r.after, scan_cpu));
        if (!at.has_value()) {
          GAMMA_ASSIGN_OR_RETURN(const Rid rid, backup.Append(r.after));
          at = rid;
        }
        r.backup_rid = *at;
        break;
      }
      case WalKind::kDelete: {
        GAMMA_ASSIGN_OR_RETURN(
            const std::optional<Rid> victim,
            FindByContent(sm, backup, r.before, scan_cpu));
        if (victim.has_value()) {
          GAMMA_RETURN_NOT_OK(backup.Delete(*victim));
          r.backup_rid = *victim;
        }
        break;
      }
      case WalKind::kModify: {
        GAMMA_ASSIGN_OR_RETURN(
            std::optional<Rid> at,
            FindByContent(sm, backup, r.before, scan_cpu));
        if (at.has_value()) {
          GAMMA_RETURN_NOT_OK(backup.Update(*at, r.after));
        } else {
          GAMMA_ASSIGN_OR_RETURN(
              at, FindByContent(sm, backup, r.after, scan_cpu));
        }
        if (at.has_value()) r.backup_rid = *at;
        break;
      }
      default:
        break;
    }
    r.mirrored = true;
    ++report.log_records_replayed;
  }

  // A loser whose every copy is now reachable has been fully reversed;
  // close it so restarts and checkpoints stop carrying it.
  if (static_cast<int>(LiveDiskNodes().size()) == config_.num_disk_nodes) {
    for (const uint64_t txn : wal_->OpenTxns()) {
      const bool statement_txn = (txn >> 63) != 0;
      if (statement_txn || !txns_.IsActive(txn)) wal_->NoteCleanAbort(txn);
    }
  }

  GAMMA_RETURN_NOT_OK(FlushAllPools());
  tracker.EndPhase();
  BindAll(nullptr);
  for (const std::string& name : touched) RecountRelation(name);
  report.rebuild_sec = tracker.Finish().TotalSec();
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Instance();
  registry.counter("recovery.reintegrations").Inc();
  registry.counter("recovery.fragments_rebuilt").Inc(report.fragments_rebuilt);
  registry.counter("recovery.tuples_copied").Inc(report.tuples_copied);
  registry
      .histogram("recovery.rebuild_seconds",
                 {0.01, 0.1, 1.0, 10.0, 100.0, 1000.0})
      .Observe(report.rebuild_sec);
  return report;
}

}  // namespace gammadb::gamma
