// Aggregate-query execution of GammaMachine (paper §1: aggregate tests were
// run; detailed results deferred to [DEWI88]). Scheme: local aggregation at
// every disk site, partials split on the grouping attribute to the merging
// sites, final results returned to the host.

#include <cstring>
#include <memory>

#include "common/hash.h"
#include "common/macros.h"
#include "exec/aggregate.h"
#include "exec/exchange.h"
#include "exec/select.h"
#include "exec/skew.h"
#include "exec/split_table.h"
#include "gamma/machine.h"

namespace gammadb::gamma {

using catalog::RelationMeta;
using catalog::Schema;
using exec::AggState;
using exec::GroupedAggregator;
using exec::Predicate;
using exec::SplitTable;
using storage::LockMode;
using storage::LockName;

namespace {

/// Wire format of a partial aggregate: the group key (routable int32) plus
/// the opaque accumulator state.
Schema PartialSchema() {
  return Schema({{"group", catalog::AttrType::kInt32, 4},
                 {"state", catalog::AttrType::kChar, sizeof(AggState)}});
}

}  // namespace

Result<QueryResult> GammaMachine::RunAggregate(const AggregateQuery& query) {
  return FinalizeObs("aggregate", RunWithFailover([&] {
                       return RunAggregateAttempt(query);
                     }));
}

Result<QueryResult> GammaMachine::RunAggregateAttempt(
    const AggregateQuery& query) {
  GAMMA_ASSIGN_OR_RETURN(RelationMeta * meta, catalog_.Get(query.relation));
  if (query.value_attr < 0 ||
      static_cast<size_t>(query.value_attr) >= meta->schema.num_attrs()) {
    return Status::InvalidArgument("aggregate value attribute out of range");
  }
  if (query.group_attr >= 0 &&
      static_cast<size_t>(query.group_attr) >= meta->schema.num_attrs()) {
    return Status::InvalidArgument("aggregate group attribute out of range");
  }

  sim::CostTracker tracker(config_.hw, config_.tracker_nodes());
  tracker.AttachFaultInjector(faults_.get());
  BindAll(&tracker);
  tracker.ChargeHostSetup(config_.host_setup_sec);
  const uint64_t txn = txns_.Begin();
  QueryGuard guard(this, txn);
  const int ndisk = config_.num_disk_nodes;

  // Which copy serves each fragment, and which sites can merge. With a dead
  // node the merge work redistributes over the survivors.
  std::vector<FragmentCopy> sources;
  sources.reserve(static_cast<size_t>(ndisk));
  for (int f = 0; f < ndisk; ++f) {
    GAMMA_ASSIGN_OR_RETURN(const FragmentCopy src, ServingCopy(*meta, f));
    sources.push_back(src);
  }
  const std::vector<int> merge_sites = LiveDiskNodes();
  if (merge_sites.empty()) {
    return Status::Unavailable("no surviving aggregation sites");
  }

  // Scheduling: scan+local-aggregate operators, then global-merge operators.
  tracker.ChargeScheduling(1, static_cast<uint32_t>(sources.size()));
  tracker.ChargeScheduling(1, static_cast<uint32_t>(merge_sites.size()));

  // --- Phase 1: local aggregation wherever each fragment is served, one
  // host task per serving node. ---
  std::vector<std::unique_ptr<GroupedAggregator>> locals(
      static_cast<size_t>(ndisk));
  tracker.BeginPhase("local_agg", sim::PhaseKind::kPipelined);

  // 2PL footprint: IS on the relation, S on every scanned fragment.
  {
    const uint32_t rel = txns_.RelationId(meta->name);
    GAMMA_RETURN_NOT_OK(AcquireTxnLock(&tracker, txn, config_.scheduler_node(),
                                       txn::LockId::Relation(rel),
                                       txn::LockMode::kIS));
    for (int f = 0; f < ndisk; ++f) {
      const txn::LockId id =
          txn::LockId::Fragment(rel, static_cast<uint32_t>(f));
      GAMMA_RETURN_NOT_OK(AcquireTxnLock(&tracker, txn, txns_.TableFor(id),
                                         id, txn::LockMode::kS));
    }
  }

  {
    std::vector<NodeTask> tasks;
    for (const NodeGroup& group : GroupByServingNode(sources)) {
      tasks.push_back(NodeTask{
          group.node, [&, group](sim::CostTracker& shard) -> Status {
            storage::StorageManager& sm =
                *nodes_[static_cast<size_t>(group.node)];
            for (size_t f : group.members) {
              const FragmentCopy& src = sources[f];
              GAMMA_CHECK(sm.locks()
                              .Acquire(txn, LockName::File(src.file),
                                       LockMode::kShared)
                              .ok());
              locals[f] = std::make_unique<GroupedAggregator>(
                  query.group_attr, query.value_attr, query.func,
                  &meta->schema, &sm.charge());
              GAMMA_RETURN_NOT_OK(
                  exec::SelectScan(sm.file(src.file), meta->schema,
                                   query.predicate, sm.charge(),
                                   [&](std::span<const uint8_t> t) {
                                     locals[f]->Consume(t);
                                   })
                      .status());
              shard.ChargeControlMessage(src.node, config_.scheduler_node(),
                                         false);
            }
            return Status::OK();
          }});
    }
    GAMMA_RETURN_NOT_OK(RunNodeTasks(&tracker, std::move(tasks)));
  }
  GAMMA_RETURN_NOT_OK(FlushAllPools());
  tracker.EndPhase();

  // --- Phase 2: split partials on the group key and merge. ---
  const Schema partial_schema = PartialSchema();
  const Schema result_schema = GroupedAggregator::ResultSchema();
  std::vector<std::unique_ptr<GroupedAggregator>> globals;
  for (const int site : merge_sites) {
    globals.push_back(std::make_unique<GroupedAggregator>(
        /*group_attr=*/0, /*value_attr=*/0, query.func, &result_schema,
        &nodes_[static_cast<size_t>(site)]->charge()));
  }
  const uint64_t salt = next_salt_++;
  // Skew-aware merge routing: unlike the join, no sampling is needed — the
  // coordinator sees every local group key, so the exact redistribution
  // weight per key (one partial per fragment holding the group) is a free
  // byproduct of phase 1. When plain hash(group) % sites would exceed the
  // documented imbalance threshold, route through an LPT-balanced bucket
  // map instead; each serving node reports its group list to the scheduler
  // in one control-message round trip, charged below.
  exec::RouteSpec merge_route = query.group_attr < 0
                                    ? exec::RouteSpec::Single(0)
                                    : exec::RouteSpec::HashAttr(0, salt);
  bool merge_bucket_map = false;
  if (query.group_attr >= 0) {
    exec::SplitTableBuilder builder(
        exec::ChooseBucketCount(merge_sites.size()), salt);
    for (size_t f = 0; f < locals.size(); ++f) {
      for (const auto& [group_key, state] : locals[f]->groups()) {
        builder.AddWeightedKey(group_key, 1, sources[f].node);
      }
    }
    if (builder.total_weight() > 0) {
      const exec::SkewAssignment assignment = builder.Build(merge_sites);
      if (assignment.hash_imbalance > opt::kSkewImbalanceThreshold) {
        merge_route =
            exec::RouteSpec::BucketMap(0, salt, assignment.bucket_map);
        merge_bucket_map = true;
      }
    }
  }
  tracker.BeginPhase("global_agg", sim::PhaseKind::kPipelined);
  {
    if (merge_bucket_map) {
      for (const NodeGroup& group : GroupByServingNode(sources)) {
        tracker.ChargeControlMessage(group.node, config_.scheduler_node(),
                                     /*blocking=*/false);
        tracker.ChargeControlMessage(config_.scheduler_node(), group.node,
                                     /*blocking=*/true);
      }
    }
    // Producers: each serving node ships its fragments' partials through the
    // split into the (fragment, merge-site) exchange.
    exec::Exchange agg_ex(static_cast<size_t>(ndisk), merge_sites.size(),
                          partial_schema.tuple_size());
    std::vector<NodeTask> tasks;
    for (const NodeGroup& group : GroupByServingNode(sources)) {
      tasks.push_back(NodeTask{
          group.node, [&, group](sim::CostTracker& shard) -> Status {
            for (size_t f : group.members) {
              const FragmentCopy& src = sources[f];
              std::vector<SplitTable::Destination> dests;
              for (size_t d = 0; d < merge_sites.size(); ++d) {
                dests.push_back(SplitTable::Destination{
                    merge_sites[d],
                    [&agg_ex, f, d](std::span<const uint8_t> partial) {
                      agg_ex.Append(f, d, partial);
                    }});
              }
              SplitTable split(src.node, &partial_schema, merge_route,
                               std::move(dests), &shard);
              catalog::TupleBuilder builder(&partial_schema);
              for (const auto& [group_key, state] : locals[f]->groups()) {
                builder.SetInt(0, group_key);
                builder.SetChar(
                    1, std::string_view(
                           reinterpret_cast<const char*>(&state),
                           sizeof(state)));
                split.Send(builder.bytes());
              }
              split.Close();
            }
            return Status::OK();
          }});
    }
    GAMMA_RETURN_NOT_OK(RunNodeTasks(&tracker, std::move(tasks)));
    // Consumers: each merge site drains its column in ascending fragment
    // order and folds the partials into its global aggregator.
    std::vector<NodeTask> merges;
    for (size_t d = 0; d < merge_sites.size(); ++d) {
      merges.push_back(NodeTask{
          merge_sites[d], [&, d](sim::CostTracker&) {
            agg_ex.Drain(d, [&, d](std::span<const uint8_t> partial) {
              int32_t group;
              AggState state;
              std::memcpy(&group, partial.data(), sizeof(group));
              std::memcpy(&state, partial.data() + sizeof(group),
                          sizeof(state));
              globals[d]->MergeGroup(group, state);
            });
            return Status::OK();
          }});
    }
    GAMMA_RETURN_NOT_OK(RunNodeTasks(&tracker, std::move(merges)));
  }
  tracker.EndPhase();

  // --- Phase 3: return final values to the host. ---
  QueryResult result;
  tracker.BeginPhase("return", sim::PhaseKind::kPipelined);
  {
    exec::Exchange ret_ex(merge_sites.size(), 1, result_schema.tuple_size());
    std::vector<NodeTask> tasks;
    for (size_t d = 0; d < merge_sites.size(); ++d) {
      tasks.push_back(NodeTask{
          merge_sites[d], [&, d](sim::CostTracker& shard) {
            // Sites that received no groups send nothing (not even the
            // end-of-stream split, matching the sequential schedule).
            if (globals[d]->num_groups() == 0) return Status::OK();
            std::vector<SplitTable::Destination> dests;
            dests.push_back(SplitTable::Destination{
                config_.host_node(), [&ret_ex, d](std::span<const uint8_t> t) {
                  ret_ex.Append(d, 0, t);
                }});
            SplitTable split(merge_sites[d], &result_schema,
                             exec::RouteSpec::Single(0), std::move(dests),
                             &shard);
            globals[d]->EmitResults(
                [&split](std::span<const uint8_t> t) { split.Send(t); });
            split.Close();
            shard.ChargeControlMessage(merge_sites[d],
                                       config_.scheduler_node(), false);
            return Status::OK();
          }});
    }
    GAMMA_RETURN_NOT_OK(RunNodeTasks(&tracker, std::move(tasks)));
    ret_ex.Drain(0, [&result](std::span<const uint8_t> t) {
      result.returned.emplace_back(t.begin(), t.end());
    });
  }
  tracker.EndPhase();

  for (auto& node : nodes_) node->locks().ReleaseAll(txn);
  result.result_tuples = result.returned.size();
  guard.Dismiss();
  BindAll(nullptr);
  result.metrics = tracker.Finish();
  FillLockMetrics(txn, &result.metrics);
  txns_.Commit(txn);
  return result;
}

}  // namespace gammadb::gamma
