// Aggregate-query execution of GammaMachine (paper §1: aggregate tests were
// run; detailed results deferred to [DEWI88]). Scheme: local aggregation at
// every disk site, partials split on the grouping attribute to the merging
// sites, final results returned to the host.

#include <cstring>
#include <memory>

#include "common/hash.h"
#include "common/macros.h"
#include "exec/aggregate.h"
#include "exec/select.h"
#include "exec/split_table.h"
#include "gamma/machine.h"

namespace gammadb::gamma {

using catalog::RelationMeta;
using catalog::Schema;
using exec::AggState;
using exec::GroupedAggregator;
using exec::Predicate;
using exec::SplitTable;
using storage::LockMode;
using storage::LockName;

namespace {

/// Wire format of a partial aggregate: the group key (routable int32) plus
/// the opaque accumulator state.
Schema PartialSchema() {
  return Schema({{"group", catalog::AttrType::kInt32, 4},
                 {"state", catalog::AttrType::kChar, sizeof(AggState)}});
}

}  // namespace

Result<QueryResult> GammaMachine::RunAggregate(const AggregateQuery& query) {
  return RunWithFailover([&] { return RunAggregateAttempt(query); });
}

Result<QueryResult> GammaMachine::RunAggregateAttempt(
    const AggregateQuery& query) {
  GAMMA_ASSIGN_OR_RETURN(RelationMeta * meta, catalog_.Get(query.relation));
  if (query.value_attr < 0 ||
      static_cast<size_t>(query.value_attr) >= meta->schema.num_attrs()) {
    return Status::InvalidArgument("aggregate value attribute out of range");
  }
  if (query.group_attr >= 0 &&
      static_cast<size_t>(query.group_attr) >= meta->schema.num_attrs()) {
    return Status::InvalidArgument("aggregate group attribute out of range");
  }

  sim::CostTracker tracker(config_.hw, config_.tracker_nodes());
  tracker.AttachFaultInjector(faults_.get());
  BindAll(&tracker);
  tracker.ChargeHostSetup(config_.host_setup_sec);
  const uint64_t txn = next_txn_id_++;
  QueryGuard guard(this, txn);
  const int ndisk = config_.num_disk_nodes;

  // Which copy serves each fragment, and which sites can merge. With a dead
  // node the merge work redistributes over the survivors.
  std::vector<FragmentCopy> sources;
  sources.reserve(static_cast<size_t>(ndisk));
  for (int f = 0; f < ndisk; ++f) {
    GAMMA_ASSIGN_OR_RETURN(const FragmentCopy src, ServingCopy(*meta, f));
    sources.push_back(src);
  }
  const std::vector<int> merge_sites = LiveDiskNodes();
  if (merge_sites.empty()) {
    return Status::Unavailable("no surviving aggregation sites");
  }

  // Scheduling: scan+local-aggregate operators, then global-merge operators.
  tracker.ChargeScheduling(1, static_cast<uint32_t>(sources.size()));
  tracker.ChargeScheduling(1, static_cast<uint32_t>(merge_sites.size()));

  // --- Phase 1: local aggregation wherever each fragment is served. ---
  std::vector<std::unique_ptr<GroupedAggregator>> locals;
  tracker.BeginPhase("local_agg", sim::PhaseKind::kPipelined);
  for (int f = 0; f < ndisk; ++f) {
    const FragmentCopy& src = sources[static_cast<size_t>(f)];
    storage::StorageManager& sm = *nodes_[static_cast<size_t>(src.node)];
    GAMMA_CHECK(sm.locks()
                    .Acquire(txn, LockName::File(src.file), LockMode::kShared)
                    .ok());
    locals.push_back(std::make_unique<GroupedAggregator>(
        query.group_attr, query.value_attr, query.func, &meta->schema,
        &sm.charge()));
    GAMMA_RETURN_NOT_OK(
        exec::SelectScan(sm.file(src.file), meta->schema, query.predicate,
                         sm.charge(),
                         [&](std::span<const uint8_t> t) {
                           locals.back()->Consume(t);
                         })
            .status());
    tracker.ChargeControlMessage(src.node, config_.scheduler_node(), false);
  }
  GAMMA_RETURN_NOT_OK(FlushAllPools());
  tracker.EndPhase();

  // --- Phase 2: split partials on the group key and merge. ---
  const Schema partial_schema = PartialSchema();
  const Schema result_schema = GroupedAggregator::ResultSchema();
  std::vector<std::unique_ptr<GroupedAggregator>> globals;
  for (const int site : merge_sites) {
    globals.push_back(std::make_unique<GroupedAggregator>(
        /*group_attr=*/0, /*value_attr=*/0, query.func, &result_schema,
        &nodes_[static_cast<size_t>(site)]->charge()));
  }
  const uint64_t salt = next_salt_++;
  tracker.BeginPhase("global_agg", sim::PhaseKind::kPipelined);
  for (int f = 0; f < ndisk; ++f) {
    const FragmentCopy& src = sources[static_cast<size_t>(f)];
    std::vector<SplitTable::Destination> dests;
    for (size_t d = 0; d < merge_sites.size(); ++d) {
      dests.push_back(SplitTable::Destination{
          merge_sites[d], [&, d](std::span<const uint8_t> partial) {
            int32_t group;
            AggState state;
            std::memcpy(&group, partial.data(), sizeof(group));
            std::memcpy(&state, partial.data() + sizeof(group),
                        sizeof(state));
            globals[d]->MergeGroup(group, state);
          }});
    }
    SplitTable split(src.node, &partial_schema,
                     query.group_attr < 0
                         ? exec::RouteSpec::Single(0)
                         : exec::RouteSpec::HashAttr(0, salt),
                     std::move(dests), &tracker);
    catalog::TupleBuilder builder(&partial_schema);
    for (const auto& [group, state] : locals[static_cast<size_t>(f)]->groups()) {
      builder.SetInt(0, group);
      builder.SetChar(1, std::string_view(
                             reinterpret_cast<const char*>(&state),
                             sizeof(state)));
      split.Send(builder.bytes());
    }
    split.Close();
  }
  tracker.EndPhase();

  // --- Phase 3: return final values to the host. ---
  QueryResult result;
  tracker.BeginPhase("return", sim::PhaseKind::kPipelined);
  for (size_t d = 0; d < merge_sites.size(); ++d) {
    if (globals[d]->num_groups() == 0) continue;
    std::vector<SplitTable::Destination> dests;
    dests.push_back(SplitTable::Destination{
        config_.host_node(), [&result](std::span<const uint8_t> t) {
          result.returned.emplace_back(t.begin(), t.end());
        }});
    SplitTable split(merge_sites[d], &result_schema, exec::RouteSpec::Single(0),
                     std::move(dests), &tracker);
    globals[d]->EmitResults(
        [&split](std::span<const uint8_t> t) { split.Send(t); });
    split.Close();
    tracker.ChargeControlMessage(merge_sites[d], config_.scheduler_node(),
                                 false);
  }
  tracker.EndPhase();

  for (auto& node : nodes_) node->locks().ReleaseAll(txn);
  result.result_tuples = result.returned.size();
  guard.Dismiss();
  BindAll(nullptr);
  result.metrics = tracker.Finish();
  return result;
}

}  // namespace gammadb::gamma
