// Elastic machine growth: online registration of a fresh disk node with a
// running GammaMachine.
//
// AddNode() widens every machine-lifetime structure — the node vector, the
// fault injector's disk and packet streams, the transaction manager's lock
// tables and the WAL's staging buffers (per-statement structures are sized
// from config_ at each statement, so they pick the new width up on their
// own) — and gives every relation an empty fragment on the new node. Tuple
// placement is deliberately untouched: hashed relations are first converted
// to virtual-bucket (bucket_map) routing that reproduces their old
// placement exactly, so queries keep their answers until an
// ElasticMigrator (src/elastic/migrator.h) rebalances fragments.
//
// The one physical move AddNode performs itself is the backup-ring
// rewiring for chained declustering. With backups at (f+1) % n, growing
// n -> n+1 relocates exactly one copy per relation: fragment n-1's backup
// leaves node 0 for the new node n (every other fragment keeps its host,
// since (f+1) % n == (f+1) % (n+1) for f < n-1), and the new fragment n
// gets an empty backup file on node 0. This must happen synchronously —
// the mirror write path computes hosts from the current width.

#include <algorithm>
#include <cstdint>

#include "common/macros.h"
#include "gamma/machine.h"
#include "obs/metrics_registry.h"

namespace gammadb::gamma {

using catalog::IndexMeta;
using catalog::PartitionStrategy;
using catalog::RelationMeta;
using storage::Rid;

namespace {

/// Virtual buckets per disk node when converting a plain-hashed relation.
/// The map is sized from the *pre-growth* width so old_n divides the bucket
/// count and bucket b -> b % old_n reproduces hash % old_n placement
/// exactly; 16 buckets per node keeps later rebalances within ~1/16 of
/// perfect balance per step.
constexpr int kBucketsPerNode = 16;

}  // namespace

Result<GammaMachine::GrowthReport> GammaMachine::AddNode() {
  if (crashed_) {
    return Status::FailedPrecondition(
        "machine crashed: run Recover() before adding a node");
  }
  // The ring rewiring reads node 0 and writes the new node, and every
  // relation gains a fragment everywhere; a dead node would leave the
  // catalog half-grown.
  for (int i = 0; i < config_.num_disk_nodes; ++i) {
    if (faults_->IsDead(i)) {
      return Status::Unavailable("cannot add a node while disk node " +
                                 std::to_string(i) + " is down");
    }
  }
  // TxnManager::Grow moves the relation-lock table; open transactions would
  // strand their locks under the old numbering.
  if (!txns_.quiescent()) {
    return Status::FailedPrecondition(
        "cannot add a node with transactions in flight");
  }

  const int old_n = config_.num_disk_nodes;
  const int new_node = old_n;
  GrowthReport report;
  report.node = new_node;

  // Convert plain-hashed relations to virtual-bucket placement before the
  // width changes: bucket_map[b] = b % old_n over kBucketsPerNode * old_n
  // buckets routes every key to the site hash % old_n chose, so this is a
  // pure metadata change — and the migrator later rebalances by rewriting
  // map entries instead of rehashing tuples (the catalog-side analogue of
  // exec::RouteSpec::kBucketMap).
  for (const std::string& name : catalog_.Names()) {
    auto meta_or = catalog_.Get(name);
    if (!meta_or.ok()) continue;
    RelationMeta* meta = *meta_or;
    catalog::PartitionSpec& spec = meta->partitioning;
    if (spec.strategy == PartitionStrategy::kHashed &&
        spec.bucket_map.empty()) {
      const int buckets = kBucketsPerNode * old_n;
      spec.bucket_map.resize(static_cast<size_t>(buckets));
      for (int b = 0; b < buckets; ++b) {
        spec.bucket_map[static_cast<size_t>(b)] = b % old_n;
      }
      ++report.relations_converted;
    } else if ((spec.strategy == PartitionStrategy::kRangeUser ||
                spec.strategy == PartitionStrategy::kRangeUniform) &&
               spec.range_nodes.empty()) {
      // Pin range placement too: the implicit min(range, nodes-1) fallback
      // would shift overflow ranges when the width changes.
      std::vector<int32_t> pinned;
      pinned.reserve(spec.num_ranges());
      for (size_t i = 0; i < spec.num_ranges(); ++i) {
        pinned.push_back(spec.RangeNode(i, old_n));
      }
      spec.range_nodes = std::move(pinned);
      ++report.relations_converted;
    }
  }

  // Register the node with the sim layer: disk + packet fault streams
  // seeded exactly as a fresh machine of the new width would seed them,
  // then the storage manager (its SimulatedDisk / charge servers bind to
  // whatever tracker each statement brings).
  faults_->AddDiskNode();
  nodes_.insert(nodes_.begin() + new_node,
                std::make_unique<storage::StorageManager>(
                    config_.page_size, config_.buffer_pool_bytes,
                    faults_.get(), new_node));
  config_.num_disk_nodes = old_n + 1;
  // Upper node ids (scheduler, host, recovery server) all shifted by one.
  txns_.Grow(config_.tracker_nodes(), config_.scheduler_node());
  if (wal_ != nullptr) wal_->Grow(config_.tracker_nodes());
  // The flight recorder gains the new node's ring at its disk index, so
  // the control rings keep tracking their (shifted) tracker nodes; the
  // layers that cache a control-ring index are re-attached at the new ids.
  journal_.Grow(new_node);
  txns_.AttachJournal(&journal_, config_.scheduler_node());
  if (wal_ != nullptr) {
    wal_->AttachJournal(&journal_, config_.recovery_node());
  }
  journal_.Emit(config_.scheduler_node(), obs::JournalEventKind::kNodeAdded,
                new_node);

  // Charged registration pass: every relation gains an empty fragment and
  // empty index slots on the new node, and backed-up relations get their
  // ring rewired. Sequential on the coordinator — deterministic at any
  // host-thread count.
  sim::CostTracker tracker(config_.hw, config_.tracker_nodes());
  tracker.AttachFaultInjector(faults_.get());
  BindAll(&tracker);
  tracker.BeginPhase("grow", sim::PhaseKind::kSequential);
  const double scan_cpu = config_.hw.cost.instr_per_tuple_scan;
  storage::StorageManager& fresh = *nodes_[static_cast<size_t>(new_node)];

  Status failed = Status::OK();
  for (const std::string& name : catalog_.Names()) {
    auto meta_or = catalog_.Get(name);
    if (!meta_or.ok()) continue;
    RelationMeta* meta = *meta_or;
    meta->per_node_file.push_back(fresh.CreateFile());
    for (IndexMeta& idx : meta->indices) {
      idx.per_node_index.push_back(fresh.CreateIndex());
    }
    if (!meta->backed_up) continue;

    // Relocate fragment old_n-1's backup: node 0 -> new node (the ring
    // host (old_n-1 + 1) % (old_n+1)). Charged scan + ship + store.
    storage::StorageManager& donor = *nodes_[0];
    const uint32_t old_bfid =
        meta->per_node_backup_file[static_cast<size_t>(old_n - 1)];
    if (old_bfid != catalog::kNoFile) {
      std::vector<std::vector<uint8_t>> tuples;
      failed = donor.file(old_bfid).Scan(
          [&](Rid, std::span<const uint8_t> t) {
            donor.charge().Cpu(scan_cpu);
            tuples.emplace_back(t.begin(), t.end());
            return true;
          });
      if (!failed.ok()) break;
      const storage::FileId new_bfid = fresh.CreateFile();
      for (const std::vector<uint8_t>& tuple : tuples) {
        tracker.ChargeDataPacket(0, new_node, tuple.size());
        fresh.charge().Cpu(config_.hw.cost.instr_per_tuple_store);
        auto rid_or = fresh.file(new_bfid).Append(tuple);
        if (!rid_or.ok()) {
          failed = rid_or.status();
          break;
        }
        report.bytes_shipped += tuple.size();
        ++report.backup_tuples_relocated;
      }
      if (!failed.ok()) break;
      donor.DropFile(old_bfid);
      meta->per_node_backup_file[static_cast<size_t>(old_n - 1)] = new_bfid;
    }
    // The new (empty) fragment old_n chains its backup onto node 0.
    meta->per_node_backup_file.push_back(nodes_[0]->CreateFile());
  }

  if (failed.ok()) failed = FlushAllPools();
  tracker.EndPhase();
  BindAll(nullptr);
  GAMMA_RETURN_NOT_OK(failed);
  report.grow_sec = tracker.Finish().TotalSec();
  journal_.Advance(report.grow_sec);
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Instance();
  registry.counter("elastic.nodes_added").Inc();
  registry.counter("elastic.backup_tuples_relocated")
      .Inc(report.backup_tuples_relocated);
  registry.histogram("elastic.grow_seconds",
                     {0.01, 0.1, 1.0, 10.0, 100.0, 1000.0})
      .Observe(report.grow_sec);
  return report;
}

}  // namespace gammadb::gamma
