#include "common/rng.h"

#include "common/macros.h"

namespace gammadb {

uint64_t Rng::Next64() {
  // splitmix64: tiny, fast, passes BigCrush for this use.
  state_ += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rng::Uniform(uint64_t bound) {
  GAMMA_DCHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = Next64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  GAMMA_DCHECK(lo <= hi);
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next64() >> 11) * (1.0 / 9007199254740992.0);
}

std::vector<uint32_t> Rng::Permutation(uint32_t n) {
  std::vector<uint32_t> perm(n);
  for (uint32_t i = 0; i < n; ++i) perm[i] = i;
  for (uint32_t i = n; i > 1; --i) {
    const uint32_t j = static_cast<uint32_t>(Uniform(i));
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

}  // namespace gammadb
