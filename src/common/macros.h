#ifndef GAMMA_COMMON_MACROS_H_
#define GAMMA_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

// Unconditional runtime invariant check. Database invariant violations are
// programming errors; we abort rather than try to limp along with corrupt
// state (the RocksDB/Arrow convention for internal invariants).
#define GAMMA_CHECK(cond)                                                 \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "GAMMA_CHECK failed: %s at %s:%d\n", #cond,    \
                   __FILE__, __LINE__);                                   \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

#define GAMMA_CHECK_MSG(cond, msg)                                        \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "GAMMA_CHECK failed: %s (%s) at %s:%d\n",      \
                   #cond, (msg), __FILE__, __LINE__);                     \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

// Debug-only check; compiled out in release builds.
#ifndef NDEBUG
#define GAMMA_DCHECK(cond) GAMMA_CHECK(cond)
#else
#define GAMMA_DCHECK(cond) \
  do {                     \
  } while (0)
#endif

// Propagate a non-OK Status from an expression returning Status.
#define GAMMA_RETURN_NOT_OK(expr)              \
  do {                                         \
    ::gammadb::Status _st = (expr);              \
    if (!_st.ok()) return _st;                 \
  } while (0)

#endif  // GAMMA_COMMON_MACROS_H_
