#ifndef GAMMA_COMMON_STATUS_H_
#define GAMMA_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace gammadb {

/// \brief Outcome of a fallible operation, in the RocksDB/Arrow style.
///
/// Functions that can fail for reasons other than programming errors return a
/// Status (or a Result<T>). Internal invariant violations use GAMMA_CHECK
/// instead. The OK status carries no allocation.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kAlreadyExists,
    kOutOfRange,
    kResourceExhausted,
    kFailedPrecondition,
    kCorruption,
    kNotImplemented,
    /// A retryable I/O failure (transient disk fault). Callers with a retry
    /// budget may re-issue the operation.
    kIOError,
    /// A permanently failed component (dead disk node). Queries may fail
    /// over to a surviving replica but must not retry the same component.
    kUnavailable,
  };

  Status() : code_(Code::kOk) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(Code::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(Code::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(Code::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(Code::kFailedPrecondition, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(Code::kNotImplemented, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(Code::kIOError, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(Code::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsFailedPrecondition() const {
    return code_ == Code::kFailedPrecondition;
  }
  bool IsResourceExhausted() const {
    return code_ == Code::kResourceExhausted;
  }
  bool IsOutOfRange() const { return code_ == Code::kOutOfRange; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsIOError() const { return code_ == Code::kIOError; }
  bool IsUnavailable() const { return code_ == Code::kUnavailable; }

  /// Human-readable rendering, e.g. "NotFound: no such relation".
  std::string ToString() const;

 private:
  Status(Code code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

}  // namespace gammadb

#endif  // GAMMA_COMMON_STATUS_H_
