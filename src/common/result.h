#ifndef GAMMA_COMMON_RESULT_H_
#define GAMMA_COMMON_RESULT_H_

#include <utility>
#include <variant>

#include "common/macros.h"
#include "common/status.h"

namespace gammadb {

/// \brief A value-or-Status, in the Arrow Result<T> style.
///
/// Either holds a T (status is OK) or a non-OK Status. Accessing the value of
/// an errored Result is a checked programming error.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value or from an error Status keeps call
  /// sites readable (`return tuple;` / `return Status::NotFound(...)`), the
  /// same convenience trade-off Arrow makes.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    GAMMA_CHECK_MSG(!std::get<Status>(repr_).ok(),
                    "Result constructed from OK status");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return std::holds_alternative<T>(repr_); }

  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  const T& value() const& {
    GAMMA_CHECK_MSG(ok(), status().ToString().c_str());
    return std::get<T>(repr_);
  }
  T& value() & {
    GAMMA_CHECK_MSG(ok(), status().ToString().c_str());
    return std::get<T>(repr_);
  }
  T&& value() && {
    GAMMA_CHECK_MSG(ok(), status().ToString().c_str());
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> repr_;
};

// Assigns the value of a Result-returning expression to `lhs`, propagating
// any error to the caller.
#define GAMMA_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value();

#define GAMMA_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define GAMMA_ASSIGN_OR_RETURN_NAME(a, b) GAMMA_ASSIGN_OR_RETURN_CONCAT(a, b)
#define GAMMA_ASSIGN_OR_RETURN(lhs, expr)                                  \
  GAMMA_ASSIGN_OR_RETURN_IMPL(                                             \
      GAMMA_ASSIGN_OR_RETURN_NAME(_gamma_result_, __LINE__), lhs, expr)

}  // namespace gammadb

#endif  // GAMMA_COMMON_RESULT_H_
