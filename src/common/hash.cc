#include "common/hash.h"

namespace gammadb {

uint64_t HashBytes(const void* data, size_t len, uint64_t salt) {
  const auto* bytes = static_cast<const uint8_t*>(data);
  uint64_t h = 14695981039346656037ULL ^ (salt * 0x9e3779b97f4a7c15ULL);
  for (size_t i = 0; i < len; ++i) {
    h ^= bytes[i];
    h *= 1099511628211ULL;
  }
  // Final avalanche so that low bits are usable for bucket selection.
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return h;
}

uint64_t HashInt32(int32_t value, uint64_t salt) {
  return HashBytes(&value, sizeof(value), salt);
}

}  // namespace gammadb
