#ifndef GAMMA_COMMON_HASH_H_
#define GAMMA_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>

namespace gammadb {

/// \brief Salted 64-bit mix hash over a byte string (FNV-1a + final mix).
///
/// The salt selects among the independent hash functions Gamma needs: one
/// for declustering at load time, one per split table, and a fresh one per
/// hash-table-overflow round (the paper's "Gamma switches hash functions"
/// behaviour in Section 6.2.2 depends on these being independent).
uint64_t HashBytes(const void* data, size_t len, uint64_t salt);

/// Convenience overload for a 4-byte integer key.
uint64_t HashInt32(int32_t value, uint64_t salt);

}  // namespace gammadb

#endif  // GAMMA_COMMON_HASH_H_
