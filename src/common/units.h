#ifndef GAMMA_COMMON_UNITS_H_
#define GAMMA_COMMON_UNITS_H_

#include <cstdint>

namespace gammadb {

inline constexpr uint64_t kKiB = 1024;
inline constexpr uint64_t kMiB = 1024 * kKiB;

/// Megabits per second expressed as bytes per second (network bandwidths in
/// the paper are quoted in megabits).
constexpr double MbitPerSecToBytesPerSec(double mbit) {
  return mbit * 1e6 / 8.0;
}

}  // namespace gammadb

#endif  // GAMMA_COMMON_UNITS_H_
