#ifndef GAMMA_COMMON_RNG_H_
#define GAMMA_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace gammadb {

/// \brief Deterministic pseudo-random number generator (splitmix64 core).
///
/// Every randomized component in the repository (data generation, property
/// tests, hash-function salts) draws from an explicitly seeded Rng so that
/// runs are reproducible bit-for-bit.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t Next64();

  /// Uniform in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound);

  /// Uniform in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// A uniformly random permutation of 0..n-1 (Fisher-Yates).
  std::vector<uint32_t> Permutation(uint32_t n);

 private:
  uint64_t state_;
};

}  // namespace gammadb

#endif  // GAMMA_COMMON_RNG_H_
