#ifndef GAMMA_OBS_PROFILE_H_
#define GAMMA_OBS_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "sim/cost_tracker.h"

namespace gammadb::exec {
struct QueryResult;
}  // namespace gammadb::exec

namespace gammadb::obs {

/// Busy-time totals summed over nodes (one entry per simulated device).
struct DeviceTotals {
  double disk_sec = 0;
  double cpu_sec = 0;
  double net_sec = 0;
  double serial_sec = 0;
  double ring_sec = 0;

  void Add(const sim::NodeUsage& usage) {
    disk_sec += usage.disk_sec;
    cpu_sec += usage.cpu_sec;
    net_sec += usage.net_sec;
    serial_sec += usage.serial_sec;
  }
};

/// Per-device utilization of one query, plus the critical-resource verdict.
///
/// A busy fraction is the device's busy seconds summed over every node,
/// divided by (simulated elapsed time x nodes that did any work) — i.e. how
/// loaded the average participating node kept that device for the whole
/// query. The ring is one shared device, so its fraction divides by elapsed
/// time alone. The critical resource is the device that set the pace: each
/// phase's elapsed time is attributed to the ring when the phase was
/// ring-limited and to the bottleneck node's bottleneck device otherwise,
/// and the device with the most attributed seconds wins (paper §5-§6 style
/// reasoning — "which device saturates first").
struct Utilization {
  double disk_busy_frac = 0;
  double cpu_busy_frac = 0;
  double net_busy_frac = 0;
  double ring_busy_frac = 0;
  /// "disk" | "cpu" | "net" | "ring" | "none".
  std::string critical_resource = "none";
  /// Distinct nodes with any activity in any phase.
  int active_nodes = 0;
  /// max/mean of per-node key-routed tuple arrivals in the phase with the
  /// largest redistribution (most tuples routed through kHashAttr /
  /// kRangeAttr / kBucketMap split tables). The mean is taken over nodes
  /// that opened at least one key-routed stream, so idle destinations drag
  /// the ratio up rather than vanishing from it. 1.0 when the query never
  /// key-routes — a perfectly balanced redistribution also reads 1.0.
  double skew_imbalance = 1.0;
  /// Tuples routed in that largest redistribution phase (0 = none).
  uint64_t skew_routed_tuples = 0;
};

/// One phase of the per-query breakdown.
struct PhaseProfile {
  std::string name;
  sim::PhaseKind kind = sim::PhaseKind::kPipelined;
  double begin_sec = 0;
  double elapsed_sec = 0;
  bool ring_limited = false;
  int bottleneck_node = -1;
  sim::Resource bottleneck_resource = sim::Resource::kNone;
  /// Busy time summed over the phase's active nodes.
  DeviceTotals totals;
  int active_nodes = 0;
};

/// \brief Complete observability record of one query, derived from its
/// finished QueryMetrics: the span hierarchy, per-phase device timelines,
/// utilization fractions and the critical-resource verdict.
///
/// A Profile is a pure function of (label, metrics, ring rate); since the
/// metrics are byte-identical at any host thread count, so is everything
/// here, including the Chrome trace rendered from it.
struct Profile {
  /// "gamma" or "teradata".
  std::string machine;
  /// Statement kind ("select", "join", ...) or a caller-supplied label.
  std::string label;
  double total_sec = 0;
  double scheduling_sec = 0;
  Utilization util;
  DeviceTotals totals;
  std::vector<PhaseProfile> phases;
  std::vector<Span> spans;
};

/// Computes just the utilization fractions and verdict (the scalars
/// bench_util stamps into every BENCH_*.json). Cheap: no span assembly.
/// `ring_bytes_per_sec` <= 0 leaves ring_busy_frac at 0 (the verdict still
/// honours ring-limited phases via PhaseMetrics::ring_limited).
Utilization ComputeUtilization(const sim::QueryMetrics& metrics,
                               double ring_bytes_per_sec = 0);

/// Builds the full profile for one finished query.
Profile BuildProfile(const std::string& machine, const std::string& label,
                     const sim::QueryMetrics& metrics,
                     double ring_bytes_per_sec);

/// Multi-line human-readable breakdown (the `explain profile` rendering):
/// query totals, utilization fractions, verdict, then one line per phase
/// with its bottleneck and per-device busy seconds.
std::string RenderProfile(const Profile& profile);

/// \brief Per-statement observability hook both machines call once, on the
/// coordinator, after CostTracker::Finish() lands in the result.
///
/// Always feeds the process-wide MetricsRegistry (query.* counters plus the
/// query.seconds histogram); when `trace.enabled`, additionally derives the
/// full Profile from the finished metrics and attaches it to the result.
/// Runs strictly after simulated-time accounting closes, so it charges zero
/// simulated seconds either way.
void FinalizeStatement(const TraceOptions& trace, const char* machine,
                       const char* label, double ring_bytes_per_sec,
                       exec::QueryResult* result);

}  // namespace gammadb::obs

#endif  // GAMMA_OBS_PROFILE_H_
