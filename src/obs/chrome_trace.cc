#include "obs/chrome_trace.h"

#include <cstdio>
#include <map>
#include <utility>

namespace gammadb::obs {

namespace {

constexpr int kMachineTrack = 0;
constexpr int kRingTrack = 1;
constexpr int kNodeTrackBase = 2;
constexpr int kDevicesPerNode = 5;  // task + serial/disk/cpu/net lanes

/// Stable small tid per span: grouping spans share the machine track, the
/// ring has its own, and each (node, device) pair gets a dedicated lane so
/// a node's overlapping disk/cpu/net intervals render side by side.
int TrackFor(const Span& span) {
  if (span.device == Device::kRing) return kRingTrack;
  if (span.node < 0) return kMachineTrack;
  int lane = 0;  // the node's task span
  switch (span.device) {
    case Device::kSerial:
      lane = 1;
      break;
    case Device::kDisk:
      lane = 2;
      break;
    case Device::kCpu:
      lane = 3;
      break;
    case Device::kNet:
      lane = 4;
      break;
    case Device::kNone:
    case Device::kRing:
      lane = 0;
      break;
  }
  return kNodeTrackBase + span.node * kDevicesPerNode + lane;
}

std::string TrackName(const Span& span, int tid) {
  if (tid == kMachineTrack) return "machine";
  if (tid == kRingTrack) return "ring";
  std::string name = "node" + std::to_string(span.node);
  if (span.device != Device::kNone) {
    name += ".";
    name += DeviceName(span.device);
  } else {
    name += ".task";
  }
  return name;
}

void AppendEscaped(std::string* out, const std::string& text) {
  for (char c : text) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
}

/// Appends one profile's thread_name metadata and span events under `pid`
/// (the shared body of the single- and multi-statement renderings).
void AppendProfileEvents(std::string* out, const Profile& profile, int pid,
                         bool* first) {
  char buf[256];
  // thread_name metadata, emitted once per track in first-use order.
  std::map<int, std::string> tracks;
  for (const Span& span : profile.spans) {
    const int tid = TrackFor(span);
    tracks.emplace(tid, TrackName(span, tid));
  }
  for (const auto& [tid, name] : tracks) {
    std::snprintf(buf, sizeof(buf),
                  "%s{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,"
                  "\"tid\":%d,\"args\":{\"name\":\"",
                  *first ? "" : ",", pid, tid);
    *out += buf;
    AppendEscaped(out, name);
    *out += "\"}}";
    *first = false;
  }

  for (const Span& span : profile.spans) {
    std::snprintf(buf, sizeof(buf),
                  "%s{\"name\":\"", *first ? "" : ",");
    *out += buf;
    AppendEscaped(out, span.name);
    // Simulated seconds -> microseconds; fixed precision keeps the bytes
    // identical whenever the profile is.
    std::snprintf(buf, sizeof(buf),
                  "\",\"cat\":\"%s\",\"ph\":\"X\",\"pid\":%d,\"tid\":%d,"
                  "\"ts\":%.3f,\"dur\":%.3f",
                  span.device == Device::kNone ? "span" : "device", pid,
                  TrackFor(span), span.begin_sec * 1e6, span.dur_sec * 1e6);
    *out += buf;
    if (span.phase >= 0) {
      std::snprintf(buf, sizeof(buf), ",\"args\":{\"phase\":%d}", span.phase);
      *out += buf;
    }
    *out += "}";
    *first = false;
  }
}

}  // namespace

std::string ChromeTraceJson(const Profile& profile) {
  std::string out = "{\"traceEvents\":[";
  char buf[256];
  bool first = true;
  AppendProfileEvents(&out, profile, /*pid=*/1, &first);

  out += "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"machine\":\"";
  AppendEscaped(&out, profile.machine);
  out += "\",\"label\":\"";
  AppendEscaped(&out, profile.label);
  std::snprintf(buf, sizeof(buf),
                "\",\"total_sec\":%.6f,\"disk_busy_frac\":%.6f,"
                "\"cpu_busy_frac\":%.6f,\"net_busy_frac\":%.6f,"
                "\"ring_busy_frac\":%.6f,\"critical_resource\":\"%s\"}}",
                profile.total_sec, profile.util.disk_busy_frac,
                profile.util.cpu_busy_frac, profile.util.net_busy_frac,
                profile.util.ring_busy_frac,
                profile.util.critical_resource.c_str());
  out += buf;
  return out;
}

namespace {

bool WriteString(const std::string& json, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool ok = written == json.size() && std::fclose(f) == 0;
  if (!ok && written != json.size()) std::fclose(f);
  return ok;
}

}  // namespace

bool WriteChromeTrace(const Profile& profile, const std::string& path) {
  return WriteString(ChromeTraceJson(profile), path);
}

std::string ChromeTraceJsonAll(
    const std::vector<std::shared_ptr<const Profile>>& profiles) {
  std::string out = "{\"traceEvents\":[";
  char buf[256];
  bool first = true;
  int pid = 0;
  for (const std::shared_ptr<const Profile>& profile : profiles) {
    if (profile == nullptr) continue;
    ++pid;
    std::snprintf(buf, sizeof(buf),
                  "%s{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,"
                  "\"args\":{\"name\":\"",
                  first ? "" : ",", pid);
    out += buf;
    AppendEscaped(&out, std::to_string(pid - 1) + ":" + profile->label);
    out += "\"}}";
    first = false;
    AppendProfileEvents(&out, *profile, pid, &first);
  }
  std::snprintf(buf, sizeof(buf),
                "],\"displayTimeUnit\":\"ms\",\"otherData\":{"
                "\"statements\":%d}}",
                pid);
  out += buf;
  return out;
}

bool WriteChromeTraceAll(
    const std::vector<std::shared_ptr<const Profile>>& profiles,
    const std::string& path) {
  return WriteString(ChromeTraceJsonAll(profiles), path);
}

}  // namespace gammadb::obs
