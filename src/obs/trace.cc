#include "obs/trace.h"

namespace gammadb::obs {

const char* DeviceName(Device device) {
  switch (device) {
    case Device::kDisk:
      return "disk";
    case Device::kCpu:
      return "cpu";
    case Device::kNet:
      return "net";
    case Device::kSerial:
      return "serial";
    case Device::kRing:
      return "ring";
    case Device::kNone:
      break;
  }
  return "none";
}

const char* ResourceName(sim::Resource resource) {
  switch (resource) {
    case sim::Resource::kDisk:
      return "disk";
    case sim::Resource::kCpu:
      return "cpu";
    case sim::Resource::kNet:
      return "net";
    case sim::Resource::kNone:
      break;
  }
  return "none";
}

bool NodeActive(const sim::NodeUsage& usage) {
  return usage.disk_sec > 0 || usage.cpu_sec > 0 || usage.net_sec > 0 ||
         usage.serial_sec > 0 || usage.pages_read > 0 ||
         usage.pages_written > 0 || usage.buffer_hits > 0 ||
         usage.packets_sent > 0 || usage.packets_short_circuited > 0 ||
         usage.control_msgs > 0;
}

namespace {

void AddDeviceSpan(std::vector<Span>* spans, int task, int node, int phase,
                   Device device, double begin_sec, double dur_sec) {
  if (dur_sec <= 0) return;
  Span span;
  span.name = DeviceName(device);
  span.node = node;
  span.phase = phase;
  span.device = device;
  span.begin_sec = begin_sec;
  span.dur_sec = dur_sec;
  span.parent = task;
  spans->push_back(std::move(span));
}

}  // namespace

std::vector<Span> BuildSpans(const std::string& label,
                             const sim::QueryMetrics& metrics,
                             double ring_bytes_per_sec) {
  std::vector<Span> spans;
  const double total_sec = metrics.TotalSec();

  Span query;
  query.name = "query:" + label;
  query.begin_sec = 0;
  query.dur_sec = total_sec;
  query.parent = -1;
  spans.push_back(std::move(query));

  if (metrics.scheduling_sec > 0) {
    Span sched;
    sched.name = "scheduling";
    sched.begin_sec = 0;
    sched.dur_sec = metrics.scheduling_sec;
    sched.parent = 0;
    spans.push_back(std::move(sched));
  }

  Span statement;
  statement.name = "statement";
  statement.begin_sec = metrics.scheduling_sec;
  statement.dur_sec = total_sec - metrics.scheduling_sec;
  statement.parent = 0;
  spans.push_back(std::move(statement));
  const int statement_index = static_cast<int>(spans.size()) - 1;

  double cursor = metrics.scheduling_sec;
  for (size_t p = 0; p < metrics.phases.size(); ++p) {
    const sim::PhaseMetrics& phase = metrics.phases[p];
    Span phase_span;
    phase_span.name = "phase:" + phase.name;
    phase_span.phase = static_cast<int>(p);
    phase_span.begin_sec = cursor;
    phase_span.dur_sec = phase.elapsed_sec;
    phase_span.parent = statement_index;
    spans.push_back(std::move(phase_span));
    const int phase_index = static_cast<int>(spans.size()) - 1;

    for (size_t n = 0; n < phase.per_node.size(); ++n) {
      const sim::NodeUsage& usage = phase.per_node[n];
      if (!NodeActive(usage)) continue;
      const int node = static_cast<int>(n);
      Span task;
      task.name = "node" + std::to_string(node);
      task.node = node;
      task.phase = static_cast<int>(p);
      task.begin_sec = cursor;
      task.dur_sec = usage.ElapsedSec(phase.kind);
      task.parent = phase_index;
      spans.push_back(std::move(task));
      const int task_index = static_cast<int>(spans.size()) - 1;

      if (phase.kind == sim::PhaseKind::kPipelined) {
        // Serial stall first, then the three devices overlap.
        AddDeviceSpan(&spans, task_index, node, static_cast<int>(p),
                      Device::kSerial, cursor, usage.serial_sec);
        const double origin = cursor + usage.serial_sec;
        AddDeviceSpan(&spans, task_index, node, static_cast<int>(p),
                      Device::kDisk, origin, usage.disk_sec);
        AddDeviceSpan(&spans, task_index, node, static_cast<int>(p),
                      Device::kCpu, origin, usage.cpu_sec);
        AddDeviceSpan(&spans, task_index, node, static_cast<int>(p),
                      Device::kNet, origin, usage.net_sec);
      } else {
        // Request/response work: nothing overlaps.
        double at = cursor;
        AddDeviceSpan(&spans, task_index, node, static_cast<int>(p),
                      Device::kSerial, at, usage.serial_sec);
        at += usage.serial_sec;
        AddDeviceSpan(&spans, task_index, node, static_cast<int>(p),
                      Device::kDisk, at, usage.disk_sec);
        at += usage.disk_sec;
        AddDeviceSpan(&spans, task_index, node, static_cast<int>(p),
                      Device::kCpu, at, usage.cpu_sec);
        at += usage.cpu_sec;
        AddDeviceSpan(&spans, task_index, node, static_cast<int>(p),
                      Device::kNet, at, usage.net_sec);
      }
    }

    if (phase.ring_bytes > 0 && ring_bytes_per_sec > 0) {
      Span ring;
      ring.name = "ring";
      ring.phase = static_cast<int>(p);
      ring.device = Device::kRing;
      ring.begin_sec = cursor;
      ring.dur_sec = static_cast<double>(phase.ring_bytes) /
                     ring_bytes_per_sec;
      ring.parent = phase_index;
      spans.push_back(std::move(ring));
    }

    cursor += phase.elapsed_sec;
  }
  return spans;
}

}  // namespace gammadb::obs
