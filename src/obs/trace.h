#ifndef GAMMA_OBS_TRACE_H_
#define GAMMA_OBS_TRACE_H_

#include <string>
#include <vector>

#include "sim/cost_tracker.h"

namespace gammadb::obs {

/// \brief Per-machine tracing configuration (GammaConfig::trace,
/// TeradataConfig::trace).
///
/// When disabled (the default) nothing is recorded anywhere: queries charge
/// exactly the same simulated seconds as a build without the observability
/// layer, and no allocation happens on any operator path. When enabled, a
/// Profile is derived from the query's finished CostTracker metrics and
/// attached to the QueryResult — still zero charged time, because the
/// derivation happens after accounting closes.
struct TraceOptions {
  bool enabled = false;
};

/// Which simulated device a span occupies (kNone for grouping spans).
enum class Device { kNone, kDisk, kCpu, kNet, kSerial, kRing };

const char* DeviceName(Device device);
const char* ResourceName(sim::Resource resource);

/// A node counts as active in a phase when it did anything at all — busy time
/// on some device or a pure counter event (e.g. a short-circuited packet's
/// CPU cost can round to zero seconds while the counter still ticks).
bool NodeActive(const sim::NodeUsage& usage);

/// \brief One interval of simulated time in the query's trace.
///
/// Spans form the hierarchy query -> statement -> phase -> per-node operator
/// task -> per-device busy interval, flattened into a vector in canonical
/// order (phases in execution order, nodes ascending, devices in
/// disk/cpu/net order). `parent` indexes into the same vector (-1 for the
/// root), so consumers can rebuild the tree without pointer chasing.
struct Span {
  std::string name;
  /// Simulated node the span ran on; -1 for machine-level spans
  /// (query/statement/phase) and the shared ring.
  int node = -1;
  /// Index of the phase the span belongs to; -1 above phase level.
  int phase = -1;
  Device device = Device::kNone;
  double begin_sec = 0;
  double dur_sec = 0;
  int parent = -1;
};

/// \brief Builds the span hierarchy for one finished query.
///
/// Pure function of the (already deterministic) QueryMetrics, so the span
/// stream is byte-identical at any GAMMA_HOST_THREADS. Placement follows the
/// charging rules the CostTracker used to resolve elapsed time:
///
///  - the query starts at simulated t=0; scheduler-serialized work occupies
///    [0, scheduling_sec); phases run back to back after it;
///  - within a pipelined phase a node's serial stall leads, then its disk,
///    CPU and NIC busy intervals run concurrently from the same origin (the
///    bottleneck model: elapsed = serial + max of the three);
///  - within a sequential phase the serial, disk, CPU and NIC intervals run
///    end to end (elapsed = serial + sum);
///  - the shared interconnect gets one ring span per phase with traffic,
///    sized by ring_bytes / ring_bytes_per_sec.
///
/// `ring_bytes_per_sec` <= 0 omits the ring spans.
std::vector<Span> BuildSpans(const std::string& label,
                             const sim::QueryMetrics& metrics,
                             double ring_bytes_per_sec);

}  // namespace gammadb::obs

#endif  // GAMMA_OBS_TRACE_H_
