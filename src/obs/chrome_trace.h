#ifndef GAMMA_OBS_CHROME_TRACE_H_
#define GAMMA_OBS_CHROME_TRACE_H_

#include <memory>
#include <string>
#include <vector>

#include "obs/profile.h"

namespace gammadb::obs {

/// \brief Renders a Profile as Chrome trace_event JSON ("X" complete events,
/// microsecond timestamps) loadable in chrome://tracing or Perfetto.
///
/// Track layout: pid 1 is the machine. Grouping spans (query / scheduling /
/// statement / phases) go on tid 0; each (node, device) pair gets its own
/// tid so overlapping busy intervals within one node never collide on a
/// track; the shared ring is its own track. thread_name metadata labels
/// every track.
///
/// All numbers print with fixed %.3f precision, so the output is
/// byte-identical whenever the profile is — i.e. at any GAMMA_HOST_THREADS.
std::string ChromeTraceJson(const Profile& profile);

/// Writes ChromeTraceJson(profile) to `path`. Returns false on I/O failure.
bool WriteChromeTrace(const Profile& profile, const std::string& path);

/// Combined trace of many statements in one file: statement i renders as
/// process pid i+1 (process_name "<i>:<label>"), each with the same track
/// layout as ChromeTraceJson. This is the flush format of the machines'
/// bounded profile rings — one file covering the recent statements instead
/// of one file per query. Null entries are skipped.
std::string ChromeTraceJsonAll(
    const std::vector<std::shared_ptr<const Profile>>& profiles);

/// Writes ChromeTraceJsonAll(profiles) to `path`. Returns false on I/O
/// failure.
bool WriteChromeTraceAll(
    const std::vector<std::shared_ptr<const Profile>>& profiles,
    const std::string& path);

}  // namespace gammadb::obs

#endif  // GAMMA_OBS_CHROME_TRACE_H_
