#include "obs/metrics_registry.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/macros.h"

namespace gammadb::obs {

std::vector<double> LogBuckets(double lo, double hi, int per_decade) {
  GAMMA_CHECK_MSG(lo > 0 && hi > lo && per_decade > 0, "bad log buckets");
  std::vector<double> bounds;
  // Exponent arithmetic (not repeated multiplication) keeps every bound a
  // pure function of its index, so two histograms built with the same
  // parameters share bit-identical edges.
  for (int k = 0;; ++k) {
    const double bound =
        lo * std::pow(10.0, static_cast<double>(k) / per_decade);
    bounds.push_back(bound);
    if (bound >= hi) break;
  }
  return bounds;
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  GAMMA_CHECK_MSG(!bounds_.empty(), "histogram needs at least one bound");
  GAMMA_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
                  "histogram bounds must ascend");
  buckets_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::Observe(double value) {
  const size_t bucket =
      static_cast<size_t>(std::lower_bound(bounds_.begin(), bounds_.end(),
                                           value) -
                          bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // Histograms are coordinator-fed (see header), so a plain read-modify-write
  // would do; CAS keeps the type safe if that discipline ever slips.
  double sum = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(sum, sum + value,
                                     std::memory_order_relaxed)) {
  }
}

double Histogram::Quantile(double quantile) const {
  const uint64_t total = count();
  if (total == 0) return 0;
  const double target = quantile * static_cast<double>(total);
  uint64_t running = 0;
  for (size_t i = 0; i < bounds_.size(); ++i) {
    running += bucket(i);
    if (static_cast<double>(running) >= target) return bounds_[i];
  }
  return bounds_.back();
}

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Instance() {
  static MetricsRegistry* instance = new MetricsRegistry();
  return *instance;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = counters_.try_emplace(name);
  if (inserted) it->second = std::make_unique<Counter>();
  return *it->second;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = histograms_.try_emplace(name);
  if (inserted) it->second = std::make_unique<Histogram>(std::move(bounds));
  return *it->second;
}

std::vector<MetricsRegistry::Sample> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Sample> samples;
  samples.reserve(counters_.size() + 2 * histograms_.size());
  for (const auto& [name, counter] : counters_) {
    samples.push_back({name, static_cast<double>(counter->value())});
  }
  for (const auto& [name, histogram] : histograms_) {
    samples.push_back(
        {name + ".count", static_cast<double>(histogram->count())});
    samples.push_back({name + ".sum", histogram->sum()});
  }
  std::sort(samples.begin(), samples.end(),
            [](const Sample& a, const Sample& b) { return a.name < b.name; });
  return samples;
}

std::vector<MetricsRegistry::HistogramSample>
MetricsRegistry::HistogramSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<HistogramSample> samples;
  samples.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    samples.push_back({name, histogram->count(), histogram->sum(),
                       histogram->Quantile(0.5), histogram->Quantile(0.95),
                       histogram->Quantile(0.99)});
  }
  // Map iteration is already name-sorted; keep the invariant explicit.
  return samples;
}

uint64_t MetricsRegistry::CounterValue(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

std::string MetricsRegistry::RenderText() const {
  std::string out;
  for (const Sample& sample : Snapshot()) {
    char line[192];
    std::snprintf(line, sizeof(line), "%-40s %.6g\n", sample.name.c_str(),
                  sample.value);
    out += line;
  }
  return out;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace gammadb::obs
